module peel

go 1.23
