package peel

import (
	"math/rand"
	"testing"
)

// These tests exercise the public facade end to end, mirroring README
// usage; the algorithmic depth lives in the internal packages' suites.

func TestFacadeQuickstartFlow(t *testing.T) {
	g := FatTree(8)
	planner, err := NewPlanner(g)
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	if len(hosts) != 128 {
		t.Fatalf("hosts=%d", len(hosts))
	}
	plan, err := planner.PlanGroup(hosts[0], hosts[1:33])
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Packets) == 0 || plan.HeaderBytes >= 8 {
		t.Fatalf("plan: %d packets, %dB header", len(plan.Packets), plan.HeaderBytes)
	}
	for i := range plan.Packets {
		if err := plan.Packets[i].Tree.Validate(g, plan.Packets[i].Receivers); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFacadeTreesAndBounds(t *testing.T) {
	g := LeafSpine(8, 12, 2)
	rng := rand.New(rand.NewSource(3))
	failed := FailRandomSwitchLinks(g, 0.10, rng)
	if len(failed) == 0 {
		t.Fatal("no links failed")
	}
	hosts := g.Hosts()
	src, dests := hosts[0], hosts[5:13]
	tree, err := BuildTree(g, src, dests)
	if err != nil {
		t.Fatal(err)
	}
	greedy, stats, err := LayerPeeling(g, src, dests)
	if err != nil {
		t.Fatal(err)
	}
	if stats.F <= 0 {
		t.Fatalf("stats: %+v", stats)
	}
	exact, err := ExactSteinerCost(g, src, dests)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := SteinerLowerBound(g, src, dests)
	if err != nil {
		t.Fatal(err)
	}
	if !(lb <= exact && exact <= greedy.Cost() && tree.Cost() >= exact) {
		t.Fatalf("bound chain violated: lb=%d exact=%d greedy=%d tree=%d", lb, exact, greedy.Cost(), tree.Cost())
	}
}

func TestFacadeVariantTreesDiffer(t *testing.T) {
	g := FatTree(8)
	hosts := g.Hosts()
	src, dests := hosts[0], hosts[40:80]
	t0, err := BuildTreeVariant(g, src, dests, 0)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := BuildTreeVariant(g, src, dests, 1)
	if err != nil {
		t.Fatal(err)
	}
	if t0.Cost() != t1.Cost() {
		t.Fatalf("variants must be equal cost: %d vs %d", t0.Cost(), t1.Cost())
	}
	// Different core-tier membership.
	coresOf := func(tr *Tree) map[NodeID]bool {
		m := map[NodeID]bool{}
		for _, n := range tr.Members {
			if g.Node(n).Kind == Core {
				m[n] = true
			}
		}
		return m
	}
	c0, c1 := coresOf(t0), coresOf(t1)
	same := len(c0) == len(c1)
	for n := range c0 {
		if !c1[n] {
			same = false
		}
	}
	if same {
		t.Fatal("variants 0 and 1 use identical cores")
	}
}

func TestFacadeStateAndRules(t *testing.T) {
	s := StateFor(64)
	if s.PEELRules != 63 || s.Hosts != 65536 || s.HeaderBytes >= 8 {
		t.Fatalf("state: %+v", s)
	}
	rt, err := NewRuleTable(32)
	if err != nil {
		t.Fatal(err)
	}
	if rt.NumEntries() != 63 {
		t.Fatalf("entries=%d", rt.NumEntries())
	}
	if _, err := NewRuleTable(33); err == nil {
		t.Fatal("non-power-of-two fanout must fail")
	}
}

func TestFacadeOptions(t *testing.T) {
	if o := DefaultExperimentOptions(); o.Samples <= QuickExperimentOptions().Samples {
		t.Fatal("defaults must exceed quick fidelity")
	}
	g := FatTree(8)
	planner, _ := NewPlanner(g)
	hosts := g.Hosts()
	plan, err := planner.PlanGroupOpts(hosts[0], hosts[16:40], PlanOptions{PacketBudget: 1, ToRFilter: true})
	if err != nil {
		t.Fatal(err)
	}
	perPod := map[int]int{}
	for i := range plan.Packets {
		perPod[plan.Packets[i].Header.Pod]++
	}
	for pod, n := range perPod {
		if n > 1 {
			t.Fatalf("pod %d has %d packets despite budget 1", pod, n)
		}
	}
	if plan.TotalOverHosts() != 0 {
		t.Fatal("tor filter must zero host over-coverage")
	}
}
