// Package peel is a Go implementation of PEEL (Prefix-Encoded Efficient
// Layering) — scalable datacenter multicast for AI collectives, from
// "One to Many: Closing the Bandwidth Gap in AI Datacenters with Scalable
// Multicast" (HotNets '25).
//
// PEEL rests on two results:
//
//   - Near-optimal multicast trees in polynomial time. On failure-free
//     Clos fabrics the minimum Steiner tree is computed exactly
//     (Lemma 2.1's super-node construction); on asymmetric fabrics the
//     layer-peeling greedy gives an O(min(F,|D|))-approximation (§2.3).
//
//   - Deploy-once, touch-never switch state. Power-of-two prefix rules
//     shrink per-switch multicast state from O(2^k) to exactly k−1
//     pre-installed entries, selected by a <8-byte ⟨prefix,len⟩ packet
//     header (§3.2), with an optional controller-refined exact tree when
//     cores are programmable (§3.3).
//
// This package is the public facade: fabric construction, tree building,
// PEEL group planning, state accounting, and the paper's full evaluation
// harness. The implementation lives in internal/ (topology, routing,
// steiner, prefix, bloom, sim, netsim, dcqcn, collective, workload,
// metrics, controller, experiments); see DESIGN.md for the system map and
// EXPERIMENTS.md for paper-vs-measured results.
//
// Quick start:
//
//	g := peel.FatTree(8)                       // 128-host fabric
//	planner, _ := peel.NewPlanner(g)
//	hosts := g.Hosts()
//	plan, _ := planner.PlanGroup(hosts[0], hosts[1:33])
//	for _, pkt := range plan.Packets {         // one packet per prefix
//	    fmt.Println(pkt.Header.ToR.Format(2), pkt.Receivers)
//	}
package peel

import (
	"math/rand"

	"peel/internal/core"
	"peel/internal/experiments"
	"peel/internal/prefix"
	"peel/internal/steiner"
	"peel/internal/topology"
)

// Fabric types and construction (internal/topology).
type (
	// Graph is a Clos fabric: nodes, links, failure state.
	Graph = topology.Graph
	// NodeID identifies a host or switch in a Graph.
	NodeID = topology.NodeID
	// LinkID identifies a link in a Graph.
	LinkID = topology.LinkID
	// Kind is a node's tier (Host, ToR, Agg, Core, Leaf, Spine).
	Kind = topology.Kind
)

// Node tiers, re-exported for fabric inspection.
const (
	Host  = topology.Host
	ToR   = topology.ToR
	Agg   = topology.Agg
	Core  = topology.Core
	Leaf  = topology.Leaf
	Spine = topology.Spine
)

// FatTree builds a failure-free k-ary fat-tree (k³/4 hosts).
func FatTree(k int) *Graph { return topology.FatTree(k) }

// LeafSpine builds a two-tier leaf–spine fabric.
func LeafSpine(spines, leaves, hostsPerLeaf int) *Graph {
	return topology.LeafSpine(spines, leaves, hostsPerLeaf)
}

// FailRandomSwitchLinks fails the given fraction of switch-to-switch
// links uniformly at random (the paper's Fig. 7 failure model), returning
// the failed link IDs. Runs are reproducible via the caller's RNG.
func FailRandomSwitchLinks(g *Graph, fraction float64, rng *rand.Rand) []LinkID {
	return g.FailRandomFraction(fraction, topology.SwitchLinks, rng)
}

// Multicast trees (internal/steiner).
type (
	// Tree is a multicast distribution tree rooted at a source host.
	Tree = steiner.Tree
	// PeelingStats reports layer-peeling diagnostics (F, switches added).
	PeelingStats = steiner.PeelingStats
)

// BuildTree constructs a multicast tree for src → dests: the provably
// optimal super-node tree on symmetric fabrics, the §2.3 layer-peeling
// greedy under failures.
func BuildTree(g *Graph, src NodeID, dests []NodeID) (*Tree, error) {
	return core.BuildTree(g, src, dests)
}

// LayerPeeling runs the §2.3 greedy directly and returns its diagnostics.
func LayerPeeling(g *Graph, src NodeID, dests []NodeID) (*Tree, PeelingStats, error) {
	return steiner.LayerPeeling(g, src, dests)
}

// ErrUnreachable is the sentinel wrapped by every tree builder when a
// destination has no live path from the source (a degraded fabric cut it
// off). Test with errors.Is to distinguish "this group cannot be served"
// from planner-internal failures.
var ErrUnreachable = steiner.ErrUnreachable

// OptimalTree computes the exact minimum multicast tree on a failure-free
// Clos fabric (Lemma 2.1 generalized to three tiers).
func OptimalTree(g *Graph, src NodeID, dests []NodeID) (*Tree, error) {
	return steiner.SymmetricOptimal(g, src, dests)
}

// ExactSteinerCost returns the exact optimum cost via Dreyfus–Wagner; it
// is exponential in the terminal count and capped at
// steiner.MaxExactTerminals terminals (an optimality yardstick, not a
// routing primitive).
func ExactSteinerCost(g *Graph, src NodeID, dests []NodeID) (int, error) {
	return steiner.ExactSmall(g, src, dests)
}

// SteinerLowerBound returns Lemma 2.4's max(F, |D|) bound.
func SteinerLowerBound(g *Graph, src NodeID, dests []NodeID) (int, error) {
	return steiner.LowerBound(g, src, dests)
}

// PEEL planning (internal/core, internal/prefix).
type (
	// Planner plans PEEL prefix multicast over one fat-tree.
	Planner = core.Planner
	// Plan is a group's send plan: prefix packets plus the optional
	// controller-refined tree.
	Plan = core.Plan
	// Packet is one prefix-addressed copy: header, delivery tree,
	// over-coverage accounting.
	Packet = core.Packet
	// Prefix is one power-of-two aligned identifier block.
	Prefix = prefix.Prefix
	// Header is the ⟨prefix value, prefix length⟩ packet tuple pair.
	Header = prefix.Header
	// RuleTable is the static k−1-entry multicast TCAM of one switch.
	RuleTable = prefix.RuleTable
	// StateSummary reports rules/header/host counts for a fabric degree.
	StateSummary = core.StateSummary
)

// NewPlanner derives the identifier spaces for a fat-tree fabric.
func NewPlanner(g *Graph) (*Planner, error) { return core.NewPlanner(g) }

// StateFor reports the switch-state headline numbers for a k-ary
// fat-tree: k−1 PEEL rules vs 2^(k/2) naive entries, header <8 B.
func StateFor(k int) StateSummary { return core.StateFor(k) }

// NewRuleTable pre-installs the power-of-two rules for a tier with the
// given power-of-two fan-out (e.g. k/2 ToRs per pod).
func NewRuleTable(fanout int) (*RuleTable, error) {
	s, err := prefix.SpaceForFanout(fanout)
	if err != nil {
		return nil, err
	}
	return prefix.NewRuleTable(s)
}

// Evaluation harness (internal/experiments): every figure and headline of
// the paper's §4, regenerable programmatically.
type (
	// ExperimentOptions tunes sample counts and simulation granularity.
	ExperimentOptions = experiments.Options
	// ExperimentResult is one regenerated figure.
	ExperimentResult = experiments.Result
)

// DefaultExperimentOptions returns full-fidelity settings; see
// QuickExperimentOptions for test-scale runs.
func DefaultExperimentOptions() ExperimentOptions { return experiments.Defaults() }

// QuickExperimentOptions returns reduced-fidelity settings.
func QuickExperimentOptions() ExperimentOptions { return experiments.Quick() }

// Experiment runners: one per paper artifact, plus the §2.3/§3.4
// open-question studies this repository adds.
var (
	Fig1               = experiments.Fig1
	Fig3               = experiments.Fig3
	Fig4               = experiments.Fig4
	Fig5               = experiments.Fig5
	Fig6               = experiments.Fig6
	Fig7               = experiments.Fig7
	StateTable         = experiments.StateTable
	GuardAblation      = experiments.GuardAblation
	ApproxStudy        = experiments.ApproxStudy
	BandwidthStudy     = experiments.BandwidthStudy
	FragmentationStudy = experiments.FragmentationStudy
	DeploymentStudy    = experiments.DeploymentStudy
	MultipathStudy     = experiments.MultipathStudy
	// ChaosStudy measures CCT inflation, delivered-byte downtime, and
	// repair counts when links fail mid-flight and the collective layer
	// repairs its trees online (see internal/chaos and
	// internal/collective/recovery.go).
	ChaosStudy = experiments.ChaosStudy
)

// PlanOptions re-exports the §3.4 planning knobs (packet budgets,
// filtering ToRs).
type PlanOptions = core.PlanOptions

// BuildTreeVariant builds the variant-th equal-cost optimal tree on a
// failure-free fabric (multipath striping building block).
func BuildTreeVariant(g *Graph, src NodeID, dests []NodeID, variant uint64) (*Tree, error) {
	return steiner.SymmetricOptimalVariant(g, src, dests, variant)
}
