package peel

// One benchmark per paper table/figure (regenerating its data at reduced
// fidelity — run cmd/peelsim for full-fidelity tables), plus micro-
// benchmarks for the algorithmic kernels (tree construction, prefix
// covers, header codec, exact solver).

import (
	"math/rand"
	"testing"

	"peel/internal/experiments"
	"peel/internal/invariant"
	"peel/internal/prefix"
	"peel/internal/steiner"
	"peel/internal/topology"
)

func benchOpts() experiments.Options {
	o := experiments.Quick()
	o.Samples = 4
	return o
}

func benchFigure(b *testing.B, run func(experiments.Options) (*experiments.Result, error)) {
	b.Helper()
	// The package TestMain arms the invariant suite for tests; benchmarks
	// measure the uninstrumented hot path, so disable it for the timing
	// window (BenchmarkFig5MessageSizeSweepChecked measures the overhead).
	defer invariant.Enable(nil)()
	for i := 0; i < b.N; i++ {
		res, err := run(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.X) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkFig1RingTreeOptimalBandwidth regenerates Figure 1 (bandwidth
// consumption of Ring/Tree/Optimal broadcast in a 2-spine/2-leaf fabric).
func BenchmarkFig1RingTreeOptimalBandwidth(b *testing.B) { benchFigure(b, experiments.Fig1) }

// BenchmarkFig3RSBFHeader regenerates Figure 3 (RSBF Bloom-filter header
// size vs fat-tree degree at FPR 1–20%).
func BenchmarkFig3RSBFHeader(b *testing.B) { benchFigure(b, experiments.Fig3) }

// BenchmarkFig4OrcaControllerOverhead regenerates Figure 4 (Orca CCT with
// vs without SDN flow-setup delay, 1024 GPUs).
func BenchmarkFig4OrcaControllerOverhead(b *testing.B) { benchFigure(b, experiments.Fig4) }

// BenchmarkFig5MessageSizeSweep regenerates Figure 5 (mean/p99 CCT vs
// message size for all six schemes at 30% load).
func BenchmarkFig5MessageSizeSweep(b *testing.B) { benchFigure(b, experiments.Fig5) }

// BenchmarkFig5MessageSizeSweepChecked is BenchmarkFig5MessageSizeSweep
// with the full invariant suite armed — comparing the two quantifies the
// checking overhead (the acceptance budget is <=10%).
func BenchmarkFig5MessageSizeSweepChecked(b *testing.B) {
	s := invariant.NewSuite()
	defer invariant.Enable(s)()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.X) == 0 {
			b.Fatal("empty result")
		}
	}
	if s.TotalViolations() > 0 {
		b.Fatal(s.Report())
	}
}

// BenchmarkFig6ScaleSweep regenerates Figure 6 (CCT vs broadcast scale at
// 64 MB).
func BenchmarkFig6ScaleSweep(b *testing.B) { benchFigure(b, experiments.Fig6) }

// BenchmarkFig7FailureSweep regenerates Figure 7 (CCT vs failed-link
// percentage on the asymmetric leaf–spine).
func BenchmarkFig7FailureSweep(b *testing.B) { benchFigure(b, experiments.Fig7) }

// BenchmarkStateAndHeader regenerates the §3.2 switch-state table (k−1
// rules vs naive entries vs header bytes).
func BenchmarkStateAndHeader(b *testing.B) { benchFigure(b, experiments.StateTable) }

// BenchmarkGuardTimerAblation regenerates the §4 sender-side guard-timer
// ablation.
func BenchmarkGuardTimerAblation(b *testing.B) { benchFigure(b, experiments.GuardAblation) }

// BenchmarkLayerPeelingApprox regenerates the §2.3 approximation study
// (greedy vs exact Steiner vs lower bound).
func BenchmarkLayerPeelingApprox(b *testing.B) { benchFigure(b, experiments.ApproxStudy) }

// BenchmarkAggregateBandwidth regenerates the "23% less than rings"
// aggregate-bandwidth headline.
func BenchmarkAggregateBandwidth(b *testing.B) { benchFigure(b, experiments.BandwidthStudy) }

// BenchmarkStripingStudy regenerates the link-disjoint striping study
// (striped-peel vs single-tree schemes on the 2:1 oversubscribed 8-ary
// fat-tree) and reports the striped/single-tree CCT ratio at the largest
// message size as a custom metric — <1.0 means disjoint striping wins.
func BenchmarkStripingStudy(b *testing.B) {
	defer invariant.Enable(nil)()
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.StripingStudy(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var peel, striped []float64
		for _, s := range res.Mean {
			switch s.Label {
			case "peel":
				peel = s.Y
			case "striped-peel":
				striped = s.Y
			}
		}
		if len(peel) == 0 || len(striped) == 0 || peel[len(peel)-1] == 0 {
			b.Fatal("missing peel/striped-peel series")
		}
		ratio = striped[len(striped)-1] / peel[len(peel)-1]
	}
	b.ReportMetric(ratio, "striped-vs-peel-cct")
}

// ---- algorithmic kernels ----

// BenchmarkLayerPeelingTree measures the greedy tree construction on the
// Fig. 7 fabric (16×48 leaf–spine, 10% failures, 64 destinations).
func BenchmarkLayerPeelingTree(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := topology.LeafSpine(16, 48, 2)
	g.FailRandomFraction(0.10, topology.TierLinks(topology.Spine, topology.Leaf), rng)
	hosts := g.Hosts()
	src, dests := hosts[0], hosts[1:65]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := steiner.LayerPeeling(g, src, dests); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSymmetricOptimalTree measures the Lemma 2.1 construction on an
// 8-ary fat-tree with 64 destinations.
func BenchmarkSymmetricOptimalTree(b *testing.B) {
	g := topology.FatTree(8)
	hosts := g.Hosts()
	src, dests := hosts[0], hosts[1:65]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := steiner.SymmetricOptimal(g, src, dests); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactSteiner measures the Dreyfus–Wagner yardstick at its
// working size (9 terminals on a 196-node fabric).
func BenchmarkExactSteiner(b *testing.B) {
	g := topology.LeafSpine(8, 12, 2)
	hosts := g.Hosts()
	src, dests := hosts[0], hosts[1:9]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := steiner.ExactSmall(g, src, dests); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanGroup measures full PEEL planning (prefix covers + packet
// trees) for a 64-host group on a 64-ary fat-tree's identifier spaces.
func BenchmarkPlanGroup(b *testing.B) {
	g := topology.FatTree(8)
	planner, err := NewPlanner(g)
	if err != nil {
		b.Fatal(err)
	}
	hosts := g.Hosts()
	src, members := hosts[0], hosts[1:65]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := planner.PlanGroup(src, members); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactCover measures the trie cover selection for a fragmented
// 32-ToR pod.
func BenchmarkExactCover(b *testing.B) {
	s := prefix.Space{M: 5}
	ids := []uint32{0, 1, 2, 3, 5, 8, 9, 10, 11, 17, 21, 22, 23, 28, 30, 31}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ExactCover(ids); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeaderCodec measures ⟨prefix,len⟩ encode+decode round trips.
func BenchmarkHeaderCodec(b *testing.B) {
	c := prefix.Codec{M: 6} // k=128
	h := prefix.Header{ToR: prefix.Prefix{Value: 0b101, Len: 3}, Host: prefix.Prefix{Value: 0b01, Len: 2}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := c.Encode(h)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFatTreeConstruction measures building the 64-ary, 65,536-host
// fabric the paper's headline quotes.
func BenchmarkFatTreeConstruction(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := topology.FatTree(64)
		if g.NumNodes() == 0 {
			b.Fatal("empty graph")
		}
	}
}
