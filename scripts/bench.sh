#!/bin/sh
# Capture the repository's benchmark suite as a BENCH_<label>.json report.
#
# Usage:  scripts/bench.sh <label> [note]
#
#   scripts/bench.sh baseline "before optimization"
#   scripts/bench.sh after    "hand-rolled heap + scratch pools"
#
# The report lands at the repo root as BENCH_<label>.json; compare two
# with your favourite diff or jq. CI runs the same suite with
# -benchtime=1x as a smoke test (compile + one iteration).
set -eu

label="${1:?usage: scripts/bench.sh <label> [note]}"
note="${2:-}"
cd "$(dirname "$0")/.."

out="BENCH_${label}.json"
go test -run='^$' -bench=. -benchmem -count=1 ./... |
	tee /dev/stderr |
	go run ./cmd/benchjson -label "$label" -note "$note" > "$out"
echo "wrote $out" >&2
