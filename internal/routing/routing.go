// Package routing provides path computation over topology graphs: BFS
// distance fields, the hop-layer decomposition used by the layer-peeling
// tree algorithm (paper §2.3), and ECMP up/down unicast routing for Clos
// fabrics.
//
// All functions respect link failures: failed links are invisible.
package routing

import (
	"errors"
	"fmt"
	"sync"

	"peel/internal/topology"
)

// Unreachable is the distance reported for nodes cut off from the source.
const Unreachable = int32(-1)

// ErrUnreachable is the sentinel wrapped by every "destination cut off"
// error in this package and in the tree builders above it, so callers can
// distinguish a disconnected receiver (errors.Is) from construction bugs.
var ErrUnreachable = errors.New("destination unreachable")

// DistanceField holds BFS hop counts from one source node. Fields may be
// reused across computations via BFSInto (or the Borrow/Release pool), in
// which case the queue and layer scratch persist and later runs stop
// allocating.
type DistanceField struct {
	Source topology.NodeID
	Dist   []int32 // indexed by NodeID; Unreachable if cut off
	Max    int32   // largest finite distance

	queue  []topology.NodeID   // BFS frontier scratch
	nbr    []topology.NodeID   // Neighbors scratch
	layers [][]topology.NodeID // Layers scratch (see Layers)
}

// BFS computes hop distances from src over non-failed links.
func BFS(g *topology.Graph, src topology.NodeID) *DistanceField {
	return BFSInto(g, src, &DistanceField{})
}

// BFSInto computes hop distances from src into d, reusing d's storage.
// Repeated calls on one field — or on a pooled field from BorrowBFS —
// run allocation-free once the scratch has grown to the fabric's size.
// The previous contents of d (including any Layers result) are invalid
// afterwards.
func BFSInto(g *topology.Graph, src topology.NodeID, d *DistanceField) *DistanceField {
	n := g.NumNodes()
	if cap(d.Dist) < n {
		d.Dist = make([]int32, n)
	}
	d.Dist = d.Dist[:n]
	for i := range d.Dist {
		d.Dist[i] = Unreachable
	}
	d.Source = src
	d.Max = 0
	d.Dist[src] = 0
	queue := append(d.queue[:0], src)
	scratch := d.nbr
	for head := 0; head < len(queue); head++ {
		n := queue[head]
		nd := d.Dist[n]
		scratch = g.Neighbors(n, scratch[:0])
		for _, p := range scratch {
			if d.Dist[p] == Unreachable {
				d.Dist[p] = nd + 1
				if nd+1 > d.Max {
					d.Max = nd + 1
				}
				queue = append(queue, p)
			}
		}
	}
	d.queue = queue[:0]
	d.nbr = scratch
	return d
}

// fieldPool recycles DistanceFields for the hot callers (tree peeling,
// per-flow ECMP path selection) that need a field only within one call.
var fieldPool = sync.Pool{New: func() any { return &DistanceField{} }}

// BorrowBFS computes a distance field into a pooled DistanceField. The
// caller must Release it when done and must not retain Dist, Layers, or
// any slice derived from the field past the Release.
func BorrowBFS(g *topology.Graph, src topology.NodeID) *DistanceField {
	return BFSInto(g, src, fieldPool.Get().(*DistanceField))
}

// Release returns a borrowed field to the pool.
func (d *DistanceField) Release() { fieldPool.Put(d) }

// Reachable reports whether n has a live path from the source.
func (d *DistanceField) Reachable(n topology.NodeID) bool { return d.Dist[n] != Unreachable }

// Layers groups nodes by hop distance: Layers()[j] is the paper's l_j, the
// set of nodes exactly j hops from the source. Unreachable nodes appear in
// no layer. The returned slices are the field's reusable scratch: they are
// valid until the next BFSInto or Layers call on this field (callers that
// outlive the field must copy).
func (d *DistanceField) Layers() [][]topology.NodeID {
	want := int(d.Max) + 1
	layers := d.layers
	for len(layers) < want {
		layers = append(layers, nil)
	}
	layers = layers[:want]
	for i := range layers {
		layers[i] = layers[i][:0]
	}
	for id, dist := range d.Dist {
		if dist != Unreachable {
			layers[dist] = append(layers[dist], topology.NodeID(id))
		}
	}
	d.layers = layers
	return layers
}

// Farthest returns F = max over dests of dist(src, dest), and an error if
// any destination is unreachable.
func (d *DistanceField) Farthest(dests []topology.NodeID) (int32, error) {
	var f int32
	for _, dst := range dests {
		dd := d.Dist[dst]
		if dd == Unreachable {
			return 0, fmt.Errorf("routing: destination %d from %d: %w", dst, d.Source, ErrUnreachable)
		}
		if dd > f {
			f = dd
		}
	}
	return f, nil
}

// ShortestPath returns one shortest path src→dst (inclusive) using
// deterministic lowest-ID tie-breaking, or nil if unreachable.
func ShortestPath(g *topology.Graph, src, dst topology.NodeID) []topology.NodeID {
	d := BorrowBFS(g, dst) // reverse field so we can walk forward from src
	defer d.Release()
	if !d.Reachable(src) {
		return nil
	}
	path := []topology.NodeID{src}
	cur := src
	var scratch []topology.NodeID
	for cur != dst {
		next := topology.None
		scratch = g.Neighbors(cur, scratch[:0])
		for _, p := range scratch {
			if d.Dist[p] == d.Dist[cur]-1 && (next == topology.None || p < next) {
				next = p
			}
		}
		if next == topology.None {
			return nil // should not happen if Reachable
		}
		path = append(path, next)
		cur = next
	}
	return path
}

// ECMPPath returns one shortest path src→dst chosen among equal-cost
// next-hops by hashing flowKey at every branch point, emulating per-flow
// ECMP. Deterministic for a given (topology, src, dst, flowKey).
func ECMPPath(g *topology.Graph, src, dst topology.NodeID, flowKey uint64) []topology.NodeID {
	d := BorrowBFS(g, dst)
	defer d.Release()
	if !d.Reachable(src) {
		return nil
	}
	path := []topology.NodeID{src}
	cur := src
	var choices, scratch []topology.NodeID
	for cur != dst {
		choices = choices[:0]
		scratch = g.Neighbors(cur, scratch[:0])
		for _, p := range scratch {
			if d.Dist[p] == d.Dist[cur]-1 {
				choices = append(choices, p)
			}
		}
		if len(choices) == 0 {
			return nil
		}
		next := choices[ecmpHash(flowKey, uint64(cur))%uint64(len(choices))]
		path = append(path, next)
		cur = next
	}
	return path
}

// ecmpHash mixes the flow key with the hop so consecutive branch points
// make independent choices (splitmix64 finalizer).
func ecmpHash(key, hop uint64) uint64 {
	x := key ^ (hop * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// PathLinks converts a node path to the link IDs it traverses. It panics
// if consecutive nodes are not connected by a live link (a bug upstream).
func PathLinks(g *topology.Graph, path []topology.NodeID) []topology.LinkID {
	if len(path) < 2 {
		return nil
	}
	out := make([]topology.LinkID, 0, len(path)-1)
	for i := 1; i < len(path); i++ {
		l := g.LinkBetween(path[i-1], path[i])
		if l < 0 {
			panic(fmt.Sprintf("routing: no live link %d-%d on path", path[i-1], path[i]))
		}
		out = append(out, l)
	}
	return out
}

// AllMinNextHops returns, for every node, its parents toward dst on some
// shortest path (the shortest-path DAG). Used by tests and by the optimal
// tree builder to enumerate candidate cores.
func AllMinNextHops(g *topology.Graph, dst topology.NodeID) [][]topology.NodeID {
	d := BorrowBFS(g, dst)
	defer d.Release()
	out := make([][]topology.NodeID, g.NumNodes())
	var scratch []topology.NodeID
	for id := range out {
		n := topology.NodeID(id)
		if !d.Reachable(n) || n == dst {
			continue
		}
		scratch = g.Neighbors(n, scratch[:0])
		for _, p := range scratch {
			if d.Dist[p] == d.Dist[n]-1 {
				out[id] = append(out[id], p)
			}
		}
	}
	return out
}
