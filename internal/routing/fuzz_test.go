package routing

import (
	"math/rand"
	"testing"

	"peel/internal/topology"
)

// FuzzUpDownPaths is the native-fuzzing twin of
// TestQuickECMPShortestUnderFailures: every ECMP path on a degraded
// leaf-spine fabric must be a shortest live path that avoids failed links,
// and must be absent exactly when the destination is unreachable.
func FuzzUpDownPaths(f *testing.F) {
	f.Add(int64(1), uint64(0), uint64(0))
	f.Add(int64(9), uint64(0xdeadbeef), uint64(17))
	f.Add(int64(23), uint64(7), uint64(29))
	f.Fuzz(func(t *testing.T, seed int64, key, pct uint64) {
		rng := rand.New(rand.NewSource(seed))
		g := topology.LeafSpine(8, 8, 2)
		g.FailRandomFraction(float64(pct%30)/100, topology.TierLinks(topology.Spine, topology.Leaf), rng)
		hosts := g.Hosts()
		src := hosts[rng.Intn(len(hosts))]
		dst := hosts[rng.Intn(len(hosts))]
		if src == dst {
			return
		}
		d := BFS(g, src)
		p := ECMPPath(g, src, dst, key)
		if !d.Reachable(dst) {
			if p != nil {
				t.Fatalf("seed=%d key=%d pct=%d: path to unreachable %d", seed, key, pct, dst)
			}
			return
		}
		if p == nil {
			t.Fatalf("seed=%d key=%d pct=%d: no path to reachable %d", seed, key, pct, dst)
		}
		if int32(len(p)-1) != d.Dist[dst] {
			t.Fatalf("seed=%d key=%d pct=%d: path length %d, shortest is %d", seed, key, pct, len(p)-1, d.Dist[dst])
		}
		for _, l := range PathLinks(g, p) {
			if g.Link(l).Failed {
				t.Fatalf("seed=%d key=%d pct=%d: path crosses failed link %d", seed, key, pct, l)
			}
		}
	})
}
