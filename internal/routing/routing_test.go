package routing

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"peel/internal/topology"
)

func TestBFSDistancesFatTree(t *testing.T) {
	g := topology.FatTree(4)
	hosts := g.Hosts()
	src := hosts[0]
	d := BFS(g, src)
	if d.Dist[src] != 0 {
		t.Fatal("source distance must be 0")
	}
	// Same ToR: 2 hops. Same pod, different ToR: 4. Different pod: 6.
	sameToR := g.HostByCoord(0, 0, 1)
	samePod := g.HostByCoord(0, 1, 0)
	otherPod := g.HostByCoord(3, 1, 1)
	for _, c := range []struct {
		h    topology.NodeID
		want int32
	}{{sameToR, 2}, {samePod, 4}, {otherPod, 6}} {
		if d.Dist[c.h] != c.want {
			t.Errorf("dist(%s)=%d want %d", g.Node(c.h).Name, d.Dist[c.h], c.want)
		}
	}
	if d.Max != 6 {
		t.Errorf("Max=%d want 6", d.Max)
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := topology.LeafSpine(2, 2, 2)
	h := g.Hosts()[0]
	g.FailLink(g.Adj(h)[0].Link) // cut host uplink
	d := BFS(g, g.Hosts()[3])
	if d.Reachable(h) {
		t.Fatal("host with failed uplink must be unreachable")
	}
	if _, err := d.Farthest([]topology.NodeID{h}); err == nil {
		t.Fatal("Farthest must error on unreachable destination")
	}
}

func TestLayersPartition(t *testing.T) {
	g := topology.FatTree(4)
	d := BFS(g, g.Hosts()[0])
	layers := d.Layers()
	total := 0
	for j, l := range layers {
		for _, n := range l {
			if d.Dist[n] != int32(j) {
				t.Fatalf("node %d in layer %d has dist %d", n, j, d.Dist[n])
			}
		}
		total += len(l)
	}
	reachable := 0
	for _, dist := range d.Dist {
		if dist != Unreachable {
			reachable++
		}
	}
	if total != reachable {
		t.Fatalf("layers hold %d nodes, reachable=%d", total, reachable)
	}
	if len(layers[0]) != 1 || layers[0][0] != g.Hosts()[0] {
		t.Fatal("layer 0 must be exactly the source")
	}
}

func TestShortestPathProperties(t *testing.T) {
	g := topology.FatTree(4)
	hosts := g.Hosts()
	d := BFS(g, hosts[0])
	for _, dst := range hosts[1:] {
		p := ShortestPath(g, hosts[0], dst)
		if p == nil {
			t.Fatalf("no path to %d", dst)
		}
		if p[0] != hosts[0] || p[len(p)-1] != dst {
			t.Fatal("path endpoints wrong")
		}
		if int32(len(p)-1) != d.Dist[dst] {
			t.Fatalf("path length %d != BFS dist %d", len(p)-1, d.Dist[dst])
		}
		// consecutive nodes connected
		PathLinks(g, p) // panics on violation
	}
}

func TestShortestPathNilWhenCut(t *testing.T) {
	g := topology.LeafSpine(1, 2, 1)
	// single spine: failing both leaf uplinks partitions the hosts
	spine := g.NodesOfKind(topology.Spine)[0]
	for _, he := range g.Adj(spine) {
		g.FailLink(he.Link)
	}
	hosts := g.Hosts()
	if p := ShortestPath(g, hosts[0], hosts[1]); p != nil {
		t.Fatalf("expected nil path, got %v", p)
	}
	if p := ECMPPath(g, hosts[0], hosts[1], 1); p != nil {
		t.Fatalf("expected nil ECMP path, got %v", p)
	}
}

func TestECMPPathValidAndSpreads(t *testing.T) {
	g := topology.FatTree(8)
	src := g.HostByCoord(0, 0, 0)
	dst := g.HostByCoord(5, 2, 1)
	want := BFS(g, src).Dist[dst]
	cores := map[topology.NodeID]bool{}
	for key := uint64(0); key < 64; key++ {
		p := ECMPPath(g, src, dst, key)
		if int32(len(p)-1) != want {
			t.Fatalf("ECMP path not shortest: len=%d want %d", len(p)-1, want)
		}
		for _, n := range p {
			if g.Node(n).Kind == topology.Core {
				cores[n] = true
			}
		}
		// determinism
		q := ECMPPath(g, src, dst, key)
		for i := range p {
			if p[i] != q[i] {
				t.Fatal("ECMPPath not deterministic")
			}
		}
	}
	if len(cores) < 4 {
		t.Fatalf("ECMP used only %d distinct cores over 64 flows; hashing not spreading", len(cores))
	}
}

func TestECMPAvoidsFailedLinks(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := topology.LeafSpine(16, 48, 2)
	g.FailRandomFraction(0.10, topology.TierLinks(topology.Spine, topology.Leaf), rng)
	hosts := g.Hosts()
	for key := uint64(0); key < 32; key++ {
		p := ECMPPath(g, hosts[0], hosts[len(hosts)-1], key)
		if p == nil {
			t.Fatal("fabric should remain connected at 10% failures")
		}
		for _, l := range PathLinks(g, p) {
			if g.Link(l).Failed {
				t.Fatal("ECMP path crosses failed link")
			}
		}
	}
}

func TestAllMinNextHops(t *testing.T) {
	g := topology.FatTree(4)
	dst := g.Hosts()[0]
	hops := AllMinNextHops(g, dst)
	d := BFS(g, dst)
	for id, parents := range hops {
		n := topology.NodeID(id)
		if n == dst || !d.Reachable(n) {
			if len(parents) != 0 {
				t.Fatalf("node %d should have no parents", id)
			}
			continue
		}
		if len(parents) == 0 {
			t.Fatalf("reachable node %d has no parent toward dst", id)
		}
		for _, p := range parents {
			if d.Dist[p] != d.Dist[n]-1 {
				t.Fatalf("parent %d of %d not one hop closer", p, n)
			}
		}
	}
	// A ToR in a remote pod should have k/2=2 equal-cost parents (its aggs).
	tor := g.NodesOfKind(topology.ToR)[7]
	if len(hops[tor]) != 2 {
		t.Fatalf("remote ToR has %d parents, want 2", len(hops[tor]))
	}
}

func TestPathLinksEmpty(t *testing.T) {
	g := topology.FatTree(4)
	if PathLinks(g, nil) != nil || PathLinks(g, []topology.NodeID{3}) != nil {
		t.Fatal("short paths must yield no links")
	}
}

// Property: for random failure sets, every ECMP path that exists is a
// shortest live path and never uses a failed link.
func TestQuickECMPShortestUnderFailures(t *testing.T) {
	f := func(seed int64, key uint64, pct uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := topology.LeafSpine(8, 8, 2)
		g.FailRandomFraction(float64(pct%30)/100, topology.TierLinks(topology.Spine, topology.Leaf), rng)
		hosts := g.Hosts()
		src := hosts[rng.Intn(len(hosts))]
		dst := hosts[rng.Intn(len(hosts))]
		if src == dst {
			return true
		}
		d := BFS(g, src)
		p := ECMPPath(g, src, dst, key)
		if !d.Reachable(dst) {
			return p == nil
		}
		if p == nil || int32(len(p)-1) != d.Dist[dst] {
			return false
		}
		for _, l := range PathLinks(g, p) {
			if g.Link(l).Failed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkBFS measures one distance-field computation on the Fig. 7
// leaf-spine fabric — the kernel every tree construction and ECMP path
// lookup re-runs.
func BenchmarkBFS(b *testing.B) {
	g := topology.LeafSpine(16, 48, 2)
	src := g.Hosts()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := BFS(g, src)
		if d.Max == 0 {
			b.Fatal("degenerate field")
		}
	}
}

// BFSInto must produce fields identical to a fresh BFS even when the
// reused field previously held a larger fabric's result.
func TestBFSIntoReuseMatchesFresh(t *testing.T) {
	big := topology.FatTree(8)
	small := topology.LeafSpine(2, 4, 2)
	var reused DistanceField
	BFSInto(big, big.Hosts()[3], &reused) // dirty the scratch with a big run
	for _, src := range []topology.NodeID{small.Hosts()[0], small.Hosts()[5]} {
		got := BFSInto(small, src, &reused)
		want := BFS(small, src)
		if got.Max != want.Max || got.Source != want.Source || len(got.Dist) != len(want.Dist) {
			t.Fatalf("field header mismatch: got{src=%d max=%d n=%d} want{src=%d max=%d n=%d}",
				got.Source, got.Max, len(got.Dist), want.Source, want.Max, len(want.Dist))
		}
		for i := range want.Dist {
			if got.Dist[i] != want.Dist[i] {
				t.Fatalf("dist[%d]=%d want %d after reuse", i, got.Dist[i], want.Dist[i])
			}
		}
		gl, wl := got.Layers(), want.Layers()
		if len(gl) != len(wl) {
			t.Fatalf("layer count %d want %d", len(gl), len(wl))
		}
		for j := range wl {
			if len(gl[j]) != len(wl[j]) {
				t.Fatalf("layer %d size %d want %d", j, len(gl[j]), len(wl[j]))
			}
			for k := range wl[j] {
				if gl[j][k] != wl[j][k] {
					t.Fatalf("layer %d member %d: %d want %d", j, k, gl[j][k], wl[j][k])
				}
			}
		}
	}
}

// Borrowed fields must be safe under concurrent use — the parallel
// experiment harness runs many simulations at once, each borrowing.
func TestBorrowBFSConcurrent(t *testing.T) {
	g := topology.FatTree(4)
	hosts := g.Hosts()
	want := BFS(g, hosts[0])
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func() {
			for i := 0; i < 200; i++ {
				d := BorrowBFS(g, hosts[0])
				for j := range want.Dist {
					if d.Dist[j] != want.Dist[j] {
						d.Release()
						done <- fmt.Errorf("dist[%d]=%d want %d", j, d.Dist[j], want.Dist[j])
						return
					}
				}
				d.Release()
			}
			done <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// BenchmarkBorrowBFS measures the pooled variant BenchmarkBFS allocates
// for; steady state is allocation-free.
func BenchmarkBorrowBFS(b *testing.B) {
	g := topology.LeafSpine(16, 48, 2)
	src := g.Hosts()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := BorrowBFS(g, src)
		if d.Max == 0 {
			b.Fatal("degenerate field")
		}
		d.Release()
	}
}
