package controller

import (
	"math"
	"math/rand"
	"testing"

	"peel/internal/sim"
)

func TestSetupDelayDistribution(t *testing.T) {
	m := New(rand.New(rand.NewSource(1)))
	var sum, sumSq float64
	const n = 50000
	for i := 0; i < n; i++ {
		d := m.SetupDelay().Seconds()
		if d < m.Floor.Seconds() {
			t.Fatalf("sample %v below floor", d)
		}
		sum += d
		sumSq += d * d
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	// Truncation at the floor pulls the mean slightly above 10 ms.
	if mean < 0.0095 || mean > 0.0115 {
		t.Fatalf("mean %v want ≈0.010 (N(10ms,5ms))", mean)
	}
	if std < 0.004 || std > 0.006 {
		t.Fatalf("std %v want ≈0.005", std)
	}
}

func TestInstallSchedulesAfterDelay(t *testing.T) {
	m := New(rand.New(rand.NewSource(2)))
	var eng sim.Engine
	var firedAt sim.Time = -1
	d := m.Install(&eng, func() { firedAt = eng.Now() })
	eng.Run(0)
	if firedAt != d {
		t.Fatalf("fired at %v, delay was %v", firedAt, d)
	}
	if d < m.Floor {
		t.Fatalf("delay %v below floor", d)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	a := New(rand.New(rand.NewSource(7)))
	b := New(rand.New(rand.NewSource(7)))
	for i := 0; i < 100; i++ {
		if a.SetupDelay() != b.SetupDelay() {
			t.Fatal("same seed must give same delays")
		}
	}
}
