package controller

import (
	"math/rand"
	"testing"

	"peel/internal/invariant"
)

// Mutation self-test: a setup delay below the truncation floor must trip
// the floor checker.

func TestMutationSetupFloorFires(t *testing.T) {
	m := New(rand.New(rand.NewSource(1)))
	s := invariant.NewSuite()
	m.reportSetup(s, m.Floor-1)
	if s.Violations(invariant.ControllerSetupFloor) == 0 {
		t.Fatal("setup-floor checker did not fire on a sub-floor delay")
	}
	m.reportSetup(s, m.Floor)
	if got := s.Violations(invariant.ControllerSetupFloor); got != 1 {
		t.Fatalf("floor-respecting delay also flagged: %d violations", got)
	}
}
