// Package controller models the centralized SDN controller that Orca
// depends on for per-group rule installation and that PEEL's optional
// two-stage refinement uses in the background (§3.1, §3.3).
//
// Following the paper, flow-setup latency is drawn from a normal
// distribution N(10 ms, 5 ms) (He et al. [16,17]), truncated below at a
// configurable floor so a lucky sample cannot finish before the request
// even reaches the controller.
package controller

import (
	"math/rand"

	"peel/internal/invariant"
	"peel/internal/sim"
	"peel/internal/telemetry"
)

// Model samples controller flow-setup delays.
type Model struct {
	Mean   sim.Time
	StdDev sim.Time
	Floor  sim.Time
	rng    *rand.Rand
}

// New returns the paper's N(10ms, 5ms) controller with a 100 µs floor.
func New(rng *rand.Rand) *Model {
	return &Model{
		Mean:   10 * sim.Millisecond,
		StdDev: 5 * sim.Millisecond,
		Floor:  100 * sim.Microsecond,
		rng:    rng,
	}
}

// SetupDelay draws one flow-setup latency sample.
func (m *Model) SetupDelay() sim.Time {
	d := sim.Time(m.rng.NormFloat64()*float64(m.StdDev)) + m.Mean
	if d < m.Floor {
		d = m.Floor
	}
	return d
}

// Install schedules fn once the controller has finished pushing rules for
// a new group, returning the sampled delay.
func (m *Model) Install(eng *sim.Engine, fn func()) sim.Time {
	d := m.SetupDelay()
	m.reportSetup(invariant.Active(), d)
	if ts := telemetry.Active(); ts != nil {
		ts.Counter("controller.installs").Inc()
		ts.Histogram("controller.install_ps", telemetry.Log2Layout()).Observe(int64(d))
		ts.Recorder().Record(eng.Now(), telemetry.KindControllerInstall, 0, 0, int64(d))
	}
	eng.After(d, fn)
	return d
}

// reportSetup checks the truncation contract: no sampled setup delay may
// undercut the floor (§3.1's "cannot finish before the request arrives").
func (m *Model) reportSetup(s *invariant.Suite, d sim.Time) {
	if s == nil {
		return
	}
	s.Checkf(invariant.ControllerSetupFloor, d >= m.Floor,
		"setup delay %v below floor %v", d.Duration(), m.Floor.Duration())
}
