package experiments

import (
	"fmt"
	"math/rand"

	"peel/internal/collective"
	"peel/internal/telemetry"
	"peel/internal/topology"
	"peel/internal/workload"
)

// StripingStudy evaluates link-disjoint striping (steiner.DisjointTrees
// + the striped-peel schemes) against the single-tree schemes across
// message sizes — the bandwidth-optimal broadcast question of Khalilov
// et al. that closes §2.3's multipath gap. The fabric is the 2:1
// oversubscribed 8-ary fat-tree under elevated background load: the
// regime where a broadcast's bottleneck is its tree's core links, so
// spreading chunks over k disjoint core paths buys up to k× the
// delivery bandwidth. For small messages striping only fragments the
// pipeline; for large ones the disjoint stripes must pull the CCT at or
// below single-tree PEEL (the acceptance gate pinned by
// TestStripingStudyLargeMessages).
func StripingStudy(o Options) (*Result, error) {
	o = o.normalized()
	stripes := o.Stripes
	if stripes <= 0 {
		stripes = 4
	}
	headline := collective.StripedPEEL
	if stripes < 4 {
		headline = collective.StripedPEEL2
	}
	sizesMB := []float64{4, 16, 64}
	if o.Samples <= Quick().Samples {
		sizesMB = []float64{4, 64}
	}
	build := func() *topology.Graph {
		g := topology.FatTree(8)
		g.Oversubscribe(2)
		return g
	}
	variants := []struct {
		label  string
		scheme collective.Scheme
	}{
		{"ring", collective.Ring},
		{"orca", collective.Orca},
		{"peel", collective.PEEL},
		{"multitree-4", collective.MultiTree4}, // shared-link striping control
		{"striped-2", collective.StripedPEEL2},
		{string(headline), headline},
	}
	res := &Result{
		Name:   "Striping (§2.3 / Khalilov): link-disjoint trees vs single-tree schemes (256-GPU, 2:1 oversub)",
		XLabel: "msgMB",
		X:      sizesMB,
	}
	for _, v := range variants {
		res.Mean = append(res.Mean, telemetry.Series{Label: v.label, X: sizesMB, Y: make([]float64, len(sizesMB))})
		res.P99 = append(res.P99, telemetry.Series{Label: v.label + "/p99", X: sizesMB, Y: make([]float64, len(sizesMB))})
	}
	workloads := make([][]*workload.Collective, len(sizesMB))
	for mi, mb := range sizesMB {
		msg := int64(mb) << 20
		gWork := build()
		clW := workload.NewCluster(gWork, 8)
		rng := rand.New(rand.NewSource(o.Seed + int64(mb)))
		// Elevated load creates the core-link contention striping is for.
		cols, err := clW.Generate(o.Samples, 0.8, 100e9, workload.Spec{GPUs: 256, Bytes: msg}, rng)
		if err != nil {
			return nil, err
		}
		workloads[mi] = cols
	}
	span := o.perfSpanStart()
	err := forEachIndex(o.Workers, len(sizesMB)*len(variants), func(k int) error {
		mi, vi := k/len(variants), k%len(variants)
		msg := int64(sizesMB[mi]) << 20
		samples, _, err := runWorkload(build, true, variants[vi].scheme, workloads[mi],
			o.configFor(msg, o.Seed), 8, o.MaxEvents, span.c, o.TelemetrySample)
		if err != nil {
			return fmt.Errorf("striping %s @ %vMB: %w", variants[vi].label, sizesMB[mi], err)
		}
		res.Mean[vi].Y[mi] = samples.Mean()
		res.P99[vi].Y[mi] = samples.P99()
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes,
		"striped-peel* stripe chunks over pairwise link-disjoint peeled trees; multitree-4's variants may share links",
		fmt.Sprintf("headline stripe count: %d (peelsim -stripes)", stripes),
		"2:1 oversubscribed core at 0.8 load: trees, not NICs, are the bottleneck")
	span.finish(res)
	return res, nil
}
