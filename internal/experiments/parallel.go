package experiments

import (
	"sync"
	"sync/atomic"
)

// forEachIndex runs job(0..n-1) on a bounded pool of workers goroutines.
// Each job must be independent; callers write results into preallocated
// index-addressed slots so the output is byte-identical to running the
// jobs serially. With workers <= 1 the jobs run inline in index order —
// the determinism oracle for the parallel path.
//
// Error handling is deterministic too: all jobs run to completion (no
// cancellation, so partial sweeps never depend on scheduling), then the
// lowest-index error is returned — the same one the serial path reports
// first.
func forEachIndex(workers, n int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = job(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// pointSeed derives the workload seed for sweep point i from the base
// seed with a splitmix64-style mix. Seeds depend on the sweep *index*,
// never on the (float) X value: the old `seed + int64(x*1000)` scheme
// collided whenever two X values truncated to the same integer (e.g.
// loss rates 0.001 and 0.0005 ⇒ both 0), silently reusing one workload
// for two points.
func pointSeed(seed int64, i int) int64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(i+1)*0xbf58476d1ce4e5b9
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}
