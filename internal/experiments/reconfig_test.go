package experiments

import "testing"

// TestReconfigStudyPlannedNeverLoses pins the acceptance claim of the
// scheduled-reconfiguration subsystem: on the same circuit-swap draws,
// announced epochs (eager pre-peel + planned dark windows) must not lose
// to unannounced epochs (failure-driven invalidation) for PEEL, at any
// epoch count, on mean or p99 CCT.
func TestReconfigStudyPlannedNeverLoses(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	o := Quick()
	o.Samples = 2
	res, err := ReconfigStudy(o)
	if err != nil {
		t.Fatal(err)
	}
	planned := seriesY(t, res, "peel/planned", false)
	unplanned := seriesY(t, res, "peel/unplanned", false)
	plannedP99 := seriesY(t, res, "peel/planned", true)
	unplannedP99 := seriesY(t, res, "peel/unplanned", true)
	for xi, n := range res.X {
		if planned[xi] > unplanned[xi] {
			t.Errorf("n=%v epochs: planned mean CCT %.6f > unplanned %.6f", n, planned[xi], unplanned[xi])
		}
		if plannedP99[xi] > unplannedP99[xi] {
			t.Errorf("n=%v epochs: planned p99 CCT %.6f > unplanned %.6f", n, plannedP99[xi], unplannedP99[xi])
		}
	}
	// The planned arm actually exercised the eager path: pre-peels landed,
	// and the reactive repair path fired less often than unplanned.
	pre := seriesY(t, res, "peel/planned/prepeels", false)
	total := 0.0
	for _, v := range pre {
		total += v
	}
	if total == 0 {
		t.Error("planned arm installed no pre-peels; the A/B is vacuous")
	}
	reps := seriesY(t, res, "peel/planned/repairs", false)
	ureps := seriesY(t, res, "peel/unplanned/repairs", false)
	rsum, usum := 0.0, 0.0
	for xi := range reps {
		rsum += reps[xi]
		usum += ureps[xi]
	}
	if rsum > usum {
		t.Errorf("planned arm repaired more than unplanned (%.1f vs %.1f)", rsum, usum)
	}
}

// TestHeteroStudyRosterRuns pins roster portability: every scheme
// (including the symmetric-variant striper and the prefix-planner
// consumer) completes on seeded irregular two-layer fabrics with
// positive CCT, and the realized-shape notes are present.
func TestHeteroStudyRosterRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	o := Quick()
	o.Samples = 2
	res, err := HeteroStudy(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"peel", "ring", "optimal", "multitree-2", "striped-peel-2"} {
		y := seriesY(t, res, label, false)
		for xi, v := range y {
			if v <= 0 {
				t.Errorf("%s: empty CCT on instance %d", label, xi)
			}
		}
	}
	if len(res.Notes) < len(res.X) {
		t.Fatalf("missing realized-shape notes: %d notes for %d instances", len(res.Notes), len(res.X))
	}
}
