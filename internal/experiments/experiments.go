// Package experiments reproduces every table and figure in the paper's
// evaluation (§4) plus the switch-state and approximation headlines. Each
// Fig* function returns a structured Result whose series correspond to
// the curves in the paper; cmd/peelsim prints them and EXPERIMENTS.md
// records paper-vs-measured shape comparisons.
package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"peel/internal/collective"
	"peel/internal/controller"
	"peel/internal/core"
	"peel/internal/invariant"
	"peel/internal/netsim"
	"peel/internal/perfstats"
	"peel/internal/sim"
	"peel/internal/telemetry"
	"peel/internal/topology"
	"peel/internal/workload"
)

// Options tunes experiment fidelity. Zero values pick full-fidelity
// defaults; Quick() shrinks everything for tests and benchmarks.
type Options struct {
	// Samples is the number of collectives simulated per configuration
	// point (the CCT distribution's sample count).
	Samples int
	// Seed drives workload generation and the simulator's RNGs.
	Seed int64
	// FramesPerMessage controls simulation granularity: the frame size is
	// message/FramesPerMessage clamped to [4 KiB, 4 MiB]. Coarser frames
	// rescale absolute times identically across schemes (DESIGN.md).
	FramesPerMessage int64
	// Load is the offered load for Poisson workloads (the paper: 0.30).
	Load float64
	// MaxEvents bounds each simulation run (safety).
	MaxEvents uint64
	// ChaosFrac, when positive, restricts ChaosStudy to a single failure
	// fraction instead of the default sweep.
	ChaosFrac float64
	// Workers bounds the number of concurrent simulation runs per sweep.
	// Each (scheme, X) point is an independent deterministic simulation,
	// so results are byte-identical for any worker count; 1 runs the
	// points serially (the determinism oracle), 0 defaults to
	// runtime.GOMAXPROCS(0).
	Workers int
	// Perf, when set, appends a performance digest (runs, events/s, wall
	// time, parallel speedup, allocations) to each Result's Notes. Off by
	// default so rendered output stays byte-stable across machines.
	Perf bool
	// Repair selects how the chaos watchdog recomputes delivery after a
	// mid-flight failure: "patch" (also the "" default) grafts orphaned
	// receivers into the installed tree; "full" always re-peels from
	// scratch (the pre-incremental baseline for A/B comparisons).
	Repair string
	// TelemetrySample, when positive, arms a per-run CSV time-series
	// sampler at this simulated interval (peelsim -telemetry-csv). The
	// sampler adds engine events, so runs with it armed are not
	// event-stream-comparable to runs without; aggregate telemetry totals
	// are unaffected either way.
	TelemetrySample sim.Time
	// Stripes caps the headline stripe count for StripingStudy (peelsim
	// -stripes): 4 (the default, scheme striped-peel) or 2 (striped-peel-2).
	Stripes int
}

// Defaults returns full-fidelity options.
func Defaults() Options {
	return Options{Samples: 40, Seed: 1, FramesPerMessage: 128, Load: 0.30, MaxEvents: 600_000_000}
}

// Quick returns reduced-fidelity options for tests and benchmarks.
func Quick() Options {
	return Options{Samples: 6, Seed: 1, FramesPerMessage: 32, Load: 0.30, MaxEvents: 120_000_000}
}

func (o Options) normalized() Options {
	d := Defaults()
	if o.Samples <= 0 {
		o.Samples = d.Samples
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.FramesPerMessage <= 0 {
		o.FramesPerMessage = d.FramesPerMessage
	}
	if o.Load <= 0 {
		o.Load = d.Load
	}
	if o.MaxEvents == 0 {
		o.MaxEvents = d.MaxEvents
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// perfCollector returns a live collector when perf reporting is on; a
// nil *perfstats.Collector ignores Record calls, so run helpers thread
// it unconditionally.
func (o Options) perfCollector() *perfstats.Collector {
	if !o.Perf {
		return nil
	}
	return new(perfstats.Collector)
}

// perfSpan brackets one figure's simulation work for the perf note:
// created before the runs, finished (with the Result) after them.
type perfSpan struct {
	c      *perfstats.Collector
	start  time.Time
	allocs uint64
}

func (o Options) perfSpanStart() perfSpan {
	c := o.perfCollector()
	if c == nil {
		return perfSpan{}
	}
	return perfSpan{c: c, start: time.Now(), allocs: perfstats.MemAllocs()}
}

// finish appends the digest to res.Notes. No-op for a dead span, so the
// rendered output is untouched unless -perf was requested.
func (p perfSpan) finish(res *Result) {
	if p.c == nil || res == nil {
		return
	}
	res.Notes = append(res.Notes, p.c.Note(time.Since(p.start), perfstats.MemAllocs()-p.allocs))
}

// frameFor picks the simulation frame for a message size.
func (o Options) frameFor(msgBytes int64) int64 {
	f := msgBytes / o.FramesPerMessage
	if f < 4<<10 {
		f = 4 << 10
	}
	if f > 4<<20 {
		f = 4 << 20
	}
	return f
}

// configFor builds a netsim config whose congestion thresholds scale with
// the frame size, preserving the paper's DCQCN setup in MTU-relative
// terms (Kmin≈3.3 MTU, Kmax≈133 MTU, 12 MB ≈ 8000 MTU of buffer).
func (o Options) configFor(msgBytes int64, seed int64) netsim.Config {
	cfg := netsim.DefaultConfig()
	f := o.frameFor(msgBytes)
	cfg.FrameBytes = f
	cfg.ECNKminBytes = 10 * f / 3
	cfg.ECNKmaxBytes = 133 * f
	cfg.BufferBytes = 8000 * f
	cfg.Seed = seed
	return cfg
}

// Result is one figure's regenerated data: X values plus mean- and
// p99-CCT series per scheme (or scheme-free values for analytic figures).
type Result struct {
	Name   string
	XLabel string
	X      []float64
	Mean   []telemetry.Series
	P99    []telemetry.Series
	Notes  []string
}

// Render prints the figure's series as aligned tables.
func (r *Result) Render() string {
	out := fmt.Sprintf("== %s ==\n", r.Name)
	if len(r.Mean) > 0 {
		out += "mean:\n" + telemetry.Table(r.XLabel, r.X, r.Mean)
	}
	if len(r.P99) > 0 {
		out += "p99:\n" + telemetry.Table(r.XLabel, r.X, r.P99)
	}
	for _, n := range r.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// runWorkload simulates one (fabric, scheme, workload) combination and
// returns the CCT samples. Every collective must complete; a stall is an
// error (it would silently bias the tail otherwise).
//
// Concurrency contract: runWorkload is called from worker goroutines, so
// everything it mutates — engine, network, samples, and the
// startErr/completed closure state — is a per-call local. The inputs it
// shares with sibling runs (cols, cfg) are read-only here; in particular
// the *workload.Collective structs must not be written. The -race sweep
// test in experiments_test.go enforces this.
func runWorkload(build func() *topology.Graph, usePlanner bool, scheme collective.Scheme,
	cols []*workload.Collective, cfg netsim.Config, gpusPerHost int, maxEvents uint64,
	perf *perfstats.Collector, sample sim.Time) (*telemetry.Samples, *netsim.Network, error) {

	g := build()
	eng := &sim.Engine{}
	net := netsim.New(g, eng, cfg)
	var planner *core.Planner
	if usePlanner {
		var err error
		planner, err = core.NewPlanner(g)
		if err != nil {
			return nil, nil, err
		}
	}
	cl := workload.NewCluster(g, gpusPerHost)
	ctrl := controller.New(cfg.RNG(netsim.SaltController))
	runner := collective.NewRunner(net, cl, planner, ctrl)

	samples := &telemetry.Samples{}
	completed := 0
	var startErr error
	for _, c := range cols {
		c := c
		eng.At(c.Arrival, func() {
			if err := runner.Start(c, scheme, func(cct sim.Time) {
				samples.AddTime(cct)
				completed++
			}); err != nil && startErr == nil {
				startErr = err
			}
		})
	}
	net.ArmTelemetrySampler(telemetry.Active(), sample)
	runStart := time.Now()
	if err := eng.Run(maxEvents); err != nil {
		return nil, nil, fmt.Errorf("experiments: %s: %w", scheme, err)
	}
	perf.Record(eng.Processed(), time.Since(runStart))
	if startErr != nil {
		return nil, nil, startErr
	}
	if completed != len(cols) {
		return nil, nil, fmt.Errorf("experiments: %s: %d/%d collectives completed", scheme, completed, len(cols))
	}
	// The engine drained and every collective completed: the fabric must be
	// truly quiescent (no frames live, all byte accounting zeroed).
	net.CheckQuiesced(invariant.Active())
	net.PublishTelemetry(telemetry.Active())
	return samples, net, nil
}

// sweepCCT runs a full scheme × X sweep, generating an identical workload
// per X for every scheme (same seed ⇒ same arrivals and placements).
//
// The (X, scheme) grid fans out over o.Workers goroutines: every cell is
// an independent simulation writing its mean/p99 into a preallocated
// index-addressed slot, so the Result is byte-identical for any worker
// count. Workloads are generated serially up front (cheap, and it keeps
// RNG consumption order fixed); each point's seed comes from its sweep
// index via pointSeed, never from the float X value.
func sweepCCT(name, xLabel string, xs []float64, schemes []collective.Scheme,
	build func() *topology.Graph, usePlanner bool, gpusPerHost int,
	gen func(x float64, rng *rand.Rand, cl *workload.Cluster) ([]*workload.Collective, error),
	cfgFor func(x float64) netsim.Config, o Options) (*Result, error) {

	res := &Result{Name: name, XLabel: xLabel, X: xs}
	for _, s := range schemes {
		res.Mean = append(res.Mean, telemetry.Series{Label: string(s), X: xs, Y: make([]float64, len(xs))})
		res.P99 = append(res.P99, telemetry.Series{Label: string(s) + "/p99", X: xs, Y: make([]float64, len(xs))})
	}
	// One workload per X, shared read-only across schemes.
	workloads := make([][]*workload.Collective, len(xs))
	for xi, x := range xs {
		gWork := build()
		clWork := workload.NewCluster(gWork, gpusPerHost)
		rng := rand.New(rand.NewSource(pointSeed(o.Seed, xi)))
		cols, err := gen(x, rng, clWork)
		if err != nil {
			return nil, err
		}
		workloads[xi] = cols
	}
	span := o.perfSpanStart()
	grid := len(xs) * len(schemes)
	err := forEachIndex(o.Workers, grid, func(k int) error {
		xi, si := k/len(schemes), k%len(schemes)
		cfg := cfgFor(xs[xi])
		samples, _, err := runWorkload(build, usePlanner, schemes[si], workloads[xi], cfg, gpusPerHost, o.MaxEvents, span.c, o.TelemetrySample)
		if err != nil {
			return fmt.Errorf("%s @ %s=%v: %w", name, xLabel, xs[xi], err)
		}
		res.Mean[si].Y[xi] = samples.Mean()
		res.P99[si].Y[xi] = samples.P99()
		return nil
	})
	if err != nil {
		return nil, err
	}
	span.finish(res)
	return res, nil
}
