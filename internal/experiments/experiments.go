// Package experiments reproduces every table and figure in the paper's
// evaluation (§4) plus the switch-state and approximation headlines. Each
// Fig* function returns a structured Result whose series correspond to
// the curves in the paper; cmd/peelsim prints them and EXPERIMENTS.md
// records paper-vs-measured shape comparisons.
package experiments

import (
	"fmt"
	"math/rand"

	"peel/internal/collective"
	"peel/internal/controller"
	"peel/internal/core"
	"peel/internal/metrics"
	"peel/internal/netsim"
	"peel/internal/sim"
	"peel/internal/topology"
	"peel/internal/workload"
)

// Options tunes experiment fidelity. Zero values pick full-fidelity
// defaults; Quick() shrinks everything for tests and benchmarks.
type Options struct {
	// Samples is the number of collectives simulated per configuration
	// point (the CCT distribution's sample count).
	Samples int
	// Seed drives workload generation and the simulator's RNGs.
	Seed int64
	// FramesPerMessage controls simulation granularity: the frame size is
	// message/FramesPerMessage clamped to [4 KiB, 4 MiB]. Coarser frames
	// rescale absolute times identically across schemes (DESIGN.md).
	FramesPerMessage int64
	// Load is the offered load for Poisson workloads (the paper: 0.30).
	Load float64
	// MaxEvents bounds each simulation run (safety).
	MaxEvents uint64
	// ChaosFrac, when positive, restricts ChaosStudy to a single failure
	// fraction instead of the default sweep.
	ChaosFrac float64
}

// Defaults returns full-fidelity options.
func Defaults() Options {
	return Options{Samples: 40, Seed: 1, FramesPerMessage: 128, Load: 0.30, MaxEvents: 600_000_000}
}

// Quick returns reduced-fidelity options for tests and benchmarks.
func Quick() Options {
	return Options{Samples: 6, Seed: 1, FramesPerMessage: 32, Load: 0.30, MaxEvents: 120_000_000}
}

func (o Options) normalized() Options {
	d := Defaults()
	if o.Samples <= 0 {
		o.Samples = d.Samples
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.FramesPerMessage <= 0 {
		o.FramesPerMessage = d.FramesPerMessage
	}
	if o.Load <= 0 {
		o.Load = d.Load
	}
	if o.MaxEvents == 0 {
		o.MaxEvents = d.MaxEvents
	}
	return o
}

// frameFor picks the simulation frame for a message size.
func (o Options) frameFor(msgBytes int64) int64 {
	f := msgBytes / o.FramesPerMessage
	if f < 4<<10 {
		f = 4 << 10
	}
	if f > 4<<20 {
		f = 4 << 20
	}
	return f
}

// configFor builds a netsim config whose congestion thresholds scale with
// the frame size, preserving the paper's DCQCN setup in MTU-relative
// terms (Kmin≈3.3 MTU, Kmax≈133 MTU, 12 MB ≈ 8000 MTU of buffer).
func (o Options) configFor(msgBytes int64, seed int64) netsim.Config {
	cfg := netsim.DefaultConfig()
	f := o.frameFor(msgBytes)
	cfg.FrameBytes = f
	cfg.ECNKminBytes = 10 * f / 3
	cfg.ECNKmaxBytes = 133 * f
	cfg.BufferBytes = 8000 * f
	cfg.Seed = seed
	return cfg
}

// Result is one figure's regenerated data: X values plus mean- and
// p99-CCT series per scheme (or scheme-free values for analytic figures).
type Result struct {
	Name   string
	XLabel string
	X      []float64
	Mean   []metrics.Series
	P99    []metrics.Series
	Notes  []string
}

// Render prints the figure's series as aligned tables.
func (r *Result) Render() string {
	out := fmt.Sprintf("== %s ==\n", r.Name)
	if len(r.Mean) > 0 {
		out += "mean:\n" + metrics.Table(r.XLabel, r.X, r.Mean)
	}
	if len(r.P99) > 0 {
		out += "p99:\n" + metrics.Table(r.XLabel, r.X, r.P99)
	}
	for _, n := range r.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// runWorkload simulates one (fabric, scheme, workload) combination and
// returns the CCT samples. Every collective must complete; a stall is an
// error (it would silently bias the tail otherwise).
func runWorkload(build func() *topology.Graph, usePlanner bool, scheme collective.Scheme,
	cols []*workload.Collective, cfg netsim.Config, gpusPerHost int, maxEvents uint64) (*metrics.Samples, *netsim.Network, error) {

	g := build()
	eng := &sim.Engine{}
	net := netsim.New(g, eng, cfg)
	var planner *core.Planner
	if usePlanner {
		var err error
		planner, err = core.NewPlanner(g)
		if err != nil {
			return nil, nil, err
		}
	}
	cl := workload.NewCluster(g, gpusPerHost)
	ctrl := controller.New(cfg.RNG(netsim.SaltController))
	runner := collective.NewRunner(net, cl, planner, ctrl)

	samples := &metrics.Samples{}
	completed := 0
	var startErr error
	for _, c := range cols {
		c := c
		eng.At(c.Arrival, func() {
			if err := runner.Start(c, scheme, func(cct sim.Time) {
				samples.AddTime(cct)
				completed++
			}); err != nil && startErr == nil {
				startErr = err
			}
		})
	}
	if err := eng.Run(maxEvents); err != nil {
		return nil, nil, fmt.Errorf("experiments: %s: %w", scheme, err)
	}
	if startErr != nil {
		return nil, nil, startErr
	}
	if completed != len(cols) {
		return nil, nil, fmt.Errorf("experiments: %s: %d/%d collectives completed", scheme, completed, len(cols))
	}
	return samples, net, nil
}

// sweepCCT runs a full scheme × X sweep, generating an identical workload
// per X for every scheme (same seed ⇒ same arrivals and placements).
func sweepCCT(name, xLabel string, xs []float64, schemes []collective.Scheme,
	build func() *topology.Graph, usePlanner bool, gpusPerHost int,
	gen func(x float64, rng *rand.Rand, cl *workload.Cluster) ([]*workload.Collective, error),
	cfgFor func(x float64) netsim.Config, maxEvents uint64, seed int64) (*Result, error) {

	res := &Result{Name: name, XLabel: xLabel, X: xs}
	for _, s := range schemes {
		res.Mean = append(res.Mean, metrics.Series{Label: string(s), X: xs})
		res.P99 = append(res.P99, metrics.Series{Label: string(s) + "/p99", X: xs})
	}
	for _, x := range xs {
		// One workload per X, shared verbatim across schemes.
		gWork := build()
		clWork := workload.NewCluster(gWork, gpusPerHost)
		rng := rand.New(rand.NewSource(seed + int64(x*1000)))
		cols, err := gen(x, rng, clWork)
		if err != nil {
			return nil, err
		}
		for si, s := range schemes {
			cfg := cfgFor(x)
			samples, _, err := runWorkload(build, usePlanner, s, cols, cfg, gpusPerHost, maxEvents)
			if err != nil {
				return nil, fmt.Errorf("%s @ %s=%v: %w", name, xLabel, x, err)
			}
			res.Mean[si].Y = append(res.Mean[si].Y, samples.Mean())
			res.P99[si].Y = append(res.P99[si].Y, samples.P99())
		}
	}
	return res, nil
}
