package experiments

import (
	"fmt"
	"math/rand"

	"peel/internal/collective"
	"peel/internal/core"
	"peel/internal/netsim"
	"peel/internal/routing"
	"peel/internal/steiner"
	"peel/internal/telemetry"
	"peel/internal/topology"
	"peel/internal/workload"
)

// StateTable reproduces the §1/§3.2 switch-state headline: PEEL's k−1
// pre-installed rules versus naive per-group entries, and the per-packet
// header size, across fat-tree degrees.
func StateTable(o Options) (*Result, error) {
	ks := []float64{8, 16, 32, 64, 128}
	res := &Result{Name: "State: PEEL rules vs naive entries vs header", XLabel: "k", X: ks}
	rules := telemetry.Series{Label: "peel-rules", X: ks}
	naive := telemetry.Series{Label: "naive-entries", X: ks}
	hdr := telemetry.Series{Label: "header-B", X: ks}
	hostsS := telemetry.Series{Label: "hosts", X: ks}
	for _, k := range ks {
		s := core.StateFor(int(k))
		rules.Y = append(rules.Y, float64(s.PEELRules))
		naive.Y = append(naive.Y, s.NaiveEntries)
		hdr.Y = append(hdr.Y, float64(s.HeaderBytes))
		hostsS.Y = append(hostsS.Y, float64(s.Hosts))
	}
	res.Mean = []telemetry.Series{hostsS, rules, naive, hdr}
	s64 := core.StateFor(64)
	res.Notes = append(res.Notes, fmt.Sprintf(
		"k=64: %d hosts, %d rules (paper: 63) vs %.2g naive entries (paper: >4e9), header %d B (<8 B)",
		s64.Hosts, s64.PEELRules, s64.NaiveEntries, s64.HeaderBytes))
	return res, nil
}

// GuardAblation reproduces the §4 congestion-control ablation: PEEL's
// sender-side 50 µs guard timer versus reacting to every CNP (the paper
// reports a 12× p99-CCT reduction for a 64-GPU/32 MB broadcast).
//
// CNP implosion needs per-MTU-scale marking to sustain itself, so this
// experiment runs near-MTU frames with the paper's untranslated DCQCN
// thresholds (5 kB/200 kB/1%) and 256-GPU groups for receiver fan-in,
// under 60% offered load.
func GuardAblation(o Options) (*Result, error) {
	o = o.normalized()
	const msg = int64(32) << 20
	build := func() *topology.Graph { return topology.FatTree(8) }
	span := o.perfSpanStart()
	run := func(guard bool) (*telemetry.Samples, uint64, uint64, error) {
		gWork := build()
		cl := workload.NewCluster(gWork, 8)
		rng := rand.New(rand.NewSource(o.Seed))
		cols, err := cl.Generate(o.Samples, 0.6, 100e9, workload.Spec{GPUs: 256, Bytes: msg}, rng)
		if err != nil {
			return nil, 0, 0, err
		}
		cfg := netsim.DefaultConfig()
		cfg.FrameBytes = 16 << 10 // near-MTU granularity; paper thresholds
		cfg.Seed = o.Seed
		samples, net, err := runWorkload(build, true, peelVariantScheme(guard), cols, cfg, 8, o.MaxEvents, span.c, o.TelemetrySample)
		if err != nil {
			return nil, 0, 0, err
		}
		var reacts, ignored uint64
		for _, fl := range net.Flows() {
			reacts += fl.Sender().Reactions()
			ignored += fl.Sender().Ignored()
		}
		return samples, reacts, ignored, nil
	}
	with, wReacts, wIgnored, err := run(true)
	if err != nil {
		return nil, err
	}
	without, woReacts, _, err := run(false)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name:   "Guard-timer ablation (256-GPU, 32 MB, near-MTU frames)",
		XLabel: "variant(with=0,without=1)",
		X:      []float64{0, 1},
		Mean:   []telemetry.Series{{Label: "meanCCT", Y: []float64{with.Mean(), without.Mean()}}},
		P99:    []telemetry.Series{{Label: "p99CCT", Y: []float64{with.P99(), without.P99()}}},
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("p99 without/with = %.1fx, mean %.1fx (paper: 12x p99 at 64-GPU)",
			without.P99()/with.P99(), without.Mean()/with.Mean()),
		fmt.Sprintf("rate cuts: %d guarded (%d CNPs suppressed) vs %d unguarded — the CNP implosion",
			wReacts, wIgnored, woReacts))
	span.finish(res)
	return res, nil
}

// peelVariantScheme maps the guard flag onto the collective schemes: the
// guarded variant is PEEL itself; the unguarded one is PEELNoGuard.
func peelVariantScheme(guard bool) collective.Scheme {
	if guard {
		return collective.PEEL
	}
	return collective.PEELNoGuard
}

// ApproxStudy quantifies §2.3's approximation quality: the layer-peeling
// tree versus the exact Steiner optimum (small instances) and the
// max(F,|D|) lower bound, over random failure patterns — the evidence
// behind "within 1.4% of the Steiner optimum".
func ApproxStudy(o Options) (*Result, error) {
	o = o.normalized()
	failPcts := []float64{1, 5, 10, 15, 20}
	trials := o.Samples * 4
	res := &Result{Name: "Approximation: greedy vs exact vs lower bound", XLabel: "fail%", X: failPcts}
	vsExact := telemetry.Series{Label: "greedy/exact(mean)", X: failPcts}
	vsExactMax := telemetry.Series{Label: "greedy/exact(max)", X: failPcts}
	vsLB := telemetry.Series{Label: "greedy/lowerbound(mean)", X: failPcts}
	for _, pct := range failPcts {
		var sumE, maxE, sumLB float64
		n := 0
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(o.Seed + int64(pct)*1000 + int64(trial)))
			g := topology.LeafSpine(8, 12, 2)
			g.FailRandomFraction(pct/100, topology.TierLinks(topology.Spine, topology.Leaf), rng)
			hosts := g.Hosts()
			rng.Shuffle(len(hosts), func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })
			src, dests := hosts[0], hosts[1:9]
			if !allReachable(g, src, dests) {
				continue
			}
			tr, _, err := steiner.LayerPeeling(g, src, dests)
			if err != nil {
				continue
			}
			exact, err := steiner.ExactSmall(g, src, dests)
			if err != nil {
				continue
			}
			lb, err := steiner.LowerBound(g, src, dests)
			if err != nil {
				continue
			}
			r := float64(tr.Cost()) / float64(exact)
			sumE += r
			if r > maxE {
				maxE = r
			}
			sumLB += float64(tr.Cost()) / float64(lb)
			n++
		}
		if n == 0 {
			return nil, fmt.Errorf("approx study: no feasible trials at %v%%", pct)
		}
		vsExact.Y = append(vsExact.Y, sumE/float64(n))
		vsExactMax.Y = append(vsExactMax.Y, maxE)
		vsLB.Y = append(vsLB.Y, sumLB/float64(n))
	}
	res.Mean = []telemetry.Series{vsExact, vsExactMax, vsLB}
	res.Notes = append(res.Notes, "paper's headline: greedy within 1.4% of Steiner optimum on its fabric")
	return res, nil
}

// BandwidthStudy reproduces the introduction's "23% less aggregate
// bandwidth than unicast rings" headline: total fabric bytes for one
// 512-GPU broadcast under Ring versus PEEL.
func BandwidthStudy(o Options) (*Result, error) {
	o = o.normalized()
	const msg = int64(8) << 20
	build := func() *topology.Graph { return topology.FatTree(8) }
	gWork := build()
	cl := workload.NewCluster(gWork, 8)
	rng := rand.New(rand.NewSource(o.Seed))
	cols, err := cl.Generate(1, o.Load, 100e9, workload.Spec{GPUs: 512, Bytes: msg}, rng)
	if err != nil {
		return nil, err
	}
	cfg := o.configFor(msg, o.Seed)
	span := o.perfSpanStart()
	schemes := []collective.Scheme{collective.Ring, collective.PEEL, collective.Optimal}
	totals := make([]float64, len(schemes))
	err = forEachIndex(o.Workers, len(schemes), func(i int) error {
		_, net, err := runWorkload(build, true, schemes[i], cols, cfg, 8, o.MaxEvents, span.c, o.TelemetrySample)
		if err != nil {
			return err
		}
		totals[i] = float64(net.TotalBytes())
		return nil
	})
	if err != nil {
		return nil, err
	}
	bytesOf := map[collective.Scheme]float64{}
	for i, s := range schemes {
		bytesOf[s] = totals[i]
	}
	res := &Result{
		Name:   "Aggregate bandwidth: one 512-GPU broadcast",
		XLabel: "scheme(ring=0,peel=1,optimal=2)",
		X:      []float64{0, 1, 2},
		Mean: []telemetry.Series{{Label: "fabricBytes", Y: []float64{
			bytesOf[collective.Ring], bytesOf[collective.PEEL], bytesOf[collective.Optimal]}}},
	}
	saving := 1 - bytesOf[collective.PEEL]/bytesOf[collective.Ring]
	res.Notes = append(res.Notes, fmt.Sprintf("PEEL uses %.0f%% less aggregate bandwidth than Ring (paper: 23%%)", saving*100))
	span.finish(res)
	return res, nil
}

func allReachable(g *topology.Graph, src topology.NodeID, dests []topology.NodeID) bool {
	d := routing.BFS(g, src)
	for _, dst := range dests {
		if !d.Reachable(dst) {
			return false
		}
	}
	return true
}
