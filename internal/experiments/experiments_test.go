package experiments

import (
	"math"
	"strings"
	"testing"
)

func seriesY(t *testing.T, res *Result, label string, p99 bool) []float64 {
	t.Helper()
	set := res.Mean
	if p99 {
		set = res.P99
	}
	for _, s := range set {
		if s.Label == label || strings.TrimSuffix(s.Label, "/p99") == label {
			return s.Y
		}
	}
	t.Fatalf("series %q not found in %s", label, res.Name)
	return nil
}

func TestFig1Shape(t *testing.T) {
	res, err := Fig1(Quick())
	if err != nil {
		t.Fatal(err)
	}
	ring := seriesY(t, res, "ring", false)
	opt := seriesY(t, res, "optimal", false)
	tree := seriesY(t, res, "tree", false)
	if !(ring[0] > opt[0] && tree[0] > opt[0]) {
		t.Fatalf("unicast totals must exceed optimal: ring=%v tree=%v opt=%v", ring[0], tree[0], opt[0])
	}
	if ring[0] < 1.5*opt[0] {
		t.Fatalf("ring overshoot too small: %v vs %v", ring[0], opt[0])
	}
	if opt[1] != 2 {
		t.Fatalf("optimal core traversals=%v want 2", opt[1])
	}
}

func TestFig3Shape(t *testing.T) {
	res, err := Fig3(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// At every FPR the curve is increasing in k, and k=64 at 20% exceeds
	// the MTU (the paper's key claim).
	for _, s := range res.Mean {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] <= s.Y[i-1] {
				t.Fatalf("%s not increasing: %v", s.Label, s.Y)
			}
		}
	}
	fpr20 := seriesY(t, res, "FPR=20%", false)
	if fpr20[len(fpr20)-1] <= 1500 {
		t.Fatalf("k=64 @ 20%% = %v B, must exceed MTU", fpr20[len(fpr20)-1])
	}
	fpr1 := seriesY(t, res, "FPR=1%", false)
	if fpr1[0] >= 1500 {
		t.Fatalf("k=4 @ 1%% = %v B, should be small", fpr1[0])
	}
}

func TestStateTableHeadlines(t *testing.T) {
	res, err := StateTable(Quick())
	if err != nil {
		t.Fatal(err)
	}
	rules := seriesY(t, res, "peel-rules", false)
	naive := seriesY(t, res, "naive-entries", false)
	hdr := seriesY(t, res, "header-B", false)
	// X = {8,16,32,64,128}: rules k−1, naive 2^(k/2), header <8.
	wantRules := []float64{7, 15, 31, 63, 127}
	for i := range wantRules {
		if rules[i] != wantRules[i] {
			t.Fatalf("rules=%v want %v", rules, wantRules)
		}
		if hdr[i] >= 8 {
			t.Fatalf("header %v B at k=%v", hdr[i], res.X[i])
		}
		if naive[i] != math.Pow(2, res.X[i]/2) {
			t.Fatalf("naive[%d]=%v want 2^%v", i, naive[i], res.X[i]/2)
		}
	}
}

func TestApproxStudyBounds(t *testing.T) {
	o := Quick()
	o.Samples = 3
	res, err := ApproxStudy(o)
	if err != nil {
		t.Fatal(err)
	}
	mean := seriesY(t, res, "greedy/exact(mean)", false)
	max := seriesY(t, res, "greedy/exact(max)", false)
	for i := range mean {
		if mean[i] < 1 || max[i] < mean[i] {
			t.Fatalf("ratio inconsistency: mean=%v max=%v", mean, max)
		}
		if mean[i] > 1.3 {
			t.Fatalf("greedy far from optimal on average: %v", mean)
		}
	}
}

func TestRenderProducesTables(t *testing.T) {
	res, err := Fig3(Quick())
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	if !strings.Contains(out, "Fig3") || !strings.Contains(out, "FPR=1%") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

// The simulation-backed figures are exercised in quick mode — these are
// the expensive end-to-end paths; full-fidelity runs live in bench_test.go
// and cmd/peelsim.

func TestFig7QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	o := Quick()
	o.Samples = 4
	res, err := Fig7(o)
	if err != nil {
		t.Fatal(err)
	}
	peel := seriesY(t, res, "peel", false)
	ring := seriesY(t, res, "ring", false)
	tree := seriesY(t, res, "tree", false)
	for i := range res.X {
		if !(peel[i] < ring[i]) {
			t.Errorf("fail%%=%v: peel %v !< ring %v", res.X[i], peel[i], ring[i])
		}
		if !(peel[i] < tree[i]) {
			t.Errorf("fail%%=%v: peel %v !< tree %v", res.X[i], peel[i], tree[i])
		}
	}
}

func TestFig5QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	o := Quick()
	o.Samples = 4
	res, err := Fig5(o)
	if err != nil {
		t.Fatal(err)
	}
	opt := seriesY(t, res, "optimal", false)
	peel := seriesY(t, res, "peel", false)
	ring := seriesY(t, res, "ring", false)
	tree := seriesY(t, res, "tree", false)
	orca := seriesY(t, res, "orca", false)
	for i := range res.X {
		if !(opt[i] <= peel[i]*1.01) {
			t.Errorf("msg=%vMB: optimal %v > peel %v", res.X[i], opt[i], peel[i])
		}
		if !(peel[i] < ring[i] && peel[i] < tree[i]) {
			t.Errorf("msg=%vMB: peel %v not below ring %v / tree %v", res.X[i], peel[i], ring[i], tree[i])
		}
	}
	// Small messages: Orca pays the controller; PEEL must be far faster.
	if !(peel[0]*10 < orca[0]) {
		t.Errorf("2MB: peel %v not ≪ orca %v", peel[0], orca[0])
	}
}

func TestFig4QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	o := Quick()
	o.Samples = 4
	res, err := Fig4(o)
	if err != nil {
		t.Fatal(err)
	}
	with := res.P99[0].Y
	without := res.P99[1].Y
	// Small messages: controller dominates tail CCT (paper: 8× at 32 MB).
	if !(with[0] > 3*without[0]) {
		t.Errorf("2MB p99: with=%v without=%v, controller penalty missing", with[0], without[0])
	}
	// Large messages: the penalty amortizes.
	last := len(with) - 1
	if with[last] > 3*without[last] {
		t.Errorf("512MB p99: with=%v without=%v, penalty should amortize", with[last], without[last])
	}
}

func TestGuardAblationQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	o := Quick()
	o.Samples = 4
	res, err := GuardAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	with, without := res.P99[0].Y[0], res.P99[0].Y[1]
	if !(with <= without) {
		t.Errorf("guard hurt the tail: with=%v without=%v", with, without)
	}
}

func TestBandwidthStudyQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	res, err := BandwidthStudy(Quick())
	if err != nil {
		t.Fatal(err)
	}
	y := res.Mean[0].Y // ring, peel, optimal
	if !(y[2] <= y[1] && y[1] < y[0]) {
		t.Fatalf("bytes ordering violated: ring=%v peel=%v optimal=%v", y[0], y[1], y[2])
	}
}

func TestFragmentationStudyShape(t *testing.T) {
	o := Quick()
	o.Samples = 4
	res, err := FragmentationStudy(o)
	if err != nil {
		t.Fatal(err)
	}
	exactPkts := seriesY(t, res, "exact/packets", false)
	b1Pkts := seriesY(t, res, "budget1/packets", false)
	exactOver := seriesY(t, res, "exact/overhosts", false)
	b1Over := seriesY(t, res, "budget1/overhosts", false)
	// At zero fragmentation a 256-GPU contiguous rack-aligned group has
	// aligned blocks: few packets, no redundancy.
	if exactOver[0] != 0 {
		t.Fatalf("contiguous placement over-covers: %v", exactOver[0])
	}
	// Fragmentation increases exact-cover packet counts...
	last := len(res.X) - 1
	if exactPkts[last] <= exactPkts[0] {
		t.Fatalf("exact packets did not grow with fragmentation: %v", exactPkts)
	}
	for i := range res.X {
		// ...while budgets hold the packet count down and pay redundancy.
		if b1Pkts[i] > exactPkts[i]+1e-9 && exactPkts[i] > 0 {
			t.Fatalf("budget1 uses more packets than exact at f=%v", res.X[i])
		}
		if b1Over[i]+1e-9 < exactOver[i] {
			t.Fatalf("budget1 over-coverage below exact at f=%v", res.X[i])
		}
	}
	if b1Over[last] <= exactOver[last] {
		t.Fatalf("budget1 should over-cover more than exact at high fragmentation: %v vs %v", b1Over[last], exactOver[last])
	}
}

func TestDeploymentStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	o := Quick()
	o.Samples = 4
	res, err := DeploymentStudy(o)
	if err != nil {
		t.Fatal(err)
	}
	bytes := seriesY(t, res, "fabricGB", false)
	// static ≥ tor-filter (drops over-covered fan-out) and
	// static ≥ prog-cores (kills upward duplication after setup).
	if bytes[1] > bytes[0]+1e-9 {
		t.Fatalf("tor-filter increased bytes: %v vs %v", bytes[1], bytes[0])
	}
	if bytes[3] > bytes[0]+1e-9 {
		t.Fatalf("tor+cores increased bytes: %v vs %v", bytes[3], bytes[0])
	}
}

func TestMultipathStudyRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	o := Quick()
	o.Samples = 4
	res, err := MultipathStudy(o)
	if err != nil {
		t.Fatal(err)
	}
	mean := seriesY(t, res, "meanCCT", false)
	if len(mean) != 3 {
		t.Fatalf("series %v", mean)
	}
	// Striping must never be catastrophically worse than one tree.
	if mean[2] > 2*mean[0] {
		t.Fatalf("4-tree striping 2x worse than single tree: %v", mean)
	}
}

func TestOptionsNormalization(t *testing.T) {
	var zero Options
	n := zero.normalized()
	d := Defaults()
	if n.Samples != d.Samples || n.Load != d.Load || n.FramesPerMessage != d.FramesPerMessage || n.MaxEvents != d.MaxEvents {
		t.Fatalf("normalized zero != defaults: %+v vs %+v", n, d)
	}
	custom := Options{Samples: 3}.normalized()
	if custom.Samples != 3 || custom.Load != d.Load {
		t.Fatalf("partial options mishandled: %+v", custom)
	}
}

func TestFrameForClamping(t *testing.T) {
	o := Defaults() // 128 frames/message
	if f := o.frameFor(256 << 10); f != 4<<10 {
		t.Fatalf("small message frame=%d want 4KiB floor", f)
	}
	if f := o.frameFor(64 << 20); f != (64<<20)/128 {
		t.Fatalf("mid message frame=%d", f)
	}
	if f := o.frameFor(4 << 30); f != 4<<20 {
		t.Fatalf("huge message frame=%d want 4MiB cap", f)
	}
}

func TestConfigForScalesThresholds(t *testing.T) {
	o := Defaults()
	cfg := o.configFor(64<<20, 1)
	f := cfg.FrameBytes
	if cfg.ECNKmaxBytes != 133*f || cfg.BufferBytes != 8000*f {
		t.Fatalf("thresholds not frame-scaled: %+v", cfg)
	}
	if cfg.ECNKminBytes >= cfg.ECNKmaxBytes {
		t.Fatal("kmin >= kmax")
	}
}

func TestAllGatherStudyQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	o := Quick()
	o.Samples = 3
	res, err := AllGatherStudy(o)
	if err != nil {
		t.Fatal(err)
	}
	ring := seriesY(t, res, "ring", false)
	opt := seriesY(t, res, "optimal-trees", false)
	for i := range res.X {
		if opt[i] >= ring[i] {
			t.Errorf("%vMB: multicast allgather %v !< ring %v", res.X[i], opt[i], ring[i])
		}
	}
}

func TestRailStudyAlignedHalvesLinks(t *testing.T) {
	res, err := RailStudy(Quick())
	if err != nil {
		t.Fatal(err)
	}
	al := seriesY(t, res, "aligned/tree-links", false)
	ob := seriesY(t, res, "oblivious/tree-links", false)
	for i := range res.X {
		if al[i] >= ob[i] {
			t.Fatalf("aligned %v not below oblivious %v at n=%v", al[i], ob[i], res.X[i])
		}
		// Aligned tree: n hosts + 1 uplink, no spine.
		if al[i] != res.X[i] {
			t.Fatalf("aligned cost %v want %v (hosts + rail uplink)", al[i], res.X[i])
		}
	}
}

func TestLossStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	o := Quick()
	o.Samples = 3
	res, err := LossStudy(o)
	if err != nil {
		t.Fatal(err)
	}
	peel := seriesY(t, res, "peel", false)
	ring := seriesY(t, res, "ring", false)
	// Loss-free: both complete fast; under loss both slow down but
	// complete, and PEEL stays ahead.
	for i := range res.X {
		if peel[i] <= 0 || ring[i] <= 0 {
			t.Fatalf("missing data at loss=%v", res.X[i])
		}
		if peel[i] >= ring[i] {
			t.Errorf("loss=%v: peel %v !< ring %v", res.X[i], peel[i], ring[i])
		}
	}
	last := len(res.X) - 1
	if peel[last] <= peel[0] {
		t.Error("loss did not slow PEEL at all — repair path untested")
	}
}

func TestDeterministicReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	// Identical options must reproduce bit-identical results: the engine
	// breaks ties deterministically and all randomness is seeded.
	o := Quick()
	o.Samples = 3
	run := func() [][]float64 {
		res, err := Fig7(o)
		if err != nil {
			t.Fatal(err)
		}
		var out [][]float64
		for _, s := range append(res.Mean, res.P99...) {
			out = append(out, append([]float64(nil), s.Y...))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("non-deterministic result at series %d point %d: %v vs %v", i, j, a[i][j], b[i][j])
			}
		}
	}
}

func TestDeterministicReplayUnderLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	o := Quick()
	o.Samples = 2
	run := func() []float64 {
		res, err := LossStudy(o)
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for _, s := range res.Mean {
			out = append(out, s.Y...)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("loss path non-deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestIsolationStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	o := Quick()
	o.Samples = 4
	res, err := IsolationStudy(o)
	if err != nil {
		t.Fatal(err)
	}
	p99 := seriesY(t, res, "victimP99FCT", true)
	idle, peel, ring := p99[0], p99[1], p99[3]
	if !(idle <= peel) {
		t.Errorf("idle baseline %v above peel-aggressed %v", idle, peel)
	}
	if !(peel < ring) {
		t.Errorf("peel aggressor %v not gentler than ring %v on bystanders", peel, ring)
	}
}
