package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"peel/internal/collective"
	"peel/internal/controller"
	"peel/internal/core"
	"peel/internal/netsim"
	"peel/internal/perfstats"
	"peel/internal/routing"
	"peel/internal/sim"
	"peel/internal/steiner"
	"peel/internal/telemetry"
	"peel/internal/topology"
	"peel/internal/workload"
)

// FragmentationStudy explores §3.4's "resource fragmentation" question:
// as placements become less compact, how do PEEL's packet counts and
// redundant transmissions grow, and how much does a per-pod packet budget
// (adaptive prefix packing) trade between upward duplication and
// over-coverage?
//
// For each fragmentation level f, groups of 256 GPUs are placed with
// holes (each host skipped with probability f) and planned three ways:
// exact covers, budget-2 covers, and budget-1 covers. Reported series:
// packets per group, over-covered hosts per group, and redundant bytes
// fraction (over-covered hosts ÷ covered hosts).
func FragmentationStudy(o Options) (*Result, error) {
	o = o.normalized()
	fracs := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	g := topology.FatTree(8)
	pl, err := core.NewPlanner(g)
	if err != nil {
		return nil, err
	}
	cl := workload.NewCluster(g, 8)
	trials := o.Samples * 3

	variants := []struct {
		label string
		opts  core.PlanOptions
	}{
		{"exact", core.PlanOptions{}},
		{"budget2", core.PlanOptions{PacketBudget: 2}},
		{"budget1", core.PlanOptions{PacketBudget: 1}},
	}
	res := &Result{Name: "Fragmentation (§3.4): packets & redundancy vs placement holes", XLabel: "fragmentation", X: fracs}
	var pktSeries, overSeries, redSeries []telemetry.Series
	for _, v := range variants {
		pktSeries = append(pktSeries, telemetry.Series{Label: v.label + "/packets", X: fracs})
		overSeries = append(overSeries, telemetry.Series{Label: v.label + "/overhosts", X: fracs})
		redSeries = append(redSeries, telemetry.Series{Label: v.label + "/redundant-frac", X: fracs})
	}
	for _, f := range fracs {
		sums := make([]struct{ pkts, over, members float64 }, len(variants))
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(o.Seed + int64(f*1000)*100 + int64(trial)))
			hosts, err := cl.Place(workload.Spec{GPUs: 256, Fragmentation: f}, rng)
			if err != nil {
				return nil, err
			}
			src, members := hosts[0], hosts[1:]
			for vi, v := range variants {
				plan, err := pl.PlanGroupOpts(src, members, v.opts)
				if err != nil {
					return nil, err
				}
				sums[vi].pkts += float64(len(plan.Packets))
				sums[vi].over += float64(plan.TotalOverHosts())
				sums[vi].members += float64(len(plan.Members))
			}
		}
		for vi := range variants {
			n := float64(trials)
			pktSeries[vi].Y = append(pktSeries[vi].Y, sums[vi].pkts/n)
			overSeries[vi].Y = append(overSeries[vi].Y, sums[vi].over/n)
			redSeries[vi].Y = append(redSeries[vi].Y, sums[vi].over/(sums[vi].over+sums[vi].members))
		}
	}
	res.Mean = append(res.Mean, pktSeries...)
	res.Mean = append(res.Mean, overSeries...)
	res.Mean = append(res.Mean, redSeries...)
	res.Notes = append(res.Notes,
		"exact covers pay packets (upward copies) as fragmentation grows; budgets cap packets but over-cover hosts",
		"the paper's §3.4 calls this the adaptive-prefix-packing trade-off")
	return res, nil
}

// DeploymentStudy explores §3.4's "incremental deployment" question:
// which programmable tier buys the most? It runs a fragmented 256-GPU
// broadcast workload under four deployments:
//
//	static          — plain PEEL (no programmability anywhere)
//	tor-filter      — ToRs filter membership (drop over-covered traffic)
//	prog-cores      — §3.3 two-stage refinement at the core tier
//	tor+cores       — both
//
// and reports mean/p99 CCT and total fabric bytes for each.
func DeploymentStudy(o Options) (*Result, error) {
	o = o.normalized()
	const msg = int64(96) << 20 // long enough for the controller to matter
	labels := []string{"static", "tor-filter", "prog-cores", "tor+cores"}
	schemes := []collective.Scheme{
		collective.PEEL, collective.PEELToRFilter,
		collective.PEELCores, collective.PEELCoresFiltered,
	}
	build := func() *topology.Graph { return topology.FatTree(8) }
	gWork := build()
	cl := workload.NewCluster(gWork, 8)
	rng := rand.New(rand.NewSource(o.Seed))
	spec := workload.Spec{GPUs: 256, Bytes: msg, Fragmentation: 0.3}
	cols, err := cl.Generate(o.Samples, o.Load, 100e9, spec, rng)
	if err != nil {
		return nil, err
	}
	cfg := o.configFor(msg, o.Seed)

	res := &Result{
		Name:   "Incremental deployment (§3.4): which tier to upgrade (256-GPU, 96 MB, 30% frag)",
		XLabel: "deployment(static=0,tor=1,cores=2,both=3)",
		X:      []float64{0, 1, 2, 3},
	}
	meanS := telemetry.Series{Label: "meanCCT", X: res.X, Y: make([]float64, len(schemes))}
	p99S := telemetry.Series{Label: "p99CCT", X: res.X, Y: make([]float64, len(schemes))}
	bytesS := telemetry.Series{Label: "fabricGB", X: res.X, Y: make([]float64, len(schemes))}
	span := o.perfSpanStart()
	err = forEachIndex(o.Workers, len(schemes), func(i int) error {
		samples, net, err := runWorkload(build, true, schemes[i], cols, cfg, 8, o.MaxEvents, span.c, o.TelemetrySample)
		if err != nil {
			return fmt.Errorf("deployment %s: %w", schemes[i], err)
		}
		meanS.Y[i] = samples.Mean()
		p99S.Y[i] = samples.P99()
		bytesS.Y[i] = float64(net.TotalBytes()) / 1e9
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Mean = []telemetry.Series{meanS, bytesS}
	res.P99 = []telemetry.Series{p99S}
	res.Notes = append(res.Notes, fmt.Sprintf("deployments: %v", labels))
	span.finish(res)
	return res, nil
}

// MultipathStudy explores §2.3's "multicast vs multipath" open question:
// a single Steiner tree funnels traffic onto one set of core links, while
// load balancers stripe bytes across many paths. It runs a 256-GPU
// 64 MB broadcast against heavy background unicast traffic and compares
// one tree versus striping chunks across 2 and 4 equal-cost tree
// variants (collective.MultiTree*).
func MultipathStudy(o Options) (*Result, error) {
	o = o.normalized()
	const msg = int64(64) << 20
	// A 2:1 oversubscribed fat-tree: cross-pod core links, not source
	// NICs, are the bottleneck — the regime where striping can matter.
	build := func() *topology.Graph {
		g := topology.FatTree(8)
		g.Oversubscribe(2)
		return g
	}
	gWork := build()
	cl := workload.NewCluster(gWork, 8)
	rng := rand.New(rand.NewSource(o.Seed))
	// Elevated load creates the core-link contention striping is for.
	cols, err := cl.Generate(o.Samples, 0.8, 100e9, workload.Spec{GPUs: 256, Bytes: msg}, rng)
	if err != nil {
		return nil, err
	}
	cfg := o.configFor(msg, o.Seed)
	variants := []struct {
		label  string
		scheme collective.Scheme
	}{
		{"1-tree", collective.MultiTree1},
		{"2-trees", collective.MultiTree2},
		{"4-trees", collective.MultiTree4},
	}
	res := &Result{
		Name:   "Multicast vs multipath (§2.3): chunk striping across tree variants",
		XLabel: "trees",
		X:      []float64{1, 2, 4},
	}
	meanS := telemetry.Series{Label: "meanCCT", X: res.X, Y: make([]float64, len(variants))}
	p99S := telemetry.Series{Label: "p99CCT", X: res.X, Y: make([]float64, len(variants))}
	span := o.perfSpanStart()
	err = forEachIndex(o.Workers, len(variants), func(i int) error {
		samples, _, err := runWorkload(build, false, variants[i].scheme, cols, cfg, 8, o.MaxEvents, span.c, o.TelemetrySample)
		if err != nil {
			return fmt.Errorf("multipath %s: %w", variants[i].label, err)
		}
		meanS.Y[i] = samples.Mean()
		p99S.Y[i] = samples.P99()
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Mean = []telemetry.Series{meanS}
	res.P99 = []telemetry.Series{p99S}
	res.Notes = append(res.Notes,
		"2:1 oversubscribed core; striping spreads a broadcast's bytes over distinct core links",
		"gains appear when trees, not NICs, are the bottleneck")
	span.finish(res)
	return res, nil
}

// AllGatherStudy extends the evaluation to the other bandwidth-bound
// collective the paper's motivation names: AllGather. Every member holds
// a shard; afterwards all members hold all shards. Compared: the classic
// ring algorithm (aggregate-bandwidth-optimal, latency O(N)), concurrent
// optimal multicast trees, and concurrent PEEL prefix multicasts — across
// gathered sizes, for 64-host groups on the 8-ary fat-tree.
func AllGatherStudy(o Options) (*Result, error) {
	o = o.normalized()
	sizes := []float64{8, 64, 512} // total gathered MB
	if o.Samples <= Quick().Samples {
		sizes = []float64{8, 64}
	}
	build := func() *topology.Graph { return topology.FatTree(8) }
	variants := []struct {
		label  string
		scheme collective.Scheme
	}{
		{"ring", collective.Ring},
		{"optimal-trees", collective.Optimal},
		{"peel", collective.PEEL},
		{"striped-peel", collective.StripedPEEL},
	}
	res := &Result{Name: "AllGather: ring vs concurrent multicast (512 GPUs)", XLabel: "totalMB", X: sizes}
	for _, v := range variants {
		res.Mean = append(res.Mean, telemetry.Series{Label: v.label, X: sizes, Y: make([]float64, len(sizes))})
		res.P99 = append(res.P99, telemetry.Series{Label: v.label + "/p99", X: sizes, Y: make([]float64, len(sizes))})
	}
	workloads := make([][]*workload.Collective, len(sizes))
	for mi, mb := range sizes {
		msg := int64(mb) << 20
		gWork := build()
		clW := workload.NewCluster(gWork, 8)
		rng := rand.New(rand.NewSource(o.Seed + int64(mb)))
		cols, err := clW.Generate(o.Samples, o.Load, 100e9, workload.Spec{GPUs: 512, Bytes: msg}, rng)
		if err != nil {
			return nil, err
		}
		workloads[mi] = cols
	}
	span := o.perfSpanStart()
	err := forEachIndex(o.Workers, len(sizes)*len(variants), func(k int) error {
		mi, vi := k/len(variants), k%len(variants)
		msg := int64(sizes[mi]) << 20
		samples, err := runAllGather(build, variants[vi].scheme, workloads[mi], o.configFor(msg, o.Seed), o.MaxEvents, span.c, o.TelemetrySample)
		if err != nil {
			return fmt.Errorf("allgather %s @ %vMB: %w", variants[vi].label, sizes[mi], err)
		}
		res.Mean[vi].Y[mi] = samples.Mean()
		res.P99[vi].Y[mi] = samples.P99()
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes,
		"ring allgather is aggregate-bandwidth-optimal but serializes N-1 hops; multicast shards cut the latency chain")
	span.finish(res)
	return res, nil
}

// runAllGather mirrors runWorkload for the AllGather collective,
// including its concurrency contract: all mutable state is per-call.
func runAllGather(build func() *topology.Graph, scheme collective.Scheme,
	cols []*workload.Collective, cfg netsim.Config, maxEvents uint64,
	perf *perfstats.Collector, sample sim.Time) (*telemetry.Samples, error) {

	g := build()
	eng := &sim.Engine{}
	net := netsim.New(g, eng, cfg)
	planner, err := core.NewPlanner(g)
	if err != nil {
		return nil, err
	}
	cl := workload.NewCluster(g, 8)
	ctrl := controller.New(cfg.RNG(netsim.SaltController))
	runner := collective.NewRunner(net, cl, planner, ctrl)

	samples := &telemetry.Samples{}
	completed := 0
	var startErr error
	for _, c := range cols {
		c := c
		eng.At(c.Arrival, func() {
			if err := runner.StartAllGather(c, scheme, func(cct sim.Time) {
				samples.AddTime(cct)
				completed++
			}); err != nil && startErr == nil {
				startErr = err
			}
		})
	}
	net.ArmTelemetrySampler(telemetry.Active(), sample)
	runStart := time.Now()
	if err := eng.Run(maxEvents); err != nil {
		return nil, err
	}
	perf.Record(eng.Processed(), time.Since(runStart))
	if startErr != nil {
		return nil, startErr
	}
	if completed != len(cols) {
		return nil, fmt.Errorf("allgather %s: %d/%d completed", scheme, completed, len(cols))
	}
	net.PublishTelemetry(telemetry.Active())
	return samples, nil
}

// LossStudy exercises the reliability story the paper inherits from RDMA
// (§1 fn.1): selective-repeat retransmission under link-level frame loss.
// A 256-GPU broadcast of 32 MB runs at loss rates from 0 to 1%, comparing
// PEEL multicast against the unicast Ring: ring relays re-detect each
// loss hop by hop, while the multicast tree repairs end to end.
func LossStudy(o Options) (*Result, error) {
	o = o.normalized()
	const msg = int64(32) << 20
	lossRates := []float64{0, 0.001, 0.005, 0.01}
	build := func() *topology.Graph { return topology.FatTree(8) }
	gWork := build()
	cl := workload.NewCluster(gWork, 8)
	rng := rand.New(rand.NewSource(o.Seed))
	// A deliberately mild offered load: loss-induced repair delays inflate
	// service times, and an operating point near saturation would measure
	// queueing collapse rather than recovery behaviour.
	cols, err := cl.Generate(o.Samples, 0.1, 100e9, workload.Spec{GPUs: 256, Bytes: msg}, rng)
	if err != nil {
		return nil, err
	}
	schemes := []collective.Scheme{collective.PEEL, collective.Ring}
	res := &Result{Name: "Loss recovery: CCT vs frame-loss rate (256-GPU, 32 MB)", XLabel: "loss", X: lossRates}
	for _, s := range schemes {
		res.Mean = append(res.Mean, telemetry.Series{Label: string(s), X: lossRates, Y: make([]float64, len(lossRates))})
		res.P99 = append(res.P99, telemetry.Series{Label: string(s) + "/p99", X: lossRates, Y: make([]float64, len(lossRates))})
	}
	span := o.perfSpanStart()
	err = forEachIndex(o.Workers, len(lossRates)*len(schemes), func(k int) error {
		li, si := k/len(schemes), k%len(schemes)
		cfg := o.configFor(msg, o.Seed)
		cfg.LossRate = lossRates[li]
		samples, _, err := runWorkload(build, true, schemes[si], cols, cfg, 8, o.MaxEvents, span.c, o.TelemetrySample)
		if err != nil {
			return fmt.Errorf("loss %v %s: %w", lossRates[li], schemes[si], err)
		}
		res.Mean[si].Y[li] = samples.Mean()
		res.P99[si].Y[li] = samples.P99()
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes, "selective-repeat repair per flow; repairs traverse the original tree/path")
	span.finish(res)
	return res, nil
}

// RailStudy explores the rail-optimized topology the paper's §2.1 defers
// to future work: on a rail fabric (one NIC per GPU, NIC r of every
// server on rail switch r), a broadcast whose members all sit on the
// source's rail is covered by a single rail switch — zero spine
// crossings — while a rail-oblivious member selection pays the full
// leaf-spine tree. Reported: tree cost and simulated CCT for both
// selections across group sizes, with intra-server NVLink finishing the
// fan-out in both cases.
func RailStudy(o Options) (*Result, error) {
	o = o.normalized()
	const rails, servers, spines = 8, 32, 4
	const msg = int64(64) << 20
	sizes := []float64{8, 16, 32}
	build := func() *topology.Graph { return topology.RailOptimized(rails, servers, spines) }

	res := &Result{Name: "Rail-optimized fabrics (§2.1 future work): aligned vs oblivious groups", XLabel: "servers", X: sizes}
	alignedCost := telemetry.Series{Label: "aligned/tree-links", X: sizes}
	obliviousCost := telemetry.Series{Label: "oblivious/tree-links", X: sizes}
	alignedCCT := telemetry.Series{Label: "aligned/meanCCT", X: sizes}
	obliviousCCT := telemetry.Series{Label: "oblivious/meanCCT", X: sizes}

	for _, n := range sizes {
		group := int(n)
		gA := build()
		// Aligned: rail 0's NIC on each of the first `group` servers.
		var aligned, oblivious []topology.NodeID
		for s := 0; s < group; s++ {
			aligned = append(aligned, gA.HostByRail(0, s, rails, servers, spines))
			oblivious = append(oblivious, gA.HostByRail(s%rails, s, rails, servers, spines))
		}
		ta, err := steiner.SymmetricOptimal(gA, aligned[0], aligned[1:])
		if err != nil {
			return nil, err
		}
		to, err := steiner.SymmetricOptimal(gA, oblivious[0], oblivious[1:])
		if err != nil {
			return nil, err
		}
		alignedCost.Y = append(alignedCost.Y, float64(ta.Cost()))
		obliviousCost.Y = append(obliviousCost.Y, float64(to.Cost()))
		// Aligned trees must not touch a spine.
		for _, m := range ta.Members {
			if gA.Node(m).Kind == topology.Spine {
				return nil, fmt.Errorf("rail-aligned tree crossed a spine")
			}
		}

		cct := func(members []topology.NodeID) (float64, error) {
			g := build()
			eng := &sim.Engine{}
			cfg := o.configFor(msg, o.Seed)
			net := netsim.New(g, eng, cfg)
			cl := workload.NewCluster(g, 8)
			runner := collective.NewRunner(net, cl, nil, nil)
			c := &workload.Collective{Bytes: msg, GPUs: group * 8, Hosts: members}
			var d sim.Time = -1
			if err := runner.Start(c, collective.Optimal, func(t sim.Time) { d = t }); err != nil {
				return 0, err
			}
			if err := eng.Run(o.MaxEvents); err != nil {
				return 0, err
			}
			if d < 0 {
				return 0, fmt.Errorf("rail broadcast incomplete")
			}
			return d.Seconds(), nil
		}
		ca, err := cct(aligned)
		if err != nil {
			return nil, err
		}
		co, err := cct(oblivious)
		if err != nil {
			return nil, err
		}
		alignedCCT.Y = append(alignedCCT.Y, ca)
		obliviousCCT.Y = append(obliviousCCT.Y, co)
	}
	res.Mean = []telemetry.Series{alignedCost, obliviousCost, alignedCCT, obliviousCCT}
	res.Notes = append(res.Notes,
		"aligned groups stay on one rail switch (no spine crossings); NVLink finishes intra-server fan-out either way")
	return res, nil
}

// IsolationStudy addresses the third item of §1's deployability
// checklist (loss recovery, flow isolation, telemetry): how much does a
// tenant's broadcast traffic perturb a bystander's unicast flows? A
// victim tenant runs closed-loop 8 MB transfers between fixed host pairs
// while an aggressor tenant broadcasts 64 MB to 256 GPUs under each
// scheme; reported is the victim's mean/p99 flow completion time.
// Fewer aggressor bytes (multicast) should mean less collateral damage.
func IsolationStudy(o Options) (*Result, error) {
	o = o.normalized()
	const victimMsg = int64(8) << 20
	const aggMsg = int64(64) << 20
	schemes := []struct {
		label  string
		scheme collective.Scheme
	}{
		{"idle", ""}, // no aggressor: the victim baseline
		{"peel", collective.PEEL},
		{"optimal", collective.Optimal},
		{"ring", collective.Ring},
		{"dtree", collective.DblBinTree},
	}
	res := &Result{
		Name:   "Flow isolation (§1): bystander FCT vs aggressor scheme",
		XLabel: "aggressor(idle=0,peel=1,optimal=2,ring=3,dtree=4)",
		X:      []float64{0, 1, 2, 3, 4},
	}
	meanS := telemetry.Series{Label: "victimMeanFCT", X: res.X}
	p99S := telemetry.Series{Label: "victimP99FCT", X: res.X}

	for _, v := range schemes {
		g := topology.FatTree(8)
		eng := &sim.Engine{}
		cfg := o.configFor(aggMsg, o.Seed)
		net := netsim.New(g, eng, cfg)
		planner, err := core.NewPlanner(g)
		if err != nil {
			return nil, err
		}
		cl := workload.NewCluster(g, 8)
		ctrl := controller.New(cfg.RNG(netsim.SaltController))
		runner := collective.NewRunner(net, cl, planner, ctrl)
		hosts := g.Hosts()
		rng := rand.New(rand.NewSource(o.Seed + 31))

		// Victim tenant: 16 closed-loop pairs, 12 transfers each.
		victim := &telemetry.Samples{}
		const pairs, transfers = 16, 12
		perm := rng.Perm(len(hosts))
		for p := 0; p < pairs; p++ {
			src, dst := hosts[perm[2*p]], hosts[perm[2*p+1]]
			var issue func(k int)
			issue = func(k int) {
				if k >= transfers {
					return
				}
				path := routing.ECMPPath(g, src, dst, uint64(o.Seed)+uint64(p*100+k))
				fl, err := net.NewUnicastFlow(path, cfg.DCQCN)
				if err != nil {
					return
				}
				start := eng.Now()
				fl.OnChunk(func(topology.NodeID, int) {
					victim.AddTime(eng.Now() - start)
					issue(k + 1)
				})
				fl.Send(0, victimMsg)
			}
			issue(0)
		}

		// Aggressor tenant: Poisson broadcasts at 30% load (skipped for
		// the idle baseline).
		if v.scheme != "" {
			cols, err := cl.Generate(o.Samples/2+2, o.Load, 100e9, workload.Spec{GPUs: 256, Bytes: aggMsg}, rng)
			if err != nil {
				return nil, err
			}
			for _, c := range cols {
				c := c
				eng.At(c.Arrival, func() { runner.Start(c, v.scheme, func(sim.Time) {}) })
			}
		}
		if err := eng.Run(o.MaxEvents); err != nil {
			return nil, fmt.Errorf("isolation %s: %w", v.label, err)
		}
		if victim.N() != pairs*transfers {
			return nil, fmt.Errorf("isolation %s: victim finished %d/%d transfers", v.label, victim.N(), pairs*transfers)
		}
		meanS.Y = append(meanS.Y, victim.Mean())
		p99S.Y = append(p99S.Y, victim.P99())
	}
	res.Mean = []telemetry.Series{meanS}
	res.P99 = []telemetry.Series{p99S}
	res.Notes = append(res.Notes,
		"victim: 16 closed-loop 8 MB unicast pairs; aggressor: 256-GPU 64 MB broadcasts at 30% load",
		"multicast aggressors inject fewer bytes, so bystander flows suffer less")
	return res, nil
}
