package experiments

import "testing"

// TestStripingStudyLargeMessages pins the acceptance gate of the striped
// multi-tree design: on the healthy oversubscribed fat-tree, striping
// chunks over link-disjoint trees must not lose to single-tree PEEL at
// the largest message size (where the core links are the bottleneck and
// k disjoint paths buy real bandwidth).
func TestStripingStudyLargeMessages(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	o := Quick()
	o.Samples = 4
	res, err := StripingStudy(o)
	if err != nil {
		t.Fatal(err)
	}
	peel := seriesY(t, res, "peel", false)
	striped := seriesY(t, res, "striped-peel", false)
	last := len(res.X) - 1
	if res.X[last] < 64 {
		t.Fatalf("largest message is %vMB, want the 64MB point", res.X[last])
	}
	if striped[last] > peel[last] {
		t.Fatalf("striped-peel CCT %v > single-tree peel %v at %vMB",
			striped[last], peel[last], res.X[last])
	}
	// The shared-link multitree control must not beat disjoint striping by
	// more than noise — if it does, disjointness isn't buying anything.
	multi := seriesY(t, res, "multitree-4", false)
	if striped[last] > 1.5*multi[last] {
		t.Fatalf("disjoint striping %v is 1.5x worse than shared-link multitree %v",
			striped[last], multi[last])
	}
}

// TestStripingStudyStripeOption pins the -stripes plumbing: Stripes=2
// makes striped-peel-2 the headline variant.
func TestStripingStudyStripeOption(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	o := Quick()
	o.Samples = 2
	o.Stripes = 2
	res, err := StripingStudy(o)
	if err != nil {
		t.Fatal(err)
	}
	// Headline collapses onto striped-2: both labels must be present and
	// the series must carry data for every size.
	for _, label := range []string{"striped-2", "striped-peel-2"} {
		y := seriesY(t, res, label, false)
		for i, v := range y {
			if v <= 0 {
				t.Fatalf("%s: empty CCT at %vMB", label, res.X[i])
			}
		}
	}
}
