package experiments

import (
	"fmt"
	"math/rand"

	"peel/internal/collective"
	"peel/internal/controller"
	"peel/internal/invariant"
	"peel/internal/netsim"
	"peel/internal/sim"
	"peel/internal/telemetry"
	"peel/internal/topology"
	"peel/internal/topology/fabric"
	"peel/internal/workload"
)

// The OCS fabric every reconfiguration run uses: 4 spines, 8 leaves with
// 4 hosts each (32 hosts), 3 of 4 candidate circuits mapped per leaf.
// Swapping one circuit per leaf per epoch always leaves two mapped
// circuits that are neither removed nor retraining, so the fabric stays
// connected straight through every dark window.
const (
	ocsSpines    = 4
	ocsLeaves    = 8
	ocsHosts     = 4
	ocsLive      = 3
	ocsSwap      = 1
	ocsDark      = 50 * sim.Microsecond
	reconfigGPUs = 128
)

func newReconfigOCS() *fabric.OCS {
	return fabric.NewOCS(ocsSpines, ocsLeaves, ocsHosts, ocsLive)
}

// ReconfigStudy measures CCT across scheduled OCS reconfiguration epochs,
// A/B-ing planned against unplanned invalidation (§3's control-plane
// story applied to time-varying fabrics; MORS, arXiv 2401.14173). Each
// collective first runs failure-free to calibrate its clean CCT; then the
// same broadcast reruns with n epochs spread across that window, every
// epoch swapping one circuit per leaf. The planned arm announces epochs
// (watchdog treats dark windows as planned quiet, retraining circuits
// defer frames and drain); the unplanned arm lands each epoch as bare
// failures, with the installed circuits dead until retraining ends —
// delivery recovers only through the timeout-driven repair path.
//
// Reported per epoch count: mean/p99 CCT and mean repairs per collective
// for each scheme × {planned, unplanned}. The acceptance claim is
// directional: planned never loses to unplanned on the same draw.
func ReconfigStudy(o Options) (*Result, error) {
	o = o.normalized()
	const msg = int64(32) << 20
	epochsX := []float64{1, 2, 4}
	schemes := []collective.Scheme{collective.PEEL, collective.Ring, collective.StripedPEEL2}
	modes := []string{"planned", "unplanned"}

	span := o.perfSpanStart()

	// Workload drawn once on a throwaway instance; NewOCS is deterministic,
	// so host NodeIDs match every rebuilt fabric.
	clWork := workload.NewCluster(newReconfigOCS().G, 8)
	rng := rand.New(rand.NewSource(o.Seed))
	cols, err := clWork.Generate(o.Samples, 0.1, 100e9, workload.Spec{GPUs: reconfigGPUs, Bytes: msg}, rng)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Name: fmt.Sprintf("Reconfig: CCT vs epochs crossed (%d-GPU, 32 MB, %d×%d OCS, swap %d/leaf)",
			reconfigGPUs, ocsSpines, ocsLeaves, ocsSwap),
		XLabel: "epochs", X: epochsX,
	}

	// cct[si][mi][xi][ci], repairs likewise; cleanSum[si] for the note.
	type cell struct {
		cct      sim.Time
		repairs  int
		prePeels int
	}
	cells := make([][][][]cell, len(schemes))
	clean := make([][]sim.Time, len(schemes))
	for si := range schemes {
		clean[si] = make([]sim.Time, len(cols))
		cells[si] = make([][][]cell, len(modes))
		for mi := range modes {
			cells[si][mi] = make([][]cell, len(epochsX))
			for xi := range epochsX {
				cells[si][mi][xi] = make([]cell, len(cols))
			}
		}
	}

	// One job per (scheme, collective): the clean calibration run, then
	// every (epochs, mode) rerun. Jobs are independent simulations, so the
	// grid fans out over o.Workers exactly like sweepCCT's.
	err = forEachIndex(o.Workers, len(schemes)*len(cols), func(job int) error {
		si, ci := job/len(cols), job%len(cols)
		s, c := schemes[si], cols[ci]
		cfg := o.configFor(msg, o.Seed+int64(ci))
		cl, _, err := runReconfigOne(s, c, cfg, o, 0, 0, false, 0)
		if err != nil {
			return fmt.Errorf("reconfig clean %s: %w", s, err)
		}
		clean[si][ci] = cl.CCT
		for xi, x := range epochsX {
			n := int(x)
			for mi, mode := range modes {
				rep, fab, err := runReconfigOne(s, c, cfg, o, n, cl.CCT,
					mode == "planned", pointSeed(o.Seed, job*len(epochsX)+xi))
				if err != nil {
					return fmt.Errorf("reconfig %s %s n=%d: %w", s, mode, n, err)
				}
				if fab.EpochsCommitted() != n {
					return fmt.Errorf("reconfig %s %s: %d/%d epochs committed", s, mode, fab.EpochsCommitted(), n)
				}
				cells[si][mi][xi][ci] = cell{cct: rep.CCT,
					repairs: rep.Recovery.Repairs, prePeels: rep.Recovery.PrePeels}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var repairSeries []telemetry.Series
	for si, s := range schemes {
		for mi, mode := range modes {
			label := string(s) + "/" + mode
			mean := telemetry.Series{Label: label, X: epochsX}
			p99 := telemetry.Series{Label: label + "/p99", X: epochsX}
			reps := telemetry.Series{Label: label + "/repairs", X: epochsX}
			pre := telemetry.Series{Label: label + "/prepeels", X: epochsX}
			for xi := range epochsX {
				samp := &telemetry.Samples{}
				repairSum, preSum := 0, 0
				for ci := range cols {
					samp.AddTime(cells[si][mi][xi][ci].cct)
					repairSum += cells[si][mi][xi][ci].repairs
					preSum += cells[si][mi][xi][ci].prePeels
				}
				mean.Y = append(mean.Y, samp.Mean())
				p99.Y = append(p99.Y, samp.P99())
				reps.Y = append(reps.Y, float64(repairSum)/float64(len(cols)))
				pre.Y = append(pre.Y, float64(preSum)/float64(len(cols)))
			}
			res.Mean = append(res.Mean, mean)
			res.P99 = append(res.P99, p99)
			repairSeries = append(repairSeries, reps, pre)
		}
		cs := &telemetry.Samples{}
		for ci := range cols {
			cs.AddTime(clean[si][ci])
		}
		res.Notes = append(res.Notes, fmt.Sprintf("%s clean (no-epoch) mean CCT: %.6fs", s, cs.Mean()))
	}
	res.Mean = append(res.Mean, repairSeries...)
	res.Notes = append(res.Notes,
		fmt.Sprintf("epochs spread across each collective's clean CCT; dark window %v, announce lead half a period", ocsDark),
		"planned: announced epochs (watchdog planned-quiet + frame deferral on retraining circuits)",
		"unplanned: same schedule landing as bare failures; installed circuits dead until retraining ends")
	span.finish(res)
	return res, nil
}

// runReconfigOne simulates one broadcast on a fresh OCS fabric with n
// reconfiguration epochs spread across the calibrated clean CCT (n=0:
// the calibration run itself). The OCS graph has K=0, so the runner gets
// no prefix planner — PEEL uses the generic layer-peeling construction.
func runReconfigOne(scheme collective.Scheme, c *workload.Collective, cfg netsim.Config,
	o Options, n int, cleanCCT sim.Time, planned bool, rotSeed int64) (collective.Report, *fabric.Fabric, error) {

	ocs := newReconfigOCS()
	g := ocs.G
	eng := &sim.Engine{}
	net := netsim.New(g, eng, cfg)
	cl := workload.NewCluster(g, 8)
	ctrl := controller.New(cfg.RNG(netsim.SaltController))
	runner := collective.NewRunner(net, cl, nil, ctrl)
	runner.Watchdog = 100 * sim.Microsecond
	runner.RepairMode = o.Repair

	var fab *fabric.Fabric
	if n > 0 {
		period := cleanCCT / sim.Time(n+1)
		dark := ocsDark
		if period <= 2*dark {
			dark = period / 4
		}
		sched := ocs.Rotation(n, ocsSwap, period, period, period/2, dark, rotSeed)
		fab = fabric.New(g, sched)
		var hooks fabric.Hooks
		if planned {
			runner.PlannedDark = fab.DarkOpen
			// The announce hook is the collective-layer planned-invalidation
			// path: re-peel every tree crossing a to-be-removed circuit on a
			// plan view of the post-epoch graph, before the boundary lands.
			hooks.Announce = func(ch fabric.EpochChange) {
				view := g.Clone()
				for _, id := range ch.Removed {
					view.FailLink(id)
				}
				runner.PrepareEpoch(view, ch.Removed)
			}
		} else {
			fab.Unannounced = true
		}
		if err := fab.Arm(eng, net, hooks); err != nil {
			return collective.Report{}, nil, err
		}
	}

	var rep collective.Report
	done := false
	var startErr error
	eng.At(0, func() {
		if err := runner.StartReport(c, scheme, func(r collective.Report) { rep, done = r, true }); err != nil {
			startErr = err
		}
	})
	net.ArmTelemetrySampler(telemetry.Active(), o.TelemetrySample)
	if err := eng.Run(o.MaxEvents); err != nil {
		return collective.Report{}, nil, err
	}
	if startErr != nil {
		return collective.Report{}, nil, startErr
	}
	if !done {
		return collective.Report{}, nil, fmt.Errorf("experiments: %s did not complete across epochs", scheme)
	}
	net.CheckQuiesced(invariant.Active())
	net.PublishTelemetry(telemetry.Active())
	return rep, fab, nil
}

// HeteroStudy runs the scheme roster unmodified over seeded heterogeneous
// two-layer fat-trees (topology.HeteroFatTree; Solnushkin, arXiv
// 1301.6179): irregular pod sizes, per-ToR host counts, and per-ToR
// oversubscription. K=0 on these graphs, so PEEL exercises the generic
// layer-peeling fallback — the point of the sweep is that nothing in the
// roster assumes the symmetric k-ary Clos. Broadcasts cover every host
// of each instance; X is the instance index, notes record each realized
// shape.
func HeteroStudy(o Options) (*Result, error) {
	o = o.normalized()
	const msg = int64(8) << 20
	const gpusPerHost = 4
	instances := 4
	schemes := []collective.Scheme{collective.PEEL, collective.Ring, collective.Optimal,
		collective.MultiTree2, collective.StripedPEEL2}

	span := o.perfSpanStart()
	xs := make([]float64, instances)
	for i := range xs {
		xs[i] = float64(i)
	}
	res := &Result{
		Name:   "Hetero: CCT across seeded irregular two-layer fabrics (8 MB, all-host broadcast)",
		XLabel: "instance", X: xs,
	}
	for _, s := range schemes {
		res.Mean = append(res.Mean, telemetry.Series{Label: string(s), X: xs, Y: make([]float64, instances)})
		res.P99 = append(res.P99, telemetry.Series{Label: string(s) + "/p99", X: xs, Y: make([]float64, instances)})
	}
	notes := make([]string, instances)

	err := forEachIndex(o.Workers, instances*len(schemes), func(job int) error {
		xi, si := job/len(schemes), job%len(schemes)
		spec := topology.DefaultHeteroSpec(pointSeed(o.Seed, xi))
		build := func() *topology.Graph { g, _ := topology.HeteroFatTree(spec); return g }
		g, sh := topology.HeteroFatTree(spec)
		cl := workload.NewCluster(g, gpusPerHost)
		rng := rand.New(rand.NewSource(pointSeed(o.Seed, 1000+xi)))
		cols, err := cl.Generate(o.Samples, 0.1, 100e9,
			workload.Spec{GPUs: sh.Hosts * gpusPerHost, Bytes: msg}, rng)
		if err != nil {
			return err
		}
		cfg := o.configFor(msg, pointSeed(o.Seed, 2000+xi))
		samples, _, err := runWorkload(build, false, schemes[si], cols, cfg, gpusPerHost,
			o.MaxEvents, o.perfCollector(), o.TelemetrySample)
		if err != nil {
			return fmt.Errorf("hetero instance %d %s: %w", xi, schemes[si], err)
		}
		res.Mean[si].Y[xi] = samples.Mean()
		res.P99[si].Y[xi] = samples.P99()
		if si == 0 {
			notes[xi] = fmt.Sprintf("instance %d: %d spines, %d ToRs, %d hosts, max ToR oversub %.1f:1",
				xi, len(sh.Spines), len(sh.ToRs), sh.Hosts, sh.MaxOversub())
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes, notes...)
	res.Notes = append(res.Notes, "K=0 on every instance: PEEL runs the generic layer-peeling fallback, no prefix planner")
	span.finish(res)
	return res, nil
}
