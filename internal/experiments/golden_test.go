package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"peel/internal/collective"
	"peel/internal/controller"
	"peel/internal/core"
	"peel/internal/netsim"
	"peel/internal/sim"
	"peel/internal/topology"
	"peel/internal/workload"
)

// TestGoldenTraceDigest pins the exact event-by-event execution of a fixed
// PEEL workload: every processed event's (time, sequence) pair feeds an
// FNV-1a digest, and the final (event count, finish time, hash) triple is
// compared byte-for-byte against testdata/golden_trace.txt. Any change to
// event ordering, scheduling, or timing — however small — shows up here.
//
// After an intentional semantics change, regenerate with
//
//	PEEL_UPDATE_GOLDEN=1 go test -run TestGoldenTraceDigest ./internal/experiments
func TestGoldenTraceDigest(t *testing.T) {
	g := topology.FatTree(4)
	eng := &sim.Engine{}
	cfg := Quick().configFor(1<<20, 1)
	net := netsim.New(g, eng, cfg)
	planner, err := core.NewPlanner(g)
	if err != nil {
		t.Fatal(err)
	}
	cl := workload.NewCluster(g, 8)
	runner := collective.NewRunner(net, cl, planner, controller.New(cfg.RNG(netsim.SaltController)))

	cols, err := cl.Generate(3, 0.3, cfg.LinkBps,
		workload.Spec{GPUs: 32, Bytes: 1 << 20}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}

	// FNV-1a over the little-endian (at, seq) pair of every event.
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	hash := uint64(fnvOffset)
	events := uint64(0)
	eng.SetTrace(func(at sim.Time, seq uint64) {
		events++
		for _, w := range [2]uint64{uint64(at), seq} {
			for i := 0; i < 8; i++ {
				hash ^= (w >> (8 * i)) & 0xff
				hash *= fnvPrime
			}
		}
	})

	completed := 0
	for _, c := range cols {
		c := c
		eng.At(c.Arrival, func() {
			if err := runner.Start(c, collective.PEEL, func(sim.Time) { completed++ }); err != nil {
				t.Errorf("start collective %d: %v", c.ID, err)
			}
		})
	}
	if err := eng.Run(Quick().MaxEvents); err != nil {
		t.Fatal(err)
	}
	if completed != len(cols) {
		t.Fatalf("%d/%d collectives completed", completed, len(cols))
	}

	got := fmt.Sprintf("events=%d final=%s hash=%016x\n", events, eng.Now().Duration(), hash)
	goldenPath := filepath.Join("testdata", "golden_trace.txt")
	if os.Getenv("PEEL_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden trace updated: %s", got)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with PEEL_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("trace digest drifted from golden snapshot:\n got: %s want: %s"+
			"if the change is intentional, regenerate with PEEL_UPDATE_GOLDEN=1", got, want)
	}
}
