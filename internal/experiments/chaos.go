package experiments

import (
	"fmt"
	"math/rand"

	"peel/internal/chaos"
	"peel/internal/collective"
	"peel/internal/controller"
	"peel/internal/core"
	"peel/internal/invariant"
	"peel/internal/netsim"
	"peel/internal/sim"
	"peel/internal/telemetry"
	"peel/internal/topology"
	"peel/internal/workload"
)

// ChaosStudy measures graceful degradation under mid-flight failures —
// the scenario the paper's §4 evaluation leaves out (Fig. 7 degrades the
// fabric *before* planning). A 64-GPU broadcast of 32 MB runs on a k=4
// fat-tree; once the transfer is ~30% done, a fraction of the
// switch-to-switch links fails simultaneously; the links heal 1 ms later.
// The collective runner's watchdog detects the stall and re-plans delivery
// on the degraded fabric (recovery.go). Compared schemes: PEEL (multicast
// trees, repaired by re-peeling), Ring (unicast relays around the
// failure), and Orca (controller-installed multicast, repair pays the
// controller again).
//
// Reported per failure fraction: mean/p99 CCT, mean delivered-byte
// downtime, and mean repairs per collective; notes aggregate stalls,
// unicast fallbacks, and abandoned receivers.
func ChaosStudy(o Options) (*Result, error) {
	o = o.normalized()
	const msg = int64(32) << 20
	const mttr = sim.Millisecond
	fracs := []float64{0, 0.05, 0.10, 0.20}
	if o.ChaosFrac > 0 {
		fracs = []float64{o.ChaosFrac}
	}
	build := func() *topology.Graph { return topology.FatTree(4) }
	// StripedPEEL rides along as the resilience hypothesis: with chunks
	// striped over link-disjoint trees, a failure stalls one stripe while
	// the rest keep delivering, and repair touches only the dead tree.
	schemes := []collective.Scheme{collective.PEEL, collective.Ring, collective.Orca, collective.StripedPEEL}

	res := &Result{Name: "Chaos: CCT and recovery vs mid-flight failure fraction (64-GPU, 32 MB)",
		XLabel: "failFrac", X: fracs}
	down := make([]telemetry.Series, len(schemes))
	repairs := make([]telemetry.Series, len(schemes))
	for si, s := range schemes {
		res.Mean = append(res.Mean, telemetry.Series{Label: string(s), X: fracs})
		res.P99 = append(res.P99, telemetry.Series{Label: string(s) + "/p99", X: fracs})
		down[si] = telemetry.Series{Label: string(s) + "/downtime", X: fracs}
		repairs[si] = telemetry.Series{Label: string(s) + "/repairs", X: fracs}
	}

	gWork := build()
	clWork := workload.NewCluster(gWork, 8)
	rng := rand.New(rand.NewSource(o.Seed))
	cols, err := clWork.Generate(o.Samples, 0.1, 100e9, workload.Spec{GPUs: 64, Bytes: msg}, rng)
	if err != nil {
		return nil, err
	}

	var totalStalls, totalFallbacks, totalAbandoned int
	for _, frac := range fracs {
		for si, s := range schemes {
			cct := &telemetry.Samples{}
			var downSum sim.Time
			var repairSum int
			for ci, c := range cols {
				cfg := o.configFor(msg, o.Seed+int64(ci))
				// Clean pass: the failure is scheduled relative to this
				// collective's own failure-free CCT.
				clean, err := runChaosOne(build, s, c, cfg, nil, o)
				if err != nil {
					return nil, fmt.Errorf("chaos clean %s: %w", s, err)
				}
				if frac == 0 {
					cct.AddTime(clean.CCT)
					continue
				}
				failAt := clean.CCT * 3 / 10
				chaosRNG := cfg.RNG(netsim.SaltChaos + int64(si)*1000 + int64(ci))
				sched, _ := chaos.FailFractionAt(build(), topology.SwitchLinks, frac,
					failAt, failAt+mttr, chaosRNG)
				rep, err := runChaosOne(build, s, c, cfg, sched, o)
				if err != nil {
					return nil, fmt.Errorf("chaos frac=%v %s: %w", frac, s, err)
				}
				cct.AddTime(rep.CCT)
				downSum += rep.Recovery.Downtime
				repairSum += rep.Recovery.Repairs
				totalStalls += rep.Recovery.Stalls
				totalFallbacks += rep.Recovery.UnicastFallbacks
				totalAbandoned += rep.Recovery.Abandoned
			}
			res.Mean[si].Y = append(res.Mean[si].Y, cct.Mean())
			res.P99[si].Y = append(res.P99[si].Y, cct.P99())
			down[si].Y = append(down[si].Y, sim.Time(int64(downSum)/int64(len(cols))).Seconds())
			repairs[si].Y = append(repairs[si].Y, float64(repairSum)/float64(len(cols)))
		}
	}
	res.Mean = append(res.Mean, down...)
	res.Mean = append(res.Mean, repairs...)
	res.Notes = append(res.Notes,
		"failures hit switch-switch links at 30% of the clean CCT; links heal after 1 ms (MTTR)",
		"downtime series is mean no-progress time in seconds; repairs is mean repair trees installed",
		fmt.Sprintf("totals across all failed runs: stalls=%d unicastFallbacks=%d abandoned=%d",
			totalStalls, totalFallbacks, totalAbandoned))
	return res, nil
}

// runChaosOne simulates a single broadcast on a fresh fabric, optionally
// arming a chaos schedule, and returns the runner's recovery report.
func runChaosOne(build func() *topology.Graph, scheme collective.Scheme, c *workload.Collective,
	cfg netsim.Config, sched *chaos.Schedule, o Options) (collective.Report, error) {

	g := build()
	eng := &sim.Engine{}
	net := netsim.New(g, eng, cfg)
	planner, err := core.NewPlanner(g)
	if err != nil {
		return collective.Report{}, err
	}
	cl := workload.NewCluster(g, 8)
	ctrl := controller.New(cfg.RNG(netsim.SaltController))
	runner := collective.NewRunner(net, cl, planner, ctrl)
	runner.Watchdog = 100 * sim.Microsecond
	runner.RepairMode = o.Repair

	var rep collective.Report
	done := false
	var startErr error
	eng.At(0, func() {
		if err := runner.StartReport(c, scheme, func(r collective.Report) { rep, done = r, true }); err != nil {
			startErr = err
		}
	})
	if err := chaos.NewInjector(g, eng).Arm(sched); err != nil {
		return collective.Report{}, err
	}
	net.ArmTelemetrySampler(telemetry.Active(), o.TelemetrySample)
	if err := eng.Run(o.MaxEvents); err != nil {
		return collective.Report{}, err
	}
	if startErr != nil {
		return collective.Report{}, startErr
	}
	if !done {
		return collective.Report{}, fmt.Errorf("experiments: %s did not complete under chaos", scheme)
	}
	net.CheckQuiesced(invariant.Active())
	net.PublishTelemetry(telemetry.Active())
	return rep, nil
}
