package experiments

import (
	"fmt"
	"math/rand"

	"peel/internal/bloom"
	"peel/internal/collective"
	"peel/internal/netsim"
	"peel/internal/telemetry"
	"peel/internal/topology"
	"peel/internal/workload"
)

// Fig1 reproduces Figure 1: bandwidth consumption of unicast Ring and
// Binary Tree versus the multicast optimum for one Broadcast in the
// paper's two-spine/two-leaf fabric with eight GPUs. Values are total
// link traversals of the message (aggregate bytes in message units),
// plus the core-tier traversals the figure annotates.
func Fig1(o Options) (*Result, error) {
	g := topology.LeafSpine(2, 2, 4)
	hosts := g.Hosts()
	ring, err := collective.RingLinkLoads(g, hosts)
	if err != nil {
		return nil, err
	}
	tree, err := collective.BinaryTreeLinkLoads(g, hosts)
	if err != nil {
		return nil, err
	}
	opt, err := collective.OptimalLinkLoads(g, hosts)
	if err != nil {
		return nil, err
	}
	coreF := topology.TierLinks(topology.Spine, topology.Leaf)
	res := &Result{
		Name:   "Fig1: broadcast bandwidth, 2-spine/2-leaf, 8 GPUs",
		XLabel: "metric(total=0,core=1)",
		X:      []float64{0, 1},
		Mean: []telemetry.Series{
			{Label: "ring", Y: []float64{float64(collective.SumLoads(g, ring, nil)), float64(collective.SumLoads(g, ring, coreF))}},
			{Label: "tree", Y: []float64{float64(collective.SumLoads(g, tree, nil)), float64(collective.SumLoads(g, tree, coreF))}},
			{Label: "optimal", Y: []float64{float64(collective.SumLoads(g, opt, nil)), float64(collective.SumLoads(g, opt, coreF))}},
		},
	}
	ringOver := float64(collective.SumLoads(g, ring, nil))/float64(collective.SumLoads(g, opt, nil)) - 1
	treeOver := float64(collective.SumLoads(g, tree, nil))/float64(collective.SumLoads(g, opt, nil)) - 1
	res.Notes = append(res.Notes,
		fmt.Sprintf("ring overshoots optimal total bytes by %.0f%%, tree by %.0f%% (paper: 70-80%% on core links)", ringOver*100, treeOver*100))
	return res, nil
}

// Fig3 reproduces Figure 3: RSBF's per-packet Bloom-filter header in
// bytes versus fat-tree degree k ∈ {4..64} for FPR ∈ {1,5,10,15,20}%.
func Fig3(o Options) (*Result, error) {
	ks := []float64{4, 8, 16, 32, 64}
	fprs := []float64{0.01, 0.05, 0.10, 0.15, 0.20}
	res := &Result{Name: "Fig3: RSBF per-packet overhead (B)", XLabel: "k", X: ks}
	for _, p := range fprs {
		s := telemetry.Series{Label: fmt.Sprintf("FPR=%.0f%%", p*100), X: ks}
		for _, k := range ks {
			s.Y = append(s.Y, float64(bloom.PerPacketOverheadBytes(int(k), p)))
		}
		res.Mean = append(res.Mean, s)
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("MTU=%d B; header exceeds one MTU past k=32 even at FPR 20%% (got %d B at k=64)",
			bloom.MTU, bloom.PerPacketOverheadBytes(64, 0.20)))
	return res, nil
}

// fig45Sizes are the paper's message-size sweep points (MB).
var fig45Sizes = []float64{2, 4, 8, 16, 32, 64, 128, 256, 512}

// Fig4 reproduces Figure 4: Orca's collective completion time with and
// without the controller's flow-setup overhead, on an 8-ary fat-tree with
// 1024 GPUs (128 hosts × 8 GPUs), across message sizes. "Without
// controller overhead" runs the identical Orca data path (multicast to
// rack agents plus host-assisted fan-out) with a zero-delay controller,
// isolating exactly the setup penalty the figure plots.
func Fig4(o Options) (*Result, error) {
	o = o.normalized()
	sizes := fig45Sizes
	if o.Samples <= Quick().Samples { // quick mode: subsample the sweep
		sizes = []float64{2, 32, 512}
	}
	build := func() *topology.Graph { return topology.FatTree(8) }
	gen := func(x float64, rng *rand.Rand, cl *workload.Cluster) ([]*workload.Collective, error) {
		spec := workload.Spec{GPUs: 1024, Bytes: int64(x) << 20}
		return cl.Generate(o.Samples, o.Load, 100e9, spec, rng)
	}
	res, err := sweepCCT("Fig4: Orca controller overhead (1024 GPUs)", "msgMB", sizes,
		[]collective.Scheme{collective.Orca, collective.OrcaInstant},
		build, false, 8, gen,
		func(x float64) netsim.Config { return o.configFor(int64(x)<<20, o.Seed) },
		o)
	if err != nil {
		return nil, err
	}
	res.Mean[0].Label = "orca(with controller)"
	res.Mean[1].Label = "without controller"
	res.P99[0].Label = "orca(with controller)/p99"
	res.P99[1].Label = "without controller/p99"
	return res, nil
}

// Fig5 reproduces Figure 5: mean and p99 CCT versus message size for all
// six schemes — 8-ary fat-tree, 512-GPU broadcasts, Poisson arrivals at
// 30% offered load.
func Fig5(o Options) (*Result, error) {
	o = o.normalized()
	sizes := fig45Sizes
	if o.Samples <= Quick().Samples {
		sizes = []float64{2, 32, 512}
	}
	build := func() *topology.Graph { return topology.FatTree(8) }
	gen := func(x float64, rng *rand.Rand, cl *workload.Cluster) ([]*workload.Collective, error) {
		spec := workload.Spec{GPUs: 512, Bytes: int64(x) << 20}
		return cl.Generate(o.Samples, o.Load, 100e9, spec, rng)
	}
	return sweepCCT("Fig5: CCT vs message size (512 GPUs, 30% load)", "msgMB", sizes,
		collective.AllSchemes, build, true, 8, gen,
		func(x float64) netsim.Config { return o.configFor(int64(x)<<20, o.Seed) },
		o)
}

// Fig6 reproduces Figure 6: mean and p99 CCT versus broadcast scale
// (32–1024 GPUs) with a fixed 64 MB message.
func Fig6(o Options) (*Result, error) {
	o = o.normalized()
	scales := []float64{32, 64, 128, 256, 512, 1024}
	if o.Samples <= Quick().Samples {
		scales = []float64{32, 256, 1024}
	}
	const msg = int64(64) << 20
	build := func() *topology.Graph { return topology.FatTree(8) }
	gen := func(x float64, rng *rand.Rand, cl *workload.Cluster) ([]*workload.Collective, error) {
		spec := workload.Spec{GPUs: int(x), Bytes: msg}
		return cl.Generate(o.Samples, o.Load, 100e9, spec, rng)
	}
	return sweepCCT("Fig6: CCT vs scale (64 MB)", "gpus", scales,
		collective.AllSchemes, build, true, 8, gen,
		func(x float64) netsim.Config { return o.configFor(msg, o.Seed) },
		o)
}

// Fig7 reproduces Figure 7: robustness to failures. A two-tier leaf–spine
// with 16 spines, 48 leaves, two servers per leaf and eight GPUs per
// server; a 64-GPU broadcast of 8 MB repeated while 1–10% of spine–leaf
// links are randomly failed. Schemes: Ring, Binary Tree, and PEEL (whose
// tree construction is the §2.3 layer-peeling greedy here).
func Fig7(o Options) (*Result, error) {
	o = o.normalized()
	failPcts := []float64{1, 2, 4, 8, 10}
	if o.Samples <= Quick().Samples {
		failPcts = []float64{1, 10}
	}
	const msg = int64(8) << 20
	build := func() *topology.Graph { return topology.LeafSpine(16, 48, 2) }
	spineLeaf := topology.TierLinks(topology.Spine, topology.Leaf)

	res := &Result{Name: "Fig7: CCT vs failure rate (64-GPU, 8 MB, leaf-spine)", XLabel: "fail%", X: failPcts}
	schemes := []collective.Scheme{collective.BinTree, collective.Ring, collective.PEEL}
	for _, s := range schemes {
		res.Mean = append(res.Mean, telemetry.Series{Label: string(s), X: failPcts, Y: make([]float64, len(failPcts))})
		res.P99 = append(res.P99, telemetry.Series{Label: string(s) + "/p99", X: failPcts, Y: make([]float64, len(failPcts))})
	}
	// Per-point builders and workloads are prepared serially; the
	// (pct, scheme) grid then fans out like sweepCCT — every cell is an
	// independent simulation writing into its preallocated slot.
	builds := make([]func() *topology.Graph, len(failPcts))
	workloads := make([][]*workload.Collective, len(failPcts))
	for pi, pct := range failPcts {
		pct := pct
		builds[pi] = func() *topology.Graph {
			g := build()
			rng := rand.New(rand.NewSource(o.Seed + int64(pct)))
			g.FailRandomFraction(pct/100, spineLeaf, rng)
			return g
		}
		gWork := builds[pi]()
		cl := workload.NewCluster(gWork, 8)
		rng := rand.New(rand.NewSource(o.Seed + 100 + int64(pct)))
		cols, err := cl.Generate(o.Samples, o.Load, 100e9, workload.Spec{GPUs: 64, Bytes: msg}, rng)
		if err != nil {
			return nil, err
		}
		workloads[pi] = cols
	}
	span := o.perfSpanStart()
	cfg := o.configFor(msg, o.Seed)
	err := forEachIndex(o.Workers, len(failPcts)*len(schemes), func(k int) error {
		pi, si := k/len(schemes), k%len(schemes)
		samples, _, err := runWorkload(builds[pi], false, schemes[si], workloads[pi], cfg, 8, o.MaxEvents, span.c, o.TelemetrySample)
		if err != nil {
			return fmt.Errorf("fig7 %s @ %v%%: %w", schemes[si], failPcts[pi], err)
		}
		res.Mean[si].Y[pi] = samples.Mean()
		res.P99[si].Y[pi] = samples.P99()
		return nil
	})
	if err != nil {
		return nil, err
	}
	span.finish(res)
	return res, nil
}
