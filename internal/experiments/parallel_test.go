package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"peel/internal/collective"
	"peel/internal/netsim"
	"peel/internal/topology"
	"peel/internal/workload"
)

func TestForEachIndexRunsEveryJobOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 100
		counts := make([]atomic.Int32, n)
		if err := forEachIndex(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachIndexReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := forEachIndex(workers, 50, func(i int) error {
			if i == 17 || i == 3 || i == 40 {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Fatalf("workers=%d: want lowest-index error, got %v", workers, err)
		}
	}
	if err := forEachIndex(4, 0, func(int) error { return errors.New("boom") }); err != nil {
		t.Fatalf("n=0 ran a job: %v", err)
	}
}

// TestPointSeedPinned pins the index-mixing function: seeds depend only
// on (base seed, sweep index), are stable across releases, and never
// collide the way the old `seed + int64(x*1000)` derivation did for X
// values truncating to the same integer.
func TestPointSeedPinned(t *testing.T) {
	pins := []struct {
		seed int64
		i    int
		want int64
	}{
		{1, 0, -1965031076028369767},
		{1, 1, 392536317241979068},
		{2, 0, 4560642061891045783},
		{42, 7, 4514690712196278145},
	}
	for _, p := range pins {
		if got := pointSeed(p.seed, p.i); got != p.want {
			t.Errorf("pointSeed(%d,%d) = %d, want %d", p.seed, p.i, got, p.want)
		}
	}
	seen := map[int64]int{}
	for i := 0; i < 1000; i++ {
		s := pointSeed(1, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: indexes %d and %d both map to %d", prev, i, s)
		}
		seen[s] = i
	}
}

// TestSweepSeedsIndexDerived reproduces the old bug's trigger: two sweep
// points whose X values truncate to the same integer (0.001 and 0.0005
// ⇒ both int64 0) must still get distinct workload RNG streams. The gen
// callback records each point's first RNG draw and then aborts the sweep
// before any simulation runs.
func TestSweepSeedsIndexDerived(t *testing.T) {
	var draws []int64
	build := func() *topology.Graph { return topology.LeafSpine(2, 2, 2) }
	gen := func(x float64, rng *rand.Rand, cl *workload.Cluster) ([]*workload.Collective, error) {
		draws = append(draws, rng.Int63())
		if len(draws) == 2 {
			return nil, errors.New("stop: seeds captured")
		}
		return nil, nil
	}
	o := Quick().normalized()
	_, err := sweepCCT("seed-test", "x", []float64{0.001, 0.0005},
		[]collective.Scheme{collective.Ring}, build, false, 2, gen,
		func(float64) netsim.Config { return netsim.DefaultConfig() }, o)
	if err == nil {
		t.Fatal("sweep should have aborted after capturing seeds")
	}
	if len(draws) != 2 {
		t.Fatalf("captured %d draws", len(draws))
	}
	if draws[0] == draws[1] {
		t.Fatalf("x=0.001 and x=0.0005 share a workload RNG stream (draw %d)", draws[0])
	}
}

// TestParallelSweepDeterminism is the determinism oracle for the worker
// pool: Workers=4 must produce byte-identical rendered output to the
// serial Workers=1 run for both the sweepCCT path (Fig5) and the
// hand-rolled Fig7 grid. Perf stays off so Notes carry no timings.
func TestParallelSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	figs := []struct {
		name string
		run  func(Options) (*Result, error)
	}{
		{"fig5", Fig5},
		{"fig7", Fig7},
	}
	for _, fig := range figs {
		render := func(workers int) string {
			o := Quick()
			o.Samples = 3
			o.Workers = workers
			res, err := fig.run(o)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", fig.name, workers, err)
			}
			return res.Render()
		}
		serial := render(1)
		parallel := render(4)
		if serial != parallel {
			t.Errorf("%s: Workers=4 output differs from Workers=1:\n--- serial ---\n%s\n--- parallel ---\n%s",
				fig.name, serial, parallel)
		}
	}
}

// TestParallelSweepSharedState drives the studies that share one
// workload slice across concurrent runs with a deliberately oversized
// worker pool; under `go test -race` this is the guard against cross-run
// mutation of cols, cfg, or closure state.
func TestParallelSweepSharedState(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	o := Quick()
	o.Samples = 2
	o.Workers = 8
	o.Perf = true // exercise the shared collector under concurrency too
	if _, err := LossStudy(o); err != nil {
		t.Fatalf("loss study: %v", err)
	}
	res, err := Fig7(o)
	if err != nil {
		t.Fatalf("fig7: %v", err)
	}
	if len(res.Notes) == 0 {
		t.Fatal("Perf=true produced no perf note")
	}
}

// TestPerfNoteOptIn: rendered output must stay byte-stable unless Perf
// is requested.
func TestPerfNoteOptIn(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	o := Quick()
	o.Samples = 2
	res, err := Fig7(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Notes {
		if len(n) >= 5 && n[:5] == "perf:" {
			t.Fatalf("perf note present without Perf=true: %q", n)
		}
	}
}
