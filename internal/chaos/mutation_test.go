package chaos

import (
	"testing"

	"peel/internal/invariant"
	"peel/internal/invariant/invtest"
	"peel/internal/sim"
	"peel/internal/topology"
)

// Mutation self-test: a schedule that claims heal-completeness but omits
// a heal must trip the heal-guarantee checker at Arm time.

func TestMutationHealGuaranteeFires(t *testing.T) {
	g := topology.FatTree(4)
	s := invtest.Capture(t, func() {
		sch := &Schedule{HealAll: true}
		sch.FailLinkAt(10*sim.Microsecond, 0) // no matching heal
		if err := NewInjector(g, &sim.Engine{}).Arm(sch); err != nil {
			t.Fatal(err)
		}
	})
	if s.Violations(invariant.ChaosHealGuaranteed) == 0 {
		t.Fatal("heal-guarantee checker did not fire on an unhealed failure")
	}
}

func TestHealGuaranteePassesOnBalancedSchedule(t *testing.T) {
	g := topology.FatTree(4)
	s := invtest.Capture(t, func() {
		sch := &Schedule{HealAll: true}
		sch.FailLinkAt(10*sim.Microsecond, 0)
		sch.HealLinkAt(20*sim.Microsecond, 0)
		sch.FailNodeAt(12*sim.Microsecond, 1)
		sch.HealNodeAt(25*sim.Microsecond, 1)
		if err := NewInjector(g, &sim.Engine{}).Arm(sch); err != nil {
			t.Fatal(err)
		}
	})
	if s.Checks(invariant.ChaosHealGuaranteed) == 0 {
		t.Fatal("heal-guarantee checker never evaluated")
	}
	if s.Violations(invariant.ChaosHealGuaranteed) != 0 {
		t.Fatalf("balanced schedule reported a violation: %s", s.FirstFailure(invariant.ChaosHealGuaranteed))
	}
}
