package chaos

import (
	"math/rand"
	"testing"

	"peel/internal/sim"
	"peel/internal/topology"
)

func TestRandomScheduleDeterministic(t *testing.T) {
	g := topology.LeafSpine(4, 4, 2)
	mtbf, mttr := 10*sim.Millisecond, sim.Millisecond
	horizon := 50 * sim.Millisecond

	a := Random(g, topology.SwitchLinks, mtbf, mttr, horizon, rand.New(rand.NewSource(7)))
	b := Random(g, topology.SwitchLinks, mtbf, mttr, horizon, rand.New(rand.NewSource(7)))
	if len(a.Events) != len(b.Events) {
		t.Fatalf("same seed, different event counts: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a.Events[i], b.Events[i])
		}
	}
	c := Random(g, topology.SwitchLinks, mtbf, mttr, horizon, rand.New(rand.NewSource(8)))
	if len(c.Events) == len(a.Events) {
		same := true
		for i := range a.Events {
			if a.Events[i] != c.Events[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced an identical schedule")
		}
	}
}

func TestRandomScheduleAlwaysHeals(t *testing.T) {
	g := topology.LeafSpine(4, 4, 2)
	s := Random(g, topology.SwitchLinks, 5*sim.Millisecond, sim.Millisecond,
		100*sim.Millisecond, rand.New(rand.NewSource(3)))
	if s.Empty() {
		t.Skip("no failures drawn at this seed")
	}
	// Per link, fail and heal must alternate (fail first) and balance out:
	// every outage generated within the horizon ends.
	state := map[topology.LinkID]int{}
	for _, ev := range s.Events {
		if ev.Heal {
			state[ev.Link]--
			if state[ev.Link] < 0 {
				t.Fatalf("heal before fail for link %d", ev.Link)
			}
		} else {
			state[ev.Link]++
			if state[ev.Link] > 1 {
				t.Fatalf("double fail without heal for link %d", ev.Link)
			}
		}
	}
	for id, n := range state {
		if n != 0 {
			t.Fatalf("link %d left with %d unhealed failures", id, n)
		}
	}
}

func TestInjectorAppliesScriptedSchedule(t *testing.T) {
	g := topology.LeafSpine(2, 2, 1)
	eng := &sim.Engine{}
	inj := NewInjector(g, eng)

	s := (&Schedule{}).
		FailLinkAt(sim.Microsecond, 0).
		FailLinkAt(2*sim.Microsecond, 0). // already down: no transition
		HealLinkAt(3*sim.Microsecond, 0)
	spine := g.NodesOfKind(topology.Spine)[0]
	degree := len(g.Adj(spine))
	s.FailNodeAt(4*sim.Microsecond, spine)
	s.HealNodeAt(5*sim.Microsecond, spine)

	if err := inj.Arm(s); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if inj.EventsFired != 5 {
		t.Fatalf("EventsFired=%d, want 5", inj.EventsFired)
	}
	if want := 1 + degree; inj.LinksFailed != want {
		t.Fatalf("LinksFailed=%d, want %d", inj.LinksFailed, want)
	}
	if want := 1 + degree; inj.LinksHealed != want {
		t.Fatalf("LinksHealed=%d, want %d", inj.LinksHealed, want)
	}
	if g.NumFailedLinks() != 0 {
		t.Fatalf("NumFailedLinks=%d at end, want 0", g.NumFailedLinks())
	}
}

func TestInjectorRejectsPastEvents(t *testing.T) {
	g := topology.LeafSpine(2, 2, 1)
	eng := &sim.Engine{}
	eng.At(10*sim.Microsecond, func() {})
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(g, eng)
	s := (&Schedule{}).FailLinkAt(sim.Microsecond, 0)
	if err := inj.Arm(s); err == nil {
		t.Fatal("Arm accepted an event in the simulated past")
	}
	if g.NumFailedLinks() != 0 {
		t.Fatal("rejected schedule still mutated the graph")
	}
}

func TestArmEmptyScheduleIsNoop(t *testing.T) {
	g := topology.LeafSpine(2, 2, 1)
	eng := &sim.Engine{}
	inj := NewInjector(g, eng)
	if err := inj.Arm(nil); err != nil {
		t.Fatalf("nil schedule: %v", err)
	}
	if err := inj.Arm(&Schedule{}); err != nil {
		t.Fatalf("empty schedule: %v", err)
	}
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if inj.EventsFired != 0 {
		t.Fatalf("EventsFired=%d for empty schedules", inj.EventsFired)
	}
}

func TestFailFractionAt(t *testing.T) {
	g := topology.LeafSpine(4, 4, 2)
	eligible := 0
	for i := 0; i < g.NumLinks(); i++ {
		if topology.SwitchLinks(g, g.Link(topology.LinkID(i))) {
			eligible++
		}
	}
	at, healAt := sim.Millisecond, 2*sim.Millisecond
	s, ids := FailFractionAt(g, topology.SwitchLinks, 0.5, at, healAt, rand.New(rand.NewSource(5)))
	want := (eligible + 1) / 2
	if len(ids) != want {
		t.Fatalf("chose %d links, want %d", len(ids), want)
	}
	if len(s.Events) != 2*len(ids) {
		t.Fatalf("%d events for %d links, want fail+heal each", len(s.Events), len(ids))
	}
	// Building the schedule must not touch the graph.
	if g.NumFailedLinks() != 0 {
		t.Fatalf("FailFractionAt mutated the graph: %d failed", g.NumFailedLinks())
	}

	// healAt <= at means no heal events (permanent failures).
	s2, ids2 := FailFractionAt(g, topology.SwitchLinks, 0.25, at, 0, rand.New(rand.NewSource(5)))
	if len(s2.Events) != len(ids2) {
		t.Fatalf("permanent failure schedule has %d events for %d links", len(s2.Events), len(ids2))
	}
}

func TestRandomPanicsOnNonPositiveRates(t *testing.T) {
	g := topology.LeafSpine(2, 2, 1)
	for _, tc := range []struct{ mtbf, mttr sim.Time }{{0, sim.Millisecond}, {sim.Millisecond, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Random(mtbf=%v, mttr=%v) did not panic", tc.mtbf, tc.mttr)
				}
			}()
			Random(g, nil, tc.mtbf, tc.mttr, sim.Millisecond, rand.New(rand.NewSource(1)))
		}()
	}
}
