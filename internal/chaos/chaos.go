// Package chaos schedules link and switch failures (and repairs) against a
// running simulation — the runtime counterpart of topology's static
// FailLink/FailRandomFraction. The paper (§4, Fig. 7) evaluates PEEL only
// on fabrics degraded *before* planning; real AI datacenters lose links
// while collectives are in flight. A chaos Schedule is either scripted
// (explicit FailLinkAt/HealLinkAt events, for regression tests) or drawn
// from a seeded MTBF/MTTR renewal process (for experiments); an Injector
// arms it on the sim.Engine, where each event toggles the topology's
// failure state. The network simulator observes those transitions via
// topology.OnFailureChange and drops traffic on dead links, and the
// collective layer's watchdog repairs broken trees.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"

	"peel/internal/invariant"
	"peel/internal/sim"
	"peel/internal/telemetry"
	"peel/internal/topology"
)

// Event is one scheduled fault transition: a link (or, when Node is set,
// every link of a switch) fails or heals at an absolute simulated time.
type Event struct {
	At   sim.Time
	Link topology.LinkID
	// Node, when not topology.None, targets every link incident to the
	// node (a switch failure); Link is ignored then.
	Node topology.NodeID
	Heal bool
}

// String renders the event for logs.
func (e Event) String() string {
	verb := "fail"
	if e.Heal {
		verb = "heal"
	}
	if e.Node != topology.None {
		return fmt.Sprintf("%s node %d @ %v", verb, e.Node, e.At.Duration())
	}
	return fmt.Sprintf("%s link %d @ %v", verb, e.Link, e.At.Duration())
}

// Schedule is an ordered fault script. The zero value is the empty
// schedule: arming it injects nothing and perturbs nothing.
type Schedule struct {
	Events []Event
	// HealAll declares the schedule heal-complete: every failure has a
	// matching later heal, so no outage is permanent. Generators that
	// guarantee this (Random always; FailFractionAt when given a heal
	// time) set it, and Arm then verifies the pairing — scripted
	// schedules with deliberate permanent failures leave it false.
	HealAll bool
}

// FailLinkAt appends a link failure; returns the schedule for chaining.
func (s *Schedule) FailLinkAt(at sim.Time, id topology.LinkID) *Schedule {
	s.Events = append(s.Events, Event{At: at, Link: id, Node: topology.None})
	return s
}

// HealLinkAt appends a link repair.
func (s *Schedule) HealLinkAt(at sim.Time, id topology.LinkID) *Schedule {
	s.Events = append(s.Events, Event{At: at, Link: id, Node: topology.None, Heal: true})
	return s
}

// FailNodeAt appends a switch failure (all incident links go down).
func (s *Schedule) FailNodeAt(at sim.Time, n topology.NodeID) *Schedule {
	s.Events = append(s.Events, Event{At: at, Node: n})
	return s
}

// HealNodeAt appends a switch repair (all incident links come back).
func (s *Schedule) HealNodeAt(at sim.Time, n topology.NodeID) *Schedule {
	s.Events = append(s.Events, Event{At: at, Node: n, Heal: true})
	return s
}

// Empty reports whether the schedule carries no events.
func (s *Schedule) Empty() bool { return s == nil || len(s.Events) == 0 }

// Sort orders events by time (stable, so same-time events keep append
// order). The engine orders execution anyway; Sort is for readable dumps.
func (s *Schedule) Sort() {
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
}

// Random draws an MTBF/MTTR fault process over the eligible links: each
// link independently alternates up and down, with exponentially distributed
// up times (mean mtbf) and down times (mean mttr). Failures are generated
// within [0, horizon); the matching heal is always scheduled, even past the
// horizon, so every outage is finite and collectives can eventually
// complete. The caller owns the RNG, so schedules reproduce from a seed.
func Random(g *topology.Graph, filter topology.LinkFilter, mtbf, mttr, horizon sim.Time, rng *rand.Rand) *Schedule {
	if mtbf <= 0 {
		panic("chaos: MTBF must be positive")
	}
	if mttr <= 0 {
		panic("chaos: MTTR must be positive")
	}
	s := &Schedule{}
	for i := 0; i < g.NumLinks(); i++ {
		id := topology.LinkID(i)
		l := g.Link(id)
		if filter != nil && !filter(g, l) {
			continue
		}
		t := expTime(rng, mtbf)
		for t < horizon {
			s.FailLinkAt(t, id)
			up := t + expTime(rng, mttr) + sim.Nanosecond // strictly after the failure
			s.HealLinkAt(up, id)
			t = up + expTime(rng, mtbf)
		}
	}
	s.HealAll = true
	s.Sort()
	return s
}

// FailFractionAt builds a schedule that fails ⌈fraction × |eligible|⌉
// uniformly chosen live links at time `at` and — when healAt > at — heals
// them all at healAt. It is the mid-flight counterpart of
// topology.FailRandomFraction: same selection rule, but the transition
// happens on the engine while traffic is in flight. The chosen link IDs
// are returned alongside the schedule.
func FailFractionAt(g *topology.Graph, filter topology.LinkFilter, fraction float64,
	at, healAt sim.Time, rng *rand.Rand) (*Schedule, []topology.LinkID) {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	var eligible []topology.LinkID
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(topology.LinkID(i))
		if !l.Failed && (filter == nil || filter(g, l)) {
			eligible = append(eligible, l.ID)
		}
	}
	n := int(fraction*float64(len(eligible)) + 0.9999999)
	if n > len(eligible) {
		n = len(eligible)
	}
	rng.Shuffle(len(eligible), func(i, j int) { eligible[i], eligible[j] = eligible[j], eligible[i] })
	chosen := eligible[:n]
	s := &Schedule{HealAll: healAt > at}
	for _, id := range chosen {
		s.FailLinkAt(at, id)
		if healAt > at {
			s.HealLinkAt(healAt, id)
		}
	}
	s.Sort()
	return s, chosen
}

func expTime(rng *rand.Rand, mean sim.Time) sim.Time {
	return sim.Time(rng.ExpFloat64() * float64(mean))
}

// Injector arms schedules on an engine against one graph. Transitions run
// through topology.FailLink/RestoreLink, so every registered failure
// observer (the network simulator above all) sees them in order.
type Injector struct {
	G   *topology.Graph
	Eng *sim.Engine

	// EventsFired counts schedule events applied so far.
	EventsFired int
	// LinksFailed / LinksHealed count actual link transitions (a FailNodeAt
	// counts each incident link that actually went down).
	LinksFailed int
	LinksHealed int
}

// NewInjector binds a graph and an engine.
func NewInjector(g *topology.Graph, eng *sim.Engine) *Injector {
	return &Injector{G: g, Eng: eng}
}

// Arm schedules every event of s on the engine. Events in the simulated
// past are rejected (the engine would panic on them mid-run otherwise).
func (inj *Injector) Arm(s *Schedule) error {
	if s.Empty() {
		return nil
	}
	now := inj.Eng.Now()
	for _, ev := range s.Events {
		if ev.At < now {
			return fmt.Errorf("chaos: event %v scheduled before now %v", ev, now.Duration())
		}
	}
	if s2 := invariant.Active(); s2 != nil && s.HealAll {
		reportHealGuarantee(s2, s)
	}
	for _, ev := range s.Events {
		ev := ev
		inj.Eng.At(ev.At, func() { inj.apply(ev) })
	}
	return nil
}

// reportHealGuarantee verifies a heal-complete schedule's pairing: per
// target (link or node), walking events in time order, the fail depth
// must return to zero — every armed fail has its guaranteed later heal.
func reportHealGuarantee(s2 *invariant.Suite, s *Schedule) {
	type target struct {
		link topology.LinkID
		node topology.NodeID
	}
	evs := append([]Event(nil), s.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	depth := map[target]int{}
	ok := true
	for _, ev := range evs {
		tg := target{link: ev.Link, node: ev.Node}
		if ev.Node != topology.None {
			tg.link = 0
		}
		if ev.Heal {
			depth[tg]--
		} else {
			depth[tg]++
		}
		// A heal preceding its fail would drive the depth negative.
		if depth[tg] < 0 {
			ok = false
		}
	}
	unhealed := 0
	for _, d := range depth {
		if d != 0 {
			unhealed++
			ok = false
		}
	}
	s2.Checkf(invariant.ChaosHealGuaranteed, ok,
		"heal-complete schedule leaves %d targets with unbalanced fail/heal events", unhealed)
}

// apply executes one transition, counting real state changes.
func (inj *Injector) apply(ev Event) {
	inj.EventsFired++
	if ts := telemetry.Active(); ts != nil {
		ts.Counter("chaos.events").Inc()
		target, isNode := int64(ev.Link), int64(0)
		if ev.Node != topology.None {
			target, isNode = int64(ev.Node), 1
		}
		heal := int64(0)
		if ev.Heal {
			heal = 1
		}
		ts.Recorder().Record(inj.Eng.Now(), telemetry.KindChaosEvent, target, isNode, heal)
	}
	before := inj.G.NumFailedLinks()
	switch {
	case ev.Node != topology.None && ev.Heal:
		inj.G.RestoreNode(ev.Node)
	case ev.Node != topology.None:
		inj.G.FailNode(ev.Node)
	case ev.Heal:
		inj.G.RestoreLink(ev.Link)
	default:
		inj.G.FailLink(ev.Link)
	}
	if d := inj.G.NumFailedLinks() - before; d > 0 {
		inj.LinksFailed += d
	} else {
		inj.LinksHealed -= d
	}
}
