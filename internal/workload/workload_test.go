package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"peel/internal/topology"
)

func TestClusterMapping(t *testing.T) {
	g := topology.FatTree(8)
	c := NewCluster(g, 8)
	if c.NumGPUs() != 1024 {
		t.Fatalf("gpus=%d want 1024 (the paper's 8-ary setup)", c.NumGPUs())
	}
	if c.HostOfGPU(0) != c.Hosts()[0] || c.HostOfGPU(7) != c.Hosts()[0] {
		t.Fatal("first 8 GPUs must map to host 0")
	}
	if c.HostOfGPU(8) != c.Hosts()[1] {
		t.Fatal("GPU 8 must map to host 1")
	}
}

func TestPlacementLocality(t *testing.T) {
	g := topology.FatTree(8)
	c := NewCluster(g, 8)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		hosts, err := c.Place(Spec{GPUs: 64}, rng) // 8 hosts
		if err != nil {
			t.Fatal(err)
		}
		if len(hosts) != 8 {
			t.Fatalf("hosts=%d want 8", len(hosts))
		}
		// Contiguity: the member set is one contiguous run of
		// placement-order IDs (the slice itself is rotated so the
		// broadcast root varies).
		all := c.Hosts()
		idx := map[topology.NodeID]int{}
		for i, h := range all {
			idx[h] = i
		}
		min, max := len(all), -1
		for _, h := range hosts {
			if idx[h] < min {
				min = idx[h]
			}
			if idx[h] > max {
				max = idx[h]
			}
		}
		if max-min+1 != len(hosts) {
			t.Fatalf("placement not contiguous: span %d..%d for %d hosts", min, max, len(hosts))
		}
		// Rotation preserves adjacency: each member's successor in the
		// slice is its placement-order successor, modulo one wrap seam.
		seams := 0
		for i := 1; i < len(hosts); i++ {
			if idx[hosts[i]] != idx[hosts[i-1]]+1 {
				seams++
			}
		}
		if seams > 1 {
			t.Fatalf("placement order broken: %d seams", seams)
		}
		// Rack alignment: the run starts at a rack boundary.
		if g.HostSlotOf(all[min]) != 0 {
			t.Fatalf("placement not rack-aligned: starts at slot %d", g.HostSlotOf(all[min]))
		}
	}
}

func TestPlacementFragmentation(t *testing.T) {
	g := topology.FatTree(8)
	c := NewCluster(g, 8)
	rng := rand.New(rand.NewSource(4))
	frag, err := c.Place(Spec{GPUs: 64, Fragmentation: 0.5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(frag) != 8 {
		t.Fatalf("hosts=%d", len(frag))
	}
	// Distinct hosts even with wraparound fill.
	seen := map[topology.NodeID]bool{}
	for _, h := range frag {
		if seen[h] {
			t.Fatalf("duplicate host %d", h)
		}
		seen[h] = true
	}
}

func TestPlaceTooLarge(t *testing.T) {
	g := topology.FatTree(4)
	c := NewCluster(g, 8)
	if _, err := c.Place(Spec{GPUs: 16*8 + 1}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("oversized job must fail")
	}
}

func TestArrivalsPoisson(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, rate = 20000, 100.0
	arr := Arrivals(n, rate, rng)
	for i := 1; i < n; i++ {
		if arr[i] <= arr[i-1] {
			t.Fatal("arrivals must be strictly increasing")
		}
	}
	// Mean inter-arrival ≈ 1/rate within 5%.
	mean := arr[n-1].Seconds() / n
	if math.Abs(mean-1/rate) > 0.05/rate {
		t.Fatalf("mean inter-arrival %v want ~%v", mean, 1/rate)
	}
}

func TestRateForOfferedLoad(t *testing.T) {
	// 128 hosts × 100 Gb/s at 30% load, 64 MB to 8 hosts per collective:
	// rate = 0.3×128×1e11 / (8×64MiB×8) bits.
	spec := Spec{GPUs: 64, Bytes: 64 << 20}
	rate := RateForOfferedLoad(0.3, 128, 100e9, spec, 8)
	want := 0.3 * 128 * 100e9 / (8 * float64(64<<20) * 8)
	if math.Abs(rate-want) > 1e-9 {
		t.Fatalf("rate=%v want %v", rate, want)
	}
}

func TestGenerate(t *testing.T) {
	g := topology.FatTree(8)
	c := NewCluster(g, 8)
	rng := rand.New(rand.NewSource(11))
	cs, err := c.Generate(50, 0.3, 100e9, Spec{GPUs: 64, Bytes: 8 << 20}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 50 {
		t.Fatalf("n=%d", len(cs))
	}
	for i, col := range cs {
		if col.ID != i || col.Bytes != 8<<20 || col.GPUs != 64 {
			t.Fatalf("collective %d malformed: %+v", i, col)
		}
		if len(col.Hosts) != 8 {
			t.Fatalf("collective %d hosts=%d", i, len(col.Hosts))
		}
		if col.Source() != col.Hosts[0] || len(col.Receivers()) != 7 {
			t.Fatal("source/receiver split wrong")
		}
		if i > 0 && col.Arrival <= cs[i-1].Arrival {
			t.Fatal("arrivals not increasing")
		}
	}
}

// Property: placements never duplicate hosts and always return the exact
// host count, across sizes and fragmentation levels.
func TestQuickPlacementSound(t *testing.T) {
	g := topology.FatTree(8)
	c := NewCluster(g, 8)
	f := func(seed int64, gRaw uint16, fragRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		gpus := 1 + int(gRaw)%c.NumGPUs()
		frag := float64(fragRaw%60) / 100
		hosts, err := c.Place(Spec{GPUs: gpus, Fragmentation: frag}, rng)
		if err != nil {
			return false
		}
		need := (gpus + 7) / 8
		if len(hosts) != need {
			return false
		}
		seen := map[topology.NodeID]bool{}
		for _, h := range hosts {
			if seen[h] || g.Node(h).Kind != topology.Host {
				return false
			}
			seen[h] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
