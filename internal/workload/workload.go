// Package workload generates the paper's evaluation traffic (§4):
// Broadcast collectives arriving as a Poisson process, each parameterized
// by scale (GPU count) and message size, with GPU selections honoring job
// locality — schedulers bin-pack jobs into contiguous runs of hosts and
// racks, the property PEEL's prefix aggregation exploits.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"peel/internal/sim"
	"peel/internal/topology"
)

// Cluster maps GPUs onto a fabric: GPUsPerHost accelerators behind each
// host NIC (the paper: 8 GPUs per server, one NIC per server).
type Cluster struct {
	G           *topology.Graph
	GPUsPerHost int
	hosts       []topology.NodeID
}

// NewCluster indexes the fabric's hosts.
func NewCluster(g *topology.Graph, gpusPerHost int) *Cluster {
	if gpusPerHost < 1 {
		panic("workload: GPUsPerHost must be >= 1")
	}
	return &Cluster{G: g, GPUsPerHost: gpusPerHost, hosts: g.Hosts()}
}

// NumGPUs returns the cluster's total accelerator count.
func (c *Cluster) NumGPUs() int { return len(c.hosts) * c.GPUsPerHost }

// HostOfGPU maps a global GPU index to its host.
func (c *Cluster) HostOfGPU(gpu int) topology.NodeID {
	return c.hosts[gpu/c.GPUsPerHost]
}

// Hosts returns the cluster's hosts in placement order.
func (c *Cluster) Hosts() []topology.NodeID { return c.hosts }

// Collective is one Broadcast instance: the source host, the distinct
// member hosts (source first), and how many GPUs ride on each host.
type Collective struct {
	ID      int
	Arrival sim.Time
	Bytes   int64
	GPUs    int
	// Hosts are the member hosts, source first, in placement order.
	Hosts []topology.NodeID
}

// Source returns the source host.
func (c *Collective) Source() topology.NodeID { return c.Hosts[0] }

// Receivers returns the non-source member hosts.
func (c *Collective) Receivers() []topology.NodeID { return c.Hosts[1:] }

// PlacementFragmentation controls how bin-packed placements are: 0 gives
// perfectly contiguous host runs; f>0 randomly skips hosts with
// probability f while walking the contiguous run, fragmenting the prefix
// ranges (the §3.4 resource-fragmentation knob).
type Spec struct {
	GPUs          int
	Bytes         int64
	Fragmentation float64
}

// Place selects the member hosts for a collective of spec.GPUs GPUs with
// bin-packed locality: a contiguous run of hosts starting at a random
// rack-aligned offset. Returns an error if the cluster is too small.
func (c *Cluster) Place(spec Spec, rng *rand.Rand) ([]topology.NodeID, error) {
	needHosts := (spec.GPUs + c.GPUsPerHost - 1) / c.GPUsPerHost
	if needHosts > len(c.hosts) {
		return nil, fmt.Errorf("workload: %d GPUs need %d hosts, cluster has %d", spec.GPUs, needHosts, len(c.hosts))
	}
	align := c.G.HostsPerEdge
	if align <= 0 {
		align = 1
	}
	maxStart := len(c.hosts) - needHosts
	var start int
	if maxStart > 0 {
		// Rack-aligned start: schedulers allocate whole racks first.
		slots := maxStart/align + 1
		start = rng.Intn(slots) * align
	}
	out := make([]topology.NodeID, 0, needHosts)
	for i := start; i < len(c.hosts) && len(out) < needHosts; i++ {
		if spec.Fragmentation > 0 && rng.Float64() < spec.Fragmentation {
			continue // hole in the allocation
		}
		out = append(out, c.hosts[i])
	}
	// Wrap around if fragmentation walked off the end.
	for i := 0; len(out) < needHosts; i++ {
		if i >= len(c.hosts) {
			return nil, fmt.Errorf("workload: fragmentation exhausted cluster")
		}
		seen := false
		for _, h := range out {
			if h == c.hosts[i] {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, c.hosts[i])
		}
	}
	// Rotate so a uniformly random member leads: the broadcast root
	// varies per collective (successive collectives sharing one fixed
	// root would serialize on that host's NIC, which no real workload
	// does). Rotation preserves placement adjacency for ring locality.
	if r := rng.Intn(len(out)); r > 0 {
		rotated := make([]topology.NodeID, 0, len(out))
		rotated = append(rotated, out[r:]...)
		rotated = append(rotated, out[:r]...)
		out = rotated
	}
	return out, nil
}

// Arrivals generates n Poisson arrivals at the given rate (collectives
// per second), as the paper's CPS-style collective arrival process.
func Arrivals(n int, ratePerSec float64, rng *rand.Rand) []sim.Time {
	out := make([]sim.Time, n)
	t := 0.0
	for i := range out {
		t += rng.ExpFloat64() / ratePerSec
		out[i] = sim.FromSeconds(t)
	}
	return out
}

// RateForOfferedLoad returns the Poisson arrival rate (collectives/s) that
// yields the target offered load: each collective must deliver
// spec.Bytes to each member host, so it consumes ≈ Bytes × hosts of
// edge-link capacity; the fabric offers hosts × linkBps of edge capacity.
//
//	rate = load × hostCount × linkBps / (8 × Bytes × memberHosts)
//
// The paper fixes load at 30% for Fig. 5.
func RateForOfferedLoad(load float64, totalHosts int, linkBps float64, spec Spec, gpusPerHost int) float64 {
	memberHosts := float64((spec.GPUs + gpusPerHost - 1) / gpusPerHost)
	bitsPerCollective := 8 * float64(spec.Bytes) * memberHosts
	totalBps := load * float64(totalHosts) * linkBps
	return totalBps / bitsPerCollective
}

// Generate produces n collectives with Poisson arrivals at the offered
// load, bin-packed placements, and the spec's scale and size.
func (c *Cluster) Generate(n int, load float64, linkBps float64, spec Spec, rng *rand.Rand) ([]*Collective, error) {
	rate := RateForOfferedLoad(load, len(c.hosts), linkBps, spec, c.GPUsPerHost)
	if math.IsInf(rate, 0) || rate <= 0 {
		return nil, fmt.Errorf("workload: degenerate arrival rate %v", rate)
	}
	arrivals := Arrivals(n, rate, rng)
	out := make([]*Collective, n)
	for i := range out {
		hosts, err := c.Place(spec, rng)
		if err != nil {
			return nil, err
		}
		out[i] = &Collective{
			ID:      i,
			Arrival: arrivals[i],
			Bytes:   spec.Bytes,
			GPUs:    spec.GPUs,
			Hosts:   hosts,
		}
	}
	return out, nil
}
