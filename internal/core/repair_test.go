package core

import (
	"errors"
	"math/rand"
	"slices"
	"testing"

	"peel/internal/steiner"
	"peel/internal/topology"
)

// TestRepairTreeCostWithinFreshPeelBound is the graft-vs-fresh property
// test: across seeded random groups and failure patterns, every patch
// RepairTree accepts must stay inside Theorem 2.5's fresh-peel envelope
// — patched cost ≤ min(F,|D|) × an actual fresh peel's cost — and every
// refusal must degrade to a full build that serves the same receivers.
func TestRepairTreeCostWithinFreshPeelBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pol := steiner.DefaultRepairPolicy()
	patched, fellBack, unreachable := 0, 0, 0
	for trial := 0; trial < 200; trial++ {
		var g *topology.Graph
		switch trial % 3 {
		case 0:
			g = topology.FatTree(4)
		case 1:
			g = topology.FatTree(8)
		default:
			g = topology.LeafSpine(4, 4, 4)
		}
		hosts := g.Hosts()
		src := hosts[rng.Intn(len(hosts))]
		nd := 2 + rng.Intn(14)
		dests := make([]topology.NodeID, 0, nd)
		for len(dests) < nd {
			h := hosts[rng.Intn(len(hosts))]
			if h != src && !slices.Contains(dests, h) {
				dests = append(dests, h)
			}
		}
		old, err := BuildTree(g, src, dests)
		if err != nil {
			t.Fatal(err)
		}
		// At least one tree link dies; up to two more links flap anywhere.
		links := old.Links(g)
		failed := links[rng.Intn(len(links))]
		g.FailLink(failed)
		for extra := rng.Intn(3); extra > 0; extra-- {
			g.FailLink(topology.LinkID(rng.Intn(g.NumLinks())))
		}

		tree, stats, err := RepairTree(g, old, failed, dests, pol)
		if err != nil {
			if !errors.Is(err, steiner.ErrUnreachable) {
				t.Fatalf("trial %d: unexpected error: %v", trial, err)
			}
			unreachable++
			continue
		}
		if verr := tree.Validate(g, dests); verr != nil {
			t.Fatalf("trial %d: repaired tree invalid: %v", trial, verr)
		}
		if stats.FellBack {
			fellBack++
			continue
		}
		patched++
		lb, ub, berr := steiner.PeelCostBudget(g, src, dests)
		if berr != nil {
			t.Fatalf("trial %d: budget after accepted patch: %v", trial, berr)
		}
		if tree.Cost() < lb || tree.Cost() > ub {
			t.Fatalf("trial %d: patched cost %d outside fresh-peel budget [%d, %d]",
				trial, tree.Cost(), lb, ub)
		}
		// The literal graft-vs-fresh ratio: a fresh peel costs at least lb,
		// so the envelope caps the patch at min(F,|D|) × fresh.
		fresh, _, ferr := steiner.LayerPeeling(g, src, dests)
		if ferr != nil {
			t.Fatalf("trial %d: fresh peel failed after accepted patch: %v", trial, ferr)
		}
		if lb > 0 && tree.Cost() > (ub/lb)*fresh.Cost() {
			t.Fatalf("trial %d: patched cost %d exceeds min(F,|D|)=%d × fresh cost %d",
				trial, tree.Cost(), ub/lb, fresh.Cost())
		}
	}
	if patched == 0 {
		t.Fatal("sweep accepted no patches; fixture is broken")
	}
	t.Logf("patched=%d fellBack=%d unreachable=%d", patched, fellBack, unreachable)
}

// TestRepairTreeFallsBackToFullBuild pins the degradation contract: a
// policy that refuses everything still yields a served tree, flagged as
// a full-build fallback.
func TestRepairTreeFallsBackToFullBuild(t *testing.T) {
	g := topology.FatTree(4)
	hosts := g.Hosts()
	src := hosts[0]
	dests := []topology.NodeID{hosts[3], hosts[7], hosts[11]}
	old, err := BuildTree(g, src, dests)
	if err != nil {
		t.Fatal(err)
	}
	var failed topology.LinkID = -1
	for _, l := range old.Links(g) {
		lk := g.Link(l)
		if g.Node(lk.A).Kind.IsSwitch() && g.Node(lk.B).Kind.IsSwitch() {
			failed = l
			break
		}
	}
	if failed < 0 {
		t.Fatal("no switch-switch tree link")
	}
	g.FailLink(failed)
	pol := steiner.DefaultRepairPolicy()
	pol.MaxOrphanFrac = 1e-9
	tree, stats, err := RepairTree(g, old, failed, dests, pol)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.FellBack {
		t.Fatalf("expected a full-build fallback, got %+v", stats)
	}
	if verr := tree.Validate(g, dests); verr != nil {
		t.Fatalf("fallback tree invalid: %v", verr)
	}
}
