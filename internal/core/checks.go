package core

import (
	"peel/internal/invariant"
)

// reportPlanChecks verifies a finished plan against the paper's switch-
// state and cover guarantees (§3.2): the pre-installed rule tables fit in
// k−1 TCAM entries, the two-tuple header fits in 8 bytes, and each pod's
// emitted prefixes are pairwise disjoint, reach every member ToR, and —
// when unbudgeted — cover exactly the member ToR set.
func (pl *Planner) reportPlanChecks(s *invariant.Suite, plan *Plan, opts PlanOptions) {
	k := pl.G.K
	s.Checkf(invariant.PrefixRuleBudget,
		pl.ToRSpace.NumRules() <= k-1 && pl.HostSpace.NumRules() <= k-1,
		"rule tables (tor=%d host=%d) exceed k-1=%d", pl.ToRSpace.NumRules(), pl.HostSpace.NumRules(), k-1)
	s.Checkf(invariant.PrefixHeaderBudget,
		plan.HeaderBytes <= 8 && plan.HeaderBytes == pl.Codec.EncodedLen(),
		"header %d bytes (codec says %d, budget 8)", plan.HeaderBytes, pl.Codec.EncodedLen())

	// Member ToR ids per pod, reconstructed from the members themselves.
	want := map[int]map[uint32]bool{}
	for _, m := range plan.Members {
		pod := pl.G.PodOf(m)
		if want[pod] == nil {
			want[pod] = map[uint32]bool{}
		}
		want[pod][uint32(pl.G.ToRIndexOf(m))] = true
	}
	covered := map[int]map[uint32]bool{}
	for i := range plan.Packets {
		pkt := &plan.Packets[i]
		pod := pkt.Header.Pod
		if covered[pod] == nil {
			covered[pod] = map[uint32]bool{}
		}
		lo, hi := pkt.Header.ToR.Block(pl.ToRSpace.M)
		for id := lo; id < hi; id++ {
			s.Checkf(invariant.PrefixCover, !covered[pod][id],
				"pod %d ToR id %d covered by two packets (prefix %v)", pod, id, pkt.Header.ToR)
			covered[pod][id] = true
			if opts.PacketBudget <= 0 {
				s.Checkf(invariant.PrefixCover, want[pod][id],
					"unbudgeted cover reaches non-member ToR id %d in pod %d", id, pod)
			}
		}
	}
	for pod, ids := range want {
		for id := range ids {
			s.Checkf(invariant.PrefixCover, covered[pod][id],
				"member ToR id %d in pod %d not covered by any packet", id, pod)
		}
	}
}
