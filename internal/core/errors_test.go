package core

import (
	"testing"

	"peel/internal/topology"
)

// Table-driven rejection tests: every error path of NewPlanner and
// PlanGroupOpts must actually reject, and the good path must not.

func TestNewPlannerRejectsNonFatTree(t *testing.T) {
	if _, err := NewPlanner(topology.LeafSpine(4, 4, 2)); err == nil {
		t.Fatal("NewPlanner accepted a leaf-spine fabric (no fat-tree pod structure)")
	}
	if _, err := NewPlanner(topology.FatTree(4)); err != nil {
		t.Fatalf("NewPlanner rejected a k=4 fat-tree: %v", err)
	}
}

func TestPlanGroupOptsRejections(t *testing.T) {
	g := topology.FatTree(4)
	pl, err := NewPlanner(g)
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	var tor topology.NodeID = topology.None
	for _, he := range g.Adj(hosts[0]) {
		tor = he.Peer
	}
	if tor == topology.None {
		t.Fatal("host 0 has no uplink")
	}

	cases := []struct {
		name    string
		src     topology.NodeID
		members []topology.NodeID
		opts    PlanOptions
	}{
		{"negative packet budget", hosts[0], []topology.NodeID{hosts[1]}, PlanOptions{PacketBudget: -1}},
		{"switch as source", tor, []topology.NodeID{hosts[1]}, PlanOptions{}},
		{"switch as member", hosts[0], []topology.NodeID{hosts[1], tor}, PlanOptions{}},
	}
	for _, tc := range cases {
		if _, err := pl.PlanGroupOpts(tc.src, tc.members, tc.opts); err == nil {
			t.Errorf("%s: PlanGroupOpts accepted the group", tc.name)
		}
	}

	// Good path for contrast: a clean group plans without error.
	if _, err := pl.PlanGroupOpts(hosts[0], []topology.NodeID{hosts[1], hosts[5]}, PlanOptions{}); err != nil {
		t.Fatalf("clean group rejected: %v", err)
	}
}
