package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"peel/internal/topology"
)

// fragmented picks members on ToRs 0 and 2 with partial racks in one pod:
// the worst case for power-of-two aggregation.
func fragmentedGroup(g *topology.Graph) (topology.NodeID, []topology.NodeID) {
	src := g.HostByCoord(0, 0, 0)
	var members []topology.NodeID
	for _, tor := range []int{0, 2} {
		for slot := 0; slot < 3; slot++ {
			members = append(members, g.HostByCoord(3, tor, slot))
		}
	}
	return src, members
}

func TestPacketBudgetTradesPacketsForRedundancy(t *testing.T) {
	g := topology.FatTree(8)
	pl, err := NewPlanner(g)
	if err != nil {
		t.Fatal(err)
	}
	src, members := fragmentedGroup(g)

	exact, err := pl.PlanGroupOpts(src, members, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.Packets) != 2 {
		t.Fatalf("exact plan has %d packets, want 2 (ToRs {0,2})", len(exact.Packets))
	}

	budgeted, err := pl.PlanGroupOpts(src, members, PlanOptions{PacketBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(budgeted.Packets) != 1 {
		t.Fatalf("budget-1 plan has %d packets", len(budgeted.Packets))
	}
	// Fewer packets, more over-coverage: the merged 0** block pulls in
	// ToRs 1 and 3.
	if budgeted.Packets[0].OverToRs < exact.Packets[0].OverToRs+exact.Packets[1].OverToRs+1 {
		t.Fatalf("budgeted plan shows no extra ToR over-coverage: %+v", budgeted.Packets[0])
	}
	// All members still served exactly once.
	served := map[topology.NodeID]bool{}
	for _, p := range budgeted.Packets {
		if err := p.Tree.Validate(g, p.Receivers); err != nil {
			t.Fatal(err)
		}
		for _, r := range p.Receivers {
			if served[r] {
				t.Fatalf("member %d served twice", r)
			}
			served[r] = true
		}
	}
	if len(served) != len(members) {
		t.Fatalf("served %d of %d members", len(served), len(members))
	}
}

func TestToRFilterRemovesHostOverCoverage(t *testing.T) {
	g := topology.FatTree(8)
	pl, err := NewPlanner(g)
	if err != nil {
		t.Fatal(err)
	}
	src, members := fragmentedGroup(g)

	base, err := pl.PlanGroupOpts(src, members, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if base.TotalOverHosts() == 0 {
		t.Fatal("fragmented group should over-cover hosts without filtering")
	}
	filtered, err := pl.PlanGroupOpts(src, members, PlanOptions{ToRFilter: true})
	if err != nil {
		t.Fatal(err)
	}
	if filtered.TotalOverHosts() != 0 {
		t.Fatalf("filtering ToRs left %d over-covered hosts", filtered.TotalOverHosts())
	}
	// The filtered trees must contain no non-member host leaves.
	memberSet := map[topology.NodeID]bool{src: true}
	for _, m := range members {
		memberSet[m] = true
	}
	for _, p := range filtered.Packets {
		for _, n := range p.Tree.Members {
			if g.Node(n).Kind == topology.Host && !memberSet[n] {
				t.Fatalf("filtered tree still reaches non-member host %d", n)
			}
		}
		if err := p.Tree.Validate(g, p.Receivers); err != nil {
			t.Fatal(err)
		}
	}
	// Filtering must never lose a member.
	served := 0
	for _, p := range filtered.Packets {
		served += len(p.Receivers)
	}
	if served != len(members) {
		t.Fatalf("served %d of %d members", served, len(members))
	}
}

func TestBudgetWithFilterCombined(t *testing.T) {
	g := topology.FatTree(8)
	pl, _ := NewPlanner(g)
	src, members := fragmentedGroup(g)
	plan, err := pl.PlanGroupOpts(src, members, PlanOptions{PacketBudget: 1, ToRFilter: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Packets) != 1 || plan.TotalOverHosts() != 0 {
		t.Fatalf("combined plan: %d packets, %d over-hosts", len(plan.Packets), plan.TotalOverHosts())
	}
	// Over-covered ToRs are still reached (they filter, not the agg), so
	// the count remains visible for accounting.
	if plan.Packets[0].OverToRs == 0 {
		t.Fatal("budget-1 must over-cover ToRs on this group")
	}
}

// Property: for random groups and budgets, plans serve every member
// exactly once, trees validate, and the packet count respects the budget.
func TestQuickPlanOptsInvariants(t *testing.T) {
	g := topology.FatTree(8)
	pl, err := NewPlanner(g)
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	f := func(seed int64, nRaw, budgetRaw uint8, filter bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%50
		perm := rng.Perm(len(hosts))
		src := hosts[perm[0]]
		members := make([]topology.NodeID, n)
		for i := 0; i < n; i++ {
			members[i] = hosts[perm[1+i]]
		}
		opts := PlanOptions{PacketBudget: int(budgetRaw) % 4, ToRFilter: filter}
		plan, err := pl.PlanGroupOpts(src, members, opts)
		if err != nil {
			return false
		}
		served := map[topology.NodeID]int{}
		perPod := map[int]int{}
		for _, p := range plan.Packets {
			if p.Tree.Validate(g, p.Receivers) != nil {
				return false
			}
			perPod[p.Header.Pod]++
			for _, r := range p.Receivers {
				served[r]++
			}
			if filter && p.OverHosts != 0 {
				return false
			}
		}
		if opts.PacketBudget > 0 {
			for _, n := range perPod {
				if n > opts.PacketBudget {
					return false
				}
			}
		}
		for _, m := range plan.Members {
			if served[m] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
