package core

import (
	"fmt"
	"sort"

	"peel/internal/invariant"
	"peel/internal/prefix"
	"peel/internal/topology"
)

// PlanOptions tune the static-prefix stage, exploring the paper's §3.4
// open questions:
//
//   - PacketBudget caps the prefixes (and hence upward message copies)
//     per destination pod; when the exact cover needs more, adjacent
//     blocks are merged at the cost of over-coverage (the "adaptive
//     prefix packing" direction). 0 means unbudgeted (exact cover).
//   - ToRFilter models membership-filtering ToRs (the "ToRs that filter"
//     deployment tier): over-covered ToRs still receive the packet, but
//     drop it instead of fanning out to non-member hosts, eliminating
//     host-level redundant traffic.
type PlanOptions struct {
	PacketBudget int
	ToRFilter    bool
}

// PlanGroupOpts is PlanGroup with explicit options; PlanGroup is
// equivalent to PlanGroupOpts with the zero options.
func (pl *Planner) PlanGroupOpts(src topology.NodeID, members []topology.NodeID, opts PlanOptions) (*Plan, error) {
	g := pl.G
	if opts.PacketBudget < 0 {
		return nil, fmt.Errorf("core: negative packet budget %d", opts.PacketBudget)
	}
	if g.Node(src).Kind != topology.Host {
		return nil, fmt.Errorf("core: source %d is not a host", src)
	}
	plan := &Plan{Source: src, HeaderBytes: pl.Codec.EncodedLen()}
	seen := map[topology.NodeID]bool{src: true}
	byPod := map[int][]topology.NodeID{}
	for _, m := range members {
		if seen[m] {
			continue
		}
		seen[m] = true
		if g.Node(m).Kind != topology.Host {
			return nil, fmt.Errorf("core: member %d is not a host", m)
		}
		plan.Members = append(plan.Members, m)
		byPod[g.PodOf(m)] = append(byPod[g.PodOf(m)], m)
	}
	if len(plan.Members) == 0 {
		return plan, nil
	}

	pods := make([]int, 0, len(byPod))
	for p := range byPod {
		pods = append(pods, p)
	}
	sort.Ints(pods)

	for _, pod := range pods {
		torIDs := map[uint32][]topology.NodeID{}
		for _, m := range byPod[pod] {
			id := uint32(g.ToRIndexOf(m))
			torIDs[id] = append(torIDs[id], m)
		}
		ids := make([]uint32, 0, len(torIDs))
		for id := range torIDs {
			ids = append(ids, id)
		}
		var cover []prefix.Prefix
		var err error
		if opts.PacketBudget > 0 {
			cover, err = pl.ToRSpace.BudgetedCover(ids, opts.PacketBudget)
		} else {
			cover, err = pl.ToRSpace.ExactCover(ids)
		}
		if err != nil {
			return nil, err
		}
		for _, torPfx := range cover {
			pkt, err := pl.buildPacketOpts(src, pod, torPfx, torIDs, opts)
			if err != nil {
				return nil, err
			}
			plan.Packets = append(plan.Packets, *pkt)
		}
	}
	if s := invariant.Active(); s != nil {
		pl.reportPlanChecks(s, plan, opts)
	}
	return plan, nil
}

// buildPacketOpts is buildPacket with filtering options applied.
func (pl *Planner) buildPacketOpts(src topology.NodeID, pod int, torPfx prefix.Prefix,
	torIDs map[uint32][]topology.NodeID, opts PlanOptions) (*Packet, error) {

	g := pl.G
	slotSet := map[uint32]bool{}
	var receivers []topology.NodeID
	lo, hi := torPfx.Block(pl.ToRSpace.M)
	for id := lo; id < hi; id++ {
		for _, m := range torIDs[id] {
			slotSet[uint32(g.HostSlotOf(m))] = true
			receivers = append(receivers, m)
		}
	}
	if len(receivers) == 0 {
		return nil, fmt.Errorf("core: prefix %v covers no members", torPfx)
	}
	slots := make([]uint32, 0, len(slotSet))
	for s := range slotSet {
		slots = append(slots, s)
	}
	hostCover, err := pl.HostSpace.BudgetedCover(slots, 1)
	if err != nil {
		return nil, err
	}
	hostPfx := hostCover[0]

	b := newTreeBuilder(g, src)
	srcToR := g.EdgeSwitchOf(src)
	if srcToR == topology.None {
		return nil, fmt.Errorf("core: source %d has no live uplink", src)
	}
	b.attach(srcToR, src)

	var podAgg topology.NodeID
	if pod == g.PodOf(src) {
		podAgg = firstLive(g, srcToR, topology.Agg)
		if podAgg == topology.None {
			return nil, fmt.Errorf("core: tor %d has no live agg uplink", srcToR)
		}
		b.attach(podAgg, srcToR)
	} else {
		srcAgg := firstLive(g, srcToR, topology.Agg)
		if srcAgg == topology.None {
			return nil, fmt.Errorf("core: tor %d has no live agg uplink", srcToR)
		}
		b.attach(srcAgg, srcToR)
		core := firstLive(g, srcAgg, topology.Core)
		if core == topology.None {
			return nil, fmt.Errorf("core: agg %d has no live core uplink", srcAgg)
		}
		b.attach(core, srcAgg)
		podAgg = aggInPod(g, core, pod)
		if podAgg == topology.None {
			return nil, fmt.Errorf("core: core %d cannot reach pod %d", core, pod)
		}
		b.attach(podAgg, core)
	}

	overToRs, overHosts := 0, 0
	hlo, hhi := hostPfx.Block(pl.HostSpace.M)
	memberSet := map[topology.NodeID]bool{}
	for _, r := range receivers {
		memberSet[r] = true
	}
	for id := lo; id < hi; id++ {
		tor := torInPod(g, pod, int(id))
		if tor == topology.None {
			return nil, fmt.Errorf("core: pod %d has no tor %d", pod, id)
		}
		if !b.tree.Contains(tor) {
			b.attach(tor, podAgg)
		}
		torHasMembers := len(torIDs[id]) > 0
		if !torHasMembers {
			overToRs++
			if opts.ToRFilter {
				continue // filtering ToR drops the packet entirely
			}
		}
		for slot := hlo; slot < hhi; slot++ {
			h := g.HostByCoord(pod, int(id), int(slot))
			if h == topology.None || h == src {
				continue
			}
			if !memberSet[h] {
				if opts.ToRFilter {
					continue // filtering ToR forwards to members only
				}
				overHosts++
			}
			b.attach(h, tor)
		}
	}
	sort.Slice(receivers, func(i, j int) bool { return receivers[i] < receivers[j] })
	return &Packet{
		Header:    prefix.Header{Pod: pod, ToR: torPfx, Host: hostPfx},
		Tree:      b.tree,
		Receivers: receivers,
		OverToRs:  overToRs,
		OverHosts: overHosts,
	}, nil
}
