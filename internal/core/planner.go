// Package core is PEEL itself: the planner that turns a multicast group
// into (a) the static power-of-two prefix packets the source emits
// (§3.2), (b) the per-packet delivery trees those prefixes induce in the
// fabric — including the over-covered ToRs and hosts that receive and
// discard — and (c) the controller-refined exact tree used by the
// optional two-stage refinement with programmable cores (§3.3).
//
// On failure-free fat-trees the planner uses the fabric's regularity
// directly; on asymmetric fabrics (failed links) tree construction falls
// back to the layer-peeling heuristic of §2.3 via BuildTree.
package core

import (
	"fmt"

	"peel/internal/prefix"
	"peel/internal/steiner"
	"peel/internal/topology"
)

// Planner plans PEEL multicast for one fat-tree fabric.
type Planner struct {
	G *topology.Graph
	// ToRSpace is the per-pod ToR identifier space (m = log₂(k/2)).
	ToRSpace prefix.Space
	// HostSpace is the per-ToR host identifier space.
	HostSpace prefix.Space
	// Codec encodes the two-tuple packet header.
	Codec prefix.Codec
}

// NewPlanner validates the fabric and derives the identifier spaces.
func NewPlanner(g *topology.Graph) (*Planner, error) {
	if g.K == 0 {
		return nil, fmt.Errorf("core: PEEL prefix planning requires a fat-tree fabric")
	}
	ts, err := prefix.SpaceForFanout(g.K / 2)
	if err != nil {
		return nil, err
	}
	hs, err := prefix.SpaceForFanout(g.HostsPerEdge)
	if err != nil {
		return nil, err
	}
	return &Planner{G: g, ToRSpace: ts, HostSpace: hs, Codec: prefix.Codec{M: ts.M}}, nil
}

// Packet is one prefix-addressed copy the source emits: its header, the
// delivery tree the pre-installed rules induce, and redundancy accounting.
type Packet struct {
	Header prefix.Header
	// Tree is the packet's delivery tree rooted at the source, including
	// over-covered ToRs and hosts.
	Tree *steiner.Tree
	// Receivers are the group members this packet serves.
	Receivers []topology.NodeID
	// OverToRs / OverHosts count non-member devices the prefix rules
	// reach; their traffic is discarded on arrival.
	OverToRs  int
	OverHosts int
}

// Plan is the full PEEL send plan for one group.
type Plan struct {
	Source  topology.NodeID
	Members []topology.NodeID
	// Packets: the static prefix stage (one multicast copy each).
	Packets []Packet
	// Refined is the controller-computed exact tree for the programmable-
	// core stage (§3.3); nil until BuildRefined is called.
	Refined *steiner.Tree
	// HeaderBytes is the per-packet header overhead.
	HeaderBytes int
}

// TotalOverHosts sums host-level over-coverage across packets.
func (p *Plan) TotalOverHosts() int {
	n := 0
	for i := range p.Packets {
		n += p.Packets[i].OverHosts
	}
	return n
}

// PlanGroup builds the static-prefix plan for a broadcast from src to the
// member hosts (deduplicated; src excluded) with default options: exact
// per-pod covers and stateless (non-filtering) ToRs. It requires the
// canonical fat-tree links it uses to be live. See PlanGroupOpts for the
// §3.4 knobs (packet budgets, filtering ToRs).
func (pl *Planner) PlanGroup(src topology.NodeID, members []topology.NodeID) (*Plan, error) {
	return pl.PlanGroupOpts(src, members, PlanOptions{})
}

// BuildRefined computes the controller's exact set-cover tree (§3.3): the
// bandwidth-optimal tree over the member hosts, with replication at the
// programmable cores and no over-coverage.
func (pl *Planner) BuildRefined(plan *Plan) error {
	t, err := steiner.SymmetricOptimal(pl.G, plan.Source, plan.Members)
	if err != nil {
		return err
	}
	plan.Refined = t
	return nil
}

// BuildTree constructs a multicast tree for an arbitrary (possibly failed)
// fabric: the symmetric-optimal construction when it applies, otherwise
// the §2.3 layer-peeling greedy. This is the tree-construction entry
// point the Fig. 7 robustness experiment exercises.
func BuildTree(g *topology.Graph, src topology.NodeID, dests []topology.NodeID) (*steiner.Tree, error) {
	if g.NumFailedLinks() == 0 {
		if t, err := steiner.SymmetricOptimal(g, src, dests); err == nil {
			return t, nil
		}
	}
	t, _, err := steiner.LayerPeeling(g, src, dests)
	return t, err
}

// StateSummary reports the paper's headline switch-state numbers for a
// k-ary fat-tree: PEEL's pre-installed rules per aggregation switch vs
// naive per-group entries, and the per-packet header cost.
type StateSummary struct {
	K            int
	Hosts        int
	PEELRules    int
	NaiveEntries float64
	HeaderBits   int
	HeaderBytes  int
}

// StateFor computes the summary without building the fabric.
func StateFor(k int) StateSummary {
	shape := topology.Shape(k)
	return StateSummary{
		K:            k,
		Hosts:        shape.Hosts,
		PEELRules:    k - 1,
		NaiveEntries: prefix.NaiveGroupEntries(k),
		HeaderBits:   prefix.HeaderBits(k),
		HeaderBytes:  prefix.HeaderBytes(k),
	}
}

// treeBuilder assembles steiner.Tree values edge by edge.
type treeBuilder struct {
	g    *topology.Graph
	tree *steiner.Tree
}

func newTreeBuilder(g *topology.Graph, src topology.NodeID) *treeBuilder {
	parent := make([]topology.NodeID, g.NumNodes())
	for i := range parent {
		parent[i] = topology.None
	}
	return &treeBuilder{g: g, tree: &steiner.Tree{
		Source:  src,
		Parent:  parent,
		Members: []topology.NodeID{src},
	}}
}

// attach adds child under parent; adding an existing member is a no-op
// when the parent matches and a panic otherwise (plan inconsistency).
func (b *treeBuilder) attach(child, parent topology.NodeID) {
	if b.tree.Contains(child) {
		if b.tree.Parent[child] != parent && child != b.tree.Source {
			panic(fmt.Sprintf("core: node %d attached under both %d and %d", child, b.tree.Parent[child], parent))
		}
		return
	}
	if b.g.LinkBetween(parent, child) < 0 {
		panic(fmt.Sprintf("core: no live link %d-%d", parent, child))
	}
	b.tree.Parent[child] = parent
	b.tree.Members = append(b.tree.Members, child)
}

func firstLive(g *topology.Graph, n topology.NodeID, kind topology.Kind) topology.NodeID {
	best := topology.None
	for _, he := range g.Adj(n) {
		if g.Link(he.Link).Failed {
			continue
		}
		if g.Node(he.Peer).Kind == kind && (best == topology.None || he.Peer < best) {
			best = he.Peer
		}
	}
	return best
}

func aggInPod(g *topology.Graph, core topology.NodeID, pod int) topology.NodeID {
	for _, he := range g.Adj(core) {
		if g.Link(he.Link).Failed {
			continue
		}
		if p := g.Node(he.Peer); p.Kind == topology.Agg && p.Pod == pod {
			return he.Peer
		}
	}
	return topology.None
}

func torInPod(g *topology.Graph, pod, index int) topology.NodeID {
	// ToRs were added pod by pod in construction order; derive via a host
	// under the ToR, which HostByCoord can address directly.
	h := g.HostByCoord(pod, index, 0)
	if h == topology.None {
		return topology.None
	}
	return h - 1 // FatTree construction order: a ToR immediately precedes its first host
}
