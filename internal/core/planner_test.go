package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"peel/internal/topology"
)

func TestPlanPaperExample(t *testing.T) {
	// §3.2's example: an 8-ary pod, receivers on ToRs 010,011,100,101,
	// 110,111 → two packets: 01*/2 and 1**/1. Reproduce with an 8-ary
	// fat-tree, the source in pod 0 and members filling ToRs 2..7 wait —
	// a pod has k/2=4 ToRs; spread the example across ToR ids 2,3 of pod 1
	// and all of pod 2 instead, yielding one packet per aggregable block.
	g := topology.FatTree(8)
	pl, err := NewPlanner(g)
	if err != nil {
		t.Fatal(err)
	}
	src := g.HostByCoord(0, 0, 0)
	var members []topology.NodeID
	for _, tor := range []int{2, 3} { // pod 1, ToRs 2,3 → prefix 1*
		for slot := 0; slot < 4; slot++ {
			members = append(members, g.HostByCoord(1, tor, slot))
		}
	}
	for tor := 0; tor < 4; tor++ { // pod 2 fully → prefix **
		for slot := 0; slot < 4; slot++ {
			members = append(members, g.HostByCoord(2, tor, slot))
		}
	}
	plan, err := pl.PlanGroup(src, members)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Packets) != 2 {
		t.Fatalf("packets=%d want 2", len(plan.Packets))
	}
	p0, p1 := plan.Packets[0], plan.Packets[1]
	if p0.Header.Pod != 1 || p0.Header.ToR.Format(2) != "1*" {
		t.Fatalf("packet0 header %+v, want pod1 1*", p0.Header)
	}
	if p1.Header.Pod != 2 || p1.Header.ToR.Format(2) != "**" {
		t.Fatalf("packet1 header %+v, want pod2 **", p1.Header)
	}
	if p0.OverToRs != 0 || p0.OverHosts != 0 || p1.OverToRs != 0 || p1.OverHosts != 0 {
		t.Fatalf("aligned full-rack groups must have zero over-coverage: %+v %+v", p0, p1)
	}
	if plan.HeaderBytes >= 8 {
		t.Fatalf("header %d B, must be <8 B", plan.HeaderBytes)
	}
	// Every member must be a receiver of exactly one packet.
	got := map[topology.NodeID]int{}
	for _, p := range plan.Packets {
		for _, r := range p.Receivers {
			got[r]++
		}
	}
	if len(got) != len(members) {
		t.Fatalf("receivers=%d want %d", len(got), len(members))
	}
	for m, n := range got {
		if n != 1 {
			t.Fatalf("member %d served by %d packets", m, n)
		}
	}
}

func TestPlanOverCoverage(t *testing.T) {
	// Fragmented placement: members on ToRs 0 and 2 of one pod (no
	// aligned pair) plus a partial rack → ToR- and host-level redundancy.
	g := topology.FatTree(8)
	pl, err := NewPlanner(g)
	if err != nil {
		t.Fatal(err)
	}
	src := g.HostByCoord(0, 0, 0)
	var members []topology.NodeID
	for _, tor := range []int{0, 2} {
		for slot := 0; slot < 3; slot++ { // 3 of 4 slots: host over-coverage
			members = append(members, g.HostByCoord(3, tor, slot))
		}
	}
	plan, err := pl.PlanGroup(src, members)
	if err != nil {
		t.Fatal(err)
	}
	// ToRs {0,2} have exact cover {00, 10}: two packets, no ToR overshoot.
	if len(plan.Packets) != 2 {
		t.Fatalf("packets=%d want 2", len(plan.Packets))
	}
	if plan.TotalOverHosts() != 2 { // one spare host slot per covered rack
		t.Fatalf("over-hosts=%d want 2", plan.TotalOverHosts())
	}
	// Each packet's tree must span its receivers.
	for _, p := range plan.Packets {
		if err := p.Tree.Validate(g, p.Receivers); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPlanSamePodAndSameToR(t *testing.T) {
	g := topology.FatTree(4)
	pl, err := NewPlanner(g)
	if err != nil {
		t.Fatal(err)
	}
	src := g.HostByCoord(1, 0, 0)
	members := []topology.NodeID{
		g.HostByCoord(1, 0, 1), // same rack
		g.HostByCoord(1, 1, 0), // same pod other rack
	}
	plan, err := pl.PlanGroup(src, members)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plan.Packets {
		if err := p.Tree.Validate(g, p.Receivers); err != nil {
			t.Fatal(err)
		}
		// Same-pod packets must not touch any core switch.
		for _, m := range p.Tree.Members {
			if g.Node(m).Kind == topology.Core {
				t.Fatal("same-pod packet crossed a core")
			}
		}
	}
}

func TestPlanDedupsMembers(t *testing.T) {
	g := topology.FatTree(4)
	pl, _ := NewPlanner(g)
	src := g.Hosts()[0]
	m := g.Hosts()[5]
	plan, err := pl.PlanGroup(src, []topology.NodeID{m, m, src})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Members) != 1 {
		t.Fatalf("members=%d want 1", len(plan.Members))
	}
}

func TestPlanEmptyGroup(t *testing.T) {
	g := topology.FatTree(4)
	pl, _ := NewPlanner(g)
	plan, err := pl.PlanGroup(g.Hosts()[0], nil)
	if err != nil || len(plan.Packets) != 0 {
		t.Fatalf("empty group: %+v %v", plan, err)
	}
}

func TestBuildRefinedMatchesOptimal(t *testing.T) {
	g := topology.FatTree(8)
	pl, _ := NewPlanner(g)
	rng := rand.New(rand.NewSource(2))
	hosts := g.Hosts()
	rng.Shuffle(len(hosts), func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })
	src, members := hosts[0], hosts[1:40]
	plan, err := pl.PlanGroup(src, members)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.BuildRefined(plan); err != nil {
		t.Fatal(err)
	}
	if err := plan.Refined.Validate(g, members); err != nil {
		t.Fatal(err)
	}
	// The refined tree has no over-coverage: its hosts are exactly the
	// members plus the source.
	hostsInTree := 0
	for _, m := range plan.Refined.Members {
		if g.Node(m).Kind == topology.Host {
			hostsInTree++
		}
	}
	if hostsInTree != len(members)+1 {
		t.Fatalf("refined tree spans %d hosts, want %d", hostsInTree, len(members)+1)
	}
}

func TestBuildTreeFallsBackUnderFailures(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := topology.LeafSpine(16, 48, 2)
	g.FailRandomFraction(0.08, topology.TierLinks(topology.Spine, topology.Leaf), rng)
	hosts := g.Hosts()
	src, dests := hosts[0], hosts[10:20]
	tr, err := BuildTree(g, src, dests)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(g, dests); err != nil {
		t.Fatal(err)
	}
}

func TestStateForHeadlines(t *testing.T) {
	// The paper's headline: 64-ary fat-tree (65,536 hosts) needs just 63
	// rules, down from over four billion, with <8 B of header.
	s := StateFor(64)
	if s.Hosts != 65536 {
		t.Fatalf("hosts=%d", s.Hosts)
	}
	if s.PEELRules != 63 {
		t.Fatalf("rules=%d want 63", s.PEELRules)
	}
	if s.NaiveEntries < 4e9 {
		t.Fatalf("naive=%g want >4e9", s.NaiveEntries)
	}
	if s.HeaderBytes >= 8 {
		t.Fatalf("header=%dB want <8", s.HeaderBytes)
	}
	if s128 := StateFor(128); s128.PEELRules != 127 || s128.Hosts != 524288 {
		t.Fatalf("k=128: %+v", s128)
	}
}

func TestNewPlannerRejectsLeafSpine(t *testing.T) {
	if _, err := NewPlanner(topology.LeafSpine(2, 2, 2)); err == nil {
		t.Fatal("leaf-spine has no pods; planner must reject it")
	}
}

// Property: for random groups on an 8-ary fat-tree, every plan (a) serves
// each member exactly once, (b) yields valid per-packet trees, (c) emits
// at most k/2−?… — at most one packet per member ToR, and (d) reports
// over-coverage consistent with the trees' non-member hosts.
func TestQuickPlanInvariants(t *testing.T) {
	g := topology.FatTree(8)
	pl, err := NewPlanner(g)
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%60
		perm := rng.Perm(len(hosts))
		src := hosts[perm[0]]
		members := make([]topology.NodeID, n)
		for i := 0; i < n; i++ {
			members[i] = hosts[perm[1+i]]
		}
		plan, err := pl.PlanGroup(src, members)
		if err != nil {
			return false
		}
		served := map[topology.NodeID]int{}
		torSet := map[topology.NodeID]bool{}
		overHosts := 0
		for _, p := range plan.Packets {
			if p.Tree.Validate(g, p.Receivers) != nil {
				return false
			}
			for _, r := range p.Receivers {
				served[r]++
			}
			// count non-member host leaves
			for _, m := range p.Tree.Members {
				nd := g.Node(m)
				if nd.Kind == topology.ToR {
					torSet[m] = true
				}
				if nd.Kind == topology.Host && m != src {
					isMember := false
					for _, r := range p.Receivers {
						if r == m {
							isMember = true
							break
						}
					}
					if !isMember {
						overHosts++
					}
				}
			}
		}
		if overHosts != plan.TotalOverHosts() {
			return false
		}
		for _, m := range plan.Members {
			if served[m] != 1 {
				return false
			}
		}
		return len(plan.Packets) <= n // never more packets than members
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanGroupErrorPaths(t *testing.T) {
	g := topology.FatTree(4)
	pl, _ := NewPlanner(g)
	hosts := g.Hosts()
	tor := g.NodesOfKind(topology.ToR)[0]
	if _, err := pl.PlanGroup(tor, hosts[:2]); err == nil {
		t.Fatal("switch source must be rejected")
	}
	if _, err := pl.PlanGroup(hosts[0], []topology.NodeID{tor}); err == nil {
		t.Fatal("switch member must be rejected")
	}
	// Source with a failed uplink cannot plan.
	g2 := topology.FatTree(4)
	pl2, _ := NewPlanner(g2)
	h := g2.Hosts()[0]
	g2.FailLink(g2.Adj(h)[0].Link)
	if _, err := pl2.PlanGroup(h, g2.Hosts()[4:6]); err == nil {
		t.Fatal("source without uplink must fail")
	}
}

func TestBuildRefinedFailsUnderImpossibleFabric(t *testing.T) {
	g := topology.FatTree(4)
	pl, _ := NewPlanner(g)
	hosts := g.Hosts()
	plan, err := pl.PlanGroup(hosts[0], hosts[8:10])
	if err != nil {
		t.Fatal(err)
	}
	// Cut the member uplinks: the refined (exact) tree cannot be built.
	for _, m := range plan.Members {
		g.FailLink(g.Adj(m)[0].Link)
	}
	if err := pl.BuildRefined(plan); err == nil {
		t.Fatal("refinement over severed members must fail")
	}
}
