package core

import (
	"peel/internal/invariant"
	"peel/internal/steiner"
	"peel/internal/topology"
)

// RepairTree is BuildTree's incremental sibling: it patches old — a tree
// built before failedLink died — into a valid tree over the current
// (degraded) graph covering dests, grafting orphaned receivers into the
// surviving subtree instead of re-peeling from scratch. failedLink is a
// diagnostic hint (negative when unknown, e.g. several links flapped);
// the patch rescans the tree's edges against the live graph regardless,
// so stacked failures repair correctly.
//
// The patch is accepted only when it stays inside pol's bounds AND inside
// Theorem 2.5's fresh-peel cost envelope on the degraded graph — the
// budget BuildTree itself is held to — so a patched tree is never
// categorically worse than a rebuild. Otherwise RepairTree falls back to
// BuildTree and reports it via RepairStats.FellBack. The returned error
// is nil whenever either path produced a tree.
func RepairTree(g *topology.Graph, old *steiner.Tree, failedLink topology.LinkID,
	dests []topology.NodeID, pol steiner.RepairPolicy) (*steiner.Tree, steiner.RepairStats, error) {

	_ = failedLink
	tree, stats, err := steiner.Repair(g, old, dests, pol)
	if err == nil {
		// The local policy passed; hold the patch to the same Theorem 2.5
		// budget a fresh peel would satisfy (one pooled BFS, still far
		// cheaper than peeling). Outside it, rebuilding is worth the cost.
		_, ub, berr := steiner.PeelCostBudget(g, old.Source, dests)
		if berr == nil && (ub == 0 || tree.Cost() <= ub) {
			steiner.ReportRepairChecks(invariant.Active(), g, tree, dests)
			return tree, stats, nil
		}
	}
	// Any refusal — policy bounds, budget, or a degraded-fabric corner —
	// degrades to the full build, which reports its own errors properly
	// (ErrUnreachable for disconnected receivers above all).
	stats.FellBack = true
	t, ferr := BuildTree(g, old.Source, dests)
	return t, stats, ferr
}
