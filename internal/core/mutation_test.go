package core

import (
	"testing"

	"peel/internal/invariant"
	"peel/internal/topology"
)

// Mutation self-tests for the plan checkers: corrupt a clean PEEL plan
// (or the planner's spaces) and prove the matching checker fires.

func mutationPlan(t *testing.T) (*Planner, *Plan) {
	t.Helper()
	g := topology.FatTree(4)
	pl, err := NewPlanner(g)
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	// Members spread across pods so the plan carries several packets.
	plan, err := pl.PlanGroup(hosts[0], []topology.NodeID{hosts[1], hosts[3], hosts[6], hosts[9]})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Packets) < 2 {
		t.Fatalf("mutation plan needs >=2 packets, got %d", len(plan.Packets))
	}
	return pl, plan
}

func TestMutationRuleBudgetFires(t *testing.T) {
	pl, plan := mutationPlan(t)
	mutated := *pl
	mutated.ToRSpace.M = 5 // 2·2^5−1 = 63 rules ≫ k−1 = 3
	s := invariant.NewSuite()
	mutated.reportPlanChecks(s, plan, PlanOptions{})
	if s.Violations(invariant.PrefixRuleBudget) == 0 {
		t.Fatal("rule-budget checker did not fire on an oversized rule table")
	}
}

func TestMutationHeaderBudgetFires(t *testing.T) {
	pl, plan := mutationPlan(t)
	corrupted := *plan
	corrupted.HeaderBytes = 9
	s := invariant.NewSuite()
	pl.reportPlanChecks(s, &corrupted, PlanOptions{})
	if s.Violations(invariant.PrefixHeaderBudget) == 0 {
		t.Fatal("header-budget checker did not fire on a 9-byte header")
	}
}

func TestMutationCoverDuplicateFires(t *testing.T) {
	pl, plan := mutationPlan(t)
	corrupted := *plan
	corrupted.Packets = append(append([]Packet(nil), plan.Packets...), plan.Packets[0])
	s := invariant.NewSuite()
	pl.reportPlanChecks(s, &corrupted, PlanOptions{})
	if s.Violations(invariant.PrefixCover) == 0 {
		t.Fatal("cover checker did not fire on a duplicated packet")
	}
}

func TestMutationCoverMissingFires(t *testing.T) {
	pl, plan := mutationPlan(t)
	corrupted := *plan
	corrupted.Packets = plan.Packets[:len(plan.Packets)-1]
	s := invariant.NewSuite()
	pl.reportPlanChecks(s, &corrupted, PlanOptions{})
	if s.Violations(invariant.PrefixCover) == 0 {
		t.Fatal("cover checker did not fire on a dropped packet")
	}
}
