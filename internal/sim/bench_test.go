package sim

import "testing"

// BenchmarkEngineEventLoop measures the raw schedule/dispatch cost of the
// event queue: a self-rescheduling chain interleaved with a fan of
// same-tick events, the pattern netsim generates (tx-finish chains plus
// propagation fans). Events are pushed hundreds of millions of times per
// figure, so allocs/op here dominate harness memory traffic.
func BenchmarkEngineEventLoop(b *testing.B) {
	b.ReportAllocs()
	var e Engine
	nop := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(Nanosecond, nop)
		e.After(2*Nanosecond, nop)
		e.Step()
		e.Step()
	}
}

// BenchmarkEngineChurn measures heap behavior under a deep queue: 1024
// pending events with continuous push/pop churn, the steady state of a
// loaded fabric simulation.
func BenchmarkEngineChurn(b *testing.B) {
	b.ReportAllocs()
	var e Engine
	nop := func() {}
	const depth = 1024
	for i := 0; i < depth; i++ {
		e.After(Time(i)*Microsecond, nop)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(Time(depth)*Microsecond, nop)
		e.Step()
	}
}
