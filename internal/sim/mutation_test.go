package sim

import (
	"testing"

	"peel/internal/invariant"
	"peel/internal/invariant/invtest"
)

// Mutation self-tests: corrupt engine state on purpose and prove the
// corresponding checker fires. A checker that can't fail is not a check.

func TestMutationTimeMonotoneFires(t *testing.T) {
	s := invtest.Capture(t, func() {
		e := &Engine{}
		e.pq.push(event{at: 50, seq: 1, fn: func() {}})
		e.now = 100 // clock corrupted past the pending event
		e.Step()
	})
	if s.Violations(invariant.SimTimeMonotone) == 0 {
		t.Fatal("time-monotone checker did not fire on a past-scheduled event")
	}
}

func TestMutationHeapIntegrityFires(t *testing.T) {
	s := invtest.Capture(t, func() {
		e := &Engine{}
		for i := 1; i <= 7; i++ {
			e.At(Time(i*10), func() {})
		}
		e.pq[3].at = -5 // deep element now orders before its parent
		e.reportHeapIntegrity(invariant.Active())
	})
	if s.Violations(invariant.SimHeapIntegrity) == 0 {
		t.Fatal("heap-integrity checker did not fire on a corrupted heap")
	}
}

func TestHeapIntegrityScanRunsFromStep(t *testing.T) {
	old := heapCheckInterval
	heapCheckInterval = 1
	defer func() { heapCheckInterval = old }()
	s := invtest.Capture(t, func() {
		e := &Engine{}
		for i := 1; i <= 4; i++ {
			e.At(Time(i*10), func() {})
		}
		for e.Step() {
		}
	})
	if s.Checks(invariant.SimHeapIntegrity) == 0 {
		t.Fatal("Step never ran the heap scan with interval 1")
	}
	if s.Violations(invariant.SimHeapIntegrity) != 0 {
		t.Fatalf("clean heap reported violations: %s", s.FirstFailure(invariant.SimHeapIntegrity))
	}
}
