package sim

import (
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestOrderingAndClock(t *testing.T) {
	var e Engine
	var got []int
	e.At(30*Nanosecond, func() { got = append(got, 3) })
	e.At(10*Nanosecond, func() { got = append(got, 1) })
	e.At(20*Nanosecond, func() {
		got = append(got, 2)
		e.After(5*Nanosecond, func() { got = append(got, 25) })
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 25, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v want %v", got, want)
		}
	}
	if e.Now() != 30*Nanosecond {
		t.Fatalf("clock=%v want 30ns", e.Now())
	}
	if e.Processed() != 4 || e.Pending() != 0 {
		t.Fatalf("processed=%d pending=%d", e.Processed(), e.Pending())
	}
}

func TestFIFOTieBreaking(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(time42(), func() { got = append(got, i) })
	}
	e.Run(0)
	if !sort.IntsAreSorted(got) {
		t.Fatal("same-timestamp events must run in scheduling order")
	}
}

func time42() Time { return 42 * Microsecond }

func TestPastSchedulingPanics(t *testing.T) {
	var e Engine
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(5, func() {})
	})
	e.Run(0)
}

func TestEventBudget(t *testing.T) {
	var e Engine
	var loop func()
	loop = func() { e.After(Nanosecond, loop) }
	e.At(0, loop)
	if err := e.Run(1000); err == nil {
		t.Fatal("runaway loop must trip the event budget")
	}
}

func TestRunUntil(t *testing.T) {
	var e Engine
	fired := 0
	e.At(Millisecond, func() { fired++ })
	e.At(3*Millisecond, func() { fired++ })
	e.RunUntil(2 * Millisecond)
	if fired != 1 {
		t.Fatalf("fired=%d want 1", fired)
	}
	if e.Now() != 2*Millisecond {
		t.Fatalf("clock must advance to deadline, got %v", e.Now())
	}
	e.RunUntil(5 * Millisecond)
	if fired != 2 || e.Now() != 5*Millisecond {
		t.Fatalf("fired=%d now=%v", fired, e.Now())
	}
}

func TestUnits(t *testing.T) {
	if Second != 1e12*Picosecond {
		t.Fatal("second must be 1e12 ps")
	}
	if got := (2500 * Millisecond).Seconds(); got != 2.5 {
		t.Fatalf("Seconds=%v", got)
	}
	if got := FromSeconds(0.001); got != Millisecond {
		t.Fatalf("FromSeconds=%v", got)
	}
	if got := (1500 * Nanosecond).Duration(); got != 1500*time.Nanosecond {
		t.Fatalf("Duration=%v", got)
	}
}

// Property: arbitrary event sets run in nondecreasing time order and the
// clock never goes backward.
func TestQuickMonotonicClock(t *testing.T) {
	f := func(offsets []uint32) bool {
		var e Engine
		ok := true
		last := Time(-1)
		for _, off := range offsets {
			at := Time(off % 1_000_000)
			e.At(at, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run(0)
		return ok && e.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
