// Package sim is a minimal deterministic discrete-event simulation engine:
// a monotonic picosecond clock and a priority queue of callback events.
// Ties are broken by scheduling order, so runs are fully reproducible.
//
// The network model in internal/netsim is built entirely on this engine,
// substituting for the paper's OMNeT++ substrate.
package sim

import (
	"fmt"
	"time"

	"peel/internal/invariant"
)

// Time is simulated time in picoseconds. Picosecond resolution keeps
// byte-level arithmetic exact: one byte at 100 Gb/s is 80 ps, at
// 900 GB/s (NVLink) roughly 1.1 ps.
type Time int64

// Handy unit constants.
const (
	Picosecond  Time = 1
	Nanosecond       = 1000 * Picosecond
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts simulated time to floating-point seconds for reporting.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts simulated time to a time.Duration (nanosecond floor).
func (t Time) Duration() time.Duration { return time.Duration(t / Nanosecond) }

// FromSeconds converts seconds to simulated time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// Event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap is a hand-rolled binary min-heap ordered by (at, seq). It
// replaces container/heap, whose any-typed Push/Pop box every event —
// two heap allocations per scheduled event, and events are pushed
// hundreds of millions of times per figure. Popped slots keep their
// capacity, so a draining-and-refilling queue stops allocating entirely.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push appends the event and restores the heap by sifting it up.
func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// pop removes and returns the earliest event, sifting the displaced tail
// element down. The vacated slot's callback is cleared so the queue never
// pins dead closures.
func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // release the closure
	q = q[:n]
	*h = q
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		child := l
		if r := l + 1; r < n && q.less(r, l) {
			child = r
		}
		if !q.less(child, i) {
			break
		}
		q[i], q[child] = q[child], q[i]
		i = child
	}
	return top
}

// heapCheckInterval is how many processed events separate full heap-
// property scans when invariant checking is on. The scan is O(pending),
// so amortizing keeps checked runs within the overhead budget. Package
// tests shrink it to exercise the scan densely.
var heapCheckInterval uint64 = 4096

// TraceFunc observes every processed event as (timestamp, scheduling
// sequence number). Installed via SetTrace; the golden end-to-end trace
// test digests this stream to pin the exact event order.
type TraceFunc func(at Time, seq uint64)

// Engine owns the clock and the pending-event queue. The zero value is
// ready to use.
type Engine struct {
	pq        eventHeap
	now       Time
	seq       uint64
	processed uint64
	trace     TraceFunc
	// suite/monotone cache the active invariant suite's pre-resolved
	// time-monotone counter so the per-event pass costs two atomic loads
	// and an add instead of a string-map lookup.
	suite    *invariant.Suite
	monotone invariant.Counter
}

// SetTrace installs (or, with nil, removes) a per-event observer.
func (e *Engine) SetTrace(fn TraceFunc) { e.trace = fn }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns how many events have run; useful for budget checks.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of scheduled, not-yet-run events.
func (e *Engine) Pending() int { return len(e.pq) }

// At schedules fn at absolute time t. Scheduling in the past panics: it is
// always a logic bug, and silently clamping would mask causality errors.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", t, e.now))
	}
	e.seq++
	e.pq.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn d after the current time.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Step runs the single earliest event; it reports false if none remain.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := e.pq.pop()
	if s := invariant.Active(); s != nil {
		if s != e.suite {
			e.suite = s
			e.monotone = s.Counter(invariant.SimTimeMonotone)
		}
		if ev.at >= e.now {
			e.monotone.Pass()
		} else {
			s.Violatef(invariant.SimTimeMonotone,
				"event (at=%d seq=%d) popped before clock %d", ev.at, ev.seq, e.now)
		}
		if e.processed%heapCheckInterval == 0 {
			e.reportHeapIntegrity(s)
		}
	}
	e.now = ev.at
	e.processed++
	if e.trace != nil {
		e.trace(ev.at, ev.seq)
	}
	ev.fn()
	return true
}

// reportHeapIntegrity scans the full pending queue for the min-heap
// property on (at, seq): no element may order before its parent.
func (e *Engine) reportHeapIntegrity(s *invariant.Suite) {
	q := e.pq
	ok, bad := true, -1
	for i := 1; i < len(q); i++ {
		if q.less(i, (i-1)/2) {
			ok, bad = false, i
			break
		}
	}
	s.Checkf(invariant.SimHeapIntegrity, ok,
		"heap property broken at index %d (len=%d)", bad, len(q))
}

// Run processes events until the queue drains or the event budget is
// exhausted; it returns an error in the latter case (runaway model).
func (e *Engine) Run(maxEvents uint64) error {
	start := e.processed
	for e.Step() {
		if maxEvents > 0 && e.processed-start >= maxEvents {
			return fmt.Errorf("sim: event budget %d exhausted at t=%v", maxEvents, e.now.Duration())
		}
	}
	return nil
}

// Reset returns the engine to its zero state — clock at 0, no pending
// events, counters cleared — while keeping the queue's allocated
// capacity. A pooled engine replayed across simulation runs therefore
// schedules without reallocating its heap.
func (e *Engine) Reset() {
	for i := range e.pq {
		e.pq[i] = event{}
	}
	e.pq = e.pq[:0]
	e.now = 0
	e.seq = 0
	e.processed = 0
}

// RunUntil processes events with timestamps ≤ deadline, advancing the
// clock to the deadline if the queue drains earlier.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.pq) > 0 && e.pq[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
