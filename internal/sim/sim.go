// Package sim is a minimal deterministic discrete-event simulation engine:
// a monotonic picosecond clock and a priority queue of callback events.
// Ties are broken by scheduling order, so runs are fully reproducible.
//
// The network model in internal/netsim is built entirely on this engine,
// substituting for the paper's OMNeT++ substrate.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is simulated time in picoseconds. Picosecond resolution keeps
// byte-level arithmetic exact: one byte at 100 Gb/s is 80 ps, at
// 900 GB/s (NVLink) roughly 1.1 ps.
type Time int64

// Handy unit constants.
const (
	Picosecond  Time = 1
	Nanosecond       = 1000 * Picosecond
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts simulated time to floating-point seconds for reporting.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts simulated time to a time.Duration (nanosecond floor).
func (t Time) Duration() time.Duration { return time.Duration(t / Nanosecond) }

// FromSeconds converts seconds to simulated time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// Event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Engine owns the clock and the pending-event queue. The zero value is
// ready to use.
type Engine struct {
	pq        eventHeap
	now       Time
	seq       uint64
	processed uint64
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns how many events have run; useful for budget checks.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of scheduled, not-yet-run events.
func (e *Engine) Pending() int { return len(e.pq) }

// At schedules fn at absolute time t. Scheduling in the past panics: it is
// always a logic bug, and silently clamping would mask causality errors.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", t, e.now))
	}
	e.seq++
	heap.Push(&e.pq, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn d after the current time.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Step runs the single earliest event; it reports false if none remain.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(event)
	e.now = ev.at
	e.processed++
	ev.fn()
	return true
}

// Run processes events until the queue drains or the event budget is
// exhausted; it returns an error in the latter case (runaway model).
func (e *Engine) Run(maxEvents uint64) error {
	start := e.processed
	for e.Step() {
		if maxEvents > 0 && e.processed-start >= maxEvents {
			return fmt.Errorf("sim: event budget %d exhausted at t=%v", maxEvents, e.now.Duration())
		}
	}
	return nil
}

// RunUntil processes events with timestamps ≤ deadline, advancing the
// clock to the deadline if the queue drains earlier.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.pq) > 0 && e.pq[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
