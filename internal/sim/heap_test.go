package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refHeap is a container/heap reference implementation with the engine's
// exact ordering (at, then seq) — the oracle the hand-rolled heap is
// checked against.
type refHeap []event

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *refHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// TestHeapMatchesContainerHeap drives the hand-rolled heap and the
// container/heap reference through identical random push/pop
// interleavings and requires identical pop sequences — including the
// seq tie-break for events sharing a timestamp.
func TestHeapMatchesContainerHeap(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		var got eventHeap
		var want refHeap
		var seq uint64
		ops := 400 + rng.Intn(400)
		for op := 0; op < ops; op++ {
			if rng.Intn(3) > 0 || len(got) == 0 {
				seq++
				// Few distinct timestamps: ties are the interesting case.
				e := event{at: Time(rng.Intn(16)) * Microsecond, seq: seq}
				got.push(e)
				heap.Push(&want, e)
			} else {
				g := got.pop()
				w := heap.Pop(&want).(event)
				if g.at != w.at || g.seq != w.seq {
					t.Fatalf("trial %d op %d: pop (at=%v seq=%d) want (at=%v seq=%d)",
						trial, op, g.at, g.seq, w.at, w.seq)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d: size %d vs reference %d", trial, len(got), len(want))
			}
		}
		for len(want) > 0 {
			g := got.pop()
			w := heap.Pop(&want).(event)
			if g.at != w.at || g.seq != w.seq {
				t.Fatalf("trial %d drain: pop (at=%v seq=%d) want (at=%v seq=%d)",
					trial, g.at, g.seq, w.at, w.seq)
			}
		}
		if len(got) != 0 {
			t.Fatalf("trial %d: %d events left after reference drained", trial, len(got))
		}
	}
}

// TestEngineReset verifies a reset engine replays a schedule identically
// to a fresh one — the contract that lets harness code reuse engines.
func TestEngineReset(t *testing.T) {
	run := func(e *Engine) (order []int, now Time, processed uint64) {
		e.At(30*Nanosecond, func() { order = append(order, 3) })
		e.At(10*Nanosecond, func() { order = append(order, 1) })
		e.At(10*Nanosecond, func() { order = append(order, 2) })
		if err := e.Run(0); err != nil {
			t.Fatal(err)
		}
		return order, e.Now(), e.Processed()
	}
	var reused Engine
	first, now1, done1 := run(&reused)
	reused.Reset()
	if reused.Now() != 0 || reused.Pending() != 0 || reused.Processed() != 0 {
		t.Fatalf("reset engine not pristine: now=%v pending=%d processed=%d",
			reused.Now(), reused.Pending(), reused.Processed())
	}
	second, now2, done2 := run(&reused)
	var fresh Engine
	third, now3, done3 := run(&fresh)
	for i := range first {
		if first[i] != second[i] || first[i] != third[i] {
			t.Fatalf("replay diverged: %v / %v / %v", first, second, third)
		}
	}
	if now1 != now2 || now1 != now3 || done1 != done2 || done1 != done3 {
		t.Fatalf("clock/counters diverged: (%v,%d) (%v,%d) (%v,%d)",
			now1, done1, now2, done2, now3, done3)
	}
}

// TestResetDropsPendingEvents verifies Reset abandons scheduled events.
func TestResetDropsPendingEvents(t *testing.T) {
	var e Engine
	fired := false
	e.At(Millisecond, func() { fired = true })
	e.Reset()
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("event survived Reset")
	}
}
