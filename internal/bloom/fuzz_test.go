package bloom

import (
	"testing"

	"peel/internal/topology"
)

// FuzzBloom is the native-fuzzing twin of TestQuickNoFalseNegatives: the
// fuzzer mutates an arbitrary byte string (decoded pairwise into
// node/port elements) and a raw false-positive-rate knob; every inserted
// element must test positive.
func FuzzBloom(f *testing.F) {
	f.Add([]byte("peel"), uint64(0))
	f.Add([]byte{0x00, 0x01, 0xff, 0xfe, 0x10, 0x20}, uint64(7))
	f.Add([]byte{}, uint64(19))
	f.Fuzz(func(t *testing.T, data []byte, fprRaw uint64) {
		if len(data) < 2 {
			return
		}
		type elem struct {
			node topology.NodeID
			port int
		}
		var elems []elem
		for i := 0; i+1 < len(data); i += 2 {
			e := uint16(data[i])<<8 | uint16(data[i+1])
			elems = append(elems, elem{topology.NodeID(e >> 4), int(e & 0xf)})
		}
		fpr := 0.01 + float64(fprRaw%20)/100
		fl := NewFilter(len(elems), fpr)
		for _, e := range elems {
			fl.Add(e.node, e.port)
		}
		for _, e := range elems {
			if !fl.Contains(e.node, e.port) {
				t.Fatalf("false negative for node=%d port=%d (fpr=%.2f, n=%d)", e.node, e.port, fpr, len(elems))
			}
		}
	})
}
