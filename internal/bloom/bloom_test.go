package bloom

import (
	"math"
	"testing"
	"testing/quick"

	"peel/internal/topology"
)

func TestHeaderBitsFormula(t *testing.T) {
	// 1000 elements at 1%: m = 1000·ln(100)/ln2² ≈ 9585 bits.
	got := HeaderBits(1000, 0.01)
	if got < 9580 || got > 9590 {
		t.Fatalf("HeaderBits(1000,0.01)=%d want ≈9585", got)
	}
	if HeaderBits(0, 0.01) != 0 {
		t.Fatal("zero elements need zero bits")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("fpr out of range must panic")
		}
	}()
	HeaderBits(10, 1.5)
}

func TestFig3ShapeHeaderExceedsMTUPastK32(t *testing.T) {
	// Fig. 3's claim: even at a generous 20% FPR, the RSBF header exceeds
	// one full 1500 B MTU once k > 32 — while small fabrics stay under.
	if b := PerPacketOverheadBytes(64, 0.20); b <= MTU {
		t.Fatalf("k=64 fpr=20%%: %d B, expected > MTU", b)
	}
	if b := PerPacketOverheadBytes(8, 0.20); b >= MTU {
		t.Fatalf("k=8 fpr=20%%: %d B, expected < MTU", b)
	}
	// Monotone in k and in 1/fpr.
	prev := 0
	for _, k := range []int{4, 8, 16, 32, 64} {
		b := PerPacketOverheadBytes(k, 0.05)
		if b <= prev {
			t.Fatalf("overhead not increasing at k=%d: %d <= %d", k, b, prev)
		}
		prev = b
	}
	if PerPacketOverheadBytes(32, 0.01) <= PerPacketOverheadBytes(32, 0.20) {
		t.Fatal("tighter FPR must cost more header")
	}
}

func TestBroadcastTreeEdgesClosedForm(t *testing.T) {
	// k=4: 16 hosts + 8 tor feeds + 4 agg feeds + 3 up = 31.
	if got := BroadcastTreeEdges(4); got != 31 {
		t.Fatalf("BroadcastTreeEdges(4)=%d want 31", got)
	}
	// Must grow like k³/4.
	if got := BroadcastTreeEdges(64); got < 65536 {
		t.Fatalf("BroadcastTreeEdges(64)=%d want ≥ 65536 (host edges alone)", got)
	}
}

func TestFilterNoFalseNegatives(t *testing.T) {
	f := NewFilter(500, 0.05)
	for i := 0; i < 500; i++ {
		f.Add(topology.NodeID(i%37), i)
	}
	if f.Len() != 500 {
		t.Fatalf("len=%d", f.Len())
	}
	for i := 0; i < 500; i++ {
		if !f.Contains(topology.NodeID(i%37), i) {
			t.Fatalf("false negative for element %d", i)
		}
	}
}

func TestFilterEmpiricalFPRNearDesign(t *testing.T) {
	const n = 2000
	for _, design := range []float64{0.01, 0.05, 0.20} {
		f := NewFilter(n, design)
		for i := 0; i < n; i++ {
			f.Add(topology.NodeID(i), 1)
		}
		fp := 0
		const probes = 20000
		for i := 0; i < probes; i++ {
			if f.Contains(topology.NodeID(1_000_000+i), 2) {
				fp++
			}
		}
		got := float64(fp) / probes
		if got > design*2.0+0.002 {
			t.Errorf("design fpr %.2f: empirical %.4f too high", design, got)
		}
		if design >= 0.05 && got < design/4 {
			t.Errorf("design fpr %.2f: empirical %.4f suspiciously low (sizing bug?)", design, got)
		}
	}
}

func TestOptimalHashes(t *testing.T) {
	// 10 bits/element → k ≈ 6.9 → 7.
	if k := OptimalHashes(10000, 1000); k != 7 {
		t.Fatalf("OptimalHashes=%d want 7", k)
	}
	if k := OptimalHashes(10, 1000); k != 1 {
		t.Fatalf("tiny filters must clamp to 1 hash, got %d", k)
	}
	if k := OptimalHashes(100, 0); k != 1 {
		t.Fatalf("n=0 must yield 1 hash, got %d", k)
	}
}

func TestExpectedRedundantLinks(t *testing.T) {
	if got := ExpectedRedundantLinks(64, 4, 0.05); math.Abs(got-3.0) > 1e-9 {
		t.Fatalf("got %v want 3.0", got)
	}
	if got := ExpectedRedundantLinks(4, 8, 0.05); got != 0 {
		t.Fatalf("inverted ports must clamp to 0, got %v", got)
	}
}

// Property: the filter never produces false negatives, for arbitrary
// element sets.
func TestQuickNoFalseNegatives(t *testing.T) {
	f := func(elems []uint16, fprRaw uint8) bool {
		if len(elems) == 0 {
			return true
		}
		fpr := 0.01 + float64(fprRaw%20)/100
		fl := NewFilter(len(elems), fpr)
		for _, e := range elems {
			fl.Add(topology.NodeID(e>>4), int(e&0xf))
		}
		for _, e := range elems {
			if !fl.Contains(topology.NodeID(e>>4), int(e&0xf)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
