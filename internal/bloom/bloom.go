// Package bloom models RSBF-style Bloom-filter multicast headers (paper
// §3.1, Fig. 3): schemes that push the multicast tree's forwarding state
// into a per-packet Bloom filter, trading switch TCAM for header bytes.
//
// Two layers are provided:
//
//   - an analytical model (HeaderBits/PerPacketOverhead) sizing the filter
//     for a target false-positive ratio over the multicast tree's
//     (switch, egress-port) set, reproducing Fig. 3's curves; and
//   - a real Bloom filter (Filter) with double hashing, used by tests to
//     verify the analytical FPR empirically and by the redundant-traffic
//     estimate (false positives spray packets onto off-tree links).
package bloom

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"peel/internal/topology"
)

// HeaderBits returns the Bloom-filter size in bits needed to encode n
// elements at false-positive probability p: m = −n·ln p ⁄ (ln 2)².
func HeaderBits(n int, p float64) int {
	if n <= 0 {
		return 0
	}
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("bloom: fpr %v out of (0,1)", p))
	}
	return int(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
}

// OptimalHashes returns the hash-function count minimizing the FPR for the
// given bits-per-element ratio: k = (m/n)·ln 2, at least 1.
func OptimalHashes(mBits, n int) int {
	if n == 0 {
		return 1
	}
	k := int(math.Round(float64(mBits) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return k
}

// TreeElements counts the elements an RSBF header must encode for a
// multicast tree: one per (switch, egress port) pair, i.e. one per tree
// edge leaving a switch. For a broadcast to all hosts of a k-ary fat-tree
// this is every downward edge of the spanning tree plus the up-path.
func TreeElements(g *topology.Graph, treeLinks int) int {
	_ = g // shape-only model; kept for symmetry with future per-tree use
	return treeLinks
}

// BroadcastTreeEdges returns, in closed form, the edge count of the
// bandwidth-optimal whole-fabric broadcast tree in a k-ary fat-tree: the
// tree must include every host drop (k³/4), every ToR (fed by one agg–tor
// edge each), one agg per pod feeding the pod plus the (k/2−1) remaining
// aggs... — in the optimal broadcast every switch that feeds receivers
// appears once. We count: host edges k³/4 + tor feeds k²/2 + agg feeds
// (one core→agg per pod) k + the up path (3 edges). This matches the
// per-port state RSBF must carry for a full-bisection broadcast.
func BroadcastTreeEdges(k int) int {
	hosts := k * k * k / 4
	torFeeds := k * k / 2
	aggFeeds := k
	return hosts + torFeeds + aggFeeds + 3
}

// PerPacketOverheadBytes reproduces Fig. 3's y-axis: the RSBF header size
// in bytes for a whole-fabric broadcast in a k-ary fat-tree at the target
// false-positive ratio.
func PerPacketOverheadBytes(k int, fpr float64) int {
	bits := HeaderBits(BroadcastTreeEdges(k), fpr)
	return (bits + 7) / 8
}

// MTU is the Ethernet payload budget Fig. 3 compares against.
const MTU = 1500

// Filter is a concrete Bloom filter over (switch, port) elements using
// FNV-1a double hashing (Kirsch–Mitzenmacher).
type Filter struct {
	bits   []uint64
	mBits  uint64
	hashes int
	n      int
}

// NewFilter sizes a filter for n elements at the target FPR.
func NewFilter(n int, fpr float64) *Filter {
	m := HeaderBits(n, fpr)
	if m < 64 {
		m = 64
	}
	return &Filter{
		bits:   make([]uint64, (m+63)/64),
		mBits:  uint64(m),
		hashes: OptimalHashes(m, n),
	}
}

// SizeBits returns the filter's bit length.
func (f *Filter) SizeBits() int { return int(f.mBits) }

// hash2 derives the two independent FNV-based hash values for an element.
func hash2(sw topology.NodeID, port int) (uint64, uint64) {
	var buf [12]byte
	binary.LittleEndian.PutUint32(buf[0:4], uint32(sw))
	binary.LittleEndian.PutUint64(buf[4:12], uint64(port))
	h1 := fnv.New64a()
	h1.Write(buf[:])
	a := h1.Sum64()
	h2 := fnv.New64()
	h2.Write(buf[:])
	b := h2.Sum64() | 1 // odd, so all slots are reachable
	return a, b
}

// Add inserts a (switch, egress port) element.
func (f *Filter) Add(sw topology.NodeID, port int) {
	a, b := hash2(sw, port)
	for i := 0; i < f.hashes; i++ {
		idx := (a + uint64(i)*b) % f.mBits
		f.bits[idx/64] |= 1 << (idx % 64)
	}
	f.n++
}

// Contains reports whether the element may have been inserted (no false
// negatives; false positives at roughly the design FPR).
func (f *Filter) Contains(sw topology.NodeID, port int) bool {
	a, b := hash2(sw, port)
	for i := 0; i < f.hashes; i++ {
		idx := (a + uint64(i)*b) % f.mBits
		if f.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// Len returns the number of inserted elements.
func (f *Filter) Len() int { return f.n }

// ExpectedRedundantLinks estimates, for a switch with total egress ports
// and inTree of them on the multicast tree, how many off-tree ports a
// false-positive test would wrongly replicate to: (total−inTree)·fpr.
// Summed over switches this is RSBF's redundant-traffic term (§3.1).
func ExpectedRedundantLinks(total, inTree int, fpr float64) float64 {
	if total < inTree {
		return 0
	}
	return float64(total-inTree) * fpr
}
