// Package invariant is the always-on correctness layer: a registry of
// named checkers anchored to the paper's machine-checkable claims, and a
// Suite that accumulates per-checker check/violation counts with
// first-failure context. Hook points across the stack (sim engine, netsim
// frame paths, the collective runner, tree construction, PEEL planning,
// chaos injection, the controller model) consult the globally enabled
// suite via Active(); with no suite enabled a hook costs one atomic load,
// so the data path of a production run is untouched.
//
// The package sits below every other internal package (it imports only
// the standard library) so any layer can report into it without import
// cycles. Tests enable a suite per package via invtest.Main; cmd/peelsim
// enables one behind -check.
package invariant

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Checker describes one registered invariant: a stable dotted name
// ("layer.property"), the paper anchor that justifies it, and a one-line
// description. Checkers carry no code — hook points report against the
// name — so the registry doubles as the documentation of record
// (DESIGN.md's invariant table is generated from the same entries).
type Checker struct {
	Name   string
	Anchor string
	Desc   string
}

// The built-in checker names. Hook points reference these constants; the
// names are stable because peelsim -check prints them.
const (
	SimTimeMonotone      = "sim.time-monotone"
	SimHeapIntegrity     = "sim.heap-integrity"
	NetFrameConservation = "netsim.frame-conservation"
	NetFrameRecycle      = "netsim.no-double-recycle"
	NetByteAccounting    = "netsim.byte-accounting"
	NetOverDelivery      = "netsim.no-over-delivery"
	CollectiveDelivery   = "collective.delivery"
	SteinerTreeValid     = "steiner.tree-valid"
	SteinerPeelBound     = "steiner.peel-bound"
	PrefixRuleBudget     = "prefix.rule-budget"
	PrefixHeaderBudget   = "prefix.header-budget"
	PrefixCover          = "prefix.cover"
	ChaosHealGuaranteed  = "chaos.heal-guaranteed"
	ControllerSetupFloor = "controller.setup-floor"
)

var (
	regMu    sync.Mutex
	registry = map[string]Checker{}
)

func init() {
	for _, c := range []Checker{
		{SimTimeMonotone, "discrete-event causality", "no event runs at a timestamp earlier than the engine clock"},
		{SimHeapIntegrity, "engine §PR2 (hand-rolled heap)", "the pending-event queue satisfies the (at, seq) min-heap property"},
		{NetFrameConservation, "frame free-list linear ownership", "every allocated frame is consumed: at quiesce no frames are live and no queue holds bytes"},
		{NetFrameRecycle, "frame free-list linear ownership", "no frame is recycled to the free list twice"},
		{NetByteAccounting, "§4 fabric model", "channel qBytes equals the sum of queued frame bytes; switch bufBytes equals the sum of its egress queues — checked across fail/heal transitions"},
		{NetOverDelivery, "§1 fn.1 (selective repeat)", "after de-dup, a receiver never holds more bytes of a chunk than the chunk's size"},
		{CollectiveDelivery, "§4 (CCT definition)", "a collective completes only when every member host was delivered to exactly once (no missing, no duplicate completion)"},
		{SteinerTreeValid, "Lemma 2.1, §2.3", "every constructed multicast tree is a loop-free tree over live links spanning all destinations"},
		{SteinerPeelBound, "Lemma 2.4, Theorem 2.5", "tree cost lies in [max(F,|D|), max(F,|D|)·min(F,|D|)] — the peeling approximation budget, re-checked on every recovery re-peel"},
		{PrefixRuleBudget, "§3.2 (k−1 rule bound)", "the pre-installed prefix rule table has at most k−1 entries per aggregation switch"},
		{PrefixHeaderBudget, "§3.2 (<8 B header)", "the encoded two-tuple PEEL header fits in 8 bytes"},
		{PrefixCover, "§3.2 (trie cover)", "per-pod prefix covers are pairwise disjoint, reach every member ToR, and are exact when unbudgeted"},
		{ChaosHealGuaranteed, "chaos renewal process", "in a heal-complete schedule every armed failure has a matching later heal"},
		{ControllerSetupFloor, "§3.1 (He et al.)", "controller setup delays never undercut the truncation floor"},
	} {
		Register(c)
	}
}

// Register adds a checker to the registry. Call from init(): suites built
// by NewSuite snapshot the registry, so late registrations are invisible
// to suites that already exist. Re-registering a name panics.
func Register(c Checker) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[c.Name]; dup {
		panic(fmt.Sprintf("invariant: checker %q registered twice", c.Name))
	}
	registry[c.Name] = c
}

// Checkers returns every registered checker sorted by name.
func Checkers() []Checker {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Checker, 0, len(registry))
	for _, c := range registry {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// stat is one checker's accumulator. Counts are atomics because sweep
// workers report concurrently into a shared suite; the first failure is
// captured lock-free via CompareAndSwap.
type stat struct {
	checks     atomic.Uint64
	violations atomic.Uint64
	first      atomic.Pointer[string]
}

// Suite accumulates results for every registered checker. All methods are
// safe on a nil *Suite (they no-op), so hook code can write
// invariant.Active().Checkf(...) without guarding — though hot paths
// should still test Active() != nil to skip argument evaluation.
type Suite struct {
	stats map[string]*stat // fixed at construction: lock-free reads
}

// NewSuite returns a suite tracking a snapshot of the current registry.
func NewSuite() *Suite {
	s := &Suite{stats: make(map[string]*stat, len(registry))}
	regMu.Lock()
	for name := range registry {
		s.stats[name] = &stat{}
	}
	regMu.Unlock()
	return s
}

func (s *Suite) stat(name string) *stat {
	st, ok := s.stats[name]
	if !ok {
		panic(fmt.Sprintf("invariant: checker %q not registered", name))
	}
	return st
}

// Checkf records one evaluation of the named checker: a check count
// always, a violation (with the formatted context, kept for the first
// failure only) when ok is false. It returns ok so call sites can branch.
// The format arguments are only rendered on failure.
func (s *Suite) Checkf(name string, ok bool, format string, args ...any) bool {
	if s == nil {
		return ok
	}
	st := s.stat(name)
	st.checks.Add(1)
	if !ok {
		st.violations.Add(1)
		msg := fmt.Sprintf(format, args...)
		st.first.CompareAndSwap(nil, &msg)
	}
	return ok
}

// Violatef records an unconditional violation of the named checker.
func (s *Suite) Violatef(name, format string, args ...any) {
	s.Checkf(name, false, format, args...)
}

// Pass records one passing evaluation without touching the format
// arguments — the hot-path twin of Checkf. Call sites that run per event
// or per frame branch on the predicate themselves and pay for formatting
// (and its argument boxing) only when the check actually fails.
func (s *Suite) Pass(name string) {
	if s == nil {
		return
	}
	s.stat(name).checks.Add(1)
}

// Counter is a pre-resolved slot for one checker of one suite: per-event
// call sites resolve it once (per suite change) and record passes without
// re-hashing the checker name. The zero Counter is a no-op.
type Counter struct{ st *stat }

// Counter resolves the named checker's slot; panics on unregistered names
// like every other name-taking method.
func (s *Suite) Counter(name string) Counter {
	if s == nil {
		return Counter{}
	}
	return Counter{st: s.stat(name)}
}

// Pass records one passing evaluation.
func (c Counter) Pass() {
	if c.st != nil {
		c.st.checks.Add(1)
	}
}

// Checks returns how often the named checker was evaluated.
func (s *Suite) Checks(name string) uint64 {
	if s == nil {
		return 0
	}
	return s.stat(name).checks.Load()
}

// Violations returns the named checker's violation count.
func (s *Suite) Violations(name string) uint64 {
	if s == nil {
		return 0
	}
	return s.stat(name).violations.Load()
}

// FirstFailure returns the context captured with the named checker's
// first violation, or "" if it never fired.
func (s *Suite) FirstFailure(name string) string {
	if s == nil {
		return ""
	}
	if p := s.stat(name).first.Load(); p != nil {
		return *p
	}
	return ""
}

// TotalViolations sums violations across every checker.
func (s *Suite) TotalViolations() uint64 {
	if s == nil {
		return 0
	}
	var total uint64
	for _, st := range s.stats {
		total += st.violations.Load()
	}
	return total
}

// TotalChecks sums evaluations across every checker.
func (s *Suite) TotalChecks() uint64 {
	if s == nil {
		return 0
	}
	var total uint64
	for _, st := range s.stats {
		total += st.checks.Load()
	}
	return total
}

// Err returns nil when no checker fired, or an error summarizing every
// violated checker with its first-failure context.
func (s *Suite) Err() error {
	if s == nil || s.TotalViolations() == 0 {
		return nil
	}
	var b strings.Builder
	for _, name := range s.names() {
		if v := s.Violations(name); v > 0 {
			fmt.Fprintf(&b, "%s: %d violations (first: %s); ", name, v, s.FirstFailure(name))
		}
	}
	return fmt.Errorf("invariant: %s", strings.TrimSuffix(b.String(), "; "))
}

// Report renders a per-checker table: evaluations, violations, and the
// first failure of each violated checker. peelsim -check prints it.
func (s *Suite) Report() string {
	if s == nil {
		return "invariant checking disabled\n"
	}
	var b strings.Builder
	b.WriteString("invariant checks:\n")
	for _, name := range s.names() {
		fmt.Fprintf(&b, "  %-28s checks=%-10d violations=%d\n", name, s.Checks(name), s.Violations(name))
		if f := s.FirstFailure(name); f != "" {
			fmt.Fprintf(&b, "    first: %s\n", f)
		}
	}
	return b.String()
}

func (s *Suite) names() []string {
	out := make([]string, 0, len(s.stats))
	for name := range s.stats {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// active is the globally enabled suite; nil means checking is off and
// every hook point reduces to one atomic load.
var active atomic.Pointer[Suite]

// Enable installs s as the global suite (nil disables checking) and
// returns a restore function reinstating the previous one. Callers that
// swap suites (mutation self-tests, isolated scenario runs) must not do
// so concurrently with simulation work on other goroutines.
func Enable(s *Suite) (restore func()) {
	prev := active.Swap(s)
	return func() { active.Store(prev) }
}

// Active returns the globally enabled suite, or nil when checking is off.
func Active() *Suite {
	return active.Load()
}

// traceDumper is an optional black-box dump hook registered by a higher
// layer (internal/telemetry's flight recorder). It lives here — the
// bottom of the import graph — so harnesses like invtest can dump the
// trace alongside a violation report without importing telemetry, which
// would cycle through the packages telemetry instruments.
var traceDumper atomic.Pointer[func(io.Writer)]

// SetTraceDumper registers fn as the violation-context dumper. The
// telemetry package registers its flight recorder at init; test binaries
// that never link telemetry simply have no dumper.
func SetTraceDumper(fn func(io.Writer)) {
	if fn == nil {
		traceDumper.Store(nil)
		return
	}
	traceDumper.Store(&fn)
}

// DumpTrace invokes the registered dumper, if any — called by harnesses
// after printing a violation report to attach the event history that led
// up to the failure.
func DumpTrace(w io.Writer) {
	if fn := traceDumper.Load(); fn != nil {
		(*fn)(w)
	}
}
