// Package scenario is the generative harness of the invariant layer: it
// draws seeded random (topology, workload, chaos schedule, scheme) tuples,
// runs them end to end with every checker armed, shrinks failures by
// halving, and cross-checks the core algorithms against differential
// oracles (layer peeling vs the exact Dreyfus–Wagner solver, prefix
// covers vs a brute-force minimal cover, parallel vs serial execution).
package scenario

import (
	"fmt"
	"math/rand"

	"peel/internal/chaos"
	"peel/internal/collective"
	"peel/internal/controller"
	"peel/internal/core"
	"peel/internal/invariant"
	"peel/internal/netsim"
	"peel/internal/sim"
	"peel/internal/topology"
	"peel/internal/workload"
)

// Scenario is one fully seeded end-to-end case: a broadcast of Bytes to a
// GroupGPUs-wide group on a k=4 fat-tree under the chosen scheme, with an
// optional mid-flight fail/heal wave over the switch-switch links.
type Scenario struct {
	Seed       int64
	Scheme     collective.Scheme
	GroupGPUs  int
	Bytes      int64
	FrameBytes int64
	// ChaosFrac > 0 arms a FailFractionAt schedule: that fraction of the
	// switch-switch links fails at FailAt and heals at HealAt.
	ChaosFrac float64
	FailAt    sim.Time
	HealAt    sim.Time
}

func (sc Scenario) String() string {
	return fmt.Sprintf("seed=%d scheme=%s gpus=%d bytes=%d frame=%d chaos=%.2f fail=%v heal=%v",
		sc.Seed, sc.Scheme, sc.GroupGPUs, sc.Bytes, sc.FrameBytes,
		sc.ChaosFrac, sc.FailAt.Duration(), sc.HealAt.Duration())
}

// chaosSchemes are the schemes exercised under mid-flight failures (the
// ones ChaosStudy validates recovery for); the full set runs failure-free.
// StripedPEEL rides here so the per-stripe watchdog path shrinks too.
var chaosSchemes = []collective.Scheme{collective.PEEL, collective.Ring, collective.Orca, collective.StripedPEEL}

var allSchemes = collective.AllSchemes

// Generate draws the scenario for one seed. Same seed, same scenario.
func Generate(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	sc := Scenario{
		Seed:       seed,
		GroupGPUs:  8 + rng.Intn(56),          // 1–8 of the 16 hosts
		Bytes:      (64 << 10) << rng.Intn(5), // 64 KiB … 1 MiB
		FrameBytes: []int64{16 << 10, 32 << 10, 64 << 10}[rng.Intn(3)],
	}
	if rng.Intn(2) == 1 {
		sc.ChaosFrac = 0.05 + 0.20*rng.Float64()
		sc.FailAt = sim.Time(20+rng.Intn(180)) * sim.Microsecond
		sc.HealAt = sc.FailAt + sim.Time(100+rng.Intn(900))*sim.Microsecond
		sc.Scheme = chaosSchemes[rng.Intn(len(chaosSchemes))]
	} else {
		sc.Scheme = allSchemes[rng.Intn(len(allSchemes))]
	}
	return sc
}

// Result is what one scenario run produced; ParallelVsSerial compares
// these field by field.
type Result struct {
	CCT        sim.Time
	Events     uint64
	TotalBytes int64
	Recovery   collective.RecoveryStats
}

// maxScenarioEvents bounds one scenario run (runaway safety).
const maxScenarioEvents = 100_000_000

// Run executes the scenario against whatever invariant suite is globally
// enabled and returns the run's observables. It is safe to call from
// concurrent goroutines (the suite is race-safe; all sim state is local).
func Run(sc Scenario) (Result, error) {
	g := topology.FatTree(4)
	eng := &sim.Engine{}

	cfg := netsim.DefaultConfig()
	cfg.Seed = sc.Seed
	cfg.FrameBytes = sc.FrameBytes
	cfg.ECNKminBytes = 10 * sc.FrameBytes / 3
	cfg.ECNKmaxBytes = 133 * sc.FrameBytes
	cfg.BufferBytes = 8000 * sc.FrameBytes
	net := netsim.New(g, eng, cfg)

	planner, err := core.NewPlanner(g)
	if err != nil {
		return Result{}, err
	}
	cl := workload.NewCluster(g, 8)
	ctrl := controller.New(cfg.RNG(netsim.SaltController))
	runner := collective.NewRunner(net, cl, planner, ctrl)
	if sc.ChaosFrac > 0 {
		runner.Watchdog = 100 * sim.Microsecond
	}

	hosts, err := cl.Place(workload.Spec{GPUs: sc.GroupGPUs, Bytes: sc.Bytes}, cfg.RNG(netsim.SaltWorkload))
	if err != nil {
		return Result{}, err
	}
	c := &workload.Collective{Bytes: sc.Bytes, GPUs: sc.GroupGPUs, Hosts: hosts}

	var rep collective.Report
	done := false
	var startErr error
	eng.At(0, func() {
		if err := runner.StartReport(c, sc.Scheme, func(r collective.Report) { rep, done = r, true }); err != nil {
			startErr = err
		}
	})
	if sc.ChaosFrac > 0 {
		sched, _ := chaos.FailFractionAt(g, topology.SwitchLinks, sc.ChaosFrac,
			sc.FailAt, sc.HealAt, cfg.RNG(netsim.SaltChaos))
		if err := chaos.NewInjector(g, eng).Arm(sched); err != nil {
			return Result{}, err
		}
	}
	if err := eng.Run(maxScenarioEvents); err != nil {
		return Result{}, err
	}
	if startErr != nil {
		return Result{}, startErr
	}
	if !done {
		return Result{}, fmt.Errorf("scenario: %s did not complete", sc)
	}
	net.CheckQuiesced(invariant.Active())
	return Result{
		CCT:        rep.CCT,
		Events:     eng.Processed(),
		TotalBytes: net.TotalBytes(),
		Recovery:   rep.Recovery,
	}, nil
}

// RunIsolated runs the scenario under its own fresh suite (swapping the
// global one for the duration — callers must not run simulations on other
// goroutines meanwhile) and fails if the run errors or any checker fired.
// The shrinking loop uses it so a failing candidate's violations never
// leak into the enclosing test binary's verdict.
func RunIsolated(sc Scenario) (Result, error) {
	s := invariant.NewSuite()
	restore := invariant.Enable(s)
	defer restore()
	res, err := Run(sc)
	if err != nil {
		return res, err
	}
	if serr := s.Err(); serr != nil {
		return res, serr
	}
	return res, nil
}

// Shrink minimizes a failing scenario by halving: as long as some
// simplification (dropping chaos, halving the group, halving the message)
// still fails, keep it. fails must be deterministic for the scenario.
func Shrink(sc Scenario, fails func(Scenario) bool) Scenario {
	for {
		improved := false
		for _, cand := range shrinkCandidates(sc) {
			if fails(cand) {
				sc = cand
				improved = true
				break
			}
		}
		if !improved {
			return sc
		}
	}
}

func shrinkCandidates(sc Scenario) []Scenario {
	var out []Scenario
	if sc.ChaosFrac > 0 {
		c := sc
		c.ChaosFrac, c.FailAt, c.HealAt = 0, 0, 0
		out = append(out, c)
	}
	if half := sc.GroupGPUs / 2; half >= 9 { // ≥9 GPUs keeps ≥2 hosts in the group
		c := sc
		c.GroupGPUs = half
		out = append(out, c)
	}
	if half := sc.Bytes / 2; half >= 64<<10 {
		c := sc
		c.Bytes = half
		out = append(out, c)
	}
	return out
}
