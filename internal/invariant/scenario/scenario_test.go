package scenario

import (
	"testing"

	"peel/internal/invariant"
	"peel/internal/invariant/invtest"
)

func TestMain(m *testing.M) { invtest.Main(m) }

// scenarioSeeds is how many generated end-to-end scenarios the harness
// replays per run; shortened under -short.
func scenarioSeeds(t *testing.T) int {
	if testing.Short() {
		return 10
	}
	return 40
}

func oracleSeeds(t *testing.T) int {
	if testing.Short() {
		return 30
	}
	return 120
}

// TestScenariosZeroViolations replays generated scenarios under an
// isolated suite each; any failure is shrunk to a minimal reproducer
// before reporting.
func TestScenariosZeroViolations(t *testing.T) {
	for seed := int64(1); seed <= int64(scenarioSeeds(t)); seed++ {
		sc := Generate(seed)
		if _, err := RunIsolated(sc); err != nil {
			fails := func(c Scenario) bool {
				_, e := RunIsolated(c)
				return e != nil
			}
			min := Shrink(sc, fails)
			_, minErr := RunIsolated(min)
			t.Fatalf("scenario {%s} failed: %v\nminimal reproducer {%s}: %v", sc, err, min, minErr)
		}
	}
}

func TestOraclePeelVsExact(t *testing.T) {
	for seed := int64(1); seed <= int64(oracleSeeds(t)); seed++ {
		if err := PeelVsExact(seed); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOracleCoverVsBrute(t *testing.T) {
	for seed := int64(1); seed <= int64(oracleSeeds(t)); seed++ {
		if err := CoverVsBrute(seed); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOracleParallelVsSerial(t *testing.T) {
	seeds := []int64{3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610}
	if testing.Short() {
		seeds = seeds[:4]
	}
	if err := ParallelVsSerial(seeds, 4); err != nil {
		t.Fatal(err)
	}
}

// TestShrinkFindsMinimal drives Shrink with a synthetic failure predicate
// and checks it strips chaos and halves the group/message to the floor the
// predicate allows.
func TestShrinkFindsMinimal(t *testing.T) {
	sc := Scenario{
		Seed: 99, GroupGPUs: 60, Bytes: 1 << 20, FrameBytes: 32 << 10,
		ChaosFrac: 0.2, FailAt: 1, HealAt: 2,
	}
	// Fails whenever the group still has >= 12 GPUs, regardless of chaos
	// or message size.
	fails := func(c Scenario) bool { return c.GroupGPUs >= 12 }
	min := Shrink(sc, fails)
	if !fails(min) {
		t.Fatalf("shrunk scenario no longer fails: {%s}", min)
	}
	if min.ChaosFrac != 0 {
		t.Errorf("chaos not stripped: %+v", min)
	}
	if min.GroupGPUs != 15 { // 60 -> 30 -> 15; 15/2=7 < 9 floor stops halving
		t.Errorf("group not minimized: got %d GPUs, want 15", min.GroupGPUs)
	}
	if min.Bytes != 64<<10 {
		t.Errorf("message not minimized: got %d bytes, want %d", min.Bytes, 64<<10)
	}
}

// TestGenerateIsDeterministic pins the seed -> scenario mapping the CI
// harness and ParallelVsSerial both rely on.
func TestGenerateIsDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		if a, b := Generate(seed), Generate(seed); a != b {
			t.Fatalf("seed %d generated two different scenarios:\n%s\n%s", seed, a, b)
		}
	}
}

// TestRunIsolatedRestoresSuite guards against the shrink loop leaking its
// temporary suites into the global slot.
func TestRunIsolatedRestoresSuite(t *testing.T) {
	before := invariant.Active()
	if _, err := RunIsolated(Generate(2)); err != nil {
		t.Fatal(err)
	}
	if invariant.Active() != before {
		t.Fatal("RunIsolated did not restore the previously active suite")
	}
}
