package scenario

import (
	"fmt"
	"math/bits"
	"math/rand"
	"runtime"
	"sync"

	"peel/internal/prefix"
	"peel/internal/routing"
	"peel/internal/steiner"
	"peel/internal/topology"
)

// This file holds the differential oracles: independent reference
// computations that the production algorithms must agree with.

// PeelVsExact draws a small random fabric (optionally degraded) and checks
// layer peeling against the exact Dreyfus–Wagner Steiner solver:
//
//	opt <= peelCost <= opt * min(F, |D|)
//
// The right inequality is Theorem 2.5's approximation guarantee; the left
// is optimality of the exact solver. Unreachable draws are skipped.
func PeelVsExact(seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	g := topology.LeafSpine(2+rng.Intn(3), 3+rng.Intn(4), 1+rng.Intn(2))
	if rng.Intn(2) == 1 {
		g.FailRandomFraction(0.15*rng.Float64(), topology.SwitchLinks, rng)
	}

	hosts := g.Hosts()
	rng.Shuffle(len(hosts), func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })
	n := 2 + rng.Intn(7) // src + <=7 dests stays within ExactSmall's terminal cap
	if n > len(hosts) {
		n = len(hosts)
	}
	src, dests := hosts[0], hosts[1:n]

	df := routing.BorrowBFS(g, src)
	reachable := df.Reachable(dests[len(dests)-1])
	for _, d := range dests {
		reachable = reachable && df.Reachable(d)
	}
	df.Release()
	if !reachable {
		return nil // degraded fabric disconnected the draw; nothing to compare
	}

	tree, stats, err := steiner.LayerPeeling(g, src, dests)
	if err != nil {
		return fmt.Errorf("seed %d: layer peeling: %w", seed, err)
	}
	opt, err := steiner.ExactSmall(g, src, dests)
	if err != nil {
		return fmt.Errorf("seed %d: exact solver: %w", seed, err)
	}

	cost := tree.Cost()
	ratio := int(stats.F)
	if len(dests) < ratio {
		ratio = len(dests)
	}
	if cost < opt || cost > opt*ratio {
		return fmt.Errorf("seed %d: peel cost %d outside [opt, opt*min(F,|D|)] = [%d, %d] (F=%d, |D|=%d)",
			seed, cost, opt, opt*ratio, stats.F, len(dests))
	}
	return nil
}

// CoverVsBrute draws a random membership set in a small prefix space and
// checks ExactCover against a brute-force subset-DP minimum, plus the
// structural contracts of BudgetedCover.
func CoverVsBrute(seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	sp := prefix.Space{M: 2 + rng.Intn(3)} // M in 2..4 keeps the DP at <=65536 masks
	universe := sp.Universe()

	var ids []uint32
	var mask uint32
	for id := 0; id < universe; id++ {
		if rng.Intn(3) == 0 {
			ids = append(ids, uint32(id))
			mask |= 1 << id
		}
	}
	if len(ids) == 0 {
		ids = append(ids, uint32(rng.Intn(universe)))
		mask = 1 << ids[0]
	}

	cover, err := sp.ExactCover(ids)
	if err != nil {
		return fmt.Errorf("seed %d: ExactCover: %w", seed, err)
	}
	if err := checkCoverShape(sp, cover, mask, true); err != nil {
		return fmt.Errorf("seed %d: ExactCover: %w", seed, err)
	}
	if want := bruteMinCover(sp, mask); len(cover) != want {
		return fmt.Errorf("seed %d: ExactCover used %d prefixes, brute-force minimum is %d (members %v)",
			seed, len(cover), want, ids)
	}

	budget := 1 + rng.Intn(4)
	bud, err := sp.BudgetedCover(ids, budget)
	if err != nil {
		return fmt.Errorf("seed %d: BudgetedCover: %w", seed, err)
	}
	if len(bud) > budget {
		return fmt.Errorf("seed %d: BudgetedCover(%d) returned %d prefixes", seed, budget, len(bud))
	}
	if err := checkCoverShape(sp, bud, mask, false); err != nil {
		return fmt.Errorf("seed %d: BudgetedCover: %w", seed, err)
	}
	return nil
}

// checkCoverShape validates a cover's structure against a member bitmask:
// blocks are disjoint and every member is covered; when exact is set, no
// non-member may be covered either.
func checkCoverShape(sp prefix.Space, cover []prefix.Prefix, mask uint32, exact bool) error {
	var covered uint32
	for _, p := range cover {
		lo, hi := p.Block(sp.M) // half-open [lo, hi)
		for id := lo; id < hi; id++ {
			bit := uint32(1) << id
			if covered&bit != 0 {
				return fmt.Errorf("id %d covered twice", id)
			}
			if exact && mask&bit == 0 {
				return fmt.Errorf("non-member id %d covered", id)
			}
			covered |= bit
		}
	}
	if missing := mask &^ covered; missing != 0 {
		return fmt.Errorf("member id %d not covered", bits.TrailingZeros32(missing))
	}
	return nil
}

// bruteMinCover computes, by subset DP over the member bitmask, the fewest
// prefix blocks whose union is exactly the target set. Prefix blocks form
// a laminar family, so an exact disjoint decomposition always exists and
// restricting the DP to fully-contained blocks is lossless.
func bruteMinCover(sp prefix.Space, target uint32) int {
	universe := sp.Universe()
	// Bitmask of each candidate prefix block that fits inside the target.
	var blocks []uint32
	for _, p := range sp.AllRules() {
		lo, hi := p.Block(sp.M) // half-open [lo, hi)
		var bm uint32
		for id := lo; id < hi; id++ {
			bm |= 1 << id
		}
		if bm&^target == 0 {
			blocks = append(blocks, bm)
		}
	}
	const inf = int(^uint(0) >> 1)
	f := make([]int, 1<<universe)
	for i := range f {
		f[i] = inf
	}
	f[0] = 0
	for mask := uint32(1); mask < 1<<universe; mask++ {
		if mask&^target != 0 {
			continue
		}
		low := uint32(1) << bits.TrailingZeros32(mask)
		for _, bm := range blocks {
			if bm&low == 0 || bm&^mask != 0 {
				continue // block must consume mask's lowest id and stay inside mask
			}
			if rest := f[mask&^bm]; rest != inf && rest+1 < f[mask] {
				f[mask] = rest + 1
			}
		}
	}
	return f[target]
}

// ParallelVsSerial runs the same scenario set once serially and once on a
// worker pool and demands field-identical results: the simulation must be
// deterministic regardless of host-level concurrency. It runs under the
// globally enabled suite (which is race-safe).
func ParallelVsSerial(seeds []int64, workers int) error {
	serial := make([]Result, len(seeds))
	for i, seed := range seeds {
		res, err := Run(Generate(seed))
		if err != nil {
			return fmt.Errorf("serial seed %d: %w", seed, err)
		}
		serial[i] = res
	}

	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	par := make([]Result, len(seeds))
	errs := make([]error, len(seeds))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				res, err := Run(Generate(seeds[i]))
				par[i], errs[i] = res, err
			}
		}()
	}
	for i := range seeds {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for i, seed := range seeds {
		if errs[i] != nil {
			return fmt.Errorf("parallel seed %d: %w", seed, errs[i])
		}
		if par[i] != serial[i] {
			return fmt.Errorf("seed %d diverged across workers: serial %+v, parallel %+v",
				seed, serial[i], par[i])
		}
	}
	return nil
}
