// Package invtest wires invariant checking into package test binaries.
//
// Each package's TestMain calls Main(m): every test in the package then
// runs with a fresh global suite enabled, and the binary fails if any
// checker recorded a violation — this is how the invariants are "enabled
// in all tests" without touching individual test functions. Mutation
// self-tests that corrupt state on purpose use Capture to swap in a
// private suite, so their deliberate violations never leak into the
// package verdict.
package invtest

import (
	"fmt"
	"os"
	"testing"

	"peel/internal/invariant"
)

// Main runs the package's tests with invariant checking enabled and
// turns any recorded violation into a test-binary failure. If the test
// binary links the telemetry package and a test armed its sink, the
// flight recorder is dumped alongside the violation report (via the
// dumper telemetry registers with invariant.SetTraceDumper) — the trace
// of what the simulation did leading up to the failed check.
func Main(m *testing.M) {
	s := invariant.NewSuite()
	restore := invariant.Enable(s)
	code := m.Run()
	restore()
	if code == 0 && s.TotalViolations() > 0 {
		fmt.Fprintf(os.Stderr, "invtest: invariant violations recorded during tests\n%s", s.Report())
		invariant.DumpTrace(os.Stderr)
		code = 1
	}
	os.Exit(code)
}

// Capture runs fn with a fresh suite enabled in place of the package-wide
// one and returns it for assertions. Mutation self-tests use it to prove
// a checker fires without poisoning the Main verdict. The swap is
// process-global: fn must not race with simulation work on other
// goroutines (package tests here are single-threaded per test).
func Capture(t *testing.T, fn func()) *invariant.Suite {
	t.Helper()
	s := invariant.NewSuite()
	restore := invariant.Enable(s)
	defer restore()
	fn()
	return s
}
