package invariant

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryHasAllBuiltins(t *testing.T) {
	names := map[string]bool{}
	for _, c := range Checkers() {
		if c.Anchor == "" || c.Desc == "" {
			t.Errorf("checker %q missing anchor or description", c.Name)
		}
		names[c.Name] = true
	}
	for _, want := range []string{
		SimTimeMonotone, SimHeapIntegrity,
		NetFrameConservation, NetFrameRecycle, NetByteAccounting, NetOverDelivery,
		CollectiveDelivery, SteinerTreeValid, SteinerPeelBound,
		PrefixRuleBudget, PrefixHeaderBudget, PrefixCover,
		ChaosHealGuaranteed, ControllerSetupFloor,
	} {
		if !names[want] {
			t.Errorf("builtin checker %q not registered", want)
		}
	}
	if len(names) < 7 {
		t.Fatalf("tentpole requires >=7 checkers, registry has %d", len(names))
	}
}

func TestSuiteCountsAndFirstFailure(t *testing.T) {
	s := NewSuite()
	if !s.Checkf(SimTimeMonotone, true, "unused %d", 1) {
		t.Fatal("Checkf(ok=true) must return true")
	}
	if s.Checkf(SimTimeMonotone, false, "bad at=%d", 42) {
		t.Fatal("Checkf(ok=false) must return false")
	}
	s.Violatef(SimTimeMonotone, "bad at=%d", 43)
	if got := s.Checks(SimTimeMonotone); got != 3 {
		t.Errorf("Checks = %d, want 3", got)
	}
	if got := s.Violations(SimTimeMonotone); got != 2 {
		t.Errorf("Violations = %d, want 2", got)
	}
	if got := s.FirstFailure(SimTimeMonotone); got != "bad at=42" {
		t.Errorf("FirstFailure = %q, want the first message", got)
	}
	if s.TotalViolations() != 2 {
		t.Errorf("TotalViolations = %d, want 2", s.TotalViolations())
	}
	if err := s.Err(); err == nil || !strings.Contains(err.Error(), "bad at=42") {
		t.Errorf("Err = %v, want first-failure context", err)
	}
	if !strings.Contains(s.Report(), SimTimeMonotone) {
		t.Errorf("Report missing checker name:\n%s", s.Report())
	}
}

func TestCleanSuiteHasNoError(t *testing.T) {
	s := NewSuite()
	s.Checkf(SteinerTreeValid, true, "")
	if err := s.Err(); err != nil {
		t.Fatalf("clean suite Err = %v, want nil", err)
	}
}

func TestNilSuiteIsSafe(t *testing.T) {
	var s *Suite
	if !s.Checkf(SimTimeMonotone, true, "") || s.Checkf(SimTimeMonotone, false, "") {
		t.Error("nil suite Checkf must pass ok through")
	}
	s.Violatef(SimTimeMonotone, "ignored")
	if s.Checks(SimTimeMonotone) != 0 || s.Violations(SimTimeMonotone) != 0 ||
		s.TotalViolations() != 0 || s.TotalChecks() != 0 ||
		s.FirstFailure(SimTimeMonotone) != "" || s.Err() != nil {
		t.Error("nil suite must report nothing")
	}
	if s.Report() == "" {
		t.Error("nil suite Report must still render")
	}
}

func TestUnregisteredNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Checkf on an unregistered name must panic")
		}
	}()
	NewSuite().Checkf("no.such-checker", true, "")
}

func TestEnableRestores(t *testing.T) {
	outer := NewSuite()
	restoreOuter := Enable(outer)
	defer restoreOuter()
	if Active() != outer {
		t.Fatal("Enable did not install the suite")
	}
	inner := NewSuite()
	restore := Enable(inner)
	if Active() != inner {
		t.Fatal("nested Enable did not swap")
	}
	restore()
	if Active() != outer {
		t.Fatal("restore did not reinstate the previous suite")
	}
}

func TestSuiteConcurrentReports(t *testing.T) {
	s := NewSuite()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Checkf(NetByteAccounting, i%10 != 0, "worker violation %d", i)
			}
		}()
	}
	wg.Wait()
	if got := s.Checks(NetByteAccounting); got != 8000 {
		t.Errorf("Checks = %d, want 8000", got)
	}
	if got := s.Violations(NetByteAccounting); got != 800 {
		t.Errorf("Violations = %d, want 800", got)
	}
	if s.FirstFailure(NetByteAccounting) == "" {
		t.Error("concurrent violations must still capture a first failure")
	}
}
