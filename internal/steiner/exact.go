package steiner

import (
	"fmt"

	"peel/internal/routing"
	"peel/internal/topology"
)

// MaxExactTerminals bounds the terminal count ExactSmall accepts. The
// Dreyfus–Wagner dynamic program is Θ(3^t·n + 2^t·n²); twelve terminals on
// a few-hundred-node fabric runs in well under a second, which is the
// regime the yardstick is meant for (the paper's problem is NP-hard, §2.2).
const MaxExactTerminals = 14

// ExactSmall computes the exact minimum Steiner tree cost (edge count)
// connecting {src} ∪ dests over live links, using the Dreyfus–Wagner
// dynamic program. It returns an error if the terminal count exceeds
// MaxExactTerminals or any terminal is unreachable.
//
// Only the optimal cost is returned: the evaluation uses it to measure the
// greedy tree's optimality gap (the "within 1.4% of the Steiner optimum"
// headline), never to route traffic.
func ExactSmall(g *topology.Graph, src topology.NodeID, dests []topology.NodeID) (int, error) {
	terminals := []topology.NodeID{src}
	seen := map[topology.NodeID]bool{src: true}
	for _, d := range dests {
		if !seen[d] {
			seen[d] = true
			terminals = append(terminals, d)
		}
	}
	t := len(terminals)
	if t > MaxExactTerminals {
		return 0, fmt.Errorf("steiner: %d terminals exceeds exact-solver limit %d", t, MaxExactTerminals)
	}
	if t == 1 {
		return 0, nil
	}
	n := g.NumNodes()

	// Pairwise distances from every terminal, and from every node (we
	// need dist(v, u) for all v; compute full APSP via n BFS runs — the
	// fabrics this solver sees are small).
	dist := make([][]int32, n)
	for v := 0; v < n; v++ {
		dist[v] = routing.BFS(g, topology.NodeID(v)).Dist
	}
	for _, term := range terminals {
		if term != src && dist[src][term] == routing.Unreachable {
			return 0, fmt.Errorf("steiner: terminal %d: %w", term, ErrUnreachable)
		}
	}

	const inf = int32(1) << 30
	// dp[mask][v]: min cost of a tree spanning terminal subset mask ∪ {v}.
	// Terminal 0 is the source; masks range over the remaining t-1.
	base := terminals[1:]
	tm := len(base)
	full := 1<<tm - 1
	dp := make([][]int32, full+1)
	for m := range dp {
		dp[m] = make([]int32, n)
		for v := range dp[m] {
			dp[m][v] = inf
		}
	}
	for i, term := range base {
		for v := 0; v < n; v++ {
			if d := dist[term][v]; d != routing.Unreachable {
				dp[1<<i][v] = d
			}
		}
	}
	for mask := 1; mask <= full; mask++ {
		if mask&(mask-1) == 0 {
			continue // singletons initialized above
		}
		// Merge step: split mask into two non-empty halves at v.
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			rest := mask ^ sub
			if sub > rest {
				continue // each split once
			}
			for v := 0; v < n; v++ {
				if a, b := dp[sub][v], dp[rest][v]; a < inf && b < inf && a+b < dp[mask][v] {
					dp[mask][v] = a + b
				}
			}
		}
		// Grow step: Dijkstra-like relaxation over unit edges = BFS from
		// the current cost field (multi-source with initial costs).
		relaxUnit(g, dp[mask])
	}
	best := dp[full][src]
	if best >= inf {
		return 0, fmt.Errorf("steiner: no connecting tree exists")
	}
	return int(best), nil
}

// relaxUnit runs a multi-source unit-weight shortest-path relaxation over
// the cost field in place (Dial's algorithm: bucket queue by cost).
func relaxUnit(g *topology.Graph, cost []int32) {
	const inf = int32(1) << 30
	maxc := int32(0)
	for _, c := range cost {
		if c < inf && c > maxc {
			maxc = c
		}
	}
	// Costs can only grow by at most NumNodes during relaxation.
	buckets := make([][]topology.NodeID, maxc+int32(g.NumNodes())+2)
	for v, c := range cost {
		if c < inf {
			buckets[c] = append(buckets[c], topology.NodeID(v))
		}
	}
	var scratch []topology.NodeID
	for c := int32(0); c < int32(len(buckets)); c++ {
		for i := 0; i < len(buckets[c]); i++ {
			v := buckets[c][i]
			if cost[v] != c {
				continue // stale entry
			}
			scratch = g.Neighbors(v, scratch[:0])
			for _, p := range scratch {
				if c+1 < cost[p] {
					cost[p] = c + 1
					buckets[c+1] = append(buckets[c+1], p)
				}
			}
		}
	}
}
