//go:build !race

package steiner

const raceEnabled = false
