package steiner

import (
	"peel/internal/invariant"
	"peel/internal/routing"
	"peel/internal/topology"
)

// reportPeelBound checks Theorem 2.5's approximation budget for a built
// tree: with lb = max(F, |D|) (Lemma 2.4's lower bound on OPT), the cost
// must lie in [lb, lb·min(F,|D|)]. Both LayerPeeling (which already holds
// F and |D| in scope) and ReportTreeChecks route here.
func reportPeelBound(s *invariant.Suite, t *Tree, f int32, nd int) {
	if nd == 0 {
		return // degenerate self-send: no bound to check
	}
	cost := t.Cost()
	lb := nd
	if int(f) > lb {
		lb = int(f)
	}
	minFD := nd
	if int(f) < minFD {
		minFD = int(f)
	}
	if minFD < 1 {
		minFD = 1
	}
	s.Checkf(invariant.SteinerPeelBound, cost >= lb && cost <= lb*minFD,
		"tree cost %d outside [%d, %d] (F=%d |D|=%d)", cost, lb, lb*minFD, f, nd)
}

// ReportTreeChecks re-validates an already-built tree against the graph
// and destination set, reporting tree validity and the peeling cost bound.
// The recovery path calls it after every re-peel (the "cost no worse than
// the repair budget" check: a repaired tree must still respect Theorem
// 2.5 on the degraded fabric); mutation self-tests call it directly.
func ReportTreeChecks(s *invariant.Suite, g *topology.Graph, t *Tree, dests []topology.NodeID) {
	if s == nil {
		return
	}
	err := t.Validate(g, dests)
	if !s.Checkf(invariant.SteinerTreeValid, err == nil, "invalid tree: %v", err) {
		return // bound math is meaningless over a broken tree
	}
	d := routing.BorrowBFS(g, t.Source)
	defer d.Release()
	f, ferr := d.Farthest(dests)
	if ferr != nil {
		s.Violatef(invariant.SteinerTreeValid, "validated tree has unreachable destination: %v", ferr)
		return
	}
	nd := 0
	for _, dst := range dests {
		if dst != t.Source {
			nd++ // dests sets are de-duplicated by the planners
		}
	}
	reportPeelBound(s, t, f, nd)
}
