package steiner

import (
	"math/rand"
	"testing"

	"peel/internal/routing"
	"peel/internal/topology"
)

// FuzzPeelTree is the native-fuzzing twin of TestQuickLayerPeelingBounds:
// the fuzzer mutates the (seed, group size, failure rate) tuple and the
// target re-derives a random fabric, peels a tree, and checks validity
// plus both cost bounds. `go test -fuzz=FuzzPeelTree` explores; the seed
// corpus under testdata/fuzz keeps a regression set replayed by plain
// `go test`.
func FuzzPeelTree(f *testing.F) {
	f.Add(int64(1), uint64(4), uint64(0))
	f.Add(int64(7), uint64(9), uint64(12))
	f.Add(int64(42), uint64(2), uint64(24))
	f.Fuzz(func(t *testing.T, seed int64, nd, pct uint64) {
		rng := rand.New(rand.NewSource(seed))
		g := topology.LeafSpine(4+rng.Intn(8), 6+rng.Intn(10), 1+rng.Intn(3))
		g.FailRandomFraction(float64(pct%25)/100, topology.TierLinks(topology.Spine, topology.Leaf), rng)
		n := 2 + int(nd%10)
		hosts := g.Hosts()
		if n >= len(hosts) {
			n = len(hosts) - 1
		}
		picked := pickHosts(g, rng, n+1)
		src, dests := picked[0], picked[1:]
		d := routing.BFS(g, src)
		for _, dst := range dests {
			if !d.Reachable(dst) {
				return // partitioned draw: nothing to assert
			}
		}
		tr, stats, err := LayerPeeling(g, src, dests)
		if err != nil {
			t.Fatalf("seed=%d nd=%d pct=%d: %v", seed, nd, pct, err)
		}
		if verr := tr.Validate(g, dests); verr != nil {
			t.Fatalf("seed=%d nd=%d pct=%d: invalid tree: %v", seed, nd, pct, verr)
		}
		lb, err := LowerBound(g, src, dests)
		if err != nil {
			t.Fatalf("seed=%d nd=%d pct=%d: lower bound: %v", seed, nd, pct, err)
		}
		minFD := len(dests)
		if int(stats.F) < minFD {
			minFD = int(stats.F)
		}
		if minFD < 1 {
			minFD = 1
		}
		if cost := tr.Cost(); cost < lb || cost > lb*minFD {
			t.Fatalf("seed=%d nd=%d pct=%d: cost %d outside [%d, %d]", seed, nd, pct, cost, lb, lb*minFD)
		}
	})
}
