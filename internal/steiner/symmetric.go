package steiner

import (
	"fmt"
	"sort"

	"peel/internal/telemetry"
	"peel/internal/topology"
)

// SymmetricOptimal builds the minimum-cost multicast tree on a
// *failure-free* Clos fabric.
//
// Two-tier leaf–spine: Lemma 2.1 — lift all spines into a logical
// super-node; the optimal tree is source → leaf(s) → one spine → each
// destination leaf → destination hosts. Any single spine works because
// symmetry makes them interchangeable; we pick the lowest ID.
//
// Three-tier fat-tree: the same argument applies recursively. Within the
// source pod one aggregation switch covers all destination ToRs; across
// pods one core (reachable from that aggregation switch) covers every
// destination pod through exactly one aggregation switch per pod. Each
// tier crossing is necessary for any tree that spans the destinations, so
// the construction is optimal.
//
// SymmetricOptimal returns an error if the fabric has failures that break
// the links the construction needs; use LayerPeeling then.
func SymmetricOptimal(g *topology.Graph, src topology.NodeID, dests []topology.NodeID) (*Tree, error) {
	return SymmetricOptimalVariant(g, src, dests, 0)
}

// SymmetricOptimalVariant builds the same minimum-cost tree shape as
// SymmetricOptimal but selects among the interchangeable upstream
// switches (spines, aggregation switches, cores) by the variant index
// instead of always taking the lowest ID. Distinct variants yield
// equal-cost trees using different core-tier links — the building block
// for the multicast-vs-multipath striping the paper's §2.3 leaves open.
func SymmetricOptimalVariant(g *topology.Graph, src topology.NodeID, dests []topology.NodeID, variant uint64) (*Tree, error) {
	if g.Node(src).Kind != topology.Host {
		return nil, fmt.Errorf("steiner: source %d is not a host", src)
	}
	t := newTree(src, g.NumNodes())

	srcEdge := g.EdgeSwitchOf(src)
	if srcEdge == topology.None {
		return nil, fmt.Errorf("steiner: source %d has no live uplink", src)
	}

	// Group destinations by edge switch, de-duplicating and ignoring the
	// source itself.
	byEdge := map[topology.NodeID][]topology.NodeID{}
	for _, d := range dests {
		if d == src || t.Contains(d) {
			continue
		}
		if g.Node(d).Kind != topology.Host {
			return nil, fmt.Errorf("steiner: destination %d is not a host", d)
		}
		e := g.EdgeSwitchOf(d)
		if e == topology.None {
			return nil, fmt.Errorf("steiner: destination %d has no live uplink: %w", d, ErrUnreachable)
		}
		byEdge[e] = append(byEdge[e], d)
		t.add(d, e) // parent set now; edge switch added below
	}

	edges := make([]topology.NodeID, 0, len(byEdge))
	for e := range byEdge {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })

	needSrcEdge := len(edges) > 0
	remote := edges[:0:0]
	for _, e := range edges {
		if e != srcEdge {
			remote = append(remote, e)
		}
	}
	if needSrcEdge {
		t.add(srcEdge, src)
	}
	if len(remote) == 0 {
		return t, finish(t, g, dests)
	}

	switch g.Node(srcEdge).Kind {
	case topology.Leaf:
		// One spine covers all remote leaves.
		spine := pickUpstream(g, srcEdge, topology.Spine, variant)
		if spine == topology.None {
			return nil, fmt.Errorf("steiner: leaf %d has no live spine uplink", srcEdge)
		}
		t.add(spine, srcEdge)
		for _, leaf := range remote {
			if g.LinkBetween(spine, leaf) < 0 {
				return nil, fmt.Errorf("steiner: fabric asymmetric (spine %d cannot reach leaf %d)", spine, leaf)
			}
			t.add(leaf, spine)
		}
	case topology.ToR:
		if err := fatTreeDown(g, t, srcEdge, remote, variant); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("steiner: unsupported edge switch kind %s", g.Node(srcEdge).Kind)
	}
	return t, finish(t, g, dests)
}

// fatTreeDown attaches remote ToRs below the source ToR's pod structure.
func fatTreeDown(g *topology.Graph, t *Tree, srcToR topology.NodeID, remote []topology.NodeID, variant uint64) error {
	srcPod := g.PodOf(srcToR)
	var samePod, otherPods []topology.NodeID
	podSeen := map[int]bool{}
	for _, tor := range remote {
		if g.PodOf(tor) == srcPod {
			samePod = append(samePod, tor)
		} else {
			otherPods = append(otherPods, tor)
			podSeen[g.PodOf(tor)] = true
		}
	}
	agg := pickUpstream(g, srcToR, topology.Agg, variant)
	if agg == topology.None {
		return fmt.Errorf("steiner: tor %d has no live agg uplink", srcToR)
	}
	t.add(agg, srcToR)
	for _, tor := range samePod {
		if g.LinkBetween(agg, tor) < 0 {
			return fmt.Errorf("steiner: fabric asymmetric (agg %d cannot reach tor %d)", agg, tor)
		}
		t.add(tor, agg)
	}
	if len(otherPods) == 0 {
		return nil
	}
	core := pickUpstream(g, agg, topology.Core, variant)
	if core == topology.None {
		return fmt.Errorf("steiner: agg %d has no live core uplink", agg)
	}
	t.add(core, agg)
	// The core reaches exactly one aggregation switch in each pod.
	podAgg := map[int]topology.NodeID{}
	for _, he := range g.Adj(core) {
		if g.Link(he.Link).Failed {
			continue
		}
		if p := g.Node(he.Peer); p.Kind == topology.Agg {
			podAgg[p.Pod] = he.Peer
		}
	}
	added := map[topology.NodeID]bool{}
	for _, tor := range otherPods {
		a, ok := podAgg[g.PodOf(tor)]
		if !ok {
			return fmt.Errorf("steiner: fabric asymmetric (core %d cannot reach pod %d)", core, g.PodOf(tor))
		}
		if !added[a] {
			t.add(a, core)
			added[a] = true
		}
		if g.LinkBetween(a, tor) < 0 {
			return fmt.Errorf("steiner: fabric asymmetric (agg %d cannot reach tor %d)", a, tor)
		}
		t.add(tor, a)
	}
	return nil
}

// pickUpstream returns the variant-th live neighbor of n with the given
// kind (in ID order, wrapping), or None. Variant 0 is the lowest ID,
// preserving SymmetricOptimal's deterministic default.
func pickUpstream(g *topology.Graph, n topology.NodeID, kind topology.Kind, variant uint64) topology.NodeID {
	var cands []topology.NodeID
	for _, he := range g.Adj(n) {
		if g.Link(he.Link).Failed {
			continue
		}
		if g.Node(he.Peer).Kind == kind {
			cands = append(cands, he.Peer)
		}
	}
	if len(cands) == 0 {
		return topology.None
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	return cands[int(variant)%len(cands)]
}

// finish validates the constructed tree before returning it to callers.
func finish(t *Tree, g *topology.Graph, dests []topology.NodeID) error {
	live := dests[:0:0]
	for _, d := range dests {
		if d != t.Source {
			live = append(live, d)
		}
	}
	if err := t.Validate(g, live); err != nil {
		return err
	}
	if ts := telemetry.Active(); ts != nil {
		publishTreeTelemetry(ts, t, live)
	}
	return nil
}
