package steiner

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"peel/internal/invariant"
	"peel/internal/topology"
)

// fingerprintTrees serializes a tree set into comparable bytes: member
// order plus parents, per tree. Byte-identical fingerprints mean
// byte-identical tree sets.
func fingerprintTrees(trees []*Tree) string {
	out := make([]byte, 0, 64)
	for _, t := range trees {
		out = append(out, '|')
		for _, m := range t.Members {
			p := t.Parent[m]
			out = append(out, byte(m), byte(m>>8), byte(p), byte(p>>8))
		}
	}
	return string(out)
}

// switchLinkSets returns each tree's switch-switch link set on g.
func switchLinkSets(g *topology.Graph, trees []*Tree) []map[topology.LinkID]bool {
	sets := make([]map[topology.LinkID]bool, len(trees))
	for i, t := range trees {
		sets[i] = map[topology.LinkID]bool{}
		for _, m := range t.Members {
			p := t.Parent[m]
			if p == topology.None {
				continue
			}
			if g.Node(p).Kind.IsSwitch() && g.Node(m).Kind.IsSwitch() {
				sets[i][g.LinkBetween(p, m)] = true
			}
		}
	}
	return sets
}

// checkDisjointProperty is the oracle behind the generative test: given
// any graph and draw, the DisjointTrees contract must hold —
//
//  1. every tree is a valid multicast tree over g spanning all dests,
//  2. trees are pairwise disjoint over switch-switch links,
//  3. every tree's cost sits inside the Theorem 2.5 budget computed on
//     an independently reconstructed residual graph (the graph the tree
//     was actually peeled on),
//  4. stats agree with the returned set.
func checkDisjointProperty(g *topology.Graph, src topology.NodeID, dests []topology.NodeID, k int) error {
	trees, stats, err := DisjointTrees(g, src, dests, k)
	if err != nil {
		return fmt.Errorf("DisjointTrees: %w", err)
	}
	if stats.Built != len(trees) || stats.Requested != k {
		return fmt.Errorf("stats mismatch: built=%d len=%d requested=%d k=%d",
			stats.Built, len(trees), stats.Requested, k)
	}
	if len(trees) < 1 || len(trees) > k {
		return fmt.Errorf("got %d trees for k=%d", len(trees), k)
	}
	if len(trees) < k && !stats.Exhausted {
		return fmt.Errorf("built %d < k=%d without Exhausted", len(trees), k)
	}
	for i, t := range trees {
		if err := t.Validate(g, dests); err != nil {
			return fmt.Errorf("tree %d invalid: %w", i, err)
		}
	}
	sets := switchLinkSets(g, trees)
	for i := range sets {
		for j := i + 1; j < len(sets); j++ {
			for l := range sets[i] {
				if sets[j][l] {
					return fmt.Errorf("trees %d and %d share switch link %d", i, j, l)
				}
			}
		}
	}
	// Independent residual reconstruction for the per-tree budget: tree i
	// was peeled on g minus the switch links trees 0..i-1 claimed.
	residual := g.Clone()
	for i, t := range trees {
		lb, ub, err := PeelCostBudget(residual, src, dests)
		if err != nil {
			return fmt.Errorf("tree %d: residual budget: %w", i, err)
		}
		if c := t.Cost(); lb > 0 && (c < lb || c > ub) {
			return fmt.Errorf("tree %d cost %d outside residual budget [%d, %d]", i, c, lb, ub)
		}
		claimTreeLinks(residual, t)
	}
	return nil
}

// disjointDraw generates one seeded random instance: a fat-tree or
// leaf–spine (optionally degraded), a random group, and a random k.
func disjointDraw(seed int64) (g *topology.Graph, src topology.NodeID, dests []topology.NodeID, k int) {
	rng := rand.New(rand.NewSource(seed))
	if rng.Intn(2) == 0 {
		g = topology.FatTree(4)
	} else {
		g = topology.LeafSpine(2+rng.Intn(4), 3+rng.Intn(4), 1+rng.Intn(2))
	}
	if rng.Intn(3) == 0 {
		g.FailRandomFraction(0.1*rng.Float64(), topology.SwitchLinks, rng)
	}
	hosts := g.Hosts()
	rng.Shuffle(len(hosts), func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })
	n := 2 + rng.Intn(8)
	if n > len(hosts) {
		n = len(hosts)
	}
	return g, hosts[0], hosts[1:n], 1 + rng.Intn(4)
}

// TestDisjointTreesProperty is the generative property test: many seeded
// draws over random fat-trees and leaf–spines; any failure is shrunk by
// halving the destination set before reporting, scenario-harness style.
func TestDisjointTreesProperty(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 40
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		g, src, dests, k := disjointDraw(seed)
		if _, _, err := LayerPeeling(g, src, dests); err != nil {
			continue // degraded draw disconnected the group; nothing to test
		}
		if err := checkDisjointProperty(g, src, dests, k); err != nil {
			t.Fatalf("seed %d (shrunk to %d dests): %v", seed, len(shrinkDests(g, src, dests, k)), err)
		}
	}
}

// shrinkDests halves the failing destination set while the property
// still fails, returning a minimal reproduction.
func shrinkDests(g *topology.Graph, src topology.NodeID, dests []topology.NodeID, k int) []topology.NodeID {
	cur := dests
	for len(cur) > 1 {
		shrunk := false
		for _, half := range [][]topology.NodeID{cur[:len(cur)/2], cur[len(cur)/2:]} {
			if len(half) == 0 {
				continue
			}
			if _, _, err := LayerPeeling(g, src, half); err != nil {
				continue
			}
			if checkDisjointProperty(g, src, half, k) != nil {
				cur, shrunk = half, true
				break
			}
		}
		if !shrunk {
			break
		}
	}
	return cur
}

// TestDisjointTreesDeterministic demands byte-identical tree sets from
// serial and concurrent runs: the builder must not depend on worker
// count or scheduling (the experiments' forEachIndex contract).
func TestDisjointTreesDeterministic(t *testing.T) {
	const n = 32
	serial := make([]string, n)
	for seed := 0; seed < n; seed++ {
		g, src, dests, k := disjointDraw(int64(seed))
		if _, _, err := LayerPeeling(g, src, dests); err != nil {
			serial[seed] = "unreachable"
			continue
		}
		trees, _, err := DisjointTrees(g, src, dests, k)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		serial[seed] = fingerprintTrees(trees)
	}
	for _, workers := range []int{1, 4, 8} {
		par := make([]string, n)
		var wg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for seed := range jobs {
					g, src, dests, k := disjointDraw(int64(seed))
					if _, _, err := LayerPeeling(g, src, dests); err != nil {
						par[seed] = "unreachable"
						continue
					}
					trees, _, err := DisjointTrees(g, src, dests, k)
					if err == nil {
						par[seed] = fingerprintTrees(trees)
					}
				}
			}()
		}
		for seed := 0; seed < n; seed++ {
			jobs <- seed
		}
		close(jobs)
		wg.Wait()
		for seed := 0; seed < n; seed++ {
			if par[seed] != serial[seed] {
				t.Fatalf("seed %d diverged at %d workers", seed, workers)
			}
		}
	}
}

// TestDisjointTreesFatTreeStripes pins the healthy-fabric capacity: an
// 8-ary fat-tree has enough core diversity for 4 disjoint trees over a
// multi-pod group.
func TestDisjointTreesFatTree(t *testing.T) {
	g := topology.FatTree(8)
	hosts := g.Hosts()
	var dests []topology.NodeID
	for i := 7; i < len(hosts); i += 8 {
		dests = append(dests, hosts[i])
		if len(dests) == 32 {
			break
		}
	}
	trees, stats, err := DisjointTrees(g, hosts[0], dests, 4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Built != 4 || stats.Exhausted {
		t.Fatalf("8-ary fat-tree should carry 4 disjoint trees, got %d (exhausted=%v)", stats.Built, stats.Exhausted)
	}
	if err := checkDisjointProperty(g, hosts[0], dests, 4); err != nil {
		t.Fatal(err)
	}
	for i, tr := range trees {
		if len(tr.Links(g)) != tr.Cost() {
			t.Fatalf("tree %d: links/cost mismatch", i)
		}
	}
}

// TestDisjointTreesExhausted pins the fewer-than-k contract: a 2-spine
// leaf–spine has exactly two disjoint leaf-to-leaf paths, so k=4 must
// come back with 2 trees and Exhausted set — not an error.
func TestDisjointTreesExhausted(t *testing.T) {
	g := topology.LeafSpine(2, 4, 2)
	hosts := g.Hosts()
	src := hosts[0]
	dests := []topology.NodeID{hosts[3], hosts[5], hosts[7]} // spread over other leaves
	trees, stats, err := DisjointTrees(g, src, dests, 4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Built != 2 || len(trees) != 2 {
		t.Fatalf("2-spine fabric: want 2 disjoint trees, got %d", stats.Built)
	}
	if !stats.Exhausted {
		t.Fatal("Exhausted not reported for built < requested")
	}
	if err := checkDisjointProperty(g, src, dests, 4); err != nil {
		t.Fatal(err)
	}
}

func TestDisjointTreesRejectsZeroK(t *testing.T) {
	g := topology.LeafSpine(2, 2, 2)
	hosts := g.Hosts()
	if _, _, err := DisjointTrees(g, hosts[0], hosts[1:3], 0); err == nil {
		t.Fatal("k=0 must error")
	}
}

// TestMutationDisjointFires proves the trees-link-disjoint checker
// catches overlap: two hand-built trees sharing a leaf–spine link must
// violate, and the genuine DisjointTrees output must not.
func TestMutationDisjointFires(t *testing.T) {
	g, src, dst, leaf, spine, leaf2 := mutationFabric(t)
	_ = leaf2
	build := func() *Tree {
		tr := newTree(src, g.NumNodes())
		tr.add(leaf, src)
		tr.add(spine, leaf) // both trees claim the same leaf-spine link
		tr.add(dst, leaf)
		return tr
	}
	s := invariant.NewSuite()
	ReportDisjointChecks(s, g, []*Tree{build(), build()})
	if s.Violations(TreesLinkDisjoint) == 0 {
		t.Fatal("trees-link-disjoint did not fire on overlapping trees")
	}

	s2 := invariant.NewSuite()
	trees, _, err := DisjointTrees(g, src, []topology.NodeID{dst}, 2)
	if err != nil {
		t.Fatal(err)
	}
	ReportDisjointChecks(s2, g, trees)
	if s2.Violations(TreesLinkDisjoint) != 0 {
		t.Fatalf("false positive on genuine disjoint set: %s", s2.FirstFailure(TreesLinkDisjoint))
	}
	if s2.Checks(TreesLinkDisjoint) == 0 {
		t.Fatal("disjoint checker never ran on the genuine set")
	}
}

// BenchmarkDisjointTrees measures peeling 4 link-disjoint trees for a
// 32-receiver group on the 8-ary fat-tree — the striped schemes' setup
// cost (CI captures this into BENCH_after.json).
func BenchmarkDisjointTrees(b *testing.B) {
	g := topology.FatTree(8)
	hosts := g.Hosts()
	var dests []topology.NodeID
	for i := 7; i < len(hosts); i += 8 {
		dests = append(dests, hosts[i])
		if len(dests) == 32 {
			break
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trees, _, err := DisjointTrees(g, hosts[0], dests, 4)
		if err != nil {
			b.Fatal(err)
		}
		if len(trees) != 4 {
			b.Fatalf("got %d trees", len(trees))
		}
	}
}
