//go:build race

package steiner

// raceEnabled reports whether the race detector is compiled in; the
// zero-allocation pin skips under it (race mode defeats sync.Pool reuse).
const raceEnabled = true
