package steiner

import (
	"fmt"

	"peel/internal/invariant"
	"peel/internal/telemetry"
	"peel/internal/topology"
)

// Link-disjoint multi-tree construction — the bandwidth-optimal
// broadcast/allgather building block of Khalilov et al. (arXiv
// 2408.13356): striping a message across k pairwise edge-disjoint
// spanning trees multiplies the usable bisection bandwidth by k and, for
// free, leaves k−1 delivering trees when a single link dies.
//
// Disjointness is over switch–switch links only. Hosts here are
// single-homed (one NIC, one uplink), so every tree from the same source
// necessarily shares the source's uplink and each receiver's ToR
// downlink; those edges are NIC-bound, not fabric-bound, and excluding
// them from the residual graph would make k > 1 trivially impossible.
// The fabric tiers — where oversubscription and failures live — are
// where the trees may not overlap.

// TreesLinkDisjoint checks that a DisjointTrees result shares no
// switch–switch link between any two of its trees.
const TreesLinkDisjoint = "steiner.trees-link-disjoint"

func init() {
	invariant.Register(invariant.Checker{
		Name:   TreesLinkDisjoint,
		Anchor: "edge-disjoint spanning trees (Khalilov et al., arXiv 2408.13356)",
		Desc:   "trees built by DisjointTrees are pairwise disjoint over switch-switch links; only single-homed host uplinks may be shared",
	})
}

// DisjointStats reports what one DisjointTrees call achieved.
type DisjointStats struct {
	// Requested is the k the caller asked for.
	Requested int
	// Built is how many pairwise link-disjoint trees were actually
	// constructed; Built < Requested means the fabric's disjointness was
	// exhausted, not an error.
	Built int
	// Exhausted is set when a further tree could not be peeled on the
	// residual graph (some destination became unreachable there).
	Exhausted bool
	// LinksClaimed counts the switch-switch links removed from the
	// residual graph across all built trees.
	LinksClaimed int
	// Peels holds the per-tree peeling diagnostics, index-aligned with
	// the returned trees.
	Peels []PeelingStats
}

// DisjointTrees peels up to k pairwise link-disjoint multicast trees from
// src to dests. The first tree is a plain LayerPeeling on g; each further
// tree re-peels on a residual graph — a one-time clone of g (observers
// are not cloned, so failing links there has no side effects) with every
// switch-switch link claimed by earlier trees marked failed. Peeling
// reuses the pooled BFS scratch internally, so steady-state cost is k
// peels plus one graph clone.
//
// When the residual graph can no longer reach every destination the
// function returns the trees built so far with stats.Exhausted set —
// fewer trees is a property of the fabric, not a failure. Only the first
// peel can return an error (a destination unreachable on g itself).
//
// Every returned tree individually satisfies the Theorem 2.5 budget
// (checked by LayerPeeling); pairwise disjointness is checked under the
// steiner.trees-link-disjoint invariant when a suite is armed.
func DisjointTrees(g *topology.Graph, src topology.NodeID, dests []topology.NodeID, k int) ([]*Tree, DisjointStats, error) {
	stats := DisjointStats{Requested: k}
	if k < 1 {
		return nil, stats, fmt.Errorf("steiner: disjoint trees need k >= 1, got %d", k)
	}
	first, ps, err := LayerPeeling(g, src, dests)
	if err != nil {
		return nil, stats, err
	}
	trees := []*Tree{first}
	stats.Peels = append(stats.Peels, ps)

	if k > 1 {
		residual := g.Clone()
		stats.LinksClaimed += claimTreeLinks(residual, first)
		for len(trees) < k {
			t, ps, err := LayerPeeling(residual, src, dests)
			if err != nil {
				// The residual graph ran out of disjoint capacity: either a
				// destination is unreachable or no parent candidates remain
				// in some layer. Both mean "no further disjoint tree".
				stats.Exhausted = true
				break
			}
			trees = append(trees, t)
			stats.Peels = append(stats.Peels, ps)
			stats.LinksClaimed += claimTreeLinks(residual, t)
		}
	}
	stats.Built = len(trees)

	if s := invariant.Active(); s != nil {
		ReportDisjointChecks(s, g, trees)
	}
	if ts := telemetry.Active(); ts != nil {
		ts.Counter("steiner.disjoint.sets").Inc()
		ts.Counter("steiner.disjoint.trees").Add(int64(stats.Built))
		ts.Counter("steiner.disjoint.links_claimed").Add(int64(stats.LinksClaimed))
		if stats.Built < stats.Requested {
			ts.Counter("steiner.disjoint.exhausted").Inc()
		}
	}
	return trees, stats, nil
}

// claimTreeLinks fails every switch-switch link the tree uses on the
// residual graph, returning how many it claimed. Host uplinks stay live:
// single-homed hosts must be reachable by every tree.
func claimTreeLinks(residual *topology.Graph, t *Tree) int {
	claimed := 0
	for _, m := range t.Members {
		p := t.Parent[m]
		if p == topology.None {
			continue
		}
		if !residual.Node(p).Kind.IsSwitch() || !residual.Node(m).Kind.IsSwitch() {
			continue
		}
		l := residual.LinkBetween(p, m)
		if l < 0 {
			continue // already claimed by an earlier edge of this set
		}
		residual.FailLink(l)
		claimed++
	}
	return claimed
}

// ReportDisjointChecks reports the steiner.trees-link-disjoint invariant
// for a tree set: no switch-switch link of g may be used by two trees.
// DisjointTrees calls it on every result; mutation self-tests call it
// directly with deliberately overlapping trees.
func ReportDisjointChecks(s *invariant.Suite, g *topology.Graph, trees []*Tree) {
	if s == nil {
		return
	}
	owner := make(map[topology.LinkID]int)
	ok := true
	for ti, t := range trees {
		for _, m := range t.Members {
			p := t.Parent[m]
			if p == topology.None {
				continue
			}
			if !g.Node(p).Kind.IsSwitch() || !g.Node(m).Kind.IsSwitch() {
				continue
			}
			l := g.LinkBetween(p, m)
			if l < 0 {
				s.Violatef(TreesLinkDisjoint, "tree %d edge %d-%d has no live link", ti, p, m)
				ok = false
				continue
			}
			if prev, dup := owner[l]; dup && prev != ti {
				s.Checkf(TreesLinkDisjoint, false,
					"link %d (%d-%d) used by trees %d and %d", l, p, m, prev, ti)
				ok = false
				continue
			}
			owner[l] = ti
		}
	}
	if ok {
		s.Checkf(TreesLinkDisjoint, true, "")
	}
}
