package steiner

import (
	"errors"
	"math/rand"
	"slices"
	"testing"

	"peel/internal/invariant"
	"peel/internal/topology"
)

// spreadHosts picks nd distinct destination hosts (excluding src) evenly
// spread across the host list, so groups span pods.
func spreadHosts(g *topology.Graph, src topology.NodeID, nd int) []topology.NodeID {
	hosts := g.Hosts()
	out := make([]topology.NodeID, 0, nd)
	for i := 0; len(out) < nd && i < len(hosts); i++ {
		h := hosts[(i*len(hosts)/nd+1)%len(hosts)]
		if h != src && !slices.Contains(out, h) {
			out = append(out, h)
		}
	}
	return out
}

// treeSnapshot captures the mutable state of a tree for aliasing checks.
func treeSnapshot(t *Tree) ([]topology.NodeID, []topology.NodeID) {
	return append([]topology.NodeID(nil), t.Parent...), append([]topology.NodeID(nil), t.Members...)
}

// failTreeLink fails a deterministic switch-side tree link whose removal
// orphans at least one receiver but at most maxOrphans of them, returning
// the link and the expected orphan count (receivers whose old-tree path
// crossed the dead link).
func failTreeLink(t testing.TB, g *topology.Graph, tree *Tree, dests []topology.NodeID, maxOrphans int) topology.LinkID {
	t.Helper()
	for _, l := range tree.Links(g) {
		lk := g.Link(l)
		if !g.Node(lk.A).Kind.IsSwitch() || !g.Node(lk.B).Kind.IsSwitch() {
			continue // a host uplink makes its receiver unreachable, not orphaned
		}
		g.FailLink(l)
		orphans := 0
		for _, d := range dests {
			cut := false
			for n := d; n != tree.Source; n = tree.Parent[n] {
				if tree.Parent[n] == topology.None || g.LinkBetween(tree.Parent[n], n) < 0 {
					cut = true
					break
				}
			}
			if cut {
				orphans++
			}
		}
		if orphans >= 1 && orphans <= maxOrphans {
			return l
		}
		g.RestoreLink(l)
	}
	t.Fatal("no tree link orphans between 1 and maxOrphans receivers")
	return -1
}

func TestRepairGraftsOrphans(t *testing.T) {
	g := topology.FatTree(4)
	src := g.Hosts()[0]
	dests := spreadHosts(g, src, 8)
	old, _, err := LayerPeeling(g, src, dests)
	if err != nil {
		t.Fatal(err)
	}
	oldP, oldM := treeSnapshot(old)
	failTreeLink(t, g, old, dests, 2)

	patched, stats, err := Repair(g, old, dests, DefaultRepairPolicy())
	if err != nil {
		t.Fatalf("repair refused a single-link failure: %v", err)
	}
	if err := patched.Validate(g, dests); err != nil {
		t.Fatalf("patched tree invalid: %v", err)
	}
	if stats.Orphaned == 0 || stats.Grafts != stats.Orphaned {
		t.Fatalf("expected every orphan grafted, got %+v", stats)
	}
	if stats.NoChange {
		t.Fatalf("a failure that orphaned receivers cannot be a no-change repair: %+v", stats)
	}
	// The shared input tree must not be touched (caches hand it to
	// concurrent readers).
	p2, m2 := treeSnapshot(old)
	if !slices.Equal(oldP, p2) || !slices.Equal(oldM, m2) {
		t.Fatal("Repair mutated the input tree")
	}
	ReportRepairChecks(invariant.Active(), g, patched, dests)
}

func TestRepairNoChangeWhenTreeUnaffected(t *testing.T) {
	g := topology.FatTree(4)
	src := g.Hosts()[0]
	dests := spreadHosts(g, src, 6)
	old, _, err := LayerPeeling(g, src, dests)
	if err != nil {
		t.Fatal(err)
	}
	// Fail a live link the tree does not use.
	used := old.Links(g)
	for id := 0; id < g.NumLinks(); id++ {
		l := topology.LinkID(id)
		if !slices.Contains(used, l) {
			g.FailLink(l)
			break
		}
	}
	patched, stats, err := Repair(g, old, dests, DefaultRepairPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if !stats.NoChange || stats.Orphaned != 0 || stats.GraftEdges != 0 || stats.Pruned != 0 {
		t.Fatalf("expected a no-change repair, got %+v", stats)
	}
	if !slices.Equal(patched.Members, old.Members) {
		t.Fatal("no-change repair must reproduce the old member list")
	}
}

func TestRepairPrunesDroppedReceivers(t *testing.T) {
	// The collective runner repairs onto still-pending receivers only: a
	// subset of the old tree's receivers. The patch must prune the
	// branches that served the finished ones — with zero new graft edges
	// when no pending receiver was orphaned.
	g := topology.FatTree(4)
	src := g.Hosts()[0]
	dests := spreadHosts(g, src, 8)
	old, _, err := LayerPeeling(g, src, dests)
	if err != nil {
		t.Fatal(err)
	}
	pending := dests[:3]
	patched, stats, err := Repair(g, old, pending, DefaultRepairPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if err := patched.Validate(g, pending); err != nil {
		t.Fatalf("patched tree invalid: %v", err)
	}
	if stats.GraftEdges != 0 {
		t.Fatalf("healthy-graph subset repair needs no grafts, got %+v", stats)
	}
	if stats.Pruned == 0 || patched.Cost() >= old.Cost() {
		t.Fatalf("expected pruning to shrink the tree: %+v, cost %d vs %d", stats, patched.Cost(), old.Cost())
	}
	for _, d := range dests[3:] {
		if patched.Contains(d) && g.Node(d).Kind == topology.Host {
			t.Fatalf("finished receiver %d still in the pruned tree", d)
		}
	}
}

func TestRepairDeterministic(t *testing.T) {
	g := topology.FatTree(8)
	src := g.Hosts()[0]
	dests := spreadHosts(g, src, 16)
	old, _, err := LayerPeeling(g, src, dests)
	if err != nil {
		t.Fatal(err)
	}
	failTreeLink(t, g, old, dests, 4)
	a, _, err := Repair(g, old, dests, DefaultRepairPolicy())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Repair(g, old, dests, DefaultRepairPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(a.Parent, b.Parent) || !slices.Equal(a.Members, b.Members) {
		t.Fatal("repair is not deterministic for identical inputs")
	}
}

func TestRepairFallbackOrphanFraction(t *testing.T) {
	g := topology.FatTree(4)
	src := g.Hosts()[0]
	dests := spreadHosts(g, src, 8)
	old, _, err := LayerPeeling(g, src, dests)
	if err != nil {
		t.Fatal(err)
	}
	failTreeLink(t, g, old, dests, len(dests))
	pol := DefaultRepairPolicy()
	pol.MaxOrphanFrac = 1e-9 // any orphan at all must refuse
	_, _, err = Repair(g, old, dests, pol)
	if !errors.Is(err, ErrRepairFallback) {
		t.Fatalf("expected ErrRepairFallback, got %v", err)
	}
}

func TestRepairFallbackRadius(t *testing.T) {
	g := topology.FatTree(4)
	src := g.Hosts()[0]
	dests := spreadHosts(g, src, 8)
	old, _, err := LayerPeeling(g, src, dests)
	if err != nil {
		t.Fatal(err)
	}
	failTreeLink(t, g, old, dests, 2)
	pol := DefaultRepairPolicy()
	pol.MaxRadius = 1 // an orphaned host needs at least its ToR plus one hop
	if _, _, err := Repair(g, old, dests, pol); !errors.Is(err, ErrRepairFallback) {
		t.Fatalf("expected ErrRepairFallback at radius 1, got %v", err)
	}
}

func TestRepairFallbackCostRatio(t *testing.T) {
	g := topology.FatTree(4)
	src := g.Hosts()[0]
	dests := spreadHosts(g, src, 2)
	old, _, err := LayerPeeling(g, src, dests)
	if err != nil {
		t.Fatal(err)
	}
	failTreeLink(t, g, old, dests, 2)
	pol := DefaultRepairPolicy()
	pol.MaxCostRatio = 1e-9 // any patched tree exceeds this
	if _, _, err := Repair(g, old, dests, pol); !errors.Is(err, ErrRepairFallback) {
		t.Fatalf("expected ErrRepairFallback under a zero cost budget, got %v", err)
	}
}

// TestRepairConcurrentReaders exercises the shared-tree contract under
// -race: many goroutines repair from the same old tree while others walk
// it, which is exactly what the service's cache shards do.
func TestRepairConcurrentReaders(t *testing.T) {
	g := topology.FatTree(4)
	src := g.Hosts()[0]
	dests := spreadHosts(g, src, 8)
	old, _, err := LayerPeeling(g, src, dests)
	if err != nil {
		t.Fatal(err)
	}
	failTreeLink(t, g, old, dests, 3)
	done := make(chan error, 8)
	for i := 0; i < 4; i++ {
		go func() {
			_, _, err := Repair(g, old, dests, DefaultRepairPolicy())
			done <- err
		}()
		go func() {
			sum := topology.NodeID(0)
			for _, m := range old.Members {
				sum += old.Parent[m] + 1
			}
			_ = sum
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestRepairIntoZeroAlloc pins the patch fast path at zero allocations
// when reusing a destination tree (the CI bench gate re-checks this via
// BenchmarkRepairPatch).
func TestRepairIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation defeats sync.Pool reuse")
	}
	g := topology.FatTree(8)
	src := g.Hosts()[0]
	dests := spreadHosts(g, src, 16)
	old, _, err := LayerPeeling(g, src, dests)
	if err != nil {
		t.Fatal(err)
	}
	failTreeLink(t, g, old, dests, 4)
	dst := &Tree{}
	pol := DefaultRepairPolicy()
	if _, err := RepairInto(dst, g, old, dests, pol); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := RepairInto(dst, g, old, dests, pol); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("RepairInto fast path allocates %v times per run, want 0", allocs)
	}
}

// Mutation self-tests for the repaired-tree checker.

func TestMutationRepairedTreeValidFiresOnDeadEdge(t *testing.T) {
	g, src, dst, leaf, _, _ := mutationFabric(t)
	tr := newTree(src, g.NumNodes())
	tr.add(leaf, src)
	tr.add(dst, leaf)
	g.FailLink(g.LinkBetween(leaf, dst)) // the patched tree now crosses a dead link

	s := invariant.NewSuite()
	ReportRepairChecks(s, g, tr, []topology.NodeID{dst})
	if s.Violations(SteinerRepairedTreeValid) == 0 {
		t.Fatal("repaired-tree checker did not fire on a dead tree edge")
	}
}

func TestMutationRepairedTreeValidFiresOnUnspannedReceiver(t *testing.T) {
	g, src, dst, leaf, _, _ := mutationFabric(t)
	tr := newTree(src, g.NumNodes())
	tr.add(leaf, src)

	s := invariant.NewSuite()
	ReportRepairChecks(s, g, tr, []topology.NodeID{dst})
	if s.Violations(SteinerRepairedTreeValid) == 0 {
		t.Fatal("repaired-tree checker did not fire on an unspanned receiver")
	}
}

func TestMutationRepairedTreeValidFiresOnOverBudgetCost(t *testing.T) {
	g, src, dst, leaf, spine, leaf2 := mutationFabric(t)
	// Valid tree, gratuitous detour: cost 4 against a fresh-peel budget of
	// [2, 2] for (F=2, |D|=1).
	tr := newTree(src, g.NumNodes())
	tr.add(leaf, src)
	tr.add(dst, leaf)
	tr.add(spine, leaf)
	tr.add(leaf2, spine)

	s := invariant.NewSuite()
	ReportRepairChecks(s, g, tr, []topology.NodeID{dst})
	if s.Violations(SteinerRepairedTreeValid) == 0 {
		t.Fatal("repaired-tree checker did not fire on an over-budget patch")
	}
}

func TestMutationRepairedTreeValidPassesOnGoodPatch(t *testing.T) {
	g := topology.FatTree(4)
	src := g.Hosts()[0]
	dests := spreadHosts(g, src, 6)
	old, _, err := LayerPeeling(g, src, dests)
	if err != nil {
		t.Fatal(err)
	}
	failTreeLink(t, g, old, dests, 2)
	patched, _, err := Repair(g, old, dests, DefaultRepairPolicy())
	if err != nil {
		t.Fatal(err)
	}
	s := invariant.NewSuite()
	ReportRepairChecks(s, g, patched, dests)
	if n := s.Violations(SteinerRepairedTreeValid); n != 0 {
		t.Fatalf("checker fired %d times on a good patch: %s", n, s.FirstFailure(SteinerRepairedTreeValid))
	}
}

// TestRepairSeededRandom drives Repair across seeded random failure
// patterns on several fabrics: accepted patches must validate and stay
// within the policy's cost ratio of the old tree; refusals must be typed.
func TestRepairSeededRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pol := DefaultRepairPolicy()
	accepted, refused := 0, 0
	for trial := 0; trial < 150; trial++ {
		var g *topology.Graph
		if trial%2 == 0 {
			g = topology.FatTree(4)
		} else {
			g = topology.LeafSpine(4, 4, 4)
		}
		hosts := g.Hosts()
		src := hosts[rng.Intn(len(hosts))]
		nd := 2 + rng.Intn(10)
		dests := make([]topology.NodeID, 0, nd)
		for len(dests) < nd {
			h := hosts[rng.Intn(len(hosts))]
			if h != src && !slices.Contains(dests, h) {
				dests = append(dests, h)
			}
		}
		old, _, err := LayerPeeling(g, src, dests)
		if err != nil {
			t.Fatal(err)
		}
		links := old.Links(g)
		g.FailLink(links[rng.Intn(len(links))])
		for extra := rng.Intn(3); extra > 0; extra-- {
			g.FailLink(topology.LinkID(rng.Intn(g.NumLinks())))
		}
		patched, _, err := Repair(g, old, dests, pol)
		if err != nil {
			if !errors.Is(err, ErrRepairFallback) {
				t.Fatalf("trial %d: unexpected repair error: %v", trial, err)
			}
			refused++
			continue
		}
		accepted++
		if verr := patched.Validate(g, dests); verr != nil {
			t.Fatalf("trial %d: patched tree invalid: %v", trial, verr)
		}
		if old.Cost() > 0 && float64(patched.Cost()) > pol.MaxCostRatio*float64(old.Cost()) {
			t.Fatalf("trial %d: patched cost %d exceeds policy ratio of old cost %d",
				trial, patched.Cost(), old.Cost())
		}
	}
	if accepted == 0 {
		t.Fatal("seeded sweep accepted no repairs; fixture is broken")
	}
	t.Logf("accepted=%d refused=%d", accepted, refused)
}

// Benchmarks: the CI bench-smoke gate asserts BenchmarkRepairPatch is at
// least 3× faster than BenchmarkRepairFull and allocation-free.

// benchRepairFixture: a 16-receiver group on a k=8 fat-tree with one
// switch-side link failure orphaning ≤ 25% of the receivers — the
// small-subtree-failure case incremental repair exists for.
func benchRepairFixture(b *testing.B) (*topology.Graph, *Tree, topology.NodeID, []topology.NodeID) {
	b.Helper()
	g := topology.FatTree(8)
	src := g.Hosts()[0]
	dests := spreadHosts(g, src, 16)
	old, _, err := LayerPeeling(g, src, dests)
	if err != nil {
		b.Fatal(err)
	}
	failTreeLink(b, g, old, dests, len(dests)/4)
	return g, old, src, dests
}

func BenchmarkRepairPatch(b *testing.B) {
	g, old, _, dests := benchRepairFixture(b)
	pol := DefaultRepairPolicy()
	dst := &Tree{}
	if _, err := RepairInto(dst, g, old, dests, pol); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RepairInto(dst, g, old, dests, pol); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRepairFull(b *testing.B) {
	g, _, src, dests := benchRepairFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := LayerPeeling(g, src, dests); err != nil {
			b.Fatal(err)
		}
	}
}
