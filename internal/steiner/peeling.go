package steiner

import (
	"fmt"
	"sort"

	"peel/internal/routing"
	"peel/internal/topology"
)

// ErrUnreachable marks tree-construction failures caused by a destination
// with no live path from the source (as opposed to construction bugs).
// Every builder in this package — LayerPeeling, SymmetricOptimal,
// ExactSmall — wraps it, so callers use errors.Is to tell a disconnected
// receiver apart from real errors.
var ErrUnreachable = routing.ErrUnreachable

// PeelingStats reports diagnostics of one LayerPeeling run, matching the
// quantities in the paper's analysis (§2.3): F is the farthest-destination
// hop distance, SwitchesAdded the number of Steiner (non-terminal) nodes
// the greedy chose, and PerLayer the |l_i ∩ T| terms of Lemma 2.3.
type PeelingStats struct {
	F             int32
	SwitchesAdded int
	PerLayer      []int
}

// LayerPeeling builds a multicast tree on an arbitrary (possibly failed,
// "asymmetric") Clos fabric with the paper's greedy layer-peeling
// heuristic (§2.3):
//
//  1. Compute hop layers l_j around the source by BFS.
//  2. Start with T = {source} ∪ destinations.
//  3. From the outermost layer inward, while some member of l_{i+1} ∩ T
//     has no parent in l_i ∩ T, add the layer-i switch that covers the
//     most such members (classical set-cover greedy, ties to lowest ID).
//
// The result is loop-free by construction (edges only join adjacent
// layers, each node receives exactly one parent) and is an
// O(min(F,|D|))-approximation of the optimal Steiner tree (Theorem 2.5).
//
// Returns an error if any destination is unreachable.
func LayerPeeling(g *topology.Graph, src topology.NodeID, dests []topology.NodeID) (*Tree, PeelingStats, error) {
	var stats PeelingStats
	d := routing.BFS(g, src)
	f, err := d.Farthest(dests)
	if err != nil {
		return nil, stats, err
	}
	stats.F = f

	t := newTree(src, g.NumNodes())
	inT := make([]bool, g.NumNodes())
	inT[src] = true
	for _, dst := range dests {
		if dst != src && !inT[dst] {
			inT[dst] = true
			t.Members = append(t.Members, dst) // parent assigned during peeling
		}
	}

	layers := d.Layers()
	if int(f) >= len(layers) {
		return nil, stats, fmt.Errorf("steiner: internal: F=%d beyond layer count %d", f, len(layers))
	}
	stats.PerLayer = make([]int, int(f)+1)

	var scratch []topology.NodeID
	for i := int(f) - 1; i >= 0; i-- {
		// Members of l_{i+1} that still lack a parent.
		var orphans []topology.NodeID
		for _, n := range layers[i+1] {
			if inT[n] && t.Parent[n] == topology.None && n != t.Source {
				orphans = append(orphans, n)
			}
		}
		// First, attach orphans that already have a tree neighbor one
		// layer in: no new switch needed.
		remaining := orphans[:0]
		for _, n := range orphans {
			best := topology.None
			scratch = g.Neighbors(n, scratch[:0])
			for _, p := range scratch {
				if d.Dist[p] == int32(i) && inT[p] && (best == topology.None || p < best) {
					best = p
				}
			}
			if best != topology.None {
				t.Parent[n] = best
				t.children = nil
			} else {
				remaining = append(remaining, n)
			}
		}
		// Greedy set cover over layer-i switches for the rest.
		for len(remaining) > 0 {
			type cand struct {
				sw    topology.NodeID
				count int
			}
			counts := map[topology.NodeID]int{}
			for _, n := range remaining {
				scratch = g.Neighbors(n, scratch[:0])
				for _, p := range scratch {
					if d.Dist[p] == int32(i) && !inT[p] && (g.Node(p).Kind.IsSwitch() || p == src) {
						counts[p]++
					}
				}
			}
			if len(counts) == 0 {
				return nil, stats, fmt.Errorf("steiner: internal: %d layer-%d members have no candidate parent", len(remaining), i+1)
			}
			best := cand{sw: topology.None}
			for sw, c := range counts {
				if c > best.count || (c == best.count && (best.sw == topology.None || sw < best.sw)) {
					best = cand{sw, c}
				}
			}
			inT[best.sw] = true
			t.add(best.sw, topology.None) // parent filled at layer i-1
			t.Parent[best.sw] = topology.None
			stats.SwitchesAdded++
			next := remaining[:0]
			for _, n := range remaining {
				if g.LinkBetween(n, best.sw) >= 0 {
					t.Parent[n] = best.sw
					t.children = nil
				} else {
					next = append(next, n)
				}
			}
			remaining = next
		}
		// Layer census for Lemma 2.3 style accounting.
		for _, n := range layers[i+1] {
			if inT[n] {
				stats.PerLayer[i+1]++
			}
		}
	}
	stats.PerLayer[0] = 1 // the source

	// Order members root-first so downstream consumers can stream them.
	sortMembersByDepth(t, d)
	live := dests[:0:0]
	for _, dst := range dests {
		if dst != src {
			live = append(live, dst)
		}
	}
	if err := t.Validate(g, live); err != nil {
		return nil, stats, fmt.Errorf("steiner: layer peeling produced invalid tree: %w", err)
	}
	return t, stats, nil
}

// sortMembersByDepth orders Members by BFS layer (root first), with stable
// ID tie-breaking, giving deterministic iteration order.
func sortMembersByDepth(t *Tree, d *routing.DistanceField) {
	sort.SliceStable(t.Members, func(i, j int) bool {
		di, dj := d.Dist[t.Members[i]], d.Dist[t.Members[j]]
		if di != dj {
			return di < dj
		}
		return t.Members[i] < t.Members[j]
	})
}

// LowerBound returns Lemma 2.4's bound on the optimal tree cost:
// |OPT| ≥ max(F, |D|), with F the farthest destination's hop distance and
// |D| the number of distinct destinations (excluding the source).
func LowerBound(g *topology.Graph, src topology.NodeID, dests []topology.NodeID) (int, error) {
	d := routing.BFS(g, src)
	f, err := d.Farthest(dests)
	if err != nil {
		return 0, err
	}
	distinct := map[topology.NodeID]bool{}
	for _, dst := range dests {
		if dst != src {
			distinct[dst] = true
		}
	}
	if int(f) > len(distinct) {
		return int(f), nil
	}
	return len(distinct), nil
}
