package steiner

import (
	"fmt"
	"sort"
	"sync"

	"peel/internal/invariant"
	"peel/internal/routing"
	"peel/internal/telemetry"
	"peel/internal/topology"
)

// peelScratch is the reusable working state of one LayerPeeling call:
// membership flags, set-cover counters with their touched list, and the
// neighbor/orphan buffers. Pooled because planners and the failure-recovery
// watchdog re-peel trees constantly; steady-state peeling allocates only
// the returned Tree and stats.
type peelScratch struct {
	inT     []bool
	marked  []topology.NodeID // inT indexes set, for O(set) reset
	counts  []int32           // set-cover candidate counters
	touched []topology.NodeID // counts indexes set this round
	nbr     []topology.NodeID
	orphans []topology.NodeID
}

var peelPool = sync.Pool{New: func() any { return new(peelScratch) }}

// grab sizes the scratch for an n-node graph and returns it reset.
func grabPeelScratch(n int) *peelScratch {
	s := peelPool.Get().(*peelScratch)
	if cap(s.inT) < n {
		s.inT = make([]bool, n)
		s.counts = make([]int32, n)
	}
	s.inT = s.inT[:n]
	s.counts = s.counts[:n]
	return s
}

// release clears the membership flags it set and returns to the pool.
func (s *peelScratch) release() {
	for _, id := range s.marked {
		s.inT[id] = false
	}
	s.marked = s.marked[:0]
	for _, id := range s.touched {
		s.counts[id] = 0
	}
	s.touched = s.touched[:0]
	peelPool.Put(s)
}

func (s *peelScratch) mark(id topology.NodeID) {
	s.inT[id] = true
	s.marked = append(s.marked, id)
}

// ErrUnreachable marks tree-construction failures caused by a destination
// with no live path from the source (as opposed to construction bugs).
// Every builder in this package — LayerPeeling, SymmetricOptimal,
// ExactSmall — wraps it, so callers use errors.Is to tell a disconnected
// receiver apart from real errors.
var ErrUnreachable = routing.ErrUnreachable

// PeelingStats reports diagnostics of one LayerPeeling run, matching the
// quantities in the paper's analysis (§2.3): F is the farthest-destination
// hop distance, SwitchesAdded the number of Steiner (non-terminal) nodes
// the greedy chose, and PerLayer the |l_i ∩ T| terms of Lemma 2.3.
type PeelingStats struct {
	F             int32
	SwitchesAdded int
	PerLayer      []int
}

// LayerPeeling builds a multicast tree on an arbitrary (possibly failed,
// "asymmetric") Clos fabric with the paper's greedy layer-peeling
// heuristic (§2.3):
//
//  1. Compute hop layers l_j around the source by BFS.
//  2. Start with T = {source} ∪ destinations.
//  3. From the outermost layer inward, while some member of l_{i+1} ∩ T
//     has no parent in l_i ∩ T, add the layer-i switch that covers the
//     most such members (classical set-cover greedy, ties to lowest ID).
//
// The result is loop-free by construction (edges only join adjacent
// layers, each node receives exactly one parent) and is an
// O(min(F,|D|))-approximation of the optimal Steiner tree (Theorem 2.5).
//
// Returns an error if any destination is unreachable.
func LayerPeeling(g *topology.Graph, src topology.NodeID, dests []topology.NodeID) (*Tree, PeelingStats, error) {
	var stats PeelingStats
	d := routing.BorrowBFS(g, src)
	defer d.Release()
	f, err := d.Farthest(dests)
	if err != nil {
		return nil, stats, err
	}
	stats.F = f

	sc := grabPeelScratch(g.NumNodes())
	defer sc.release()
	inT := sc.inT

	t := newTree(src, g.NumNodes())
	sc.mark(src)
	for _, dst := range dests {
		if dst != src && !inT[dst] {
			sc.mark(dst)
			t.Members = append(t.Members, dst) // parent assigned during peeling
		}
	}

	layers := d.Layers()
	if int(f) >= len(layers) {
		return nil, stats, fmt.Errorf("steiner: internal: F=%d beyond layer count %d", f, len(layers))
	}
	stats.PerLayer = make([]int, int(f)+1)

	scratch := sc.nbr
	for i := int(f) - 1; i >= 0; i-- {
		// Members of l_{i+1} that still lack a parent.
		orphans := sc.orphans[:0]
		for _, n := range layers[i+1] {
			if inT[n] && t.Parent[n] == topology.None && n != t.Source {
				orphans = append(orphans, n)
			}
		}
		sc.orphans = orphans
		// First, attach orphans that already have a tree neighbor one
		// layer in: no new switch needed.
		remaining := orphans[:0]
		for _, n := range orphans {
			best := topology.None
			scratch = g.Neighbors(n, scratch[:0])
			for _, p := range scratch {
				if d.Dist[p] == int32(i) && inT[p] && (best == topology.None || p < best) {
					best = p
				}
			}
			if best != topology.None {
				t.Parent[n] = best
				t.children = nil
			} else {
				remaining = append(remaining, n)
			}
		}
		// Greedy set cover over layer-i switches for the rest. Candidate
		// counters live in a reusable NumNodes-sized slice; only the
		// touched entries are reset, so a round costs O(candidates), not
		// O(nodes) — and no per-round map.
		for len(remaining) > 0 {
			counts, touched := sc.counts, sc.touched[:0]
			for _, n := range remaining {
				scratch = g.Neighbors(n, scratch[:0])
				for _, p := range scratch {
					if d.Dist[p] == int32(i) && !inT[p] && (g.Node(p).Kind.IsSwitch() || p == src) {
						if counts[p] == 0 {
							touched = append(touched, p)
						}
						counts[p]++
					}
				}
			}
			sc.touched = touched
			if len(touched) == 0 {
				return nil, stats, fmt.Errorf("steiner: internal: %d layer-%d members have no candidate parent", len(remaining), i+1)
			}
			bestSw, bestCount := topology.None, int32(0)
			for _, sw := range touched {
				c := counts[sw]
				if c > bestCount || (c == bestCount && (bestSw == topology.None || sw < bestSw)) {
					bestSw, bestCount = sw, c
				}
			}
			for _, sw := range touched {
				counts[sw] = 0
			}
			sc.touched = sc.touched[:0]
			sc.mark(bestSw)
			t.add(bestSw, topology.None) // parent filled at layer i-1
			t.Parent[bestSw] = topology.None
			stats.SwitchesAdded++
			next := remaining[:0]
			for _, n := range remaining {
				if g.LinkBetween(n, bestSw) >= 0 {
					t.Parent[n] = bestSw
					t.children = nil
				} else {
					next = append(next, n)
				}
			}
			remaining = next
		}
		// Layer census for Lemma 2.3 style accounting.
		for _, n := range layers[i+1] {
			if inT[n] {
				stats.PerLayer[i+1]++
			}
		}
	}
	stats.PerLayer[0] = 1 // the source
	sc.nbr = scratch      // keep the grown neighbor buffer for the next call

	// Order members root-first so downstream consumers can stream them.
	sortMembersByDepth(t, d)
	live := dests[:0:0]
	for _, dst := range dests {
		if dst != src {
			live = append(live, dst)
		}
	}
	if err := t.Validate(g, live); err != nil {
		return nil, stats, fmt.Errorf("steiner: layer peeling produced invalid tree: %w", err)
	}
	if s := invariant.Active(); s != nil {
		// Validate just passed; record it and check Theorem 2.5's budget
		// with the F and |D| already in hand (no extra BFS).
		s.Checkf(invariant.SteinerTreeValid, true, "")
		nd := 0
		seen := map[topology.NodeID]bool{}
		for _, dst := range live {
			if !seen[dst] {
				seen[dst] = true
				nd++
			}
		}
		reportPeelBound(s, t, stats.F, nd)
	}
	if ts := telemetry.Active(); ts != nil {
		ts.Counter("steiner.peeled_trees").Inc()
		ts.Counter("steiner.peel_switches_added").Add(int64(stats.SwitchesAdded))
		publishTreeTelemetry(ts, t, live)
	}
	return t, stats, nil
}

// publishTreeTelemetry reports one built tree into the telemetry sink:
// the depth and fan-out distributions the paper's Theorem 2.5 budget
// constrains. Every builder (layer peeling, the symmetric fast path)
// calls it on a validated tree; builds are rare (once per collective or
// repair), so names are resolved directly rather than cached like
// netsim's per-frame hooks.
func publishTreeTelemetry(ts *telemetry.Sink, t *Tree, dests []topology.NodeID) {
	ts.Counter("steiner.trees").Inc()
	depthH := ts.Histogram("steiner.tree_depth", telemetry.LinearLayout(0, 1, 33))
	maxDepth := 0
	for _, dst := range dests {
		if d := t.Depth(dst); d > maxDepth {
			maxDepth = d
		}
	}
	depthH.Observe(int64(maxDepth))
	fanH := ts.Histogram("steiner.fanout", telemetry.LinearLayout(0, 1, 65))
	for _, kids := range t.Children() {
		if len(kids) > 0 {
			fanH.Observe(int64(len(kids)))
		}
	}
}

// sortMembersByDepth orders Members by BFS layer (root first), with stable
// ID tie-breaking, giving deterministic iteration order.
func sortMembersByDepth(t *Tree, d *routing.DistanceField) {
	sort.SliceStable(t.Members, func(i, j int) bool {
		di, dj := d.Dist[t.Members[i]], d.Dist[t.Members[j]]
		if di != dj {
			return di < dj
		}
		return t.Members[i] < t.Members[j]
	})
}

// LowerBound returns Lemma 2.4's bound on the optimal tree cost:
// |OPT| ≥ max(F, |D|), with F the farthest destination's hop distance and
// |D| the number of distinct destinations (excluding the source).
func LowerBound(g *topology.Graph, src topology.NodeID, dests []topology.NodeID) (int, error) {
	d := routing.BorrowBFS(g, src)
	defer d.Release()
	f, err := d.Farthest(dests)
	if err != nil {
		return 0, err
	}
	distinct := map[topology.NodeID]bool{}
	for _, dst := range dests {
		if dst != src {
			distinct[dst] = true
		}
	}
	if int(f) > len(distinct) {
		return int(f), nil
	}
	return len(distinct), nil
}
