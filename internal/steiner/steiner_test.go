package steiner

import (
	"math/rand"
	"testing"
	"testing/quick"

	"peel/internal/routing"
	"peel/internal/topology"
)

func pickHosts(g *topology.Graph, rng *rand.Rand, n int) []topology.NodeID {
	hosts := g.Hosts()
	rng.Shuffle(len(hosts), func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })
	return hosts[:n]
}

func TestSymmetricOptimalLeafSpineCost(t *testing.T) {
	g := topology.LeafSpine(4, 6, 4)
	src := g.Hosts()[0] // leaf0/host0
	// Destinations: one under the source leaf, all four under leaf2, two
	// under leaf5.
	var dests []topology.NodeID
	dests = append(dests, g.Hosts()[1])
	dests = append(dests, g.HostsUnder(g.NodesOfKind(topology.Leaf)[2])...)
	dests = append(dests, g.HostsUnder(g.NodesOfKind(topology.Leaf)[5])[:2]...)

	tr, err := SymmetricOptimal(g, src, dests)
	if err != nil {
		t.Fatal(err)
	}
	// Edges: src→leaf0 + leaf0→spine + spine→{leaf2,leaf5} + 7 host drops.
	want := 1 + 1 + 2 + 7
	if tr.Cost() != want {
		t.Fatalf("cost=%d want %d", tr.Cost(), want)
	}
	if err := tr.Validate(g, dests); err != nil {
		t.Fatal(err)
	}
	spines := 0
	for _, m := range tr.Members {
		if g.Node(m).Kind == topology.Spine {
			spines++
		}
	}
	if spines != 1 {
		t.Fatalf("optimal tree uses %d spines, want exactly 1 (super-node lemma)", spines)
	}
}

func TestSymmetricOptimalFatTreeCost(t *testing.T) {
	g := topology.FatTree(4)
	src := g.HostByCoord(0, 0, 0)
	dests := []topology.NodeID{
		g.HostByCoord(0, 0, 1), // same ToR
		g.HostByCoord(0, 1, 0), // same pod
		g.HostByCoord(2, 0, 0), // remote pod
		g.HostByCoord(2, 1, 1), // same remote pod, other ToR
		g.HostByCoord(3, 0, 0), // second remote pod
	}
	tr, err := SymmetricOptimal(g, src, dests)
	if err != nil {
		t.Fatal(err)
	}
	// Up: src→tor(1) tor→agg(1) agg→core(1).
	// Down same pod: agg→tor01(1). Down pod2: core→agg(1) agg→2 tors(2).
	// Down pod3: core→agg(1) agg→tor(1). Hosts: 5.
	want := 3 + 1 + 3 + 2 + 5
	if tr.Cost() != want {
		t.Fatalf("cost=%d want %d", tr.Cost(), want)
	}
	cores := 0
	for _, m := range tr.Members {
		if g.Node(m).Kind == topology.Core {
			cores++
		}
	}
	if cores != 1 {
		t.Fatalf("optimal fat-tree uses %d cores, want 1", cores)
	}
}

func TestSymmetricOptimalSameToROnly(t *testing.T) {
	g := topology.FatTree(4)
	src := g.HostByCoord(1, 1, 0)
	dests := []topology.NodeID{g.HostByCoord(1, 1, 1)}
	tr, err := SymmetricOptimal(g, src, dests)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Cost() != 2 {
		t.Fatalf("same-rack broadcast cost=%d want 2", tr.Cost())
	}
}

func TestSymmetricOptimalNoDests(t *testing.T) {
	g := topology.FatTree(4)
	tr, err := SymmetricOptimal(g, g.Hosts()[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Cost() != 0 {
		t.Fatalf("empty group cost=%d want 0", tr.Cost())
	}
}

func TestSymmetricOptimalDedupsAndSkipsSource(t *testing.T) {
	g := topology.FatTree(4)
	src := g.Hosts()[0]
	d := g.Hosts()[5]
	tr, err := SymmetricOptimal(g, src, []topology.NodeID{d, d, src, d})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(g, []topology.NodeID{d}); err != nil {
		t.Fatal(err)
	}
}

func TestSymmetricOptimalMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		g := topology.LeafSpine(3, 4, 3)
		hosts := pickHosts(g, rng, 6)
		src, dests := hosts[0], hosts[1:]
		tr, err := SymmetricOptimal(g, src, dests)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := ExactSmall(g, src, dests)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Cost() != exact {
			t.Fatalf("trial %d: symmetric-optimal=%d exact=%d", trial, tr.Cost(), exact)
		}
	}
}

func TestSymmetricOptimalFatTreeMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := topology.FatTree(4)
	for trial := 0; trial < 6; trial++ {
		hosts := pickHosts(g, rng, 7)
		src, dests := hosts[0], hosts[1:]
		tr, err := SymmetricOptimal(g, src, dests)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := ExactSmall(g, src, dests)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Cost() != exact {
			t.Fatalf("trial %d: symmetric-optimal=%d exact=%d", trial, tr.Cost(), exact)
		}
	}
}

func TestLayerPeelingMatchesOptimalOnSymmetricFabrics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		var g *topology.Graph
		if trial%2 == 0 {
			g = topology.FatTree(4)
		} else {
			g = topology.LeafSpine(4, 8, 2)
		}
		hosts := pickHosts(g, rng, 8)
		src, dests := hosts[0], hosts[1:]
		opt, err := SymmetricOptimal(g, src, dests)
		if err != nil {
			t.Fatal(err)
		}
		greedy, _, err := LayerPeeling(g, src, dests)
		if err != nil {
			t.Fatal(err)
		}
		if greedy.Cost() != opt.Cost() {
			t.Fatalf("trial %d: greedy=%d optimal=%d on symmetric fabric", trial, greedy.Cost(), opt.Cost())
		}
	}
}

func TestLayerPeelingUnderFailures(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := topology.LeafSpine(16, 48, 2)
	g.FailRandomFraction(0.10, topology.TierLinks(topology.Spine, topology.Leaf), rng)
	hosts := pickHosts(g, rng, 9)
	src, dests := hosts[0], hosts[1:]
	tr, stats, err := LayerPeeling(g, src, dests)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(g, dests); err != nil {
		t.Fatal(err)
	}
	for _, l := range tr.Links(g) {
		if g.Link(l).Failed {
			t.Fatal("tree uses failed link")
		}
	}
	lb, err := LowerBound(g, src, dests)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Cost() < lb {
		t.Fatalf("cost %d below lower bound %d", tr.Cost(), lb)
	}
	minFD := len(dests)
	if int(stats.F) < minFD {
		minFD = int(stats.F)
	}
	if tr.Cost() > lb*minFD {
		t.Fatalf("cost %d exceeds approximation bound %d×%d", tr.Cost(), lb, minFD)
	}
}

func TestLayerPeelingNearExactUnderFailures(t *testing.T) {
	// The paper reports the greedy within a few percent of the Steiner
	// optimum; on small fabrics we can check the gap exactly. Allow some
	// slack — the guarantee is min(F,|D|) — but the typical gap must be
	// small for the Fig. 7 results to make sense.
	rng := rand.New(rand.NewSource(23))
	worst := 1.0
	for trial := 0; trial < 12; trial++ {
		g := topology.LeafSpine(6, 8, 2)
		g.FailRandomFraction(0.15, topology.TierLinks(topology.Spine, topology.Leaf), rng)
		hosts := pickHosts(g, rng, 7)
		src, dests := hosts[0], hosts[1:]
		tr, _, err := LayerPeeling(g, src, dests)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := ExactSmall(g, src, dests)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Cost() < exact {
			t.Fatalf("greedy %d beat the exact optimum %d — solver bug", tr.Cost(), exact)
		}
		if r := float64(tr.Cost()) / float64(exact); r > worst {
			worst = r
		}
	}
	if worst > 1.35 {
		t.Fatalf("worst greedy/exact ratio %.2f; expected near-optimal trees", worst)
	}
}

func TestLayerPeelingUnreachableDest(t *testing.T) {
	g := topology.LeafSpine(2, 2, 1)
	h := g.Hosts()[1]
	g.FailLink(g.Adj(h)[0].Link)
	if _, _, err := LayerPeeling(g, g.Hosts()[0], []topology.NodeID{h}); err == nil {
		t.Fatal("expected error for unreachable destination")
	}
}

// TestLayerPeelingWalkthrough mirrors the paper's Fig. 2 scenario in
// miniature: an asymmetric two-tier fabric where one spine lost links so
// that covering the receivers requires two spines, and the greedy must
// pick the spine that covers the most uncovered leaves first.
func TestLayerPeelingWalkthrough(t *testing.T) {
	g := topology.LeafSpine(2, 3, 1) // spines s0,s1; leaves l0,l1,l2
	spines := g.NodesOfKind(topology.Spine)
	leaves := g.NodesOfKind(topology.Leaf)
	hosts := g.Hosts()
	// Fail s1-l1 and s1-l2: s1 only reaches l0. s0 reaches everything.
	g.FailLink(g.LinkBetween(spines[1], leaves[1]))
	g.FailLink(g.LinkBetween(spines[1], leaves[2]))

	src := hosts[0]                                // under l0
	dests := []topology.NodeID{hosts[1], hosts[2]} // under l1, l2
	tr, stats, err := LayerPeeling(g, src, dests)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Contains(spines[1]) {
		t.Fatal("greedy picked the degraded spine; max-coverage rule violated")
	}
	if !tr.Contains(spines[0]) {
		t.Fatal("greedy must route through the healthy spine")
	}
	// Optimal here: src→l0→s0→{l1,l2}→hosts = 6 edges.
	if tr.Cost() != 6 {
		t.Fatalf("cost=%d want 6", tr.Cost())
	}
	if stats.F != 4 {
		t.Fatalf("F=%d want 4", stats.F)
	}
}

func TestLowerBound(t *testing.T) {
	g := topology.FatTree(4)
	src := g.HostByCoord(0, 0, 0)
	far := g.HostByCoord(3, 1, 1) // 6 hops
	lb, err := LowerBound(g, src, []topology.NodeID{far})
	if err != nil {
		t.Fatal(err)
	}
	if lb != 6 {
		t.Fatalf("lb=%d want 6 (=F)", lb)
	}
	// Many nearby dests: |D| dominates.
	tor := g.NodesOfKind(topology.ToR)[0]
	dests := g.HostsUnder(tor)[1:]
	lb, err = LowerBound(g, src, dests)
	if err != nil {
		t.Fatal(err)
	}
	if lb != 2 {
		t.Fatalf("lb=%d want 2", lb)
	}
}

func TestExactSmallRejectsTooManyTerminals(t *testing.T) {
	g := topology.FatTree(4)
	hosts := g.Hosts()
	if _, err := ExactSmall(g, hosts[0], hosts[1:MaxExactTerminals+1]); err == nil {
		t.Fatal("expected terminal-limit error")
	}
}

func TestExactSmallTrivial(t *testing.T) {
	g := topology.FatTree(4)
	h := g.Hosts()[0]
	c, err := ExactSmall(g, h, []topology.NodeID{h})
	if err != nil || c != 0 {
		t.Fatalf("self broadcast: cost=%d err=%v", c, err)
	}
	c, err = ExactSmall(g, h, []topology.NodeID{g.Hosts()[1]})
	if err != nil || c != 2 {
		t.Fatalf("same-rack pair: cost=%d err=%v, want 2", c, err)
	}
}

func TestTreeDepthAndChildren(t *testing.T) {
	g := topology.FatTree(4)
	src := g.HostByCoord(0, 0, 0)
	dst := g.HostByCoord(2, 1, 1)
	tr, err := SymmetricOptimal(g, src, []topology.NodeID{dst})
	if err != nil {
		t.Fatal(err)
	}
	if d := tr.Depth(dst); d != 6 {
		t.Fatalf("depth=%d want 6", d)
	}
	if tr.Depth(g.HostByCoord(3, 0, 0)) != -1 {
		t.Fatal("non-member depth must be -1")
	}
	kids := tr.Children()
	total := 0
	for _, c := range kids {
		total += len(c)
	}
	if total != tr.Cost() {
		t.Fatalf("children sum %d != cost %d", total, tr.Cost())
	}
}

func TestLinkLoadsAreZeroOrOne(t *testing.T) {
	g := topology.FatTree(4)
	src := g.Hosts()[0]
	dests := g.Hosts()[1:10]
	tr, err := SymmetricOptimal(g, src, dests)
	if err != nil {
		t.Fatal(err)
	}
	loads := tr.LinkLoads(g)
	sum := 0
	for _, l := range loads {
		if l < 0 || l > 1 {
			t.Fatalf("multicast link load %d; must be 0 or 1", l)
		}
		sum += l
	}
	if sum != tr.Cost() {
		t.Fatalf("total load %d != cost %d", sum, tr.Cost())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := topology.FatTree(4)
	src := g.Hosts()[0]
	dst := g.Hosts()[9]
	tr, err := SymmetricOptimal(g, src, []topology.NodeID{dst})
	if err != nil {
		t.Fatal(err)
	}
	// Orphan a member.
	bad := tr.Members[2]
	saved := tr.Parent[bad]
	tr.Parent[bad] = topology.None
	if tr.Validate(g, nil) == nil {
		t.Fatal("validate missed orphan member")
	}
	tr.Parent[bad] = saved
	// Non-adjacent parent.
	tr.Parent[bad] = tr.Members[len(tr.Members)-1]
	if tr.Validate(g, nil) == nil {
		t.Fatal("validate missed non-edge parent")
	}
	tr.Parent[bad] = saved
	// Missing destination.
	if tr.Validate(g, []topology.NodeID{g.Hosts()[15]}) == nil {
		t.Fatal("validate missed unspanned destination")
	}
}

// Property: layer peeling always produces a valid tree whose cost respects
// both bounds, across random fabrics, failure rates and group sizes.
func TestQuickLayerPeelingBounds(t *testing.T) {
	f := func(seed int64, nd uint8, pct uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := topology.LeafSpine(4+rng.Intn(8), 6+rng.Intn(10), 1+rng.Intn(3))
		g.FailRandomFraction(float64(pct%25)/100, topology.TierLinks(topology.Spine, topology.Leaf), rng)
		n := 2 + int(nd)%10
		hosts := g.Hosts()
		if n >= len(hosts) {
			n = len(hosts) - 1
		}
		picked := pickHosts(g, rng, n+1)
		src, dests := picked[0], picked[1:]
		// Skip partitions: all destinations must be reachable.
		d := routing.BFS(g, src)
		for _, dst := range dests {
			if !d.Reachable(dst) {
				return true
			}
		}
		tr, stats, err := LayerPeeling(g, src, dests)
		if err != nil {
			return false
		}
		if tr.Validate(g, dests) != nil {
			return false
		}
		lb, err := LowerBound(g, src, dests)
		if err != nil {
			return false
		}
		minFD := len(dests)
		if int(stats.F) < minFD {
			minFD = int(stats.F)
		}
		if minFD < 1 {
			minFD = 1
		}
		return tr.Cost() >= lb && tr.Cost() <= lb*minFD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the exact solver is never beaten by any heuristic tree.
func TestQuickExactIsLowerEnvelope(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := topology.LeafSpine(3, 5, 2)
		g.FailRandomFraction(0.1, topology.TierLinks(topology.Spine, topology.Leaf), rng)
		picked := pickHosts(g, rng, 5)
		src, dests := picked[0], picked[1:]
		d := routing.BFS(g, src)
		for _, dst := range dests {
			if !d.Reachable(dst) {
				return true
			}
		}
		tr, _, err := LayerPeeling(g, src, dests)
		if err != nil {
			return false
		}
		exact, err := ExactSmall(g, src, dests)
		if err != nil {
			return false
		}
		lb, _ := LowerBound(g, src, dests)
		return exact <= tr.Cost() && exact >= lb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickVariantsEqualCostAndValid(t *testing.T) {
	g := topology.FatTree(8)
	hosts := g.Hosts()
	f := func(seed int64, v uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(len(hosts))
		n := 3 + rng.Intn(30)
		src := hosts[perm[0]]
		dests := make([]topology.NodeID, n)
		for i := range dests {
			dests[i] = hosts[perm[1+i]]
		}
		base, err := SymmetricOptimal(g, src, dests)
		if err != nil {
			return false
		}
		tv, err := SymmetricOptimalVariant(g, src, dests, uint64(v))
		if err != nil {
			return false
		}
		if tv.Validate(g, dests) != nil {
			return false
		}
		return tv.Cost() == base.Cost()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestVariantsOnOversubscribedFabric(t *testing.T) {
	g := topology.FatTree(8)
	g.Oversubscribe(2)
	hosts := g.Hosts()
	src, dests := hosts[0], hosts[40:60]
	for v := uint64(0); v < 4; v++ {
		tr, err := SymmetricOptimalVariant(g, src, dests, v)
		if err != nil {
			t.Fatalf("variant %d: %v", v, err)
		}
		if err := tr.Validate(g, dests); err != nil {
			t.Fatalf("variant %d: %v", v, err)
		}
		for _, l := range tr.Links(g) {
			if g.Link(l).Failed {
				t.Fatalf("variant %d uses failed link", v)
			}
		}
	}
}
