// Package steiner implements multicast tree construction in Clos fabrics —
// the algorithmic core of the PEEL paper (§2):
//
//   - SymmetricOptimal: the provably minimum-cost tree on failure-free
//     leaf–spine and fat-tree fabrics via the super-node argument
//     (Lemma 2.1, generalized to three tiers).
//   - LayerPeeling: the paper's greedy O(min(F,|D|))-approximation for
//     asymmetric (failed) Clos fabrics (§2.3).
//   - ExactSmall: a Dreyfus–Wagner exact Steiner solver, exponential in the
//     terminal count, used as an optimality yardstick on small instances.
//   - LowerBound: the max(F,|D|) bound of Lemma 2.4.
//
// Trees are rooted at the source host and directed downward; cost is the
// number of edges (unit link costs, as in the paper).
package steiner

import (
	"fmt"

	"peel/internal/topology"
)

// Tree is a multicast distribution tree rooted at Source. Parent[n] is n's
// parent for members, topology.None otherwise; Parent[Source] is None.
type Tree struct {
	Source topology.NodeID
	Parent []topology.NodeID
	// Members lists tree nodes in insertion order; Source is first.
	Members []topology.NodeID

	children [][]topology.NodeID // lazy
}

// newTree allocates an empty tree over a graph with n nodes.
func newTree(src topology.NodeID, n int) *Tree {
	t := &Tree{Source: src, Parent: make([]topology.NodeID, n)}
	for i := range t.Parent {
		t.Parent[i] = topology.None
	}
	t.Members = append(t.Members, src)
	return t
}

// add records parent(child) = parent, adding child to the member list.
// Both re-adding a member and orphan parents are construction bugs and
// panic.
func (t *Tree) add(child, parent topology.NodeID) {
	if t.Parent[child] != topology.None || child == t.Source {
		panic(fmt.Sprintf("steiner: node %d added twice", child))
	}
	t.Parent[child] = parent
	t.Members = append(t.Members, child)
	t.children = nil
}

// Contains reports whether n is in the tree.
func (t *Tree) Contains(n topology.NodeID) bool {
	return n == t.Source || t.Parent[n] != topology.None
}

// Cost is the number of edges in the tree.
func (t *Tree) Cost() int { return len(t.Members) - 1 }

// NumSwitches counts non-host members, matching the paper's |T| accounting
// (Lemma 2.3 counts switches added per layer).
func (t *Tree) NumSwitches(g *topology.Graph) int {
	n := 0
	for _, m := range t.Members {
		if g.Node(m).Kind.IsSwitch() {
			n++
		}
	}
	return n
}

// Children returns the child lists, computed on first use and cached.
func (t *Tree) Children() [][]topology.NodeID {
	if t.children == nil {
		t.children = make([][]topology.NodeID, len(t.Parent))
		for _, m := range t.Members {
			if p := t.Parent[m]; p != topology.None {
				t.children[p] = append(t.children[p], m)
			}
		}
	}
	return t.children
}

// Links returns the link IDs the tree uses. It panics if a tree edge has
// no live link — trees must only be built over live edges.
func (t *Tree) Links(g *topology.Graph) []topology.LinkID {
	out := make([]topology.LinkID, 0, t.Cost())
	for _, m := range t.Members {
		if p := t.Parent[m]; p != topology.None {
			l := g.LinkBetween(p, m)
			if l < 0 {
				panic(fmt.Sprintf("steiner: tree edge %d-%d has no live link", p, m))
			}
			out = append(out, l)
		}
	}
	return out
}

// Depth returns the hop distance from the source to n within the tree, or
// -1 if n is not a member.
func (t *Tree) Depth(n topology.NodeID) int {
	if !t.Contains(n) {
		return -1
	}
	d := 0
	for n != t.Source {
		n = t.Parent[n]
		d++
		if d > len(t.Members) {
			return -1 // cycle guard; Validate reports it properly
		}
	}
	return d
}

// Validate checks that the tree is rooted at src, acyclic, spans every
// destination, and uses only live links of g.
func (t *Tree) Validate(g *topology.Graph, dests []topology.NodeID) error {
	if t.Parent[t.Source] != topology.None {
		return fmt.Errorf("steiner: source has a parent")
	}
	seen := make(map[topology.NodeID]bool, len(t.Members))
	for _, m := range t.Members {
		if seen[m] {
			return fmt.Errorf("steiner: duplicate member %d", m)
		}
		seen[m] = true
	}
	for _, m := range t.Members {
		if m == t.Source {
			continue
		}
		p := t.Parent[m]
		if p == topology.None {
			return fmt.Errorf("steiner: member %d has no parent", m)
		}
		if !seen[p] {
			return fmt.Errorf("steiner: member %d has non-member parent %d", m, p)
		}
		if g.LinkBetween(p, m) < 0 {
			return fmt.Errorf("steiner: edge %d-%d is not a live link", p, m)
		}
	}
	// Acyclicity + connectivity: every member must reach the source.
	for _, m := range t.Members {
		steps := 0
		for n := m; n != t.Source; n = t.Parent[n] {
			steps++
			if steps > len(t.Members) {
				return fmt.Errorf("steiner: cycle reachable from member %d", m)
			}
		}
	}
	for _, d := range dests {
		if !t.Contains(d) {
			return fmt.Errorf("steiner: destination %d not spanned", d)
		}
	}
	return nil
}

// LinkLoads returns, for each link ID, how many times a single message
// traverses it under this multicast tree: exactly once per tree link and
// zero elsewhere. The unicast baselines in internal/collective produce the
// contrasting per-link loads for Fig. 1.
func (t *Tree) LinkLoads(g *topology.Graph) []int {
	loads := make([]int, g.NumLinks())
	for _, l := range t.Links(g) {
		loads[l]++
	}
	return loads
}
