package steiner

import (
	"errors"
	"fmt"
	"sync"

	"peel/internal/invariant"
	"peel/internal/routing"
	"peel/internal/topology"
)

// Incremental tree repair (graft instead of re-peel).
//
// A link failure rarely disconnects more than a small subtree of a
// multicast tree, yet re-running LayerPeeling pays the full O(V+E) build
// every time. Repair patches instead: classify the old tree's members as
// alive (still connected to the source over live edges) or orphaned,
// prune dead and receiver-less branches, then re-attach each orphaned
// receiver via a bounded BFS from the orphan into the surviving tree —
// the cheapest still-valid graft under unit link costs. Elmo-style
// multicast state patching, applied to the paper's peeled trees.
//
// Repair is conservative by design: when the orphaned set, the graft
// radius, or the patched cost exceeds RepairPolicy's bounds it refuses
// (ErrRepairFallback) and the caller rebuilds from scratch. The patched
// tree never mutates the input tree, so cached trees shared across
// goroutines stay immutable.

// SteinerRepairedTreeValid is the differential invariant for patched
// trees: a repaired tree must validate on the degraded graph, span every
// receiver, and stay inside Theorem 2.5's cost envelope — the budget a
// fresh layer-peeling is guaranteed to meet.
const SteinerRepairedTreeValid = "steiner.repaired-tree-valid"

func init() {
	invariant.Register(invariant.Checker{
		Name:   SteinerRepairedTreeValid,
		Anchor: "incremental repair correctness",
		Desc:   "patched trees are valid on the degraded graph, cover all receivers, and cost within a fresh peel's Theorem 2.5 budget",
	})
}

// ErrRepairFallback reports that a patch would exceed the repair policy's
// bounds (too many orphans, no graft within the radius, patched cost too
// high); the caller must rebuild the tree from scratch.
var ErrRepairFallback = errors.New("steiner: repair exceeds policy bounds, full rebuild required")

// RepairPolicy bounds the incremental repair path. Zero values select the
// defaults of DefaultRepairPolicy.
type RepairPolicy struct {
	// MaxRadius caps the graft search: an orphaned receiver must reach the
	// surviving tree within this many live hops or the repair falls back.
	MaxRadius int
	// MaxCostRatio caps the patched tree's cost relative to the old
	// tree's: patched > ratio × old falls back to a full build.
	MaxCostRatio float64
	// MaxOrphanFrac caps the orphaned share of the receiver set; when a
	// failure disconnects more than this fraction a fresh peel is at least
	// as cheap as grafting, so the repair falls back.
	MaxOrphanFrac float64
}

// DefaultRepairPolicy bounds grafts at the fat-tree diameter, patched
// cost at 1.5× the old tree, and the orphaned share at half the group.
func DefaultRepairPolicy() RepairPolicy {
	return RepairPolicy{MaxRadius: 6, MaxCostRatio: 1.5, MaxOrphanFrac: 0.5}
}

func (p RepairPolicy) normalized() RepairPolicy {
	d := DefaultRepairPolicy()
	if p.MaxRadius <= 0 {
		p.MaxRadius = d.MaxRadius
	}
	if p.MaxCostRatio <= 0 {
		p.MaxCostRatio = d.MaxCostRatio
	}
	if p.MaxOrphanFrac <= 0 {
		p.MaxOrphanFrac = d.MaxOrphanFrac
	}
	return p
}

// RepairStats reports what one Repair call did.
type RepairStats struct {
	// Orphaned counts receivers that had lost their live path to the
	// source (including receivers absent from the old tree).
	Orphaned int
	// Grafts counts orphaned receivers re-attached.
	Grafts int
	// GraftEdges counts edges added by grafting — the new forwarding rules
	// a controller must install. Zero means the surviving tree already
	// covers every receiver and the repair is pure pruning.
	GraftEdges int
	// Pruned counts members removed: orphaned subtrees plus surviving
	// branches left without receivers.
	Pruned int
	// NoChange reports that the patched tree is member-identical to the
	// old tree (nothing orphaned, nothing pruned).
	NoChange bool
	// FellBack is set by core.RepairTree when the policy refused the patch
	// and a full build produced the returned tree.
	FellBack bool
}

// repairScratch is the pooled working state of one Repair call, following
// the peelScratch touched-list idiom: node-indexed arrays are reset via
// the lists of indexes actually written, so a repair costs O(tree + graft
// search), not O(nodes).
type repairScratch struct {
	state    []int8            // 0 untouched, 1 in patched tree, 2 orphaned old member
	touched  []topology.NodeID // state indexes set
	isDest   []bool
	destTch  []topology.NodeID
	childCnt []int32
	cntTch   []topology.NodeID
	stack    []topology.NodeID // classification walks + prune queue
	orphans  []topology.NodeID
	nbr      []topology.NodeID
	// Bounded graft BFS: dist doubles as the visited mark (-1 = unseen),
	// from records the discovery predecessor (toward the orphan).
	dist  []int32
	from  []topology.NodeID
	seen  []topology.NodeID
	queue []topology.NodeID
}

var repairPool = sync.Pool{New: func() any { return new(repairScratch) }}

func grabRepairScratch(n int) *repairScratch {
	s := repairPool.Get().(*repairScratch)
	if cap(s.state) < n {
		s.state = make([]int8, n)
		s.isDest = make([]bool, n)
		s.childCnt = make([]int32, n)
		s.dist = make([]int32, n)
		s.from = make([]topology.NodeID, n)
		for i := range s.dist {
			s.dist[i] = -1
		}
	}
	s.state = s.state[:n]
	s.isDest = s.isDest[:n]
	s.childCnt = s.childCnt[:n]
	s.dist = s.dist[:n]
	s.from = s.from[:n]
	return s
}

func (s *repairScratch) release() {
	for _, id := range s.touched {
		s.state[id] = 0
	}
	for _, id := range s.destTch {
		s.isDest[id] = false
	}
	for _, id := range s.cntTch {
		s.childCnt[id] = 0
	}
	for _, id := range s.seen {
		s.dist[id] = -1
	}
	s.touched = s.touched[:0]
	s.destTch = s.destTch[:0]
	s.cntTch = s.cntTch[:0]
	s.seen = s.seen[:0]
	s.stack = s.stack[:0]
	s.orphans = s.orphans[:0]
	s.queue = s.queue[:0]
	repairPool.Put(s)
}

func (s *repairScratch) setState(id topology.NodeID, v int8) {
	if s.state[id] == 0 {
		s.touched = append(s.touched, id)
	}
	s.state[id] = v
}

// Repair patches old — built before the failure — into a new tree over
// the current (degraded) graph covering dests, without mutating old. See
// RepairInto for the algorithm; Repair allocates the result tree.
func Repair(g *topology.Graph, old *Tree, dests []topology.NodeID, pol RepairPolicy) (*Tree, RepairStats, error) {
	dst := &Tree{}
	stats, err := RepairInto(dst, g, old, dests, pol)
	if err != nil {
		return nil, stats, err
	}
	return dst, stats, nil
}

// RepairInto is the allocation-free repair primitive: it rebuilds dst in
// place (reusing its storage when large enough) as the patched version of
// old. dests must be the receivers the patched tree has to span — they
// may be a subset of old's receivers (the collective runner repairs onto
// still-pending receivers only); receivers missing from old are treated
// as orphans and grafted like the rest.
//
// The algorithm, in four passes over the old tree (never the whole
// graph):
//
//  1. Classify: walk each member's parent chain over live edges;
//     memoized per node, so the pass is O(members). Members whose chain
//     reaches the source are alive, the rest orphaned.
//  2. Rebuild: copy the alive members into dst (the surviving tree).
//  3. Prune: repeatedly drop leaves that are neither receivers nor the
//     source — dead subtrees and branches whose receivers all left.
//  4. Graft: for each orphaned receiver (ascending ID, deterministic), a
//     bounded BFS over live links — expanding only through switches not
//     yet in the tree — finds the nearest attach point (a surviving
//     switch or the source) within MaxRadius hops; the path joins dst,
//     so later orphans can share earlier grafts.
//
// Old is read-only throughout (cached trees are shared across
// goroutines); in particular Repair never touches old's lazy child-list
// cache.
func RepairInto(dst *Tree, g *topology.Graph, old *Tree, dests []topology.NodeID, pol RepairPolicy) (RepairStats, error) {
	var stats RepairStats
	pol = pol.normalized()
	n := len(old.Parent)
	if n < g.NumNodes() {
		return stats, fmt.Errorf("steiner: repair: tree spans %d nodes, graph has %d", n, g.NumNodes())
	}
	src := old.Source
	sc := grabRepairScratch(n)
	defer sc.release()

	// Pass 1: classify old members as alive (1) or orphaned (2).
	sc.setState(src, 1)
	for _, m := range old.Members {
		if sc.state[m] != 0 {
			continue
		}
		// Push the unknown prefix of m's parent chain, then resolve it
		// backward from the first classified node (or a dead edge).
		stack := sc.stack[:0]
		cur := m
		verdict := int8(1)
		for {
			stack = append(stack, cur)
			if len(stack) > n {
				verdict = 2 // cycle in a corrupted input tree: treat as orphaned
				break
			}
			p := old.Parent[cur]
			if p == topology.None {
				verdict = 2 // non-source member without a parent: orphaned
				break
			}
			if g.LinkBetween(p, cur) < 0 {
				verdict = 2 // the edge above cur died
				break
			}
			if st := sc.state[p]; st != 0 {
				verdict = st
				break
			}
			cur = p
		}
		for _, nd := range stack {
			sc.setState(nd, verdict)
		}
		sc.stack = stack[:0]
	}

	// Pass 2: rebuild dst from the survivors, preserving old's member
	// order (parents precede children, since an alive node's parent is
	// alive and already listed).
	if cap(dst.Parent) < n {
		dst.Parent = make([]topology.NodeID, n)
		for i := range dst.Parent {
			dst.Parent[i] = topology.None
		}
	} else {
		prev := dst.Parent // previous length, in case dst spanned another graph
		dst.Parent = dst.Parent[:n]
		for _, m := range dst.Members {
			prev[m] = topology.None
		}
		for i := len(prev); i < n; i++ {
			dst.Parent[i] = topology.None
		}
	}
	dst.Source = src
	dst.Members = append(dst.Members[:0], src)
	dst.children = nil
	for _, m := range old.Members {
		if m == src || sc.state[m] != 1 {
			continue
		}
		dst.Parent[m] = old.Parent[m]
		dst.Members = append(dst.Members, m)
	}

	// Receiver marks; count the orphaned receivers against the policy.
	nd := 0
	for _, d := range dests {
		if d == src || sc.isDest[d] {
			continue
		}
		sc.isDest[d] = true
		sc.destTch = append(sc.destTch, d)
		nd++
		if sc.state[d] != 1 {
			sc.orphans = append(sc.orphans, d)
		}
	}
	stats.Orphaned = len(sc.orphans)
	if nd == 0 {
		// Degenerate self-send: no receivers to serve, so the patched tree
		// is the bare source.
		for _, m := range dst.Members[1:] {
			dst.Parent[m] = topology.None
			sc.setState(m, 0)
		}
		stats.Pruned = len(old.Members) - 1
		dst.Members = dst.Members[:1]
		stats.NoChange = stats.Pruned == 0
		return stats, nil
	}
	if float64(stats.Orphaned) > pol.MaxOrphanFrac*float64(nd) {
		return stats, fmt.Errorf("%w: %d of %d receivers orphaned", ErrRepairFallback, stats.Orphaned, nd)
	}

	// Pass 3: prune receiver-less leaves from the surviving tree.
	for _, m := range dst.Members {
		if p := dst.Parent[m]; p != topology.None {
			if sc.childCnt[p] == 0 {
				sc.cntTch = append(sc.cntTch, p)
			}
			sc.childCnt[p]++
		}
	}
	queue := sc.stack[:0]
	for _, m := range dst.Members {
		if m != src && sc.childCnt[m] == 0 && !sc.isDest[m] {
			queue = append(queue, m)
		}
	}
	for len(queue) > 0 {
		m := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		p := dst.Parent[m]
		dst.Parent[m] = topology.None
		sc.setState(m, 0)
		stats.Pruned++
		if p != src {
			sc.childCnt[p]--
			if sc.childCnt[p] == 0 && !sc.isDest[p] {
				queue = append(queue, p)
			}
		}
	}
	sc.stack = queue[:0]
	if stats.Pruned > 0 {
		kept := dst.Members[:1] // source stays
		for _, m := range dst.Members[1:] {
			if dst.Parent[m] != topology.None {
				kept = append(kept, m)
			}
		}
		dst.Members = kept
	}
	stats.Pruned += countPruned(old, sc)

	// Pass 4: graft each orphaned receiver (ascending ID) into the
	// surviving tree via bounded BFS.
	insertionSortNodes(sc.orphans)
	for _, o := range sc.orphans {
		if sc.state[o] == 1 {
			continue // attached as an intermediate of an earlier graft
		}
		attach, err := sc.graftSearch(g, src, o, pol.MaxRadius)
		if err != nil {
			return stats, err
		}
		// Walk the discovery chain from the attach point back down to the
		// orphan, adding each hop with the previous one as parent.
		for cur := attach; cur != o; {
			child := sc.from[cur]
			dst.Parent[child] = cur
			dst.Members = append(dst.Members, child)
			sc.setState(child, 1)
			stats.GraftEdges++
			cur = child
		}
		stats.Grafts++
	}

	if old.Cost() > 0 && float64(dst.Cost()) > pol.MaxCostRatio*float64(old.Cost()) {
		return stats, fmt.Errorf("%w: patched cost %d exceeds %.2g× old cost %d",
			ErrRepairFallback, dst.Cost(), pol.MaxCostRatio, old.Cost())
	}
	stats.NoChange = stats.GraftEdges == 0 && stats.Pruned == 0
	return stats, nil
}

// graftSearch runs the bounded BFS from orphan o over live links, routing
// only through switches outside the tree, until it discovers a node of
// the surviving tree that may replicate (a switch or the source). It
// returns that attach point; sc.from then traces the path back to o.
// Deterministic: FIFO expansion over the graph's fixed adjacency order.
func (sc *repairScratch) graftSearch(g *topology.Graph, src, o topology.NodeID, radius int) (topology.NodeID, error) {
	for _, id := range sc.seen {
		sc.dist[id] = -1
	}
	sc.seen = sc.seen[:0]
	sc.dist[o] = 0
	sc.seen = append(sc.seen, o)
	queue := append(sc.queue[:0], o)
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		d := sc.dist[cur]
		if int(d) >= radius {
			break // FIFO: every later entry is at least this far out
		}
		sc.nbr = g.Neighbors(cur, sc.nbr[:0])
		for _, nb := range sc.nbr {
			if sc.dist[nb] >= 0 {
				continue
			}
			sc.dist[nb] = d + 1
			sc.seen = append(sc.seen, nb)
			sc.from[nb] = cur
			if sc.state[nb] == 1 && (g.Node(nb).Kind.IsSwitch() || nb == src) {
				sc.queue = queue[:0]
				return nb, nil
			}
			if g.Node(nb).Kind.IsSwitch() && sc.state[nb] != 1 {
				queue = append(queue, nb)
			}
		}
	}
	sc.queue = queue[:0]
	return topology.None, fmt.Errorf("%w: no graft for receiver %d within %d hops", ErrRepairFallback, o, radius)
}

// countPruned counts old members that classified as orphaned — they were
// dropped with their subtrees during the rebuild.
func countPruned(old *Tree, sc *repairScratch) int {
	n := 0
	for _, m := range old.Members {
		if sc.state[m] == 2 {
			n++
		}
	}
	return n
}

// insertionSortNodes sorts a small node slice ascending without
// allocating (the orphan set of a single link failure is tiny).
func insertionSortNodes(s []topology.NodeID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// ReportRepairChecks reports the steiner.repaired-tree-valid differential
// invariant for a patched tree: validity on the degraded graph (spanning
// every receiver over live links) and Theorem 2.5's cost envelope
// [lb, lb·min(F,|D|)] computed fresh on the degraded graph — the budget
// any fresh layer-peeling of the same group is guaranteed to meet, so a
// patched tree inside it is never categorically worse than a rebuild.
func ReportRepairChecks(s *invariant.Suite, g *topology.Graph, t *Tree, dests []topology.NodeID) {
	if s == nil {
		return
	}
	err := t.Validate(g, dests)
	if !s.Checkf(SteinerRepairedTreeValid, err == nil, "patched tree invalid: %v", err) {
		return
	}
	d := routing.BorrowBFS(g, t.Source)
	defer d.Release()
	f, ferr := d.Farthest(dests)
	if ferr != nil {
		s.Violatef(SteinerRepairedTreeValid, "patched tree has unreachable destination: %v", ferr)
		return
	}
	nd := 0
	for _, dst := range dests {
		if dst != t.Source {
			nd++ // dests are de-duplicated by the repair callers
		}
	}
	if nd == 0 {
		return
	}
	cost := t.Cost()
	lb := nd
	if int(f) > lb {
		lb = int(f)
	}
	minFD := nd
	if int(f) < minFD {
		minFD = int(f)
	}
	if minFD < 1 {
		minFD = 1
	}
	s.Checkf(SteinerRepairedTreeValid, cost >= lb && cost <= lb*minFD,
		"patched cost %d outside fresh-peel budget [%d, %d] (F=%d |D|=%d)", cost, lb, lb*minFD, f, nd)
}

// PeelCostBudget returns Theorem 2.5's cost envelope for a fresh peel of
// dests on g: [lb, lb·min(F,|D|)] with lb = max(F, |D|). The federation
// oracle uses it to accept patched answers that are valid but not
// byte-identical to its own fresh build.
func PeelCostBudget(g *topology.Graph, src topology.NodeID, dests []topology.NodeID) (lb, ub int, err error) {
	d := routing.BorrowBFS(g, src)
	defer d.Release()
	f, err := d.Farthest(dests)
	if err != nil {
		return 0, 0, err
	}
	nd := 0
	for _, dst := range dests {
		if dst != src {
			nd++
		}
	}
	if nd == 0 {
		return 0, 0, nil
	}
	lb = nd
	if int(f) > lb {
		lb = int(f)
	}
	minFD := nd
	if int(f) < minFD {
		minFD = int(f)
	}
	if minFD < 1 {
		minFD = 1
	}
	return lb, lb * minFD, nil
}
