package steiner

import (
	"testing"

	"peel/internal/invariant"
	"peel/internal/topology"
)

// Mutation self-tests for the tree checkers, built over a 2-spine
// 2-leaf fabric with two hosts per leaf.

// mutationFabric returns the graph plus the nodes the tests corrupt:
// source host, a co-leaf destination host, their leaf, a spine, and the
// other leaf.
func mutationFabric(t *testing.T) (g *topology.Graph, src, dst, leaf, spine, leaf2 topology.NodeID) {
	t.Helper()
	g = topology.LeafSpine(2, 2, 2)
	hosts := g.Hosts()
	src = hosts[0]
	for _, he := range g.Adj(src) {
		leaf = he.Peer
	}
	for _, he := range g.Adj(leaf) {
		switch {
		case g.Node(he.Peer).Kind == topology.Host && he.Peer != src:
			dst = he.Peer
		case g.Node(he.Peer).Kind.IsSwitch():
			spine = he.Peer
		}
	}
	for _, he := range g.Adj(spine) {
		if he.Peer != leaf {
			leaf2 = he.Peer
		}
	}
	return g, src, dst, leaf, spine, leaf2
}

func TestMutationTreeValidFires(t *testing.T) {
	g, src, dst, leaf, spine, _ := mutationFabric(t)
	tr := newTree(src, g.NumNodes())
	tr.add(leaf, src)
	tr.add(dst, leaf)
	tr.Parent[dst] = spine // corrupt: spine is not dst's neighbor

	s := invariant.NewSuite()
	ReportTreeChecks(s, g, tr, []topology.NodeID{dst})
	if s.Violations(invariant.SteinerTreeValid) == 0 {
		t.Fatal("tree-valid checker did not fire on a corrupted parent edge")
	}
}

func TestMutationPeelBoundFires(t *testing.T) {
	g, src, dst, leaf, spine, leaf2 := mutationFabric(t)
	// A perfectly valid tree that wastes edges: the spine/leaf2 detour
	// pushes cost to 4 while the bound for (F=2, |D|=1) is exactly 2.
	tr := newTree(src, g.NumNodes())
	tr.add(leaf, src)
	tr.add(dst, leaf)
	tr.add(spine, leaf)
	tr.add(leaf2, spine)

	s := invariant.NewSuite()
	ReportTreeChecks(s, g, tr, []topology.NodeID{dst})
	if s.Violations(invariant.SteinerTreeValid) != 0 {
		t.Fatalf("detour tree should still be valid: %s", s.FirstFailure(invariant.SteinerTreeValid))
	}
	if s.Violations(invariant.SteinerPeelBound) == 0 {
		t.Fatal("peel-bound checker did not fire on an over-budget tree")
	}
}
