package perfstats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCollectorAggregatesConcurrently(t *testing.T) {
	var c Collector
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Record(10, time.Millisecond)
			}
		}()
	}
	wg.Wait()
	s := c.Summary()
	if s.Runs != 800 || s.Events != 8000 || s.SimWall != 800*time.Millisecond {
		t.Fatalf("summary %+v", s)
	}
}

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.Record(5, time.Second) // must not panic
	if s := c.Summary(); s.Runs != 0 {
		t.Fatalf("nil collector recorded: %+v", s)
	}
}

func TestNoteMentionsThroughput(t *testing.T) {
	var c Collector
	c.Record(2_000_000, 2*time.Second)
	n := c.Note(time.Second, 42)
	if !strings.Contains(n, "events/s") || !strings.Contains(n, "2.00x") {
		t.Fatalf("note %q", n)
	}
}

func TestParseGoBench(t *testing.T) {
	const out = `goos: linux
goarch: amd64
pkg: peel
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkLayerPeelingTree-4     	    3770	     61302 ns/op	   34032 B/op	     200 allocs/op
BenchmarkHeaderCodec            	 2503220	        98.30 ns/op	       8 B/op	       1 allocs/op
BenchmarkNoMem-8 	 100	 5000 ns/op
BenchmarkFlapChurnRecompute/patch-8   	   50000	       991.9 ns/op	     21684 p99-ns
PASS
ok  	peel	1.823s
`
	bs, err := ParseGoBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 4 {
		t.Fatalf("parsed %d benchmarks: %+v", len(bs), bs)
	}
	lp := bs[0]
	if lp.Name != "BenchmarkLayerPeelingTree" || lp.Iterations != 3770 ||
		lp.NsPerOp != 61302 || lp.BytesPerOp != 34032 || lp.AllocsPerOp != 200 {
		t.Fatalf("bad parse %+v", lp)
	}
	if bs[1].NsPerOp != 98.30 || bs[1].AllocsPerOp != 1 {
		t.Fatalf("bad parse %+v", bs[1])
	}
	if bs[2].Name != "BenchmarkNoMem" || bs[2].BytesPerOp != 0 {
		t.Fatalf("bad parse %+v", bs[2])
	}
	if bs[3].Name != "BenchmarkFlapChurnRecompute/patch" || bs[3].Metrics["p99-ns"] != 21684 {
		t.Fatalf("custom metric not parsed: %+v", bs[3])
	}
}

func TestBenchReportRoundTrip(t *testing.T) {
	rep := NewBenchReport("baseline", "seed state", []Benchmark{{Name: "BenchmarkX", Iterations: 1, NsPerOp: 2}})
	var sb strings.Builder
	if err := rep.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	s := sb.String()
	for _, want := range []string{`"label": "baseline"`, `"BenchmarkX"`, `"gomaxprocs"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("json missing %s:\n%s", want, s)
		}
	}
}
