// Package perfstats is the evaluation harness's performance observability
// layer: per-run event/wall-time accounting aggregated across the
// (possibly parallel) simulations of one figure, heap-allocation
// deltas, and a parser/writer for `go test -bench` output so kernel
// benchmark results can be tracked as checked-in BENCH_*.json files
// (scripts/bench.sh).
package perfstats

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Collector aggregates run statistics from concurrent simulation runs.
// The zero value is ready to use; a nil *Collector ignores Record calls,
// so harness code can thread one unconditionally.
type Collector struct {
	mu      sync.Mutex
	runs    int
	events  uint64
	simWall time.Duration
}

// Record adds one simulation run's event count and wall time.
func (c *Collector) Record(events uint64, wall time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.runs++
	c.events += events
	c.simWall += wall
	c.mu.Unlock()
}

// Summary is a snapshot of the collected totals.
type Summary struct {
	Runs    int           // simulation runs recorded
	Events  uint64        // events processed across all runs
	SimWall time.Duration // summed per-run wall time (≈ CPU time when parallel)
}

// Summary returns the totals so far.
func (c *Collector) Summary() Summary {
	if c == nil {
		return Summary{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Summary{Runs: c.runs, Events: c.events, SimWall: c.simWall}
}

// Note renders a single-line digest for Result.Notes: run count, total
// events, elapsed wall clock, aggregate throughput, and the parallel
// speedup implied by summed run time vs elapsed time.
func (c *Collector) Note(elapsed time.Duration, allocs uint64) string {
	s := c.Summary()
	eps := 0.0
	if elapsed > 0 {
		eps = float64(s.Events) / elapsed.Seconds()
	}
	speedup := 1.0
	if elapsed > 0 && s.SimWall > 0 {
		speedup = s.SimWall.Seconds() / elapsed.Seconds()
	}
	return fmt.Sprintf("perf: %d runs, %.3gM events in %v (%.3gM events/s, %.2fx parallel speedup, %.3gM allocs)",
		s.Runs, float64(s.Events)/1e6, elapsed.Round(time.Millisecond), eps/1e6, speedup, float64(allocs)/1e6)
}

// MemAllocs returns the process's cumulative heap allocation count
// (runtime.MemStats.Mallocs); differences bracket a workload's
// allocation cost. It stops the world briefly — call it per figure, not
// per run.
func MemAllocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units (e.g. the flap-churn
	// benchmark's "p99-ns") keyed by unit name.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// BenchReport is the schema of a checked-in BENCH_*.json file.
type BenchReport struct {
	Label      string      `json:"label"`
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Note       string      `json:"note,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// ParseGoBench extracts benchmark lines from `go test -bench` output.
// Unparseable lines (headers, PASS/ok, logs) are skipped.
func ParseGoBench(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Minimum: Name iters ns/op-value "ns/op"
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		iters, err1 := strconv.ParseInt(fields[1], 10, 64)
		ns, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		b := Benchmark{Name: trimProcSuffix(fields[0]), Iterations: iters, NsPerOp: ns}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				b.BytesPerOp = int64(v)
			case "allocs/op":
				b.AllocsPerOp = int64(v)
			default:
				// Custom b.ReportMetric units (p99-ns and friends).
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[fields[i+1]] = v
			}
		}
		out = append(out, b)
	}
	return out, sc.Err()
}

// trimProcSuffix drops the -N GOMAXPROCS suffix go test appends to
// benchmark names, so reports from different machines share keys.
func trimProcSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// NewBenchReport stamps a report with the build environment.
func NewBenchReport(label, note string, benchmarks []Benchmark) BenchReport {
	return BenchReport{
		Label:      label,
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note:       note,
		Benchmarks: benchmarks,
	}
}

// WriteJSON writes the report, indented, with a trailing newline.
func (r BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
