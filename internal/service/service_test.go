package service

import (
	"context"
	"errors"
	"slices"
	"sync"
	"testing"

	"peel/internal/invariant"
	"peel/internal/invariant/invtest"
	"peel/internal/steiner"
	"peel/internal/telemetry"
	"peel/internal/topology"
)

func newTestService(t *testing.T, k int, opts Options) (*Service, *topology.Graph) {
	t.Helper()
	g := topology.FatTree(k)
	s := New(g, opts)
	t.Cleanup(s.Close)
	return s, g
}

func TestGroupLifecycle(t *testing.T) {
	s, g := newTestService(t, 4, Options{})
	hosts := g.Hosts()

	gi, err := s.CreateGroup(context.Background(), "j1", []topology.NodeID{hosts[2], hosts[0], hosts[1]})
	if err != nil {
		t.Fatal(err)
	}
	if gi.Source != hosts[2] {
		t.Fatalf("source = %d, want members[0] = %d", gi.Source, hosts[2])
	}
	if !slices.IsSorted(gi.Members) || len(gi.Members) != 3 {
		t.Fatalf("members not canonical: %v", gi.Members)
	}
	if _, err := s.CreateGroup(context.Background(), "j1", gi.Members); !errors.Is(err, ErrGroupExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if _, err := s.CreateGroup(context.Background(), "bad", []topology.NodeID{hosts[0], 99999}); !errors.Is(err, ErrBadMember) {
		t.Fatalf("bad member: %v", err)
	}
	// A switch is not a valid member either.
	sw := g.EdgeSwitchOf(hosts[0])
	if _, err := s.CreateGroup(context.Background(), "bad", []topology.NodeID{hosts[0], sw}); !errors.Is(err, ErrBadMember) {
		t.Fatalf("switch member: %v", err)
	}
	if _, err := s.CreateGroup(context.Background(), "tiny", []topology.NodeID{hosts[0], hosts[0]}); !errors.Is(err, ErrGroupTooSmall) {
		t.Fatalf("tiny group: %v", err)
	}

	gi, err = s.Join(context.Background(), "j1", hosts[5])
	if err != nil {
		t.Fatal(err)
	}
	if gi.Version != 1 || len(gi.Members) != 4 {
		t.Fatalf("after join: version %d members %v", gi.Version, gi.Members)
	}
	// Joining a current member is a no-op.
	gi2, err := s.Join(context.Background(), "j1", hosts[5])
	if err != nil || gi2.Version != 1 {
		t.Fatalf("idempotent join: %v version %d", err, gi2.Version)
	}

	if _, err := s.Leave(context.Background(), "j1", hosts[9]); !errors.Is(err, ErrNotMember) {
		t.Fatalf("leave non-member: %v", err)
	}
	// The source leaving promotes the lowest remaining member.
	gi, err = s.Leave(context.Background(), "j1", hosts[2])
	if err != nil {
		t.Fatal(err)
	}
	if gi.Source != gi.Members[0] || slices.Contains(gi.Members, hosts[2]) {
		t.Fatalf("source promotion: %+v", gi)
	}
	for len(gi.Members) > 2 {
		if gi, err = s.Leave(context.Background(), "j1", gi.Members[len(gi.Members)-1]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Leave(context.Background(), "j1", gi.Members[1]); !errors.Is(err, ErrGroupTooSmall) {
		t.Fatalf("leave below floor: %v", err)
	}

	if err := s.DeleteGroup(context.Background(), "j1"); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteGroup(context.Background(), "j1"); !errors.Is(err, ErrNoSuchGroup) {
		t.Fatalf("double delete: %v", err)
	}
	if _, err := s.GetTree(context.Background(), "j1"); !errors.Is(err, ErrNoSuchGroup) {
		t.Fatalf("get deleted: %v", err)
	}
}

// switchLink returns a tree link with switches at both ends — one the
// planner can route around, unlike a host's single access link.
func switchLink(t *testing.T, g *topology.Graph, tree *steiner.Tree) topology.LinkID {
	t.Helper()
	for _, id := range tree.Links(g) {
		l := g.Link(id)
		if g.Node(l.A).Kind != topology.Host && g.Node(l.B).Kind != topology.Host {
			return id
		}
	}
	t.Fatalf("tree has no switch-to-switch link")
	return topology.LinkID(-1)
}

func TestGetTreeCachesAndFailureInvalidates(t *testing.T) {
	s, g := newTestService(t, 4, Options{})
	hosts := g.Hosts()
	if _, err := s.CreateGroup(context.Background(), "b", []topology.NodeID{hosts[0], hosts[4], hosts[9], hosts[13]}); err != nil {
		t.Fatal(err)
	}
	ti, err := s.GetTree(context.Background(), "b")
	if err != nil {
		t.Fatal(err)
	}
	if ti.Cached || ti.Gen != 0 {
		t.Fatalf("cold get: cached=%v gen=%d", ti.Cached, ti.Gen)
	}
	hit, err := s.GetTree(context.Background(), "b")
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached || hit.Tree != ti.Tree {
		t.Fatalf("warm get not a hit: cached=%v", hit.Cached)
	}

	// Fail a switch-level link the tree crosses: the next get recomputes
	// on the degraded graph.
	failed := switchLink(t, g, ti.Tree)
	if !s.FailLink(failed) {
		t.Fatalf("FailLink reported no transition")
	}
	if s.Gen() != 1 {
		t.Fatalf("generation = %d after one failure", s.Gen())
	}
	re, err := s.GetTree(context.Background(), "b")
	if err != nil {
		t.Fatal(err)
	}
	if re.Cached {
		t.Fatalf("served stale tree across a failure it crosses")
	}
	if re.Gen != 1 || slices.Contains(re.Tree.Links(g), failed) {
		t.Fatalf("recompute did not avoid the failed link (gen %d)", re.Gen)
	}
	if re.InstallPs <= 0 {
		t.Fatalf("failure-driven recompute charged no install latency")
	}

	// Heals do not invalidate: the degraded tree stays valid and cached.
	if !s.RestoreLink(failed) {
		t.Fatalf("RestoreLink reported no transition")
	}
	after, err := s.GetTree(context.Background(), "b")
	if err != nil {
		t.Fatal(err)
	}
	if !after.Cached {
		t.Fatalf("heal invalidated a still-valid tree")
	}
	if after.CurrentGen != 2 {
		t.Fatalf("CurrentGen = %d, want 2", after.CurrentGen)
	}
}

func TestFailureInvalidatesOnlyCrossingTrees(t *testing.T) {
	s, g := newTestService(t, 4, Options{})
	hosts := g.Hosts()
	// Group a lives in pod 0, group b in pod 3: their rack-local trees
	// share no links.
	if _, err := s.CreateGroup(context.Background(), "a", []topology.NodeID{hosts[0], hosts[2]}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateGroup(context.Background(), "b", []topology.NodeID{hosts[14], hosts[15]}); err != nil {
		t.Fatal(err)
	}
	ta, err := s.GetTree(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetTree(context.Background(), "b"); err != nil {
		t.Fatal(err)
	}
	s.FailLink(switchLink(t, g, ta.Tree))
	rb, err := s.GetTree(context.Background(), "b")
	if err != nil {
		t.Fatal(err)
	}
	if !rb.Cached {
		t.Fatalf("failure in a's tree invalidated b's unrelated tree")
	}
	ra, err := s.GetTree(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if ra.Cached {
		t.Fatalf("failure in a's tree did not invalidate it")
	}
}

func TestOverloadFailsFastAndRecovers(t *testing.T) {
	s, g := newTestService(t, 4, Options{MaxInflight: 1})
	hosts := g.Hosts()
	if _, err := s.CreateGroup(context.Background(), "o", []topology.NodeID{hosts[0], hosts[7]}); err != nil {
		t.Fatal(err)
	}
	// Exhaust the admission budget from the outside: every miss must now
	// fail fast with ErrOverloaded rather than queue.
	s.inflight <- struct{}{}
	if _, err := s.GetTree(context.Background(), "o"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	<-s.inflight
	ti, err := s.GetTree(context.Background(), "o")
	if err != nil || ti.Cached {
		t.Fatalf("recovery get: %v cached=%v", err, ti.Cached)
	}
	// Hits never pay admission: with the budget exhausted again, the
	// cached tree still serves.
	s.inflight <- struct{}{}
	defer func() { <-s.inflight }()
	hit, err := s.GetTree(context.Background(), "o")
	if err != nil || !hit.Cached {
		t.Fatalf("hit under overload: %v cached=%v", err, hit.Cached)
	}
}

func TestConcurrentColdGetsCoalesce(t *testing.T) {
	s, g := newTestService(t, 4, Options{})
	hosts := g.Hosts()
	if _, err := s.CreateGroup(context.Background(), "c", []topology.NodeID{hosts[0], hosts[5], hosts[10]}); err != nil {
		t.Fatal(err)
	}
	sink := telemetry.NewSink(0)
	defer telemetry.Enable(sink)()
	const callers = 32
	var wg sync.WaitGroup
	trees := make([]*steiner.Tree, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ti, err := s.GetTree(context.Background(), "c")
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			trees[i] = ti.Tree
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if trees[i] != trees[0] {
			t.Fatalf("caller %d got a different tree instance", i)
		}
	}
	hits := sink.Counter("service.cache.hits").Value()
	misses := sink.Counter("service.cache.misses").Value()
	coalesced := sink.Counter("service.cache.coalesced").Value()
	if hits+misses+coalesced != callers {
		t.Fatalf("hits %d + misses %d + coalesced %d != %d callers", hits, misses, coalesced, callers)
	}
	if misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 computation for one cold key", misses)
	}
}

func TestEvictionAtCap(t *testing.T) {
	s, g := newTestService(t, 4, Options{Shards: 1, CacheCap: 1})
	hosts := g.Hosts()
	if _, err := s.CreateGroup(context.Background(), "e1", []topology.NodeID{hosts[0], hosts[1]}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateGroup(context.Background(), "e2", []topology.NodeID{hosts[2], hosts[3]}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetTree(context.Background(), "e1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetTree(context.Background(), "e2"); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.CacheEntries != 1 {
		t.Fatalf("CacheEntries = %d, want 1 at cap", st.CacheEntries)
	}
	// The evicted key recomputes (and evicts the other in turn).
	ti, err := s.GetTree(context.Background(), "e1")
	if err != nil || ti.Cached {
		t.Fatalf("evicted key: %v cached=%v", err, ti.Cached)
	}
}

func TestUnreachableReceiverReportsTypedError(t *testing.T) {
	s, g := newTestService(t, 4, Options{})
	hosts := g.Hosts()
	if _, err := s.CreateGroup(context.Background(), "u", []topology.NodeID{hosts[0], hosts[1]}); err != nil {
		t.Fatal(err)
	}
	// A host has exactly one access link; failing it disconnects the
	// receiver.
	s.FailLink(g.LinkBetween(hosts[1], g.EdgeSwitchOf(hosts[1])))
	if _, err := s.GetTree(context.Background(), "u"); !errors.Is(err, steiner.ErrUnreachable) {
		t.Fatalf("want ErrUnreachable, got %v", err)
	}
}

func TestCloseDrainsAndUnsubscribes(t *testing.T) {
	g := topology.FatTree(4)
	base := g.NumObservers()
	s := New(g, Options{})
	if g.NumObservers() != base+1 {
		t.Fatalf("observer not registered")
	}
	hosts := g.Hosts()
	if _, err := s.CreateGroup(context.Background(), "d", []topology.NodeID{hosts[0], hosts[1]}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if g.NumObservers() != base {
		t.Fatalf("observer leaked across Close: %d != %d", g.NumObservers(), base)
	}
	if _, err := s.GetTree(context.Background(), "d"); !errors.Is(err, ErrDraining) {
		t.Fatalf("GetTree after Close: %v", err)
	}
	if _, err := s.CreateGroup(context.Background(), "x", []topology.NodeID{hosts[0], hosts[1]}); !errors.Is(err, ErrDraining) {
		t.Fatalf("CreateGroup after Close: %v", err)
	}
}

// TestServedTreeFreshCheckerFires is the mutation self-test: force the
// one state the protocol forbids — a stale tree whose stale flag was
// cleared — and prove the serve-time checker catches it.
func TestServedTreeFreshCheckerFires(t *testing.T) {
	s, g := newTestService(t, 4, Options{})
	hosts := g.Hosts()
	if _, err := s.CreateGroup(context.Background(), "m", []topology.NodeID{hosts[0], hosts[4]}); err != nil {
		t.Fatal(err)
	}
	ti, err := s.GetTree(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	s.FailLink(ti.Tree.Links(g)[0])
	// Sabotage: un-mark the invalidated entry, as a buggy invalidator
	// would.
	m := s.lookupGroup("m").m.Load()
	s.cache.lookup(m.key).val.Load().stale.Store(false)
	suite := invtest.Capture(t, func() {
		if _, err := s.GetTree(context.Background(), "m"); err != nil {
			t.Errorf("sabotaged get: %v", err)
		}
	})
	if suite.Violations(ServedTreeFresh) == 0 {
		t.Fatalf("%s did not fire on a sabotaged stale tree", ServedTreeFresh)
	}
}

// TestCheckersRegistered pins the checker registry entries this package
// contributes.
func TestCheckersRegistered(t *testing.T) {
	names := map[string]bool{}
	for _, c := range invariant.Checkers() {
		names[c.Name] = true
	}
	for _, want := range []string{ServedTreeFresh, CacheKeyCanonical} {
		if !names[want] {
			t.Fatalf("checker %q not registered", want)
		}
	}
}
