package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"peel/internal/topology"
)

func newTestDaemon(t *testing.T) (*Daemon, *httptest.Server) {
	t.Helper()
	d, err := NewDaemon(DaemonConfig{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Service().Close)
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)
	return d, srv
}

func doJSON(t *testing.T, method, url string, body string, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

func TestDaemonGroupLifecycleHTTP(t *testing.T) {
	d, srv := newTestDaemon(t)
	hosts := d.Service().Graph().Hosts()

	var gi groupJSON
	code := doJSON(t, "POST", srv.URL+"/v1/groups",
		fmt.Sprintf(`{"id":"g1","members":[%d,%d,%d]}`, hosts[0], hosts[4], hosts[9]), &gi)
	if code != http.StatusCreated || gi.ID != "g1" || len(gi.Members) != 3 {
		t.Fatalf("create: code %d info %+v", code, gi)
	}
	if code := doJSON(t, "POST", srv.URL+"/v1/groups",
		fmt.Sprintf(`{"id":"g1","members":[%d,%d]}`, hosts[0], hosts[1]), nil); code != http.StatusConflict {
		t.Fatalf("duplicate create: %d", code)
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/groups/g1", "", &gi); code != http.StatusOK {
		t.Fatalf("describe: %d", code)
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/groups/nope", "", nil); code != http.StatusNotFound {
		t.Fatalf("describe missing: %d", code)
	}

	var tr TreeResponse
	if code := doJSON(t, "GET", srv.URL+"/v1/groups/g1/tree", "", &tr); code != http.StatusOK {
		t.Fatalf("tree: %d", code)
	}
	if tr.Cached || tr.Cost <= 0 || len(tr.Edges) != tr.Cost {
		t.Fatalf("cold tree response: %+v", tr)
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/groups/g1/tree", "", &tr); code != http.StatusOK || !tr.Cached {
		t.Fatalf("warm tree not cached: code %d %+v", code, tr)
	}

	if code := doJSON(t, "POST", srv.URL+"/v1/groups/g1/join",
		fmt.Sprintf(`{"host":%d}`, hosts[13]), &gi); code != http.StatusOK || len(gi.Members) != 4 {
		t.Fatalf("join: code %d %+v", code, gi)
	}
	if code := doJSON(t, "POST", srv.URL+"/v1/groups/g1/leave",
		fmt.Sprintf(`{"host":%d}`, hosts[13]), &gi); code != http.StatusOK || len(gi.Members) != 3 {
		t.Fatalf("leave: code %d %+v", code, gi)
	}
	if code := doJSON(t, "POST", srv.URL+"/v1/groups/g1/leave", `{"host":1234}`, nil); code != http.StatusBadRequest {
		t.Fatalf("leave non-member: %d", code)
	}

	var st Stats
	if code := doJSON(t, "GET", srv.URL+"/v1/stats", "", &st); code != http.StatusOK || st.Groups != 1 {
		t.Fatalf("stats: code %d %+v", code, st)
	}

	if code := doJSON(t, "DELETE", srv.URL+"/v1/groups/g1", "", nil); code != http.StatusNoContent {
		t.Fatalf("delete: %d", code)
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/groups/g1/tree", "", nil); code != http.StatusNotFound {
		t.Fatalf("tree after delete: %d", code)
	}
}

func TestDaemonChaosEndpointInvalidates(t *testing.T) {
	d, srv := newTestDaemon(t)
	s := d.Service()
	hosts := s.Graph().Hosts()
	if _, err := s.CreateGroup(context.Background(), "c", []topology.NodeID{hosts[0], hosts[4]}); err != nil {
		t.Fatal(err)
	}
	ti, err := s.GetTree(context.Background(), "c")
	if err != nil {
		t.Fatal(err)
	}
	link := switchLink(t, s.Graph(), ti.Tree)

	var res map[string]bool
	if code := doJSON(t, "POST", fmt.Sprintf("%s/v1/chaos/links/%d", srv.URL, link),
		`{"failed":true}`, &res); code != http.StatusOK || !res["changed"] {
		t.Fatalf("fail link: code %d %v", code, res)
	}
	var tr TreeResponse
	if code := doJSON(t, "GET", srv.URL+"/v1/groups/c/tree", "", &tr); code != http.StatusOK {
		t.Fatalf("tree after failure: %d", code)
	}
	if tr.Cached || tr.CurrentGen != 1 {
		t.Fatalf("failure did not force recompute: %+v", tr)
	}
	// Idempotent fail reports no transition; bad link IDs are 400s.
	if code := doJSON(t, "POST", fmt.Sprintf("%s/v1/chaos/links/%d", srv.URL, link),
		`{"failed":true}`, &res); code != http.StatusOK || res["changed"] {
		t.Fatalf("refail: code %d %v", code, res)
	}
	if code := doJSON(t, "POST", srv.URL+"/v1/chaos/links/999999", `{"failed":true}`, nil); code != http.StatusBadRequest {
		t.Fatalf("bad link id: %d", code)
	}
	if code := doJSON(t, "POST", fmt.Sprintf("%s/v1/chaos/links/%d", srv.URL, link),
		`{"failed":false}`, &res); code != http.StatusOK || !res["changed"] {
		t.Fatalf("heal: code %d %v", code, res)
	}
}

func TestDaemonHealthAndReportEndpoints(t *testing.T) {
	_, srv := newTestDaemon(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	// No telemetry sink armed: the report endpoint says so.
	if code := doJSON(t, "GET", srv.URL+"/v1/report", "", nil); code != http.StatusNotFound {
		t.Fatalf("report without sink: %d", code)
	}
}

func TestDaemonRunDrainsGracefully(t *testing.T) {
	ready := make(chan string, 1)
	d, err := NewDaemon(DaemonConfig{
		Addr:    "127.0.0.1:0",
		K:       4,
		OnReady: func(addr string) { ready <- addr },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx) }()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while serving: %d", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain")
	}
	// The service is closed and its observer unsubscribed.
	if _, err := d.Service().GetTree(context.Background(), "x"); err == nil {
		t.Fatal("service still serving after drain")
	}
	if n := d.Service().Graph().NumObservers(); n != 0 {
		t.Fatalf("%d observers leaked after drain", n)
	}
}

func TestDaemonRejectsBadArity(t *testing.T) {
	if _, err := NewDaemon(DaemonConfig{K: 3}); err == nil {
		t.Fatal("odd arity accepted")
	}
}

// TestDaemonSlowPeelAnswers504AndReleasesToken pins the deadline
// contract end to end: a tree computation that outlives the per-request
// timeout answers 504, holds its admission token only while computing
// (proved by a concurrent 429), and returns the token when the abandoned
// request finishes — capacity is never leaked to a hung client.
func TestDaemonSlowPeelAnswers504AndReleasesToken(t *testing.T) {
	var gate atomic.Bool
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	svc := New(topology.FatTree(4), Options{
		MaxInflight: 1,
		ComputeHook: func() {
			if gate.CompareAndSwap(true, false) {
				entered <- struct{}{}
				<-release
			}
		},
	})
	t.Cleanup(svc.Close)
	d := NewDaemonFor(svc, DaemonConfig{RequestTimeout: 100 * time.Millisecond})
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)

	hosts := svc.Graph().Hosts()
	for i, id := range []string{"slow", "other"} {
		members := []topology.NodeID{hosts[4*i], hosts[4*i+1], hosts[4*i+2]}
		if _, err := svc.CreateGroup(context.Background(), id, members); err != nil {
			t.Fatal(err)
		}
	}

	get := func(id string) int {
		resp, err := http.Get(srv.URL + "/v1/groups/" + id + "/tree")
		if err != nil {
			t.Errorf("GET %s: %v", id, err)
			return -1
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	gate.Store(true)
	slowCode := make(chan int, 1)
	go func() { slowCode <- get("slow") }()
	<-entered // the slow peel now holds the only admission token

	if code := get("other"); code != http.StatusTooManyRequests {
		t.Fatalf("concurrent miss with token held: %d, want 429", code)
	}

	// Let the slow request's deadline expire before the compute finishes:
	// the handler must answer 504, not hang and not 200.
	time.Sleep(150 * time.Millisecond)
	close(release)
	select {
	case code := <-slowCode:
		if code != http.StatusGatewayTimeout {
			t.Fatalf("slow peel answered %d, want 504", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("slow request never completed")
	}

	// The abandoned request's token is back: the same miss now computes.
	if code := get("other"); code != http.StatusOK {
		t.Fatalf("miss after token release: %d, want 200", code)
	}
}

// TestDaemonReadyzSplitsFromHealthz: /healthz is pure liveness and stays
// 200 for the life of the process; /readyz flips to 503 the moment the
// API stops being able to serve correctly (here: the service closed and
// unsubscribed its topology observer).
func TestDaemonReadyzSplitsFromHealthz(t *testing.T) {
	svc := New(topology.FatTree(4), Options{})
	d := NewDaemonFor(svc, DaemonConfig{})
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)

	status := func(path string) int {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := status("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz while serving: %d", code)
	}
	if code := status("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz while serving: %d", code)
	}
	svc.Close()
	if code := status("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after close: %d, want 503", code)
	}
	if code := status("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after close: %d, want 200 (liveness, not readiness)", code)
	}
}
