package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"peel/internal/topology"
)

func newTestDaemon(t *testing.T) (*Daemon, *httptest.Server) {
	t.Helper()
	d, err := NewDaemon(DaemonConfig{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Service().Close)
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)
	return d, srv
}

func doJSON(t *testing.T, method, url string, body string, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

func TestDaemonGroupLifecycleHTTP(t *testing.T) {
	d, srv := newTestDaemon(t)
	hosts := d.Service().Graph().Hosts()

	var gi groupJSON
	code := doJSON(t, "POST", srv.URL+"/v1/groups",
		fmt.Sprintf(`{"id":"g1","members":[%d,%d,%d]}`, hosts[0], hosts[4], hosts[9]), &gi)
	if code != http.StatusCreated || gi.ID != "g1" || len(gi.Members) != 3 {
		t.Fatalf("create: code %d info %+v", code, gi)
	}
	if code := doJSON(t, "POST", srv.URL+"/v1/groups",
		fmt.Sprintf(`{"id":"g1","members":[%d,%d]}`, hosts[0], hosts[1]), nil); code != http.StatusConflict {
		t.Fatalf("duplicate create: %d", code)
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/groups/g1", "", &gi); code != http.StatusOK {
		t.Fatalf("describe: %d", code)
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/groups/nope", "", nil); code != http.StatusNotFound {
		t.Fatalf("describe missing: %d", code)
	}

	var tr TreeResponse
	if code := doJSON(t, "GET", srv.URL+"/v1/groups/g1/tree", "", &tr); code != http.StatusOK {
		t.Fatalf("tree: %d", code)
	}
	if tr.Cached || tr.Cost <= 0 || len(tr.Edges) != tr.Cost {
		t.Fatalf("cold tree response: %+v", tr)
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/groups/g1/tree", "", &tr); code != http.StatusOK || !tr.Cached {
		t.Fatalf("warm tree not cached: code %d %+v", code, tr)
	}

	if code := doJSON(t, "POST", srv.URL+"/v1/groups/g1/join",
		fmt.Sprintf(`{"host":%d}`, hosts[13]), &gi); code != http.StatusOK || len(gi.Members) != 4 {
		t.Fatalf("join: code %d %+v", code, gi)
	}
	if code := doJSON(t, "POST", srv.URL+"/v1/groups/g1/leave",
		fmt.Sprintf(`{"host":%d}`, hosts[13]), &gi); code != http.StatusOK || len(gi.Members) != 3 {
		t.Fatalf("leave: code %d %+v", code, gi)
	}
	if code := doJSON(t, "POST", srv.URL+"/v1/groups/g1/leave", `{"host":1234}`, nil); code != http.StatusBadRequest {
		t.Fatalf("leave non-member: %d", code)
	}

	var st Stats
	if code := doJSON(t, "GET", srv.URL+"/v1/stats", "", &st); code != http.StatusOK || st.Groups != 1 {
		t.Fatalf("stats: code %d %+v", code, st)
	}

	if code := doJSON(t, "DELETE", srv.URL+"/v1/groups/g1", "", nil); code != http.StatusNoContent {
		t.Fatalf("delete: %d", code)
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/groups/g1/tree", "", nil); code != http.StatusNotFound {
		t.Fatalf("tree after delete: %d", code)
	}
}

func TestDaemonChaosEndpointInvalidates(t *testing.T) {
	d, srv := newTestDaemon(t)
	s := d.Service()
	hosts := s.Graph().Hosts()
	if _, err := s.CreateGroup("c", []topology.NodeID{hosts[0], hosts[4]}); err != nil {
		t.Fatal(err)
	}
	ti, err := s.GetTree("c")
	if err != nil {
		t.Fatal(err)
	}
	link := switchLink(t, s.Graph(), ti.Tree)

	var res map[string]bool
	if code := doJSON(t, "POST", fmt.Sprintf("%s/v1/chaos/links/%d", srv.URL, link),
		`{"failed":true}`, &res); code != http.StatusOK || !res["changed"] {
		t.Fatalf("fail link: code %d %v", code, res)
	}
	var tr TreeResponse
	if code := doJSON(t, "GET", srv.URL+"/v1/groups/c/tree", "", &tr); code != http.StatusOK {
		t.Fatalf("tree after failure: %d", code)
	}
	if tr.Cached || tr.CurrentGen != 1 {
		t.Fatalf("failure did not force recompute: %+v", tr)
	}
	// Idempotent fail reports no transition; bad link IDs are 400s.
	if code := doJSON(t, "POST", fmt.Sprintf("%s/v1/chaos/links/%d", srv.URL, link),
		`{"failed":true}`, &res); code != http.StatusOK || res["changed"] {
		t.Fatalf("refail: code %d %v", code, res)
	}
	if code := doJSON(t, "POST", srv.URL+"/v1/chaos/links/999999", `{"failed":true}`, nil); code != http.StatusBadRequest {
		t.Fatalf("bad link id: %d", code)
	}
	if code := doJSON(t, "POST", fmt.Sprintf("%s/v1/chaos/links/%d", srv.URL, link),
		`{"failed":false}`, &res); code != http.StatusOK || !res["changed"] {
		t.Fatalf("heal: code %d %v", code, res)
	}
}

func TestDaemonHealthAndReportEndpoints(t *testing.T) {
	_, srv := newTestDaemon(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	// No telemetry sink armed: the report endpoint says so.
	if code := doJSON(t, "GET", srv.URL+"/v1/report", "", nil); code != http.StatusNotFound {
		t.Fatalf("report without sink: %d", code)
	}
}

func TestDaemonRunDrainsGracefully(t *testing.T) {
	ready := make(chan string, 1)
	d, err := NewDaemon(DaemonConfig{
		Addr:    "127.0.0.1:0",
		K:       4,
		OnReady: func(addr string) { ready <- addr },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx) }()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while serving: %d", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain")
	}
	// The service is closed and its observer unsubscribed.
	if _, err := d.Service().GetTree("x"); err == nil {
		t.Fatal("service still serving after drain")
	}
	if n := d.Service().Graph().NumObservers(); n != 0 {
		t.Fatalf("%d observers leaked after drain", n)
	}
}

func TestDaemonRejectsBadArity(t *testing.T) {
	if _, err := NewDaemon(DaemonConfig{K: 3}); err == nil {
		t.Fatal("odd arity accepted")
	}
}
