package service

import (
	"context"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"peel/internal/topology"
)

// TestPlanEpochPrePeelsCrossingGroups covers the announced path: planning
// an epoch recomputes crossing trees onto the post-epoch fabric while the
// doomed circuit still carries traffic, so the commit itself invalidates
// nothing.
func TestPlanEpochPrePeelsCrossingGroups(t *testing.T) {
	s, g := newTestService(t, 4, Options{})
	hosts := g.Hosts()
	if _, err := s.CreateGroup(context.Background(), "x", []topology.NodeID{hosts[0], hosts[4], hosts[9], hosts[13]}); err != nil {
		t.Fatal(err)
	}
	// Rack-local group in pod 3: no switch link shared with x's tree.
	if _, err := s.CreateGroup(context.Background(), "y", []topology.NodeID{hosts[14], hosts[15]}); err != nil {
		t.Fatal(err)
	}
	tx, err := s.GetTree(context.Background(), "x")
	if err != nil {
		t.Fatal(err)
	}
	ty, err := s.GetTree(context.Background(), "y")
	if err != nil {
		t.Fatal(err)
	}
	doomed := switchLink(t, g, tx.Tree)

	n, err := s.PlanEpoch(context.Background(), []topology.LinkID{doomed})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("pre-peeled %d groups, want 1 (only x crosses)", n)
	}
	if !s.PlanActive() {
		t.Fatal("plan not active after PlanEpoch")
	}
	// The pre-peeled tree is servable now and already avoids the doomed
	// circuit, even though the circuit has not failed yet.
	pre, err := s.GetTree(context.Background(), "x")
	if err != nil {
		t.Fatal(err)
	}
	if !pre.Cached {
		t.Fatal("pre-peel did not warm the cache: boundary access recomputed")
	}
	if slices.Contains(pre.Tree.Links(g), doomed) {
		t.Fatal("pre-peeled tree still crosses the to-be-removed circuit")
	}

	late := s.CommitEpoch([]topology.LinkID{doomed}, nil)
	if late != 0 {
		t.Fatalf("commit invalidated %d entries despite full pre-peel coverage", late)
	}
	if s.PlanActive() {
		t.Fatal("plan survived the commit")
	}
	// Zero cache misses at the boundary: both groups serve warm.
	for _, id := range []string{"x", "y"} {
		ti, err := s.GetTree(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if !ti.Cached {
			t.Fatalf("group %s recomputed at the epoch boundary", id)
		}
	}
	yAfter, err := s.GetTree(context.Background(), "y")
	if err != nil {
		t.Fatal(err)
	}
	if yAfter.Tree != ty.Tree {
		t.Fatal("unrelated group's tree churned across the epoch")
	}
	if committed, prePeeled := s.EpochCounts(); committed != 1 || prePeeled != 1 {
		t.Fatalf("EpochCounts = (%d,%d), want (1,1)", committed, prePeeled)
	}
	if st := s.Stats(); st.EpochsCommitted != 1 || st.EpochPrePeels != 1 {
		t.Fatalf("Stats epoch fields = %+v", st)
	}
	if _, err := s.PlanEpoch(context.Background(), []topology.LinkID{topology.LinkID(g.NumLinks())}); err == nil {
		t.Fatal("PlanEpoch accepted an unknown link")
	}
}

// TestCommitWithoutPlanIsFailureDriven pins the unannounced A/B arm:
// committing with no prior plan invalidates at the boundary and the next
// access pays the recompute.
func TestCommitWithoutPlanIsFailureDriven(t *testing.T) {
	s, g := newTestService(t, 4, Options{})
	hosts := g.Hosts()
	if _, err := s.CreateGroup(context.Background(), "x", []topology.NodeID{hosts[0], hosts[4], hosts[9], hosts[13]}); err != nil {
		t.Fatal(err)
	}
	tx, err := s.GetTree(context.Background(), "x")
	if err != nil {
		t.Fatal(err)
	}
	doomed := switchLink(t, g, tx.Tree)
	late := s.CommitEpoch([]topology.LinkID{doomed}, nil)
	if late != 1 {
		t.Fatalf("unannounced commit invalidated %d entries, want 1", late)
	}
	re, err := s.GetTree(context.Background(), "x")
	if err != nil {
		t.Fatal(err)
	}
	if re.Cached {
		t.Fatal("stale tree served after an unannounced switch-over")
	}
	if slices.Contains(re.Tree.Links(g), doomed) {
		t.Fatal("recomputed tree crosses the removed circuit")
	}
}

// TestLinkIDReuseAfterRestore is the regression test for the link→entries
// index across fail/restore cycles: LinkIDs are never retired (scheduled
// fabrics re-fail the same IDs every epoch), so the index must track each
// recompute exactly — re-arming entries whose new tree re-uses a restored
// ID, and dropping entries whose new tree avoids it.
func TestLinkIDReuseAfterRestore(t *testing.T) {
	s, g := newTestService(t, 4, Options{})
	hosts := g.Hosts()
	// Rack-local pair: every tree for this group MUST use the two host
	// access links, so recomputes provably re-use the same LinkID.
	if _, err := s.CreateGroup(context.Background(), "local", []topology.NodeID{hosts[0], hosts[1]}); err != nil {
		t.Fatal(err)
	}
	// Cross-pod group with switch-level redundancy: recomputes avoid a
	// failed switch link, so its entry must leave that ID's index set.
	if _, err := s.CreateGroup(context.Background(), "wide", []topology.NodeID{hosts[2], hosts[6], hosts[11]}); err != nil {
		t.Fatal(err)
	}
	tl, err := s.GetTree(context.Background(), "local")
	if err != nil {
		t.Fatal(err)
	}
	access := g.LinkBetween(hosts[0], g.EdgeSwitchOf(hosts[0]))
	if !slices.Contains(tl.Tree.Links(g), access) {
		t.Fatal("rack-local tree does not use the source's access link")
	}
	tw, err := s.GetTree(context.Background(), "wide")
	if err != nil {
		t.Fatal(err)
	}
	avoided := switchLink(t, g, tw.Tree)

	// Cycle 1: fail both, recompute, restore. The wide recompute avoids
	// the switch link; the local recompute (after restore) re-uses the
	// access link — the same LinkID re-enters the index.
	s.FailLink(avoided)
	rw, err := s.GetTree(context.Background(), "wide")
	if err != nil {
		t.Fatal(err)
	}
	if rw.Cached || slices.Contains(rw.Tree.Links(g), avoided) {
		t.Fatalf("wide recompute wrong: cached=%v", rw.Cached)
	}
	s.RestoreLink(avoided)

	s.FailLink(access)
	s.RestoreLink(access)
	rl, err := s.GetTree(context.Background(), "local")
	if err != nil {
		t.Fatal(err)
	}
	if rl.Cached || !slices.Contains(rl.Tree.Links(g), access) {
		t.Fatalf("local recompute wrong: cached=%v", rl.Cached)
	}

	// Cycle 2: re-fail the same IDs. The local entry (tree re-uses the
	// access link) must invalidate again; the wide entry (tree avoids the
	// switch link) must stay fresh — a stale index mapping left behind by
	// cycle 1 would spuriously invalidate it.
	s.FailLink(avoided)
	ww, err := s.GetTree(context.Background(), "wide")
	if err != nil {
		t.Fatal(err)
	}
	if !ww.Cached {
		t.Fatal("re-failing an avoided LinkID invalidated a tree that no longer crosses it")
	}
	s.RestoreLink(avoided)

	s.FailLink(access)
	s.RestoreLink(access)
	ll, err := s.GetTree(context.Background(), "local")
	if err != nil {
		t.Fatal(err)
	}
	if ll.Cached {
		t.Fatal("re-failing a re-used LinkID did not invalidate the recomputed tree")
	}
}

// TestEpochSwitchoverConvergence hammers GetTree from concurrent readers
// while epochs plan and commit, alternating a circuit swap back and forth.
// Run under -race in CI; the armed invariants (served-tree-fresh, and the
// fabric.epoch-consistent walk inside every CommitEpoch) convict any
// reader that observes a stale tree across a boundary.
func TestEpochSwitchoverConvergence(t *testing.T) {
	s, g := newTestService(t, 4, Options{})
	hosts := g.Hosts()
	groups := []string{"a", "b", "c"}
	for i, id := range groups {
		m := []topology.NodeID{hosts[i], hosts[(i+5)%16], hosts[(i+10)%16]}
		if _, err := s.CreateGroup(context.Background(), id, m); err != nil {
			t.Fatal(err)
		}
		if _, err := s.GetTree(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	ta, err := s.GetTree(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	l1 := switchLink(t, g, ta.Tree)
	// A second switch link not on a's current tree, to swap against.
	var l2 topology.LinkID = -1
	for id := topology.LinkID(0); int(id) < g.NumLinks(); id++ {
		l := g.Link(id)
		if g.Node(l.A).Kind.IsSwitch() && g.Node(l.B).Kind.IsSwitch() &&
			id != l1 && !slices.Contains(ta.Tree.Links(g), id) {
			l2 = id
			break
		}
	}
	if l2 < 0 {
		t.Fatal("no second switch link")
	}

	done := make(chan struct{})
	var gets, misses atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				ti, err := s.GetTree(context.Background(), groups[(w+i)%len(groups)])
				if err != nil {
					t.Errorf("reader GetTree: %v", err)
					return
				}
				gets.Add(1)
				if !ti.Cached {
					misses.Add(1)
				}
			}
		}(w)
	}
	for e := 0; e < 8; e++ {
		rm, add := l1, l2
		if e%2 == 1 {
			rm, add = l2, l1
		}
		if _, err := s.PlanEpoch(context.Background(), []topology.LinkID{rm}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond) // readers race the open plan window
		s.CommitEpoch([]topology.LinkID{rm}, []topology.LinkID{add})
	}
	close(done)
	wg.Wait()
	if gets.Load() == 0 {
		t.Fatal("readers made no progress")
	}
	if committed, _ := s.EpochCounts(); committed != 8 {
		t.Fatalf("committed = %d, want 8", committed)
	}
}

// TestPlannedBeatsUnplannedBoundaryLatency is the reconfig CI gate: over
// identical fleets and circuit swaps, the planned arm serves every
// boundary access from the pre-peeled cache (zero misses) while the
// unplanned arm pays recomputes, so the planned p99 boundary GetTree
// latency is strictly lower.
func TestPlannedBeatsUnplannedBoundaryLatency(t *testing.T) {
	const nGroups, nEpochs = 24, 5
	run := func(planned bool) (misses int, p99 time.Duration) {
		s, g := newTestService(t, 4, Options{})
		hosts := g.Hosts()
		ids := make([]string, nGroups)
		for i := range ids {
			ids[i] = string(rune('A' + i))
			m := []topology.NodeID{hosts[i%16], hosts[(i+3)%16], hosts[(i+7)%16], hosts[(i+12)%16]}
			if _, err := s.CreateGroup(context.Background(), ids[i], m); err != nil {
				t.Fatal(err)
			}
			if _, err := s.GetTree(context.Background(), ids[i]); err != nil {
				t.Fatal(err)
			}
		}
		var lat []time.Duration
		for e := 0; e < nEpochs; e++ {
			// Swap a switch link off the first group's current tree: a
			// realistic epoch touches trees of many co-located groups.
			ti, err := s.GetTree(context.Background(), ids[e%nGroups])
			if err != nil {
				t.Fatal(err)
			}
			rm := switchLink(t, g, ti.Tree)
			if planned {
				if _, err := s.PlanEpoch(context.Background(), []topology.LinkID{rm}); err != nil {
					t.Fatal(err)
				}
			}
			s.CommitEpoch([]topology.LinkID{rm}, nil)
			for _, id := range ids {
				start := time.Now()
				bi, err := s.GetTree(context.Background(), id)
				d := time.Since(start)
				if err != nil {
					t.Fatal(err)
				}
				lat = append(lat, d)
				if !bi.Cached {
					misses++
				}
			}
			s.RestoreLink(rm) // reset for the next epoch
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return misses, lat[len(lat)*99/100]
	}
	plannedMisses, plannedP99 := run(true)
	unplannedMisses, unplannedP99 := run(false)
	if plannedMisses != 0 {
		t.Errorf("planned arm paid %d boundary recomputes, want 0", plannedMisses)
	}
	if unplannedMisses == 0 {
		t.Error("unplanned arm paid no boundary recomputes; the A/B is vacuous")
	}
	if plannedP99 >= unplannedP99 {
		t.Errorf("eager pre-peel did not cut boundary p99: planned %v vs unplanned %v (misses %d vs %d)",
			plannedP99, unplannedP99, plannedMisses, unplannedMisses)
	}
}
