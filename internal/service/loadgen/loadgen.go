// Package loadgen drives a service.Client with a synthetic multicast
// control-plane workload: Zipf-popular GetTree traffic mixed with
// membership churn (Join/Leave) and group churn (delete + re-place), with
// optional scripted link flaps injected through a FaultInjector.
//
// The generator is deterministic for a fixed (Config, worker count):
// every worker owns a seeded RNG and the flap schedule is keyed to worker
// 0's operation count, not wall time — a single-worker run replays
// identically, which the golden run-report test relies on. Throughput
// numbers (Stats.OpsPerSec) are the only wall-clock-derived outputs and
// never feed telemetry.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"peel/internal/service"
	"peel/internal/steiner"
	"peel/internal/topology"
	"peel/internal/workload"
)

// FaultInjector is the chaos hook: the loadgen flaps links through it so
// failure transitions stay serialized with the service's invalidation
// protocol. *service.Service implements it.
type FaultInjector = service.FaultInjector

// RepairCounter is the optional repair-census surface: clients that track
// how invalidated trees recomputed (patched graft vs full re-peel) expose
// it, and the loadgen folds the counts into its final Stats.
// *service.Service and *federation.Federation implement it.
type RepairCounter interface {
	RepairCounts() (patched, fellBack int64)
}

// ReplicaChaos is the process-level chaos hook: alongside link flaps, the
// loadgen can kill and restart whole peeld replicas through it. The
// federation package implements it; a nil ReplicaChaos disables the kill
// schedule.
type ReplicaChaos interface {
	// NumReplicas reports how many replicas exist (alive or dead).
	NumReplicas() int
	// KillReplica hard-kills replica i (kill -9 semantics: no drain, cache
	// and generation state lost). Reports whether the state changed.
	KillReplica(i int) bool
	// RestartReplica boots replica i back up empty; the federation re-admits
	// it after catch-up. Reports whether the state changed.
	RestartReplica(i int) bool
}

// Mix weights the operation types. Zero values fall back to the default
// 92/3/3/2 get/join/leave/churn split, which keeps the steady-state cache
// hit rate above 90% on a Zipf-popular group set.
type Mix struct {
	Get   int // GetTree on a Zipf-sampled group
	Join  int // Join a uniform random host
	Leave int // Leave a random non-source member (falls back to Join when too small)
	Churn int // Delete the group and re-create it with a fresh placement
}

func (m Mix) orDefault() Mix {
	if m.Get+m.Join+m.Leave+m.Churn == 0 {
		return Mix{Get: 92, Join: 3, Leave: 3, Churn: 2}
	}
	return m
}

// Config parameterizes one load run.
type Config struct {
	// Groups is the number of pre-created groups (default 256).
	Groups int
	// GroupSize is the host count per group (default 8).
	GroupSize int
	// Workers is the closed-loop worker count (default GOMAXPROCS). Use 1
	// for a fully deterministic run.
	Workers int
	// Ops is the total operation budget across workers (default 100000).
	Ops int
	// Mix weights the operation types (see Mix).
	Mix Mix
	// ZipfS is the Zipf skew for GetTree group popularity (must be >1;
	// default 1.3).
	ZipfS float64
	// Seed seeds placement and every worker RNG (default 1).
	Seed int64
	// Fragmentation is the placement fragmentation knob passed to
	// workload.Place.
	Fragmentation float64
	// Pace, when >0, sleeps this long between operations on every worker,
	// turning the closed loop into a paced load. Latency-sensitive probes
	// (propagation measurement) need it: a saturating closed loop on a
	// small machine starves the push pipeline's goroutine handoffs and
	// measures scheduler queuing instead of propagation.
	Pace time.Duration
	// FlapEvery, when >0 with a FaultInjector armed, fails a random link
	// every FlapEvery worker-0 operations.
	FlapEvery int
	// FlapHeal restores the flapped link after FlapHeal further worker-0
	// operations (default FlapEvery/2).
	FlapHeal int
	// KillEvery, when >0 with a ReplicaChaos armed, hard-kills a replica
	// every KillEvery worker-0 operations (round-robin over replicas, so a
	// fixed config kills a deterministic sequence).
	KillEvery int
	// KillRestart restarts the killed replica after KillRestart further
	// worker-0 operations (default KillEvery/2).
	KillRestart int
}

func (c Config) withDefaults() Config {
	if c.Groups <= 0 {
		c.Groups = 256
	}
	if c.GroupSize < 2 {
		c.GroupSize = 8
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Ops <= 0 {
		c.Ops = 100000
	}
	c.Mix = c.Mix.orDefault()
	if c.ZipfS <= 1 {
		c.ZipfS = 1.3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.FlapHeal <= 0 {
		c.FlapHeal = c.FlapEvery / 2
	}
	if c.KillRestart <= 0 {
		c.KillRestart = c.KillEvery / 2
	}
	return c
}

// Stats summarizes one run. Hits/Misses count only GetTree operations;
// Benign counts expected lifecycle races (group deleted mid-churn, group
// too small to leave, receiver unreachable during a flap window) that are
// part of the workload, not failures.
type Stats struct {
	Ops        int64         `json:"ops"`
	Gets       int64         `json:"gets"`
	Hits       int64         `json:"hits"`
	Misses     int64         `json:"misses"`
	Overloaded int64         `json:"overloaded"`
	Benign     int64         `json:"benign_races"`
	Errors     int64         `json:"errors"`
	Flaps      int64         `json:"flaps"`
	Kills      int64         `json:"replica_kills,omitempty"`
	Wall       time.Duration `json:"wall_ns"`
	OpsPerSec  float64       `json:"ops_per_sec"`
	HitRate    float64       `json:"hit_rate"`
	// Repair census, from the client's RepairCounter surface (zero when the
	// client does not expose one): invalidated trees recomputed by an
	// incremental graft patch vs patch attempts that fell back to a full
	// re-peel.
	RepairsPatched      int64 `json:"repairs_patched"`
	RepairsFullFallback int64 `json:"repairs_full_fallback"`
	// GetP99Ns is the wall-clock p99 GetTree latency in nanoseconds. Like
	// OpsPerSec it is wall-derived and never feeds telemetry, so the golden
	// run-report stays byte-deterministic.
	GetP99Ns int64 `json:"get_p99_ns"`
	// ErrorsByKind types every non-benign failure so transport-level
	// errors surface in the final report instead of vanishing into one
	// opaque counter: "overloaded" (admission rejection), "draining"
	// (shutdown refusals), "deadline" (context expiry/cancellation),
	// "transport" (everything else — connection refused, EOF, 5xx).
	// Empty (omitted) on a clean run.
	ErrorsByKind map[string]int64 `json:"errors_by_kind,omitempty"`
	// Propagation reports the flap→client update-propagation latency probe
	// (see ArmPropagation); nil when the probe was not armed. Wall-derived
	// like OpsPerSec, so it never feeds telemetry.
	Propagation *PropagationStats `json:"propagation,omitempty"`
}

// ErrorKind buckets a client error for Stats.ErrorsByKind. Exported so
// tests and the federation package agree on the taxonomy.
func ErrorKind(err error) string {
	switch {
	case errors.Is(err, service.ErrOverloaded):
		return "overloaded"
	case errors.Is(err, service.ErrDraining):
		return "draining"
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return "deadline"
	default:
		return "transport"
	}
}

// Generator owns a prepared group population and drives the client.
type Generator struct {
	client   service.Client
	faults   FaultInjector
	replicas ReplicaChaos
	cluster  *workload.Cluster
	cfg      Config
	ids      []string
	spec     workload.Spec
	probe    *propProbe
}

// New pre-creates cfg.Groups groups on the client using bin-packed
// placements from the cluster, and returns a generator ready to Run.
// faults may be nil when no chaos is scripted.
func New(client service.Client, faults FaultInjector, cluster *workload.Cluster, cfg Config) (*Generator, error) {
	cfg = cfg.withDefaults()
	g := &Generator{
		client:  client,
		faults:  faults,
		cluster: cluster,
		cfg:     cfg,
		ids:     make([]string, cfg.Groups),
		spec: workload.Spec{
			GPUs:          cfg.GroupSize * cluster.GPUsPerHost,
			Fragmentation: cfg.Fragmentation,
		},
	}
	if cfg.FlapEvery > 0 && faults == nil {
		return nil, fmt.Errorf("loadgen: FlapEvery set but no FaultInjector")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := range g.ids {
		g.ids[i] = fmt.Sprintf("g%04d", i)
		members, err := cluster.Place(g.spec, rng)
		if err != nil {
			return nil, fmt.Errorf("loadgen: placing group %d: %w", i, err)
		}
		if _, err := client.CreateGroup(context.Background(), g.ids[i], members); err != nil {
			return nil, fmt.Errorf("loadgen: creating group %d: %w", i, err)
		}
	}
	return g, nil
}

// ArmReplicaChaos attaches the replica kill/restart hook. Required before
// Run when Config.KillEvery > 0.
func (g *Generator) ArmReplicaChaos(rc ReplicaChaos) error {
	if rc == nil || rc.NumReplicas() == 0 {
		return fmt.Errorf("loadgen: replica chaos armed with no replicas")
	}
	g.replicas = rc
	return nil
}

// IDs returns the generator's group IDs (tests sample them directly).
func (g *Generator) IDs() []string { return g.ids }

// benign reports whether err is an expected lifecycle race under churn
// and chaos rather than a generator or service defect.
func benign(err error) bool {
	return errors.Is(err, service.ErrNoSuchGroup) ||
		errors.Is(err, service.ErrGroupExists) ||
		errors.Is(err, service.ErrNotMember) ||
		errors.Is(err, service.ErrGroupTooSmall) ||
		errors.Is(err, steiner.ErrUnreachable)
}

// Run executes the configured operation budget across Workers closed-loop
// workers and returns aggregate stats. Cancelling ctx stops workers at
// their next operation boundary; the stats cover work done so far.
func (g *Generator) Run(ctx context.Context) Stats {
	var st Stats
	var wg sync.WaitGroup
	var ops, gets, hits, misses, overloaded, races, errs, flaps, kills atomic.Int64
	var ekDraining, ekDeadline, ekTransport atomic.Int64
	// Per-worker GetTree latency samples, merged after the join below —
	// workers never share the slices, so sampling stays contention-free.
	var latMu sync.Mutex
	var getLat []int64
	if g.cfg.KillEvery > 0 && g.replicas == nil {
		panic("loadgen: KillEvery set but replica chaos not armed (call ArmReplicaChaos)")
	}
	if g.probe != nil {
		if err := g.probe.start(); err != nil {
			panic(err) // armed explicitly; a dead wire server is a harness bug
		}
	}
	per := g.cfg.Ops / g.cfg.Workers
	start := time.Now()
	for w := 0; w < g.cfg.Workers; w++ {
		budget := per
		if w == 0 {
			budget += g.cfg.Ops % g.cfg.Workers
		}
		wg.Add(1)
		go func(worker, budget int) {
			defer wg.Done()
			lat := make([]int64, 0, budget)
			defer func() {
				latMu.Lock()
				getLat = append(getLat, lat...)
				latMu.Unlock()
			}()
			rng := rand.New(rand.NewSource(g.cfg.Seed + int64(worker)*7919))
			zipf := rand.NewZipf(rng, g.cfg.ZipfS, 1, uint64(len(g.ids)-1))
			hosts := g.cluster.Hosts()
			total := g.cfg.Mix.Get + g.cfg.Mix.Join + g.cfg.Mix.Leave + g.cfg.Mix.Churn
			flapped := topology.LinkID(-1)
			flapStart := 0
			killed, killStart, nextKill := -1, 0, 0
			for op := 0; op < budget; op++ {
				if ctx.Err() != nil {
					return
				}
				// Worker 0 owns the flap schedule: one link down at a
				// time, failed and healed at fixed operation counts so a
				// single-worker run replays exactly.
				if worker == 0 && g.cfg.FlapEvery > 0 {
					if flapped >= 0 && op-flapStart >= g.cfg.FlapHeal {
						g.faults.RestoreLink(flapped)
						flapped = -1
					}
					if flapped < 0 && op%g.cfg.FlapEvery == g.cfg.FlapEvery-1 {
						flapped = topology.LinkID(rng.Intn(g.faults.NumLinks()))
						flapStart = op
						flapAt := time.Now()
						g.faults.FailLink(flapped)
						flaps.Add(1)
						if g.probe != nil {
							// Stamp the transition's generation for the
							// propagation probe's flap→receipt join.
							g.probe.noteFlap(g.faults.(genSource).Gen(), flapAt)
						}
					}
				}
				// Worker 0 also owns the replica kill schedule: one dead
				// replica at a time, round-robin over the fleet, killed and
				// restarted at fixed operation counts (kill -9 semantics —
				// the replica's cache and generation state are lost and the
				// federation must catch it up on re-admission).
				if worker == 0 && g.cfg.KillEvery > 0 {
					if killed >= 0 && op-killStart >= g.cfg.KillRestart {
						g.replicas.RestartReplica(killed)
						killed = -1
					}
					if killed < 0 && op%g.cfg.KillEvery == g.cfg.KillEvery-1 {
						killed = nextKill % g.replicas.NumReplicas()
						nextKill++
						killStart = op
						g.replicas.KillReplica(killed)
						kills.Add(1)
					}
				}
				if g.cfg.Pace > 0 {
					time.Sleep(g.cfg.Pace)
				}
				id := g.ids[zipf.Uint64()]
				r := rng.Intn(total)
				var err error
				switch {
				case r < g.cfg.Mix.Get:
					gets.Add(1)
					var ti service.TreeInfo
					getStart := time.Now()
					ti, err = g.client.GetTree(ctx, id)
					lat = append(lat, int64(time.Since(getStart)))
					if err == nil {
						if ti.Cached {
							hits.Add(1)
						} else {
							misses.Add(1)
						}
					}
				case r < g.cfg.Mix.Get+g.cfg.Mix.Join:
					_, err = g.client.Join(ctx, id, hosts[rng.Intn(len(hosts))])
				case r < g.cfg.Mix.Get+g.cfg.Mix.Join+g.cfg.Mix.Leave:
					err = g.leaveOne(ctx, id, rng)
				default:
					err = g.churnOne(ctx, id, rng)
				}
				ops.Add(1)
				switch {
				case err == nil:
				case errors.Is(err, service.ErrOverloaded):
					overloaded.Add(1)
				case benign(err):
					races.Add(1)
				default:
					errs.Add(1)
					switch ErrorKind(err) {
					case "draining":
						ekDraining.Add(1)
					case "deadline":
						ekDeadline.Add(1)
					default:
						ekTransport.Add(1)
					}
				}
			}
		}(w, budget)
	}
	wg.Wait()
	st.Wall = time.Since(start)
	st.Ops = ops.Load()
	st.Gets = gets.Load()
	st.Hits = hits.Load()
	st.Misses = misses.Load()
	st.Overloaded = overloaded.Load()
	st.Benign = races.Load()
	st.Errors = errs.Load()
	st.Flaps = flaps.Load()
	st.Kills = kills.Load()
	byKind := map[string]int64{
		"overloaded": st.Overloaded,
		"draining":   ekDraining.Load(),
		"deadline":   ekDeadline.Load(),
		"transport":  ekTransport.Load(),
	}
	for k, v := range byKind {
		if v == 0 {
			delete(byKind, k)
		}
	}
	if len(byKind) > 0 {
		st.ErrorsByKind = byKind
	}
	if st.Wall > 0 {
		st.OpsPerSec = float64(st.Ops) / st.Wall.Seconds()
	}
	if st.Gets > 0 {
		st.HitRate = float64(st.Hits) / float64(st.Gets)
	}
	if len(getLat) > 0 {
		sort.Slice(getLat, func(i, j int) bool { return getLat[i] < getLat[j] })
		st.GetP99Ns = getLat[len(getLat)*99/100]
	}
	if rc, ok := g.client.(RepairCounter); ok {
		st.RepairsPatched, st.RepairsFullFallback = rc.RepairCounts()
	}
	if g.probe != nil {
		st.Propagation = g.probe.stop()
		g.probe = nil // one probe per Run
	}
	return st
}

// leaveOne removes a random non-source member; groups already at the
// two-member floor get a Join instead so membership keeps circulating.
func (g *Generator) leaveOne(ctx context.Context, id string, rng *rand.Rand) error {
	gi, err := g.client.Describe(ctx, id)
	if err != nil {
		return err
	}
	if len(gi.Members) <= 2 {
		hosts := g.cluster.Hosts()
		_, err = g.client.Join(ctx, id, hosts[rng.Intn(len(hosts))])
		return err
	}
	i := rng.Intn(len(gi.Members))
	if gi.Members[i] == gi.Source {
		i = (i + 1) % len(gi.Members)
	}
	_, err = g.client.Leave(ctx, id, gi.Members[i])
	return err
}

// churnOne tears a group down and re-creates it under the same ID with a
// fresh placement — the control-plane analogue of a job finishing and its
// slots being reallocated.
func (g *Generator) churnOne(ctx context.Context, id string, rng *rand.Rand) error {
	if err := g.client.DeleteGroup(ctx, id); err != nil {
		return err
	}
	members, err := g.cluster.Place(g.spec, rng)
	if err != nil {
		return err
	}
	_, err = g.client.CreateGroup(ctx, id, members)
	return err
}
