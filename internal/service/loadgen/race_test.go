//go:build race

package loadgen

// raceEnabled reports whether the race detector is compiled in; the
// throughput-floor test skips under it (instrumentation costs ~10×).
const raceEnabled = true
