package loadgen

import (
	"context"
	"testing"
	"time"

	"peel/internal/service"
	"peel/internal/service/wire"
)

// runPropagation runs one churn workload with the probe armed in the
// given mode and returns its stats.
func runPropagation(t *testing.T, mode string) *PropagationStats {
	t.Helper()
	s, cluster := newRig(t, 4, service.Options{})
	gen, err := New(s, s, cluster, Config{
		Groups:    8,
		GroupSize: 5,
		Workers:   2,
		Ops:       6000,
		FlapEvery: 100,
		Pace:      200 * time.Microsecond,
		Seed:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := PropagationConfig{Mode: mode, Subscribers: 4, GroupsEach: 2, PollInterval: 5 * time.Millisecond}
	if mode == "push" {
		srv := wire.NewServer(s, wire.Options{})
		var addr string
		if err := srv.ListenAndServe("127.0.0.1:0", func(a string) { addr = a }); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		cfg.WireAddr = addr
	}
	if err := gen.ArmPropagation(cfg); err != nil {
		t.Fatal(err)
	}
	st := gen.Run(context.Background())
	if st.Propagation == nil {
		t.Fatal("Run did not attach propagation stats")
	}
	if st.Propagation.Mode != mode {
		t.Fatalf("mode %q, want %q", st.Propagation.Mode, mode)
	}
	return st.Propagation
}

// TestPropagationPushBeatsPoll is the ISSUE acceptance check: under the
// same flap-churn workload, wire-protocol push propagation must deliver
// failure-driven tree updates faster than the polling baseline at its
// configured interval.
func TestPropagationPushBeatsPoll(t *testing.T) {
	push := runPropagation(t, "push")
	poll := runPropagation(t, "poll")
	t.Logf("push: %+v", push)
	t.Logf("poll: %+v", poll)
	if push.Samples == 0 {
		t.Fatal("push mode attributed no samples")
	}
	if poll.Samples == 0 {
		t.Fatal("poll mode attributed no samples")
	}
	if push.FailurePushes == 0 {
		t.Fatal("push mode saw no failure-driven pushes")
	}
	if push.P50Ns >= poll.P50Ns {
		t.Errorf("push p50 %v is not faster than poll p50 %v",
			time.Duration(push.P50Ns), time.Duration(poll.P50Ns))
	}
	if push.P99Ns >= poll.P99Ns {
		t.Errorf("push p99 %v is not faster than poll p99 %v",
			time.Duration(push.P99Ns), time.Duration(poll.P99Ns))
	}
}

// TestArmPropagationValidation pins the probe's arming errors: a bad
// mode, a missing wire address, and a missing flap schedule all fail
// loudly instead of measuring nothing.
func TestArmPropagationValidation(t *testing.T) {
	s, cluster := newRig(t, 4, service.Options{})
	gen, err := New(s, s, cluster, Config{Groups: 4, GroupSize: 4, Ops: 10, FlapEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.ArmPropagation(PropagationConfig{Mode: "smoke-signal"}); err == nil {
		t.Error("bad mode accepted")
	}
	if err := gen.ArmPropagation(PropagationConfig{Mode: "push"}); err == nil {
		t.Error("push mode without WireAddr accepted")
	}
	s2, cluster2 := newRig(t, 4, service.Options{})
	noFlap, err := New(s2, s2, cluster2, Config{Groups: 4, GroupSize: 4, Ops: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := noFlap.ArmPropagation(PropagationConfig{Mode: "poll"}); err == nil {
		t.Error("probe without a flap schedule accepted")
	}
}
