package loadgen

// The propagation probe: measures how long a failure-driven tree update
// takes to reach interested clients, under the same churn workload the
// generator already runs. Two modes share one harness so the numbers are
// directly comparable:
//
//   - "push": wire-protocol subscribers (internal/service/wire) receive
//     server-pushed updates; latency is flap-to-receipt of the first
//     failure-flagged push at the flap's generation.
//   - "poll": plain GetTree pollers at a fixed interval; latency is
//     flap-to-first-observation of a tree computed at the flap's
//     generation — the baseline the push path exists to beat.
//
// Attribution is by topology generation: worker 0 stamps every FailLink
// with (generation, time); subscribers record (generation, receipt time)
// observations; the two sides join after the run, so no lookup races the
// refresher. Latencies are wall-clock and never feed telemetry (the
// golden run-report stays deterministic); Stats.Propagation is omitempty
// for the same reason.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"peel/internal/service/wire"
)

// PropagationConfig arms the probe; see the file comment for the modes.
type PropagationConfig struct {
	// Mode is "push" (wire subscribers) or "poll" (GetTree baseline).
	Mode string
	// Subscribers is how many concurrent subscribers/pollers to run
	// (default 4).
	Subscribers int
	// GroupsEach is how many groups each subscriber tracks (default 4),
	// assigned round-robin over the generator's groups.
	GroupsEach int
	// WireAddr is the wire-protocol address (push mode).
	WireAddr string
	// PollInterval is the GetTree cadence (poll mode; default 5ms).
	PollInterval time.Duration
	// ClientOptions tunes the wire clients (push mode); zero values take
	// the wire defaults.
	ClientOptions wire.ClientOptions
}

// PropagationStats reports the probe's outcome.
type PropagationStats struct {
	Mode          string `json:"mode"`
	Subscribers   int    `json:"subscribers"`
	Updates       int64  `json:"updates"`        // tree updates delivered (push) or polls that returned (poll)
	FailurePushes int64  `json:"failure_pushes"` // pushes flagged failure-driven (push mode)
	Gaps          int64  `json:"gaps"`           // client-detected seq gaps (push mode)
	Resyncs       int64  `json:"resyncs"`        // RESYNCs sent after gaps (push mode)
	Samples       int    `json:"samples"`        // attributed flap→receipt latencies
	P50Ns         int64  `json:"p50_ns"`
	P99Ns         int64  `json:"p99_ns"`
	MaxNs         int64  `json:"max_ns"`
}

// genSource is how the probe reads the topology generation off the fault
// injector; *service.Service implements it.
type genSource interface{ Gen() uint64 }

// observation is one subscriber-side sighting of a tree at a generation.
type observation struct {
	gen uint64
	at  time.Time
}

// propProbe runs the subscribers and accumulates observations.
type propProbe struct {
	cfg    PropagationConfig
	gen    *Generator
	stopCh chan struct{}
	wg     sync.WaitGroup

	mu     sync.Mutex
	flapAt map[uint64]time.Time
	obs    []observation

	updates       int64
	failurePushes int64
	gaps          int64
	resyncs       int64
}

// ArmPropagation attaches a propagation probe to the next Run. Push mode
// needs a reachable wire server and a FaultInjector that reports its
// generation (a *service.Service); the flap schedule (FlapEvery) provides
// the failures being measured.
func (g *Generator) ArmPropagation(cfg PropagationConfig) error {
	if cfg.Mode != "push" && cfg.Mode != "poll" {
		return fmt.Errorf("loadgen: propagation mode %q (want \"push\" or \"poll\")", cfg.Mode)
	}
	if cfg.Mode == "push" && cfg.WireAddr == "" {
		return fmt.Errorf("loadgen: propagation push mode needs WireAddr")
	}
	if _, ok := g.faults.(genSource); !ok {
		return fmt.Errorf("loadgen: propagation probe needs a generation-reporting FaultInjector")
	}
	if g.cfg.FlapEvery <= 0 {
		return fmt.Errorf("loadgen: propagation probe needs a flap schedule (FlapEvery)")
	}
	if cfg.Subscribers <= 0 {
		cfg.Subscribers = 4
	}
	if cfg.GroupsEach <= 0 {
		cfg.GroupsEach = 4
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 5 * time.Millisecond
	}
	g.probe = &propProbe{
		cfg:    cfg,
		gen:    g,
		stopCh: make(chan struct{}),
		flapAt: map[uint64]time.Time{},
	}
	return nil
}

// noteFlap is called by worker 0 with the generation right after a
// FailLink and the timestamp taken right before it, so the sample spans
// the whole transition (invalidate → refresh → encode → deliver).
func (p *propProbe) noteFlap(gen uint64, at time.Time) {
	p.mu.Lock()
	if _, dup := p.flapAt[gen]; !dup {
		p.flapAt[gen] = at
	}
	p.mu.Unlock()
}

func (p *propProbe) observe(gen uint64, at time.Time) {
	p.mu.Lock()
	p.obs = append(p.obs, observation{gen, at})
	p.mu.Unlock()
}

// groupsFor assigns subscriber i its round-robin slice of group IDs.
func (p *propProbe) groupsFor(i int) []string {
	ids := p.gen.ids
	out := make([]string, 0, p.cfg.GroupsEach)
	for j := 0; j < p.cfg.GroupsEach; j++ {
		out = append(out, ids[(i*p.cfg.GroupsEach+j)%len(ids)])
	}
	return out
}

// start launches the subscribers. Push-mode dial errors surface here so a
// run against a dead wire server fails loudly instead of measuring
// nothing.
func (p *propProbe) start() error {
	for i := 0; i < p.cfg.Subscribers; i++ {
		gids := p.groupsFor(i)
		if p.cfg.Mode == "push" {
			c, err := wire.Dial(p.cfg.WireAddr, p.cfg.ClientOptions)
			if err != nil {
				return fmt.Errorf("loadgen: propagation subscriber %d: %w", i, err)
			}
			for _, gid := range gids {
				if err := c.Subscribe(gid); err != nil {
					c.Close()
					return fmt.Errorf("loadgen: propagation subscriber %d: %w", i, err)
				}
			}
			p.wg.Add(1)
			go p.runPush(c)
		} else {
			p.wg.Add(1)
			go p.runPoll(gids)
		}
	}
	return nil
}

// runPush consumes one wire client's updates, recording the first sighting
// of each (group, generation) carried by a failure-driven push.
func (p *propProbe) runPush(c *wire.Client) {
	defer p.wg.Done()
	defer func() {
		st := c.Stats()
		p.mu.Lock()
		p.updates += st.Updates
		p.gaps += st.Gaps
		p.resyncs += st.Resyncs
		p.mu.Unlock()
		c.Close()
	}()
	seen := map[string]uint64{} // group → highest generation observed
	for {
		select {
		case <-p.stopCh:
			// Drain whatever already arrived before stopping so pushes that
			// raced the stop still count in the totals — but their true
			// receipt time is unknown (they sat buffered), so they never
			// become latency samples.
			for {
				select {
				case u, ok := <-c.Updates():
					if !ok {
						return
					}
					p.handlePush(u, seen, false)
				default:
					return
				}
			}
		case u, ok := <-c.Updates():
			if !ok {
				return
			}
			p.handlePush(u, seen, true)
		}
	}
}

func (p *propProbe) handlePush(u wire.TreeUpdate, seen map[string]uint64, sample bool) {
	if u.Err != nil || !u.FailureDriven() {
		return
	}
	p.mu.Lock()
	p.failurePushes++
	p.mu.Unlock()
	if last, ok := seen[u.Group]; ok && u.Gen <= last {
		return
	}
	seen[u.Group] = u.Gen
	if sample {
		p.observe(u.Gen, time.Now())
	}
}

// runPoll is the baseline: GetTree each assigned group at the configured
// interval, recording the first sighting of each new generation.
func (p *propProbe) runPoll(gids []string) {
	defer p.wg.Done()
	seen := map[string]uint64{}
	ticker := time.NewTicker(p.cfg.PollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-p.stopCh:
			return
		case <-ticker.C:
		}
		for _, gid := range gids {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			ti, err := p.gen.client.GetTree(ctx, gid)
			cancel()
			if err != nil {
				continue
			}
			p.mu.Lock()
			p.updates++
			p.mu.Unlock()
			if last, ok := seen[gid]; ok && ti.Gen <= last {
				continue
			}
			seen[gid] = ti.Gen
			p.observe(ti.Gen, time.Now())
		}
	}
}

// stop ends the subscribers after a short grace so in-flight pushes land,
// then joins (gen, receipt) observations against the flap stamps into the
// final latency distribution.
func (p *propProbe) stop() *PropagationStats {
	time.Sleep(50 * time.Millisecond)
	close(p.stopCh)
	p.wg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	var lat []int64
	for _, o := range p.obs {
		if at, ok := p.flapAt[o.gen]; ok {
			if d := o.at.Sub(at); d >= 0 {
				lat = append(lat, int64(d))
			}
		}
	}
	st := &PropagationStats{
		Mode:          p.cfg.Mode,
		Subscribers:   p.cfg.Subscribers,
		Updates:       p.updates,
		FailurePushes: p.failurePushes,
		Gaps:          p.gaps,
		Resyncs:       p.resyncs,
		Samples:       len(lat),
	}
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		st.P50Ns = lat[len(lat)/2]
		st.P99Ns = lat[len(lat)*99/100]
		st.MaxNs = lat[len(lat)-1]
	}
	return st
}
