package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"peel/internal/service"
	"peel/internal/telemetry"
	"peel/internal/topology"
	"peel/internal/workload"
)

func newRig(t testing.TB, k int, opts service.Options) (*service.Service, *workload.Cluster) {
	t.Helper()
	g := topology.FatTree(k)
	s := service.New(g, opts)
	t.Cleanup(s.Close)
	return s, workload.NewCluster(g, 1)
}

func TestGeneratorPreCreatesGroups(t *testing.T) {
	s, cluster := newRig(t, 4, service.Options{})
	gen, err := New(s, s, cluster, Config{Groups: 10, GroupSize: 4, Ops: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(gen.IDs()) != 10 {
		t.Fatalf("IDs = %d, want 10", len(gen.IDs()))
	}
	if st := s.Stats(); st.Groups != 10 {
		t.Fatalf("Groups = %d, want 10", st.Groups)
	}
	for _, id := range gen.IDs() {
		gi, err := s.Describe(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if len(gi.Members) < 2 {
			t.Fatalf("group %s too small: %v", id, gi.Members)
		}
	}
}

func TestRunMixedWorkloadClean(t *testing.T) {
	s, cluster := newRig(t, 4, service.Options{})
	gen, err := New(s, s, cluster, Config{Groups: 32, GroupSize: 4, Workers: 4, Ops: 4000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	st := gen.Run(context.Background())
	if st.Ops != 4000 {
		t.Fatalf("Ops = %d, want 4000", st.Ops)
	}
	if st.Errors != 0 {
		t.Fatalf("hard errors: %+v", st)
	}
	if st.Gets == 0 || st.Hits+st.Misses != st.Gets {
		t.Fatalf("get accounting: %+v", st)
	}
	if st.HitRate < 0.5 {
		t.Fatalf("hit rate %.2f implausibly low: %+v", st.HitRate, st)
	}
	if st.ErrorsByKind != nil {
		t.Fatalf("clean run reported errors_by_kind: %+v", st.ErrorsByKind)
	}
}

// deadReplicaClient answers fine while the generator pre-creates groups,
// then — once dead — fails every operation the way a client talking to a
// dead replica does: tree reads die at the transport, membership lookups
// run out their deadline, and teardown hits a draining listener.
type deadReplicaClient struct {
	dead atomic.Bool
}

func (c *deadReplicaClient) err(kind string) error {
	switch kind {
	case "deadline":
		return fmt.Errorf("dead replica: %w", context.DeadlineExceeded)
	case "draining":
		return fmt.Errorf("dead replica: %w", service.ErrDraining)
	default:
		return fmt.Errorf("dead replica: connection refused")
	}
}

func (c *deadReplicaClient) CreateGroup(ctx context.Context, id string, members []topology.NodeID) (service.GroupInfo, error) {
	if c.dead.Load() {
		return service.GroupInfo{}, c.err("transport")
	}
	return service.GroupInfo{ID: id, Source: members[0], Members: members}, nil
}

func (c *deadReplicaClient) Describe(ctx context.Context, id string) (service.GroupInfo, error) {
	if c.dead.Load() {
		return service.GroupInfo{}, c.err("deadline")
	}
	return service.GroupInfo{ID: id}, nil
}

func (c *deadReplicaClient) Join(ctx context.Context, id string, host topology.NodeID) (service.GroupInfo, error) {
	if c.dead.Load() {
		return service.GroupInfo{}, c.err("deadline")
	}
	return service.GroupInfo{ID: id}, nil
}

func (c *deadReplicaClient) Leave(ctx context.Context, id string, host topology.NodeID) (service.GroupInfo, error) {
	if c.dead.Load() {
		return service.GroupInfo{}, c.err("deadline")
	}
	return service.GroupInfo{ID: id}, nil
}

func (c *deadReplicaClient) GetTree(ctx context.Context, id string) (service.TreeInfo, error) {
	if c.dead.Load() {
		return service.TreeInfo{}, c.err("transport")
	}
	return service.TreeInfo{Cached: true}, nil
}

func (c *deadReplicaClient) DeleteGroup(ctx context.Context, id string) error {
	if c.dead.Load() {
		return c.err("draining")
	}
	return nil
}

// TestDeadReplicaSurfacesTypedErrorCounts is the regression gate for
// error-kind accounting: a run against a dead replica must report
// nonzero per-kind counts in errors_by_kind (not one opaque total), and
// the kinds must sum to the hard-error total.
func TestDeadReplicaSurfacesTypedErrorCounts(t *testing.T) {
	g := topology.FatTree(4)
	cluster := workload.NewCluster(g, 1)
	client := &deadReplicaClient{}
	gen, err := New(client, nil, cluster, Config{Groups: 8, GroupSize: 4, Workers: 2, Ops: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	client.dead.Store(true)
	st := gen.Run(context.Background())
	if st.Errors == 0 {
		t.Fatalf("dead replica produced no hard errors: %+v", st)
	}
	var sum int64
	for _, kind := range []string{"transport", "deadline", "draining"} {
		if st.ErrorsByKind[kind] == 0 {
			t.Fatalf("errors_by_kind[%q] = 0, want nonzero: %+v", kind, st.ErrorsByKind)
		}
		sum += st.ErrorsByKind[kind]
	}
	if sum != st.Errors {
		t.Fatalf("errors_by_kind sums to %d, want %d: %+v", sum, st.Errors, st.ErrorsByKind)
	}
}

func TestRunHonorsContextCancel(t *testing.T) {
	s, cluster := newRig(t, 4, service.Options{})
	gen, err := New(s, s, cluster, Config{Groups: 8, GroupSize: 4, Workers: 2, Ops: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st := gen.Run(ctx)
	if st.Ops >= 1<<30 {
		t.Fatalf("cancelled run completed the full budget")
	}
}

// TestChaosSmokeServesOnlyValidTrees is the acceptance gate for the
// invalidation protocol: scripted link flaps under concurrent load, with
// the package-wide invariant suite armed, must produce zero hard errors —
// and invtest.Main fails the binary if any served tree failed validation
// against the degraded graph.
func TestChaosSmokeServesOnlyValidTrees(t *testing.T) {
	s, cluster := newRig(t, 8, service.Options{})
	ops := 20000
	if testing.Short() {
		ops = 4000
	}
	gen, err := New(s, s, cluster, Config{
		Groups:    64,
		GroupSize: 8,
		Workers:   8,
		Ops:       ops,
		Seed:      13,
		FlapEvery: 200,
		FlapHeal:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := gen.Run(context.Background())
	if st.Errors != 0 {
		t.Fatalf("hard errors under chaos: %+v", st)
	}
	if st.Flaps == 0 {
		t.Fatalf("chaos schedule never fired: %+v", st)
	}
	if s.Gen() == 0 {
		t.Fatalf("no failure transitions observed by the service")
	}
	t.Logf("chaos smoke: %+v", st)
}

// TestThroughputAndHitRateFloor is the performance acceptance criterion:
// ≥100k ops/sec in-process with a ≥90% GetTree hit rate on the default
// Zipf mix. Skipped under the race detector, whose instrumentation is not
// the configuration the bar describes.
func TestThroughputAndHitRateFloor(t *testing.T) {
	if raceEnabled {
		t.Skip("throughput floor not meaningful under the race detector")
	}
	if testing.Short() {
		t.Skip("throughput floor needs the full op budget")
	}
	s, cluster := newRig(t, 8, service.Options{})
	gen, err := New(s, s, cluster, Config{Ops: 200000})
	if err != nil {
		t.Fatal(err)
	}
	st := gen.Run(context.Background())
	if st.Errors != 0 {
		t.Fatalf("hard errors: %+v", st)
	}
	if st.OpsPerSec < 100000 {
		t.Fatalf("throughput %.0f ops/sec below the 100k floor: %+v", st.OpsPerSec, st)
	}
	if st.HitRate < 0.90 {
		t.Fatalf("hit rate %.3f below the 0.90 floor: %+v", st.HitRate, st)
	}
	t.Logf("throughput: %.0f ops/sec, hit rate %.3f", st.OpsPerSec, st.HitRate)
}

// TestGoldenRunReport pins the schema-versioned telemetry run-report of a
// deterministic single-worker load run: fixed seeds, an op-count-keyed
// flap schedule, and no wall-clock-derived series mean the report is
// byte-stable. Regenerate with PEEL_UPDATE_GOLDEN=1 after intentional
// changes (bump telemetry.SchemaVersion if the shape changed).
func TestGoldenRunReport(t *testing.T) {
	sink := telemetry.NewSink(0)
	defer telemetry.Enable(sink)()
	s, cluster := newRig(t, 4, service.Options{Seed: 1})
	gen, err := New(s, s, cluster, Config{
		Groups:    16,
		GroupSize: 4,
		Workers:   1,
		Ops:       5000,
		Seed:      1,
		FlapEvery: 500,
		FlapHeal:  250,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := gen.Run(context.Background())
	if st.Errors != 0 {
		t.Fatalf("hard errors: %+v", st)
	}
	s.RefreshGauges()
	var buf bytes.Buffer
	if err := sink.Report("loadgen-golden").WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()
	golden := filepath.Join("testdata", "loadgen_runreport.golden.json")
	if os.Getenv("PEEL_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden run-report updated (%d bytes)", len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with PEEL_UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("run-report drifted from golden.\nIf intentional, regenerate with PEEL_UPDATE_GOLDEN=1 (and bump telemetry.SchemaVersion if the schema changed).\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestConfigRejectsFlapsWithoutInjector(t *testing.T) {
	s, cluster := newRig(t, 4, service.Options{})
	if _, err := New(s, nil, cluster, Config{FlapEvery: 10}); err == nil {
		t.Fatal("FlapEvery without FaultInjector accepted")
	}
}
