package service

import (
	"context"
	"math/rand"
	"slices"
	"testing"

	"peel/internal/core"
	"peel/internal/topology"
)

func TestCanonicalMembersSortsAndDedups(t *testing.T) {
	in := []topology.NodeID{9, 3, 9, 1, 3}
	got := canonicalMembers(5, in)
	want := []topology.NodeID{1, 3, 5, 9}
	if !slices.Equal(got, want) {
		t.Fatalf("canonicalMembers = %v, want %v", got, want)
	}
	if !slices.Equal(in, []topology.NodeID{9, 3, 9, 1, 3}) {
		t.Fatalf("input mutated: %v", in)
	}
	// The source is always in the canonical set, even when absent from
	// the member list.
	if got := canonicalMembers(7, []topology.NodeID{2}); !slices.Equal(got, []topology.NodeID{2, 7}) {
		t.Fatalf("source not folded in: %v", got)
	}
}

func TestTreeKeyPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := []topology.NodeID{4, 8, 15, 16, 23, 42}
	want := treeKey(4, canonicalMembers(4, base))
	for trial := 0; trial < 100; trial++ {
		perm := append([]topology.NodeID(nil), base...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		// Duplicate a random prefix too: duplicates must collapse.
		perm = append(perm, perm[:rng.Intn(len(perm))]...)
		if got := treeKey(4, canonicalMembers(4, perm)); got != want {
			t.Fatalf("trial %d: key %q != %q for %v", trial, got, want, perm)
		}
	}
	// Distinct sets must get distinct keys.
	other := treeKey(4, canonicalMembers(4, []topology.NodeID{8, 15, 16, 23, 43}))
	if other == want {
		t.Fatalf("distinct member sets collided on key %q", want)
	}
	// Same set, different source: different tree, different key.
	if k := treeKey(8, canonicalMembers(8, base)); k == want {
		t.Fatalf("distinct sources collided on key %q", want)
	}
}

// TestPermutedGroupsShareCacheEntry is the canonicalization contract
// end-to-end: two groups whose member lists are permutations (with
// duplicates) of each other share one cache entry, so the second GetTree
// is a hit.
func TestPermutedGroupsShareCacheEntry(t *testing.T) {
	g := topology.FatTree(4)
	s := New(g, Options{})
	defer s.Close()
	hosts := g.Hosts()
	a := []topology.NodeID{hosts[0], hosts[1], hosts[2], hosts[3]}
	b := []topology.NodeID{hosts[0], hosts[3], hosts[1], hosts[2], hosts[2], hosts[1]}
	if _, err := s.CreateGroup(context.Background(), "a", a); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateGroup(context.Background(), "b", b); err != nil {
		t.Fatal(err)
	}
	ta, err := s.GetTree(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if ta.Cached {
		t.Fatalf("first GetTree unexpectedly cached")
	}
	tb, err := s.GetTree(context.Background(), "b")
	if err != nil {
		t.Fatal(err)
	}
	if !tb.Cached {
		t.Fatalf("permuted group did not hit the shared cache entry")
	}
	if tb.Tree != ta.Tree {
		t.Fatalf("groups with one canonical member set got distinct trees")
	}
	if st := s.Stats(); st.CacheEntries != 1 {
		t.Fatalf("CacheEntries = %d, want 1", st.CacheEntries)
	}
}

// TestCachedTreeMatchesFreshProperty: for random member sets, the cached
// tree must be indistinguishable from a freshly planned one — same cost,
// valid on the current graph. (Tree checks themselves run via the armed
// package suite inside the compute path.)
func TestCachedTreeMatchesFreshProperty(t *testing.T) {
	g := topology.FatTree(4)
	s := New(g, Options{})
	defer s.Close()
	hosts := g.Hosts()
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(len(hosts)-2)
		members := make([]topology.NodeID, 0, n)
		for _, i := range rng.Perm(len(hosts))[:n] {
			members = append(members, hosts[i])
		}
		id := string(rune('A' + trial%26))
		s.DeleteGroup(context.Background(), id)
		if _, err := s.CreateGroup(context.Background(), id, members); err != nil {
			t.Fatal(err)
		}
		if _, err := s.GetTree(context.Background(), id); err != nil {
			t.Fatal(err)
		}
		cached, err := s.GetTree(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if !cached.Cached {
			t.Fatalf("trial %d: second GetTree missed", trial)
		}
		fresh, err := core.BuildTree(g, members[0], membersMinusSource(members))
		if err != nil {
			t.Fatal(err)
		}
		if cached.Cost != fresh.Cost() {
			t.Fatalf("trial %d: cached cost %d != fresh cost %d", trial, cached.Cost, fresh.Cost())
		}
		if err := cached.Tree.Validate(g, receiversOf(members[0], canonicalMembers(members[0], members[1:]))); err != nil {
			t.Fatalf("trial %d: cached tree invalid: %v", trial, err)
		}
	}
}

func membersMinusSource(members []topology.NodeID) []topology.NodeID {
	canon := canonicalMembers(members[0], members[1:])
	return receiversOf(members[0], canon)
}
