// Package service is peeld: a concurrent, long-running multicast
// control plane over one Clos fabric. Batch experiments build a topology,
// compute trees, run one collective, and exit; a deployment (the paper's
// §3–§4 story, and systems like Elmo) instead fields group lifecycle
// requests from many tenants for days and must keep served trees
// consistent as links fail. The service owns:
//
//   - Group lifecycle: CreateGroup / Join / Leave / GetTree / DeleteGroup,
//     exposed in-process through the Client interface and over HTTP/JSON
//     by cmd/peeld (daemon.go holds the shared wiring).
//   - A sharded tree cache keyed by the canonical (source, member-set)
//     tuple with singleflight coalescing: concurrent identical requests
//     compute one tree, and groups with identical membership share it.
//   - Generation-based invalidation wired to topology's failure-event
//     observers: a link (or switch) failure bumps the topology generation
//     and marks exactly the cached trees crossing the dead link stale;
//     the next access lazily re-peels on the degraded graph — the same
//     recompute path internal/collective uses for mid-flight repair — and
//     charges the §3.1 controller install latency for the new rules.
//   - Admission control: at most MaxInflight tree computations run at
//     once; beyond that, misses fail fast with ErrOverloaded (cache hits
//     always succeed), so overload degrades to stale-tolerant reads
//     instead of collapse.
//
// Correctness is invariant-checked: with a suite armed, every served tree
// is re-validated against the *current* graph under the topology lock
// (the "service.served-tree-fresh" checker), so a chaos run proves no
// request ever observes a tree crossing a failed link.
//
// Concurrency contract: the topology.Graph is not itself thread-safe, so
// all failure-state mutations must go through the service's FailLink /
// RestoreLink / FailNode / RestoreNode wrappers (the HTTP chaos endpoints
// do), which serialize against in-flight tree computations via an RWMutex.
package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"peel/internal/controller"
	"peel/internal/core"
	"peel/internal/invariant"
	"peel/internal/steiner"
	"peel/internal/topology"
)

// Invariant checkers owned by this layer. Registered at init, so any
// suite built after the package is linked (invtest.Main, peelsim -check)
// sees them.
const (
	// ServedTreeFresh: every tree served from the cache validates against
	// the graph's current failure state at serve time.
	ServedTreeFresh = "service.served-tree-fresh"
	// CacheKeyCanonical: permutations and duplications of a member set
	// canonicalize to the same cache key.
	CacheKeyCanonical = "service.cache-key-canonical"
)

func init() {
	invariant.Register(invariant.Checker{
		Name:   ServedTreeFresh,
		Anchor: "§3.1 (control-plane consistency)",
		Desc:   "every tree served by the control plane validates against the current (possibly degraded) graph",
	})
	invariant.Register(invariant.Checker{
		Name:   CacheKeyCanonical,
		Anchor: "cache coherence",
		Desc:   "cache keys are invariant under member-set permutation and duplication",
	})
}

// Typed request errors. The HTTP layer maps them to status codes;
// in-process callers dispatch with errors.Is.
var (
	ErrOverloaded    = errors.New("service: overloaded: tree-computation capacity exhausted")
	ErrNoSuchGroup   = errors.New("service: no such group")
	ErrGroupExists   = errors.New("service: group already exists")
	ErrNotMember     = errors.New("service: host is not a group member")
	ErrBadMember     = errors.New("service: member is not a host of this fabric")
	ErrGroupTooSmall = errors.New("service: group needs at least two distinct member hosts")
	ErrDraining      = errors.New("service: draining")
)

// Repair-mode values for Options.Repair.
const (
	// RepairPatch (the default) patches invalidated cache entries
	// incrementally: orphaned receivers are grafted back into the surviving
	// subtree, falling back to a full re-peel only when the patch exceeds
	// core.RepairTree's policy or cost bounds.
	RepairPatch = "patch"
	// RepairFull always re-peels invalidated entries from scratch — the
	// pre-incremental behavior, kept for comparison runs.
	RepairFull = "full"
)

// maxRepairChain caps consecutive patches on one cache entry. Each patch
// stays inside the fresh-peel cost envelope, but long graft chains drift
// from what a fresh peel would build; a periodic full rebuild re-converges.
const maxRepairChain = 8

// Options configures a Service.
type Options struct {
	// Shards is the tree-cache shard count, rounded up to a power of two
	// (default 16).
	Shards int
	// MaxInflight bounds concurrent tree computations; further misses
	// return ErrOverloaded (default 2×GOMAXPROCS).
	MaxInflight int
	// CacheCap caps entries per shard, evicting least-recently-used idle
	// entries (default 4096; <0 = unbounded).
	CacheCap int
	// Seed seeds the controller install-latency model (default 1).
	Seed int64
	// Repair selects how invalidated cache entries recompute: RepairPatch
	// (default) grafts orphaned receivers incrementally, RepairFull always
	// re-peels from scratch.
	Repair string
	// ComputeHook, when set, runs at the start of every tree computation
	// (before the topology lock is taken). It is a test seam for slowing
	// or gating computes — admission-token and singleflight tests block in
	// it — and must never be set in production configurations.
	ComputeHook func()
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 16
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	if o.CacheCap == 0 {
		o.CacheCap = 4096
	} else if o.CacheCap < 0 {
		o.CacheCap = 0
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Repair == "" {
		o.Repair = RepairPatch
	}
	return o
}

// GroupInfo describes one group's current membership.
type GroupInfo struct {
	ID      string
	Source  topology.NodeID
	Members []topology.NodeID // canonical: sorted, deduplicated, includes Source
	Version uint64            // membership version, bumped by Join/Leave
}

// TreeInfo is one GetTree response. Tree is shared with the cache and
// must be treated as read-only.
type TreeInfo struct {
	Tree       *steiner.Tree
	Source     topology.NodeID
	Cost       int
	Gen        uint64 // topology generation the tree was computed at
	CurrentGen uint64 // topology generation now
	InstallPs  int64  // controller install latency charged for this tree's rules
	Cached     bool   // true when served without a fresh computation
	Patched    bool   // tree came from an incremental repair, not a full peel
	RepairGen  uint64 // consecutive patches since the entry's last full peel
}

// Client is the group-lifecycle API, implemented in-process by *Service
// and by the federation router's failover client; the loadgen drives it,
// and cmd/peeld re-exposes it over HTTP/JSON. Every call takes a context:
// daemon handlers propagate the client's deadline into the service, and
// federated implementations propagate it across replica hops.
type Client interface {
	CreateGroup(ctx context.Context, id string, members []topology.NodeID) (GroupInfo, error)
	Describe(ctx context.Context, id string) (GroupInfo, error)
	Join(ctx context.Context, id string, host topology.NodeID) (GroupInfo, error)
	Leave(ctx context.Context, id string, host topology.NodeID) (GroupInfo, error)
	GetTree(ctx context.Context, id string) (TreeInfo, error)
	DeleteGroup(ctx context.Context, id string) error
}

// FaultInjector is the failure-injection surface: chaos drivers (the
// loadgen's flap schedule, the daemon's chaos endpoints) fail and heal
// links through it so transitions stay serialized with invalidation.
// *Service implements it for one fabric; federation.Federation implements
// it by replicating every transition to all replicas.
type FaultInjector interface {
	FailLink(id topology.LinkID) bool
	RestoreLink(id topology.LinkID) bool
	NumLinks() int
}

// API is the full surface the HTTP daemon serves: group lifecycle, direct
// tree computation, chaos, and operational state. *Service implements it
// for a single node; the federation router's client implements it over a
// replica fleet so cmd/peeld serves both through one handler set.
type API interface {
	Client
	FaultInjector
	// TreeFor computes (or serves from cache) the tree for an explicit
	// membership, members[0] being the source — the group-registry-free
	// path federation routers use to offload computation onto replicas.
	TreeFor(ctx context.Context, members []topology.NodeID) (TreeInfo, error)
	// Ready reports request-serving readiness (the topology observer is
	// subscribed and the instance is not draining).
	Ready() bool
	// StatsJSON returns the instance's stats payload for GET /v1/stats.
	StatsJSON() any
	// RefreshGauges pushes current state into armed telemetry gauges.
	RefreshGauges()
	// Close drains the instance.
	Close()
}

// membership is one immutable membership snapshot; Join/Leave swap in a
// fresh one so GetTree reads it lock-free.
type membership struct {
	key       string
	source    topology.NodeID
	members   []topology.NodeID // canonical
	receivers []topology.NodeID // members minus source; may be nil (see recv)
	version   uint64
}

// recv returns the receiver set, deriving it when the snapshot was built
// without one (TreeForCanonical's trusted path defers the allocation to
// the compute path). No caching: memberships are shared immutable.
func (m *membership) recv() []topology.NodeID {
	if m.receivers != nil {
		return m.receivers
	}
	return receiversOf(m.source, m.members)
}

// group is one registered multicast group.
type group struct {
	id string
	mu sync.Mutex // serializes membership edits
	m  atomic.Pointer[membership]
}

// Service is the control plane. See the package comment for the design.
type Service struct {
	g    *topology.Graph
	opts Options

	// topoMu serializes failure-state mutations (write) against tree
	// computations and armed serve-time validation (read).
	topoMu sync.RWMutex
	gen    atomic.Uint64 // bumped per failure-state transition
	obs    topology.ObserverHandle
	// plan is the active epoch announcement (epoch.go), guarded by
	// topoMu: while set, tree computations run on plan.view so
	// replacements avoid the to-be-removed circuits.
	plan *epochPlan

	cache *treeCache

	groupsMu sync.RWMutex
	groups   map[string]*group

	ctrlMu sync.Mutex
	ctrl   *controller.Model

	inflight chan struct{} // admission tokens for tree computations
	closing  atomic.Bool
	computes sync.WaitGroup

	repairsPatched  atomic.Int64 // invalidated entries served by a graft patch
	repairsFallback atomic.Int64 // patch attempts that degraded to a full peel

	invalidatedTotal atomic.Int64 // fresh entries invalidated by failures, ever
	epochsCommitted  atomic.Int64 // epoch switch-overs executed (epoch.go)
	prePeels         atomic.Int64 // groups eagerly re-peeled by announcements

	// Push layer (subs.go): the group-watch registry and its refresher.
	// All fields are guarded by watchMu; the maps and channels are built
	// lazily by the first Watch.
	watchMu        sync.Mutex
	watched        map[string]*watchSet
	pendingRefresh map[string]refreshReq
	refreshKick    chan struct{}
	refreshStop    chan struct{}
	refreshDone    chan struct{}

	hooks atomic.Pointer[telHooks]
}

var _ API = (*Service)(nil)

// New builds a service owning g. The graph must not be mutated behind the
// service's back once requests are flowing; route failure injection
// through FailLink/RestoreLink (or keep external mutation single-threaded
// with request traffic, as simulator harnesses do).
func New(g *topology.Graph, opts Options) *Service {
	opts = opts.withDefaults()
	s := &Service{
		g:        g,
		opts:     opts,
		cache:    newTreeCache(opts.Shards, opts.CacheCap),
		groups:   map[string]*group{},
		ctrl:     controller.New(rand.New(rand.NewSource(opts.Seed))),
		inflight: make(chan struct{}, opts.MaxInflight),
	}
	s.obs = g.OnFailureChange(s.onFailureChange)
	return s
}

// Close drains the service: new requests fail with ErrDraining, in-flight
// tree computations finish, and the failure observer is unsubscribed so
// the graph does not pin the service (the leak Unsubscribe exists for).
// Close is idempotent.
func (s *Service) Close() {
	if s.closing.Swap(true) {
		return
	}
	// The refresher first: its eager recomputes fail fast with ErrDraining
	// once closing is set, and stopping it before the computes barrier
	// keeps a mid-drain refresh from racing the wait below.
	s.stopRefresher()
	s.computes.Wait()
	s.topoMu.Lock()
	s.g.Unsubscribe(s.obs)
	s.topoMu.Unlock()
}

// Gen returns the current topology generation: the count of failure-state
// transitions observed since construction.
func (s *Service) Gen() uint64 { return s.gen.Load() }

// Ready reports whether the service can serve requests: its topology
// observer is subscribed (true from construction) and it is not draining.
// The daemon's /readyz endpoint and federation health probes read it.
func (s *Service) Ready() bool { return !s.closing.Load() }

// StatsJSON implements API for the daemon's stats endpoint.
func (s *Service) StatsJSON() any { return s.Stats() }

// onFailureChange is the generation-based invalidator, registered with
// the graph at construction. It runs synchronously inside the transition
// (under topoMu when the mutation came through the service wrappers), so
// once FailLink returns, no later GetTree can serve a tree crossing the
// dead link without recomputing.
func (s *Service) onFailureChange(id topology.LinkID, failed bool) {
	s.gen.Add(1)
	h := s.tel()
	if h != nil {
		h.topoGen.Set(int64(s.gen.Load()))
	}
	// Mirror real transitions onto the active plan view (if any), so
	// pre-peels announced before a chaos failure never route onto the
	// freshly dead link. The observer runs under topoMu for mutations
	// routed through the service wrappers, which is the concurrency
	// contract for epochs too.
	if p := s.plan; p != nil {
		if failed {
			p.view.FailLink(id)
		} else {
			p.view.RestoreLink(id)
		}
	}
	if !failed {
		// Heals never invalidate: a cached tree stays valid when a link it
		// does not use returns, and one it does use coming back cannot
		// un-fail a tree that was already marked stale. Entries recompute
		// lazily and re-converge onto better trees on their next miss.
		if h != nil {
			h.heals.Inc()
		}
		return
	}
	n := s.cache.invalidateLink(id)
	s.invalidatedTotal.Add(int64(n))
	if h != nil {
		h.failures.Inc()
		h.invalidated.Add(int64(n))
		for i := range s.cache.shards {
			h.shardGens[i].Set(int64(s.cache.shards[i].gen.Load()))
		}
	}
	// Push layer: watched groups refresh eagerly instead of waiting for
	// the next poll. The timestamp anchors the propagation-latency
	// measurement (invalidation → subscriber receipt).
	s.noteInvalidation(time.Now())
}

// FailLink fails a link through the service, serialized against tree
// computations; reports whether the link state actually transitioned.
func (s *Service) FailLink(id topology.LinkID) bool {
	return s.mutate(func() bool {
		before := s.g.NumFailedLinks()
		s.g.FailLink(id)
		return s.g.NumFailedLinks() != before
	})
}

// RestoreLink heals a link through the service.
func (s *Service) RestoreLink(id topology.LinkID) bool {
	return s.mutate(func() bool {
		before := s.g.NumFailedLinks()
		s.g.RestoreLink(id)
		return s.g.NumFailedLinks() != before
	})
}

// FailNode fails every link of a switch through the service.
func (s *Service) FailNode(n topology.NodeID) bool {
	return s.mutate(func() bool {
		before := s.g.NumFailedLinks()
		s.g.FailNode(n)
		return s.g.NumFailedLinks() != before
	})
}

// RestoreNode heals every link of a switch through the service.
func (s *Service) RestoreNode(n topology.NodeID) bool {
	return s.mutate(func() bool {
		before := s.g.NumFailedLinks()
		s.g.RestoreNode(n)
		return s.g.NumFailedLinks() != before
	})
}

func (s *Service) mutate(fn func() bool) bool {
	s.topoMu.Lock()
	defer s.topoMu.Unlock()
	return fn()
}

// NumLinks exposes the fabric's link count (chaos drivers pick targets
// from it without touching the graph).
func (s *Service) NumLinks() int { return s.g.NumLinks() }

// Graph returns the owned graph for read-only inspection; see the
// concurrency contract in the package comment before mutating it.
func (s *Service) Graph() *topology.Graph { return s.g }

// lookupGroup resolves a group by ID.
func (s *Service) lookupGroup(id string) *group {
	s.groupsMu.RLock()
	grp := s.groups[id]
	s.groupsMu.RUnlock()
	return grp
}

// canonicalize validates and canonicalizes a membership: source is
// members[0] (the workload convention), members are host nodes, the
// distinct set has at least two hosts.
func (s *Service) canonicalize(members []topology.NodeID) (*membership, error) {
	if len(members) == 0 {
		return nil, ErrGroupTooSmall
	}
	for _, m := range members {
		if m < 0 || int(m) >= s.g.NumNodes() || s.g.Node(m).Kind != topology.Host {
			return nil, fmt.Errorf("%w: node %d", ErrBadMember, m)
		}
	}
	source := members[0]
	canon := canonicalMembers(source, members[1:])
	if len(canon) < 2 {
		return nil, ErrGroupTooSmall
	}
	m := &membership{
		key:       treeKey(source, canon),
		source:    source,
		members:   canon,
		receivers: receiversOf(source, canon),
	}
	if iv := invariant.Active(); iv != nil {
		reportCanonicalKey(iv, m, members)
	}
	return m, nil
}

// reportCanonicalKey spot-checks key canonicalization on live traffic: a
// reversed, duplicated rendering of the same request must produce the
// same key.
func reportCanonicalKey(iv *invariant.Suite, m *membership, raw []topology.NodeID) {
	shuffled := make([]topology.NodeID, 0, 2*len(raw))
	for i := len(raw) - 1; i >= 0; i-- {
		shuffled = append(shuffled, raw[i], raw[i])
	}
	again := treeKey(m.source, canonicalMembers(m.source, shuffled))
	iv.Checkf(CacheKeyCanonical, again == m.key,
		"key %q != %q for permuted+duplicated member set", again, m.key)
}

func (g *group) info() GroupInfo {
	m := g.m.Load()
	return GroupInfo{
		ID:      g.id,
		Source:  m.source,
		Members: append([]topology.NodeID(nil), m.members...),
		Version: m.version,
	}
}

// CreateGroup registers a group. members[0] is the source; the member set
// is canonicalized (sorted, deduplicated). Fails with ErrGroupExists if
// the ID is taken.
func (s *Service) CreateGroup(ctx context.Context, id string, members []topology.NodeID) (GroupInfo, error) {
	if err := ctx.Err(); err != nil {
		return GroupInfo{}, err
	}
	if s.closing.Load() {
		return GroupInfo{}, ErrDraining
	}
	if id == "" {
		return GroupInfo{}, fmt.Errorf("service: empty group ID")
	}
	m, err := s.canonicalize(members)
	if err != nil {
		return GroupInfo{}, err
	}
	grp := &group{id: id}
	grp.m.Store(m)
	s.groupsMu.Lock()
	if _, dup := s.groups[id]; dup {
		s.groupsMu.Unlock()
		return GroupInfo{}, fmt.Errorf("%w: %s", ErrGroupExists, id)
	}
	s.groups[id] = grp
	n := len(s.groups)
	s.groupsMu.Unlock()
	if h := s.tel(); h != nil {
		h.opsCreate.Inc()
		h.groups.Set(int64(n))
	}
	// A churned group (delete + re-create under the same ID) may still be
	// watched; its subscribers get the fresh placement's tree pushed.
	s.noteGroupChanged(id)
	return grp.info(), nil
}

// Describe returns a group's current membership.
func (s *Service) Describe(ctx context.Context, id string) (GroupInfo, error) {
	if err := ctx.Err(); err != nil {
		return GroupInfo{}, err
	}
	grp := s.lookupGroup(id)
	if grp == nil {
		return GroupInfo{}, fmt.Errorf("%w: %s", ErrNoSuchGroup, id)
	}
	return grp.info(), nil
}

// Canonicalize validates an explicit membership (members[0] is the
// source) and returns its canonical routing tuple: the tree-cache key,
// the source, and the canonical member set. The federation router uses
// it to route TreeFor requests the same way GetTree routes registered
// groups.
func (s *Service) Canonicalize(members []topology.NodeID) (key string, source topology.NodeID, canonical []topology.NodeID, err error) {
	m, err := s.canonicalize(members)
	if err != nil {
		return "", 0, nil, err
	}
	return m.key, m.source, m.members, nil
}

// GroupSnapshot returns a group's current membership without copying:
// the source, the canonical member set (READ-ONLY — it is the live
// snapshot shared with concurrent readers), and the tree-cache key. The
// federation router uses it to route GetTree by key with zero per-op
// allocation.
func (s *Service) GroupSnapshot(id string) (source topology.NodeID, members []topology.NodeID, key string, err error) {
	grp := s.lookupGroup(id)
	if grp == nil {
		return 0, nil, "", fmt.Errorf("%w: %s", ErrNoSuchGroup, id)
	}
	m := grp.m.Load()
	return m.source, m.members, m.key, nil
}

// Join adds a host to a group. Joining a current member is a no-op
// returning the unchanged membership.
func (s *Service) Join(ctx context.Context, id string, host topology.NodeID) (GroupInfo, error) {
	if err := ctx.Err(); err != nil {
		return GroupInfo{}, err
	}
	if s.closing.Load() {
		return GroupInfo{}, ErrDraining
	}
	grp := s.lookupGroup(id)
	if grp == nil {
		return GroupInfo{}, fmt.Errorf("%w: %s", ErrNoSuchGroup, id)
	}
	if host < 0 || int(host) >= s.g.NumNodes() || s.g.Node(host).Kind != topology.Host {
		return GroupInfo{}, fmt.Errorf("%w: node %d", ErrBadMember, host)
	}
	grp.mu.Lock()
	defer grp.mu.Unlock()
	cur := grp.m.Load()
	i := sort.Search(len(cur.members), func(i int) bool { return cur.members[i] >= host })
	if i < len(cur.members) && cur.members[i] == host {
		return grp.info(), nil
	}
	members := make([]topology.NodeID, 0, len(cur.members)+1)
	members = append(members, cur.members[:i]...)
	members = append(members, host)
	members = append(members, cur.members[i:]...)
	next := &membership{
		key:       treeKey(cur.source, members),
		source:    cur.source,
		members:   members,
		receivers: receiversOf(cur.source, members),
		version:   cur.version + 1,
	}
	grp.m.Store(next)
	if h := s.tel(); h != nil {
		h.opsJoin.Inc()
	}
	s.noteGroupChanged(id)
	return grp.info(), nil
}

// Leave removes a host from a group. When the source leaves, the lowest
// remaining member becomes the new source. Shrinking below two members
// fails with ErrGroupTooSmall (delete the group instead).
func (s *Service) Leave(ctx context.Context, id string, host topology.NodeID) (GroupInfo, error) {
	if err := ctx.Err(); err != nil {
		return GroupInfo{}, err
	}
	if s.closing.Load() {
		return GroupInfo{}, ErrDraining
	}
	grp := s.lookupGroup(id)
	if grp == nil {
		return GroupInfo{}, fmt.Errorf("%w: %s", ErrNoSuchGroup, id)
	}
	grp.mu.Lock()
	defer grp.mu.Unlock()
	cur := grp.m.Load()
	i := sort.Search(len(cur.members), func(i int) bool { return cur.members[i] >= host })
	if i >= len(cur.members) || cur.members[i] != host {
		return GroupInfo{}, fmt.Errorf("%w: node %d not in %s", ErrNotMember, host, id)
	}
	if len(cur.members) <= 2 {
		return GroupInfo{}, ErrGroupTooSmall
	}
	members := make([]topology.NodeID, 0, len(cur.members)-1)
	members = append(members, cur.members[:i]...)
	members = append(members, cur.members[i+1:]...)
	source := cur.source
	if host == source {
		source = members[0]
	}
	next := &membership{
		key:       treeKey(source, members),
		source:    source,
		members:   members,
		receivers: receiversOf(source, members),
		version:   cur.version + 1,
	}
	grp.m.Store(next)
	if h := s.tel(); h != nil {
		h.opsLeave.Inc()
	}
	s.noteGroupChanged(id)
	return grp.info(), nil
}

// DeleteGroup unregisters a group. Cached trees for its membership stay
// until evicted or invalidated — they may serve other groups with the
// same canonical member set.
func (s *Service) DeleteGroup(ctx context.Context, id string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.closing.Load() {
		return ErrDraining
	}
	s.groupsMu.Lock()
	_, ok := s.groups[id]
	delete(s.groups, id)
	n := len(s.groups)
	s.groupsMu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchGroup, id)
	}
	if h := s.tel(); h != nil {
		h.opsDelete.Inc()
		h.groups.Set(int64(n))
	}
	return nil
}

// GetTree returns the multicast distribution tree for a group's current
// membership: a cache hit when a fresh tree is published (0 allocs), a
// coalesced wait when another request is already computing it, or a fresh
// computation — which pays admission control and, for failure-driven
// recomputes, the charged controller install latency. An expired or
// cancelled ctx aborts coalesced waits and fails abandoned computations
// with ctx.Err() after their admission token is returned.
func (s *Service) GetTree(ctx context.Context, id string) (TreeInfo, error) {
	if err := ctx.Err(); err != nil {
		return TreeInfo{}, err
	}
	if s.closing.Load() {
		return TreeInfo{}, ErrDraining
	}
	grp := s.lookupGroup(id)
	if grp == nil {
		return TreeInfo{}, fmt.Errorf("%w: %s", ErrNoSuchGroup, id)
	}
	m := grp.m.Load()
	h := s.tel()
	if h != nil {
		h.opsGet.Inc()
	}
	return s.getTreeFor(ctx, m, h)
}

// TreeFor computes (or serves from cache) the tree for an explicit
// membership with members[0] as the source — the group-registry-free
// entry point federated routers call on replicas. It shares the cache,
// singleflight, admission control, and invalidation machinery with
// GetTree: a replica serving TreeFor behaves exactly like the single-node
// GetTree path for an equivalent group.
func (s *Service) TreeFor(ctx context.Context, members []topology.NodeID) (TreeInfo, error) {
	if err := ctx.Err(); err != nil {
		return TreeInfo{}, err
	}
	if s.closing.Load() {
		return TreeInfo{}, ErrDraining
	}
	m, err := s.canonicalize(members)
	if err != nil {
		return TreeInfo{}, err
	}
	h := s.tel()
	if h != nil {
		h.opsGet.Inc()
	}
	return s.getTreeFor(ctx, m, h)
}

// TreeForCanonical is TreeFor for a pre-canonicalized membership: source,
// the canonical member set (sorted, deduplicated, containing source), and
// its tree key, as returned by GroupSnapshot or CanonicalKey. Trusted
// callers only — the in-process federation backend uses it to skip
// re-canonicalization on the per-op path. The members slice is retained
// read-only; receivers are derived lazily on the compute path.
func (s *Service) TreeForCanonical(ctx context.Context, key string, source topology.NodeID, members []topology.NodeID) (TreeInfo, error) {
	if err := ctx.Err(); err != nil {
		return TreeInfo{}, err
	}
	if s.closing.Load() {
		return TreeInfo{}, ErrDraining
	}
	m := &membership{key: key, source: source, members: members}
	h := s.tel()
	if h != nil {
		h.opsGet.Inc()
	}
	return s.getTreeFor(ctx, m, h)
}

// getTreeFor serves one membership from the cache or computes it.
func (s *Service) getTreeFor(ctx context.Context, m *membership, h *telHooks) (TreeInfo, error) {
	if e := s.cache.lookup(m.key); e != nil {
		if v := e.val.Load(); v != nil && !v.stale.Load() && s.checkServe(v, m) {
			s.cache.touch(e)
			if h != nil {
				h.hits.Inc()
				h.treeCost.Observe(int64(v.cost))
			}
			return s.treeInfo(v, true), nil
		}
	}
	return s.computeTree(ctx, m, h)
}

// checkServe re-validates a hit against the current graph when an
// invariant suite is armed. Under the topology read-lock the stale flag
// is settled with respect to every completed failure transition, so a
// false return (the value went stale while we raced a failure) routes the
// request to the recompute path instead of tripping the checker.
func (s *Service) checkServe(v *treeVal, m *membership) bool {
	iv := invariant.Active()
	if iv == nil {
		return true
	}
	s.topoMu.RLock()
	defer s.topoMu.RUnlock()
	if v.stale.Load() {
		return false
	}
	err := v.tree.Validate(s.g, m.recv())
	iv.Checkf(ServedTreeFresh, err == nil,
		"cached tree for key %q invalid on current graph: %v", m.key, err)
	return true
}

// treeInfo assembles a response from a published value.
func (s *Service) treeInfo(v *treeVal, cached bool) TreeInfo {
	return TreeInfo{
		Tree:       v.tree,
		Source:     v.tree.Source,
		Cost:       v.cost,
		Gen:        v.gen,
		CurrentGen: s.gen.Load(),
		InstallPs:  v.installPs,
		Cached:     cached,
		Patched:    v.patched,
		RepairGen:  v.repairGen,
	}
}

// computeTree is the miss path: singleflight-coalesce onto an in-flight
// computation, or run one under admission control. The computation itself
// is not interruptible (it is CPU-bound and its result is published for
// coalesced waiters), but an abandoned caller gets ctx.Err() back as soon
// as the compute finishes — after its admission token is returned, so a
// hung client can never leak capacity.
func (s *Service) computeTree(ctx context.Context, m *membership, h *telHooks) (TreeInfo, error) {
	e, evicted := s.cache.ensure(m.key)
	if h != nil {
		if evicted {
			h.evictions.Inc()
		}
		s.noteShard(h, e.shard)
	}
	e.mu.Lock()
	// Re-check under the entry lock: another request may have published a
	// fresh value between our lookup and here.
	if v := e.val.Load(); v != nil && !v.stale.Load() {
		e.mu.Unlock()
		s.cache.touch(e)
		if h != nil {
			h.hits.Inc()
			h.treeCost.Observe(int64(v.cost))
		}
		return s.treeInfo(v, true), nil
	}
	if f := e.inflight; f != nil {
		e.mu.Unlock()
		if h != nil {
			h.coalesced.Inc()
		}
		// A coalesced waiter honors its own deadline: abandoning the wait
		// leaves the flight (and its token accounting) untouched.
		select {
		case <-f.done:
		case <-ctx.Done():
			return TreeInfo{}, ctx.Err()
		}
		if f.err != nil {
			return TreeInfo{}, f.err
		}
		return s.treeInfo(f.val, true), nil
	}
	f := &flight{done: make(chan struct{})}
	e.inflight = f
	e.mu.Unlock()

	finish := func(v *treeVal, err error) {
		e.mu.Lock()
		e.inflight = nil
		e.mu.Unlock()
		f.val, f.err = v, err
		close(f.done)
	}

	// Admission control: fail fast when the computation budget is spent.
	// Coalesced waiters of this flight share the rejection — backpressure
	// applies to the computation, not to each caller individually.
	select {
	case s.inflight <- struct{}{}:
	default:
		if h != nil {
			h.overloaded.Inc()
		}
		finish(nil, ErrOverloaded)
		return TreeInfo{}, ErrOverloaded
	}
	s.computes.Add(1)
	v, err := s.runCompute(e, m, h)
	s.computes.Done()
	<-s.inflight
	finish(v, err)
	if err != nil {
		return TreeInfo{}, err
	}
	if h != nil {
		h.misses.Inc()
		h.treeCost.Observe(int64(v.cost))
	}
	s.cache.touch(e)
	// The tree is published and the token released; an abandoned request
	// still reports its own failure so the daemon can answer 504.
	if cerr := ctx.Err(); cerr != nil {
		return TreeInfo{}, cerr
	}
	return s.treeInfo(v, false), nil
}

// runCompute builds and publishes one tree under the topology read-lock,
// so no failure transition interleaves between construction, link
// indexing, and publication.
func (s *Service) runCompute(e *entry, m *membership, h *telHooks) (*treeVal, error) {
	if s.opts.ComputeHook != nil {
		// Test seam, deliberately outside the topology lock so a gated
		// compute cannot deadlock failure injection.
		s.opts.ComputeHook()
	}
	receivers := m.recv()
	s.topoMu.RLock()
	defer s.topoMu.RUnlock()
	// During an announced epoch, computes run on the plan view — the
	// current graph plus the to-be-removed circuits failed — so every
	// tree built in the window is valid both now and after the
	// switch-over (the view is strictly more degraded than the graph).
	g := s.g
	if s.plan != nil {
		g = s.plan.view
	}
	gen := s.gen.Load()
	prior := e.val.Load()
	failureDriven := prior != nil && prior.stale.Load()

	// Patch-first: an invalidated entry keeps its old tree around, so graft
	// the orphaned receivers back in instead of re-peeling from scratch.
	// Chains of patches are capped — after maxRepairChain consecutive
	// grafts the entry re-peels fully to re-converge on peel quality.
	var (
		tree      *steiner.Tree
		err       error
		stats     steiner.RepairStats
		patched   bool
		repairGen uint64
	)
	attempted := failureDriven && s.opts.Repair == RepairPatch && prior.repairGen < maxRepairChain
	if attempted {
		tree, stats, err = core.RepairTree(g, prior.tree, -1, receivers, steiner.DefaultRepairPolicy())
		patched = err == nil && !stats.FellBack
	} else {
		tree, err = core.BuildTree(g, m.source, receivers)
	}
	if err != nil {
		return nil, fmt.Errorf("service: tree for %q: %w", m.key, err)
	}
	if patched {
		repairGen = prior.repairGen + 1
		s.repairsPatched.Add(1)
	} else if attempted {
		s.repairsFallback.Add(1)
	}
	if iv := invariant.Active(); iv != nil && !patched {
		// A lazily re-peeled tree must satisfy the same validity and
		// Theorem 2.5 budget checks as the collective repair path's.
		// (Accepted patches were already checked by core.RepairTree under
		// the steiner.repaired-tree-valid invariant.)
		steiner.ReportTreeChecks(iv, g, tree, receivers)
	}
	var installPs int64
	if !patched || stats.GraftEdges > 0 {
		// Charge the §3.1 controller round trip for pushing this tree's
		// rules. The model's RNG is shared across computations; serialize
		// draws. A patch that installed no new forwarding rules (pure prune
		// or no-op) charges nothing — there is nothing to push.
		s.ctrlMu.Lock()
		installPs = int64(s.ctrl.SetupDelay())
		s.ctrlMu.Unlock()
		if h != nil {
			h.installPs.Observe(installPs)
		}
	}
	if h != nil {
		if failureDriven {
			h.recomputes.Inc()
		}
		if patched {
			h.repairPatched.Inc()
			h.repairPatchPs.Observe(installPs)
			h.repairCostDelta.Observe(int64(tree.Cost() - prior.cost))
		} else if attempted {
			h.repairFallback.Inc()
		}
	}
	v := &treeVal{
		tree: tree, cost: tree.Cost(), gen: gen, installPs: installPs,
		patched: patched, repairGen: repairGen,
	}
	s.cache.index(e, tree.Links(g))
	e.val.Store(v)
	return v, nil
}

// RepairCounts reports how invalidated entries recomputed: patched is the
// count served by an incremental graft, fellBack the count where a patch
// attempt degraded to a full re-peel (policy bounds, cost envelope, or a
// chain-cap rebuild).
func (s *Service) RepairCounts() (patched, fellBack int64) {
	return s.repairsPatched.Load(), s.repairsFallback.Load()
}

// Stats is a point-in-time service census.
type Stats struct {
	Groups              int    `json:"groups"`
	CacheEntries        int    `json:"cache_entries"`
	Shards              int    `json:"shards"`
	Gen                 uint64 `json:"topology_generation"`
	FailedLinks         int    `json:"failed_links"`
	MaxInflight         int    `json:"max_inflight"`
	RepairMode          string `json:"repair_mode"`
	RepairsPatched      int64  `json:"repairs_patched"`
	RepairsFullFallback int64  `json:"repairs_full_fallback"`
	EpochsCommitted     int64  `json:"epochs_committed"`
	EpochPrePeels       int64  `json:"epoch_pre_peels"`
}

// Stats snapshots the service.
func (s *Service) Stats() Stats {
	s.groupsMu.RLock()
	groups := len(s.groups)
	s.groupsMu.RUnlock()
	total, _ := s.cache.entryCount()
	s.topoMu.RLock()
	failed := s.g.NumFailedLinks()
	s.topoMu.RUnlock()
	return Stats{
		Groups:              groups,
		CacheEntries:        total,
		Shards:              len(s.cache.shards),
		Gen:                 s.gen.Load(),
		FailedLinks:         failed,
		MaxInflight:         s.opts.MaxInflight,
		RepairMode:          s.opts.Repair,
		RepairsPatched:      s.repairsPatched.Load(),
		RepairsFullFallback: s.repairsFallback.Load(),
		EpochsCommitted:     s.epochsCommitted.Load(),
		EpochPrePeels:       s.prePeels.Load(),
	}
}

// RefreshGauges pushes the current entry/generation census into the
// armed telemetry sink's gauges (exporters call it before snapshotting).
func (s *Service) RefreshGauges() {
	h := s.tel()
	if h == nil {
		return
	}
	total, per := s.cache.entryCount()
	h.entries.Set(int64(total))
	h.topoGen.Set(int64(s.gen.Load()))
	for i, n := range per {
		h.shardEntries[i].Set(int64(n))
		h.shardGens[i].Set(int64(s.cache.shards[i].gen.Load()))
	}
	s.groupsMu.RLock()
	h.groups.Set(int64(len(s.groups)))
	s.groupsMu.RUnlock()
}
