package service

import (
	"slices"
	"strconv"

	"peel/internal/topology"
)

// Cache keys. A tree is determined by (source, member set, topology
// state); the cache key canonicalizes the first two — duplicate members
// collapse and member order is irrelevant — so any two groups broadcasting
// from the same source to the same host set share one cache entry. The
// third dimension, topology state, is handled by generation-based
// invalidation (see cache.go), not by the key: keys stay stable across
// failures so a heal naturally re-converges onto the same entry.

// canonicalMembers returns the deduplicated, ascending member set
// including the source. The input is not mutated.
func canonicalMembers(source topology.NodeID, members []topology.NodeID) []topology.NodeID {
	out := make([]topology.NodeID, 0, len(members)+1)
	out = append(out, source)
	out = append(out, members...)
	slices.Sort(out)
	return slices.Compact(out)
}

// treeKey renders the canonical cache key for (source, canonical member
// set): the source ID, then the sorted member IDs, base-36 packed.
// Canonical input is assumed (callers hold the output of
// canonicalMembers), so permuted or duplicated member lists of the same
// set always render the same key.
func treeKey(source topology.NodeID, canonical []topology.NodeID) string {
	buf := make([]byte, 0, 4*len(canonical)+8)
	buf = strconv.AppendInt(buf, int64(source), 36)
	buf = append(buf, '|')
	for i, m := range canonical {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(m), 36)
	}
	return string(buf)
}

// CanonicalKey renders the tree-cache key for (source, members) after
// canonicalizing the member set: permutations and duplications of the
// same set produce the same key. The federation router hashes this key
// onto its replica ring, so routing inherits the cache's sharing
// property — two groups with one canonical membership land on one
// replica's one cache entry.
func CanonicalKey(source topology.NodeID, members []topology.NodeID) string {
	return treeKey(source, canonicalMembers(source, members))
}

// receiversOf returns the canonical member set minus the source — the
// destination list handed to tree construction and validation.
func receiversOf(source topology.NodeID, canonical []topology.NodeID) []topology.NodeID {
	out := make([]topology.NodeID, 0, len(canonical)-1)
	for _, m := range canonical {
		if m != source {
			out = append(out, m)
		}
	}
	return out
}
