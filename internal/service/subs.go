package service

// The push layer: group watches hooked into the invalidation machinery.
//
// The HTTP daemon's GetTree is pull-only — after a failure invalidates a
// cached tree, the client does not learn about the repair until its next
// poll, so invalidation-to-client latency is invisible and unbounded. A
// Watch turns the cache into a state-distribution layer: the wire server
// (internal/service/wire) registers one watch per subscribed group, and
// every failure transition enqueues the watched groups for an *eager*
// refresh — the refresher re-runs GetTree (patch-first, the same repair
// path as lazy recomputes) and publishes the fresh tree to every watcher.
// Membership edits (join/leave/churn) on a watched group publish the same
// way.
//
// Publication discipline: a refresh publishes only when it produced a
// fresh computation (!Cached — membership changed or the entry was
// invalidated) or when its generation advanced past the group's last
// published one (another request already recomputed it). Unaffected
// groups — their tree does not cross the failed link, so the cached value
// stays fresh — are skipped, so a flap storm does not spam subscribers
// with identical trees.
//
// The refresher is a single goroutine fed by a pending set keyed on group
// ID, so a burst of transitions coalesces into one refresh per group; it
// never runs under topoMu (the failure observer only marks the pending
// set), so eager refreshes cannot deadlock failure injection.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// PushCause classifies why a tree update was pushed.
type PushCause uint8

const (
	// CauseFailure: a failure transition invalidated the group's tree and
	// the refresher recomputed it.
	CauseFailure PushCause = iota
	// CauseMembership: a join/leave/churn edit changed the membership.
	CauseMembership
	// CauseEpoch: an announced fabric reconfiguration pre-peeled the
	// group's tree ahead of the epoch boundary (service.PlanEpoch).
	CauseEpoch
)

func (c PushCause) String() string {
	switch c {
	case CauseFailure:
		return "failure"
	case CauseMembership:
		return "membership"
	case CauseEpoch:
		return "epoch"
	default:
		return fmt.Sprintf("cause(%d)", uint8(c))
	}
}

// PushUpdate is one published tree update delivered to watch callbacks.
type PushUpdate struct {
	Group string
	Info  TreeInfo
	Cause PushCause
	// InvalidatedAt is when the triggering failure transition was
	// observed (zero for membership-driven pushes); the wire server's
	// push-latency histogram measures delivery against it.
	InvalidatedAt time.Time
}

// Watch is one registered group watch; Close unregisters it.
type Watch struct {
	s    *Service
	id   string
	fn   func(PushUpdate)
	once sync.Once
}

// Close unregisters the watch. Idempotent; no callbacks run after Close
// returns unless one was already in flight.
func (w *Watch) Close() {
	w.once.Do(func() { w.s.unwatch(w) })
}

// watchSet is the per-group watcher census plus publication state.
type watchSet struct {
	watchers map[*Watch]struct{}
	lastPub  uint64 // generation of the last published update
	primed   bool   // a first publish happened (lastPub is meaningful)
}

// refreshReq accumulates the causes pending for one group between
// refresher passes.
type refreshReq struct {
	causes  uint8 // bit 0: failure, bit 1: membership
	invalAt time.Time
	retries int
}

const (
	causeBitFailure    = 1 << 0
	causeBitMembership = 1 << 1

	// refreshTimeout bounds one eager recompute; a stuck compute must not
	// wedge the refresher for every other watched group.
	refreshTimeout = 10 * time.Second
	// maxRefreshRetries bounds requeues of a refresh that keeps failing
	// transiently (admission rejection under overload).
	maxRefreshRetries = 8
)

// Watch registers fn for pushed tree updates on group id. The group must
// exist; fn must not block (the wire server's callbacks enqueue onto
// bounded per-connection queues and shed). No initial snapshot is
// delivered — subscribers fetch their own (GetTree) so the snapshot is
// sequenced by the caller's protocol, not raced through the refresher.
func (s *Service) Watch(id string, fn func(PushUpdate)) (*Watch, error) {
	if s.closing.Load() {
		return nil, ErrDraining
	}
	if s.lookupGroup(id) == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchGroup, id)
	}
	w := &Watch{s: s, id: id, fn: fn}
	s.watchMu.Lock()
	if s.watched == nil {
		s.watched = map[string]*watchSet{}
		s.pendingRefresh = map[string]refreshReq{}
		s.refreshKick = make(chan struct{}, 1)
		s.refreshStop = make(chan struct{})
		s.refreshDone = make(chan struct{})
		go s.refreshLoop()
	}
	ws := s.watched[id]
	if ws == nil {
		ws = &watchSet{watchers: map[*Watch]struct{}{}}
		// Prime publication state from the cache so the first unrelated
		// flap does not push an unaffected tree the subscriber already
		// fetched as its snapshot.
		if ti, ok := s.CachedTreeInfo(id); ok {
			ws.lastPub, ws.primed = ti.Gen, true
		}
		s.watched[id] = ws
	}
	ws.watchers[w] = struct{}{}
	n := len(s.watched)
	s.watchMu.Unlock()
	if h := s.tel(); h != nil {
		h.pushWatched.Set(int64(n))
	}
	return w, nil
}

// unwatch removes w; the last watcher of a group drops its publication
// state so a later re-watch starts clean.
func (s *Service) unwatch(w *Watch) {
	s.watchMu.Lock()
	if ws := s.watched[w.id]; ws != nil {
		delete(ws.watchers, w)
		if len(ws.watchers) == 0 {
			delete(s.watched, w.id)
			delete(s.pendingRefresh, w.id)
		}
	}
	n := len(s.watched)
	s.watchMu.Unlock()
	if h := s.tel(); h != nil {
		h.pushWatched.Set(int64(n))
	}
}

// NumWatched reports how many groups currently have watchers.
func (s *Service) NumWatched() int {
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	return len(s.watched)
}

// noteInvalidation marks every watched group for an eager refresh. Called
// from the failure observer, typically under topoMu — it must not block
// and must not compute anything.
func (s *Service) noteInvalidation(at time.Time) {
	s.watchMu.Lock()
	if len(s.watched) == 0 {
		s.watchMu.Unlock()
		return
	}
	for id := range s.watched {
		req := s.pendingRefresh[id]
		req.causes |= causeBitFailure
		if req.invalAt.IsZero() {
			req.invalAt = at
		}
		s.pendingRefresh[id] = req
	}
	kick := s.refreshKick
	s.watchMu.Unlock()
	select {
	case kick <- struct{}{}:
	default:
	}
}

// noteGroupChanged marks one group for a refresh after a membership edit.
// A no-op for unwatched groups, so the lifecycle fast paths pay one mutex
// acquisition and a map probe.
func (s *Service) noteGroupChanged(id string) {
	s.watchMu.Lock()
	ws := s.watched[id]
	if ws == nil {
		s.watchMu.Unlock()
		return
	}
	req := s.pendingRefresh[id]
	req.causes |= causeBitMembership
	s.pendingRefresh[id] = req
	kick := s.refreshKick
	s.watchMu.Unlock()
	select {
	case kick <- struct{}{}:
	default:
	}
}

// refreshLoop drains the pending set: one GetTree per marked group, then
// publish to its watchers. Started lazily by the first Watch; stopped by
// Close.
func (s *Service) refreshLoop() {
	defer close(s.refreshDone)
	for {
		select {
		case <-s.refreshStop:
			return
		case <-s.refreshKick:
		}
		for {
			s.watchMu.Lock()
			if len(s.pendingRefresh) == 0 {
				s.watchMu.Unlock()
				break
			}
			batch := s.pendingRefresh
			s.pendingRefresh = map[string]refreshReq{}
			s.watchMu.Unlock()
			for id, req := range batch {
				s.refreshOne(id, req)
			}
		}
	}
}

// refreshOne recomputes one watched group and publishes the result.
func (s *Service) refreshOne(id string, req refreshReq) {
	h := s.tel()
	if h != nil {
		h.pushRefreshes.Inc()
	}
	ctx, cancel := context.WithTimeout(context.Background(), refreshTimeout)
	ti, err := s.GetTree(ctx, id)
	cancel()
	if err != nil {
		switch {
		case errors.Is(err, ErrNoSuchGroup):
			// Deleted mid-refresh (churn): the re-create path will mark it
			// changed again.
			return
		case errors.Is(err, ErrDraining):
			return
		default:
			// Transient (admission rejection, deadline, unreachable during
			// a flap window): requeue with a retry budget so a persistent
			// failure cannot spin the loop.
			if req.retries >= maxRefreshRetries {
				if h != nil {
					h.pushAbandoned.Inc()
				}
				return
			}
			req.retries++
			s.watchMu.Lock()
			if _, stillWatched := s.watched[id]; stillWatched {
				cur := s.pendingRefresh[id]
				cur.causes |= req.causes
				if cur.invalAt.IsZero() {
					cur.invalAt = req.invalAt
				}
				cur.retries = req.retries
				s.pendingRefresh[id] = cur
				select {
				case s.refreshKick <- struct{}{}:
				default:
				}
			}
			s.watchMu.Unlock()
			return
		}
	}
	cause := CauseFailure
	if req.causes&causeBitFailure == 0 {
		cause = CauseMembership
	}
	s.publish(id, ti, cause, req.invalAt)
}

// publish fans a refreshed tree out to the group's watchers, applying the
// publication discipline from the file comment: fresh computations always
// publish, cache hits publish only when their generation advanced.
func (s *Service) publish(id string, ti TreeInfo, cause PushCause, invalAt time.Time) {
	s.watchMu.Lock()
	ws := s.watched[id]
	if ws == nil {
		s.watchMu.Unlock()
		return
	}
	// Epoch pre-peels bypass the cached-hit suppression: groups sharing
	// one cache entry all need the replacement pushed, but only the first
	// pre-peel observes !Cached — the topology generation has not moved
	// yet, so the generation test below cannot distinguish the rest.
	if cause != CauseEpoch && ti.Cached && ws.primed && ti.Gen <= ws.lastPub {
		s.watchMu.Unlock()
		if h := s.tel(); h != nil {
			h.pushSkipped.Inc()
		}
		return
	}
	if ws.primed && ti.Gen < ws.lastPub {
		// Never push a generation regression: a stale compute lost a race
		// with a newer transition; the newer refresh is already pending.
		s.watchMu.Unlock()
		if h := s.tel(); h != nil {
			h.pushSkipped.Inc()
		}
		return
	}
	ws.lastPub = ti.Gen
	ws.primed = true
	targets := make([]*Watch, 0, len(ws.watchers))
	for w := range ws.watchers {
		targets = append(targets, w)
	}
	s.watchMu.Unlock()
	if h := s.tel(); h != nil {
		h.pushPublished.Inc()
	}
	pu := PushUpdate{Group: id, Info: ti, Cause: cause}
	if cause == CauseFailure {
		pu.InvalidatedAt = invalAt
	}
	for _, w := range targets {
		w.fn(pu)
	}
}

// CachedTreeInfo returns the group's currently published cache value, if
// any, without counting a request or triggering a computation — the wire
// layer's pushed-tree-matches-cache invariant reads the cache through it.
func (s *Service) CachedTreeInfo(id string) (TreeInfo, bool) {
	grp := s.lookupGroup(id)
	if grp == nil {
		return TreeInfo{}, false
	}
	m := grp.m.Load()
	e := s.cache.lookup(m.key)
	if e == nil {
		return TreeInfo{}, false
	}
	v := e.val.Load()
	if v == nil {
		return TreeInfo{}, false
	}
	return s.treeInfo(v, true), true
}

// stopRefresher shuts the refresh loop down (Close path). Safe when the
// loop never started.
func (s *Service) stopRefresher() {
	s.watchMu.Lock()
	stop, done := s.refreshStop, s.refreshDone
	s.watchMu.Unlock()
	if stop == nil {
		return
	}
	select {
	case <-stop:
	default:
		close(stop)
	}
	<-done
}
