package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"peel/internal/steiner"
	"peel/internal/topology"
)

// receiverUplink returns the tree link feeding one receiver's edge
// switch. Failing it orphans a small subtree — within the repair policy's
// orphan-fraction bound, unlike the source-side uplink switchLink tends
// to pick — so the patcher can graft instead of falling back.
func receiverUplink(t testing.TB, g *topology.Graph, tree *steiner.Tree, recv topology.NodeID) topology.LinkID {
	t.Helper()
	e := g.EdgeSwitchOf(recv)
	p := tree.Parent[e]
	if p == topology.None {
		t.Fatalf("edge switch %d of receiver %d not in tree", e, recv)
	}
	id := g.LinkBetween(p, e)
	if id < 0 {
		t.Fatalf("no live link %d-%d", p, e)
	}
	return id
}

// TestRepairModePatchUsedOnInvalidation: under the default patch mode, a
// failure-driven recompute grafts the orphaned receivers instead of
// re-peeling, and the response carries the repair lineage.
func TestRepairModePatchUsedOnInvalidation(t *testing.T) {
	s, g := newTestService(t, 4, Options{})
	hosts := g.Hosts()
	if _, err := s.CreateGroup(context.Background(), "r", []topology.NodeID{hosts[0], hosts[4], hosts[9], hosts[13]}); err != nil {
		t.Fatal(err)
	}
	ti, err := s.GetTree(context.Background(), "r")
	if err != nil {
		t.Fatal(err)
	}
	if ti.Patched || ti.RepairGen != 0 {
		t.Fatalf("cold compute marked patched: %+v", ti)
	}
	failed := receiverUplink(t, g, ti.Tree, hosts[13])
	s.FailLink(failed)
	re, err := s.GetTree(context.Background(), "r")
	if err != nil {
		t.Fatal(err)
	}
	if re.Cached {
		t.Fatal("invalidated entry served from cache")
	}
	if !re.Patched || re.RepairGen != 1 {
		t.Fatalf("failure-driven recompute not patched: patched=%v repairGen=%d", re.Patched, re.RepairGen)
	}
	if err := re.Tree.Validate(g, []topology.NodeID{hosts[4], hosts[9], hosts[13]}); err != nil {
		t.Fatalf("patched tree invalid: %v", err)
	}
	if re.InstallPs <= 0 {
		t.Fatal("graft patch installed rules but charged no latency")
	}
	patched, fellBack := s.RepairCounts()
	if patched != 1 || fellBack != 0 {
		t.Fatalf("RepairCounts = (%d, %d), want (1, 0)", patched, fellBack)
	}
	if st := s.Stats(); st.RepairsPatched != 1 || st.RepairMode != RepairPatch {
		t.Fatalf("Stats repair census wrong: %+v", st)
	}
}

// TestRepairModeFullDisablesPatch: Repair=full restores the
// pre-incremental behavior — every invalidation re-peels from scratch.
func TestRepairModeFullDisablesPatch(t *testing.T) {
	s, g := newTestService(t, 4, Options{Repair: RepairFull})
	hosts := g.Hosts()
	if _, err := s.CreateGroup(context.Background(), "f", []topology.NodeID{hosts[0], hosts[4], hosts[9]}); err != nil {
		t.Fatal(err)
	}
	ti, err := s.GetTree(context.Background(), "f")
	if err != nil {
		t.Fatal(err)
	}
	s.FailLink(switchLink(t, g, ti.Tree))
	re, err := s.GetTree(context.Background(), "f")
	if err != nil {
		t.Fatal(err)
	}
	if re.Patched || re.RepairGen != 0 {
		t.Fatalf("full mode produced a patch: %+v", re)
	}
	if patched, fellBack := s.RepairCounts(); patched != 0 || fellBack != 0 {
		t.Fatalf("full mode touched repair counters: (%d, %d)", patched, fellBack)
	}
}

// TestRepairChainCapForcesFullRebuild: after maxRepairChain consecutive
// patches one entry re-peels fully, resetting the chain.
func TestRepairChainCapForcesFullRebuild(t *testing.T) {
	s, g := newTestService(t, 4, Options{})
	hosts := g.Hosts()
	if _, err := s.CreateGroup(context.Background(), "c", []topology.NodeID{hosts[0], hosts[4], hosts[9], hosts[13]}); err != nil {
		t.Fatal(err)
	}
	exp := uint64(0)
	forced := 0
	for i := 0; i < maxRepairChain+3; i++ {
		ti, err := s.GetTree(context.Background(), "c")
		if err != nil {
			t.Fatal(err)
		}
		if ti.RepairGen > maxRepairChain {
			t.Fatalf("repair chain exceeded cap: %d", ti.RepairGen)
		}
		if ti.Patched {
			exp++
		} else {
			if exp == maxRepairChain {
				forced++
			}
			exp = 0
		}
		if ti.RepairGen != exp {
			t.Fatalf("round %d: RepairGen = %d, want %d", i, ti.RepairGen, exp)
		}
		// Invalidate for the next round, then heal so the fabric never
		// degrades past single-failure redundancy. Always orphan the same
		// receiver's edge switch: a small graft the policy accepts, so the
		// chain grows by one per round until the cap forces a rebuild.
		failed := receiverUplink(t, g, ti.Tree, hosts[13])
		s.FailLink(failed)
		if _, err := s.GetTree(context.Background(), "c"); err != nil {
			t.Fatal(err)
		}
		s.RestoreLink(failed)
	}
	if forced == 0 {
		t.Fatal("chain cap never forced a full rebuild")
	}
}

// TestConcurrentInvalidationAndPatch hammers one cache entry with reader
// goroutines while the main goroutine flaps links its tree crosses — the
// race-detector exercise for invalidation concurrent with graft patching
// on the same shard.
func TestConcurrentInvalidationAndPatch(t *testing.T) {
	s, g := newTestService(t, 4, Options{MaxInflight: 64})
	hosts := g.Hosts()
	members := []topology.NodeID{hosts[0], hosts[4], hosts[9], hosts[13]}
	if _, err := s.CreateGroup(context.Background(), "hot", members); err != nil {
		t.Fatal(err)
	}
	ti, err := s.GetTree(context.Background(), "hot")
	if err != nil {
		t.Fatal(err)
	}
	// Switch-switch links only: single-link failures never strand a host
	// on this fabric, so every recompute must succeed.
	var targets []topology.LinkID
	for id := 0; id < g.NumLinks(); id++ {
		l := g.Link(topology.LinkID(id))
		if g.Node(l.A).Kind != topology.Host && g.Node(l.B).Kind != topology.Host {
			targets = append(targets, topology.LinkID(id))
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				got, err := s.GetTree(context.Background(), "hot")
				if err != nil {
					if errors.Is(err, ErrOverloaded) {
						continue
					}
					t.Errorf("GetTree: %v", err)
					return
				}
				if got.Tree == nil || got.RepairGen > maxRepairChain {
					t.Errorf("bad response: %+v", got)
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		id := targets[i%len(targets)]
		s.FailLink(id)
		s.RestoreLink(id)
	}
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		return
	}
	// Deterministic tail: one guaranteed invalidation + recompute so the
	// counters are provably exercised even on a slow machine.
	ti, err = s.GetTree(context.Background(), "hot")
	if err != nil {
		t.Fatal(err)
	}
	s.FailLink(switchLink(t, g, ti.Tree))
	if _, err := s.GetTree(context.Background(), "hot"); err != nil {
		t.Fatal(err)
	}
	if patched, fellBack := s.RepairCounts(); patched+fellBack == 0 {
		t.Fatal("no repair-path recompute observed")
	}
}
