package service

import (
	"fmt"

	"peel/internal/telemetry"
)

// telHooks caches the active sink's pre-resolved primitives for the
// request fast paths, following netsim's telHooks pattern — names resolve
// once per sink change, then every update is a lock-free atomic. Unlike
// netsim (single-threaded under the event loop), the service is
// concurrent, so the cache hangs off an atomic pointer; rebuilding it
// twice on a sink swap race is benign because primitives are shared by
// name inside the sink.
type telHooks struct {
	sink *telemetry.Sink

	hits        *telemetry.Counter // served from cache, fresh
	misses      *telemetry.Counter // computed on demand (cold or invalidated)
	coalesced   *telemetry.Counter // waited on another request's compute
	overloaded  *telemetry.Counter // rejected by admission control
	evictions   *telemetry.Counter // cache entries evicted at cap
	invalidated *telemetry.Counter // trees marked stale by link failures
	failures    *telemetry.Counter // failure transitions observed
	heals       *telemetry.Counter // heal transitions observed
	recomputes  *telemetry.Counter // failure-driven recomputes (lazy re-peels)

	repairPatched  *telemetry.Counter // invalidated entries patched incrementally
	repairFallback *telemetry.Counter // patch attempts that fell back to a full peel

	epochs            *telemetry.Counter // epoch switch-overs committed
	epochsPlanned     *telemetry.Counter // epoch announcements processed
	prePeels          *telemetry.Counter // groups eagerly re-peeled at announce
	epochPlannedInval *telemetry.Counter // entries invalidated by announcements
	epochCommitInval  *telemetry.Counter // entries still invalidated at commit

	pushRefreshes *telemetry.Counter // eager recomputes run for watched groups
	pushPublished *telemetry.Counter // tree updates published to watchers
	pushSkipped   *telemetry.Counter // refreshes suppressed (unaffected or stale)
	pushAbandoned *telemetry.Counter // refreshes dropped after the retry budget

	opsGet    *telemetry.Counter
	opsJoin   *telemetry.Counter
	opsLeave  *telemetry.Counter
	opsCreate *telemetry.Counter
	opsDelete *telemetry.Counter

	installPs *telemetry.Histogram // charged controller install latency
	treeCost  *telemetry.Histogram // cost of served trees

	repairPatchPs   *telemetry.Histogram // install latency charged for accepted patches
	repairCostDelta *telemetry.Histogram // patched cost minus the prior tree's cost

	groups      *telemetry.Gauge // live group count
	entries     *telemetry.Gauge // total cache entries
	topoGen     *telemetry.Gauge // service topology generation
	pushWatched *telemetry.Gauge // groups with registered watchers

	shardEntries []*telemetry.Gauge // per-shard entry counts
	shardGens    []*telemetry.Gauge // per-shard invalidation generations
}

// tel returns the hook cache for the active sink, or nil when telemetry
// is disabled — the disabled cost is one atomic load.
func (s *Service) tel() *telHooks {
	ts := telemetry.Active()
	if ts == nil {
		return nil
	}
	h := s.hooks.Load()
	if h == nil || h.sink != ts {
		h = newTelHooks(ts, len(s.cache.shards))
		s.hooks.Store(h)
	}
	return h
}

func newTelHooks(ts *telemetry.Sink, shards int) *telHooks {
	h := &telHooks{
		sink:           ts,
		hits:           ts.Counter("service.cache.hits"),
		misses:         ts.Counter("service.cache.misses"),
		coalesced:      ts.Counter("service.cache.coalesced"),
		overloaded:     ts.Counter("service.overloaded"),
		evictions:      ts.Counter("service.cache.evictions"),
		invalidated:    ts.Counter("service.cache.invalidated"),
		failures:       ts.Counter("service.topo.failures"),
		heals:          ts.Counter("service.topo.heals"),
		recomputes:     ts.Counter("service.recompute.failure_driven"),
		repairPatched:  ts.Counter("service.repair.patched"),
		repairFallback: ts.Counter("service.repair.full_fallback"),
		epochs:            ts.Counter("fabric.epochs"),
		epochsPlanned:     ts.Counter("fabric.epochs_planned"),
		prePeels:          ts.Counter("fabric.pre_peels"),
		epochPlannedInval: ts.Counter("fabric.planned_invalidated"),
		epochCommitInval:  ts.Counter("fabric.commit_invalidated"),

		pushRefreshes:  ts.Counter("service.push.refreshes"),
		pushPublished:  ts.Counter("service.push.published"),
		pushSkipped:    ts.Counter("service.push.skipped"),
		pushAbandoned:  ts.Counter("service.push.abandoned"),
		opsGet:         ts.Counter("service.ops.get_tree"),
		opsJoin:        ts.Counter("service.ops.join"),
		opsLeave:       ts.Counter("service.ops.leave"),
		opsCreate:      ts.Counter("service.ops.create"),
		opsDelete:      ts.Counter("service.ops.delete"),
		installPs:      ts.Histogram("service.install_ps", telemetry.Log2Layout()),
		treeCost:       ts.Histogram("service.tree_cost", telemetry.Log2Layout()),
		repairPatchPs:  ts.Histogram("service.repair.patch_ps", telemetry.Log2Layout()),
		// Cost deltas are small and can be negative (a prune-only patch
		// shrinks the tree): fixed-width buckets centered on zero.
		repairCostDelta: ts.Histogram("service.repair.patch_cost_delta", telemetry.LinearLayout(-32, 4, 32)),
		groups:          ts.Gauge("service.groups"),
		entries:         ts.Gauge("service.cache.entries"),
		topoGen:         ts.Gauge("service.topo.generation"),
		pushWatched:     ts.Gauge("service.push.watched"),
	}
	h.shardEntries = make([]*telemetry.Gauge, shards)
	h.shardGens = make([]*telemetry.Gauge, shards)
	for i := 0; i < shards; i++ {
		h.shardEntries[i] = ts.Gauge(fmt.Sprintf("service.shard%02d.entries", i))
		h.shardGens[i] = ts.Gauge(fmt.Sprintf("service.shard%02d.generation", i))
	}
	return h
}

// noteShard refreshes one shard's gauges after an insert, eviction, or
// invalidation touched it.
func (s *Service) noteShard(h *telHooks, shard int) {
	if h == nil || shard < 0 || shard >= len(h.shardEntries) {
		return
	}
	cs := &s.cache.shards[shard]
	cs.mu.RLock()
	n := len(cs.m)
	cs.mu.RUnlock()
	h.shardEntries[shard].Set(int64(n))
	h.shardGens[shard].Set(int64(cs.gen.Load()))
}
