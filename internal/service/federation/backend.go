package federation

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"peel/internal/service"
	"peel/internal/steiner"
	"peel/internal/topology"
)

// Backend is what the router needs from one replica. Two implementations
// exist: localBackend wraps an in-process service.Service (tests, peelsim
// federate, and the deterministic golden runs), httpBackend speaks the
// peeld wire API to a real process (cmd/peeld -join).
type Backend interface {
	Name() string
	// TreeFor computes (or serves from the replica's cache) the tree for a
	// pre-canonicalized membership.
	TreeFor(ctx context.Context, key string, source topology.NodeID, members []topology.NodeID) (service.TreeInfo, error)
	// ApplyEvent applies one replicated topology transition. The event
	// must be a real transition on the replica (it is, when events arrive
	// in log order on a replica built from the same pristine fabric); a
	// no-op application means the replica diverged and is an error.
	ApplyEvent(ctx context.Context, ev Event) error
	// Gen probes the replica's topology generation — its generation-vector
	// entry from its own point of view (0 after a fresh restart).
	Gen(ctx context.Context) (uint64, error)
	// Ping is the health probe (readiness, not liveness: a draining
	// replica fails it).
	Ping(ctx context.Context) error
	// Close shuts the backend down gracefully (federation shutdown, not
	// chaos).
	Close()
}

// --- in-process backend ----------------------------------------------

// localBackend hosts a service.Service with kill -9 semantics: Kill
// atomically cuts it off (calls return ErrReplicaDown, in-flight answers
// are discarded), Restart builds a fresh service on a pristine graph at
// generation 0. The abandoned service is not drained — like a killed
// process, its state just disappears (the GC is our kernel).
type localBackend struct {
	name     string
	newGraph func() *topology.Graph
	opts     service.Options
	svc      atomic.Pointer[service.Service]
	alive    atomic.Bool
	// Lifetime repair census of service images retired by Restart, so a
	// kill/restart cycle doesn't erase the replica's contribution to
	// Federation.RepairCounts.
	retiredPatched  atomic.Int64
	retiredFallback atomic.Int64
}

func newLocalBackend(name string, newGraph func() *topology.Graph, opts service.Options) *localBackend {
	b := &localBackend{name: name, newGraph: newGraph, opts: opts}
	b.svc.Store(service.New(newGraph(), opts))
	b.alive.Store(true)
	return b
}

func (b *localBackend) Name() string { return b.name }

func (b *localBackend) TreeFor(ctx context.Context, key string, source topology.NodeID, members []topology.NodeID) (service.TreeInfo, error) {
	if !b.alive.Load() {
		return service.TreeInfo{}, ErrReplicaDown
	}
	ti, err := b.svc.Load().TreeForCanonical(ctx, key, source, members)
	if !b.alive.Load() {
		// Killed mid-call: the process died before the response left it.
		return service.TreeInfo{}, ErrReplicaDown
	}
	return ti, err
}

func (b *localBackend) ApplyEvent(ctx context.Context, ev Event) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if !b.alive.Load() {
		return ErrReplicaDown
	}
	svc := b.svc.Load()
	var changed bool
	if ev.Down {
		changed = svc.FailLink(ev.Link)
	} else {
		changed = svc.RestoreLink(ev.Link)
	}
	if !changed {
		return fmt.Errorf("federation: replica %s: event %d (link %d, down=%v) was a no-op: replica diverged", b.name, ev.Seq, ev.Link, ev.Down)
	}
	return nil
}

func (b *localBackend) Gen(ctx context.Context) (uint64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if !b.alive.Load() {
		return 0, ErrReplicaDown
	}
	return b.svc.Load().Gen(), nil
}

func (b *localBackend) Ping(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if !b.alive.Load() {
		return ErrReplicaDown
	}
	if !b.svc.Load().Ready() {
		return service.ErrDraining
	}
	return nil
}

// Kill implements killRestarter: connection-refused from here on.
func (b *localBackend) Kill() bool { return b.alive.CompareAndSwap(true, false) }

// Restart implements killRestarter: a fresh process image — pristine
// fabric, cold cache, generation 0.
func (b *localBackend) Restart() bool {
	if b.alive.Load() {
		return false
	}
	if old := b.svc.Load(); old != nil {
		p, fb := old.RepairCounts()
		b.retiredPatched.Add(p)
		b.retiredFallback.Add(fb)
	}
	b.svc.Store(service.New(b.newGraph(), b.opts))
	b.alive.Store(true)
	return true
}

// RepairCounts reports the replica's lifetime repair census: the live
// service image plus every image retired by kill/restart cycles.
func (b *localBackend) RepairCounts() (patched, fellBack int64) {
	patched, fellBack = b.retiredPatched.Load(), b.retiredFallback.Load()
	if svc := b.svc.Load(); svc != nil {
		p, fb := svc.RepairCounts()
		patched += p
		fellBack += fb
	}
	return patched, fellBack
}

// Service exposes the live replica service (tests reach through it to
// simulate divergence).
func (b *localBackend) Service() *service.Service { return b.svc.Load() }

func (b *localBackend) Close() {
	if b.alive.Load() {
		b.svc.Load().Close()
	}
}

// --- HTTP backend ----------------------------------------------------

// httpBackend drives one remote peeld replica over its wire API:
// /v1/trees for computation, /v1/chaos/links for event application,
// /v1/stats for the generation probe, /readyz for health.
type httpBackend struct {
	name     string
	base     string // e.g. http://127.0.0.1:7117
	hc       *http.Client
	numNodes int // fabric size, for reconstructing parent vectors
}

// NewHTTPBackend builds a backend for a replica at base. numNodes is the
// fabric's node count (the router knows it from its oracle); it sizes
// reconstructed parent vectors so invariant checks compare like with
// like.
func NewHTTPBackend(name, base string, numNodes int) Backend {
	return &httpBackend{
		name:     name,
		base:     base,
		hc:       &http.Client{Timeout: 30 * time.Second},
		numNodes: numNodes,
	}
}

func (b *httpBackend) Name() string { return b.name }

// statusErr maps a peeld response status onto the service error taxonomy
// so the router's retry/failover classification works unchanged across
// process boundaries.
func statusErr(status int, body []byte) error {
	switch status {
	case http.StatusTooManyRequests:
		return service.ErrOverloaded
	case http.StatusServiceUnavailable:
		return service.ErrDraining
	case http.StatusGatewayTimeout:
		return context.DeadlineExceeded
	case http.StatusConflict:
		return steiner.ErrUnreachable
	case http.StatusNotFound:
		return service.ErrNoSuchGroup
	default:
		return fmt.Errorf("federation: replica answered %d: %s", status, bytes.TrimSpace(body))
	}
}

// post sends a JSON request and decodes a JSON response; transport
// failures wrap ErrReplicaDown so the router treats them as process
// death.
func (b *httpBackend) post(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, b.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := b.hc.Do(hreq)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return err
		}
		return fmt.Errorf("%w: %v", ErrReplicaDown, err)
	}
	defer hresp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(hresp.Body, 1<<20))
	if hresp.StatusCode/100 != 2 {
		return statusErr(hresp.StatusCode, raw)
	}
	if resp != nil {
		return json.Unmarshal(raw, resp)
	}
	return nil
}

func (b *httpBackend) TreeFor(ctx context.Context, key string, source topology.NodeID, members []topology.NodeID) (service.TreeInfo, error) {
	wire := make([]int32, 0, len(members)+1)
	wire = append(wire, int32(source))
	for _, m := range members {
		wire = append(wire, int32(m))
	}
	var tr service.TreeResponse
	err := b.post(ctx, "/v1/trees", map[string]any{"members": wire}, &tr)
	if err != nil {
		return service.TreeInfo{}, err
	}
	return service.TreeInfo{
		Tree:       treeFromResponse(tr, b.numNodes),
		Source:     topology.NodeID(tr.Source),
		Cost:       tr.Cost,
		Gen:        tr.Gen,
		CurrentGen: tr.CurrentGen,
		InstallPs:  tr.InstallPs,
		Cached:     tr.Cached,
		Patched:    tr.Patched,
		RepairGen:  tr.RepairGen,
	}, nil
}

// treeFromResponse rebuilds a steiner.Tree from wire edges. Edge order is
// preserved in Members so re-serialization (and the oracle-identical
// parent-vector comparison) reproduces the replica's answer exactly.
func treeFromResponse(tr service.TreeResponse, numNodes int) *steiner.Tree {
	t := &steiner.Tree{
		Source:  topology.NodeID(tr.Source),
		Parent:  make([]topology.NodeID, numNodes),
		Members: make([]topology.NodeID, 0, len(tr.Edges)+1),
	}
	for i := range t.Parent {
		t.Parent[i] = topology.None
	}
	t.Members = append(t.Members, t.Source)
	for _, e := range tr.Edges {
		t.Parent[e[1]] = topology.NodeID(e[0])
		t.Members = append(t.Members, topology.NodeID(e[1]))
	}
	return t
}

func (b *httpBackend) ApplyEvent(ctx context.Context, ev Event) error {
	var resp struct {
		Changed bool `json:"changed"`
	}
	path := fmt.Sprintf("/v1/chaos/links/%d", ev.Link)
	if err := b.post(ctx, path, map[string]bool{"failed": ev.Down}, &resp); err != nil {
		return err
	}
	if !resp.Changed {
		return fmt.Errorf("federation: replica %s: event %d (link %d, down=%v) was a no-op: replica diverged", b.name, ev.Seq, ev.Link, ev.Down)
	}
	return nil
}

func (b *httpBackend) Gen(ctx context.Context) (uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/v1/stats", nil)
	if err != nil {
		return 0, err
	}
	resp, err := b.hc.Do(req)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrReplicaDown, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return 0, statusErr(resp.StatusCode, raw)
	}
	var st struct {
		Gen uint64 `json:"topology_generation"`
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		return 0, err
	}
	return st.Gen, nil
}

func (b *httpBackend) Ping(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := b.hc.Do(req)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrReplicaDown, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("federation: replica %s not ready: %d", b.name, resp.StatusCode)
	}
	return nil
}

func (b *httpBackend) Close() {}
