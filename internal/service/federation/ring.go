package federation

// Rendezvous (highest-random-weight) hashing: each replica scores every
// key independently via FNV-1a over (replica name, key), and the
// preference order is the descending score order. Unlike a mod-N ring,
// losing a replica remaps only the keys it owned — every other key keeps
// its primary, so a replica kill invalidates one shard's worth of warm
// cache, not the fleet's.

const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// hrwScore hashes (name, key) with a separator so ("ab","c") and
// ("a","bc") cannot collide structurally.
func hrwScore(name, key string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime64
	}
	h ^= 0
	h *= fnvPrime64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return h
}

// hrwOrder returns replicas in descending score order for key (ties
// break by name so the order is total and deterministic). One small
// allocation per call; replica fleets are small, so insertion sort beats
// sort.Slice's indirection.
func hrwOrder(reps []*replica, key string) []*replica {
	order := make([]*replica, len(reps))
	scores := make([]uint64, len(reps))
	for i, r := range reps {
		s := hrwScore(r.name, key)
		j := i
		for j > 0 && (scores[j-1] < s || (scores[j-1] == s && order[j-1].name > r.name)) {
			order[j] = order[j-1]
			scores[j] = scores[j-1]
			j--
		}
		order[j] = r
		scores[j] = s
	}
	return order
}
