package federation

import (
	"slices"

	"peel/internal/core"
	"peel/internal/invariant"
	"peel/internal/service"
	"peel/internal/steiner"
	"peel/internal/topology"
)

// Invariant checkers owned by the federation layer.
const (
	// OracleIdentical: every fully-peeled federated GetTree answer
	// byte-equals (same source, same parent vector, same cost) the tree a
	// single-node oracle builds on the same degraded graph — the graph as
	// of the generation the replica computed the tree at. Patched answers
	// (incremental graft repairs) legally diverge in shape; they must
	// instead be valid on that graph and inside the fresh-peel Theorem 2.5
	// cost envelope.
	OracleIdentical = "federation.answer-oracle-identical"
	// GenerationMonotonic: no replica ever serves a tree stale relative to
	// the events it has acked — its serve-time generation covers the acked
	// generation-vector entry the router read when dispatching to it, and
	// a tree never claims a compute generation ahead of its serve
	// generation.
	GenerationMonotonic = "federation.generation-monotonic"
)

func init() {
	invariant.Register(invariant.Checker{
		Name:   OracleIdentical,
		Anchor: "control-plane replication correctness",
		Desc:   "every federated tree answer matches a single-node oracle on the same degraded graph: byte-identical when fully peeled, valid-and-within-budget when patched",
	})
	invariant.Register(invariant.Checker{
		Name:   GenerationMonotonic,
		Anchor: "generation-vector coherence",
		Desc:   "no replica serves a tree stale relative to the failure events it has acked",
	})
}

// checkServed runs both federation invariants on one successful replica
// answer. Free when no suite is armed (one atomic load).
func (f *Federation) checkServed(r *replica, ackedAtSend uint64, ti service.TreeInfo, source topology.NodeID, members []topology.NodeID) {
	iv := invariant.Active()
	if iv == nil {
		return
	}

	// Generation-monotonic: the replica's serve-time generation must cover
	// everything it had acked when we routed to it (it cannot have lost
	// events and kept serving), and the tree cannot come from the future.
	// servedGen is advanced as a max-watermark for the census only —
	// responses from one replica can legitimately be OBSERVED out of order
	// here (two concurrent calls straddling an event), so the per-answer
	// check must not compare against it.
	for {
		prev := r.servedGen.Load()
		if ti.CurrentGen <= prev || r.servedGen.CompareAndSwap(prev, ti.CurrentGen) {
			break
		}
	}
	iv.Checkf(GenerationMonotonic,
		ti.CurrentGen >= ackedAtSend && ti.Gen <= ti.CurrentGen,
		"replica %s served gen %d (computed at %d) with acked=%d at send",
		r.name, ti.CurrentGen, ti.Gen, ackedAtSend)

	// Oracle-identical: rebuild the oracle's graph as it was at the tree's
	// compute generation and prove the replica's answer is what a
	// single-node service would have built there. Because the bus logs
	// only real transitions, event Seq aligns exactly with topology
	// generation on every node, so "generation G" is reconstructed by
	// rolling the current oracle graph back through the inverse of events
	// (G, latest]. Holding mu freezes both the log and the oracle's
	// failure state for the comparison window.
	f.mu.Lock()
	defer f.mu.Unlock()
	cur := uint64(len(f.log))
	if ti.Gen > cur {
		iv.Violatef(OracleIdentical,
			"replica %s served a tree computed at gen %d, ahead of the %d-event log",
			r.name, ti.Gen, cur)
		return
	}
	clone := f.oracle.Graph().Clone()
	for i := cur; i > ti.Gen; i-- {
		ev := f.log[i-1]
		if ev.Down {
			clone.RestoreLink(ev.Link)
		} else {
			clone.FailLink(ev.Link)
		}
	}
	receivers := make([]topology.NodeID, 0, len(members)-1)
	for _, m := range members {
		if m != source {
			receivers = append(receivers, m)
		}
	}
	if ti.Patched {
		// A patched answer is a graft, not a fresh peel: its shape legally
		// diverges from the oracle's byte-for-byte rebuild. What replication
		// still owes us is that the patch would have been accepted by the
		// oracle too — valid on the reconstructed graph and inside the
		// fresh-peel Theorem 2.5 cost envelope core.RepairTree enforces.
		verr := ti.Tree.Validate(clone, receivers)
		lb, ub, berr := steiner.PeelCostBudget(clone, source, receivers)
		iv.Checkf(OracleIdentical,
			verr == nil && berr == nil && ti.Cost >= lb && (ub == 0 || ti.Cost <= ub),
			"replica %s patched tree at gen %d not oracle-acceptable: validate=%v budget=[%d,%d] cost=%d err=%v",
			r.name, ti.Gen, verr, lb, ub, ti.Cost, berr)
		return
	}
	want, err := core.BuildTree(clone, source, receivers)
	if err != nil {
		iv.Violatef(OracleIdentical,
			"oracle cannot build a tree at gen %d that replica %s served: %v", ti.Gen, r.name, err)
		return
	}
	iv.Checkf(OracleIdentical,
		want.Source == ti.Tree.Source && want.Cost() == ti.Cost && slices.Equal(want.Parent, ti.Tree.Parent),
		"replica %s tree at gen %d diverges from oracle (cost %d vs %d)",
		r.name, ti.Gen, ti.Cost, want.Cost())
}

// passOracleChecks credits the direct re-peel path: an answer computed on
// the oracle itself is oracle-identical by construction, and counting it
// keeps the checker's totals covering every served tree.
func (f *Federation) passOracleChecks() {
	if iv := invariant.Active(); iv != nil {
		iv.Pass(OracleIdentical)
		iv.Pass(GenerationMonotonic)
	}
}
