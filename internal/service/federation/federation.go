// Package federation shards the multicast control plane across N peeld
// replicas behind one router, surviving control-plane failures the way
// the single-node service survives fabric failures.
//
// The design keeps replicas stateless: the router owns the authoritative
// group registry (its local "oracle" service — also the direct re-peel
// fallback of last resort), and replicas are tree-computation/cache
// shards reached through the explicit-membership TreeFor path, so a
// hard-killed replica loses only a warm cache, never group state, and
// failover is always safe.
//
//   - Routing: GetTree consistent-hashes the group's canonical tree key
//     onto the replica fleet with rendezvous (highest-random-weight)
//     hashing, so two groups with one canonical membership land on one
//     replica's one cache entry, and replica loss remaps only the keys
//     the dead replica owned.
//   - Event replication: every real topology transition (link down/up)
//     applies to the oracle first, is appended to a replicated event log,
//     and fans out synchronously to every up replica. A replica acks each
//     event; the per-replica acked generation IS the generation vector.
//     Because only real transitions are logged and replicas start from
//     the same pristine fabric, a replica's own topology generation
//     always equals its acked event count — which is what makes the
//     oracle-identical rollback check (invariant.go) exact.
//   - Failover: a replica that misses an event, fails a health probe, or
//     is killed is marked down and stops receiving traffic and events.
//     Requests fail over to the next replica on the ring (jittered
//     exponential backoff retries on ErrOverloaded, a per-replica circuit
//     breaker on repeated transport errors) and, when every replica is
//     out, degrade to a direct re-peel on the oracle — so a client
//     operation never fails because replicas died.
//   - Re-admission: a recovered replica reports its topology generation;
//     the router replays log[gen:] (everything for a fresh restart) and
//     only then routes to it again. A replica ahead of the log is
//     refused — it diverged, and serving it could violate the oracle.
package federation

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"peel/internal/service"
	"peel/internal/steiner"
	"peel/internal/topology"
)

// ErrReplicaDown is the transport-level failure for a dead replica: the
// in-process backend returns it after a kill (connection-refused
// semantics), and the HTTP backend wraps dial errors in it.
var ErrReplicaDown = errors.New("federation: replica down: connection refused")

// Replica lifecycle states. Only stateUp replicas receive traffic and
// replicated events; stateCatchingUp marks the replay window during
// re-admission (a restarted replica with a stale generation vector must
// refuse traffic until caught up).
const (
	stateUp int32 = iota
	stateDown
	stateCatchingUp
)

func stateName(s int32) string {
	switch s {
	case stateUp:
		return "up"
	case stateDown:
		return "down"
	case stateCatchingUp:
		return "catching-up"
	default:
		return "unknown"
	}
}

// Event is one replicated topology transition. Seq is 1-based and dense:
// because only real transitions are logged, Seq equals the topology
// generation of every node (oracle and caught-up replicas alike) after
// applying it.
type Event struct {
	Seq  uint64          `json:"seq"`
	Link topology.LinkID `json:"link"`
	Down bool            `json:"down"`
}

// Config parameterizes a federation.
type Config struct {
	// NewGraph builds one pristine fabric instance. Every replica and the
	// oracle get their own graph from it (graphs are mutable and not
	// shared). Required.
	NewGraph func() *topology.Graph
	// Replicas is the number of in-process replicas to start with.
	// HTTP replicas join later via FederationJoin.
	Replicas int
	// ServiceOpts configures the oracle and every in-process replica.
	ServiceOpts service.Options
	// HealthInterval is the health-probe period. 0 selects synchronous
	// mode: no probe goroutine runs, and KillReplica/RestartReplica flip
	// state (and catch up) synchronously — deterministic, for tests and
	// golden runs.
	HealthInterval time.Duration
	// ProbeTimeout bounds one health probe (default 1s).
	ProbeTimeout time.Duration
	// FailThreshold is the consecutive probe failures that mark an up
	// replica down (default 2).
	FailThreshold int
	// RetryMax is the attempt budget per replica per operation (default 3).
	RetryMax int
	// RetryBase is the first backoff step (default 200µs); RetryCap caps
	// the exponential growth (default 5ms). Sleeps are jittered to
	// [d/2, d).
	RetryBase time.Duration
	RetryCap  time.Duration
	// BreakerThreshold is the consecutive operation failures that open a
	// replica's circuit breaker (default 4); BreakerCooldown is how long
	// it stays open before one half-open probe is allowed (default 100ms).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Standbys is how many ring fallbacks to try after the primary before
	// degrading to a direct re-peel (default 1).
	Standbys int
}

func (c Config) withDefaults() Config {
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 200 * time.Microsecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 5 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 4
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 100 * time.Millisecond
	}
	if c.Standbys <= 0 {
		c.Standbys = 1
	}
	return c
}

// replica is the router-side view of one backend.
type replica struct {
	name string
	idx  int
	be   Backend

	state atomic.Int32
	// acked is the replica's generation vector entry: the highest event
	// Seq it has acknowledged. Written under Federation.mu, read
	// atomically on the routing fast path.
	acked atomic.Uint64
	// servedGen is the highest CurrentGen observed in this replica's
	// responses (generation-monotonic invariant state).
	servedGen atomic.Uint64

	probeFails int // health-loop state, guarded by Federation.mu

	// Circuit breaker: consecutive routed-operation failures, and the
	// deadline (unix nanos) before which the breaker rejects traffic.
	breakerFails     atomic.Int32
	breakerOpenUntil atomic.Int64
}

// Federation is the router: it implements service.API (so cmd/peeld can
// serve it through the stock daemon), service.FaultInjector (replicating
// every transition), loadgen.ReplicaChaos (process-level fault
// injection), and service.FederationAdmin (HTTP replica admission).
type Federation struct {
	cfg    Config
	oracle *service.Service

	// mu serializes the event log, replica state transitions, event
	// broadcast, catch-up replay, and the invariant oracle's rollback
	// window. The routing read path stays off it.
	mu     sync.Mutex
	log    []Event
	logLen atomic.Uint64

	reps atomic.Pointer[[]*replica]

	jitter atomic.Uint64 // splitmix64 stream for backoff jitter
	hooks  atomic.Pointer[fedHooks]
	closed atomic.Bool

	healthStop chan struct{}
	healthDone chan struct{}
}

var _ service.API = (*Federation)(nil)

// New builds a federation with cfg.Replicas in-process replicas, all up
// and at generation 0 (matching the empty event log).
func New(cfg Config) (*Federation, error) {
	if cfg.NewGraph == nil {
		return nil, fmt.Errorf("federation: Config.NewGraph is required")
	}
	cfg = cfg.withDefaults()
	f := &Federation{
		cfg:    cfg,
		oracle: service.New(cfg.NewGraph(), cfg.ServiceOpts),
	}
	reps := make([]*replica, 0, cfg.Replicas)
	for i := 0; i < cfg.Replicas; i++ {
		name := fmt.Sprintf("r%d", i)
		r := &replica{name: name, idx: i, be: newLocalBackend(name, cfg.NewGraph, cfg.ServiceOpts)}
		r.state.Store(stateUp)
		reps = append(reps, r)
	}
	f.reps.Store(&reps)
	if cfg.HealthInterval > 0 {
		f.healthStop = make(chan struct{})
		f.healthDone = make(chan struct{})
		go f.healthLoop()
	}
	return f, nil
}

// Oracle exposes the router's local authoritative service (tests, and
// peelsim wiring that reads the graph).
func (f *Federation) Oracle() *service.Service { return f.oracle }

// RepairCounts aggregates the incremental-repair census across the
// oracle's direct re-peel path and every in-process replica: how many
// invalidated entries were served by a graft patch, and how many patch
// attempts degraded to a full re-peel. HTTP replicas are excluded (their
// counts live in their own /v1/stats).
func (f *Federation) RepairCounts() (patched, fellBack int64) {
	patched, fellBack = f.oracle.RepairCounts()
	for _, r := range *f.reps.Load() {
		if lb, ok := r.be.(*localBackend); ok {
			p, fb := lb.RepairCounts()
			patched += p
			fellBack += fb
		}
	}
	return patched, fellBack
}

// Close stops the health loop, drains every live backend gracefully, and
// closes the oracle. Idempotent.
func (f *Federation) Close() {
	if f.closed.Swap(true) {
		return
	}
	if f.healthStop != nil {
		close(f.healthStop)
		<-f.healthDone
	}
	for _, r := range *f.reps.Load() {
		r.be.Close()
	}
	f.oracle.Close()
}

// Ready implements service.API: the router serves while not closed (its
// oracle subscribes its topology observer at construction).
func (f *Federation) Ready() bool { return !f.closed.Load() && f.oracle.Ready() }

// --- group lifecycle: the oracle owns the registry -------------------

func (f *Federation) CreateGroup(ctx context.Context, id string, members []topology.NodeID) (service.GroupInfo, error) {
	return f.oracle.CreateGroup(ctx, id, members)
}

func (f *Federation) Describe(ctx context.Context, id string) (service.GroupInfo, error) {
	return f.oracle.Describe(ctx, id)
}

func (f *Federation) Join(ctx context.Context, id string, host topology.NodeID) (service.GroupInfo, error) {
	return f.oracle.Join(ctx, id, host)
}

func (f *Federation) Leave(ctx context.Context, id string, host topology.NodeID) (service.GroupInfo, error) {
	return f.oracle.Leave(ctx, id, host)
}

func (f *Federation) DeleteGroup(ctx context.Context, id string) error {
	return f.oracle.DeleteGroup(ctx, id)
}

// --- routed reads ----------------------------------------------------

// GetTree resolves the group against the oracle's registry (zero-copy
// snapshot), then routes the tree computation onto the replica ring with
// retries, failover, and — when every replica is out — a direct re-peel
// on the oracle. With an invariant suite armed, every replica answer is
// proven byte-identical to the oracle's tree on the same degraded graph.
func (f *Federation) GetTree(ctx context.Context, id string) (service.TreeInfo, error) {
	if err := ctx.Err(); err != nil {
		return service.TreeInfo{}, err
	}
	if f.closed.Load() {
		return service.TreeInfo{}, service.ErrDraining
	}
	source, members, key, err := f.oracle.GroupSnapshot(id)
	if err != nil {
		return service.TreeInfo{}, err
	}
	return f.route(ctx, key, source, members)
}

// TreeFor implements the explicit-membership path on the router itself
// (members[0] is the source): canonicalize once, then route like GetTree.
func (f *Federation) TreeFor(ctx context.Context, members []topology.NodeID) (service.TreeInfo, error) {
	if err := ctx.Err(); err != nil {
		return service.TreeInfo{}, err
	}
	if f.closed.Load() {
		return service.TreeInfo{}, service.ErrDraining
	}
	key, source, canon, err := f.oracle.Canonicalize(members)
	if err != nil {
		return service.TreeInfo{}, err
	}
	return f.route(ctx, key, source, canon)
}

// route fans one canonical-membership tree request across the ring.
func (f *Federation) route(ctx context.Context, key string, source topology.NodeID, members []topology.NodeID) (service.TreeInfo, error) {
	h := f.tel()
	reps := *f.reps.Load()
	if len(reps) == 0 {
		return f.direct(ctx, key, source, members, h)
	}
	order := hrwOrder(reps, key)
	tries := 1 + f.cfg.Standbys
	if tries > len(order) {
		tries = len(order)
	}
	failedOver := false
	for i := 0; i < tries; i++ {
		r := order[i]
		if !f.routable(r) {
			failedOver = true
			continue
		}
		ackedAtSend := r.acked.Load()
		ti, attempts, err := f.callReplica(ctx, r, key, source, members)
		if h != nil {
			h.retryAttempts.Observe(int64(attempts))
			if attempts > 1 {
				h.retries.Add(int64(attempts - 1))
			}
		}
		if err == nil {
			r.breakerFails.Store(0)
			if failedOver && h != nil {
				h.failovers.Inc()
			}
			f.checkServed(r, ackedAtSend, ti, source, members)
			return ti, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return service.TreeInfo{}, cerr
		}
		if !isFailoverErr(err) {
			// Semantic errors (unreachable destinations, bad members) are
			// properties of the request, not of the replica — every node
			// would answer the same.
			return service.TreeInfo{}, err
		}
		f.noteFailure(r, err)
		failedOver = true
	}
	if failedOver && h != nil {
		h.failovers.Inc()
	}
	return f.direct(ctx, key, source, members, h)
}

// direct is the degraded path of last resort: re-peel on the oracle.
// It cannot miss events (the oracle applies them first), so a client
// operation never fails because the replica fleet is out.
func (f *Federation) direct(ctx context.Context, key string, source topology.NodeID, members []topology.NodeID, h *fedHooks) (service.TreeInfo, error) {
	if h != nil {
		h.directPeel.Inc()
	}
	ti, err := f.oracle.TreeForCanonical(ctx, key, source, members)
	if err == nil {
		f.passOracleChecks()
	}
	return ti, err
}

// routable reports whether a replica may receive traffic: up, caught up
// with the event log, and not circuit-broken. A cooled-down breaker
// admits exactly one half-open probe (the CAS loser stays rejected).
func (f *Federation) routable(r *replica) bool {
	if r.state.Load() != stateUp || r.acked.Load() != f.logLen.Load() {
		return false
	}
	if until := r.breakerOpenUntil.Load(); until != 0 {
		if time.Now().UnixNano() < until {
			return false
		}
		if !r.breakerOpenUntil.CompareAndSwap(until, 0) {
			return false
		}
	}
	return true
}

// callReplica runs one replica call with jittered exponential backoff on
// retryable failures, honoring ctx. Returns the attempts consumed.
func (f *Federation) callReplica(ctx context.Context, r *replica, key string, source topology.NodeID, members []topology.NodeID) (service.TreeInfo, int, error) {
	var err error
	for attempt := 1; attempt <= f.cfg.RetryMax; attempt++ {
		var ti service.TreeInfo
		ti, err = r.be.TreeFor(ctx, key, source, members)
		if err == nil {
			return ti, attempt, nil
		}
		if !retryable(err) || ctx.Err() != nil {
			return service.TreeInfo{}, attempt, err
		}
		if attempt < f.cfg.RetryMax {
			f.backoff(ctx, attempt)
		}
	}
	return service.TreeInfo{}, f.cfg.RetryMax, err
}

// retryable: overload is worth waiting out on the same replica; a dead
// replica is not — fail over immediately. Unknown (transport) errors get
// the retry budget too, covering transient HTTP failures.
func retryable(err error) bool {
	if errors.Is(err, service.ErrOverloaded) {
		return true
	}
	if errors.Is(err, ErrReplicaDown) {
		return false
	}
	return isFailoverErr(err)
}

// isFailoverErr reports whether the next replica could plausibly answer
// where this one failed. Request-semantic errors and the caller's own
// context expiry are not failover material.
func isFailoverErr(err error) bool {
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return false
	case errors.Is(err, steiner.ErrUnreachable),
		errors.Is(err, service.ErrBadMember),
		errors.Is(err, service.ErrGroupTooSmall),
		errors.Is(err, service.ErrNoSuchGroup):
		return false
	}
	return true
}

// noteFailure advances a replica's circuit breaker and, for definitive
// transport death, marks it down so the health loop owns re-admission.
func (f *Federation) noteFailure(r *replica, err error) {
	if errors.Is(err, ErrReplicaDown) {
		f.mu.Lock()
		if r.state.Load() == stateUp {
			f.markDownLocked(r)
		}
		f.mu.Unlock()
		return
	}
	if n := r.breakerFails.Add(1); int(n) >= f.cfg.BreakerThreshold {
		r.breakerFails.Store(0)
		r.breakerOpenUntil.Store(time.Now().Add(f.cfg.BreakerCooldown).UnixNano())
		if h := f.tel(); h != nil {
			h.breakerOpens.Inc()
		}
	}
}

// backoff sleeps the jittered exponential step for attempt, bailing early
// when ctx expires.
func (f *Federation) backoff(ctx context.Context, attempt int) {
	d := f.cfg.RetryBase << (attempt - 1)
	if d > f.cfg.RetryCap {
		d = f.cfg.RetryCap
	}
	half := d / 2
	if half <= 0 {
		half = 1
	}
	j := half + time.Duration(splitmix64(f.jitter.Add(1))%uint64(half))
	t := time.NewTimer(j)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// splitmix64 is the jitter stream: cheap, seedable, and free of the
// global math/rand lock on the request path.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// --- fault injection: the replication bus ----------------------------

// FailLink fails a link federation-wide: oracle first, then the event
// fans out to every up replica. Implements service.FaultInjector.
func (f *Federation) FailLink(id topology.LinkID) bool {
	return f.applyTransition(id, true)
}

// RestoreLink heals a link federation-wide.
func (f *Federation) RestoreLink(id topology.LinkID) bool {
	return f.applyTransition(id, false)
}

// NumLinks exposes the fabric's link count for chaos drivers.
func (f *Federation) NumLinks() int { return f.oracle.NumLinks() }

// applyTransition is the replication bus: apply to the oracle (the
// source of truth for whether this is a real transition), log it, fan it
// out. A replica that fails to ack is marked down on the spot — it stops
// receiving both traffic and further events, and re-admission replays
// what it missed. Runs under mu so events reach every replica in log
// order and routing-side invariant checks see a frozen log.
func (f *Federation) applyTransition(id topology.LinkID, down bool) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	var changed bool
	if down {
		changed = f.oracle.FailLink(id)
	} else {
		changed = f.oracle.RestoreLink(id)
	}
	if !changed {
		return false
	}
	ev := Event{Seq: uint64(len(f.log)) + 1, Link: id, Down: down}
	f.log = append(f.log, ev)
	f.logLen.Store(ev.Seq)
	h := f.tel()
	for _, r := range *f.reps.Load() {
		if r.state.Load() != stateUp {
			continue
		}
		if err := r.be.ApplyEvent(context.Background(), ev); err != nil {
			f.markDownLocked(r)
			continue
		}
		r.acked.Store(ev.Seq)
		if h != nil {
			h.eventsReplicated.Inc()
		}
	}
	if h != nil {
		f.refreshFleetGauges(h)
	}
	return true
}

// markDownLocked takes a replica out of rotation. Callers hold mu.
func (f *Federation) markDownLocked(r *replica) {
	r.state.Store(stateDown)
	r.probeFails = 0
	if h := f.tel(); h != nil {
		h.replicaUp[r.idx].Set(0)
		f.refreshFleetGauges(h)
	}
}

// readmitLocked syncs a recovered replica's generation vector and brings
// it back into rotation: probe its topology generation, refuse it if it
// is ahead of the log (it diverged — serving it could contradict the
// oracle), replay log[gen:], and only then mark it up. Returns the
// number of events replayed. Callers hold mu.
func (f *Federation) readmitLocked(ctx context.Context, r *replica) (int, error) {
	gen, err := r.be.Gen(ctx)
	if err != nil {
		r.state.Store(stateDown)
		return 0, fmt.Errorf("federation: replica %s generation probe: %w", r.name, err)
	}
	if gen > uint64(len(f.log)) {
		r.state.Store(stateDown)
		return 0, fmt.Errorf("federation: replica %s at generation %d, ahead of %d-event log: diverged, refusing re-admission", r.name, gen, len(f.log))
	}
	r.state.Store(stateCatchingUp)
	r.acked.Store(gen)
	h := f.tel()
	replayed := 0
	for _, ev := range f.log[gen:] {
		if err := r.be.ApplyEvent(ctx, ev); err != nil {
			r.state.Store(stateDown)
			return replayed, fmt.Errorf("federation: replica %s catch-up at event %d: %w", r.name, ev.Seq, err)
		}
		r.acked.Store(ev.Seq)
		replayed++
	}
	r.probeFails = 0
	r.breakerFails.Store(0)
	r.breakerOpenUntil.Store(0)
	r.state.Store(stateUp)
	if h != nil {
		h.readmits.Inc()
		h.catchupReplayed.Add(int64(replayed))
		if r.idx < len(h.replicaUp) {
			h.replicaUp[r.idx].Set(1)
		}
		f.refreshFleetGauges(h)
	}
	return replayed, nil
}

// Readmit manually re-admits replica i (tests, and operators who do not
// want to wait for the health loop).
func (f *Federation) Readmit(i int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	reps := *f.reps.Load()
	if i < 0 || i >= len(reps) {
		return fmt.Errorf("federation: no replica %d", i)
	}
	ctx, cancel := context.WithTimeout(context.Background(), f.cfg.ProbeTimeout)
	defer cancel()
	_, err := f.readmitLocked(ctx, reps[i])
	return err
}

// --- process-level chaos (loadgen.ReplicaChaos) ----------------------

// killRestarter is the process-control surface in-process backends
// implement; HTTP replicas are killed from outside (the CI smoke uses
// kill -9) and recovered by the health loop.
type killRestarter interface {
	Kill() bool
	Restart() bool
}

// NumReplicas implements loadgen.ReplicaChaos.
func (f *Federation) NumReplicas() int { return len(*f.reps.Load()) }

// KillReplica hard-kills replica i: its backend starts refusing
// connections and the router marks it down. In-flight calls to it lose
// their answers, exactly like a kill -9 mid-request.
func (f *Federation) KillReplica(i int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	reps := *f.reps.Load()
	if i < 0 || i >= len(reps) {
		return false
	}
	r := reps[i]
	kb, ok := r.be.(killRestarter)
	if !ok || !kb.Kill() {
		return false
	}
	f.markDownLocked(r)
	if h := f.tel(); h != nil {
		h.kills.Inc()
	}
	return true
}

// RestartReplica boots replica i back up from scratch: pristine fabric,
// empty cache, generation 0. In synchronous mode (HealthInterval == 0)
// the router re-admits it immediately with a full catch-up replay;
// otherwise the health loop (or an explicit Readmit) picks it up — until
// then its stale generation vector keeps it out of rotation.
func (f *Federation) RestartReplica(i int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	reps := *f.reps.Load()
	if i < 0 || i >= len(reps) {
		return false
	}
	r := reps[i]
	kb, ok := r.be.(killRestarter)
	if !ok || !kb.Restart() {
		return false
	}
	if f.cfg.HealthInterval == 0 {
		ctx, cancel := context.WithTimeout(context.Background(), f.cfg.ProbeTimeout)
		defer cancel()
		f.readmitLocked(ctx, r) //nolint:errcheck // a failed sync readmit leaves the replica down; chaos reports changed state regardless
	}
	return true
}

// --- health loop -----------------------------------------------------

func (f *Federation) healthLoop() {
	defer close(f.healthDone)
	t := time.NewTicker(f.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-f.healthStop:
			return
		case <-t.C:
			f.probeAll()
		}
	}
}

// probeAll pings every replica once: up replicas accumulate consecutive
// probe failures toward FailThreshold; down replicas that answer again
// are re-admitted through the catch-up path.
func (f *Federation) probeAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	h := f.tel()
	for _, r := range *f.reps.Load() {
		ctx, cancel := context.WithTimeout(context.Background(), f.cfg.ProbeTimeout)
		err := r.be.Ping(ctx)
		switch r.state.Load() {
		case stateUp:
			if err != nil {
				r.probeFails++
				if r.probeFails >= f.cfg.FailThreshold {
					f.markDownLocked(r)
				}
			} else {
				r.probeFails = 0
			}
		case stateDown:
			if err == nil {
				f.readmitLocked(ctx, r)
			}
		}
		cancel()
	}
	if h != nil {
		f.refreshFleetGauges(h)
	}
}
