//go:build race

package federation

// raceEnabled reports whether the race detector is compiled in; the
// throughput comparison skips under it (instrumentation costs ~10×).
const raceEnabled = true
