package federation

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"peel/internal/invariant"
	"peel/internal/service"
	"peel/internal/service/loadgen"
	"peel/internal/steiner"
	"peel/internal/telemetry"
	"peel/internal/topology"
	"peel/internal/workload"
)

func fatTree(k int) func() *topology.Graph {
	return func() *topology.Graph { return topology.FatTree(k) }
}

func newFed(t testing.TB, cfg Config) *Federation {
	t.Helper()
	if cfg.NewGraph == nil {
		cfg.NewGraph = fatTree(4)
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

// seedGroups creates n groups of size hosts each, striped over the fabric.
func seedGroups(t testing.TB, f *Federation, n, size int) []string {
	t.Helper()
	hosts := f.Oracle().Graph().Hosts()
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("fg%03d", i)
		members := make([]topology.NodeID, size)
		for j := 0; j < size; j++ {
			members[j] = hosts[(i*size+j)%len(hosts)]
		}
		if _, err := f.CreateGroup(context.Background(), ids[i], members); err != nil {
			t.Fatal(err)
		}
	}
	return ids
}

// primaryFor reports which replica index the ring routes id's canonical
// key to.
func primaryFor(t testing.TB, f *Federation, id string) int {
	t.Helper()
	_, _, key, err := f.Oracle().GroupSnapshot(id)
	if err != nil {
		t.Fatal(err)
	}
	return hrwOrder(*f.reps.Load(), key)[0].idx
}

func TestFederatedServesOracleIdenticalTrees(t *testing.T) {
	f := newFed(t, Config{Replicas: 3})
	// 4 groups of 4 over 16 hosts: memberships are disjoint, so every
	// first GetTree must be a genuine replica-cache miss.
	ids := seedGroups(t, f, 4, 4)
	ctx := context.Background()

	for _, id := range ids {
		ti, err := f.GetTree(ctx, id)
		if err != nil {
			t.Fatalf("GetTree(%s): %v", id, err)
		}
		if ti.Tree == nil || ti.Cost <= 0 || ti.Cached {
			t.Fatalf("first GetTree(%s) = %+v, want fresh valid tree", id, ti)
		}
	}
	for _, id := range ids {
		ti, err := f.GetTree(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if !ti.Cached {
			t.Fatalf("second GetTree(%s) missed the replica cache", id)
		}
	}

	// The explicit-membership path routes too (members[0] is the source).
	hosts := f.Oracle().Graph().Hosts()
	if ti, err := f.TreeFor(ctx, []topology.NodeID{hosts[0], hosts[1], hosts[2]}); err != nil || ti.Tree == nil {
		t.Fatalf("TreeFor: ti=%+v err=%v", ti, err)
	}

	// Find a link whose failure keeps every group servable (a redundant
	// aggregation/core link), fail it federation-wide, and prove every
	// group still answers — the armed invariant suite verifies each answer
	// against the oracle's degraded graph.
	flapped := topology.LinkID(-1)
	for l := 0; l < f.NumLinks() && flapped < 0; l++ {
		if !f.FailLink(topology.LinkID(l)) {
			t.Fatalf("FailLink(%d) was a no-op on a healthy fabric", l)
		}
		ok := true
		for _, id := range ids {
			if _, err := f.GetTree(ctx, id); err != nil {
				if !errors.Is(err, steiner.ErrUnreachable) {
					t.Fatalf("GetTree(%s) under flap: %v", id, err)
				}
				ok = false
				break
			}
		}
		if ok {
			flapped = topology.LinkID(l)
		} else {
			f.RestoreLink(topology.LinkID(l))
		}
	}
	if flapped < 0 {
		t.Fatal("no single link failure left the workload servable")
	}
	if !f.RestoreLink(flapped) {
		t.Fatal("RestoreLink was a no-op")
	}

	c := f.Census()
	if c.Events == 0 {
		t.Fatal("no replicated events recorded")
	}
	for _, r := range c.Replicas {
		if r.State != "up" || r.Acked != c.Events {
			t.Fatalf("replica %s lagging after synchronous replication: %+v (events=%d)", r.Name, r, c.Events)
		}
	}
	for _, id := range ids {
		if _, err := f.GetTree(ctx, id); err != nil {
			t.Fatalf("GetTree(%s) after heal: %v", id, err)
		}
	}
}

// TestLoadgenChaosZeroFailedOps is the headline acceptance run: a
// 3-replica federation under mixed load with scripted link flaps AND
// replica kill/restart chaos completes with zero failed client
// operations, every answer invariant-checked against the oracle.
func TestLoadgenChaosZeroFailedOps(t *testing.T) {
	f := newFed(t, Config{Replicas: 3, NewGraph: fatTree(8)})
	cluster := workload.NewCluster(f.Oracle().Graph(), 1)
	ops := 20000
	if testing.Short() {
		ops = 4000
	}
	gen, err := loadgen.New(f, f, cluster, loadgen.Config{
		Groups:      64,
		GroupSize:   8,
		Workers:     8,
		Ops:         ops,
		Seed:        13,
		FlapEvery:   200,
		FlapHeal:    100,
		KillEvery:   300,
		KillRestart: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.ArmReplicaChaos(f); err != nil {
		t.Fatal(err)
	}
	st := gen.Run(context.Background())
	if st.Errors != 0 {
		t.Fatalf("failed client ops under replica chaos: %+v", st)
	}
	if st.Kills == 0 || st.Flaps == 0 {
		t.Fatalf("chaos schedules never fired: %+v", st)
	}
	t.Logf("federated chaos: %+v", st)
	t.Logf("census: %+v", f.Census())
}

// TestKillMidComputeFailsOver kills the primary replica while it is
// inside a singleflight tree computation: the answer it was about to
// return is lost (kill -9 semantics) and the router must fail over and
// still answer the client.
func TestKillMidComputeFailsOver(t *testing.T) {
	var armed atomic.Bool
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	hook := func() {
		if armed.CompareAndSwap(true, false) {
			entered <- struct{}{}
			<-release
		}
	}
	f := newFed(t, Config{Replicas: 3, ServiceOpts: service.Options{ComputeHook: hook}})
	ids := seedGroups(t, f, 1, 4)
	primary := primaryFor(t, f, ids[0])

	armed.Store(true)
	type res struct {
		ti  service.TreeInfo
		err error
	}
	ch := make(chan res, 1)
	go func() {
		ti, err := f.GetTree(context.Background(), ids[0])
		ch <- res{ti, err}
	}()
	<-entered // the primary is now blocked mid-compute
	if !f.KillReplica(primary) {
		t.Fatalf("KillReplica(%d) reported no change", primary)
	}
	close(release)
	r := <-ch
	if r.err != nil {
		t.Fatalf("GetTree with primary killed mid-compute: %v", r.err)
	}
	if r.ti.Tree == nil || r.ti.Cost <= 0 {
		t.Fatalf("failover answer invalid: %+v", r.ti)
	}
	if got := f.Census().Replicas[primary].State; got != "down" {
		t.Fatalf("primary state = %q, want down", got)
	}
}

// TestStaleReplicaRefusedUntilCaughtUp restarts a replica that missed
// failure events: its generation vector is stale, so the router must keep
// it out of rotation (and keep serving through the others) until an
// explicit catch-up replay brings it level.
func TestStaleReplicaRefusedUntilCaughtUp(t *testing.T) {
	// A huge HealthInterval selects asynchronous mode with an effectively
	// idle probe loop: nothing re-admits the replica behind our back.
	f := newFed(t, Config{Replicas: 3, HealthInterval: time.Hour})
	ids := seedGroups(t, f, 4, 4)
	ctx := context.Background()

	if !f.KillReplica(0) {
		t.Fatal("kill failed")
	}
	// Two real transitions the dead replica misses.
	if !f.FailLink(0) || !f.RestoreLink(0) {
		t.Fatal("transitions were no-ops")
	}
	if !f.RestartReplica(0) {
		t.Fatal("restart failed")
	}

	c := f.Census()
	if c.Events != 2 {
		t.Fatalf("events = %d, want 2", c.Events)
	}
	r0 := c.Replicas[0]
	if r0.State == "up" || r0.Acked == c.Events {
		t.Fatalf("restarted stale replica back in rotation without catch-up: %+v", r0)
	}
	if f.routable((*f.reps.Load())[0]) {
		t.Fatal("stale replica is routable")
	}
	// The fleet still answers every group while r0 sits out.
	for _, id := range ids {
		if _, err := f.GetTree(ctx, id); err != nil {
			t.Fatalf("GetTree(%s) with one stale replica: %v", id, err)
		}
	}

	if err := f.Readmit(0); err != nil {
		t.Fatalf("Readmit: %v", err)
	}
	r0 = f.Census().Replicas[0]
	if r0.State != "up" || r0.Acked != 2 {
		t.Fatalf("replica not caught up after re-admission: %+v", r0)
	}
	for _, id := range ids {
		if _, err := f.GetTree(ctx, id); err != nil {
			t.Fatalf("GetTree(%s) after re-admission: %v", id, err)
		}
	}
}

// TestDivergedReplicaRefused: a replica whose own generation ran AHEAD of
// the replicated log saw transitions the oracle never logged — re-
// admitting it could serve trees that contradict the oracle, so the
// router must refuse it.
func TestDivergedReplicaRefused(t *testing.T) {
	f := newFed(t, Config{Replicas: 2, HealthInterval: time.Hour})
	seedGroups(t, f, 1, 4)

	// Reach around the router and mutate replica 0's fabric directly.
	lb := (*f.reps.Load())[0].be.(*localBackend)
	if !lb.Service().FailLink(0) {
		t.Fatal("direct FailLink was a no-op")
	}
	err := f.Readmit(0)
	if err == nil {
		t.Fatal("diverged replica re-admitted")
	}
	if !strings.Contains(err.Error(), "refusing") {
		t.Fatalf("unexpected refusal error: %v", err)
	}
	if got := f.Census().Replicas[0].State; got != "down" {
		t.Fatalf("diverged replica state = %q, want down", got)
	}
}

// TestConcurrentFailoversServeEveryRequest hammers GetTree from multiple
// workers while two replicas are concurrently kill/restarted and a link
// flaps — with the invariant suite armed (TestMain), every served answer
// is proven oracle-identical, and no request may fail for any reason but
// a genuinely unreachable receiver or admission control. Run with -race.
func TestConcurrentFailoversServeEveryRequest(t *testing.T) {
	f := newFed(t, Config{Replicas: 3})
	ids := seedGroups(t, f, 8, 4)
	ctx := context.Background()

	stop := make(chan struct{})
	var chaosWG sync.WaitGroup
	for _, idx := range []int{0, 1} {
		chaosWG.Add(1)
		go func(i int) {
			defer chaosWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				f.KillReplica(i)
				time.Sleep(300 * time.Microsecond)
				f.RestartReplica(i)
				time.Sleep(300 * time.Microsecond)
			}
		}(idx)
	}
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		link := topology.LinkID(f.NumLinks() - 1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			f.FailLink(link)
			time.Sleep(500 * time.Microsecond)
			f.RestoreLink(link)
			time.Sleep(500 * time.Microsecond)
		}
	}()

	ops := 2000
	if testing.Short() {
		ops = 400
	}
	var served atomic.Int64
	var firstErr atomic.Pointer[string]
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				_, err := f.GetTree(ctx, ids[(w+i)%len(ids)])
				switch {
				case err == nil:
					served.Add(1)
				case errors.Is(err, steiner.ErrUnreachable): // flap cut a receiver off
				case errors.Is(err, service.ErrOverloaded): // admission control
				default:
					msg := err.Error()
					firstErr.CompareAndSwap(nil, &msg)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	chaosWG.Wait()
	if msg := firstErr.Load(); msg != nil {
		t.Fatalf("request failed during concurrent failovers: %s", *msg)
	}
	if served.Load() == 0 {
		t.Fatal("no requests served")
	}
}

// TestHealthLoopDetectsAndReadmits fails a replica behind the router's
// back (no KillReplica bookkeeping): the probe loop must notice within
// FailThreshold probes, and once the backend is back it must be caught up
// and re-admitted without any manual intervention.
func TestHealthLoopDetectsAndReadmits(t *testing.T) {
	f := newFed(t, Config{
		Replicas:       2,
		HealthInterval: 2 * time.Millisecond,
		FailThreshold:  2,
	})
	seedGroups(t, f, 2, 4)
	lb := (*f.reps.Load())[0].be.(*localBackend)

	waitFor := func(desc string, pred func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !pred() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s; census: %+v", desc, f.Census())
			}
			time.Sleep(time.Millisecond)
		}
	}

	if !lb.Kill() {
		t.Fatal("backend kill failed")
	}
	waitFor("health loop to mark r0 down", func() bool {
		return f.Census().Replicas[0].State == "down"
	})
	// An event the dead replica misses, so re-admission must replay.
	if !f.FailLink(0) {
		t.Fatal("FailLink was a no-op")
	}
	if !lb.Restart() {
		t.Fatal("backend restart failed")
	}
	waitFor("health loop to catch up and re-admit r0", func() bool {
		r0 := f.Census().Replicas[0]
		return r0.State == "up" && r0.Acked == 1
	})
	if _, err := f.GetTree(context.Background(), "fg000"); err != nil {
		t.Fatalf("GetTree after auto re-admission: %v", err)
	}
}

// TestHTTPReplicaLifecycle exercises the wire path end to end: a real
// peeld daemon (httptest) joins the federation, serves routed tree
// requests (reconstructed parent vectors must pass the oracle-identical
// check), receives replicated events, dies (server closed), and a fresh
// process re-joins with a full catch-up replay.
func TestHTTPReplicaLifecycle(t *testing.T) {
	f := newFed(t, Config{Replicas: 0, HealthInterval: time.Hour})
	ids := seedGroups(t, f, 4, 4)
	ctx := context.Background()

	bootReplica := func() *httptest.Server {
		d := service.NewDaemonFor(service.New(topology.FatTree(4), service.Options{}), service.DaemonConfig{})
		srv := httptest.NewServer(d.Handler())
		t.Cleanup(srv.Close)
		return srv
	}

	srv := bootReplica()
	replayed, err := f.FederationJoin("h0", srv.URL)
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if replayed != 0 {
		t.Fatalf("fresh replica replayed %d events, want 0", replayed)
	}
	if got := f.Census().Replicas[0].State; got != "up" {
		t.Fatalf("joined replica state = %q, want up", got)
	}

	ti, err := f.GetTree(ctx, ids[0])
	if err != nil {
		t.Fatalf("GetTree over HTTP: %v", err)
	}
	if ti.Tree == nil || ti.Cost <= 0 || ti.Cached {
		t.Fatalf("HTTP answer invalid: %+v", ti)
	}
	if ti, err = f.GetTree(ctx, ids[0]); err != nil || !ti.Cached {
		t.Fatalf("repeat GetTree should hit the HTTP replica's cache: ti=%+v err=%v", ti, err)
	}

	// Replicate transitions over the wire; tolerate a flap that cuts a
	// group off (semantic, not a replica failure) by healing and moving on.
	flapped := topology.LinkID(-1)
	for l := 0; l < f.NumLinks() && flapped < 0; l++ {
		if !f.FailLink(topology.LinkID(l)) {
			t.Fatalf("FailLink(%d) no-op", l)
		}
		if _, err := f.GetTree(ctx, ids[0]); err == nil {
			flapped = topology.LinkID(l)
		} else if errors.Is(err, steiner.ErrUnreachable) {
			f.RestoreLink(topology.LinkID(l))
		} else {
			t.Fatalf("GetTree under flap: %v", err)
		}
	}
	if flapped < 0 {
		t.Fatal("no servable flap found")
	}
	c := f.Census()
	if r0 := c.Replicas[0]; r0.Acked != c.Events || r0.State != "up" {
		t.Fatalf("HTTP replica lagging: %+v (events=%d)", r0, c.Events)
	}

	// kill -9 the process: the next routed call fails over to a direct
	// re-peel and the router marks the replica down.
	srv.Close()
	if _, err := f.GetTree(ctx, ids[1]); err != nil {
		t.Fatalf("GetTree with dead HTTP replica: %v", err)
	}
	if got := f.Census().Replicas[0].State; got != "down" {
		t.Fatalf("dead HTTP replica state = %q, want down", got)
	}

	// A fresh process (generation 0) re-joins under the same name: the
	// router must replay the entire event log before routing to it.
	srv2 := bootReplica()
	replayed, err = f.FederationJoin("h0", srv2.URL)
	if err != nil {
		t.Fatalf("re-join: %v", err)
	}
	if want := int(f.logLen.Load()); replayed != want {
		t.Fatalf("re-join replayed %d events, want %d", replayed, want)
	}
	for _, id := range ids {
		if _, err := f.GetTree(ctx, id); err != nil {
			t.Fatalf("GetTree(%s) after re-join: %v", id, err)
		}
	}
}

// TestDirectFallbackWhenFleetIsOut: with every replica dead, the router
// degrades to re-peeling on its oracle — clients never see the outage.
func TestDirectFallbackWhenFleetIsOut(t *testing.T) {
	f := newFed(t, Config{Replicas: 2, HealthInterval: time.Hour})
	ids := seedGroups(t, f, 2, 4)
	for i := 0; i < 2; i++ {
		if !f.KillReplica(i) {
			t.Fatalf("kill %d failed", i)
		}
	}
	for _, id := range ids {
		ti, err := f.GetTree(context.Background(), id)
		if err != nil {
			t.Fatalf("GetTree(%s) with fleet out: %v", id, err)
		}
		if ti.Tree == nil || ti.Cost <= 0 {
			t.Fatalf("direct answer invalid: %+v", ti)
		}
	}
}

// TestGoldenFederatedRunReport pins the telemetry run-report of a fully
// deterministic federated load run: synchronous federation mode, one
// worker, op-count-keyed flap AND kill schedules. Regenerate with
// PEEL_UPDATE_GOLDEN=1 after intentional changes.
func TestGoldenFederatedRunReport(t *testing.T) {
	sink := telemetry.NewSink(0)
	defer telemetry.Enable(sink)()
	f := newFed(t, Config{Replicas: 3, ServiceOpts: service.Options{Seed: 1}})
	cluster := workload.NewCluster(f.Oracle().Graph(), 1)
	gen, err := loadgen.New(f, f, cluster, loadgen.Config{
		Groups:      16,
		GroupSize:   4,
		Workers:     1,
		Ops:         5000,
		Seed:        1,
		FlapEvery:   500,
		FlapHeal:    250,
		KillEvery:   1000,
		KillRestart: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.ArmReplicaChaos(f); err != nil {
		t.Fatal(err)
	}
	st := gen.Run(context.Background())
	if st.Errors != 0 {
		t.Fatalf("hard errors: %+v", st)
	}
	if st.Kills == 0 {
		t.Fatalf("kill schedule never fired: %+v", st)
	}
	f.RefreshGauges()
	var buf bytes.Buffer
	if err := sink.Report("federation-golden").WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()
	golden := filepath.Join("testdata", "federation_runreport.golden.json")
	if os.Getenv("PEEL_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden federated run-report updated (%d bytes)", len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with PEEL_UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("federated run-report drifted from golden.\nIf intentional, regenerate with PEEL_UPDATE_GOLDEN=1.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestFederatedThroughputFloor is the performance acceptance criterion
// for the federation: a healthy 3-replica fleet must clear the same 100k
// ops/sec in-process floor the single-node service is held to, with the
// cache hit rate intact. The per-answer oracle re-peel check is disarmed
// for the measurement window (it rebuilds every tree a second time under
// a lock — a verification cost, not a serving cost); every other test in
// this package runs with it armed.
func TestFederatedThroughputFloor(t *testing.T) {
	if raceEnabled {
		t.Skip("throughput floor not meaningful under the race detector")
	}
	if testing.Short() {
		t.Skip("throughput floor needs the full op budget")
	}
	restore := invariant.Enable(nil)
	defer restore()

	run := func(client service.Client, faults loadgen.FaultInjector, g *topology.Graph) loadgen.Stats {
		t.Helper()
		gen, err := loadgen.New(client, faults, workload.NewCluster(g, 1), loadgen.Config{Ops: 200000})
		if err != nil {
			t.Fatal(err)
		}
		st := gen.Run(context.Background())
		if st.Errors != 0 {
			t.Fatalf("hard errors: %+v", st)
		}
		return st
	}

	f := newFed(t, Config{Replicas: 3, NewGraph: fatTree(8)})
	fed := run(f, f, f.Oracle().Graph())
	if fed.OpsPerSec < 100000 {
		t.Fatalf("federated throughput %.0f ops/sec below the 100k floor: %+v", fed.OpsPerSec, fed)
	}
	if fed.HitRate < 0.90 {
		t.Fatalf("federated hit rate %.3f below the 0.90 floor: %+v", fed.HitRate, fed)
	}

	single := service.New(topology.FatTree(8), service.Options{})
	defer single.Close()
	sst := run(single, single, single.Graph())
	t.Logf("federated 3-replica: %.0f ops/sec (hit %.3f); single-node: %.0f ops/sec (hit %.3f); ratio %.2f",
		fed.OpsPerSec, fed.HitRate, sst.OpsPerSec, sst.HitRate, fed.OpsPerSec/sst.OpsPerSec)
}
