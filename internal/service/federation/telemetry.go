package federation

import (
	"fmt"

	"peel/internal/telemetry"
)

// fedHooks caches the active sink's resolved primitives, following the
// service package's telHooks pattern: resolve names once per sink (or
// fleet-size) change, then every hot-path update is a lock-free atomic.
type fedHooks struct {
	sink     *telemetry.Sink
	replicas int

	failovers        *telemetry.Counter // answered by a non-primary replica or the oracle
	directPeel       *telemetry.Counter // degraded to a direct oracle re-peel
	retries          *telemetry.Counter // extra attempts beyond the first, summed
	eventsReplicated *telemetry.Counter // events acked on the live broadcast path
	catchupReplayed  *telemetry.Counter // events replayed during re-admission
	readmits         *telemetry.Counter // replicas brought back into rotation
	kills            *telemetry.Counter // chaos replica kills
	breakerOpens     *telemetry.Counter // circuit-breaker trips

	retryAttempts *telemetry.Histogram // attempts consumed per routed call

	replicasUp     *telemetry.Gauge   // live replica count
	replicationLag *telemetry.Gauge   // max events outstanding to any replica
	replicaUp      []*telemetry.Gauge // per-replica 0/1 health
	replicaAcked   []*telemetry.Gauge // per-replica generation-vector entry
}

// tel returns the hook cache for the active sink, or nil when telemetry
// is disabled; the disabled cost is one atomic load. The cache rebuilds
// when the sink or the replica count changes (HTTP joins grow the fleet).
func (f *Federation) tel() *fedHooks {
	ts := telemetry.Active()
	if ts == nil {
		return nil
	}
	n := len(*f.reps.Load())
	h := f.hooks.Load()
	if h == nil || h.sink != ts || h.replicas != n {
		h = newFedHooks(ts, n)
		f.hooks.Store(h)
	}
	return h
}

func newFedHooks(ts *telemetry.Sink, replicas int) *fedHooks {
	h := &fedHooks{
		sink:             ts,
		replicas:         replicas,
		failovers:        ts.Counter("federation.failovers"),
		directPeel:       ts.Counter("federation.direct_peel"),
		retries:          ts.Counter("federation.retries"),
		eventsReplicated: ts.Counter("federation.events.replicated"),
		catchupReplayed:  ts.Counter("federation.catchup.replayed"),
		readmits:         ts.Counter("federation.readmits"),
		kills:            ts.Counter("federation.replica.kills"),
		breakerOpens:     ts.Counter("federation.breaker.opens"),
		retryAttempts:    ts.Histogram("federation.retry.attempts", telemetry.Log2Layout()),
		replicasUp:       ts.Gauge("federation.replicas.up"),
		replicationLag:   ts.Gauge("federation.replication.lag"),
	}
	h.replicaUp = make([]*telemetry.Gauge, replicas)
	h.replicaAcked = make([]*telemetry.Gauge, replicas)
	for i := 0; i < replicas; i++ {
		h.replicaUp[i] = ts.Gauge(fmt.Sprintf("federation.replica%02d.up", i))
		h.replicaAcked[i] = ts.Gauge(fmt.Sprintf("federation.replica%02d.acked", i))
	}
	return h
}

// refreshFleetGauges recomputes the fleet-level gauges from replica
// state. Callers hold mu (or are RefreshGauges, which takes it).
func (f *Federation) refreshFleetGauges(h *fedHooks) {
	reps := *f.reps.Load()
	logLen := f.logLen.Load()
	up := 0
	var maxLag uint64
	for _, r := range reps {
		acked := r.acked.Load()
		isUp := r.state.Load() == stateUp
		if isUp {
			up++
		}
		if lag := logLen - acked; lag > maxLag {
			maxLag = lag
		}
		if r.idx < len(h.replicaUp) {
			v := int64(0)
			if isUp {
				v = 1
			}
			h.replicaUp[r.idx].Set(v)
			h.replicaAcked[r.idx].Set(int64(acked))
		}
	}
	h.replicasUp.Set(int64(up))
	h.replicationLag.Set(int64(maxLag))
}

// RefreshGauges implements service.API: push current oracle and fleet
// state into armed gauges before a report snapshot.
func (f *Federation) RefreshGauges() {
	f.oracle.RefreshGauges()
	h := f.tel()
	if h == nil {
		return
	}
	f.mu.Lock()
	f.refreshFleetGauges(h)
	f.mu.Unlock()
}
