package federation

import (
	"context"
	"fmt"

	"peel/internal/service"
)

// ReplicaStatus is one replica's row in the federation census.
type ReplicaStatus struct {
	Name    string `json:"name"`
	State   string `json:"state"`
	Acked   uint64 `json:"acked"`
	Served  uint64 `json:"served_gen"`
	Breaker bool   `json:"breaker_open"`
}

// CensusInfo is the GET /v1/federation payload.
type CensusInfo struct {
	Events   uint64          `json:"events"`
	Replicas []ReplicaStatus `json:"replicas"`
}

// Census snapshots the fleet.
func (f *Federation) Census() CensusInfo {
	reps := *f.reps.Load()
	out := CensusInfo{Events: f.logLen.Load(), Replicas: make([]ReplicaStatus, 0, len(reps))}
	for _, r := range reps {
		out.Replicas = append(out.Replicas, ReplicaStatus{
			Name:    r.name,
			State:   stateName(r.state.Load()),
			Acked:   r.acked.Load(),
			Served:  r.servedGen.Load(),
			Breaker: r.breakerOpenUntil.Load() != 0,
		})
	}
	return out
}

// FederationCensus implements service.FederationAdmin.
func (f *Federation) FederationCensus() any { return f.Census() }

// FederationJoin admits (or re-admits) an HTTP replica reachable at addr:
// a replica process self-registers after boot, the router probes its
// generation, replays what it missed, and starts routing to it. Joining
// an existing name rebinds its backend (the process restarted, possibly
// on a new port); joining a new name grows the fleet. Returns the number
// of events replayed during catch-up.
func (f *Federation) FederationJoin(name, addr string) (int, error) {
	if name == "" || addr == "" {
		return 0, fmt.Errorf("federation: join needs a name and an addr")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	be := NewHTTPBackend(name, addr, f.oracle.Graph().NumNodes())
	reps := *f.reps.Load()
	var r *replica
	for _, have := range reps {
		if have.name == name {
			r = have
			break
		}
	}
	if r == nil {
		r = &replica{name: name, idx: len(reps), be: be}
		r.state.Store(stateDown)
		grown := make([]*replica, len(reps), len(reps)+1)
		copy(grown, reps)
		grown = append(grown, r)
		f.reps.Store(&grown)
	} else {
		r.be = be
		r.state.Store(stateDown)
	}
	ctx, cancel := context.WithTimeout(context.Background(), f.cfg.ProbeTimeout)
	defer cancel()
	return f.readmitLocked(ctx, r)
}

// fedStats is the router's GET /v1/stats payload: the oracle census plus
// the federation census.
type fedStats struct {
	Oracle     service.Stats `json:"oracle"`
	Federation CensusInfo    `json:"federation"`
}

// StatsJSON implements service.API.
func (f *Federation) StatsJSON() any {
	return fedStats{Oracle: f.oracle.Stats(), Federation: f.Census()}
}
