package federation

import (
	"testing"

	"peel/internal/invariant/invtest"
)

// Every test in this package runs with the invariant suite armed: the
// oracle-identical and generation-monotonic checkers (plus the service
// layer's served-tree-fresh) verify every federated answer, and any
// violation fails the binary.
func TestMain(m *testing.M) { invtest.Main(m) }
