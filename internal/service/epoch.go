package service

// Planned invalidation for scheduled fabric reconfiguration.
//
// Failures invalidate reactively: the transition lands, crossing trees go
// stale, and the next access (or the push refresher) recomputes on the
// degraded graph. A scheduled OCS epoch (internal/topology/fabric) is
// announced ahead of its switch-over, which permits a strictly better
// discipline — recompute *before* the boundary:
//
//   - PlanEpoch installs a plan view (the current graph with the
//     to-be-removed circuits failed) that every tree computation uses
//     while the plan is active, marks crossing entries stale, and eagerly
//     re-peels every registered group that went stale. Replacement trees
//     avoid the doomed circuits but are also valid on the *current* graph
//     (the circuits have not failed yet), so ServedTreeFresh holds
//     throughout the window and steady-state traffic never observes a
//     stale tree. Pre-peeled trees are pushed to watchers with CauseEpoch
//     so wire subscribers cut over before the boundary with zero RESYNCs.
//   - CommitEpoch executes the swap through the ordinary mutate path and
//     reports how many fresh entries the commit still invalidated — zero
//     exactly when the pre-peel covered everything, which is what the
//     fabric.epoch-consistent walk (and the reconfig CI gate) asserts.
//
// Real failures occurring inside the plan window are mirrored onto the
// plan view by the failure observer, so pre-peels never route onto a
// link that died after the announcement.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"peel/internal/invariant"
	"peel/internal/topology"
	"peel/internal/topology/fabric"
)

// epochPlan is an announced reconfiguration in its pre-commit window.
// Guarded by Service.topoMu: installed and cleared under the write lock,
// read by computes under the read lock.
type epochPlan struct {
	removed map[topology.LinkID]struct{}
	// view is the plan graph: a clone of the live graph with the removed
	// circuits failed. Clones carry no observers, so failing them here
	// notifies nobody; real transitions are mirrored in by
	// onFailureChange while the plan is active.
	view *topology.Graph
}

// PlanEpoch announces an epoch: trees crossing a to-be-removed circuit
// are invalidated and eagerly re-peeled onto the post-epoch fabric while
// the old circuits still carry traffic. Returns the number of registered
// groups whose tree was pre-peeled (shared cache entries recompute once;
// each group still counts, and each group's watchers get a CauseEpoch
// push). Groups that fail transiently (admission rejection) are left to
// commit-time invalidation rather than retried.
func (s *Service) PlanEpoch(ctx context.Context, removed []topology.LinkID) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if s.closing.Load() {
		return 0, ErrDraining
	}
	h := s.tel()
	s.topoMu.Lock()
	for _, id := range removed {
		if id < 0 || int(id) >= s.g.NumLinks() {
			s.topoMu.Unlock()
			return 0, fmt.Errorf("service: plan epoch: unknown link %d", id)
		}
	}
	view := s.g.Clone()
	rm := make(map[topology.LinkID]struct{}, len(removed))
	for _, id := range removed {
		view.FailLink(id)
		rm[id] = struct{}{}
	}
	s.plan = &epochPlan{removed: rm, view: view}
	s.topoMu.Unlock()

	invalidated := 0
	for _, id := range removed {
		invalidated += s.cache.invalidateLink(id)
	}
	if h != nil {
		h.epochsPlanned.Inc()
		h.epochPlannedInval.Add(int64(invalidated))
	}

	prePeeled := 0
	for _, gid := range s.groupIDs() {
		grp := s.lookupGroup(gid)
		if grp == nil {
			continue // deleted since the snapshot
		}
		m := grp.m.Load()
		e := s.cache.lookup(m.key)
		if e == nil {
			continue // never computed: nothing to pre-peel
		}
		if v := e.val.Load(); v == nil || !v.stale.Load() {
			continue // tree does not cross a doomed circuit
		}
		ti, err := s.getTreeFor(ctx, m, h)
		if err != nil {
			if errors.Is(err, ErrDraining) || ctx.Err() != nil {
				return prePeeled, err
			}
			continue
		}
		prePeeled++
		s.publish(gid, ti, CauseEpoch, time.Time{})
	}
	s.prePeels.Add(int64(prePeeled))
	if h != nil {
		h.prePeels.Add(int64(prePeeled))
	}
	return prePeeled, nil
}

// CommitEpoch executes the announced switch-over: the plan view is
// dropped, removed circuits fail for real, and added circuits heal, all
// through the ordinary serialized mutate path (heals never invalidate,
// so installed circuits are free). Returns how many fresh cache entries
// the commit itself invalidated — entries the pre-peel did not cover;
// an announced epoch with full pre-peel coverage returns 0. With an
// invariant suite armed, the fabric.epoch-consistent walk re-checks
// every servable tree against the removed set. CommitEpoch also serves
// the unannounced A/B arm: calling it without a prior PlanEpoch is
// exactly failure-driven invalidation.
func (s *Service) CommitEpoch(removed, added []topology.LinkID) int64 {
	before := s.invalidatedTotal.Load()
	s.topoMu.Lock()
	s.plan = nil
	for _, id := range removed {
		s.g.FailLink(id)
	}
	for _, id := range added {
		s.g.RestoreLink(id)
	}
	s.topoMu.Unlock()
	s.epochsCommitted.Add(1)
	late := s.invalidatedTotal.Load() - before
	if h := s.tel(); h != nil {
		h.epochs.Inc()
		h.epochCommitInval.Add(late)
	}
	if iv := invariant.Active(); iv != nil {
		fabric.CheckEpochConsistent(iv, removed, s.WalkTreeLinks)
	}
	return late
}

// PlanActive reports whether an announced epoch is awaiting its commit.
func (s *Service) PlanActive() bool {
	s.topoMu.RLock()
	defer s.topoMu.RUnlock()
	return s.plan != nil
}

// EpochCounts reports the reconfiguration totals: epochs committed and
// groups pre-peeled by announcements.
func (s *Service) EpochCounts() (committed, prePeeled int64) {
	return s.epochsCommitted.Load(), s.prePeels.Load()
}

// WalkTreeLinks visits every servable cache entry (published and not
// stale) with its cache key and the link set its tree occupies — the
// walk fabric.CheckEpochConsistent runs after a switch-over.
func (s *Service) WalkTreeLinks(visit func(key string, links []topology.LinkID)) {
	s.cache.walk(visit)
}

// groupIDs snapshots the registered group IDs in sorted order, so
// pre-peel processing (and its telemetry) is deterministic.
func (s *Service) groupIDs() []string {
	s.groupsMu.RLock()
	ids := make([]string, 0, len(s.groups))
	for id := range s.groups {
		ids = append(ids, id)
	}
	s.groupsMu.RUnlock()
	sort.Strings(ids)
	return ids
}
