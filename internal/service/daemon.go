package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"peel/internal/steiner"
	"peel/internal/telemetry"
	"peel/internal/topology"
)

// The daemon: the HTTP/JSON face of the service, shared verbatim between
// cmd/peeld and `peelsim serve` so experiments and the long-running
// deployment exercise one construction path.
//
// Endpoints (all JSON):
//
//	POST   /v1/groups                {"id","members":[...]}  → 201 GroupInfo
//	GET    /v1/groups/{id}                                   → GroupInfo
//	POST   /v1/groups/{id}/join      {"host":N}              → GroupInfo
//	POST   /v1/groups/{id}/leave     {"host":N}              → GroupInfo
//	GET    /v1/groups/{id}/tree                              → TreeResponse
//	DELETE /v1/groups/{id}                                   → 204
//	POST   /v1/chaos/links/{link}    {"failed":bool}         → {"changed":bool}
//	GET    /v1/stats                                         → Stats
//	GET    /v1/report                                        → telemetry run-report (404 if no sink armed)
//	GET    /healthz                                          → 200 "ok" (503 while draining)
//
// Error mapping: ErrNoSuchGroup→404, ErrGroupExists→409, ErrOverloaded→429,
// ErrDraining→503, membership/validation errors→400, unreachable
// destinations→409 (the fabric cannot currently serve the group).

// DaemonConfig configures one daemon instance.
type DaemonConfig struct {
	// Addr is the listen address (default "127.0.0.1:7117"; use port 0 for
	// an ephemeral port in tests).
	Addr string
	// K is the fat-tree arity of the owned fabric (default 8). Ignored
	// when Graph is set.
	K int
	// Graph, when non-nil, is used instead of building a fat-tree.
	Graph *topology.Graph
	// Service options.
	Shards      int
	MaxInflight int
	CacheCap    int
	Seed        int64
	// DrainTimeout bounds graceful shutdown (default 5s).
	DrainTimeout time.Duration
	// OnReady, when set, is called with the bound address once the
	// listener is accepting (tests and peelsim use it to find the port).
	OnReady func(addr string)
}

func (c DaemonConfig) withDefaults() DaemonConfig {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:7117"
	}
	if c.K == 0 {
		c.K = 8
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	return c
}

// Daemon binds a Service to an HTTP server.
type Daemon struct {
	cfg      DaemonConfig
	svc      *Service
	mux      *http.ServeMux
	draining atomic.Bool
}

// NewDaemon builds the fabric (unless provided), the service, and the
// routing table. The daemon serves nothing until Run.
func NewDaemon(cfg DaemonConfig) (*Daemon, error) {
	cfg = cfg.withDefaults()
	g := cfg.Graph
	if g == nil {
		if cfg.K < 2 || cfg.K%2 != 0 {
			return nil, fmt.Errorf("service: fat-tree arity %d must be even and >= 2", cfg.K)
		}
		g = topology.FatTree(cfg.K)
	}
	d := &Daemon{
		cfg: cfg,
		svc: New(g, Options{
			Shards:      cfg.Shards,
			MaxInflight: cfg.MaxInflight,
			CacheCap:    cfg.CacheCap,
			Seed:        cfg.Seed,
		}),
	}
	d.mux = d.routes()
	return d, nil
}

// Service returns the daemon's underlying service (in-process callers,
// tests).
func (d *Daemon) Service() *Service { return d.svc }

// Handler returns the daemon's HTTP handler (httptest servers mount it
// directly).
func (d *Daemon) Handler() http.Handler { return d.mux }

// Run serves until ctx is cancelled, then drains gracefully: the listener
// stops accepting, in-flight requests get DrainTimeout to finish, and the
// service closes (unsubscribing its topology observer). Returns nil on a
// clean drain.
func (d *Daemon) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", d.cfg.Addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: d.mux}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	if d.cfg.OnReady != nil {
		d.cfg.OnReady(ln.Addr().String())
	}
	select {
	case err := <-errCh:
		d.svc.Close()
		return err
	case <-ctx.Done():
	}
	d.draining.Store(true)
	sctx, cancel := context.WithTimeout(context.Background(), d.cfg.DrainTimeout)
	defer cancel()
	err = srv.Shutdown(sctx)
	d.svc.Close()
	if serr := <-errCh; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
		err = serr
	}
	return err
}

func (d *Daemon) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/groups", d.handleCreate)
	mux.HandleFunc("GET /v1/groups/{id}", d.handleDescribe)
	mux.HandleFunc("POST /v1/groups/{id}/join", d.handleJoin)
	mux.HandleFunc("POST /v1/groups/{id}/leave", d.handleLeave)
	mux.HandleFunc("GET /v1/groups/{id}/tree", d.handleTree)
	mux.HandleFunc("DELETE /v1/groups/{id}", d.handleDelete)
	mux.HandleFunc("POST /v1/chaos/links/{link}", d.handleChaosLink)
	mux.HandleFunc("GET /v1/stats", d.handleStats)
	mux.HandleFunc("GET /v1/report", d.handleReport)
	mux.HandleFunc("GET /healthz", d.handleHealth)
	return mux
}

// groupJSON is the wire form of GroupInfo.
type groupJSON struct {
	ID      string  `json:"id"`
	Source  int32   `json:"source"`
	Members []int32 `json:"members"`
	Version uint64  `json:"version"`
}

func toGroupJSON(gi GroupInfo) groupJSON {
	out := groupJSON{ID: gi.ID, Source: int32(gi.Source), Version: gi.Version}
	out.Members = make([]int32, len(gi.Members))
	for i, m := range gi.Members {
		out.Members[i] = int32(m)
	}
	return out
}

// TreeResponse is the wire form of TreeInfo: the tree as (parent, child)
// edge pairs in member order.
type TreeResponse struct {
	Source     int32      `json:"source"`
	Cost       int        `json:"cost"`
	Gen        uint64     `json:"gen"`
	CurrentGen uint64     `json:"current_gen"`
	InstallPs  int64      `json:"install_ps"`
	Cached     bool       `json:"cached"`
	Edges      [][2]int32 `json:"edges"`
}

func toTreeResponse(ti TreeInfo) TreeResponse {
	out := TreeResponse{
		Source:     int32(ti.Source),
		Cost:       ti.Cost,
		Gen:        ti.Gen,
		CurrentGen: ti.CurrentGen,
		InstallPs:  ti.InstallPs,
		Cached:     ti.Cached,
		Edges:      make([][2]int32, 0, ti.Cost),
	}
	t := ti.Tree
	for _, m := range t.Members {
		if p := t.Parent[m]; p != topology.None {
			out.Edges = append(out.Edges, [2]int32{int32(p), int32(m)})
		}
	}
	return out
}

// httpError maps a service error to its status code.
func httpError(err error) int {
	switch {
	case errors.Is(err, ErrNoSuchGroup):
		return http.StatusNotFound
	case errors.Is(err, ErrGroupExists):
		return http.StatusConflict
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, steiner.ErrUnreachable):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	writeJSON(w, httpError(err), map[string]string{"error": err.Error()})
}

func decodeBody(r *http.Request, v any) error {
	defer io.Copy(io.Discard, r.Body)
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func (d *Daemon) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID      string  `json:"id"`
		Members []int32 `json:"members"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, fmt.Errorf("service: bad request body: %w", err))
		return
	}
	members := make([]topology.NodeID, len(req.Members))
	for i, m := range req.Members {
		members[i] = topology.NodeID(m)
	}
	gi, err := d.svc.CreateGroup(req.ID, members)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, toGroupJSON(gi))
}

func (d *Daemon) handleDescribe(w http.ResponseWriter, r *http.Request) {
	gi, err := d.svc.Describe(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, toGroupJSON(gi))
}

func (d *Daemon) memberOp(w http.ResponseWriter, r *http.Request,
	op func(string, topology.NodeID) (GroupInfo, error)) {
	var req struct {
		Host int32 `json:"host"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, fmt.Errorf("service: bad request body: %w", err))
		return
	}
	gi, err := op(r.PathValue("id"), topology.NodeID(req.Host))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, toGroupJSON(gi))
}

func (d *Daemon) handleJoin(w http.ResponseWriter, r *http.Request) {
	d.memberOp(w, r, d.svc.Join)
}

func (d *Daemon) handleLeave(w http.ResponseWriter, r *http.Request) {
	d.memberOp(w, r, d.svc.Leave)
}

func (d *Daemon) handleTree(w http.ResponseWriter, r *http.Request) {
	ti, err := d.svc.GetTree(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, toTreeResponse(ti))
}

func (d *Daemon) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := d.svc.DeleteGroup(r.PathValue("id")); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (d *Daemon) handleChaosLink(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("link"))
	if err != nil || id < 0 || id >= d.svc.NumLinks() {
		writeErr(w, fmt.Errorf("service: bad link id %q", r.PathValue("link")))
		return
	}
	var req struct {
		Failed bool `json:"failed"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, fmt.Errorf("service: bad request body: %w", err))
		return
	}
	var changed bool
	if req.Failed {
		changed = d.svc.FailLink(topology.LinkID(id))
	} else {
		changed = d.svc.RestoreLink(topology.LinkID(id))
	}
	writeJSON(w, http.StatusOK, map[string]bool{"changed": changed})
}

func (d *Daemon) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, d.svc.Stats())
}

func (d *Daemon) handleReport(w http.ResponseWriter, r *http.Request) {
	ts := telemetry.Active()
	if ts == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "telemetry not armed (run with -telemetry)"})
		return
	}
	d.svc.RefreshGauges()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	ts.Report("peeld").WriteJSON(w)
}

func (d *Daemon) handleHealth(w http.ResponseWriter, r *http.Request) {
	if d.draining.Load() || d.svc.closing.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ok\n")
}

// Serve is the shared daemon entry point behind both cmd/peeld and
// `peelsim serve`: build, announce, run until the context is cancelled
// (SIGINT/SIGTERM in the commands), drain, and report the exit code.
func Serve(ctx context.Context, cfg DaemonConfig, stdout, stderr io.Writer) int {
	d, err := NewDaemon(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "peeld: %v\n", err)
		return 1
	}
	ready := cfg.OnReady
	d.cfg.OnReady = func(addr string) {
		fmt.Fprintf(stdout, "peeld: listening on %s (k=%d fabric, %d hosts, %d shards, max-inflight %d)\n",
			addr, d.svc.g.K, len(d.svc.g.Hosts()), len(d.svc.cache.shards), d.svc.opts.MaxInflight)
		if ready != nil {
			ready(addr)
		}
	}
	if err := d.Run(ctx); err != nil {
		fmt.Fprintf(stderr, "peeld: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "peeld: drained cleanly\n")
	return 0
}
