package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"peel/internal/steiner"
	"peel/internal/telemetry"
	"peel/internal/topology"
)

// The daemon: the HTTP/JSON face of the service, shared verbatim between
// cmd/peeld (single-node and federation-router modes) and `peelsim serve`
// so experiments and the long-running deployment exercise one
// construction path. The handlers are written against the API interface,
// so one route table serves both a single *Service and the federation
// router's failover client.
//
// Endpoints (all JSON):
//
//	POST   /v1/groups                {"id","members":[...]}  → 201 GroupInfo
//	GET    /v1/groups/{id}                                   → GroupInfo
//	POST   /v1/groups/{id}/join      {"host":N}              → GroupInfo
//	POST   /v1/groups/{id}/leave     {"host":N}              → GroupInfo
//	GET    /v1/groups/{id}/tree                              → TreeResponse
//	DELETE /v1/groups/{id}                                   → 204
//	POST   /v1/trees                 {"members":[...]}       → TreeResponse (members[0] is the source)
//	POST   /v1/chaos/links/{link}    {"failed":bool}         → {"changed":bool}
//	GET    /v1/stats                                         → Stats
//	GET    /v1/report                                        → telemetry run-report (404 if no sink armed)
//	GET    /healthz                                          → 200 "ok" (pure liveness: up while the process serves)
//	GET    /readyz                                           → 200 "ready" (503 while draining or before the
//	                                                           topology observer is subscribed)
//
// Federation-router instances additionally serve:
//
//	POST   /v1/federation/join       {"name","addr","k"}     → {"events":N} (replica admission + catch-up)
//	GET    /v1/federation                                    → federation census
//
// Error mapping: ErrNoSuchGroup→404, ErrGroupExists→409, ErrOverloaded→429,
// ErrDraining→503, context.DeadlineExceeded→504 (the per-request timeout
// or the client's own deadline expired), membership/validation errors→400,
// unreachable destinations→409 (the fabric cannot currently serve the
// group).

// DaemonConfig configures one daemon instance.
type DaemonConfig struct {
	// Addr is the listen address (default "127.0.0.1:7117"; use port 0 for
	// an ephemeral port in tests).
	Addr string
	// K is the fat-tree arity of the owned fabric (default 8). Ignored
	// when Graph is set.
	K int
	// Graph, when non-nil, is used instead of building a fat-tree.
	Graph *topology.Graph
	// Service options.
	Shards      int
	MaxInflight int
	CacheCap    int
	Seed        int64
	// Repair selects the failure-recompute strategy: RepairPatch (default)
	// or RepairFull; see Options.Repair.
	Repair string
	// RequestTimeout bounds each request's context: handlers pass it into
	// the service, so a slow tree computation answers 504 instead of
	// holding the connection forever (default 10s; <0 disables).
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown (default 5s).
	DrainTimeout time.Duration
	// OnReady, when set, is called with the bound address once the
	// listener is accepting (tests and peelsim use it to find the port).
	OnReady func(addr string)
	// Aux, when set, attaches an auxiliary listener to the daemon's
	// single-node service before the HTTP listener binds — the wire
	// subscription server above all (cmd packages install it via
	// wire.Hook, keeping this package free of a wire import cycle). The
	// returned stop runs first during shutdown, before the service
	// closes. Requires single-node mode: a federation daemon has no
	// *Service to attach to.
	Aux func(svc *Service) (stop func(), err error)
}

func (c DaemonConfig) withDefaults() DaemonConfig {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:7117"
	}
	if c.K == 0 {
		c.K = 8
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 10 * time.Second
	} else if c.RequestTimeout < 0 {
		c.RequestTimeout = 0
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	return c
}

// Daemon binds an API implementation (a single-node Service or a
// federation router client) to an HTTP server.
type Daemon struct {
	cfg      DaemonConfig
	api      API
	svc      *Service // non-nil only in single-node mode
	mux      *http.ServeMux
	draining atomic.Bool
}

// NewDaemon builds the fabric (unless provided), the service, and the
// routing table. The daemon serves nothing until Run.
func NewDaemon(cfg DaemonConfig) (*Daemon, error) {
	cfg = cfg.withDefaults()
	g := cfg.Graph
	if g == nil {
		if cfg.K < 2 || cfg.K%2 != 0 {
			return nil, fmt.Errorf("service: fat-tree arity %d must be even and >= 2", cfg.K)
		}
		g = topology.FatTree(cfg.K)
	}
	if cfg.Repair != "" && cfg.Repair != RepairPatch && cfg.Repair != RepairFull {
		return nil, fmt.Errorf("service: unknown repair mode %q (want %q or %q)", cfg.Repair, RepairPatch, RepairFull)
	}
	svc := New(g, Options{
		Shards:      cfg.Shards,
		MaxInflight: cfg.MaxInflight,
		CacheCap:    cfg.CacheCap,
		Seed:        cfg.Seed,
		Repair:      cfg.Repair,
	})
	d := &Daemon{cfg: cfg, api: svc, svc: svc}
	d.mux = d.routes()
	return d, nil
}

// NewDaemonFor binds an externally constructed API — the federation
// router's client above all — to the shared daemon wiring. Fabric and
// service fields of cfg are ignored; the API owns its own state.
func NewDaemonFor(api API, cfg DaemonConfig) *Daemon {
	cfg = cfg.withDefaults()
	d := &Daemon{cfg: cfg, api: api}
	d.mux = d.routes()
	return d
}

// Service returns the daemon's underlying single-node service, or nil
// when the daemon fronts a federation (in-process callers, tests).
func (d *Daemon) Service() *Service { return d.svc }

// API returns whatever the daemon serves.
func (d *Daemon) API() API { return d.api }

// Handler returns the daemon's HTTP handler (httptest servers mount it
// directly).
func (d *Daemon) Handler() http.Handler { return d.mux }

// Run serves until ctx is cancelled, then drains gracefully: the listener
// stops accepting, in-flight requests get DrainTimeout to finish, and the
// service closes (unsubscribing its topology observer). Returns nil on a
// clean drain.
func (d *Daemon) Run(ctx context.Context) error {
	stopAux := func() {}
	if d.cfg.Aux != nil {
		if d.svc == nil {
			return errors.New("service: DaemonConfig.Aux requires a single-node service")
		}
		stop, err := d.cfg.Aux(d.svc)
		if err != nil {
			return err
		}
		stopAux = stop
	}
	ln, err := net.Listen("tcp", d.cfg.Addr)
	if err != nil {
		stopAux()
		return err
	}
	srv := &http.Server{Handler: d.mux}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	if d.cfg.OnReady != nil {
		d.cfg.OnReady(ln.Addr().String())
	}
	select {
	case err := <-errCh:
		stopAux()
		d.api.Close()
		return err
	case <-ctx.Done():
	}
	d.draining.Store(true)
	sctx, cancel := context.WithTimeout(context.Background(), d.cfg.DrainTimeout)
	defer cancel()
	err = srv.Shutdown(sctx)
	stopAux()
	d.api.Close()
	if serr := <-errCh; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
		err = serr
	}
	return err
}

func (d *Daemon) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/groups", d.handleCreate)
	mux.HandleFunc("GET /v1/groups/{id}", d.handleDescribe)
	mux.HandleFunc("POST /v1/groups/{id}/join", d.handleJoin)
	mux.HandleFunc("POST /v1/groups/{id}/leave", d.handleLeave)
	mux.HandleFunc("GET /v1/groups/{id}/tree", d.handleTree)
	mux.HandleFunc("DELETE /v1/groups/{id}", d.handleDelete)
	mux.HandleFunc("POST /v1/trees", d.handleTreeFor)
	mux.HandleFunc("POST /v1/chaos/links/{link}", d.handleChaosLink)
	mux.HandleFunc("GET /v1/stats", d.handleStats)
	mux.HandleFunc("GET /v1/report", d.handleReport)
	mux.HandleFunc("GET /healthz", d.handleHealth)
	mux.HandleFunc("GET /readyz", d.handleReady)
	if fed, ok := d.api.(FederationAdmin); ok {
		mux.HandleFunc("POST /v1/federation/join", func(w http.ResponseWriter, r *http.Request) {
			d.handleFederationJoin(fed, w, r)
		})
		mux.HandleFunc("GET /v1/federation", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, fed.FederationCensus())
		})
	}
	return mux
}

// FederationAdmin is implemented by the federation router's client; when
// the daemon's API also implements it, the /v1/federation routes are
// mounted so replicas can self-register over HTTP.
type FederationAdmin interface {
	// FederationJoin admits (or re-admits) a replica reachable at addr and
	// returns the number of failure events replayed during catch-up.
	FederationJoin(name, addr string) (replayed int, err error)
	// FederationCensus reports per-replica health/generation state in a
	// JSON-encodable form.
	FederationCensus() any
}

// reqCtx derives the handler context: the client's own context (cancelled
// when the connection drops — an abandoned request must release its
// admission token) bounded by the configured per-request timeout.
func (d *Daemon) reqCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if d.cfg.RequestTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), d.cfg.RequestTimeout)
}

// groupJSON is the wire form of GroupInfo.
type groupJSON struct {
	ID      string  `json:"id"`
	Source  int32   `json:"source"`
	Members []int32 `json:"members"`
	Version uint64  `json:"version"`
}

func toGroupJSON(gi GroupInfo) groupJSON {
	out := groupJSON{ID: gi.ID, Source: int32(gi.Source), Version: gi.Version}
	out.Members = make([]int32, len(gi.Members))
	for i, m := range gi.Members {
		out.Members[i] = int32(m)
	}
	return out
}

// TreeResponse is the wire form of TreeInfo: the tree as (parent, child)
// edge pairs in member order.
type TreeResponse struct {
	Source     int32      `json:"source"`
	Cost       int        `json:"cost"`
	Gen        uint64     `json:"gen"`
	CurrentGen uint64     `json:"current_gen"`
	InstallPs  int64      `json:"install_ps"`
	Cached     bool       `json:"cached"`
	Patched    bool       `json:"patched"`
	RepairGen  uint64     `json:"repair_gen"`
	Edges      [][2]int32 `json:"edges"`
}

func toTreeResponse(ti TreeInfo) TreeResponse {
	out := TreeResponse{
		Source:     int32(ti.Source),
		Cost:       ti.Cost,
		Gen:        ti.Gen,
		CurrentGen: ti.CurrentGen,
		InstallPs:  ti.InstallPs,
		Cached:     ti.Cached,
		Patched:    ti.Patched,
		RepairGen:  ti.RepairGen,
		Edges:      make([][2]int32, 0, ti.Cost),
	}
	t := ti.Tree
	for _, m := range t.Members {
		if p := t.Parent[m]; p != topology.None {
			out.Edges = append(out.Edges, [2]int32{int32(p), int32(m)})
		}
	}
	return out
}

// httpError maps a service error to its status code.
func httpError(err error) int {
	switch {
	case errors.Is(err, ErrNoSuchGroup):
		return http.StatusNotFound
	case errors.Is(err, ErrGroupExists):
		return http.StatusConflict
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, steiner.ErrUnreachable):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	writeJSON(w, httpError(err), map[string]string{"error": err.Error()})
}

func decodeBody(r *http.Request, v any) error {
	defer io.Copy(io.Discard, r.Body)
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func (d *Daemon) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID      string  `json:"id"`
		Members []int32 `json:"members"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, fmt.Errorf("service: bad request body: %w", err))
		return
	}
	members := make([]topology.NodeID, len(req.Members))
	for i, m := range req.Members {
		members[i] = topology.NodeID(m)
	}
	ctx, cancel := d.reqCtx(r)
	defer cancel()
	gi, err := d.api.CreateGroup(ctx, req.ID, members)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, toGroupJSON(gi))
}

func (d *Daemon) handleDescribe(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := d.reqCtx(r)
	defer cancel()
	gi, err := d.api.Describe(ctx, r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, toGroupJSON(gi))
}

func (d *Daemon) memberOp(w http.ResponseWriter, r *http.Request,
	op func(context.Context, string, topology.NodeID) (GroupInfo, error)) {
	var req struct {
		Host int32 `json:"host"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, fmt.Errorf("service: bad request body: %w", err))
		return
	}
	ctx, cancel := d.reqCtx(r)
	defer cancel()
	gi, err := op(ctx, r.PathValue("id"), topology.NodeID(req.Host))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, toGroupJSON(gi))
}

func (d *Daemon) handleJoin(w http.ResponseWriter, r *http.Request) {
	d.memberOp(w, r, d.api.Join)
}

func (d *Daemon) handleLeave(w http.ResponseWriter, r *http.Request) {
	d.memberOp(w, r, d.api.Leave)
}

func (d *Daemon) handleTree(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := d.reqCtx(r)
	defer cancel()
	ti, err := d.api.GetTree(ctx, r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, toTreeResponse(ti))
}

// handleTreeFor serves explicit-membership tree computation: members[0]
// is the source. This is the call federation routers fan out to replicas
// — replicas hold no group registry, so the membership rides in the
// request.
func (d *Daemon) handleTreeFor(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Members []int32 `json:"members"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, fmt.Errorf("service: bad request body: %w", err))
		return
	}
	members := make([]topology.NodeID, len(req.Members))
	for i, m := range req.Members {
		members[i] = topology.NodeID(m)
	}
	ctx, cancel := d.reqCtx(r)
	defer cancel()
	ti, err := d.api.TreeFor(ctx, members)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, toTreeResponse(ti))
}

func (d *Daemon) handleDelete(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := d.reqCtx(r)
	defer cancel()
	if err := d.api.DeleteGroup(ctx, r.PathValue("id")); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (d *Daemon) handleChaosLink(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("link"))
	if err != nil || id < 0 || id >= d.api.NumLinks() {
		writeErr(w, fmt.Errorf("service: bad link id %q", r.PathValue("link")))
		return
	}
	var req struct {
		Failed bool `json:"failed"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, fmt.Errorf("service: bad request body: %w", err))
		return
	}
	var changed bool
	if req.Failed {
		changed = d.api.FailLink(topology.LinkID(id))
	} else {
		changed = d.api.RestoreLink(topology.LinkID(id))
	}
	writeJSON(w, http.StatusOK, map[string]bool{"changed": changed})
}

func (d *Daemon) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, d.api.StatsJSON())
}

func (d *Daemon) handleReport(w http.ResponseWriter, r *http.Request) {
	ts := telemetry.Active()
	if ts == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "telemetry not armed (run with -telemetry)"})
		return
	}
	d.api.RefreshGauges()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	ts.Report("peeld").WriteJSON(w)
}

// handleHealth is pure liveness: if the process can answer, it is alive.
// Load balancers deciding whether to route traffic should use /readyz.
func (d *Daemon) handleHealth(w http.ResponseWriter, r *http.Request) {
	io.WriteString(w, "ok\n")
}

// handleReady is readiness: false while draining and before the service's
// topology observer is subscribed (a not-ready instance may serve stale
// trees because invalidation is not yet wired).
func (d *Daemon) handleReady(w http.ResponseWriter, r *http.Request) {
	if d.draining.Load() || !d.api.Ready() {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ready\n")
}

func (d *Daemon) handleFederationJoin(fed FederationAdmin, w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name string `json:"name"`
		Addr string `json:"addr"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, fmt.Errorf("service: bad request body: %w", err))
		return
	}
	replayed, err := fed.FederationJoin(req.Name, req.Addr)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"events": replayed})
}

// Serve is the shared daemon entry point behind both cmd/peeld and
// `peelsim serve`: build, announce, run until the context is cancelled
// (SIGINT/SIGTERM in the commands), drain, and report the exit code.
func Serve(ctx context.Context, cfg DaemonConfig, stdout, stderr io.Writer) int {
	d, err := NewDaemon(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "peeld: %v\n", err)
		return 1
	}
	ready := cfg.OnReady
	d.cfg.OnReady = func(addr string) {
		fmt.Fprintf(stdout, "peeld: listening on %s (k=%d fabric, %d hosts, %d shards, max-inflight %d)\n",
			addr, d.svc.g.K, len(d.svc.g.Hosts()), len(d.svc.cache.shards), d.svc.opts.MaxInflight)
		if ready != nil {
			ready(addr)
		}
	}
	if err := d.Run(ctx); err != nil {
		fmt.Fprintf(stderr, "peeld: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "peeld: drained cleanly\n")
	return 0
}
