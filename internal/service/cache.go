package service

import (
	"sync"
	"sync/atomic"

	"peel/internal/steiner"
	"peel/internal/topology"
)

// The sharded tree cache.
//
// Entries are keyed by the canonical (source, member-set) key and spread
// over power-of-two shards by FNV-1a hash; each shard is an RWMutex-guarded
// map, so a cache hit costs one read-locked map lookup plus atomic loads —
// the hit path is benchmarked at 0 allocs/op. Entry values are immutable
// treeVal snapshots swapped in atomically; invalidation never blocks
// readers, it marks the published snapshot stale and the next access
// recomputes (lazy re-peel).
//
// A link index (link ID → entries whose tree crosses it) drives
// failure-driven invalidation: the service's topology failure observer
// looks up the failed link and marks exactly the affected entries stale,
// bumping their shards' generation counters. Publication happens under the
// service's topology read-lock, so an entry is always indexed before a
// concurrent failure could need to invalidate it.

// treeVal is one immutable published tree computation. The stale flag is
// its only mutable field: set once by the invalidator, read lock-free by
// the hit path.
type treeVal struct {
	tree      *steiner.Tree
	cost      int
	gen       uint64 // service topology generation at compute time
	installPs int64  // controller install latency charged for this compute
	patched   bool   // produced by incremental repair, not a full peel
	repairGen uint64 // consecutive patches since the last full peel
	stale     atomic.Bool
}

// flight is one in-progress tree computation; concurrent requests for the
// same key coalesce onto it (singleflight) and read val/err after done
// closes.
type flight struct {
	done chan struct{}
	val  *treeVal
	err  error
}

// entry is one cache slot. val holds the latest published computation
// (nil until the first completes); inflight, guarded by mu, coalesces
// concurrent computes; links, guarded by the cache's idxMu, lists the
// tree links indexed for invalidation.
type entry struct {
	key      string
	shard    int
	val      atomic.Pointer[treeVal]
	lastUsed atomic.Int64 // logical clock stamp for eviction

	mu       sync.Mutex
	inflight *flight

	links []topology.LinkID // guarded by treeCache.idxMu
}

// cacheShard is one partition of the key space.
type cacheShard struct {
	mu  sync.RWMutex
	m   map[string]*entry
	gen atomic.Uint64 // bumped when a failure invalidates an entry here
}

// treeCache is the sharded tree cache plus the link→entry invalidation
// index.
type treeCache struct {
	shards []cacheShard
	mask   uint64
	cap    int          // per-shard entry cap; 0 = unbounded
	clock  atomic.Int64 // logical access clock for LRU eviction

	idxMu  sync.Mutex
	byLink map[topology.LinkID]map[*entry]struct{}
}

// newTreeCache sizes the cache: shards is rounded up to a power of two.
func newTreeCache(shards, perShardCap int) *treeCache {
	n := 1
	for n < shards {
		n <<= 1
	}
	c := &treeCache{
		shards: make([]cacheShard, n),
		mask:   uint64(n - 1),
		cap:    perShardCap,
		byLink: map[topology.LinkID]map[*entry]struct{}{},
	}
	for i := range c.shards {
		c.shards[i].m = map[string]*entry{}
	}
	return c
}

// shardOf hashes a key to its shard (FNV-1a, inlined to keep the hit path
// allocation-free).
func (c *treeCache) shardOf(key string) *cacheShard {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return &c.shards[h&c.mask]
}

func (c *treeCache) shardIndex(s *cacheShard) int {
	for i := range c.shards {
		if &c.shards[i] == s {
			return i
		}
	}
	return -1
}

// lookup returns the entry for key, or nil. Read-locked: the hit path.
func (c *treeCache) lookup(key string) *entry {
	s := c.shardOf(key)
	s.mu.RLock()
	e := s.m[key]
	s.mu.RUnlock()
	return e
}

// touch stamps an access for eviction ordering.
func (c *treeCache) touch(e *entry) {
	e.lastUsed.Store(c.clock.Add(1))
}

// ensure returns the entry for key, creating it (and evicting the
// least-recently-used idle entry when the shard is at cap) on first use.
// The returned bool reports whether an eviction happened.
func (c *treeCache) ensure(key string) (*entry, bool) {
	s := c.shardOf(key)
	s.mu.Lock()
	e := s.m[key]
	if e != nil {
		s.mu.Unlock()
		return e, false
	}
	evicted := false
	if c.cap > 0 && len(s.m) >= c.cap {
		evicted = c.evictLocked(s)
	}
	e = &entry{key: key, shard: c.shardIndex(s)}
	c.touch(e)
	s.m[key] = e
	s.mu.Unlock()
	return e, evicted
}

// evictLocked removes the least-recently-used entry with no compute in
// flight from s (whose mu is held). Returns false when every entry is
// busy — the shard then grows past cap rather than stalling admission.
func (c *treeCache) evictLocked(s *cacheShard) bool {
	var victim *entry
	var oldest int64
	for _, e := range s.m {
		e.mu.Lock()
		busy := e.inflight != nil
		e.mu.Unlock()
		if busy {
			continue
		}
		if at := e.lastUsed.Load(); victim == nil || at < oldest {
			victim, oldest = e, at
		}
	}
	if victim == nil {
		return false
	}
	delete(s.m, victim.key)
	c.unindex(victim)
	return true
}

// index records the links of e's freshly published tree, replacing any
// previous indexing. Called with the service topology read-lock held, so
// no failure transition can interleave between publication and indexing.
func (c *treeCache) index(e *entry, links []topology.LinkID) {
	c.idxMu.Lock()
	for _, id := range e.links {
		if set := c.byLink[id]; set != nil {
			delete(set, e)
			if len(set) == 0 {
				delete(c.byLink, id)
			}
		}
	}
	e.links = links
	for _, id := range links {
		set := c.byLink[id]
		if set == nil {
			set = map[*entry]struct{}{}
			c.byLink[id] = set
		}
		set[e] = struct{}{}
	}
	c.idxMu.Unlock()
}

// unindex drops e from the link index (eviction path). idxMu is taken
// here; callers hold only the shard lock.
func (c *treeCache) unindex(e *entry) {
	c.idxMu.Lock()
	for _, id := range e.links {
		if set := c.byLink[id]; set != nil {
			delete(set, e)
			if len(set) == 0 {
				delete(c.byLink, id)
			}
		}
	}
	e.links = nil
	c.idxMu.Unlock()
}

// invalidateLink marks every entry whose tree crosses the failed link
// stale and bumps the affected shards' generations. Returns how many
// live entries were invalidated. Runs inside the topology failure
// observer, synchronously with the transition.
func (c *treeCache) invalidateLink(id topology.LinkID) int {
	n := 0
	c.idxMu.Lock()
	for e := range c.byLink[id] {
		if v := e.val.Load(); v != nil && !v.stale.Swap(true) {
			n++
			c.shards[e.shard].gen.Add(1)
		}
	}
	c.idxMu.Unlock()
	return n
}

// walk visits every entry holding a servable (published, non-stale)
// value with its key and indexed link set — the epoch-consistency
// re-walk. Link sets are copied under idxMu so the visitor runs
// lock-free; entries going stale mid-walk may still be visited with
// their last indexed links, which is the conservative direction.
func (c *treeCache) walk(visit func(key string, links []topology.LinkID)) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		entries := make([]*entry, 0, len(s.m))
		for _, e := range s.m {
			entries = append(entries, e)
		}
		s.mu.RUnlock()
		for _, e := range entries {
			if v := e.val.Load(); v == nil || v.stale.Load() {
				continue
			}
			c.idxMu.Lock()
			links := append([]topology.LinkID(nil), e.links...)
			c.idxMu.Unlock()
			visit(e.key, links)
		}
	}
}

// entryCount returns the total and per-shard entry counts.
func (c *treeCache) entryCount() (total int, perShard []int) {
	perShard = make([]int, len(c.shards))
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		perShard[i] = len(s.m)
		s.mu.RUnlock()
		total += perShard[i]
	}
	return total, perShard
}
