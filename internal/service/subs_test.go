package service

import (
	"context"
	"testing"
	"time"

	"peel/internal/topology"
)

// flapSwitchTreeLink fails one live inter-switch link on the group's
// current tree. Host access links are never flapped: a fat-tree host has
// a single uplink, so failing it disconnects the member and the refresher
// correctly abandons the group instead of publishing.
func flapSwitchTreeLink(t *testing.T, s *Service, g *topology.Graph, gid string) topology.LinkID {
	t.Helper()
	ti, err := s.GetTree(context.Background(), gid)
	if err != nil {
		t.Fatalf("GetTree %s: %v", gid, err)
	}
	tr := ti.Tree
	for _, m := range tr.Members {
		p := tr.Parent[m]
		if p == topology.None || !g.Node(p).Kind.IsSwitch() || !g.Node(m).Kind.IsSwitch() {
			continue
		}
		id := g.LinkBetween(p, m)
		if id >= 0 && !g.Link(id).Failed {
			s.FailLink(id)
			return id
		}
	}
	t.Fatalf("no live inter-switch tree link to flap for %s", gid)
	return -1
}

func recvPush(t *testing.T, ch <-chan PushUpdate) PushUpdate {
	t.Helper()
	select {
	case pu := <-ch:
		return pu
	case <-time.After(5 * time.Second):
		t.Fatalf("no push within 5s")
		return PushUpdate{}
	}
}

// TestWatchFailurePush: a failure on a watched group's tree publishes a
// recomputed tree with CauseFailure and a stamped invalidation time.
func TestWatchFailurePush(t *testing.T) {
	g := topology.FatTree(4)
	s := New(g, Options{})
	defer s.Close()
	hosts := g.Hosts()
	if _, err := s.CreateGroup(context.Background(), "g0", hosts[:5]); err != nil {
		t.Fatal(err)
	}
	got := make(chan PushUpdate, 16)
	w, err := s.Watch("g0", func(pu PushUpdate) { got <- pu })
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	before, err := s.GetTree(context.Background(), "g0")
	if err != nil {
		t.Fatal(err)
	}
	flapSwitchTreeLink(t, s, g, "g0")
	pu := recvPush(t, got)
	if pu.Group != "g0" || pu.Cause != CauseFailure {
		t.Fatalf("push = %+v, want g0/failure", pu)
	}
	if pu.Info.Gen <= before.Gen {
		t.Fatalf("pushed gen %d did not advance past %d", pu.Info.Gen, before.Gen)
	}
	if pu.InvalidatedAt.IsZero() {
		t.Fatalf("failure push has no invalidation timestamp")
	}
	if n := s.NumWatched(); n != 1 {
		t.Fatalf("NumWatched = %d, want 1", n)
	}
}

// TestWatchMembershipPush: joins and leaves on a watched group publish
// with CauseMembership and no invalidation timestamp.
func TestWatchMembershipPush(t *testing.T) {
	g := topology.FatTree(4)
	s := New(g, Options{})
	defer s.Close()
	hosts := g.Hosts()
	if _, err := s.CreateGroup(context.Background(), "g0", hosts[:4]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetTree(context.Background(), "g0"); err != nil {
		t.Fatal(err)
	}
	got := make(chan PushUpdate, 16)
	w, err := s.Watch("g0", func(pu PushUpdate) { got <- pu })
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	if _, err := s.Join(context.Background(), "g0", hosts[7]); err != nil {
		t.Fatalf("Join: %v", err)
	}
	pu := recvPush(t, got)
	if pu.Cause != CauseMembership {
		t.Fatalf("cause = %v, want membership", pu.Cause)
	}
	if !pu.InvalidatedAt.IsZero() {
		t.Fatalf("membership push carries an invalidation timestamp")
	}
	found := false
	for _, m := range pu.Info.Tree.Members {
		if m == hosts[7] {
			found = true
		}
	}
	if !found {
		t.Fatalf("pushed tree does not contain the joined member")
	}
}

// TestWatchSkipsUnaffectedGroup: a flap that does not touch a watched
// group's tree must not spam its watchers (publication discipline — the
// cached value is still fresh).
func TestWatchSkipsUnaffectedGroup(t *testing.T) {
	g := topology.FatTree(4)
	s := New(g, Options{})
	defer s.Close()
	hosts := g.Hosts()
	// Pod-local group: hosts 0..1 share an edge switch, so its tree never
	// leaves the pod.
	if _, err := s.CreateGroup(context.Background(), "local", hosts[:2]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetTree(context.Background(), "local"); err != nil {
		t.Fatal(err)
	}
	got := make(chan PushUpdate, 16)
	w, err := s.Watch("local", func(pu PushUpdate) { got <- pu })
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// Fail a link in the last pod — far from the watched tree.
	far := hosts[len(hosts)-1]
	edge := g.Node(far).ID
	_ = edge
	ti, err := s.GetTree(context.Background(), "local")
	if err != nil {
		t.Fatal(err)
	}
	var failed topology.LinkID = -1
	onTree := map[topology.LinkID]bool{}
	tr := ti.Tree
	for _, m := range tr.Members {
		if p := tr.Parent[m]; p != topology.None {
			onTree[g.LinkBetween(p, m)] = true
		}
	}
	for id := topology.LinkID(0); int(id) < g.NumLinks(); id++ {
		l := g.Link(id)
		if !l.Failed && !onTree[id] && g.Node(l.A).Kind.IsSwitch() && g.Node(l.B).Kind.IsSwitch() {
			s.FailLink(id)
			failed = id
			break
		}
	}
	if failed < 0 {
		t.Fatal("no off-tree link found")
	}
	select {
	case pu := <-got:
		t.Fatalf("unaffected group received a push: %+v", pu)
	case <-time.After(300 * time.Millisecond):
	}
}

// TestWatchCloseStopsDelivery: after Close, further transitions publish
// nothing to the closed watch.
func TestWatchCloseStopsDelivery(t *testing.T) {
	g := topology.FatTree(4)
	s := New(g, Options{})
	defer s.Close()
	hosts := g.Hosts()
	if _, err := s.CreateGroup(context.Background(), "g0", hosts[:5]); err != nil {
		t.Fatal(err)
	}
	got := make(chan PushUpdate, 16)
	w, err := s.Watch("g0", func(pu PushUpdate) { got <- pu })
	if err != nil {
		t.Fatal(err)
	}
	flapSwitchTreeLink(t, s, g, "g0")
	recvPush(t, got)
	w.Close()
	if n := s.NumWatched(); n != 0 {
		t.Fatalf("NumWatched = %d after Close, want 0", n)
	}
	flapSwitchTreeLink(t, s, g, "g0")
	select {
	case pu := <-got:
		t.Fatalf("closed watch received a push: %+v", pu)
	case <-time.After(300 * time.Millisecond):
	}
}
