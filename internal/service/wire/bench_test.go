package wire

import (
	"context"
	"sort"
	"testing"
	"time"

	"peel/internal/invariant"
	"peel/internal/service"
	"peel/internal/topology"
)

// benchTree builds a representative pushed tree: a 16-receiver group
// spanning every pod of a k=8 fat tree.
func benchTree(b *testing.B) (*service.Service, service.TreeInfo) {
	b.Helper()
	g := topology.FatTree(8)
	s := service.New(g, service.Options{})
	b.Cleanup(s.Close)
	hosts := g.Hosts()
	members := make([]topology.NodeID, 0, 16)
	for i := 0; i < len(hosts) && len(members) < 16; i += 8 {
		members = append(members, hosts[i])
	}
	if _, err := s.CreateGroup(context.Background(), "bench", members); err != nil {
		b.Fatal(err)
	}
	ti, err := s.GetTree(context.Background(), "bench")
	if err != nil {
		b.Fatal(err)
	}
	return s, ti
}

// BenchmarkWireEncodeTree is the CI-pinned steady-state encode: appending
// a TREE frame into a reused buffer must not allocate — this is the
// writeLoop's per-push cost for every subscriber.
func BenchmarkWireEncodeTree(b *testing.B) {
	defer invariant.Enable(nil)()
	_, ti := benchTree(b)
	buf := AppendTreeFrame(nil, "bench", 1, 1, FlagFailure, ti.Tree)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendTreeFrame(buf[:0], "bench", uint64(i), uint64(i), FlagFailure, ti.Tree)
	}
	_ = buf
}

// BenchmarkWireDecodeTree is the client-side mirror: decoding a TREE
// payload into a reused TreeUpdate must not allocate after the first
// decode sized the edge slice.
func BenchmarkWireDecodeTree(b *testing.B) {
	defer invariant.Enable(nil)()
	_, ti := benchTree(b)
	buf := AppendTreeFrame(nil, "bench", 1, 1, FlagFailure, ti.Tree)
	var u TreeUpdate
	if err := DecodeTree(buf[HeaderLen:], &u); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeTree(buf[HeaderLen:], &u); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEncodeTreeZeroAlloc actively pins the steady-state encode and
// decode to zero allocations — a benchmark regression would only show in
// BENCH diffs, this fails the suite.
func TestEncodeTreeZeroAlloc(t *testing.T) {
	g := topology.FatTree(4)
	s := service.New(g, service.Options{})
	defer s.Close()
	hosts := g.Hosts()
	if _, err := s.CreateGroup(context.Background(), "g0", hosts[:8]); err != nil {
		t.Fatal(err)
	}
	ti, err := s.GetTree(context.Background(), "g0")
	if err != nil {
		t.Fatal(err)
	}
	buf := AppendTreeFrame(nil, "g0", 1, 1, FlagFailure, ti.Tree)
	if n := testing.AllocsPerRun(100, func() {
		buf = AppendTreeFrame(buf[:0], "g0", 2, 2, FlagFailure, ti.Tree)
	}); n != 0 {
		t.Errorf("steady-state encode allocates %.1f times per frame, want 0", n)
	}
	var u TreeUpdate
	if err := DecodeTree(buf[HeaderLen:], &u); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := DecodeTree(buf[HeaderLen:], &u); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("steady-state decode allocates %.1f times per frame, want 0", n)
	}
}

// flapBenchLink picks a live inter-switch link on the group's current
// tree (host uplinks are unique, failing one disconnects the member).
func flapBenchLink(b *testing.B, s *service.Service, g *topology.Graph, gid string) topology.LinkID {
	b.Helper()
	ti, err := s.GetTree(context.Background(), gid)
	if err != nil {
		b.Fatal(err)
	}
	tr := ti.Tree
	for _, m := range tr.Members {
		p := tr.Parent[m]
		if p == topology.None || !g.Node(p).Kind.IsSwitch() || !g.Node(m).Kind.IsSwitch() {
			continue
		}
		if id := g.LinkBetween(p, m); id >= 0 && !g.Link(id).Failed {
			s.FailLink(id)
			return id
		}
	}
	b.Fatal("no live inter-switch tree link")
	return -1
}

// BenchmarkPushPropagation measures invalidation-to-subscriber latency
// for the two distribution models the paper's control plane can run:
// server push over the wire protocol versus client polling at the
// loadgen default interval. Each iteration fails a live tree link,
// measures until the subscriber observes the recomputed tree, then heals
// the link. The p50-ns/p99-ns metrics are the propagation distribution;
// push should beat the poll interval floor by an order of magnitude.
func BenchmarkPushPropagation(b *testing.B) {
	defer invariant.Enable(nil)()
	const pollInterval = 5 * time.Millisecond

	b.Run("push", func(b *testing.B) {
		g := topology.FatTree(4)
		svc := service.New(g, service.Options{})
		b.Cleanup(svc.Close)
		srv := NewServer(svc, Options{})
		var addr string
		if err := srv.ListenAndServe("127.0.0.1:0", func(a string) { addr = a }); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(srv.Close)
		hosts := g.Hosts()
		if _, err := svc.CreateGroup(context.Background(), "bench", hosts[:6]); err != nil {
			b.Fatal(err)
		}
		c, err := Dial(addr, ClientOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		if err := c.Subscribe("bench"); err != nil {
			b.Fatal(err)
		}
		snap := <-c.Updates()
		if snap.Err != nil {
			b.Fatal(snap.Err)
		}
		lat := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			start := time.Now()
			link := flapBenchLink(b, svc, g, "bench")
			for u := range c.Updates() {
				if u.Err == nil && u.FailureDriven() {
					break
				}
			}
			lat = append(lat, time.Since(start))
			svc.RestoreLink(link)
		}
		b.StopTimer()
		reportPropagation(b, lat)
	})

	b.Run("poll", func(b *testing.B) {
		g := topology.FatTree(4)
		svc := service.New(g, service.Options{})
		b.Cleanup(svc.Close)
		hosts := g.Hosts()
		if _, err := svc.CreateGroup(context.Background(), "bench", hosts[:6]); err != nil {
			b.Fatal(err)
		}
		ti, err := svc.GetTree(context.Background(), "bench")
		if err != nil {
			b.Fatal(err)
		}
		lat := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			last := ti.Gen
			start := time.Now()
			link := flapBenchLink(b, svc, g, "bench")
			for {
				time.Sleep(pollInterval)
				ti, err = svc.GetTree(context.Background(), "bench")
				if err != nil {
					b.Fatal(err)
				}
				if ti.Gen > last {
					break
				}
			}
			lat = append(lat, time.Since(start))
			svc.RestoreLink(link)
		}
		b.StopTimer()
		reportPropagation(b, lat)
	})
}

func reportPropagation(b *testing.B, lat []time.Duration) {
	if len(lat) == 0 {
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.ReportMetric(float64(lat[len(lat)/2]), "p50-ns")
	b.ReportMetric(float64(lat[len(lat)*99/100]), "p99-ns")
}
