package wire

import (
	"bytes"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"peel/internal/topology"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// readAll decodes every frame in buf.
func readAll(t *testing.T, buf []byte) []Frame {
	t.Helper()
	r := NewReader(bytes.NewReader(buf))
	var out []Frame
	for {
		f, err := r.ReadFrame()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		// The reader reuses its payload buffer; copy for the assertion.
		out = append(out, Frame{Type: f.Type, Payload: append([]byte(nil), f.Payload...)})
	}
}

func TestGroupFrameRoundTrip(t *testing.T) {
	for _, typ := range []uint8{TypeSubscribe, TypeUnsubscribe, TypeResync} {
		buf := AppendGroupFrame(nil, typ, "g0042", 17)
		frames := readAll(t, buf)
		if len(frames) != 1 || frames[0].Type != typ {
			t.Fatalf("type %d: got %d frames, first type %d", typ, len(frames), frames[0].Type)
		}
		gid, gen, err := DecodeGroupFrame(typ, frames[0].Payload)
		if err != nil {
			t.Fatalf("type %d: decode: %v", typ, err)
		}
		if gid != "g0042" {
			t.Fatalf("type %d: gid %q", typ, gid)
		}
		if typ == TypeResync && gen != 17 {
			t.Fatalf("resync gen %d, want 17", gen)
		}
		if typ != TypeResync && gen != 0 {
			t.Fatalf("type %d: gen %d, want 0", typ, gen)
		}
	}
}

func TestPingPongRoundTrip(t *testing.T) {
	buf := AppendPing(nil, TypePing, 0xdeadbeef)
	buf = AppendPing(buf, TypePong, 7)
	frames := readAll(t, buf)
	if len(frames) != 2 {
		t.Fatalf("got %d frames, want 2", len(frames))
	}
	n, err := DecodePing(frames[0].Payload)
	if err != nil || n != 0xdeadbeef {
		t.Fatalf("ping: %v nonce %x", err, n)
	}
	n, err = DecodePing(frames[1].Payload)
	if err != nil || n != 7 {
		t.Fatalf("pong: %v nonce %d", err, n)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	buf := AppendError(nil, ErrCodeNoGroup, "gone", "no such group")
	frames := readAll(t, buf)
	code, gid, msg, err := DecodeError(frames[0].Payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if code != ErrCodeNoGroup || gid != "gone" || msg != "no such group" {
		t.Fatalf("got (%d, %q, %q)", code, gid, msg)
	}
}

func TestTreeFrameRoundTrip(t *testing.T) {
	edges := [][2]topology.NodeID{{100, 3}, {100, 7}, {101, 100}, {3, 1}}
	buf := AppendTreeFrameEdges(nil, "g0001", 42, 9, FlagPatched|FlagFailure, 101, edges)
	frames := readAll(t, buf)
	var u TreeUpdate
	if err := DecodeTree(frames[0].Payload, &u); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if u.Group != "g0001" || u.Gen != 42 || u.Seq != 9 || u.Source != 101 {
		t.Fatalf("header fields: %+v", u)
	}
	if !u.Patched() || !u.FailureDriven() || u.Resync() {
		t.Fatalf("flags: %+v", u)
	}
	if len(u.Edges) != len(edges) {
		t.Fatalf("edges: %d, want %d", len(u.Edges), len(edges))
	}
	for i, e := range edges {
		if u.Edges[i] != e {
			t.Fatalf("edge %d: %v, want %v", i, u.Edges[i], e)
		}
	}
	// Decoding into the same TreeUpdate must reuse the edge slice.
	before := &u.Edges[0]
	if err := DecodeTree(frames[0].Payload, &u); err != nil {
		t.Fatalf("re-decode: %v", err)
	}
	if &u.Edges[0] != before {
		t.Fatalf("re-decode reallocated the edge slice")
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	good := AppendTreeFrameEdges(nil, "g", 1, 1, 0, 5, [][2]topology.NodeID{{4, 5}})
	cases := map[string][]byte{
		"bad magic":       append([]byte{'X', 'W'}, good[2:]...),
		"bad version":     append([]byte{'P', 'W', 99}, good[3:]...),
		"type zero":       {'P', 'W', Version, 0, 0, 0, 0, 0},
		"type high":       {'P', 'W', Version, typeMax + 1, 0, 0, 0, 0},
		"oversized len":   {'P', 'W', Version, TypePing, 0xff, 0xff, 0xff, 0xff},
		"truncated":       good[:len(good)-2],
		"trailing header": good[:HeaderLen-3],
	}
	for name, raw := range cases {
		r := NewReader(bytes.NewReader(raw))
		if _, err := r.ReadFrame(); err == nil {
			t.Errorf("%s: ReadFrame accepted corrupt input", name)
		}
	}

	// Payload-level corruption: announced edge count beyond the payload.
	payload := append([]byte(nil), good[HeaderLen:]...)
	// The edge count varint for 1 edge is the byte before the final two
	// edge varints; rewrite it to a huge count.
	payload[len(payload)-3] = 0x7f
	var u TreeUpdate
	if err := DecodeTree(payload, &u); err == nil {
		t.Errorf("DecodeTree accepted an edge count beyond the payload")
	}

	if _, _, err := DecodeGroupFrame(TypeSubscribe, nil); err == nil {
		t.Errorf("DecodeGroupFrame accepted an empty payload")
	}
	long := AppendGroupFrame(nil, TypeSubscribe, strings.Repeat("x", maxGroupID+1), 0)
	if _, _, err := DecodeGroupFrame(TypeSubscribe, long[HeaderLen:]); err == nil {
		t.Errorf("DecodeGroupFrame accepted an oversized group id")
	}
}

// goldenSession builds the byte-exact subscribe → snapshot → push →
// resync → error session pinned in testdata/wire_session.golden. Golden
// frames use AppendTreeFrameEdges so the bytes depend only on the
// protocol, never on a tree builder's member ordering.
func goldenSession() []byte {
	var buf []byte
	// Client side: subscribe, later detect a gap and resync, ping.
	buf = AppendGroupFrame(buf, TypeSubscribe, "g0007", 0)
	buf = AppendGroupFrame(buf, TypeResync, "g0007", 3)
	buf = AppendPing(buf, TypePing, 99)
	// Server side: subscribe snapshot, failure push, shed-gap resync
	// snapshot, pong, and a terminal error for an unknown group.
	snap := [][2]topology.NodeID{{40, 2}, {40, 6}, {72, 40}}
	buf = AppendTreeFrameEdges(buf, "g0007", 2, 0, FlagResync, 72, snap)
	patched := [][2]topology.NodeID{{41, 2}, {41, 6}, {72, 41}}
	buf = AppendTreeFrameEdges(buf, "g0007", 3, 1, FlagPatched|FlagFailure, 72, patched)
	buf = AppendTreeFrameEdges(buf, "g0007", 5, 4, FlagResync, 72, snap)
	buf = AppendPing(buf, TypePong, 99)
	buf = AppendError(buf, ErrCodeNoGroup, "gX", "no such group: gX")
	return buf
}

// TestGoldenWireSession pins the wire format: any byte change to the
// encoding is a protocol break and must fail until the golden is
// consciously regenerated with -update-golden.
func TestGoldenWireSession(t *testing.T) {
	got := goldenSession()
	var dump strings.Builder
	dump.WriteString("# Framed binary subscription protocol, version 1.\n")
	dump.WriteString("# One line per frame: hex bytes. Regenerate: go test ./internal/service/wire -run TestGoldenWireSession -update-golden\n")
	for _, f := range readAll(t, got) {
		frame := appendHeader(nil, f.Type)
		frame = append(frame, f.Payload...)
		frame = patchLen(frame, 0)
		fmt.Fprintf(&dump, "%s\n", hex.EncodeToString(frame))
	}
	path := filepath.Join("testdata", "wire_session.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(dump.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update-golden): %v", err)
	}
	if dump.String() != string(want) {
		t.Fatalf("wire format drifted from golden session.\ngot:\n%s\nwant:\n%s", dump.String(), want)
	}

	// The golden bytes must also decode back to the session's semantics.
	frames := readAll(t, got)
	if len(frames) != 8 {
		t.Fatalf("session has %d frames, want 8", len(frames))
	}
	var u TreeUpdate
	if err := DecodeTree(frames[4].Payload, &u); err != nil {
		t.Fatalf("decoding the failure push: %v", err)
	}
	if u.Gen != 3 || u.Seq != 1 || !u.Patched() || !u.FailureDriven() {
		t.Fatalf("failure push decoded to %+v", u)
	}
}
