package wire

import (
	"bufio"
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"peel/internal/service"
	"peel/internal/topology"
)

// testHarness is one service + wire server on an ephemeral port.
type testHarness struct {
	g    *topology.Graph
	svc  *service.Service
	srv  *Server
	addr string
}

func newHarness(t testing.TB, k int, opts Options) *testHarness {
	t.Helper()
	g := topology.FatTree(k)
	svc := service.New(g, service.Options{})
	srv := NewServer(svc, opts)
	var addr string
	if err := srv.ListenAndServe("127.0.0.1:0", func(a string) { addr = a }); err != nil {
		t.Fatalf("ListenAndServe: %v", err)
	}
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return &testHarness{g: g, svc: svc, srv: srv, addr: addr}
}

// makeGroup creates a group over n distinct hosts starting at host index
// off (members[0] is the source).
func (h *testHarness) makeGroup(t testing.TB, id string, off, n int) []topology.NodeID {
	t.Helper()
	hosts := h.g.Hosts()
	members := make([]topology.NodeID, n)
	for i := range members {
		members[i] = hosts[(off+i*3)%len(hosts)]
	}
	if _, err := h.svc.CreateGroup(context.Background(), id, members); err != nil {
		t.Fatalf("CreateGroup %s: %v", id, err)
	}
	return members
}

// flapTreeLink fails an inter-switch link on the group's current tree,
// guaranteeing the next refresh actually changes it. Host access links
// are skipped: a fat-tree host has exactly one uplink, so failing it
// disconnects the member and no repaired tree exists at all.
func (h *testHarness) flapTreeLink(t testing.TB, gid string) topology.LinkID {
	t.Helper()
	ti, err := h.svc.GetTree(context.Background(), gid)
	if err != nil {
		t.Fatalf("GetTree %s: %v", gid, err)
	}
	tr := ti.Tree
	for _, m := range tr.Members {
		p := tr.Parent[m]
		if p == topology.None || !h.g.Node(p).Kind.IsSwitch() || !h.g.Node(m).Kind.IsSwitch() {
			continue
		}
		id := h.g.LinkBetween(p, m)
		if id >= 0 && !h.g.Link(id).Failed {
			h.svc.FailLink(id)
			return id
		}
	}
	t.Fatalf("no live inter-switch tree link to flap for %s", gid)
	return -1
}

func waitFor(t testing.TB, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSubscribePushResubscribe covers the basic protocol conversation:
// subscribe delivers a snapshot, a failure delivers a push, unsubscribe
// stops delivery.
func TestSubscribePushBasics(t *testing.T) {
	h := newHarness(t, 4, Options{})
	h.makeGroup(t, "g0", 0, 5)

	c, err := Dial(h.addr, ClientOptions{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if err := c.Subscribe("g0"); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}

	snap := <-c.Updates()
	if snap.Err != nil || !snap.Resync() || snap.Group != "g0" {
		t.Fatalf("first update is not the subscribe snapshot: %+v", snap)
	}
	if len(snap.Edges) == 0 {
		t.Fatalf("snapshot has no edges")
	}

	h.flapTreeLink(t, "g0")
	var push TreeUpdate
	waitForUpdate(t, c, 5*time.Second, func(u TreeUpdate) bool {
		push = u
		return u.FailureDriven()
	})
	if push.Gen <= snap.Gen {
		t.Fatalf("push gen %d did not advance past snapshot gen %d", push.Gen, snap.Gen)
	}
	if push.Seq != snap.Seq+1 {
		t.Fatalf("push seq %d, want %d", push.Seq, snap.Seq+1)
	}

	// Subscribing to a nonexistent group answers an ERROR update.
	if err := c.Subscribe("nope"); err != nil {
		t.Fatalf("Subscribe nope: %v", err)
	}
	waitForUpdate(t, c, 5*time.Second, func(u TreeUpdate) bool { return u.Err != nil })
	if c.Stats().Errors == 0 {
		t.Fatalf("error counter did not move")
	}
}

func waitForUpdate(t testing.TB, c *Client, d time.Duration, match func(TreeUpdate) bool) {
	t.Helper()
	deadline := time.After(d)
	for {
		select {
		case u, ok := <-c.Updates():
			if !ok {
				t.Fatalf("updates channel closed while waiting")
			}
			if match(u) {
				return
			}
		case <-deadline:
			t.Fatalf("timed out waiting for a matching update")
		}
	}
}

// subscriberState tracks one client's view for the convergence test.
type subscriberState struct {
	mu          sync.Mutex
	latest      map[string]TreeUpdate
	regressions int
}

// TestSubscribersConvergeUnderFlaps is the §3.1 distribution check: 8
// subscribers across 4 groups under a scripted link-flap schedule. Every
// client must converge to the service's cached tree at the final
// generation for each of its groups, and no delivered push may regress a
// generation. Run under -race in CI.
func TestSubscribersConvergeUnderFlaps(t *testing.T) {
	h := newHarness(t, 4, Options{})
	groups := []string{"g0", "g1", "g2", "g3"}
	for i, gid := range groups {
		h.makeGroup(t, gid, i*5, 6)
	}

	const nSubs = 8
	clients := make([]*Client, nSubs)
	states := make([]*subscriberState, nSubs)
	subsOf := make([][]string, nSubs)
	var wg sync.WaitGroup
	for i := 0; i < nSubs; i++ {
		c, err := Dial(h.addr, ClientOptions{})
		if err != nil {
			t.Fatalf("Dial %d: %v", i, err)
		}
		defer c.Close()
		clients[i] = c
		states[i] = &subscriberState{latest: map[string]TreeUpdate{}}
		subsOf[i] = []string{groups[i%len(groups)], groups[(i+1)%len(groups)]}
		for _, gid := range subsOf[i] {
			if err := c.Subscribe(gid); err != nil {
				t.Fatalf("Subscribe %d %s: %v", i, gid, err)
			}
		}
		wg.Add(1)
		go func(c *Client, st *subscriberState) {
			defer wg.Done()
			for u := range c.Updates() {
				if u.Err != nil {
					continue
				}
				st.mu.Lock()
				if last, ok := st.latest[u.Group]; ok && u.Gen < last.Gen {
					st.regressions++
				}
				st.latest[u.Group] = u
				st.mu.Unlock()
			}
		}(c, states[i])
	}

	// Wait for every subscriber's snapshots so the flap storm starts from
	// a primed state.
	waitFor(t, 5*time.Second, "subscribe snapshots", func() bool {
		for i, st := range states {
			st.mu.Lock()
			n := len(st.latest)
			st.mu.Unlock()
			if n < len(subsOf[i]) {
				return false
			}
		}
		return true
	})

	// Scripted schedule: 12 rounds, each failing one live link on a
	// group's current tree, healing the previous round's link first.
	var failed topology.LinkID = -1
	for round := 0; round < 12; round++ {
		if failed >= 0 {
			h.svc.RestoreLink(failed)
		}
		failed = h.flapTreeLink(t, groups[round%len(groups)])
		time.Sleep(5 * time.Millisecond)
	}
	if failed >= 0 {
		h.svc.RestoreLink(failed)
	}

	// Convergence: every subscriber's latest tree per group must reach the
	// service's cached generation and match its edges exactly.
	oracle := map[string]service.TreeInfo{}
	for _, gid := range groups {
		ti, err := h.svc.GetTree(context.Background(), gid)
		if err != nil {
			t.Fatalf("oracle GetTree %s: %v", gid, err)
		}
		oracle[gid] = ti
	}
	waitFor(t, 10*time.Second, "subscriber convergence", func() bool {
		for i, st := range states {
			for _, gid := range subsOf[i] {
				st.mu.Lock()
				u, ok := st.latest[gid]
				st.mu.Unlock()
				if !ok || u.Gen < oracle[gid].Gen {
					return false
				}
			}
		}
		return true
	})
	for i, st := range states {
		st.mu.Lock()
		if st.regressions > 0 {
			t.Errorf("subscriber %d saw %d generation regressions", i, st.regressions)
		}
		for _, gid := range subsOf[i] {
			u := st.latest[gid]
			ti := oracle[gid]
			if u.Gen != ti.Gen {
				t.Errorf("subscriber %d group %s at gen %d, oracle %d", i, gid, u.Gen, ti.Gen)
				continue
			}
			if u.Source != ti.Tree.Source || !edgesMatchTree(u.Edges, ti.Tree) {
				t.Errorf("subscriber %d group %s tree differs from oracle at gen %d", i, gid, u.Gen)
			}
		}
		st.mu.Unlock()
	}
	if got := h.srv.Stats().Pushes; got == 0 {
		t.Fatalf("server pushed nothing during the flap schedule")
	}
}

// TestStalledSubscriberGapAndResync drives the slow-subscriber path end
// to end with a raw-socket subscriber that deliberately stops reading:
// the server's bounded queue fills, pushes are shed, and once the
// subscriber drains its backlog it must observe a sequence gap, RESYNC,
// and converge onto the current tree.
func TestStalledSubscriberGapAndResync(t *testing.T) {
	h := newHarness(t, 4, Options{QueueDepth: 2, SockBuf: 2048, WriteTimeout: time.Minute})
	h.makeGroup(t, "stall", 0, 6)

	raw, err := net.Dial("tcp", h.addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer raw.Close()
	raw.(*net.TCPConn).SetReadBuffer(2048)
	if _, err := raw.Write(AppendGroupFrame(nil, TypeSubscribe, "stall", 0)); err != nil {
		t.Fatalf("subscribe: %v", err)
	}

	// Wait for the subscribe snapshot to be queued server-side, then stall:
	// flap the group's tree until the bounded queue overflows and sheds.
	waitFor(t, 5*time.Second, "subscription registered", func() bool {
		return h.srv.Stats().Groups == 1
	})
	var failed topology.LinkID = -1
	waitFor(t, 30*time.Second, "a shed push", func() bool {
		if h.srv.Stats().Shed > 0 {
			return true
		}
		if failed >= 0 {
			h.svc.RestoreLink(failed)
		}
		failed = h.flapTreeLink(t, "stall")
		time.Sleep(time.Millisecond)
		return h.srv.Stats().Shed > 0
	})
	if failed >= 0 {
		h.svc.RestoreLink(failed)
	}

	// Drain the backlog. The queued frames carry consecutive sequence
	// numbers from before the queue filled; the shed pushes left a hole
	// after them, so once the backlog dries up, one fresh flap (now that
	// the queue has room) must arrive with a visible seq jump.
	r := NewReader(bufio.NewReader(raw))
	var lastSeq uint64
	seenAny, gap, kicked := false, false, false
	overall := time.Now().Add(30 * time.Second)
	for !gap {
		if time.Now().After(overall) {
			t.Fatalf("no seq gap observed (seenAny=%v lastSeq=%d kicked=%v)", seenAny, lastSeq, kicked)
		}
		raw.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
		f, err := r.ReadFrame()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				// Backlog drained with no more frames in flight: trigger the
				// post-shed push that exposes the hole.
				kicked = true
				h.svc.RestoreLink(h.flapTreeLink(t, "stall"))
				continue
			}
			t.Fatalf("draining backlog: %v (seenAny=%v lastSeq=%d)", err, seenAny, lastSeq)
		}
		if f.Type != TypeTree {
			continue
		}
		var u TreeUpdate
		if err := DecodeTree(f.Payload, &u); err != nil {
			t.Fatalf("decoding backlog frame: %v", err)
		}
		if seenAny && u.Seq > lastSeq+1 {
			gap = true
		}
		seenAny = true
		lastSeq = u.Seq
	}
	raw.SetReadDeadline(time.Now().Add(10 * time.Second))

	// Gap detected: RESYNC and converge on the snapshot at the current seq.
	if _, err := raw.Write(AppendGroupFrame(nil, TypeResync, "stall", 0)); err != nil {
		t.Fatalf("resync: %v", err)
	}
	var snap TreeUpdate
	for {
		f, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("waiting for resync snapshot: %v", err)
		}
		if f.Type != TypeTree {
			continue
		}
		if err := DecodeTree(f.Payload, &snap); err != nil {
			t.Fatalf("decoding snapshot: %v", err)
		}
		if snap.Resync() {
			break
		}
	}
	ti, err := h.svc.GetTree(context.Background(), "stall")
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if snap.Gen != ti.Gen || !edgesMatchTree(snap.Edges, ti.Tree) {
		t.Fatalf("resync snapshot (gen %d, %d edges) does not match oracle (gen %d, cost %d)",
			snap.Gen, len(snap.Edges), ti.Gen, ti.Tree.Cost())
	}
	if h.srv.Stats().Resyncs == 0 {
		t.Fatalf("server resync counter did not move")
	}
}

// TestClientReconnectAfterServerRestart kills the wire server mid
// subscription and restarts one on the same service; a Reconnect client
// must redial, re-subscribe, and keep receiving pushes.
func TestClientReconnectAfterServerRestart(t *testing.T) {
	g := topology.FatTree(4)
	svc := service.New(g, service.Options{})
	defer svc.Close()
	srv1 := NewServer(svc, Options{})
	var addr string
	if err := srv1.ListenAndServe("127.0.0.1:0", func(a string) { addr = a }); err != nil {
		t.Fatalf("ListenAndServe: %v", err)
	}
	hosts := g.Hosts()
	members := []topology.NodeID{hosts[0], hosts[3], hosts[6], hosts[9]}
	if _, err := svc.CreateGroup(context.Background(), "g0", members); err != nil {
		t.Fatalf("CreateGroup: %v", err)
	}

	c, err := Dial(addr, ClientOptions{Reconnect: true, ReconnectBackoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if err := c.Subscribe("g0"); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	waitForUpdate(t, c, 5*time.Second, func(u TreeUpdate) bool { return u.Err == nil })

	srv1.Close()

	// Rebind the same address with a fresh server (same service).
	srv2 := NewServer(svc, Options{})
	var relisten error
	waitFor(t, 5*time.Second, "rebind", func() bool {
		relisten = srv2.ListenAndServe(addr, nil)
		return relisten == nil
	})
	defer srv2.Close()

	// The client must re-subscribe on its own and see the re-subscribe
	// snapshot, then live pushes again.
	waitForUpdate(t, c, 10*time.Second, func(u TreeUpdate) bool { return u.Err == nil && u.Resync() })
	if c.Stats().Reconnects == 0 {
		t.Fatalf("client did not record a reconnect")
	}
	ti, err := svc.GetTree(context.Background(), "g0")
	if err != nil {
		t.Fatalf("GetTree: %v", err)
	}
	flapped := false
	for _, m := range ti.Tree.Members {
		p := ti.Tree.Parent[m]
		if p == topology.None || !g.Node(p).Kind.IsSwitch() || !g.Node(m).Kind.IsSwitch() {
			continue
		}
		if id := g.LinkBetween(p, m); id >= 0 && !g.Link(id).Failed {
			svc.FailLink(id)
			flapped = true
			break
		}
	}
	if !flapped {
		t.Fatalf("no inter-switch tree link to flap")
	}
	waitForUpdate(t, c, 10*time.Second, func(u TreeUpdate) bool { return u.Err == nil && u.FailureDriven() })
}

// TestServerStatsAndShedUnit pins the enqueue shed branch without TCP
// timing: a queue of depth 1 offered two messages drops exactly one.
func TestServerStatsAndShedUnit(t *testing.T) {
	s := NewServer(nil, Options{QueueDepth: 1})
	c := &conn{s: s, out: make(chan *pushMsg, 1), done: make(chan struct{})}
	c.enqueue(&pushMsg{kind: TypePong})
	c.enqueue(&pushMsg{kind: TypePong})
	if got := s.Stats().Shed; got != 1 {
		t.Fatalf("shed %d, want 1", got)
	}
}

// TestWatchMembershipPush covers the membership-driven publish path: a
// Join on a watched group pushes an updated tree without any failure.
func TestWatchMembershipPush(t *testing.T) {
	h := newHarness(t, 4, Options{})
	members := h.makeGroup(t, "g0", 0, 4)
	c, err := Dial(h.addr, ClientOptions{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if err := c.Subscribe("g0"); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	snap := <-c.Updates()
	if snap.Err != nil {
		t.Fatalf("snapshot: %v", snap.Err)
	}

	// Join a host not yet in the group.
	hosts := h.g.Hosts()
	var joined topology.NodeID = -1
pick:
	for _, cand := range hosts {
		for _, m := range members {
			if m == cand {
				continue pick
			}
		}
		joined = cand
		break
	}
	if _, err := h.svc.Join(context.Background(), "g0", joined); err != nil {
		t.Fatalf("Join: %v", err)
	}
	waitForUpdate(t, c, 5*time.Second, func(u TreeUpdate) bool {
		if u.Err != nil || u.FailureDriven() {
			return false
		}
		for _, e := range u.Edges {
			if e[1] == joined {
				return true
			}
		}
		return false
	})
}

// TestSubscribeRetryAfterGroupAppears: a reconnect-mode client whose
// subscription is answered "no such group" keeps retrying and picks the
// subscription up once the group exists — the e2e daemon-restart flow,
// where group re-creation races the client's re-subscribe.
func TestSubscribeRetryAfterGroupAppears(t *testing.T) {
	h := newHarness(t, 4, Options{})
	c, err := Dial(h.addr, ClientOptions{Reconnect: true, ReconnectBackoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if err := c.Subscribe("late"); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	waitForUpdate(t, c, 5*time.Second, func(u TreeUpdate) bool { return u.Err != nil })
	h.makeGroup(t, "late", 2, 5)
	waitForUpdate(t, c, 5*time.Second, func(u TreeUpdate) bool {
		return u.Err == nil && u.Resync() && u.Group == "late"
	})
}
