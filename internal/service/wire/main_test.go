package wire

import (
	"testing"

	"peel/internal/invariant/invtest"
)

func TestMain(m *testing.M) { invtest.Main(m) }
