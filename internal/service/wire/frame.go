// Package wire is peeld's framed binary subscription protocol: a
// persistent-connection alternative to polling GET /v1/groups/{id}/tree.
// Clients SUBSCRIBE to groups over one TCP connection; on failure-driven
// invalidation the service re-peels (patch-first) and *pushes* the new
// tree to every subscriber, turning the §3.1 install latency into a
// measurable propagation latency instead of an invisible polling gap.
// Elmo (PAPERS.md, arXiv 1802.09815) is the motivating design point for
// pushing multicast state to endpoints at cloud scale.
//
// Every frame is an 8-byte header followed by a length-prefixed payload:
//
//	offset  size  field
//	0       1     magic 'P' (0x50)
//	1       1     magic 'W' (0x57)
//	2       1     protocol version (1)
//	3       1     frame type
//	4       4     payload length, big-endian uint32 (≤ MaxPayload)
//
// Payloads are unsigned varints (encoding/binary) plus raw bytes:
//
//	SUBSCRIBE / UNSUBSCRIBE:  gidLen gid
//	RESYNC:                   gidLen gid gen      (gen = client's latest)
//	PING / PONG:              nonce
//	TREE (server push):       gidLen gid gen seq flags(1B) source nEdges
//	                          nEdges × (parent child)
//	ERROR:                    code gidLen gid msgLen msg
//
// TREE edges are emitted in tree-member insertion order, so a fixed tree
// encodes to one byte string — the golden session test pins it. Gen is
// the service topology generation the tree was computed at; seq is the
// per-group push sequence number. A subscriber that sees seq jump by
// more than one missed a shed push and re-syncs with RESYNC; the server
// answers with a FlagResync snapshot at the current seq.
//
// Encoding appends into caller-owned buffers (steady-state push encode is
// 0 allocs/op, CI-pinned); decoding never allocates proportionally to
// attacker-controlled lengths and never reads past the frame payload —
// FuzzWireDecode holds the codec to that.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"peel/internal/steiner"
	"peel/internal/topology"
)

// Protocol constants.
const (
	magic0  = 'P'
	magic1  = 'W'
	Version = 1

	// HeaderLen is the fixed frame-header size.
	HeaderLen = 8
	// MaxPayload bounds one frame's payload; a header announcing more is a
	// protocol error, so a corrupt length cannot make a reader allocate or
	// buffer unboundedly.
	MaxPayload = 1 << 20
	// maxGroupID bounds group-ID strings on the wire.
	maxGroupID = 256
)

// Frame types.
const (
	TypeSubscribe   = 1 // client → server
	TypeUnsubscribe = 2 // client → server
	TypeResync      = 3 // client → server: re-request the current tree
	TypePing        = 4 // client → server
	TypePong        = 5 // server → client
	TypeTree        = 6 // server → client: pushed tree update
	TypeError       = 7 // server → client
	typeMax         = TypeError
)

// TREE frame flag bits.
const (
	// FlagPatched marks a tree produced by incremental repair rather than
	// a full peel.
	FlagPatched = 1 << 0
	// FlagResync marks a snapshot sent in response to SUBSCRIBE or RESYNC
	// (not a spontaneous invalidation push).
	FlagResync = 1 << 1
	// FlagFailure marks a push triggered by failure-driven invalidation —
	// the frames whose propagation latency the loadgen probe measures.
	FlagFailure = 1 << 2
	// FlagEpoch marks a pre-peeled tree pushed ahead of an announced
	// fabric reconfiguration (service.CauseEpoch): the subscriber should
	// cut over before the epoch boundary, no resync needed.
	FlagEpoch = 1 << 3
)

// ERROR frame codes.
const (
	ErrCodeNoGroup  = 1 // subscribed group does not exist
	ErrCodeBadFrame = 2 // unparseable or oversized client frame
	ErrCodeInternal = 3 // server-side failure computing the tree
)

var (
	// ErrBadFrame covers every malformed-input decode failure.
	ErrBadFrame = errors.New("wire: malformed frame")
	// ErrVersion reports a frame from an incompatible protocol version.
	ErrVersion = errors.New("wire: unsupported protocol version")
)

// TreeUpdate is one decoded TREE frame: the group's current multicast
// tree as (parent, child) edges, stamped with the topology generation it
// was computed at and the per-group push sequence number.
type TreeUpdate struct {
	Group  string
	Gen    uint64 // topology generation of the compute
	Seq    uint64 // per-group push sequence (gap ⇒ a shed push was missed)
	Flags  uint8  // FlagPatched | FlagResync | FlagFailure | FlagEpoch
	Source topology.NodeID
	Edges  [][2]topology.NodeID

	// Err is set on client-side delivery when the server answered a
	// subscription with an ERROR frame instead of a snapshot.
	Err error
}

// Patched reports whether the pushed tree came from an incremental
// repair.
func (u *TreeUpdate) Patched() bool { return u.Flags&FlagPatched != 0 }

// Resync reports whether the update is a snapshot (subscribe ack or
// resync answer) rather than a spontaneous push.
func (u *TreeUpdate) Resync() bool { return u.Flags&FlagResync != 0 }

// FailureDriven reports whether the push was triggered by failure-driven
// invalidation.
func (u *TreeUpdate) FailureDriven() bool { return u.Flags&FlagFailure != 0 }

// EpochDriven reports whether the push is a pre-peeled tree announced
// ahead of a scheduled fabric reconfiguration.
func (u *TreeUpdate) EpochDriven() bool { return u.Flags&FlagEpoch != 0 }

// appendHeader writes the fixed header for a frame whose payload will be
// appended afterwards; patchLen fixes the length field up once the
// payload size is known.
func appendHeader(buf []byte, typ uint8) []byte {
	return append(buf, magic0, magic1, Version, typ, 0, 0, 0, 0)
}

func patchLen(buf []byte, start int) []byte {
	binary.BigEndian.PutUint32(buf[start+4:start+8], uint32(len(buf)-start-HeaderLen))
	return buf
}

// AppendGroupFrame encodes a SUBSCRIBE, UNSUBSCRIBE, or RESYNC frame
// (RESYNC additionally carries gen, the client's latest generation).
func AppendGroupFrame(buf []byte, typ uint8, gid string, gen uint64) []byte {
	start := len(buf)
	buf = appendHeader(buf, typ)
	buf = binary.AppendUvarint(buf, uint64(len(gid)))
	buf = append(buf, gid...)
	if typ == TypeResync {
		buf = binary.AppendUvarint(buf, gen)
	}
	return patchLen(buf, start)
}

// AppendPing encodes a PING (or, for the server, PONG) frame.
func AppendPing(buf []byte, typ uint8, nonce uint64) []byte {
	start := len(buf)
	buf = appendHeader(buf, typ)
	buf = binary.AppendUvarint(buf, nonce)
	return patchLen(buf, start)
}

// AppendError encodes an ERROR frame.
func AppendError(buf []byte, code uint64, gid, msg string) []byte {
	start := len(buf)
	buf = appendHeader(buf, TypeError)
	buf = binary.AppendUvarint(buf, code)
	buf = binary.AppendUvarint(buf, uint64(len(gid)))
	buf = append(buf, gid...)
	buf = binary.AppendUvarint(buf, uint64(len(msg)))
	buf = append(buf, msg...)
	return patchLen(buf, start)
}

// AppendTreeFrame encodes a TREE push for t. Edges are emitted in the
// tree's member insertion order; the steady-state push path reuses one
// per-connection buffer, so this append-only encoder is 0 allocs/op once
// the buffer has warmed to frame size (CI-pinned by
// BenchmarkWireEncodeTree).
func AppendTreeFrame(buf []byte, gid string, gen, seq uint64, flags uint8, t *steiner.Tree) []byte {
	start := len(buf)
	buf = appendHeader(buf, TypeTree)
	buf = binary.AppendUvarint(buf, uint64(len(gid)))
	buf = append(buf, gid...)
	buf = binary.AppendUvarint(buf, gen)
	buf = binary.AppendUvarint(buf, seq)
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(t.Source))
	buf = binary.AppendUvarint(buf, uint64(t.Cost()))
	for _, m := range t.Members {
		if p := t.Parent[m]; p != topology.None {
			buf = binary.AppendUvarint(buf, uint64(p))
			buf = binary.AppendUvarint(buf, uint64(m))
		}
	}
	return patchLen(buf, start)
}

// AppendTreeFrameEdges is AppendTreeFrame for an explicit edge list — the
// protocol-only entry point golden tests pin, independent of any tree
// builder's member ordering.
func AppendTreeFrameEdges(buf []byte, gid string, gen, seq uint64, flags uint8,
	source topology.NodeID, edges [][2]topology.NodeID) []byte {
	start := len(buf)
	buf = appendHeader(buf, TypeTree)
	buf = binary.AppendUvarint(buf, uint64(len(gid)))
	buf = append(buf, gid...)
	buf = binary.AppendUvarint(buf, gen)
	buf = binary.AppendUvarint(buf, seq)
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(source))
	buf = binary.AppendUvarint(buf, uint64(len(edges)))
	for _, e := range edges {
		buf = binary.AppendUvarint(buf, uint64(e[0]))
		buf = binary.AppendUvarint(buf, uint64(e[1]))
	}
	return patchLen(buf, start)
}

// Frame is one decoded frame header plus its raw payload. Payload aliases
// the Reader's internal buffer and is valid only until the next ReadFrame.
type Frame struct {
	Type    uint8
	Payload []byte
}

// Reader decodes frames from a stream, reusing one payload buffer.
type Reader struct {
	r       io.Reader
	hdr     [HeaderLen]byte
	payload []byte
}

// NewReader wraps r (callers hand in a bufio.Reader for coalesced reads).
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// ReadFrame reads and validates the next frame. The returned payload is
// owned by the Reader and overwritten by the next call.
func (r *Reader) ReadFrame() (Frame, error) {
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		return Frame{}, err
	}
	if r.hdr[0] != magic0 || r.hdr[1] != magic1 {
		return Frame{}, fmt.Errorf("%w: bad magic %#02x%02x", ErrBadFrame, r.hdr[0], r.hdr[1])
	}
	if r.hdr[2] != Version {
		return Frame{}, fmt.Errorf("%w: got %d, want %d", ErrVersion, r.hdr[2], Version)
	}
	typ := r.hdr[3]
	if typ == 0 || typ > typeMax {
		return Frame{}, fmt.Errorf("%w: unknown type %d", ErrBadFrame, typ)
	}
	n := binary.BigEndian.Uint32(r.hdr[4:8])
	if n > MaxPayload {
		return Frame{}, fmt.Errorf("%w: payload %d exceeds max %d", ErrBadFrame, n, MaxPayload)
	}
	if cap(r.payload) < int(n) {
		r.payload = make([]byte, n)
	}
	r.payload = r.payload[:n]
	if _, err := io.ReadFull(r.r, r.payload); err != nil {
		return Frame{}, fmt.Errorf("%w: truncated payload: %v", ErrBadFrame, err)
	}
	return Frame{Type: typ, Payload: r.payload}, nil
}

// payloadReader is a bounds-checked cursor over one frame payload; every
// decode helper consumes through it, so no parse can over-read.
type payloadReader struct {
	b []byte
	i int
}

func (p *payloadReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.b[p.i:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint at offset %d", ErrBadFrame, p.i)
	}
	p.i += n
	return v, nil
}

func (p *payloadReader) bytes(n uint64) ([]byte, error) {
	if n > uint64(len(p.b)-p.i) {
		return nil, fmt.Errorf("%w: %d bytes wanted, %d left", ErrBadFrame, n, len(p.b)-p.i)
	}
	out := p.b[p.i : p.i+int(n)]
	p.i += int(n)
	return out, nil
}

func (p *payloadReader) done() error {
	if p.i != len(p.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(p.b)-p.i)
	}
	return nil
}

func (p *payloadReader) groupID() (string, error) {
	raw, err := p.groupIDBytes()
	if err != nil {
		return "", err
	}
	return string(raw), nil
}

// groupIDBytes is the allocation-free variant: the returned slice aliases
// the payload and is only valid until the reader's next frame.
func (p *payloadReader) groupIDBytes() ([]byte, error) {
	n, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 || n > maxGroupID {
		return nil, fmt.Errorf("%w: group id length %d", ErrBadFrame, n)
	}
	return p.bytes(n)
}

// DecodeGroupFrame parses a SUBSCRIBE, UNSUBSCRIBE, or RESYNC payload.
func DecodeGroupFrame(typ uint8, payload []byte) (gid string, gen uint64, err error) {
	p := payloadReader{b: payload}
	if gid, err = p.groupID(); err != nil {
		return "", 0, err
	}
	if typ == TypeResync {
		if gen, err = p.uvarint(); err != nil {
			return "", 0, err
		}
	}
	return gid, gen, p.done()
}

// DecodePing parses a PING or PONG payload.
func DecodePing(payload []byte) (nonce uint64, err error) {
	p := payloadReader{b: payload}
	if nonce, err = p.uvarint(); err != nil {
		return 0, err
	}
	return nonce, p.done()
}

// DecodeError parses an ERROR payload.
func DecodeError(payload []byte) (code uint64, gid, msg string, err error) {
	p := payloadReader{b: payload}
	if code, err = p.uvarint(); err != nil {
		return 0, "", "", err
	}
	if gid, err = p.groupID(); err != nil {
		return 0, "", "", err
	}
	n, err := p.uvarint()
	if err != nil {
		return 0, "", "", err
	}
	if n > 4096 {
		return 0, "", "", fmt.Errorf("%w: error message length %d", ErrBadFrame, n)
	}
	raw, err := p.bytes(n)
	if err != nil {
		return 0, "", "", err
	}
	return code, gid, string(raw), p.done()
}

// maxNode bounds node IDs on the wire: far above any simulated fabric,
// far below anything that could make a decoded slice interesting to an
// attacker.
const maxNode = 1 << 24

// DecodeTree parses a TREE payload into u, reusing u.Edges' backing
// array. The edge count is validated against the payload size before any
// allocation, so a corrupt header cannot balloon memory.
func DecodeTree(payload []byte, u *TreeUpdate) error {
	p := payloadReader{b: payload}
	gid, err := p.groupIDBytes()
	if err != nil {
		return err
	}
	if u.Gen, err = p.uvarint(); err != nil {
		return err
	}
	if u.Seq, err = p.uvarint(); err != nil {
		return err
	}
	fl, err := p.bytes(1)
	if err != nil {
		return err
	}
	u.Flags = fl[0]
	src, err := p.uvarint()
	if err != nil {
		return err
	}
	if src >= maxNode {
		return fmt.Errorf("%w: source %d out of range", ErrBadFrame, src)
	}
	nEdges, err := p.uvarint()
	if err != nil {
		return err
	}
	// Each edge is at least two one-byte varints: an announced count the
	// remaining payload cannot hold is rejected before allocating.
	if nEdges > uint64(len(p.b)-p.i)/2 {
		return fmt.Errorf("%w: %d edges in %d payload bytes", ErrBadFrame, nEdges, len(p.b)-p.i)
	}
	// Steady state decodes the same group into the same TreeUpdate; the
	// comparison is allocation-free, so the string only materializes when
	// the group actually changed.
	if u.Group != string(gid) {
		u.Group = string(gid)
	}
	u.Source = topology.NodeID(src)
	u.Edges = u.Edges[:0]
	for e := uint64(0); e < nEdges; e++ {
		parent, err := p.uvarint()
		if err != nil {
			return err
		}
		child, err := p.uvarint()
		if err != nil {
			return err
		}
		if parent >= maxNode || child >= maxNode {
			return fmt.Errorf("%w: edge %d-%d out of range", ErrBadFrame, parent, child)
		}
		u.Edges = append(u.Edges, [2]topology.NodeID{topology.NodeID(parent), topology.NodeID(child)})
	}
	return p.done()
}

// DecodeAny dispatches a frame to its payload decoder, returning a
// uniform error for unknown types — the single entry point FuzzWireDecode
// drives.
func DecodeAny(f Frame, u *TreeUpdate) error {
	switch f.Type {
	case TypeSubscribe, TypeUnsubscribe, TypeResync:
		_, _, err := DecodeGroupFrame(f.Type, f.Payload)
		return err
	case TypePing, TypePong:
		_, err := DecodePing(f.Payload)
		return err
	case TypeTree:
		return DecodeTree(f.Payload, u)
	case TypeError:
		_, _, _, err := DecodeError(f.Payload)
		return err
	default:
		return fmt.Errorf("%w: unknown type %d", ErrBadFrame, f.Type)
	}
}
