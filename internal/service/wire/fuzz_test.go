package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"peel/internal/topology"
)

// FuzzWireDecode holds the codec to its safety contract: arbitrary bytes
// never panic the reader or the payload decoders, never over-read, and
// never make a decode allocate proportionally to an attacker-controlled
// length field. Seeds cover every frame type via the golden session plus
// handcrafted corruptions.
func FuzzWireDecode(f *testing.F) {
	f.Add(goldenSession())
	f.Add(AppendGroupFrame(nil, TypeSubscribe, "g0000", 0))
	f.Add(AppendGroupFrame(nil, TypeResync, "g", 1<<60))
	f.Add(AppendPing(nil, TypePing, 0))
	f.Add(AppendError(nil, ErrCodeInternal, "g", "boom"))
	f.Add(AppendTreeFrameEdges(nil, "g", 1, 1, FlagFailure, 3,
		[][2]topology.NodeID{{1, 2}, {2, 4}}))
	// Corrupt headers: bad magic, huge length, unknown type.
	f.Add([]byte{'P', 'W', Version, TypeTree, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{'P', 'W', Version, 200, 0, 0, 0, 1, 0})
	f.Add([]byte{'X', 'Y', 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		var u TreeUpdate
		for {
			fr, err := r.ReadFrame()
			if err != nil {
				// Every failure must be a typed protocol error or plain
				// stream exhaustion — nothing anonymous escapes.
				if !errors.Is(err, ErrBadFrame) && !errors.Is(err, ErrVersion) &&
					!errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("ReadFrame returned an untyped error: %v", err)
				}
				return
			}
			if len(fr.Payload) > MaxPayload {
				t.Fatalf("reader produced a payload of %d bytes (max %d)", len(fr.Payload), MaxPayload)
			}
			if err := DecodeAny(fr, &u); err == nil {
				// A successful tree decode must respect the wire bounds the
				// encoder enforces.
				if fr.Type == TypeTree {
					if u.Source >= maxNode || len(u.Group) > maxGroupID {
						t.Fatalf("decoded tree violates wire bounds: source %d gid %d bytes",
							u.Source, len(u.Group))
					}
					for _, e := range u.Edges {
						if e[0] >= maxNode || e[1] >= maxNode {
							t.Fatalf("decoded edge %v out of range", e)
						}
					}
				}
			} else if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("DecodeAny returned an untyped error: %v", err)
			}
		}
	})
}

// TestFuzzSeedsDecode sanity-checks that the well-formed fuzz seeds
// actually decode, so the fuzzer starts from valid protocol ground.
func TestFuzzSeedsDecode(t *testing.T) {
	var u TreeUpdate
	for _, fr := range readAll(t, goldenSession()) {
		if err := DecodeAny(fr, &u); err != nil {
			t.Fatalf("golden frame type %d failed to decode: %v", fr.Type, err)
		}
	}
}
