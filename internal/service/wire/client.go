package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ClientOptions configures Dial.
type ClientOptions struct {
	// UpdateBuffer sizes the Updates channel (default 256). The receive
	// loop drops updates when the consumer lags — Stats.Dropped counts
	// them — so a slow consumer cannot wedge the connection.
	UpdateBuffer int
	// DialTimeout bounds one connection attempt (default 5s).
	DialTimeout time.Duration
	// Reconnect makes the client redial after a broken connection and
	// re-subscribe its groups; off, a broken connection closes Updates.
	Reconnect bool
	// ReconnectBackoff is the initial redial delay (default 50ms, doubling
	// to 32× per consecutive failure).
	ReconnectBackoff time.Duration
	// SockBuf, when >0, shrinks the kernel read buffer — the test knob
	// that, paired with the server's, makes shedding deterministic.
	SockBuf int
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.UpdateBuffer <= 0 {
		o.UpdateBuffer = 256
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.ReconnectBackoff <= 0 {
		o.ReconnectBackoff = 50 * time.Millisecond
	}
	return o
}

// ClientStats counts what the subscription saw; all fields grow
// monotonically.
type ClientStats struct {
	Updates     int64 `json:"updates"`     // TREE frames delivered to the consumer
	Gaps        int64 `json:"gaps"`        // seq gaps detected (shed pushes missed)
	Resyncs     int64 `json:"resyncs"`     // RESYNC requests sent
	Regressions int64 `json:"regressions"` // pushes dropped for regressing generation
	Reconnects  int64 `json:"reconnects"`  // successful redials after a break
	Dropped     int64 `json:"dropped"`     // updates dropped on a full Updates channel
	Errors      int64 `json:"wire_errors"` // ERROR frames received
}

// groupTrack is the client's per-group gap/generation detector.
type groupTrack struct {
	seq        uint64
	gen        uint64
	primed     bool // a first tree arrived since (re)connect
	retryArmed bool // a subscribe retry timer is pending
}

// Client is a wire-protocol subscriber: one TCP connection multiplexing
// any number of group subscriptions, delivering pushed trees over a
// channel. Gap detection and re-sync are automatic: a missed (shed) push
// shows up as a sequence jump and triggers a RESYNC; a server restart
// shows up as a broken connection and (with Reconnect) a redial plus
// re-subscription of every group.
type Client struct {
	opts ClientOptions
	addr string

	mu     sync.Mutex
	conn   net.Conn
	groups map[string]*groupTrack
	closed bool

	updates chan TreeUpdate
	done    chan struct{}
	wg      sync.WaitGroup

	nUpdates     atomic.Int64
	nGaps        atomic.Int64
	nResyncs     atomic.Int64
	nRegressions atomic.Int64
	nReconnects  atomic.Int64
	nDropped     atomic.Int64
	nErrors      atomic.Int64

	encBuf []byte // guarded by mu; all writers encode under it
}

// Dial connects to a wire server.
func Dial(addr string, opts ClientOptions) (*Client, error) {
	c := &Client{
		opts:    opts.withDefaults(),
		addr:    addr,
		groups:  map[string]*groupTrack{},
		updates: make(chan TreeUpdate, opts.withDefaults().UpdateBuffer),
		done:    make(chan struct{}),
	}
	conn, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.conn = conn
	c.wg.Add(1)
	go c.run(conn)
	return c, nil
}

func (c *Client) dial() (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
		if c.opts.SockBuf > 0 {
			tc.SetReadBuffer(c.opts.SockBuf)
		}
	}
	return conn, nil
}

// Updates returns the delivery channel; it closes when the client closes
// or (without Reconnect) the connection breaks.
func (c *Client) Updates() <-chan TreeUpdate { return c.updates }

// Stats snapshots the client's counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Updates:     c.nUpdates.Load(),
		Gaps:        c.nGaps.Load(),
		Resyncs:     c.nResyncs.Load(),
		Regressions: c.nRegressions.Load(),
		Reconnects:  c.nReconnects.Load(),
		Dropped:     c.nDropped.Load(),
		Errors:      c.nErrors.Load(),
	}
}

// Close tears the client down and closes Updates.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.done)
	conn := c.conn
	c.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	c.wg.Wait()
}

// Subscribe registers interest in a group; the server answers with a
// FlagResync snapshot, then pushes every subsequent update.
func (c *Client) Subscribe(gid string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errors.New("wire: client closed")
	}
	if c.groups[gid] == nil {
		c.groups[gid] = &groupTrack{}
	}
	return c.sendLocked(func(buf []byte) []byte {
		return AppendGroupFrame(buf, TypeSubscribe, gid, 0)
	})
}

// Unsubscribe drops a group subscription.
func (c *Client) Unsubscribe(gid string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.groups, gid)
	if c.closed || c.conn == nil {
		return nil
	}
	return c.sendLocked(func(buf []byte) []byte {
		return AppendGroupFrame(buf, TypeUnsubscribe, gid, 0)
	})
}

// Ping round-trips a nonce (fire-and-forget; the pong is consumed by the
// receive loop).
func (c *Client) Ping(nonce uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.conn == nil {
		return errors.New("wire: client closed")
	}
	return c.sendLocked(func(buf []byte) []byte {
		return AppendPing(buf, TypePing, nonce)
	})
}

// sendLocked encodes with enc into the shared buffer and writes the frame
// on the current connection. Callers hold c.mu.
func (c *Client) sendLocked(enc func([]byte) []byte) error {
	if c.conn == nil {
		return errors.New("wire: not connected")
	}
	c.encBuf = enc(c.encBuf[:0])
	_, err := c.conn.Write(c.encBuf)
	return err
}

// resync requests a fresh snapshot for a group after a detected gap.
func (c *Client) resync(gid string, gen uint64) {
	c.nResyncs.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.conn == nil {
		return
	}
	c.sendLocked(func(buf []byte) []byte {
		return AppendGroupFrame(buf, TypeResync, gid, gen)
	})
}

// run is the connection lifecycle: read frames until the connection
// breaks, then (with Reconnect) redial, re-subscribe, and repeat.
func (c *Client) run(conn net.Conn) {
	defer c.wg.Done()
	defer close(c.updates)
	for {
		c.readLoop(conn)
		if !c.opts.Reconnect {
			return
		}
		backoff := c.opts.ReconnectBackoff
		for {
			select {
			case <-c.done:
				return
			case <-time.After(backoff):
			}
			nc, err := c.dial()
			if err != nil {
				if backoff < 32*c.opts.ReconnectBackoff {
					backoff *= 2
				}
				continue
			}
			if !c.adopt(nc) {
				nc.Close()
				return
			}
			c.nReconnects.Add(1)
			conn = nc
			break
		}
	}
}

// adopt installs a fresh connection: reset every group's gap detector (a
// restarted server starts seq and gen over) and re-subscribe.
func (c *Client) adopt(nc net.Conn) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false
	}
	c.conn = nc
	for gid, tr := range c.groups {
		*tr = groupTrack{}
		c.sendLocked(func(buf []byte) []byte {
			return AppendGroupFrame(buf, TypeSubscribe, gid, 0)
		})
	}
	return true
}

// readLoop decodes frames off one connection until it breaks.
func (c *Client) readLoop(conn net.Conn) {
	r := NewReader(bufio.NewReaderSize(conn, 8192))
	for {
		f, err := r.ReadFrame()
		if err != nil {
			conn.Close()
			return
		}
		switch f.Type {
		case TypeTree:
			var u TreeUpdate
			if err := DecodeTree(f.Payload, &u); err != nil {
				continue
			}
			c.onTree(u)
		case TypePong:
			// Liveness only; nothing to deliver.
		case TypeError:
			code, gid, msg, err := DecodeError(f.Payload)
			if err != nil {
				continue
			}
			c.nErrors.Add(1)
			c.deliver(TreeUpdate{Group: gid,
				Err: fmt.Errorf("wire: server error %d for %q: %s", code, gid, msg)})
			if c.opts.Reconnect && code == ErrCodeNoGroup {
				// A restarted daemon loses its groups and re-creates them
				// out of band, so a reconnecting client's re-subscribe can
				// race the re-creation. Treat "no such group" as transient
				// and retry until a tree arrives.
				c.armSubscribeRetry(gid)
			}
		}
	}
}

// armSubscribeRetry schedules one SUBSCRIBE retry for a tracked group the
// server does not know (yet). The retry re-arms itself from the next
// ERROR frame, so the client polls the subscription back at
// ReconnectBackoff cadence until the group exists or is unsubscribed.
func (c *Client) armSubscribeRetry(gid string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	tr := c.groups[gid]
	if tr == nil || tr.primed || tr.retryArmed || c.closed {
		return
	}
	tr.retryArmed = true
	time.AfterFunc(c.opts.ReconnectBackoff, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		tr := c.groups[gid]
		if tr == nil || c.closed {
			return
		}
		tr.retryArmed = false
		if tr.primed {
			return
		}
		c.sendLocked(func(buf []byte) []byte {
			return AppendGroupFrame(buf, TypeSubscribe, gid, 0)
		})
	})
}

// onTree runs the gap/generation protocol for one pushed tree, delivering
// it to the consumer when it advances the group's state.
func (c *Client) onTree(u TreeUpdate) {
	c.mu.Lock()
	tr := c.groups[u.Group]
	if tr == nil {
		// Not subscribed (late frame after Unsubscribe) — drop.
		c.mu.Unlock()
		return
	}
	if tr.primed && u.Gen < tr.gen {
		// A pushed tree must never take the subscriber backwards.
		c.mu.Unlock()
		c.nRegressions.Add(1)
		return
	}
	gap := tr.primed && !u.Resync() && u.Seq > tr.seq+1
	tr.seq, tr.gen, tr.primed = u.Seq, u.Gen, true
	c.mu.Unlock()
	if gap {
		c.nGaps.Add(1)
		c.resync(u.Group, u.Gen)
	}
	c.deliver(u)
}

// deliver hands an update to the consumer, dropping (counted) on a full
// channel so a stalled consumer cannot block the read loop.
func (c *Client) deliver(u TreeUpdate) {
	select {
	case c.updates <- u:
		c.nUpdates.Add(1)
	default:
		c.nDropped.Add(1)
	}
}
