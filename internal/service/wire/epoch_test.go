package wire

import (
	"context"
	"testing"
	"time"

	"peel/internal/topology"
)

// TestEpochPushCutsOverWithoutResync covers the announced-reconfiguration
// wire path: PlanEpoch pushes the pre-peeled tree with FlagEpoch before
// the boundary, the commit itself pushes nothing (the subscriber already
// cut over), and the whole switch-over costs zero RESYNCs.
func TestEpochPushCutsOverWithoutResync(t *testing.T) {
	h := newHarness(t, 4, Options{})
	h.makeGroup(t, "g0", 0, 5)

	c, err := Dial(h.addr, ClientOptions{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if err := c.Subscribe("g0"); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	snap := <-c.Updates()
	if snap.Err != nil || !snap.Resync() {
		t.Fatalf("first update is not the subscribe snapshot: %+v", snap)
	}

	ti, err := h.svc.GetTree(context.Background(), "g0")
	if err != nil {
		t.Fatal(err)
	}
	var doomed topology.LinkID = -1
	for _, m := range ti.Tree.Members {
		p := ti.Tree.Parent[m]
		if p != topology.None && h.g.Node(p).Kind.IsSwitch() && h.g.Node(m).Kind.IsSwitch() {
			doomed = h.g.LinkBetween(p, m)
			break
		}
	}
	if doomed < 0 {
		t.Fatal("no inter-switch tree link to remove")
	}

	if _, err := h.svc.PlanEpoch(context.Background(), []topology.LinkID{doomed}); err != nil {
		t.Fatal(err)
	}
	var push TreeUpdate
	waitForUpdate(t, c, 5*time.Second, func(u TreeUpdate) bool {
		push = u
		return u.Err == nil && u.EpochDriven()
	})
	if push.FailureDriven() || push.Resync() {
		t.Fatalf("epoch push carries foreign flags: %+v", push)
	}
	for _, e := range push.Edges {
		id := h.g.LinkBetween(e[0], e[1])
		if id == doomed {
			t.Fatal("pre-peeled push still crosses the to-be-removed circuit")
		}
	}

	// Commit, then force a failure push on a different link: the next
	// update the client sees must be that failure push — the commit
	// itself pushed nothing, because the subscriber had already cut over.
	h.svc.CommitEpoch([]topology.LinkID{doomed}, nil)
	// Heal the removed circuit before flapping: the pre-peeled tree and
	// the doomed circuit can share a leaf's only two uplinks, and a flap
	// with both down would disconnect a member instead of pushing.
	h.svc.RestoreLink(doomed)
	h.flapTreeLink(t, "g0")
	waitForUpdate(t, c, 5*time.Second, func(u TreeUpdate) bool {
		if u.Err != nil {
			return false
		}
		if u.EpochDriven() {
			t.Fatalf("spurious epoch push after the commit: %+v", u)
		}
		return u.FailureDriven()
	})
	if rs := h.srv.Stats().Resyncs; rs != 0 {
		t.Fatalf("switch-over cost %d resyncs, want 0", rs)
	}
}
