package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"peel/internal/invariant"
	"peel/internal/service"
	"peel/internal/steiner"
	"peel/internal/telemetry"
	"peel/internal/topology"
)

// PushedTreeMatchesCache: every TREE frame a subscriber receives decodes
// to exactly the tree the control plane's cache currently publishes for
// that group — the wire layer cannot drift from the source of truth it
// distributes.
const PushedTreeMatchesCache = "wire.pushed-tree-matches-cache"

func init() {
	invariant.Register(invariant.Checker{
		Name:   PushedTreeMatchesCache,
		Anchor: "§3.1 (control-plane consistency)",
		Desc:   "every pushed TREE frame round-trips the codec and matches the cache's current tree for the group",
	})
}

// Options configures a wire Server.
type Options struct {
	// QueueDepth bounds each connection's outbound push queue; a full
	// queue sheds the push (the subscriber detects the seq gap and
	// re-syncs). Default 64.
	QueueDepth int
	// WriteTimeout bounds one frame write; a subscriber stalled past it is
	// disconnected (default 10s).
	WriteTimeout time.Duration
	// SockBuf, when >0, shrinks each accepted connection's kernel write
	// buffer — a test knob that makes slow-subscriber shedding observable
	// with small frame counts.
	SockBuf int
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	return o
}

// pushMsg is one queued outbound message, shared immutably across the
// connections it fans out to.
type pushMsg struct {
	kind  uint8 // TypeTree, TypePong, TypeError
	gid   string
	gen   uint64
	seq   uint64
	flags uint8
	info  service.TreeInfo // kind == TypeTree
	// invalAt anchors the push-latency histogram for failure pushes.
	invalAt time.Time
	// nonce (pong) / code+msg (error)
	nonce uint64
	code  uint64
	msg   string
}

// groupState is the server-side subscription registry entry for one
// group: its subscriber set and the per-group push sequence.
type groupState struct {
	mu      sync.Mutex
	conns   map[*conn]struct{}
	watch   *service.Watch
	seq     uint64
	lastGen uint64
}

// Server speaks the wire protocol over TCP for one single-node service.
type Server struct {
	svc  *service.Service
	opts Options

	ln     net.Listener
	mu     sync.Mutex
	conns  map[*conn]struct{}
	groups map[string]*groupState
	closed atomic.Bool
	wg     sync.WaitGroup

	hooks atomic.Pointer[wireHooks]

	// Shed/push counters surfaced in Stats (telemetry mirrors them when
	// armed).
	pushes  atomic.Int64
	shed    atomic.Int64
	resyncs atomic.Int64
}

// NewServer builds a server over svc. Serve or ListenAndServe starts it.
func NewServer(svc *service.Service, opts Options) *Server {
	return &Server{
		svc:    svc,
		opts:   opts.withDefaults(),
		conns:  map[*conn]struct{}{},
		groups: map[string]*groupState{},
	}
}

// ListenAndServe binds addr and serves until Close. It returns once the
// listener is bound, reporting the bound address through ready (tests use
// port 0); accept-loop errors after Close are swallowed.
func (s *Server) ListenAndServe(addr string, ready func(addr string)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready(ln.Addr().String())
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.Serve(ln)
	}()
	return nil
}

// Addr returns the bound listener address ("" before ListenAndServe).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve accepts subscriber connections on ln until Close.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		s.startConn(c)
	}
}

// Close stops accepting, disconnects every subscriber, closes all service
// watches, and waits for connection goroutines to drain. Idempotent.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	groups := s.groups
	s.groups = map[string]*groupState{}
	s.mu.Unlock()
	for _, gs := range groups {
		gs.mu.Lock()
		w := gs.watch
		gs.watch = nil
		gs.mu.Unlock()
		if w != nil {
			w.Close()
		}
	}
	for _, c := range conns {
		c.shutdown()
	}
	s.wg.Wait()
}

// Stats is a point-in-time census of the wire layer.
type Stats struct {
	Conns   int   `json:"conns"`
	Groups  int   `json:"subscribed_groups"`
	Pushes  int64 `json:"pushes"`
	Shed    int64 `json:"shed"`
	Resyncs int64 `json:"resyncs"`
}

// Stats snapshots the server.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := Stats{Conns: len(s.conns), Groups: len(s.groups)}
	s.mu.Unlock()
	st.Pushes = s.pushes.Load()
	st.Shed = s.shed.Load()
	st.Resyncs = s.resyncs.Load()
	return st
}

// conn is one subscriber connection: a reader goroutine parsing client
// frames and a writer goroutine draining the bounded outbound queue.
type conn struct {
	s     *Server
	c     net.Conn
	out   chan *pushMsg
	subs  map[string]struct{} // groups this conn subscribed to (reader-owned + mu)
	subMu sync.Mutex
	done  chan struct{}
	once  sync.Once

	encBuf []byte // writer-owned encode scratch, reused every frame
}

func (s *Server) startConn(nc net.Conn) {
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
		if s.opts.SockBuf > 0 {
			tc.SetWriteBuffer(s.opts.SockBuf)
		}
	}
	c := &conn{
		s:    s,
		c:    nc,
		out:  make(chan *pushMsg, s.opts.QueueDepth),
		subs: map[string]struct{}{},
		done: make(chan struct{}),
	}
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		nc.Close()
		return
	}
	s.conns[c] = struct{}{}
	n := len(s.conns)
	s.mu.Unlock()
	if h := s.tel(); h != nil {
		h.conns.Set(int64(n))
	}
	s.wg.Add(2)
	go func() { defer s.wg.Done(); c.readLoop() }()
	go func() { defer s.wg.Done(); c.writeLoop() }()
}

// shutdown tears the connection down once: unsubscribes its groups,
// closes the socket, and wakes the writer.
func (c *conn) shutdown() {
	c.once.Do(func() {
		close(c.done)
		c.c.Close()
		c.subMu.Lock()
		subs := make([]string, 0, len(c.subs))
		for gid := range c.subs {
			subs = append(subs, gid)
		}
		c.subs = map[string]struct{}{}
		c.subMu.Unlock()
		for _, gid := range subs {
			c.s.dropSub(c, gid)
		}
		c.s.mu.Lock()
		delete(c.s.conns, c)
		n := len(c.s.conns)
		c.s.mu.Unlock()
		if h := c.s.tel(); h != nil {
			h.conns.Set(int64(n))
		}
	})
}

// enqueue offers a message to the outbound queue; a full queue sheds tree
// pushes (the seq gap tells the subscriber) rather than blocking the
// publisher.
func (c *conn) enqueue(m *pushMsg) {
	select {
	case c.out <- m:
	case <-c.done:
	default:
		c.s.shed.Add(1)
		if h := c.s.tel(); h != nil {
			h.shed.Inc()
		}
	}
}

func (c *conn) readLoop() {
	defer c.shutdown()
	r := NewReader(bufio.NewReaderSize(c.c, 4096))
	for {
		f, err := r.ReadFrame()
		if err != nil {
			if errors.Is(err, ErrBadFrame) || errors.Is(err, ErrVersion) {
				c.enqueue(&pushMsg{kind: TypeError, code: ErrCodeBadFrame, msg: err.Error()})
			}
			return
		}
		switch f.Type {
		case TypeSubscribe:
			gid, _, err := DecodeGroupFrame(f.Type, f.Payload)
			if err != nil {
				c.enqueue(&pushMsg{kind: TypeError, code: ErrCodeBadFrame, msg: err.Error()})
				continue
			}
			c.s.subscribe(c, gid)
		case TypeUnsubscribe:
			gid, _, err := DecodeGroupFrame(f.Type, f.Payload)
			if err != nil {
				continue
			}
			c.subMu.Lock()
			_, had := c.subs[gid]
			delete(c.subs, gid)
			c.subMu.Unlock()
			if had {
				c.s.dropSub(c, gid)
			}
		case TypeResync:
			gid, _, err := DecodeGroupFrame(f.Type, f.Payload)
			if err != nil {
				continue
			}
			c.s.resyncs.Add(1)
			if h := c.s.tel(); h != nil {
				h.resyncs.Inc()
			}
			c.s.sendSnapshot(c, gid, FlagResync)
		case TypePing:
			nonce, err := DecodePing(f.Payload)
			if err != nil {
				continue
			}
			c.enqueue(&pushMsg{kind: TypePong, nonce: nonce})
		default:
			// Server-to-client types arriving here are protocol misuse.
			c.enqueue(&pushMsg{kind: TypeError, code: ErrCodeBadFrame,
				msg: fmt.Sprintf("unexpected frame type %d", f.Type)})
		}
	}
}

func (c *conn) writeLoop() {
	defer c.shutdown()
	for {
		select {
		case <-c.done:
			return
		case m := <-c.out:
			c.encBuf = c.encBuf[:0]
			switch m.kind {
			case TypeTree:
				c.encBuf = AppendTreeFrame(c.encBuf, m.gid, m.gen, m.seq, m.flags, m.info.Tree)
			case TypePong:
				c.encBuf = AppendPing(c.encBuf, TypePong, m.nonce)
			case TypeError:
				c.encBuf = AppendError(c.encBuf, m.code, m.gid, m.msg)
			}
			c.c.SetWriteDeadline(time.Now().Add(c.s.opts.WriteTimeout))
			if _, err := c.c.Write(c.encBuf); err != nil {
				return
			}
			if m.kind == TypeTree {
				c.s.pushes.Add(1)
				if h := c.s.tel(); h != nil {
					h.pushes.Inc()
					if !m.invalAt.IsZero() {
						h.pushNs.Observe(time.Since(m.invalAt).Nanoseconds())
					}
				}
			}
		}
	}
}

// subscribe registers (c, gid): the first subscriber of a group installs
// a service watch, and every subscriber gets an immediate snapshot so its
// state is primed before any push arrives.
func (s *Server) subscribe(c *conn, gid string) {
	s.mu.Lock()
	gs := s.groups[gid]
	if gs == nil {
		gs = &groupState{conns: map[*conn]struct{}{}}
		s.groups[gid] = gs
	}
	s.mu.Unlock()

	gs.mu.Lock()
	needWatch := gs.watch == nil
	gs.mu.Unlock()
	if needWatch {
		w, err := s.svc.Watch(gid, func(pu service.PushUpdate) { s.onPush(gs, gid, pu) })
		if err != nil {
			s.mu.Lock()
			if cur := s.groups[gid]; cur == gs && len(gs.conns) == 0 {
				delete(s.groups, gid)
			}
			s.mu.Unlock()
			c.enqueue(&pushMsg{kind: TypeError, code: errCodeFor(err), gid: gid, msg: err.Error()})
			return
		}
		gs.mu.Lock()
		if gs.watch == nil {
			gs.watch = w
			w = nil
		}
		gs.mu.Unlock()
		if w != nil {
			w.Close() // lost the race to another subscriber
		}
	}

	gs.mu.Lock()
	gs.conns[c] = struct{}{}
	gs.mu.Unlock()
	c.subMu.Lock()
	c.subs[gid] = struct{}{}
	c.subMu.Unlock()
	if h := s.tel(); h != nil {
		h.subs.Inc()
	}
	s.sendSnapshot(c, gid, FlagResync)
}

func errCodeFor(err error) uint64 {
	if errors.Is(err, service.ErrNoSuchGroup) {
		return ErrCodeNoGroup
	}
	return ErrCodeInternal
}

// dropSub removes (c, gid); the last subscriber of a group closes its
// service watch.
func (s *Server) dropSub(c *conn, gid string) {
	s.mu.Lock()
	gs := s.groups[gid]
	s.mu.Unlock()
	if gs == nil {
		return
	}
	gs.mu.Lock()
	delete(gs.conns, c)
	empty := len(gs.conns) == 0
	var w *service.Watch
	if empty {
		w = gs.watch
		gs.watch = nil
	}
	gs.mu.Unlock()
	if !empty {
		return
	}
	if w != nil {
		w.Close()
	}
	s.mu.Lock()
	if cur := s.groups[gid]; cur == gs {
		gs.mu.Lock()
		if len(gs.conns) == 0 && gs.watch == nil {
			delete(s.groups, gid)
		}
		gs.mu.Unlock()
	}
	s.mu.Unlock()
}

// sendSnapshot fetches the group's current tree and queues it to one
// connection with the resync flag, stamped with the group's current push
// seq so the client's gap detector re-anchors.
func (s *Server) sendSnapshot(c *conn, gid string, flags uint8) {
	ctx, cancel := context.WithTimeout(context.Background(), s.opts.WriteTimeout)
	ti, err := s.svc.GetTree(ctx, gid)
	cancel()
	if err != nil {
		c.enqueue(&pushMsg{kind: TypeError, code: errCodeFor(err), gid: gid, msg: err.Error()})
		return
	}
	s.mu.Lock()
	gs := s.groups[gid]
	s.mu.Unlock()
	var seq uint64
	if gs != nil {
		gs.mu.Lock()
		seq = gs.seq
		gs.mu.Unlock()
	}
	if ti.Patched {
		flags |= FlagPatched
	}
	m := &pushMsg{kind: TypeTree, gid: gid, gen: ti.Gen, seq: seq, flags: flags, info: ti}
	s.checkPush(gid, m)
	c.enqueue(m)
}

// onPush is the service-watch callback: sequence the update and fan it
// out to every subscriber of the group. Must not block — enqueue sheds.
func (s *Server) onPush(gs *groupState, gid string, pu service.PushUpdate) {
	gs.mu.Lock()
	if pu.Info.Gen < gs.lastGen {
		// A stale publish must never regress a subscriber's generation.
		gs.mu.Unlock()
		return
	}
	gs.lastGen = pu.Info.Gen
	gs.seq++
	m := &pushMsg{
		kind: TypeTree, gid: gid, gen: pu.Info.Gen, seq: gs.seq, info: pu.Info,
		invalAt: pu.InvalidatedAt,
	}
	if pu.Info.Patched {
		m.flags |= FlagPatched
	}
	if pu.Cause == service.CauseFailure {
		m.flags |= FlagFailure
	}
	if pu.Cause == service.CauseEpoch {
		m.flags |= FlagEpoch
	}
	targets := make([]*conn, 0, len(gs.conns))
	for c := range gs.conns {
		targets = append(targets, c)
	}
	gs.mu.Unlock()
	s.checkPush(gid, m)
	for _, c := range targets {
		c.enqueue(m)
	}
}

// checkPush arms the PushedTreeMatchesCache invariant: the frame the
// subscribers will receive must decode back to exactly the tree the
// service cache currently publishes for the group (compared only when the
// generations agree — a concurrent failure may already have superseded
// the cache entry).
func (s *Server) checkPush(gid string, m *pushMsg) {
	iv := invariant.Active()
	if iv == nil {
		return
	}
	buf := AppendTreeFrame(nil, m.gid, m.gen, m.seq, m.flags, m.info.Tree)
	var u TreeUpdate
	if err := DecodeTree(buf[HeaderLen:], &u); err != nil {
		iv.Violatef(PushedTreeMatchesCache, "pushed frame for %q does not decode: %v", gid, err)
		return
	}
	if !edgesMatchTree(u.Edges, m.info.Tree) || u.Source != m.info.Tree.Source {
		iv.Violatef(PushedTreeMatchesCache,
			"pushed frame for %q decodes to a different tree (%d edges vs cost %d)",
			gid, len(u.Edges), m.info.Tree.Cost())
		return
	}
	cached, ok := s.svc.CachedTreeInfo(gid)
	if !ok || cached.Gen != m.gen {
		// The cache moved on (concurrent failure or eviction) — the frame
		// round-tripped its own tree, which is all that can be asserted.
		iv.Pass(PushedTreeMatchesCache)
		return
	}
	iv.Checkf(PushedTreeMatchesCache, edgesMatchTree(u.Edges, cached.Tree),
		"pushed tree for %q (gen %d) differs from the cached tree at the same generation", gid, m.gen)
}

// edgesMatchTree reports whether the decoded edge list is exactly the
// tree's parent relation (same edges, any order).
func edgesMatchTree(edges [][2]topology.NodeID, t *steiner.Tree) bool {
	if t == nil || len(edges) != t.Cost() {
		return false
	}
	for _, e := range edges {
		child := int(e[1])
		if child < 0 || child >= len(t.Parent) || t.Parent[child] != e[0] {
			return false
		}
	}
	return true
}

// telHooks cache, following the service package's pattern: resolve the
// sink's primitives once per sink change, then every hot-path update is
// an atomic.
type wireHooks struct {
	sink    *telemetry.Sink
	conns   *telemetry.Gauge
	subs    *telemetry.Counter
	pushes  *telemetry.Counter
	shed    *telemetry.Counter
	resyncs *telemetry.Counter
	pushNs  *telemetry.Histogram // invalidation → frame-on-the-wire latency
}

func (s *Server) tel() *wireHooks {
	ts := telemetry.Active()
	if ts == nil {
		return nil
	}
	h := s.hooks.Load()
	if h == nil || h.sink != ts {
		h = &wireHooks{
			sink:    ts,
			conns:   ts.Gauge("wire.conns"),
			subs:    ts.Counter("wire.subscribes"),
			pushes:  ts.Counter("wire.pushes"),
			shed:    ts.Counter("wire.shed"),
			resyncs: ts.Counter("wire.resyncs"),
			pushNs:  ts.Histogram("wire.push_ns", telemetry.Log2Layout()),
		}
		s.hooks.Store(h)
	}
	return h
}

// Hook adapts a server start to service.DaemonConfig.Aux, so cmd/peeld
// and `peelsim serve` attach the wire listener with one line. report
// receives the bound address.
func Hook(addr string, opts Options, report func(addr string)) func(*service.Service) (func(), error) {
	return func(svc *service.Service) (func(), error) {
		srv := NewServer(svc, opts)
		if err := srv.ListenAndServe(addr, report); err != nil {
			return nil, err
		}
		return srv.Close, nil
	}
}
