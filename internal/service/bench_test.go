package service

import (
	"context"
	"testing"

	"peel/internal/invariant"
	"peel/internal/telemetry"
	"peel/internal/topology"
)

// benchService builds a warmed service with one cached group tree.
func benchService(b *testing.B) *Service {
	b.Helper()
	g := topology.FatTree(8)
	s := New(g, Options{})
	b.Cleanup(s.Close)
	hosts := g.Hosts()
	if _, err := s.CreateGroup(context.Background(), "bench", hosts[:16]); err != nil {
		b.Fatal(err)
	}
	if _, err := s.GetTree(context.Background(), "bench"); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkGetTreeHit is the CI-pinned hot path: a cache-hit GetTree must
// stay allocation-free. Invariant checking is disarmed (invtest.Main arms
// it package-wide) because serve-time revalidation is deliberately not
// free; telemetry stays off here to measure the bare path.
func BenchmarkGetTreeHit(b *testing.B) {
	defer invariant.Enable(nil)()
	s := benchService(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.GetTree(context.Background(), "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetTreeHitTelemetry proves the telemetry fast path keeps the
// hit allocation-free too: cached hooks, atomic counter increments, and
// lock-free histogram observes.
func BenchmarkGetTreeHitTelemetry(b *testing.B) {
	defer invariant.Enable(nil)()
	defer telemetry.Enable(telemetry.NewSink(0))()
	s := benchService(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.GetTree(context.Background(), "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetTreeHitParallel exercises shard and atomic contention: many
// goroutines hammering one hot cached key.
func BenchmarkGetTreeHitParallel(b *testing.B) {
	defer invariant.Enable(nil)()
	s := benchService(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := s.GetTree(context.Background(), "bench"); err != nil {
				b.Fatal(err)
			}
		}
	})
}
