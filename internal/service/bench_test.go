package service

import (
	"context"
	"sort"
	"testing"
	"time"

	"peel/internal/invariant"
	"peel/internal/telemetry"
	"peel/internal/topology"
)

// benchService builds a warmed service with one cached group tree.
func benchService(b *testing.B) *Service {
	b.Helper()
	g := topology.FatTree(8)
	s := New(g, Options{})
	b.Cleanup(s.Close)
	hosts := g.Hosts()
	if _, err := s.CreateGroup(context.Background(), "bench", hosts[:16]); err != nil {
		b.Fatal(err)
	}
	if _, err := s.GetTree(context.Background(), "bench"); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkGetTreeHit is the CI-pinned hot path: a cache-hit GetTree must
// stay allocation-free. Invariant checking is disarmed (invtest.Main arms
// it package-wide) because serve-time revalidation is deliberately not
// free; telemetry stays off here to measure the bare path.
func BenchmarkGetTreeHit(b *testing.B) {
	defer invariant.Enable(nil)()
	s := benchService(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.GetTree(context.Background(), "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetTreeHitTelemetry proves the telemetry fast path keeps the
// hit allocation-free too: cached hooks, atomic counter increments, and
// lock-free histogram observes.
func BenchmarkGetTreeHitTelemetry(b *testing.B) {
	defer invariant.Enable(nil)()
	defer telemetry.Enable(telemetry.NewSink(0))()
	s := benchService(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.GetTree(context.Background(), "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFlapChurnRecompute is the loadgen flap-churn scenario as a
// controlled A/B: a pod-spanning group serves GetTree mostly from cache,
// and every hitsPerFlap-th get follows a link flap that invalidated the
// entry and forces a recompute. The p99-ns metric lands inside the
// recompute tail (flaps are ~3% of gets), so it reads the cost of a
// failure-driven recompute: under patch that is a bounded graft, under
// full a from-scratch re-peel of the pod-spanning tree. Chain-cap
// re-peels (every maxRepairChain-th patch) sit above the 99th percentile
// by construction, exactly as in production churn.
func BenchmarkFlapChurnRecompute(b *testing.B) {
	defer invariant.Enable(nil)()
	const hitsPerFlap = 32
	for _, mode := range []string{RepairPatch, RepairFull} {
		b.Run(mode, func(b *testing.B) {
			g := topology.FatTree(8)
			s := New(g, Options{Repair: mode})
			b.Cleanup(s.Close)
			// Every 8th host: two receivers per pod, so the tree crosses
			// the core tier and a full re-peel pays the multi-pod price.
			hosts := g.Hosts()
			members := make([]topology.NodeID, 0, 16)
			for i := 0; i < len(hosts) && len(members) < 16; i += 8 {
				members = append(members, hosts[i])
			}
			if _, err := s.CreateGroup(context.Background(), "bench", members); err != nil {
				b.Fatal(err)
			}
			ti, err := s.GetTree(context.Background(), "bench")
			if err != nil {
				b.Fatal(err)
			}
			lat := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%hitsPerFlap == hitsPerFlap-1 {
					// Receivers past the source's pod: the flap orphans a
					// small leaf subtree, never the root side.
					recv := members[2+i/hitsPerFlap%(len(members)-2)]
					link := receiverUplink(b, g, ti.Tree, recv)
					s.FailLink(link)
					start := time.Now()
					ti, err = s.GetTree(context.Background(), "bench")
					lat = append(lat, time.Since(start))
					s.RestoreLink(link)
				} else {
					start := time.Now()
					ti, err = s.GetTree(context.Background(), "bench")
					lat = append(lat, time.Since(start))
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			b.ReportMetric(float64(lat[len(lat)*99/100]), "p99-ns")
		})
	}
}

// BenchmarkGetTreeHitParallel exercises shard and atomic contention: many
// goroutines hammering one hot cached key.
func BenchmarkGetTreeHitParallel(b *testing.B) {
	defer invariant.Enable(nil)()
	s := benchService(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := s.GetTree(context.Background(), "bench"); err != nil {
				b.Fatal(err)
			}
		}
	})
}
