package collective

import (
	"peel/internal/core"
	"peel/internal/netsim"
	"peel/internal/steiner"
	"peel/internal/topology"
)

// startOptimal runs the bandwidth-optimal baseline: a single multicast
// flow over the minimum Steiner tree (super-node construction on
// failure-free fabrics, layer-peeling under failures), with per-group
// replication rules assumed free — the idealized lower bound of Fig. 5.
func (in *instance) startOptimal() error {
	tree, err := core.BuildTree(in.r.Net.G, in.c.Source(), in.c.Receivers())
	if err != nil {
		return err
	}
	return in.startTreeFlow(tree, in.c.Receivers(), false)
}

// startTreeFlow launches one multicast flow over tree toward the given
// member receivers; guard selects PEEL's sender-side guard timer.
func (in *instance) startTreeFlow(tree *steiner.Tree, receivers []topology.NodeID, guard bool) error {
	in.initCompletion()
	params := in.r.Net.Cfg.DCQCN
	if guard {
		params = params.WithGuard()
	}
	f, err := in.r.Net.NewMulticastFlow(tree, receivers, params)
	if err != nil {
		return err
	}
	in.track(f, receivers)
	in.repairBase = tree
	f.OnChunk(func(recv topology.NodeID, chunk int) { in.hostComplete(recv) })
	f.Send(0, in.c.Bytes)
	return nil
}

// startPEEL runs PEEL's static-prefix stage: one multicast flow per
// ⟨pod, prefix⟩ packet (each carrying the full message up its own copy of
// the funnel and down its prefix block, over-covered devices included),
// with the sender-side guard timer replacing DCQCN's receiver-side rate
// limiter (§4).
//
// With refine=true the two-stage refinement of §3.3 also runs: a
// background controller computes the exact tree; when it finishes, the
// static flows stop and a single refined flow delivers the remaining
// bytes through programmable cores.
//
// On non-fat-tree fabrics (the Fig. 7 leaf–spine) there is no prefix
// tier; PEEL is then its tree-construction contribution: a single
// multicast flow over the layer-peeling tree.
func (in *instance) startPEEL(refine, guard bool, opts core.PlanOptions) error {
	if in.r.Planner == nil {
		tree, err := core.BuildTree(in.r.Net.G, in.c.Source(), in.c.Receivers())
		if err != nil {
			return err
		}
		return in.startTreeFlow(tree, in.c.Receivers(), guard)
	}
	plan, err := in.r.Planner.PlanGroupOpts(in.c.Source(), in.c.Receivers(), opts)
	if err != nil {
		return err
	}
	in.initCompletion()
	params := in.r.Net.Cfg.DCQCN
	if guard {
		params = params.WithGuard()
	}

	static := make([]*netsim.Flow, 0, len(plan.Packets))
	for i := range plan.Packets {
		pkt := &plan.Packets[i]
		f, err := in.r.Net.NewMulticastFlow(pkt.Tree, pkt.Receivers, params)
		if err != nil {
			return err
		}
		in.track(f, pkt.Receivers)
		f.OnChunk(func(recv topology.NodeID, chunk int) { in.hostComplete(recv) })
		f.Send(0, in.c.Bytes)
		static = append(static, f)
	}

	if !refine || in.r.Ctrl == nil {
		return nil
	}
	// Background refinement: packets launch immediately above (fast
	// start); once the controller finishes, cut over to the exact tree.
	in.r.Ctrl.Install(in.r.Net.Engine, func() {
		in.cutOverToRefined(plan, static)
	})
	return nil
}

// cutOverToRefined stops the static prefix flows and delivers the tail of
// the message over the controller-computed exact tree. Members that
// already finished stay finished; the refined flow's chunk completion
// implies every member holds ≥ the full message (static progress is
// monotone and the tail starts at the minimum static offset).
func (in *instance) cutOverToRefined(plan *core.Plan, static []*netsim.Flow) {
	if in.finished || in.pendingHosts == 0 {
		return // collective already completed before the controller did
	}
	if err := in.r.Planner.BuildRefined(plan); err != nil {
		return // refinement unavailable; static flows continue
	}
	// Minimum static progress across unfinished members.
	min := in.c.Bytes
	for i := range plan.Packets {
		for _, m := range plan.Packets[i].Receivers {
			if in.hostDone[m] {
				continue
			}
			got := static[i].ReceivedBytes(m)
			if got < min {
				min = got
			}
		}
	}
	remaining := in.c.Bytes - min
	// Cutting over costs a full tail re-send to every pending receiver;
	// when the static stage is nearly done that wastes more than it
	// saves, so the controller leaves short tails alone.
	if remaining <= in.c.Bytes/8 {
		return
	}
	for _, f := range static {
		f.Close()
	}
	params := in.r.Net.Cfg.DCQCN.WithGuard()
	var pending []topology.NodeID
	for _, m := range plan.Members {
		if !in.hostDone[m] {
			pending = append(pending, m)
		}
	}
	if len(pending) == 0 {
		return
	}
	rf, err := in.r.Net.NewMulticastFlow(plan.Refined, pending, params)
	if err != nil {
		// The refined tree can be stale when links failed while the
		// controller worked; the watchdog (when armed) re-plans delivery,
		// and on a healthy fabric this cannot happen.
		return
	}
	in.track(rf, pending)
	in.repairBase = plan.Refined
	rf.OnChunk(func(recv topology.NodeID, chunk int) { in.hostComplete(recv) })
	rf.Send(0, remaining)
}
