package collective

import (
	"testing"

	"peel/internal/chaos"
	"peel/internal/controller"
	"peel/internal/invariant"
	"peel/internal/invariant/invtest"
	"peel/internal/netsim"
	"peel/internal/sim"
	"peel/internal/steiner"
	"peel/internal/telemetry"
	"peel/internal/topology"
	"peel/internal/workload"
)

// spread8 picks eight hosts spread across the 8-ary fat-tree's pods.
var spread8 = []int{16, 33, 50, 67, 84, 101, 118, 127}

// TestStripedPEELDeliversHealthy pins the failure-free striped data
// path: on the 8-ary fat-tree the scheme gets its full k disjoint trees,
// delivers every chunk (collective.striped-all-shards-delivered and
// collective.delivery are armed via TestMain), and reports no recovery
// activity.
func TestStripedPEELDeliversHealthy(t *testing.T) {
	for _, tc := range []struct {
		scheme Scheme
		want   int
	}{{StripedPEEL2, 2}, {StripedPEEL, 4}} {
		tb := newTestbedK(t, 8, nil)
		rep := tb.runReport(t, tb.collective(t, 0, spread8, 4<<20), tc.scheme)
		if rep.CCT <= 0 {
			t.Fatalf("%s: CCT=%v", tc.scheme, rep.CCT)
		}
		if rep.Stripes != tc.want {
			t.Fatalf("%s: achieved %d stripes, want %d", tc.scheme, rep.Stripes, tc.want)
		}
		if rep.Recovery != (RecoveryStats{}) {
			t.Fatalf("%s: recovery stats on a healthy run: %+v", tc.scheme, rep.Recovery)
		}
		for i, n := range rep.StripeRepairs {
			if n != 0 {
				t.Fatalf("%s: stripe %d repaired on a healthy run", tc.scheme, i)
			}
		}
	}
}

// stripeVictim returns a switch-switch link used only by the given
// stripe's tree — preferring a core-tier link, the paper's failure
// domain. DisjointTrees is deterministic, so recomputing the tree set
// here yields exactly the trees the scheme will build.
func stripeVictim(t *testing.T, g *topology.Graph, c *workload.Collective, k, stripe int) topology.LinkID {
	t.Helper()
	trees, _, err := steiner.DisjointTrees(g, c.Source(), c.Receivers(), k)
	if err != nil {
		t.Fatal(err)
	}
	if stripe >= len(trees) {
		t.Fatalf("only %d stripes built", len(trees))
	}
	victim := topology.LinkID(-1)
	tr := trees[stripe]
	for _, m := range tr.Members {
		p := tr.Parent[m]
		if p == topology.None || !g.Node(p).Kind.IsSwitch() || !g.Node(m).Kind.IsSwitch() {
			continue
		}
		l := g.LinkBetween(p, m)
		if victim < 0 {
			victim = l
		}
		if g.Node(p).Kind == topology.Core || g.Node(m).Kind == topology.Core {
			return l
		}
	}
	if victim < 0 {
		t.Fatal("stripe tree has no switch-switch link")
	}
	return victim
}

// TestStripedChaosRepairsOnlyDeadStripe is the chaos regression of the
// striping design: kill one stripe's core link mid-flight (it never
// heals) with invariants armed. The other k−1 disjoint trees must keep
// delivering — zero lost shards, zero abandonment — and the watchdog
// must patch only the dead stripe's tree.
func TestStripedChaosRepairsOnlyDeadStripe(t *testing.T) {
	const bytes = 4 << 20
	const deadStripe = 1

	clean := newTestbedK(t, 8, nil)
	cleanRep := clean.runReport(t, clean.collective(t, 0, spread8, bytes), StripedPEEL)
	if cleanRep.Stripes != 4 {
		t.Fatalf("clean run achieved %d stripes, want 4", cleanRep.Stripes)
	}

	sink := telemetry.NewSink(0)
	restore := telemetry.Enable(sink)
	defer restore()

	tb := newTestbedK(t, 8, nil)
	tb.runner.Watchdog = 100 * sim.Microsecond
	c := tb.collective(t, 0, spread8, bytes)
	victim := stripeVictim(t, tb.g, c, 4, deadStripe)
	sched := (&chaos.Schedule{}).FailLinkAt(cleanRep.CCT*3/10, victim)
	if err := chaos.NewInjector(tb.g, tb.eng).Arm(sched); err != nil {
		t.Fatal(err)
	}
	rep := tb.runReport(t, c, StripedPEEL)

	r := rep.Recovery
	if r.Stalls < 1 || r.Repairs+r.UnicastFallbacks < 1 {
		t.Fatalf("dead stripe was never repaired: %+v", r)
	}
	if r.Abandoned != 0 {
		t.Fatalf("shards lost (abandoned receivers) despite %d surviving stripes: %+v",
			rep.Stripes-1, r)
	}
	for i, n := range rep.StripeRepairs {
		if i == deadStripe && n < 1 {
			t.Fatalf("dead stripe %d not repaired: %v", deadStripe, rep.StripeRepairs)
		}
		if i != deadStripe && n != 0 {
			t.Fatalf("healthy stripe %d was repaired (%v); only the dead tree may be touched",
				i, rep.StripeRepairs)
		}
	}
	if tb.net.LinkDrops == 0 {
		t.Fatal("dead stripe link dropped no frames")
	}
	if got := sink.Counter("collective.stripe.repairs").Value(); got != int64(rep.StripeRepairs[deadStripe]) {
		t.Fatalf("per-stripe repair counter %d disagrees with report %v", got, rep.StripeRepairs)
	}
}

// TestMultiTreeReportsAchievedStripes is the regression for the dedup
// probe's silent under-provisioning: on a 2-spine leaf–spine the variant
// space wraps around after two distinct trees, so multitree-4 (and the
// disjoint striped-peel, whose residual graph runs dry at the same
// point) must report 2 achieved stripes, not pretend to stripe over 4.
func TestMultiTreeReportsAchievedStripes(t *testing.T) {
	for _, tc := range []struct {
		scheme Scheme
		want   int
	}{{MultiTree4, 2}, {MultiTree2, 2}, {MultiTree1, 1}, {StripedPEEL, 2}} {
		g := topology.LeafSpine(2, 4, 2)
		eng := &sim.Engine{}
		net := netsim.New(g, eng, netsim.DefaultConfig())
		cl := workload.NewCluster(g, 8)
		runner := NewRunner(net, cl, nil, controller.New(nil))
		hosts := g.Hosts()
		c := &workload.Collective{Bytes: 1 << 20, GPUs: 4 * 8,
			Hosts: []topology.NodeID{hosts[0], hosts[3], hosts[5], hosts[7]}}
		var rep Report
		done := false
		if err := runner.StartReport(c, tc.scheme, func(r Report) { rep, done = r, true }); err != nil {
			t.Fatalf("%s: %v", tc.scheme, err)
		}
		if err := eng.Run(10_000_000); err != nil {
			t.Fatalf("%s: %v", tc.scheme, err)
		}
		if !done {
			t.Fatalf("%s: never completed", tc.scheme)
		}
		if rep.Stripes != tc.want {
			t.Fatalf("%s: Report.Stripes=%d, want %d (wrap-around case)", tc.scheme, rep.Stripes, tc.want)
		}
	}
}

// TestAllGatherStripedVsRingOracle is the differential oracle: the
// striped allgather and the classic ring run the same group on identical
// topologies; both must complete (completion is defined as every member
// holding every shard), and the striped run's frame accounting must
// conserve — every frame netsim allocated was consumed, cross-checked
// against the telemetry counters and the quiesce check.
func TestAllGatherStripedVsRingOracle(t *testing.T) {
	members := []int{0, 2, 5, 7, 9, 11, 13, 15}
	const bytes = 8 << 20
	run := func(s Scheme) (sim.Time, *testbed, *telemetry.Sink) {
		sink := telemetry.NewSink(0)
		restore := telemetry.Enable(sink)
		defer restore()
		tb := newTestbed(t, nil)
		c := tb.collective(t, members[0], members[1:], bytes)
		var cct sim.Time = -1
		if err := tb.runner.StartAllGather(c, s, func(d sim.Time) { cct = d }); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if err := tb.eng.Run(80_000_000); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if cct <= 0 {
			t.Fatalf("%s allgather never completed", s)
		}
		return cct, tb, sink
	}

	ringCCT, ringTB, ringSink := run(Ring)
	stripedCCT, stripedTB, stripedSink := run(StripedPEEL)

	for _, probe := range []struct {
		label string
		tb    *testbed
		sink  *telemetry.Sink
	}{{"ring", ringTB, ringSink}, {"striped", stripedTB, stripedSink}} {
		probe.tb.net.CheckQuiesced(invariant.Active())
		alloc := probe.sink.Counter("netsim.frames_allocated").Value()
		consumed := probe.sink.Counter("netsim.frames_consumed").Value()
		if alloc == 0 || alloc != consumed {
			t.Fatalf("%s: frame conservation broken: allocated=%d consumed=%d",
				probe.label, alloc, consumed)
		}
	}
	// The striped path must not move more fabric bytes than the ring by
	// more than its k× disjoint-tree parallelism could explain; mostly a
	// sanity pin that both really moved the whole gather.
	if stripedTB.net.TotalBytes() == 0 || ringTB.net.TotalBytes() == 0 {
		t.Fatal("an allgather moved no bytes")
	}
	t.Logf("allgather CCT: ring=%v striped=%v", ringCCT, stripedCCT)
}

// TestMutationStripedShardsFires proves the striped-all-shards-delivered
// checker catches a receiver whose chunk bitmap fills without the fabric
// having delivered the message's bytes (a bookkeeping bug upstream of
// netsim would look exactly like this).
func TestMutationStripedShardsFires(t *testing.T) {
	tb := newTestbed(t, nil)
	hosts := tb.g.Hosts()
	c := &workload.Collective{Bytes: 1 << 20, GPUs: 16,
		Hosts: []topology.NodeID{hosts[0], hosts[1]}}
	in := &instance{r: tb.runner, c: c, reportDone: func(Report) {}}
	in.initCompletion()
	recv := hosts[1]
	sr := &stripedRun{in: in, sizes: []int64{1 << 20},
		got:   map[topology.NodeID][]bool{recv: make([]bool, 1)},
		need:  map[topology.NodeID]int{recv: 1},
		strps: []*stripe{{idx: 0, remaining: 1}}, // no flows: zero bytes delivered
	}
	s := invtest.Capture(t, func() { sr.deliver(recv, 0) })
	if s.Violations(StripedAllShardsDelivered) == 0 {
		t.Fatal("striped-all-shards-delivered did not fire on zero delivered bytes")
	}
}
