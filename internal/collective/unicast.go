package collective

import (
	"peel/internal/netsim"
	"peel/internal/topology"
)

// relayNode is one participant of a chunked unicast overlay (ring or
// binary tree): it owns the flows toward its overlay successors and
// forwards each chunk as soon as it holds it completely — the pipelined
// forwarding the paper describes for its Ring/Tree baselines.
type relayNode struct {
	host      topology.NodeID
	out       []*netsim.Flow
	gotChunks int
}

// startRing runs the unicast ring broadcast: members in placement order
// (bin-packed, so ring neighbors are mostly rack-local), the source at
// position 0, each node forwarding to its successor. The message is cut
// into Chunks pieces so transmission pipelines along the ring.
func (in *instance) startRing() error {
	hosts := in.c.Hosts
	in.initCompletion()
	sizes := in.chunkSizes()
	params := in.r.Net.Cfg.DCQCN

	nodes := make([]*relayNode, len(hosts))
	for i, h := range hosts {
		nodes[i] = &relayNode{host: h}
	}
	// Flows i → i+1 for all but the last member.
	for i := 0; i+1 < len(hosts); i++ {
		f, err := in.unicastFlow(hosts[i], hosts[i+1], params)
		if err != nil {
			return err
		}
		next := nodes[i+1]
		nodes[i].out = append(nodes[i].out, f)
		f.OnChunk(func(recv topology.NodeID, chunk int) {
			in.relayChunk(next, chunk, sizes)
		})
	}
	// The source holds every chunk already.
	for c := range sizes {
		for _, f := range nodes[0].out {
			f.Send(c, sizes[c])
		}
	}
	return nil
}

// startBinTree runs the binary-tree broadcast: members in placement order
// form a complete binary tree rooted at the source; each node forwards
// each chunk to both children, pipelined.
func (in *instance) startBinTree() error {
	hosts := in.c.Hosts
	in.initCompletion()
	sizes := in.chunkSizes()
	params := in.r.Net.Cfg.DCQCN

	nodes := make([]*relayNode, len(hosts))
	for i, h := range hosts {
		nodes[i] = &relayNode{host: h}
	}
	for i := range hosts {
		for _, ci := range []int{2*i + 1, 2*i + 2} {
			if ci >= len(hosts) {
				continue
			}
			f, err := in.unicastFlow(hosts[i], hosts[ci], params)
			if err != nil {
				return err
			}
			child := nodes[ci]
			nodes[i].out = append(nodes[i].out, f)
			f.OnChunk(func(recv topology.NodeID, chunk int) {
				in.relayChunk(child, chunk, sizes)
			})
		}
	}
	for c := range sizes {
		for _, f := range nodes[0].out {
			f.Send(c, sizes[c])
		}
	}
	return nil
}

// relayChunk records a chunk arrival at an overlay node, forwards it to
// the node's successors, and completes the host once all chunks landed.
// Successor flows closed by a failure repair are skipped: the repair tree
// owns delivery to those receivers from that point on.
func (in *instance) relayChunk(n *relayNode, chunk int, sizes []int64) {
	for _, f := range n.out {
		if f.Closed() {
			continue
		}
		f.Send(chunk, sizes[chunk])
	}
	n.gotChunks++
	if n.gotChunks == len(sizes) {
		in.hostComplete(n.host)
	}
}

// startDblBinTree runs NCCL's double binary tree broadcast (the paper's
// Fig. 1 names "double binary trees" among the popular logical
// topologies): two complementary binary trees over the members, each
// carrying half of the chunks. The second tree mirrors the first
// (member order reversed), so most interior nodes of one tree are leaves
// of the other and per-node send load halves versus a single tree.
func (in *instance) startDblBinTree() error {
	hosts := in.c.Hosts
	in.initCompletion()
	sizes := in.chunkSizes()
	params := in.r.Net.Cfg.DCQCN

	// Completion needs per-host chunk counts across both trees.
	counts := map[topology.NodeID]int{}
	total := len(sizes)
	arm := func(order []topology.NodeID, take func(chunk int) bool) error {
		nodes := make([]*relayNode, len(order))
		for i, h := range order {
			nodes[i] = &relayNode{host: h}
		}
		for i := range order {
			for _, ci := range []int{2*i + 1, 2*i + 2} {
				if ci >= len(order) {
					continue
				}
				f, err := in.unicastFlow(order[i], order[ci], params)
				if err != nil {
					return err
				}
				child := nodes[ci]
				nodes[i].out = append(nodes[i].out, f)
				f.OnChunk(func(recv topology.NodeID, chunk int) {
					for _, fo := range child.out {
						if fo.Closed() {
							continue
						}
						fo.Send(chunk, sizes[chunk])
					}
					counts[recv]++
					if counts[recv] == total {
						in.hostComplete(recv)
					}
				})
			}
		}
		for c := range sizes {
			if !take(c) {
				continue
			}
			for _, f := range nodes[0].out {
				f.Send(c, sizes[c])
			}
		}
		return nil
	}
	// Tree A: members in placement order, even chunks.
	if err := arm(hosts, func(c int) bool { return c%2 == 0 }); err != nil {
		return err
	}
	// Tree B: the source stays root; the remaining members reversed.
	order := make([]topology.NodeID, len(hosts))
	order[0] = hosts[0]
	for i := 1; i < len(hosts); i++ {
		order[i] = hosts[len(hosts)-i]
	}
	return arm(order, func(c int) bool { return c%2 == 1 })
}
