package collective

import (
	"fmt"

	"peel/internal/netsim"

	"peel/internal/core"
	"peel/internal/invariant"
	"peel/internal/sim"
	"peel/internal/steiner"
	"peel/internal/topology"
	"peel/internal/workload"
)

// AllGather support — the other bandwidth-bound collective the paper's
// motivation cites (network-offloaded broadcast/allgather, [23]). Every
// member starts with one shard of size Bytes/N; afterwards every member
// holds all N shards. Two data paths:
//
//   - Ring: the classic NCCL algorithm. Shard s travels the ring from its
//     owner through N−1 successors; each node forwards a shard onward as
//     soon as it holds it. Bandwidth-optimal in aggregate ((N−1)/N of the
//     total per link), but the last shard serializes N−1 hops.
//   - Multicast (Optimal or PEEL): every member multicasts its shard to
//     the group over its own tree, all N trees concurrently active.
//
// StartAllGather completes when every member holds every shard, plus the
// NVLink stage for the gathered message.
func (r *Runner) StartAllGather(c *workload.Collective, s Scheme, done func(cct sim.Time)) error {
	n := len(c.Hosts)
	if n < 2 {
		start := r.Net.Engine.Now()
		r.Net.Engine.After(r.nvlinkStage(c.Bytes), func() { done(r.Net.Engine.Now() - start) })
		return nil
	}
	ag := &allGather{
		in: &instance{r: r, c: c, startedAt: r.Net.Engine.Now(),
			reportDone: func(rep Report) { done(rep.CCT) }},
		shard: c.Bytes / int64(n),
	}
	if ag.shard == 0 {
		ag.shard = 1
	}
	// Completion: every host must collect the other n−1 shards.
	ag.pending = make(map[topology.NodeID]int, n)
	for _, h := range c.Hosts {
		ag.pending[h] = n - 1
	}
	ag.remaining = n * (n - 1)

	switch s {
	case Ring:
		return ag.startRing()
	case Optimal, PEEL:
		return ag.startMulticast(s)
	case StripedPEEL:
		return ag.startStriped(4)
	case StripedPEEL2:
		return ag.startStriped(2)
	}
	return fmt.Errorf("collective: allgather does not support scheme %q", s)
}

type allGather struct {
	in        *instance
	shard     int64
	pending   map[topology.NodeID]int
	remaining int
	striped   bool
}

// gotShard records that host h received one shard it lacked.
func (ag *allGather) gotShard(h topology.NodeID) {
	if ag.pending[h] <= 0 {
		return
	}
	ag.pending[h]--
	ag.remaining--
	if ag.remaining > 0 {
		return
	}
	if ag.striped {
		if s := invariant.Active(); s != nil {
			// The striped allgather is done: every member must now hold
			// every shard — a zero pending count for each host.
			missing := 0
			for _, h := range ag.in.c.Hosts {
				if ag.pending[h] != 0 {
					missing++
				}
			}
			s.Checkf(StripedAllShardsDelivered, missing == 0,
				"striped allgather finished with %d hosts still missing shards", missing)
		}
	}
	in := ag.in
	eng := in.r.Net.Engine
	eng.After(in.r.nvlinkStage(in.c.Bytes), func() {
		in.reportDone(Report{CCT: eng.Now() - in.startedAt})
	})
}

// startRing wires the classic ring allgather: flows i→i+1 (mod n); each
// node injects its own shard immediately and forwards each received shard
// unless the successor owns it.
func (ag *allGather) startRing() error {
	in := ag.in
	hosts := in.c.Hosts
	n := len(hosts)
	params := in.r.Net.Cfg.DCQCN
	flows := make([]*netsim.Flow, n)
	for i := 0; i < n; i++ {
		f, err := in.unicastFlow(hosts[i], hosts[(i+1)%n], params)
		if err != nil {
			return err
		}
		flows[i] = f
	}
	for i := 0; i < n; i++ {
		succ := (i + 1) % n
		flows[i].OnChunk(func(_ topology.NodeID, shardID int) {
			// The successor now holds shard shardID.
			ag.gotShard(hosts[succ])
			// Forward onward unless the next node is the shard's owner.
			if (succ+1)%n != shardID {
				flows[succ].Send(shardID, ag.shard)
			}
		})
	}
	for i := 0; i < n; i++ {
		// Each node launches its own shard around the ring.
		flows[i].Send(i, ag.shard)
	}
	return nil
}

// startMulticast runs n concurrent shard broadcasts, one tree per member.
// PEEL plans prefix packets per member; Optimal uses the exact tree.
func (ag *allGather) startMulticast(s Scheme) error {
	in := ag.in
	hosts := in.c.Hosts
	params := in.r.Net.Cfg.DCQCN
	if s == PEEL {
		params = params.WithGuard()
	}
	for i, src := range hosts {
		var others []topology.NodeID
		for j, h := range hosts {
			if j != i {
				others = append(others, h)
			}
		}
		if s == PEEL && in.r.Planner != nil {
			plan, err := in.r.Planner.PlanGroup(src, others)
			if err != nil {
				return err
			}
			for pi := range plan.Packets {
				pkt := &plan.Packets[pi]
				f, err := in.r.Net.NewMulticastFlow(pkt.Tree, pkt.Receivers, params)
				if err != nil {
					return err
				}
				f.OnChunk(func(recv topology.NodeID, _ int) { ag.gotShard(recv) })
				f.Send(i, ag.shard)
			}
			continue
		}
		tree, err := core.BuildTree(in.r.Net.G, src, others)
		if err != nil {
			return err
		}
		f, err := in.r.Net.NewMulticastFlow(tree, others, params)
		if err != nil {
			return err
		}
		f.OnChunk(func(recv topology.NodeID, _ int) { ag.gotShard(recv) })
		f.Send(i, ag.shard)
	}
	return nil
}

// startStriped runs the bandwidth-optimal allgather of Khalilov et al.:
// every member's shard rides its own set of up to k link-disjoint trees
// (steiner.DisjointTrees from that member), the shard split into one
// piece per tree. A receiver counts a shard gathered once all of its
// owner's pieces arrived. All N striped broadcasts are concurrently
// active, as in the single-tree multicast path.
func (ag *allGather) startStriped(k int) error {
	in := ag.in
	hosts := in.c.Hosts
	params := in.r.Net.Cfg.DCQCN.WithGuard()
	ag.striped = true
	for i, src := range hosts {
		others := make([]topology.NodeID, 0, len(hosts)-1)
		for j, h := range hosts {
			if j != i {
				others = append(others, h)
			}
		}
		trees, _, err := steiner.DisjointTrees(in.r.Net.G, src, others, k)
		if err != nil {
			return err
		}
		// Piece sizes: shard split across the trees, remainder on the last.
		nt := int64(len(trees))
		base := ag.shard / nt
		if base == 0 {
			base = 1
		}
		// left[r] counts the pieces of THIS shard receiver r still lacks.
		left := make(map[topology.NodeID]int, len(others))
		for _, h := range others {
			left[h] = len(trees)
		}
		for ti, tree := range trees {
			size := base
			if ti == len(trees)-1 {
				if size = ag.shard - base*(nt-1); size <= 0 {
					size = 1
				}
			}
			f, err := in.r.Net.NewMulticastFlow(tree, others, params)
			if err != nil {
				return err
			}
			f.OnChunk(func(recv topology.NodeID, _ int) {
				left[recv]--
				if left[recv] == 0 {
					ag.gotShard(recv)
				}
			})
			f.Send(ti, size)
		}
	}
	return nil
}
