package collective

import (
	"fmt"

	"peel/internal/routing"
	"peel/internal/steiner"
	"peel/internal/topology"
)

// Link-load analysis for Fig. 1: how many times one broadcast message
// traverses each physical link under each logical topology. Unicast rings
// and trees re-cross core links; the multicast-optimal tree crosses every
// link at most once.

// RingLinkLoads counts per-link message traversals for a unicast ring
// broadcast over the member hosts in the given order (source first):
// every consecutive pair ships the full message once.
func RingLinkLoads(g *topology.Graph, hosts []topology.NodeID) ([]int, error) {
	loads := make([]int, g.NumLinks())
	for i := 0; i+1 < len(hosts); i++ {
		if err := addPathLoads(g, hosts[i], hosts[i+1], loads); err != nil {
			return nil, err
		}
	}
	return loads, nil
}

// BinaryTreeLinkLoads counts per-link traversals for the binary-tree
// broadcast over the member hosts (source at index 0, children 2i+1/2i+2).
func BinaryTreeLinkLoads(g *topology.Graph, hosts []topology.NodeID) ([]int, error) {
	loads := make([]int, g.NumLinks())
	for i := range hosts {
		for _, ci := range []int{2*i + 1, 2*i + 2} {
			if ci >= len(hosts) {
				continue
			}
			if err := addPathLoads(g, hosts[i], hosts[ci], loads); err != nil {
				return nil, err
			}
		}
	}
	return loads, nil
}

// OptimalLinkLoads counts per-link traversals for the multicast-optimal
// broadcast: the Steiner tree's links, each exactly once.
func OptimalLinkLoads(g *topology.Graph, hosts []topology.NodeID) ([]int, error) {
	tree, err := steiner.SymmetricOptimal(g, hosts[0], hosts[1:])
	if err != nil {
		return nil, err
	}
	return tree.LinkLoads(g), nil
}

func addPathLoads(g *topology.Graph, a, b topology.NodeID, loads []int) error {
	p := routing.ShortestPath(g, a, b)
	if p == nil {
		return fmt.Errorf("collective: no path %d->%d", a, b)
	}
	for _, l := range routing.PathLinks(g, p) {
		loads[l]++
	}
	return nil
}

// SumLoads totals traversals, optionally restricted to a link filter
// (e.g. topology.SwitchLinks isolates the core tier Fig. 1 highlights).
func SumLoads(g *topology.Graph, loads []int, filter topology.LinkFilter) int {
	total := 0
	for i, n := range loads {
		if n == 0 {
			continue
		}
		if filter == nil || filter(g, g.Link(topology.LinkID(i))) {
			total += n
		}
	}
	return total
}
