package collective

import (
	"testing"

	"peel/internal/chaos"
	"peel/internal/core"
	"peel/internal/sim"
	"peel/internal/telemetry"
	"peel/internal/topology"
	"peel/internal/workload"
)

// runReport is tb.run for the extended completion record.
func (tb *testbed) runReport(t *testing.T, c *workload.Collective, s Scheme) Report {
	t.Helper()
	var rep Report
	done := false
	if err := tb.runner.StartReport(c, s, func(r Report) { rep = r; done = true }); err != nil {
		t.Fatalf("%s: %v", s, err)
	}
	if err := tb.eng.Run(80_000_000); err != nil {
		t.Fatalf("%s: %v", s, err)
	}
	if !done {
		t.Fatalf("%s: collective never completed", s)
	}
	return rep
}

// treeVictim returns a switch-to-switch link of the collective's optimal
// delivery tree — the link whose death breaks the multicast mid-flight.
func treeVictim(t *testing.T, g *topology.Graph, c *workload.Collective) topology.LinkID {
	t.Helper()
	tree, err := core.BuildTree(g, c.Source(), c.Receivers())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range tree.Members {
		p := tree.Parent[m]
		if p == topology.None {
			continue
		}
		if g.Node(m).Kind.IsSwitch() && g.Node(p).Kind.IsSwitch() {
			return g.LinkBetween(m, p)
		}
	}
	t.Fatal("delivery tree has no switch-to-switch edge")
	return topology.LinkID(-1)
}

// TestWatchdogRepairsMidFlightTreeFailure is the deterministic regression
// for online repair: a broadcast loses a tree link at 30% of the clean CCT
// (the link never heals) and must still complete, with the recovery stats
// recording the stall, the repair, and the downtime paid.
func TestWatchdogRepairsMidFlightTreeFailure(t *testing.T) {
	members := []int{1, 3, 5, 8, 12, 15}
	const bytes = 4 << 20

	clean := newTestbed(t, nil)
	cleanRep := clean.runReport(t, clean.collective(t, 0, members, bytes), Optimal)
	if cleanRep.Recovery != (RecoveryStats{}) {
		t.Fatalf("failure-free run has recovery stats: %+v", cleanRep.Recovery)
	}

	tb := newTestbed(t, nil)
	tb.runner.Watchdog = 100 * sim.Microsecond
	c := tb.collective(t, 0, members, bytes)
	victim := treeVictim(t, tb.g, c)
	sched := (&chaos.Schedule{}).FailLinkAt(cleanRep.CCT*3/10, victim)
	if err := chaos.NewInjector(tb.g, tb.eng).Arm(sched); err != nil {
		t.Fatal(err)
	}
	rep := tb.runReport(t, c, Optimal)

	r := rep.Recovery
	if r.Stalls < 1 || r.Repairs < 1 {
		t.Fatalf("no repair happened: %+v", r)
	}
	if r.Abandoned != 0 {
		t.Fatalf("receivers abandoned despite a repairable failure: %+v", r)
	}
	if r.FirstStallAt <= 0 || r.Downtime <= 0 {
		t.Fatalf("stall timing not recorded: %+v", r)
	}
	if rep.CCT <= cleanRep.CCT {
		t.Fatalf("repaired CCT %v not above clean %v", rep.CCT, cleanRep.CCT)
	}
	if tb.net.LinkDrops == 0 {
		t.Fatal("dead tree link dropped no frames")
	}
}

// subtreeVictim returns the delivery-tree link feeding one receiver's edge
// switch — a failure that orphans a small subtree, the case incremental
// repair is designed to graft around rather than re-peel.
func subtreeVictim(t *testing.T, g *topology.Graph, c *workload.Collective) topology.LinkID {
	t.Helper()
	tree, err := core.BuildTree(g, c.Source(), c.Receivers())
	if err != nil {
		t.Fatal(err)
	}
	recvs := c.Receivers()
	e := g.EdgeSwitchOf(recvs[len(recvs)-1])
	p := tree.Parent[e]
	if p == topology.None {
		t.Fatalf("edge switch %d has no tree parent", e)
	}
	return g.LinkBetween(p, e)
}

// TestWatchdogPatchRepair pins the incremental path end to end: a
// small-subtree link failure mid-flight must be repaired by grafting
// (collective.repair.patched fires) and the collective must still
// complete every receiver. The "full" mode variant must also complete,
// with the patch counter untouched — the A/B pair the -repair flag
// exposes.
func TestWatchdogPatchRepair(t *testing.T) {
	members := []int{1, 3, 5, 8, 12, 15}
	const bytes = 4 << 20

	clean := newTestbed(t, nil)
	cleanRep := clean.runReport(t, clean.collective(t, 0, members, bytes), Optimal)

	for _, mode := range []string{"patch", "full"} {
		sink := telemetry.NewSink(0)
		restore := telemetry.Enable(sink)

		tb := newTestbed(t, nil)
		tb.runner.Watchdog = 100 * sim.Microsecond
		tb.runner.RepairMode = mode
		c := tb.collective(t, 0, members, bytes)
		victim := subtreeVictim(t, tb.g, c)
		sched := (&chaos.Schedule{}).FailLinkAt(cleanRep.CCT*3/10, victim)
		if err := chaos.NewInjector(tb.g, tb.eng).Arm(sched); err != nil {
			restore()
			t.Fatal(err)
		}
		rep := tb.runReport(t, c, Optimal)
		restore()

		if rep.Recovery.Repairs < 1 || rep.Recovery.Abandoned != 0 {
			t.Fatalf("%s: repair did not complete cleanly: %+v", mode, rep.Recovery)
		}
		patched := sink.Counter("collective.repair.patched").Value()
		if mode == "patch" && patched < 1 {
			t.Fatalf("patch mode repaired %d times without a single graft", rep.Recovery.Repairs)
		}
		if mode == "full" && patched != 0 {
			t.Fatalf("full mode grafted %d times; must always re-peel", patched)
		}
	}
}

// TestEmptyChaosScheduleByteIdentical pins the zero-overhead guarantee: with
// no failures injected, enabling the watchdog (and arming an empty chaos
// schedule) must not change the collective's result at all.
func TestEmptyChaosScheduleByteIdentical(t *testing.T) {
	members := []int{1, 3, 5, 8, 12, 15}
	const bytes = 4 << 20
	for _, s := range []Scheme{Ring, Orca, PEEL} {
		off := newTestbed(t, nil)
		offRep := off.runReport(t, off.collective(t, 0, members, bytes), s)

		on := newTestbed(t, nil)
		on.runner.Watchdog = 100 * sim.Microsecond
		if err := chaos.NewInjector(on.g, on.eng).Arm(&chaos.Schedule{}); err != nil {
			t.Fatal(err)
		}
		onRep := on.runReport(t, on.collective(t, 0, members, bytes), s)

		if onRep.CCT != offRep.CCT {
			t.Fatalf("%s: watchdog-on CCT %v != watchdog-off %v", s, onRep.CCT, offRep.CCT)
		}
		if onRep.Recovery != (RecoveryStats{}) {
			t.Fatalf("%s: recovery stats nonzero without failures: %+v", s, onRep.Recovery)
		}
	}
}

// TestAbandonAfterRepairBudget cuts one receiver off completely (its only
// uplink dies, permanently): no repair tree or unicast detour can reach it,
// so after MaxRepairs attempts the collective must abandon it and still
// terminate, reporting the delivery failure.
func TestAbandonAfterRepairBudget(t *testing.T) {
	members := []int{1, 3, 5, 8, 12, 15}
	const bytes = 4 << 20

	clean := newTestbed(t, nil)
	cleanRep := clean.runReport(t, clean.collective(t, 0, members, bytes), Optimal)

	tb := newTestbed(t, nil)
	tb.runner.Watchdog = 100 * sim.Microsecond
	tb.runner.MaxRepairs = 2
	c := tb.collective(t, 0, members, bytes)
	lost := tb.g.Hosts()[15]
	uplink := tb.g.LinkBetween(lost, tb.g.EdgeSwitchOf(lost))
	sched := (&chaos.Schedule{}).FailLinkAt(cleanRep.CCT/10, uplink)
	if err := chaos.NewInjector(tb.g, tb.eng).Arm(sched); err != nil {
		t.Fatal(err)
	}
	rep := tb.runReport(t, c, Optimal)

	r := rep.Recovery
	if r.Abandoned != 1 {
		t.Fatalf("Abandoned=%d, want exactly the cut-off receiver: %+v", r.Abandoned, r)
	}
	if r.Stalls < 1 {
		t.Fatalf("abandonment without a declared stall: %+v", r)
	}
	if r.Repairs != 0 || r.UnicastFallbacks != 0 {
		t.Fatalf("unreachable receiver still got a repair installed: %+v", r)
	}
	if rep.CCT <= 0 {
		t.Fatalf("CCT=%v", rep.CCT)
	}
}
