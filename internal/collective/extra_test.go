package collective

import (
	"math/rand"
	"testing"
	"testing/quick"

	"peel/internal/controller"
	"peel/internal/core"
	"peel/internal/netsim"
	"peel/internal/sim"
	"peel/internal/topology"
	"peel/internal/workload"
)

func TestOrcaAllMembersInSourceRack(t *testing.T) {
	// No remote racks → no fabric multicast; the source relays its rack
	// directly after the controller installs.
	tb := newTestbed(t, nil)
	c := tb.collective(t, 0, []int{1}, 2<<20) // host 1 shares rack with host 0
	cct := tb.run(t, c, Orca)
	if cct < sim.Time(100*sim.Microsecond) {
		t.Fatalf("controller floor missing: %v", cct)
	}
}

func TestOrcaWithoutController(t *testing.T) {
	// A runner with Ctrl == nil starts Orca immediately.
	g := topology.FatTree(4)
	eng := &sim.Engine{}
	net := netsim.New(g, eng, netsim.DefaultConfig())
	cl := workload.NewCluster(g, 8)
	r := NewRunner(net, cl, nil, nil)
	hosts := g.Hosts()
	c := &workload.Collective{Bytes: 2 << 20, GPUs: 32, Hosts: hosts[:4]}
	var cct sim.Time = -1
	if err := r.Start(c, Orca, func(d sim.Time) { cct = d }); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	if cct <= 0 || cct > sim.Time(5*sim.Millisecond) {
		t.Fatalf("controllerless orca cct=%v, want sub-controller latency", cct)
	}
}

func TestPEELWithoutPlannerUsesTree(t *testing.T) {
	// Leaf-spine fabric: no prefix tier, PEEL falls back to the
	// layer-peeling tree (Fig. 7's configuration).
	g := topology.LeafSpine(4, 6, 2)
	eng := &sim.Engine{}
	net := netsim.New(g, eng, netsim.DefaultConfig())
	cl := workload.NewCluster(g, 8)
	r := NewRunner(net, cl, nil, controller.New(rand.New(rand.NewSource(1))))
	hosts := g.Hosts()
	c := &workload.Collective{Bytes: 2 << 20, GPUs: 48, Hosts: hosts[:6]}
	var cct sim.Time = -1
	if err := r.Start(c, PEEL, func(d sim.Time) { cct = d }); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	if cct <= 0 {
		t.Fatal("peel-on-leaf-spine never completed")
	}
}

func TestLoadsErrorOnPartition(t *testing.T) {
	g := topology.LeafSpine(1, 2, 1)
	spine := g.NodesOfKind(topology.Spine)[0]
	for _, he := range g.Adj(spine) {
		g.FailLink(he.Link)
	}
	hosts := g.Hosts()
	if _, err := RingLinkLoads(g, hosts); err == nil {
		t.Fatal("ring loads must fail on partition")
	}
	if _, err := BinaryTreeLinkLoads(g, hosts); err == nil {
		t.Fatal("tree loads must fail on partition")
	}
}

func TestChunkSizesSumAndCount(t *testing.T) {
	tb := newTestbed(t, nil)
	in := &instance{r: tb.runner, c: &workload.Collective{Bytes: 1000}}
	sizes := in.chunkSizes()
	if len(sizes) != 8 {
		t.Fatalf("chunks=%d", len(sizes))
	}
	var sum int64
	for _, s := range sizes {
		if s <= 0 {
			t.Fatalf("non-positive chunk %d", s)
		}
		sum += s
	}
	if sum != 1000 {
		t.Fatalf("sum=%d", sum)
	}
	// Tiny message: fewer chunks than the pipelining depth.
	in2 := &instance{r: tb.runner, c: &workload.Collective{Bytes: 3}}
	if got := in2.chunkSizes(); len(got) != 3 {
		t.Fatalf("tiny message chunks=%d want 3", len(got))
	}
}

// Property: for random small groups, every scheme completes and delivers
// at least bytes × receivers of host-link traffic.
func TestQuickAllSchemesDeliver(t *testing.T) {
	schemes := []Scheme{Ring, BinTree, Optimal, PEEL, MultiTree2}
	f := func(seed int64, nRaw uint8, sRaw uint8) bool {
		scheme := schemes[int(sRaw)%len(schemes)]
		rng := rand.New(rand.NewSource(seed))
		g := topology.FatTree(4)
		eng := &sim.Engine{}
		net := netsim.New(g, eng, netsim.DefaultConfig())
		pl, err := core.NewPlanner(g)
		if err != nil {
			return false
		}
		cl := workload.NewCluster(g, 8)
		r := NewRunner(net, cl, pl, controller.New(rng))
		hosts := g.Hosts()
		rng.Shuffle(len(hosts), func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })
		n := 2 + int(nRaw)%8
		const M = 256 << 10
		c := &workload.Collective{Bytes: M, GPUs: n * 8, Hosts: hosts[:n]}
		done := false
		if err := r.Start(c, scheme, func(sim.Time) { done = true }); err != nil {
			return false
		}
		if err := eng.Run(30_000_000); err != nil {
			return false
		}
		if !done {
			return false
		}
		// Every receiver's host link carried ≥ the full message.
		for _, h := range c.Receivers() {
			up := g.EdgeSwitchOf(h)
			if net.Channel(up, h).BytesSent < M {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleBinaryTreeCompletes(t *testing.T) {
	tb := newTestbed(t, nil)
	c := tb.collective(t, 0, []int{1, 2, 3, 5, 7, 9, 11, 13, 15}, 8<<20)
	cct := tb.run(t, c, DblBinTree)
	if cct <= 0 {
		t.Fatalf("cct=%v", cct)
	}
	// Every receiver's host link carried the full message.
	for _, h := range c.Receivers() {
		up := tb.g.EdgeSwitchOf(h)
		if got := tb.net.Channel(up, h).BytesSent; got < 8<<20 {
			t.Fatalf("receiver %d got %d bytes", h, got)
		}
	}
}

func TestDoubleBeatsSingleBinaryTree(t *testing.T) {
	// The point of the double tree: interior nodes send half as much, so
	// CCT improves for deep trees.
	members := make([]int, 31)
	for i := range members {
		members[i] = i + 1
	}
	run := func(s Scheme) sim.Time {
		tb := newTestbedK(t, 8, nil)
		c := tb.collective(t, 0, members, 8<<20)
		return tb.run(t, c, s)
	}
	single := run(BinTree)
	double := run(DblBinTree)
	if double >= single {
		t.Fatalf("double tree %v !< single tree %v", double, single)
	}
}
