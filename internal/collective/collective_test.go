package collective

import (
	"math/rand"
	"testing"

	"peel/internal/controller"
	"peel/internal/core"
	"peel/internal/netsim"
	"peel/internal/sim"
	"peel/internal/topology"
	"peel/internal/workload"
)

// testbed wires a 4-ary fat-tree (16 hosts) simulation.
type testbed struct {
	g      *topology.Graph
	eng    *sim.Engine
	net    *netsim.Network
	runner *Runner
	cl     *workload.Cluster
}

func newTestbed(t *testing.T, mutate func(*netsim.Config)) *testbed {
	t.Helper()
	return newTestbedK(t, 4, mutate)
}

func newTestbedK(t *testing.T, k int, mutate func(*netsim.Config)) *testbed {
	t.Helper()
	g := topology.FatTree(k)
	eng := &sim.Engine{}
	cfg := netsim.DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	net := netsim.New(g, eng, cfg)
	pl, err := core.NewPlanner(g)
	if err != nil {
		t.Fatal(err)
	}
	cl := workload.NewCluster(g, 8)
	ctrl := controller.New(rand.New(rand.NewSource(99)))
	return &testbed{g: g, eng: eng, net: net, cl: cl, runner: NewRunner(net, cl, pl, ctrl)}
}

func (tb *testbed) collective(t *testing.T, srcHostIdx int, memberIdx []int, bytes int64) *workload.Collective {
	t.Helper()
	hosts := tb.g.Hosts()
	members := []topology.NodeID{hosts[srcHostIdx]}
	for _, i := range memberIdx {
		members = append(members, hosts[i])
	}
	return &workload.Collective{ID: 0, Bytes: bytes, GPUs: len(members) * 8, Hosts: members}
}

func (tb *testbed) run(t *testing.T, c *workload.Collective, s Scheme) sim.Time {
	t.Helper()
	var cct sim.Time = -1
	if err := tb.runner.Start(c, s, func(d sim.Time) { cct = d }); err != nil {
		t.Fatalf("%s: %v", s, err)
	}
	if err := tb.eng.Run(80_000_000); err != nil {
		t.Fatalf("%s: %v", s, err)
	}
	if cct < 0 {
		t.Fatalf("%s: collective never completed", s)
	}
	return cct
}

func TestEverySchemeCompletes(t *testing.T) {
	for _, s := range AllSchemes {
		tb := newTestbed(t, nil)
		c := tb.collective(t, 0, []int{1, 3, 5, 8, 12, 15}, 4<<20)
		cct := tb.run(t, c, s)
		if cct <= 0 {
			t.Fatalf("%s: cct=%v", s, cct)
		}
	}
}

func TestSchemeOrderingMatchesPaper(t *testing.T) {
	// With a mid-size message on a bin-packed (two-pod) group, the
	// paper's ordering must hold: optimal ≤ peel (static prefixes pay
	// upward duplication) < orca (controller delay) and peel < ring <
	// tree. The group spans 32 hosts of an 8-ary fat-tree — locality the
	// schedulers provide and PEEL exploits; a group scattered over every
	// pod would instead pay one upward copy per pod (the multicast-vs-
	// multipath tension §2.3 leaves open).
	const M = 8 << 20
	members := make([]int, 31)
	for i := range members {
		members[i] = i + 1 // hosts 1..31: pods 0 and 1
	}
	cct := map[Scheme]sim.Time{}
	for _, s := range AllSchemes {
		tb := newTestbedK(t, 8, func(c *netsim.Config) { c.FrameBytes = 32 << 10 })
		c := tb.collective(t, 0, members, M)
		cct[s] = tb.run(t, c, s)
	}
	if !(cct[Optimal] <= cct[PEEL]) {
		t.Errorf("optimal %v > peel %v", cct[Optimal], cct[PEEL])
	}
	if !(cct[PEEL] < cct[Orca]) {
		t.Errorf("peel %v !< orca %v", cct[PEEL], cct[Orca])
	}
	if !(cct[PEEL] < cct[Ring]) {
		t.Errorf("peel %v !< ring %v", cct[PEEL], cct[Ring])
	}
	if !(cct[PEEL] < cct[BinTree]) {
		t.Errorf("peel %v !< tree %v", cct[PEEL], cct[BinTree])
	}
}

func TestOrcaPaysControllerDelay(t *testing.T) {
	// Small message: Orca's CCT is dominated by the N(10ms,5ms) setup.
	tb := newTestbed(t, nil)
	c := tb.collective(t, 0, []int{4, 8, 12}, 1<<20)
	orca := tb.run(t, c, Orca)
	tb2 := newTestbed(t, nil)
	c2 := tb2.collective(t, 0, []int{4, 8, 12}, 1<<20)
	peel := tb2.run(t, c2, PEEL)
	if orca < 10*peel {
		t.Fatalf("orca %v should be ≫ peel %v for small messages", orca, peel)
	}
	if orca < sim.Time(100*sim.Microsecond) {
		t.Fatalf("orca %v below the controller floor", orca)
	}
}

func TestPEELBandwidthBetweenOptimalAndRing(t *testing.T) {
	// Aggregate fabric bytes: optimal ≤ peel ≤ ring (the paper: PEEL uses
	// 23% less aggregate bandwidth than unicast rings).
	const M = 2 << 20
	members := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	bytes := map[Scheme]int64{}
	for _, s := range []Scheme{Optimal, PEEL, Ring} {
		tb := newTestbed(t, nil)
		c := tb.collective(t, 0, members, M)
		tb.run(t, c, s)
		bytes[s] = tb.net.TotalBytes()
	}
	if !(bytes[Optimal] <= bytes[PEEL]) {
		t.Errorf("optimal bytes %d > peel %d", bytes[Optimal], bytes[PEEL])
	}
	if !(bytes[PEEL] < bytes[Ring]) {
		t.Errorf("peel bytes %d !< ring %d", bytes[PEEL], bytes[Ring])
	}
}

func TestPEELCoresRefinementSavesBytesOnLargeMessages(t *testing.T) {
	// A long transfer outlives the controller: the refined stage must
	// reduce total fabric bytes versus static PEEL.
	const M = 96 << 20 // ~8 ms at 100 Gb/s per copy; controller ~10 ms
	// Fragmented placement to force over-coverage and multiple prefixes.
	members := []int{1, 3, 4, 6, 9, 11, 12, 14}
	run := func(s Scheme) (sim.Time, int64) {
		tb := newTestbed(t, func(c *netsim.Config) { c.FrameBytes = 64 << 10 })
		c := tb.collective(t, 0, members, M)
		cct := tb.run(t, c, s)
		return cct, tb.net.TotalBytes()
	}
	cctStatic, bytesStatic := run(PEEL)
	cctCores, bytesCores := run(PEELCores)
	if bytesCores >= bytesStatic {
		t.Errorf("refinement did not save bytes: %d vs %d", bytesCores, bytesStatic)
	}
	if cctCores > cctStatic+cctStatic/10 {
		t.Errorf("refinement hurt CCT badly: %v vs %v", cctCores, cctStatic)
	}
}

func TestRingNeighborLocality(t *testing.T) {
	// A contiguous rack-aligned group: ring traffic must stay mostly on
	// edge links; core links carry far less than member count.
	tb := newTestbed(t, nil)
	c := tb.collective(t, 0, []int{1, 2, 3, 4, 5, 6, 7}, 1<<20)
	tb.run(t, c, Ring)
	coreBytes := int64(0)
	for i := 0; i < tb.g.NumLinks(); i++ {
		l := tb.g.Link(topology.LinkID(i))
		ka, kb := tb.g.Node(l.A).Kind, tb.g.Node(l.B).Kind
		if ka == topology.Core || kb == topology.Core {
			coreBytes += tb.net.BytesOnLink(topology.LinkID(i))
		}
	}
	total := tb.net.TotalBytes()
	if coreBytes*2 > total {
		t.Fatalf("locality broken: %d of %d bytes crossed cores", coreBytes, total)
	}
}

func TestSingleHostCollective(t *testing.T) {
	tb := newTestbed(t, nil)
	hosts := tb.g.Hosts()
	c := &workload.Collective{Bytes: 1 << 20, GPUs: 8, Hosts: hosts[:1]}
	cct := tb.run(t, c, PEEL)
	// NVLink-only: ~1MiB over 900GB/s + 2µs latency.
	if cct > sim.Time(50*sim.Microsecond) {
		t.Fatalf("NVLink-only collective took %v", cct)
	}
}

func TestUnknownScheme(t *testing.T) {
	tb := newTestbed(t, nil)
	c := tb.collective(t, 0, []int{1}, 1<<10)
	if err := tb.runner.Start(c, Scheme("bogus"), func(sim.Time) {}); err == nil {
		t.Fatal("unknown scheme must error")
	}
}

func TestFig1LinkLoads(t *testing.T) {
	// The paper's Fig. 1 fabric: two spines, two leaves, eight GPUs (one
	// per host, 4 hosts per leaf). Ring and tree overshoot the optimal's
	// core-link usage by a wide margin; the optimal crosses each link
	// once.
	g := topology.LeafSpine(2, 2, 4)
	hosts := g.Hosts()
	ring, err := RingLinkLoads(g, hosts)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BinaryTreeLinkLoads(g, hosts)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := OptimalLinkLoads(g, hosts)
	if err != nil {
		t.Fatal(err)
	}
	coreFilter := topology.TierLinks(topology.Spine, topology.Leaf)
	treeCore := SumLoads(g, tree, coreFilter)
	optCore := SumLoads(g, opt, coreFilter)
	if optCore != 2 { // leaf→spine + spine→other leaf
		t.Fatalf("optimal core traversals=%d want 2", optCore)
	}
	if treeCore <= optCore {
		t.Fatalf("tree core traversals %d must exceed optimal %d", treeCore, optCore)
	}
	// Total bandwidth overshoot (the 70–80% figure): unicast rings and
	// trees "do not curb total bytes" — both totals must substantially
	// exceed the multicast optimum even with locality-ordered rings.
	ringAll := SumLoads(g, ring, nil)
	treeAll := SumLoads(g, tree, nil)
	optAll := SumLoads(g, opt, nil)
	if float64(ringAll) < 1.5*float64(optAll) {
		t.Fatalf("ring total %d vs optimal %d: overshoot too small", ringAll, optAll)
	}
	if treeAll <= optAll {
		t.Fatalf("tree total %d must exceed optimal %d", treeAll, optAll)
	}
	for _, n := range opt {
		if n > 1 {
			t.Fatal("optimal tree must traverse each link at most once")
		}
	}
}

func TestOptimalBeatsUnicastUnderLoadToo(t *testing.T) {
	// Sanity on a second topology: an 8-host leaf-spine run end-to-end.
	g := topology.LeafSpine(2, 2, 4)
	eng := &sim.Engine{}
	net := netsim.New(g, eng, netsim.DefaultConfig())
	cl := workload.NewCluster(g, 8)
	r := NewRunner(net, cl, nil, controller.New(rand.New(rand.NewSource(1))))
	hosts := g.Hosts()
	c := &workload.Collective{Bytes: 4 << 20, GPUs: 64, Hosts: hosts}
	var cctOpt, cctRing sim.Time
	if err := r.Start(c, Optimal, func(d sim.Time) { cctOpt = d }); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	eng2 := &sim.Engine{}
	net2 := netsim.New(g, eng2, netsim.DefaultConfig())
	r2 := NewRunner(net2, cl, nil, controller.New(rand.New(rand.NewSource(1))))
	if err := r2.Start(c, Ring, func(d sim.Time) { cctRing = d }); err != nil {
		t.Fatal(err)
	}
	if err := eng2.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	if cctOpt <= 0 || cctRing <= 0 {
		t.Fatalf("cct opt=%v ring=%v", cctOpt, cctRing)
	}
	if cctOpt >= cctRing {
		t.Fatalf("optimal %v !< ring %v", cctOpt, cctRing)
	}
}

func TestAllGatherRing(t *testing.T) {
	tb := newTestbed(t, nil)
	c := tb.collective(t, 0, []int{1, 2, 3, 4, 5, 6, 7}, 8<<20)
	var cct sim.Time = -1
	if err := tb.runner.StartAllGather(c, Ring, func(d sim.Time) { cct = d }); err != nil {
		t.Fatal(err)
	}
	if err := tb.eng.Run(80_000_000); err != nil {
		t.Fatal(err)
	}
	if cct <= 0 {
		t.Fatal("ring allgather never completed")
	}
	// Aggregate bandwidth: each of the 8 ring flows carries 7 shards of
	// 1 MiB; host-tier links alone must carry ≥ 2×8×7 MiB.
	if got := tb.net.TotalBytes(); got < 2*8*7*(1<<20) {
		t.Fatalf("total bytes %d below ring allgather floor", got)
	}
}

func TestAllGatherMulticastVariants(t *testing.T) {
	for _, s := range []Scheme{Optimal, PEEL} {
		tb := newTestbed(t, nil)
		c := tb.collective(t, 0, []int{1, 2, 3, 5, 8, 9, 12}, 8<<20)
		var cct sim.Time = -1
		if err := tb.runner.StartAllGather(c, s, func(d sim.Time) { cct = d }); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if err := tb.eng.Run(80_000_000); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if cct <= 0 {
			t.Fatalf("%s allgather never completed", s)
		}
	}
}

func TestAllGatherRejectsUnsupportedScheme(t *testing.T) {
	tb := newTestbed(t, nil)
	c := tb.collective(t, 0, []int{1}, 1<<20)
	if err := tb.runner.StartAllGather(c, Orca, func(sim.Time) {}); err == nil {
		t.Fatal("orca allgather must be rejected")
	}
}

func TestAllGatherSingleHost(t *testing.T) {
	tb := newTestbed(t, nil)
	hosts := tb.g.Hosts()
	c := &workload.Collective{Bytes: 1 << 20, GPUs: 8, Hosts: hosts[:1]}
	done := false
	if err := tb.runner.StartAllGather(c, Ring, func(sim.Time) { done = true }); err != nil {
		t.Fatal(err)
	}
	tb.eng.Run(1_000_000)
	if !done {
		t.Fatal("single-host allgather must complete via NVLink only")
	}
}

func TestMultiTreeSchemesComplete(t *testing.T) {
	for _, s := range []Scheme{MultiTree1, MultiTree2, MultiTree4} {
		tb := newTestbed(t, nil)
		c := tb.collective(t, 0, []int{1, 4, 8, 12, 15}, 4<<20)
		cct := tb.run(t, c, s)
		if cct <= 0 {
			t.Fatalf("%s: cct=%v", s, cct)
		}
	}
}

func TestPEELVariantSchemesComplete(t *testing.T) {
	for _, s := range []Scheme{PEELNoGuard, PEELToRFilter, PEELCoresFiltered, OrcaInstant} {
		tb := newTestbed(t, nil)
		c := tb.collective(t, 0, []int{1, 4, 8, 12, 15}, 4<<20)
		cct := tb.run(t, c, s)
		if cct <= 0 {
			t.Fatalf("%s: cct=%v", s, cct)
		}
	}
}

func TestToRFilterSavesHostBytes(t *testing.T) {
	// Membership with mixed host slots (slot 0 on one rack, slot 1 on the
	// other) makes the single host-prefix over-cover; filtering ToRs must
	// then reduce the bytes on host links versus stateless PEEL.
	members := []int{8, 11, 12, 15}
	run := func(s Scheme) int64 {
		tb := newTestbed(t, nil)
		c := tb.collective(t, 0, members, 4<<20)
		tb.run(t, c, s)
		var hostBytes int64
		for _, h := range tb.g.Hosts() {
			if up := tb.g.EdgeSwitchOf(h); up != topology.None {
				hostBytes += tb.net.Channel(up, h).BytesSent
			}
		}
		return hostBytes
	}
	plain := run(PEEL)
	filtered := run(PEELToRFilter)
	if filtered >= plain {
		t.Fatalf("tor-filter did not reduce host-link bytes: %d vs %d", filtered, plain)
	}
}
