package collective

import (
	"peel/internal/core"
	"peel/internal/invariant"
	"peel/internal/netsim"
	"peel/internal/routing"
	"peel/internal/sim"
	"peel/internal/steiner"
	"peel/internal/telemetry"
	"peel/internal/topology"
)

// Striped multi-tree PEEL (schemes striped-peel / striped-peel-2).
//
// steiner.DisjointTrees peels up to k trees sharing no switch-switch
// link; the message's chunks go round-robin across them, so the fabric
// carries the broadcast over k disjoint core paths concurrently —
// Khalilov et al.'s bandwidth-optimal broadcast construction. The
// failure story falls out of disjointness: a dead link sits on at most
// one tree, so at most one stripe stalls. Recovery is therefore scoped
// per stripe: the watchdog samples each stripe's progress separately,
// and a stalled stripe is patched (core.RepairTree, patch-first) and its
// incomplete chunks re-sent on the repaired tree while the other k−1
// stripes keep delivering untouched.

// StripedAllShardsDelivered checks, at each receiver's completion under
// a striped scheme, that the chunk bitmap is full AND the bytes netsim
// actually delivered to that receiver across all stripe flows cover the
// whole message — the chunk accounting cross-checked against the
// fabric's byte accounting.
const StripedAllShardsDelivered = "collective.striped-all-shards-delivered"

func init() {
	invariant.Register(invariant.Checker{
		Name:   StripedAllShardsDelivered,
		Anchor: "bandwidth-optimal allgather (Khalilov et al.), §4 CCT definition",
		Desc:   "a striped collective completes a receiver only once every chunk arrived on some stripe and delivered bytes cover the message",
	})
}

// stripedRun is the striping state of one collective: the chunk→stripe
// assignment, per-receiver chunk bitmaps (repair flows may re-deliver
// chunks a receiver already holds — dedup lives here, above netsim's
// per-flow accounting), and the per-stripe watchdog state.
type stripedRun struct {
	in    *instance
	sizes []int64
	strps []*stripe
	// got[r][c] records receiver r holding chunk c; need[r] counts the
	// chunks r still lacks.
	got  map[topology.NodeID][]bool
	need map[topology.NodeID]int
}

// stripe is one disjoint tree carrying every len(strps)-th chunk.
type stripe struct {
	idx  int
	tree *steiner.Tree // current (possibly repaired) tree
	// flows lists the stripe's multicast flows, original first, repairs
	// appended: progress and the delivered-bytes invariant sum over all.
	flows     []*netsim.Flow
	chunks    []int
	remaining int // undelivered (receiver, chunk) pairs of this stripe
	// Watchdog state, mirroring instance's global fields but per stripe.
	last          int64
	quiet         int
	stalled       bool
	stalledSince  sim.Time
	repairPending bool
}

// startStriped launches the striped-peel scheme over up to k
// link-disjoint trees.
func (in *instance) startStriped(k int) error {
	receivers := in.c.Receivers()
	trees, dstats, err := steiner.DisjointTrees(in.r.Net.G, in.c.Source(), receivers, k)
	if err != nil {
		return err
	}
	in.initCompletion()
	in.stripeCount = len(trees)
	in.stripeRepairs = make([]int, len(trees))
	sizes := in.chunkSizes()
	params := in.r.Net.Cfg.DCQCN.WithGuard()

	sr := &stripedRun{in: in, sizes: sizes,
		got:  make(map[topology.NodeID][]bool, len(receivers)),
		need: make(map[topology.NodeID]int, len(receivers))}
	for _, m := range receivers {
		sr.got[m] = make([]bool, len(sizes))
		sr.need[m] = len(sizes)
	}
	in.striped = sr

	if ts := telemetry.Active(); ts != nil {
		ts.Counter("collective.striped.collectives").Inc()
		ts.Counter("collective.striped.stripes").Add(int64(len(trees)))
		if dstats.Built < dstats.Requested {
			ts.Counter("collective.striped.underprovisioned").Inc()
		}
		ts.Histogram("collective.striped.trees_built", telemetry.LinearLayout(0, 1, 9)).
			Observe(int64(len(trees)))
	}

	for i, tree := range trees {
		st := &stripe{idx: i, tree: tree, last: -1}
		for c := range sizes {
			if c%len(trees) == i {
				st.chunks = append(st.chunks, c)
			}
		}
		st.remaining = len(st.chunks) * len(receivers)
		f, err := in.r.Net.NewMulticastFlow(tree, receivers, params)
		if err != nil {
			return err
		}
		st.flows = append(st.flows, f)
		in.track(f, receivers)
		f.OnChunk(func(recv topology.NodeID, chunk int) { sr.deliver(recv, chunk) })
		sr.strps = append(sr.strps, st)
	}
	for c := range sizes {
		st := sr.strps[c%len(sr.strps)]
		st.flows[0].Send(c, sizes[c])
	}
	return nil
}

// deliver records chunk arrival at a receiver, deduplicating repair-flow
// re-deliveries, and completes the receiver once its bitmap fills.
func (sr *stripedRun) deliver(recv topology.NodeID, chunk int) {
	bits := sr.got[recv]
	if bits == nil || bits[chunk] {
		return // not a member, or a repair flow re-delivered a held chunk
	}
	bits[chunk] = true
	sr.need[recv]--
	sr.strps[chunk%len(sr.strps)].remaining--
	if sr.need[recv] > 0 {
		return
	}
	if s := invariant.Active(); s != nil {
		// Cross-check the chunk bitmap against netsim's delivered-bytes
		// accounting: summed over every flow of every stripe (original
		// plus repairs), this receiver must have been offered at least the
		// full message.
		var gotBytes int64
		for _, st := range sr.strps {
			for _, f := range st.flows {
				gotBytes += f.ReceivedBytes(recv)
			}
		}
		full := true
		for _, b := range bits {
			full = full && b
		}
		s.Checkf(StripedAllShardsDelivered, full && gotBytes >= sr.in.c.Bytes,
			"receiver %d completed with full-bitmap=%v, %d of %d bytes delivered",
			recv, full, gotBytes, sr.in.c.Bytes)
	}
	sr.in.hostComplete(recv)
}

// pendingFor lists receivers still missing at least one of the stripe's
// chunks (and not abandoned).
func (sr *stripedRun) pendingFor(st *stripe) []topology.NodeID {
	var out []topology.NodeID
	for _, m := range sr.in.c.Receivers() {
		if sr.in.hostDone[m] {
			continue
		}
		for _, c := range st.chunks {
			if !sr.got[m][c] {
				out = append(out, m)
				break
			}
		}
	}
	return out
}

// progress sums delivered bytes across the stripe's flows and all
// receivers. Monotone: closed flows freeze their contribution.
func (st *stripe) progress(receivers []topology.NodeID) int64 {
	var total int64
	for _, f := range st.flows {
		for _, r := range receivers {
			total += f.ReceivedBytes(r)
		}
	}
	return total
}

// tick is the striped watchdog: per-stripe progress sampling with the
// same two-quiet-interval hysteresis as the global watchdog, but a stall
// verdict and its repair stay scoped to the one stalled stripe.
func (sr *stripedRun) tick() {
	in := sr.in
	now := in.r.Net.Engine.Now()
	receivers := in.c.Receivers()
	for _, st := range sr.strps {
		if st.remaining <= 0 {
			if st.stalled {
				in.recovery.Downtime += now - st.stalledSince
				st.stalled = false
			}
			continue
		}
		snap := st.progress(receivers)
		if snap > st.last {
			st.last = snap
			if st.stalled {
				in.recovery.Downtime += now - st.stalledSince
				st.stalled = false
			}
			st.quiet = 0
			continue
		}
		if st.repairPending {
			continue // this stripe's repair install is in flight
		}
		st.quiet++
		if !st.stalled {
			if st.quiet < 2 {
				continue // one quiet interval can be pacing jitter
			}
			st.stalled = true
			st.stalledSince = now - sim.Time(st.quiet)*in.r.Watchdog
			if st.stalledSince < 0 {
				st.stalledSince = 0
			}
			in.recovery.Stalls++
			if in.recovery.FirstStallAt == 0 {
				in.recovery.FirstStallAt = now - in.startedAt
			}
			if ts := telemetry.Active(); ts != nil {
				ts.Counter("collective.stalls").Inc()
				ts.Counter("collective.stripe.stalls").Inc()
				ts.Recorder().Record(now, telemetry.KindRepairDetect,
					int64(in.c.ID), int64(st.idx), int64(now-st.stalledSince))
			}
		}
		sr.repairStripe(st)
	}
}

// repairStripe re-plans one stalled stripe: patch its tree on the
// degraded graph, charge the controller install, and resend the stripe's
// incomplete chunks — without touching any other stripe's flows.
func (sr *stripedRun) repairStripe(st *stripe) {
	in := sr.in
	if in.repairAttempts >= in.maxRepairs() {
		in.abandonPending()
		return
	}
	in.repairAttempts++
	pending := sr.pendingFor(st)
	if len(pending) == 0 {
		return
	}
	d := routing.BorrowBFS(in.r.Net.G, in.c.Source())
	reachable := pending[:0:0]
	for _, m := range pending {
		if d.Reachable(m) {
			reachable = append(reachable, m)
		}
	}
	d.Release()
	if len(reachable) == 0 {
		return // fully cut off; later ticks retry until the budget runs out
	}
	st.repairPending = true
	install := func() { sr.installStripeRepair(st, reachable) }
	if in.r.Ctrl == nil {
		install()
		return
	}
	// Rule-free prunes skip the controller charge, as in the global path.
	if tree, stats, err := sr.patchStripe(st, reachable); err == nil && tree != nil &&
		!stats.FellBack && stats.GraftEdges == 0 {
		install()
		return
	}
	in.r.Ctrl.Install(in.r.Net.Engine, install)
}

// patchStripe grafts the stripe's pending receivers into its own tree —
// the stripe's tree, not a global repair base, so k−1 healthy trees are
// never replanned. Returns (nil, stats, nil) under RepairMode "full".
func (sr *stripedRun) patchStripe(st *stripe, pending []topology.NodeID) (*steiner.Tree, steiner.RepairStats, error) {
	if sr.in.r.RepairMode == "full" {
		return nil, steiner.RepairStats{}, nil
	}
	pol := steiner.DefaultRepairPolicy()
	pol.MaxOrphanFrac = 1
	return core.RepairTree(sr.in.r.Net.G, st.tree, -1, pending, pol)
}

// installStripeRepair cuts one stripe over to its repaired tree: close
// only that stripe's flows and resend only its incomplete chunks. Chunk
// re-sends may duplicate bytes receivers already hold — deliver's bitmap
// dedup makes over-delivery a bandwidth cost, never a correctness one.
func (sr *stripedRun) installStripeRepair(st *stripe, targets []topology.NodeID) {
	in := sr.in
	st.repairPending = false
	if in.finished {
		return
	}
	pending := targets[:0:0]
	for _, m := range targets {
		if !in.hostDone[m] {
			pending = append(pending, m)
		}
	}
	if len(pending) == 0 {
		return
	}
	for _, f := range st.flows {
		f.Close()
	}
	params := in.r.Net.Cfg.DCQCN.WithGuard()
	attempted := in.r.RepairMode != "full"
	tree, stats, err := sr.patchStripe(st, pending)
	patched := err == nil && tree != nil && !stats.FellBack
	if tree == nil && err == nil {
		tree, err = core.BuildTree(in.r.Net.G, in.c.Source(), pending)
	}
	if err == nil {
		if s := invariant.Active(); s != nil && !patched {
			steiner.ReportTreeChecks(s, in.r.Net.G, tree, pending)
		}
		rf, ferr := in.r.Net.NewMulticastFlow(tree, pending, params)
		if ferr == nil {
			in.recovery.Repairs++
			in.stripeRepairs[st.idx]++
			st.tree = tree
			st.flows = append(st.flows, rf)
			in.track(rf, pending)
			if ts := telemetry.Active(); ts != nil {
				ts.Counter("collective.repairs").Inc()
				ts.Counter("collective.stripe.repairs").Inc()
				if patched {
					ts.Counter("collective.repair.patched").Inc()
				} else if attempted {
					ts.Counter("collective.repair.full_fallback").Inc()
				}
			}
			rf.OnChunk(func(recv topology.NodeID, chunk int) { sr.deliver(recv, chunk) })
			for _, c := range st.chunks {
				if sr.chunkPending(c, pending) {
					rf.Send(c, sr.sizes[c])
				}
			}
			return
		}
	}
	// No tree (receivers lost between BFS and build): unicast the
	// stripe's missing chunks around the failure, per receiver.
	for _, m := range pending {
		recv := m
		f, uerr := in.unicastFlow(in.c.Source(), recv, params)
		if uerr != nil {
			continue
		}
		in.recovery.UnicastFallbacks++
		in.stripeRepairs[st.idx]++
		if ts := telemetry.Active(); ts != nil {
			ts.Counter("collective.unicast_fallbacks").Inc()
			ts.Recorder().Record(in.r.Net.Engine.Now(), telemetry.KindUnicastFallback,
				int64(in.c.ID), int64(recv), 0)
		}
		f.OnChunk(func(_ topology.NodeID, chunk int) { sr.deliver(recv, chunk) })
		for _, c := range st.chunks {
			if !sr.got[recv][c] {
				f.Send(c, sr.sizes[c])
			}
		}
	}
}

// chunkPending reports whether any of the pending receivers still lacks
// chunk c.
func (sr *stripedRun) chunkPending(c int, pending []topology.NodeID) bool {
	for _, m := range pending {
		if !sr.got[m][c] {
			return true
		}
	}
	return false
}
