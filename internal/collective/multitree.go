package collective

import (
	"fmt"

	"peel/internal/core"
	"peel/internal/netsim"
	"peel/internal/steiner"
	"peel/internal/telemetry"
	"peel/internal/topology"
)

// startMultiTree runs the multicast-vs-multipath exploration of §2.3's
// open question: instead of funnelling the whole message onto one Steiner
// tree's links, build up to `trees` equal-cost tree variants (differing
// in their core-tier choices) and stripe the message's chunks across them
// round-robin. Striping re-gains the path diversity load balancers want,
// at the cost of proportionally more switch replication state.
func (in *instance) startMultiTree(trees int) error {
	if trees < 1 {
		return fmt.Errorf("collective: multitree needs >=1 trees")
	}
	in.initCompletion()
	sizes := in.chunkSizes()
	params := in.r.Net.Cfg.DCQCN.WithGuard()
	receivers := in.c.Receivers()

	total := len(sizes)
	counts := map[topology.NodeID]int{}
	seen := map[string]bool{}
	var flows []*netsim.Flow
	for v := 0; len(flows) < trees && v < trees*4; v++ {
		tree, err := steiner.SymmetricOptimalVariant(in.r.Net.G, in.c.Source(), receivers, uint64(v))
		if err != nil {
			// Irregular fabrics (no symmetric variant enumeration —
			// topology.HeteroFatTree, degraded OCS mappings): fall back to
			// the single layer-peeled tree and stripe all chunks over it,
			// like MultiTree1. Report.Stripes surfaces the achieved count.
			if len(flows) > 0 {
				break
			}
			tree, err = core.BuildTree(in.r.Net.G, in.c.Source(), receivers)
			if err != nil {
				return err
			}
			v = trees * 4 // no further variants to probe
		}
		sig := treeSignature(tree)
		if seen[sig] {
			continue // identical variant (small fabrics wrap around)
		}
		seen[sig] = true
		f, err := in.r.Net.NewMulticastFlow(tree, receivers, params)
		if err != nil {
			return err
		}
		in.track(f, receivers)
		f.OnChunk(func(recv topology.NodeID, chunk int) {
			counts[recv]++
			if counts[recv] == total {
				in.hostComplete(recv)
			}
		})
		flows = append(flows, f)
	}
	// Small fabrics wrap the variant space around before `trees` distinct
	// trees exist, so the dedup probe can build fewer flows than asked
	// for; surface the achieved count instead of silently striping over
	// fewer trees (Report.Stripes).
	in.stripeCount = len(flows)
	if ts := telemetry.Active(); ts != nil && len(flows) < trees {
		ts.Counter("collective.striped.underprovisioned").Inc()
	}
	for c := range sizes {
		flows[c%len(flows)].Send(c, sizes[c])
	}
	return nil
}

// treeSignature fingerprints a tree by its member sequence, detecting
// wrapped-around variants.
func treeSignature(t *steiner.Tree) string {
	sig := make([]byte, 0, len(t.Members)*4)
	for _, m := range t.Members {
		sig = append(sig, byte(m), byte(m>>8), byte(m>>16), byte(m>>24))
	}
	return string(sig)
}
