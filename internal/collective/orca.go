package collective

import (
	"sort"

	"peel/internal/core"
	"peel/internal/netsim"
	"peel/internal/topology"
)

// startOrca models Orca (NSDI'22) as the paper does in §3.1/§4: a
// centralized SDN controller installs per-group rules before any data
// moves (flow-setup delay ~ N(10 ms, 5 ms)), the fabric then multicasts to
// one server-side agent per rack, and each agent fans the message out to
// the remaining member hosts of its rack over its own NIC (the host-
// assisted last hop that keeps Orca's headers small). Agent relays are
// chunk-pipelined like the other unicast baselines.
func (in *instance) startOrca(useCtrl bool) error {
	g := in.r.Net.G
	in.initCompletion()
	sizes := in.chunkSizes()
	params := in.r.Net.Cfg.DCQCN

	// Group member hosts by rack; the lowest-ID member of each rack is
	// its agent. The source acts as the agent of its own rack.
	src := in.c.Source()
	srcRack := g.EdgeSwitchOf(src)
	byRack := map[topology.NodeID][]topology.NodeID{}
	for _, m := range in.c.Receivers() {
		r := g.EdgeSwitchOf(m)
		byRack[r] = append(byRack[r], m)
	}
	racks := make([]topology.NodeID, 0, len(byRack))
	for r := range byRack {
		sort.Slice(byRack[r], func(i, j int) bool { return byRack[r][i] < byRack[r][j] })
		racks = append(racks, r)
	}
	sort.Slice(racks, func(i, j int) bool { return racks[i] < racks[j] })

	type rackPlan struct {
		agent topology.NodeID
		peers []topology.NodeID // members served by the agent's relay
	}
	var agents []topology.NodeID
	plans := make([]rackPlan, 0, len(racks))
	for _, r := range racks {
		members := byRack[r]
		if r == srcRack {
			// The source relays to its rack peers directly.
			plans = append(plans, rackPlan{agent: src, peers: members})
			continue
		}
		plans = append(plans, rackPlan{agent: members[0], peers: members[1:]})
		agents = append(agents, members[0])
	}

	// Build the rack-local relay flows and wire chunk forwarding.
	type relay struct {
		node  *relayNode
		flows []*netsim.Flow
	}
	relays := make([]*relay, len(plans))
	for i, p := range plans {
		rl := &relay{node: &relayNode{host: p.agent}}
		for _, peer := range p.peers {
			f, err := in.unicastFlow(p.agent, peer, params)
			if err != nil {
				return err
			}
			peerHost := peer
			f.OnChunk(func(_ topology.NodeID, chunk int) {
				in.orcaPeerChunk(peerHost, chunk, len(sizes))
			})
			rl.flows = append(rl.flows, f)
			rl.node.out = append(rl.node.out, f)
		}
		relays[i] = rl
	}

	start := func() {
		// Fabric multicast to the agents (if any rack besides the
		// source's has members).
		if len(agents) > 0 {
			tree, err := core.BuildTree(g, src, agents)
			if err != nil {
				in.failStart(err)
				return
			}
			mf, err := in.r.Net.NewMulticastFlow(tree, agents, params)
			if err != nil {
				in.failStart(err)
				return
			}
			in.track(mf, agents)
			mf.OnChunk(func(recv topology.NodeID, chunk int) {
				// The agent holds the chunk: relay it and track its own
				// completion as a member.
				for i, p := range plans {
					if p.agent == recv {
						in.relayOrcaAgent(relays[i].node, recv, chunk, sizes)
						return
					}
				}
			})
			for c := range sizes {
				mf.Send(c, sizes[c])
			}
		}
		// The source's own rack relays start immediately: the source
		// holds all chunks.
		for i := range plans {
			if plans[i].agent == src {
				for c := range sizes {
					for _, f := range relays[i].flows {
						f.Send(c, sizes[c])
					}
				}
			}
		}
	}

	if useCtrl && in.r.Ctrl != nil {
		// The watchdog must not mistake the ~10 ms flow-setup delay for a
		// data-path stall: no progress is expected until rules land.
		in.setupPending = true
		in.r.Ctrl.Install(in.r.Net.Engine, func() {
			in.setupPending = false
			start()
		})
	} else {
		start()
	}
	return nil
}

// orcaChunks tracks per-host chunk counts for agent-relayed peers.
func (in *instance) orcaPeerChunk(host topology.NodeID, chunk, total int) {
	if in.orcaGot == nil {
		in.orcaGot = map[topology.NodeID]int{}
	}
	in.orcaGot[host]++
	if in.orcaGot[host] == total {
		in.hostComplete(host)
	}
}

// relayOrcaAgent forwards a chunk from an agent to its rack peers and
// completes the agent itself once it has every chunk.
func (in *instance) relayOrcaAgent(n *relayNode, agent topology.NodeID, chunk int, sizes []int64) {
	for _, f := range n.out {
		if f.Closed() {
			continue
		}
		f.Send(chunk, sizes[chunk])
	}
	n.gotChunks++
	if n.gotChunks == len(sizes) {
		in.hostComplete(agent)
	}
}

// failStart aborts a deferred start (controller callback) — the error
// surfaces as a never-completing collective, which experiment harnesses
// flag; panicking inside the event loop would lose context.
func (in *instance) failStart(err error) {
	in.startErr = err
}
