package collective

import (
	"peel/internal/invariant"
	"peel/internal/steiner"
	"peel/internal/telemetry"
	"peel/internal/topology"

	"peel/internal/core"
)

// Planned invalidation for announced fabric reconfiguration.
//
// The watchdog path (recovery.go) is reactive: an epoch switch-over that
// removes a circuit under a multicast tree looks exactly like a failure —
// the collective stalls, two quiet ticks declare it, and a repair tree
// pays the controller round trip *after* delivery already halted. An
// announced reconfiguration (topology/fabric) can do better: the
// EpochChange names the circuits to be removed ahead of the boundary, so
// trees crossing them are re-peeled on a plan view of the post-epoch
// graph and cut over while the old circuits are still carrying frames.
// Delivery never stalls; the switch-over lands on trees that no longer
// care.
//
// PrepareEpoch covers the single-tree multicast schemes (Optimal, PEEL,
// PEELCores — anything that records a repairBase). Striped schemes keep
// their per-stripe reactive repair, and unicast schemes (Ring, BinTree)
// have no tree to pre-peel; both fall through to the watchdog path at
// commit, exactly like an unannounced fabric.

// PrepareEpoch eagerly re-peels every live single-tree collective whose
// multicast tree crosses one of the circuits an announced epoch will
// remove. view must be the post-epoch plan graph (current graph with the
// removed circuits failed); trees are planned on it but installed on the
// live fabric, so they are valid on both sides of the boundary. Returns
// the number of collectives pre-peeled.
func (r *Runner) PrepareEpoch(view *topology.Graph, removed []topology.LinkID) int {
	if len(removed) == 0 || len(r.insts) == 0 {
		return 0
	}
	rm := make(map[topology.LinkID]struct{}, len(removed))
	for _, id := range removed {
		rm[id] = struct{}{}
	}
	n := 0
	for in := range r.insts {
		if in.prePeel(view, rm) {
			n++
		}
	}
	return n
}

// register tracks a live instance for PrepareEpoch; completion drops it.
func (r *Runner) register(in *instance) {
	if r.insts == nil {
		r.insts = make(map[*instance]struct{})
	}
	r.insts[in] = struct{}{}
}

func (r *Runner) unregister(in *instance) { delete(r.insts, in) }

// prePeel re-plans this collective ahead of an epoch boundary if its
// current tree crosses a to-be-removed circuit. Failure to build a
// replacement (receivers already unreachable on the plan view) is not an
// error: the instance simply falls back to the reactive repair path when
// the epoch commits.
func (in *instance) prePeel(view *topology.Graph, rm map[topology.LinkID]struct{}) bool {
	if in.finished || in.striped != nil || in.repairBase == nil || in.r.Watchdog <= 0 {
		return false
	}
	// Tolerant crossing check: Tree.Links panics on dead edges, but a tree
	// broken by an *earlier* epoch (repair still pending) is exactly a tree
	// this announcement should replace — treat a missing live link as a
	// crossing rather than an error.
	g := in.r.Net.G
	crosses := false
	for _, m := range in.repairBase.Members {
		p := in.repairBase.Parent[m]
		if p == topology.None {
			continue
		}
		id := g.LinkBetween(p, m)
		if id < 0 {
			crosses = true
			break
		}
		if _, hit := rm[id]; hit {
			crosses = true
			break
		}
	}
	if !crosses {
		return false
	}
	pending := in.pendingReceivers()
	if len(pending) == 0 {
		return false
	}
	tree, err := core.BuildTree(view, in.c.Source(), pending)
	if err != nil || tree == nil {
		return false
	}
	if s := invariant.Active(); s != nil {
		// The pre-peeled tree must hold the Theorem 2.5 budget on the plan
		// view — the graph it will actually live on after the boundary.
		steiner.ReportTreeChecks(s, view, tree, pending)
	}
	// Same cut-over discipline as a repair: the controller installs the
	// rules, then the tail re-delivers over the new tree. repairPending
	// suppresses stall declarations while the install is in flight.
	in.repairPending = true
	install := func() { in.installPrePeel(tree, pending) }
	if in.r.Ctrl == nil {
		install()
	} else {
		in.r.Ctrl.Install(in.r.Net.Engine, install)
	}
	return true
}

// installPrePeel cuts delivery over to the pre-peeled tree: close the old
// flows (their tree dies at the boundary anyway) and deliver the tail
// from the minimum pending-receiver progress, exactly like installRepair
// — but without a stall ever having been declared.
func (in *instance) installPrePeel(tree *steiner.Tree, targets []topology.NodeID) {
	in.repairPending = false
	if in.finished {
		return
	}
	pending := targets[:0:0]
	for _, m := range targets {
		if !in.hostDone[m] {
			pending = append(pending, m)
		}
	}
	if len(pending) == 0 {
		return
	}
	min := in.c.Bytes
	for _, m := range pending {
		if got := in.maxReceived(m); got < min {
			min = got
		}
	}
	remaining := in.c.Bytes - min
	if remaining <= 0 {
		remaining = in.c.Bytes
	}
	rf, err := in.r.Net.NewMulticastFlow(tree, pending, in.r.Net.Cfg.DCQCN.WithGuard())
	if err != nil {
		return // the reactive path picks this up at commit
	}
	for _, w := range in.watch {
		w.f.Close()
	}
	in.repairBase = tree
	in.recovery.PrePeels++
	if ts := telemetry.Active(); ts != nil {
		ts.Counter("collective.pre_peels").Inc()
	}
	in.track(rf, pending)
	rf.OnChunk(func(recv topology.NodeID, _ int) { in.hostComplete(recv) })
	rf.Send(0, remaining)
}
