package collective

import (
	"fmt"

	"peel/internal/core"
	"peel/internal/invariant"
	"peel/internal/netsim"
	"peel/internal/routing"
	"peel/internal/sim"
	"peel/internal/steiner"
	"peel/internal/telemetry"
	"peel/internal/topology"
)

// Mid-flight failure recovery.
//
// Multicast senders get no link-layer feedback when a tree link dies: the
// fabric silently drops every frame crossing it (netsim models exactly
// that), and without intervention the collective stalls forever. The
// recovery design here mirrors source-routed multicast systems that treat
// in-flight repair as first-class (Elmo, network-offloaded broadcast):
//
//  1. A receiver-progress watchdog samples delivered bytes across every
//     flow of the collective at a fixed interval. Two consecutive quiet
//     intervals on an unfinished collective declare a stall (one interval
//     of hysteresis absorbs pacing jitter).
//  2. On a stall, the planner re-peels a repair tree on the *degraded*
//     graph over the still-pending, still-reachable receivers, paying the
//     §3.1 controller setup latency for the repair rules (the same
//     cut-over machinery as PEEL's two-stage refinement). The broken flows
//     are closed; the repair flow delivers the message tail from the
//     minimum receiver progress.
//  3. If tree construction fails (receivers lost between BFS and build),
//     delivery falls back to per-receiver unicast around the failure.
//  4. Repairs are bounded: after MaxRepairs attempts, receivers that are
//     still cut off are abandoned — the collective completes with
//     RecoveryStats.Abandoned > 0 instead of wedging the simulation, and
//     callers treat abandonment as delivery failure.
//
// The watchdog is opt-in (Runner.Watchdog = 0 disables it); with it off,
// or with no failures injected, the data path is untouched and results are
// byte-identical to a failure-free run.

// defaultMaxRepairs bounds repair attempts when Runner.MaxRepairs is 0.
const defaultMaxRepairs = 8

// RecoveryStats reports what mid-flight recovery did for one collective.
type RecoveryStats struct {
	// Stalls counts watchdog stall declarations.
	Stalls int
	// Repairs counts repair trees successfully installed.
	Repairs int
	// UnicastFallbacks counts receivers recovered over unicast detours
	// after repair-tree construction failed.
	UnicastFallbacks int
	// Abandoned counts receivers given up on after MaxRepairs attempts;
	// nonzero means the collective did NOT deliver to everyone.
	Abandoned int
	// PrePeels counts planned re-peels installed ahead of announced epoch
	// boundaries (Runner.PrepareEpoch); these never declared a stall.
	PrePeels int
	// FirstStallAt is when the first stall was declared (collective-
	// relative); zero if none was.
	FirstStallAt sim.Time
	// Downtime accumulates time spent with no receiver progress, from the
	// last observed progress to its resumption (quantized to the watchdog
	// interval).
	Downtime sim.Time
}

// Report is the extended completion record StartReport delivers.
type Report struct {
	CCT      sim.Time
	Recovery RecoveryStats
	// Stripes is the achieved tree count for the striping schemes
	// (StripedPEEL*, MultiTree*): the fabric or the dedup probe may yield
	// fewer trees than the scheme's nominal k. Zero for single-tree
	// schemes.
	Stripes int
	// StripeRepairs counts watchdog repairs per stripe index for
	// StripedPEEL*; a single failed link must leave every entry but the
	// dead stripe's at zero. Nil for other schemes.
	StripeRepairs []int
}

// watched is one flow under watchdog observation with the receivers whose
// progress it carries.
type watched struct {
	f         *netsim.Flow
	receivers []topology.NodeID
}

// track registers a flow for watchdog progress sampling and repair
// cut-over. It is a no-op when the watchdog is disabled.
func (in *instance) track(f *netsim.Flow, receivers []topology.NodeID) {
	if in.r.Watchdog <= 0 {
		return
	}
	in.watch = append(in.watch, watched{f: f, receivers: receivers})
}

// maxRepairs returns the per-collective repair budget.
func (in *instance) maxRepairs() int {
	if in.r.MaxRepairs > 0 {
		return in.r.MaxRepairs
	}
	return defaultMaxRepairs
}

// armWatchdog starts the progress watchdog for this collective.
func (in *instance) armWatchdog() {
	in.lastSnapshot = -1 // first tick always records "progress"
	in.r.Net.Engine.After(in.r.Watchdog, in.watchdogTick)
}

// progressSnapshot sums delivered bytes across every tracked flow and
// receiver. Monotone: closed flows freeze their contribution, repair flows
// add theirs on top.
func (in *instance) progressSnapshot() int64 {
	var total int64
	for _, w := range in.watch {
		for _, r := range w.receivers {
			total += w.f.ReceivedBytes(r)
		}
	}
	return total
}

// watchdogTick is the periodic receiver-progress check.
func (in *instance) watchdogTick() {
	if in.finished {
		return // collective done; let the engine drain
	}
	in.r.Net.Engine.After(in.r.Watchdog, in.watchdogTick)

	if in.r.PlannedDark != nil && in.r.PlannedDark() {
		// Announced reconfiguration window: frames offered to retraining
		// circuits are deferred, not lost, so the absence of progress is
		// expected and carries no failure signal. Reset the hysteresis so
		// a genuine stall straddling the window still needs two quiet
		// ticks after it closes.
		in.quietTicks = 0
		if ts := telemetry.Active(); ts != nil {
			ts.Counter("collective.dark_ticks").Inc()
		}
		return
	}

	if in.striped != nil {
		// Striped collectives stall and repair per stripe: a dead link on
		// one tree must not trigger a whole-collective re-plan while the
		// other k−1 stripes keep delivering.
		in.striped.tick()
		return
	}

	snap := in.progressSnapshot()
	now := in.r.Net.Engine.Now()
	if snap > in.lastSnapshot {
		in.lastSnapshot = snap
		if in.stalled {
			in.recovery.Downtime += now - in.stalledSince
			in.stalled = false
		}
		in.noteRepairResumed(now)
		in.quietTicks = 0
		return
	}
	if in.setupPending || in.repairPending {
		return // a controller install is in flight; not a data-path stall
	}
	in.quietTicks++
	if !in.stalled {
		if in.quietTicks < 2 {
			return // one quiet interval can be pacing/controller jitter
		}
		in.stalled = true
		// Progress was last seen about quietTicks intervals ago.
		in.stalledSince = now - sim.Time(in.quietTicks)*in.r.Watchdog
		if in.stalledSince < 0 {
			in.stalledSince = 0
		}
		in.recovery.Stalls++
		if in.recovery.FirstStallAt == 0 {
			in.recovery.FirstStallAt = now - in.startedAt
		}
		in.repairDetectAt = now
		if ts := telemetry.Active(); ts != nil {
			ts.Counter("collective.stalls").Inc()
			// Detection latency: last observed progress to declaration
			// (watchdog interval plus hysteresis).
			ts.Histogram("collective.repair.detect_ps", telemetry.Log2Layout()).
				Observe(int64(now - in.stalledSince))
			ts.Recorder().Record(now, telemetry.KindRepairDetect,
				int64(in.c.ID), 0, int64(now-in.stalledSince))
		}
	}
	in.repairTree()
}

// pendingReceivers returns the member receivers not yet complete.
func (in *instance) pendingReceivers() []topology.NodeID {
	var out []topology.NodeID
	for _, m := range in.c.Receivers() {
		if !in.hostDone[m] {
			out = append(out, m)
		}
	}
	return out
}

// repairTree handles one declared stall: re-plan delivery on the degraded
// graph, or abandon once the repair budget is spent.
func (in *instance) repairTree() {
	if in.repairAttempts >= in.maxRepairs() {
		in.abandonPending()
		return
	}
	in.repairAttempts++
	pending := in.pendingReceivers()
	if len(pending) == 0 {
		return // everything delivered; completion is NVLink-stage bound
	}
	d := routing.BorrowBFS(in.r.Net.G, in.c.Source())
	defer d.Release()
	reachable := pending[:0:0]
	for _, m := range pending {
		if d.Reachable(m) {
			reachable = append(reachable, m)
		}
	}
	if len(reachable) == 0 {
		// Fully cut off: nothing to repair onto. Later ticks retry (a heal
		// may reconnect them) until the budget runs out.
		return
	}
	// The repair rules cost a controller round trip (§3.1), exactly like
	// PEEL's refined-tree cut-over — unless the patch adds no forwarding
	// rules. When the repair tree is the old tree minus the dead branch
	// (every orphaned receiver already finished, so the graft is a pure
	// prune), there is nothing for the controller to install; the watchdog
	// used to bill the full re-peel round trip for that no-op. Probe the
	// patch at detect time and cut over immediately in that case — no sim
	// time passes, so installRepair recomputes the identical patch.
	in.repairPending = true
	install := func() { in.installRepair(reachable) }
	if in.r.Ctrl == nil {
		install()
		return
	}
	if tree, stats, err := in.patchRepair(reachable); err == nil && tree != nil &&
		!stats.FellBack && stats.GraftEdges == 0 {
		install()
		return
	}
	in.r.Ctrl.Install(in.r.Net.Engine, install)
}

// patchRepair attempts the incremental graft repair toward pending on the
// current degraded graph. Returns (nil, stats, nil) when patching is not
// applicable (no single-tree base, or RepairMode "full"); otherwise
// core.RepairTree's result, which internally degrades to a full re-peel.
func (in *instance) patchRepair(pending []topology.NodeID) (*steiner.Tree, steiner.RepairStats, error) {
	if in.r.RepairMode == "full" || in.repairBase == nil {
		return nil, steiner.RepairStats{}, nil
	}
	// The global-progress watchdog declares a stall only once receivers on
	// live branches have drained, so the pending set here is typically
	// exactly the orphaned subtree. The orphan-fraction guard — sized for
	// whole-group recomputes where most receivers survive — would then
	// refuse every watchdog patch; lift it and let the cost-ratio and
	// Theorem 2.5 budget gates decide instead.
	pol := steiner.DefaultRepairPolicy()
	pol.MaxOrphanFrac = 1
	return core.RepairTree(in.r.Net.G, in.repairBase, -1, pending, pol)
}

// maxReceived returns the best delivery progress recorded for one receiver
// across all tracked flows (schemes track a receiver on different flows:
// the multicast tree, a relay hop, a previous repair).
func (in *instance) maxReceived(m topology.NodeID) int64 {
	var best int64
	for _, w := range in.watch {
		if got := w.f.ReceivedBytes(m); got > best {
			best = got
		}
	}
	return best
}

// installRepair runs once the controller has pushed the repair rules: stop
// the broken flows and deliver the message tail over a freshly peeled tree
// on the degraded fabric, or over unicast detours if no tree exists.
func (in *instance) installRepair(targets []topology.NodeID) {
	in.repairPending = false
	if in.finished {
		return
	}
	// Receivers may have completed (late in-flight frames) or been lost
	// again while the controller worked; re-filter against current state.
	pending := targets[:0:0]
	for _, m := range targets {
		if !in.hostDone[m] {
			pending = append(pending, m)
		}
	}
	if len(pending) == 0 {
		return
	}
	for _, w := range in.watch {
		w.f.Close()
	}
	// Conservative resume offset: the minimum progress across the pending
	// receivers. Receivers further along simply re-receive part of the
	// tail — over-delivery costs bandwidth, never correctness.
	min := in.c.Bytes
	for _, m := range pending {
		if got := in.maxReceived(m); got < min {
			min = got
		}
	}
	remaining := in.c.Bytes - min
	if remaining <= 0 {
		remaining = in.c.Bytes
	}
	params := in.r.Net.Cfg.DCQCN.WithGuard()

	// Patch-first: graft the orphaned receivers into the last installed
	// tree; core.RepairTree falls back to a full re-peel when the patch
	// exceeds its policy or Theorem 2.5 cost bounds (and checks accepted
	// patches under steiner.repaired-tree-valid itself).
	attempted := in.r.RepairMode != "full" && in.repairBase != nil
	tree, stats, err := in.patchRepair(pending)
	patched := err == nil && tree != nil && !stats.FellBack
	if tree == nil && err == nil {
		tree, err = core.BuildTree(in.r.Net.G, in.c.Source(), pending)
	}
	if err == nil {
		if s := invariant.Active(); s != nil && !patched {
			// Every repair re-peel must still be a valid tree within the
			// Theorem 2.5 cost budget on the *degraded* fabric.
			steiner.ReportTreeChecks(s, in.r.Net.G, tree, pending)
		}
		rf, ferr := in.r.Net.NewMulticastFlow(tree, pending, params)
		if ferr == nil {
			in.recovery.Repairs++
			in.repairBase = tree
			in.noteRepairInstalled()
			if ts := telemetry.Active(); ts != nil {
				ts.Counter("collective.repairs").Inc()
				if patched {
					ts.Counter("collective.repair.patched").Inc()
					ts.Histogram("collective.repair.patch_ps", telemetry.Log2Layout()).
						Observe(int64(in.r.Net.Engine.Now() - in.repairDetectAt))
				} else if attempted {
					ts.Counter("collective.repair.full_fallback").Inc()
				}
			}
			in.track(rf, pending)
			rf.OnChunk(func(recv topology.NodeID, _ int) { in.hostComplete(recv) })
			rf.Send(0, remaining)
			return
		}
	}
	// No usable tree (a receiver dropped off between BFS and build, or the
	// builder hit degraded-fabric corners): unicast around the failure,
	// per receiver. Receivers without even a unicast path stay pending for
	// the next attempt.
	launched := 0
	for _, m := range pending {
		f, uerr := in.unicastFlow(in.c.Source(), m, params)
		if uerr != nil {
			continue
		}
		in.recovery.UnicastFallbacks++
		launched++
		if ts := telemetry.Active(); ts != nil {
			ts.Counter("collective.unicast_fallbacks").Inc()
			ts.Recorder().Record(in.r.Net.Engine.Now(), telemetry.KindUnicastFallback,
				int64(in.c.ID), int64(m), 0)
		}
		recv := m
		f.OnChunk(func(_ topology.NodeID, _ int) { in.hostComplete(recv) })
		f.Send(0, remaining)
	}
	if launched > 0 {
		in.noteRepairInstalled()
	}
}

// noteRepairInstalled stamps the install phase of the current repair:
// repair traffic (tree or unicast detours) is flowing as of now. The
// install histogram covers replan plus the controller round trip —
// detection to first repair byte offered.
func (in *instance) noteRepairInstalled() {
	now := in.r.Net.Engine.Now()
	in.repairInstallAt = now
	in.awaitResume = true
	if ts := telemetry.Active(); ts != nil {
		ts.Histogram("collective.repair.install_ps", telemetry.Log2Layout()).
			Observe(int64(now - in.repairDetectAt))
		ts.Recorder().Record(now, telemetry.KindRepairInstall,
			int64(in.c.ID), 0, int64(now-in.repairDetectAt))
	}
}

// noteRepairResumed closes the breakdown: receiver progress was observed
// (or the collective finished) after a repair install.
func (in *instance) noteRepairResumed(now sim.Time) {
	if !in.awaitResume {
		return
	}
	in.awaitResume = false
	if ts := telemetry.Active(); ts != nil {
		ts.Histogram("collective.repair.resume_ps", telemetry.Log2Layout()).
			Observe(int64(now - in.repairInstallAt))
		ts.Recorder().Record(now, telemetry.KindRepairComplete,
			int64(in.c.ID), 0, int64(now-in.repairInstallAt))
	}
}

// abandonPending gives up on the still-pending receivers after the repair
// budget is exhausted: they are marked complete so the collective (and the
// simulation) terminates, and RecoveryStats.Abandoned records the delivery
// failure for the caller.
func (in *instance) abandonPending() {
	pending := in.pendingReceivers()
	if len(pending) == 0 {
		return
	}
	// Stop the surviving flows (and their repair scans) so the engine can
	// drain; nothing will ever reach the abandoned receivers anyway.
	for _, w := range in.watch {
		w.f.Close()
	}
	if ts := telemetry.Active(); ts != nil {
		ts.Counter("collective.abandoned").Add(int64(len(pending)))
		ts.Recorder().Record(in.r.Net.Engine.Now(), telemetry.KindAbandon,
			int64(in.c.ID), 0, int64(len(pending)))
		ts.NoteAbort(fmt.Sprintf("collective %d abandoned %d receivers after %d repair attempts",
			in.c.ID, len(pending), in.repairAttempts))
	}
	for _, m := range pending {
		in.recovery.Abandoned++
		in.hostComplete(m)
	}
}
