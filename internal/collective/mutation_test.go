package collective

import (
	"testing"

	"peel/internal/invariant"
	"peel/internal/invariant/invtest"
	"peel/internal/netsim"
	"peel/internal/sim"
	"peel/internal/topology"
	"peel/internal/workload"
)

// Mutation self-test: corrupt completion tracking and prove the delivery
// checker fires.

func TestMutationDeliveryFires(t *testing.T) {
	g := topology.FatTree(4)
	eng := &sim.Engine{}
	net := netsim.New(g, eng, netsim.DefaultConfig())
	cl := workload.NewCluster(g, 8)
	r := NewRunner(net, cl, nil, nil)
	hosts := g.Hosts()
	c := &workload.Collective{Hosts: []topology.NodeID{hosts[0], hosts[1], hosts[2]}, Bytes: 1 << 10}

	s := invtest.Capture(t, func() {
		in := &instance{r: r, c: c}
		in.initCompletion()
		in.pendingHosts = 1 // corrupted: two receivers actually pending
		in.hostComplete(hosts[1])
	})
	if s.Violations(invariant.CollectiveDelivery) == 0 {
		t.Fatal("delivery checker did not fire on completion with an undelivered receiver")
	}
}

func TestDeliveryCheckPassesOnHonestCompletion(t *testing.T) {
	g := topology.FatTree(4)
	eng := &sim.Engine{}
	net := netsim.New(g, eng, netsim.DefaultConfig())
	cl := workload.NewCluster(g, 8)
	r := NewRunner(net, cl, nil, nil)
	hosts := g.Hosts()
	c := &workload.Collective{Hosts: []topology.NodeID{hosts[0], hosts[1], hosts[2]}, Bytes: 1 << 10}

	s := invtest.Capture(t, func() {
		in := &instance{r: r, c: c, reportDone: func(Report) {}}
		in.initCompletion()
		in.hostComplete(hosts[1])
		in.hostComplete(hosts[2])
	})
	if s.Violations(invariant.CollectiveDelivery) != 0 {
		t.Fatalf("honest completion reported a violation: %s", s.FirstFailure(invariant.CollectiveDelivery))
	}
	if s.Checks(invariant.CollectiveDelivery) == 0 {
		t.Fatal("delivery checker never evaluated")
	}
}
