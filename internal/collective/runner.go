// Package collective implements the Broadcast algorithms the paper
// evaluates (§4): unicast Ring and Binary Tree with 8-chunk pipelined
// forwarding (as in NCCL), the bandwidth-optimal Steiner multicast, Orca's
// controller-installed multicast with host-assisted last-hop fan-out, PEEL
// with static power-of-two prefixes, and PEEL with programmable-core
// refinement. All schemes run over the internal/netsim fabric and report
// collective completion time (CCT): collective initiation until the
// message has reached every GPU, including the final NVLink stage.
package collective

import (
	"fmt"

	"peel/internal/controller"
	"peel/internal/core"
	"peel/internal/dcqcn"
	"peel/internal/invariant"
	"peel/internal/netsim"
	"peel/internal/routing"
	"peel/internal/sim"
	"peel/internal/steiner"
	"peel/internal/telemetry"
	"peel/internal/topology"
	"peel/internal/workload"
)

// Scheme names a broadcast algorithm.
type Scheme string

// The paper's six schemes, plus the guard-timer ablation variant.
const (
	Ring      Scheme = "ring"
	BinTree   Scheme = "tree"
	Optimal   Scheme = "optimal"
	Orca      Scheme = "orca"
	PEEL      Scheme = "peel"
	PEELCores Scheme = "peel+cores"
	// PEELNoGuard is PEEL reacting to every CNP (no sender-side guard
	// timer) — the §4 congestion-control ablation baseline.
	PEELNoGuard Scheme = "peel-noguard"
	// OrcaInstant is Orca with a zero-delay controller: Fig. 4's
	// "without controller overhead" curve (same data path, no setup).
	OrcaInstant Scheme = "orca-instant"
	// PEELToRFilter is PEEL with membership-filtering ToRs: over-covered
	// traffic is dropped at the ToR instead of reaching non-member hosts
	// (the "ToRs that filter" deployment tier of §3.4).
	PEELToRFilter Scheme = "peel-torfilter"
	// PEELCoresFiltered combines programmable cores with filtering ToRs.
	PEELCoresFiltered Scheme = "peel+cores-torfilter"
	// MultiTree1/2/4 stripe the message's chunks across 1, 2 or 4
	// equal-cost Steiner tree variants — the multicast-vs-multipath
	// exploration of §2.3's open question (MultiTree1 is the single-tree
	// control with identical chunking).
	// DblBinTree is NCCL's double binary tree: two complementary trees
	// each carrying half the chunks (Fig. 1's "double binary trees").
	DblBinTree Scheme = "dtree"
	MultiTree1 Scheme = "multitree-1"
	MultiTree2 Scheme = "multitree-2"
	MultiTree4 Scheme = "multitree-4"
	// StripedPEEL stripes the message's chunks round-robin across up to
	// four pairwise link-disjoint peeled trees (steiner.DisjointTrees) —
	// unlike MultiTree*, whose equal-cost variants may share links, a
	// single hot or dead link here can stall at most one stripe, and the
	// watchdog repairs only that stripe's tree. StripedPEEL2 caps the set
	// at two trees.
	StripedPEEL  Scheme = "striped-peel"
	StripedPEEL2 Scheme = "striped-peel-2"
)

// AllSchemes lists every scheme in the paper's legend order.
var AllSchemes = []Scheme{Ring, BinTree, Optimal, Orca, PEEL, PEELCores}

// Runner starts collectives on a shared simulated fabric.
type Runner struct {
	Net     *netsim.Network
	Cluster *workload.Cluster
	// Planner is required for PEEL/PEELCores on fat-trees; nil elsewhere
	// (PEEL then uses the layer-peeling tree directly).
	Planner *core.Planner
	// Ctrl models the SDN controller for Orca and PEELCores.
	Ctrl *controller.Model
	// Chunks is the pipelining depth for Ring/Tree/Orca relays (the
	// paper divides each message into eight chunks).
	Chunks int

	// NVLinkLatency is the fixed intra-host stage latency added once the
	// NIC has the full message.
	NVLinkLatency sim.Time

	// Watchdog enables mid-flight failure recovery: a receiver-progress
	// check at this interval detects stalled collectives and re-plans
	// delivery on the degraded fabric (see recovery.go). 0 — the default —
	// disables recovery entirely; failure-free runs are then untouched.
	Watchdog sim.Time
	// MaxRepairs bounds repair attempts per collective before the pending
	// receivers are abandoned; 0 means the default budget.
	MaxRepairs int
	// RepairMode selects how stalled collectives re-plan: "patch" (the
	// default, also for "") grafts orphaned receivers into the last
	// installed tree via core.RepairTree; "full" always re-peels from
	// scratch (the pre-incremental behavior).
	RepairMode string

	// PlannedDark, when set, reports whether an announced fabric
	// reconfiguration dark window is currently open (fabric.Fabric's
	// DarkOpen). The watchdog skips stall accounting while it returns
	// true: deferred frames drain when the window closes, so a planned
	// quiet interval must not burn repair attempts or count as a failure
	// stall. Unannounced reconfiguration leaves this nil and lands as an
	// ordinary failure.
	PlannedDark func() bool

	// insts tracks live instances so PrepareEpoch (epoch.go) can pre-peel
	// trees crossing an announced epoch's removed circuits. Mutated only
	// from the simulation loop; no locking.
	insts map[*instance]struct{}

	flowKey uint64
}

// NewRunner wires a runner with the paper's defaults.
func NewRunner(net *netsim.Network, cl *workload.Cluster, pl *core.Planner, ctrl *controller.Model) *Runner {
	return &Runner{
		Net:           net,
		Cluster:       cl,
		Planner:       pl,
		Ctrl:          ctrl,
		Chunks:        8,
		NVLinkLatency: 2 * sim.Microsecond,
	}
}

// nvlinkStage returns the intra-host broadcast time over NVLink/NVSwitch
// once the message reaches a host NIC.
func (r *Runner) nvlinkStage(bytes int64) sim.Time {
	return r.NVLinkLatency + sim.Time(float64(bytes*8)/r.Net.Cfg.NVLinkBps*1e12)
}

// nextKey yields a unique ECMP flow key.
func (r *Runner) nextKey() uint64 {
	r.flowKey++
	return r.flowKey*0x9e3779b97f4a7c15 + 0x1234567
}

// Start launches collective c under scheme s at the current simulated
// time. done fires once every member host (and, after the NVLink stage,
// every GPU) holds the full message, receiving the CCT.
func (r *Runner) Start(c *workload.Collective, s Scheme, done func(cct sim.Time)) error {
	return r.StartReport(c, s, func(rep Report) { done(rep.CCT) })
}

// StartReport is Start with the extended completion record: done receives
// the CCT plus the recovery statistics (stalls, repairs, downtime) the
// watchdog collected. With Runner.Watchdog disabled the recovery stats are
// all zero.
func (r *Runner) StartReport(c *workload.Collective, s Scheme, done func(Report)) error {
	if len(c.Hosts) < 2 {
		// Single-host collective: NVLink only.
		start := r.Net.Engine.Now()
		r.Net.Engine.After(r.nvlinkStage(c.Bytes), func() {
			done(Report{CCT: r.Net.Engine.Now() - start})
		})
		return nil
	}
	inst := &instance{r: r, c: c, startedAt: r.Net.Engine.Now(), reportDone: done}
	if err := inst.startScheme(s); err != nil {
		return err
	}
	r.register(inst)
	if r.Watchdog > 0 {
		inst.armWatchdog()
	}
	return nil
}

// startScheme dispatches to the per-scheme launcher.
func (in *instance) startScheme(s Scheme) error {
	switch s {
	case Ring:
		return in.startRing()
	case BinTree:
		return in.startBinTree()
	case DblBinTree:
		return in.startDblBinTree()
	case Optimal:
		return in.startOptimal()
	case Orca:
		return in.startOrca(true)
	case OrcaInstant:
		return in.startOrca(false)
	case PEEL:
		return in.startPEEL(false, true, core.PlanOptions{})
	case PEELCores:
		return in.startPEEL(true, true, core.PlanOptions{})
	case PEELNoGuard:
		return in.startPEEL(false, false, core.PlanOptions{})
	case PEELToRFilter:
		return in.startPEEL(false, true, core.PlanOptions{ToRFilter: true})
	case PEELCoresFiltered:
		return in.startPEEL(true, true, core.PlanOptions{ToRFilter: true})
	case MultiTree1:
		return in.startMultiTree(1)
	case MultiTree2:
		return in.startMultiTree(2)
	case MultiTree4:
		return in.startMultiTree(4)
	case StripedPEEL:
		return in.startStriped(4)
	case StripedPEEL2:
		return in.startStriped(2)
	}
	return fmt.Errorf("collective: unknown scheme %q", s)
}

// instance tracks one in-flight collective.
type instance struct {
	r          *Runner
	c          *workload.Collective
	startedAt  sim.Time
	reportDone func(Report)

	pendingHosts int
	hostDone     map[topology.NodeID]bool
	finished     bool

	orcaGot  map[topology.NodeID]int // per-peer chunk counts (Orca relays)
	startErr error                   // deferred-start failure (see failStart)

	// Striped multi-tree state (see striped.go). stripeCount is the
	// achieved tree count any striping scheme reports — StripedPEEL* and
	// MultiTree*, whose dedup probe can build fewer trees than asked for
	// on small fabrics. stripeRepairs counts repairs per stripe index.
	striped       *stripedRun
	stripeCount   int
	stripeRepairs []int

	// Failure-recovery state (see recovery.go). All zero when the
	// watchdog is disabled.
	watch []watched
	// repairBase is the last installed single multicast tree — the graft
	// base for incremental repair. nil for multi-tree stages (PEEL's static
	// prefix packets), where repair always re-peels.
	repairBase     *steiner.Tree
	recovery       RecoveryStats
	repairAttempts int
	lastSnapshot   int64
	quietTicks     int
	stalled        bool
	stalledSince   sim.Time
	setupPending   bool // controller install outstanding: not a stall
	repairPending  bool // repair install outstanding: not a stall

	// Repair latency breakdown timestamps (telemetry): when the current
	// stall was declared and when its repair went in. awaitResume marks
	// the window between install and the first observed progress.
	repairDetectAt  sim.Time
	repairInstallAt sim.Time
	awaitResume     bool
}

// initCompletion arms completion tracking over the receiver hosts.
func (in *instance) initCompletion() {
	in.hostDone = make(map[topology.NodeID]bool, len(in.c.Receivers()))
	in.pendingHosts = len(in.c.Receivers())
}

// hostComplete marks a receiver host as holding the full message; when the
// last completes, the NVLink stage runs and the CCT is reported.
func (in *instance) hostComplete(h topology.NodeID) {
	if in.hostDone[h] || in.finished {
		return
	}
	in.hostDone[h] = true
	in.pendingHosts--
	if in.pendingHosts > 0 {
		return
	}
	in.finished = true
	in.r.unregister(in)
	if s := invariant.Active(); s != nil {
		// Completion means every receiver was delivered to exactly once: the
		// de-dup guard above makes double completion impossible, so a zero
		// pending count with a receiver missing from hostDone (or a nonzero
		// pending count here) is corrupted completion tracking.
		missing := 0
		for _, m := range in.c.Receivers() {
			if !in.hostDone[m] {
				missing++
			}
		}
		s.Checkf(invariant.CollectiveDelivery, in.pendingHosts == 0 && missing == 0,
			"collective %d finished with pending=%d, %d of %d receivers undelivered",
			in.c.ID, in.pendingHosts, missing, len(in.c.Receivers()))
	}
	// A repair whose resumed traffic finished the collective before the
	// next watchdog tick still completes the detect→install→resume
	// breakdown here.
	in.noteRepairResumed(in.r.Net.Engine.Now())
	eng := in.r.Net.Engine
	eng.After(in.r.nvlinkStage(in.c.Bytes), func() {
		cct := eng.Now() - in.startedAt
		if ts := telemetry.Active(); ts != nil {
			ts.Counter("collective.completed").Inc()
			ts.Histogram("collective.cct_ps", telemetry.Log2Layout()).Observe(int64(cct))
		}
		in.reportDone(Report{CCT: cct, Recovery: in.recovery,
			Stripes: in.stripeCount, StripeRepairs: in.stripeRepairs})
	})
}

// chunkSizes splits the message into the pipelining chunks.
func (in *instance) chunkSizes() []int64 {
	n := in.r.Chunks
	if n < 1 {
		n = 1
	}
	if int64(n) > in.c.Bytes {
		n = int(in.c.Bytes)
	}
	base := in.c.Bytes / int64(n)
	sizes := make([]int64, n)
	var used int64
	for i := 0; i < n-1; i++ {
		sizes[i] = base
		used += base
	}
	sizes[n-1] = in.c.Bytes - used
	return sizes
}

// unicastFlow builds a paced flow between two hosts over an ECMP path.
func (in *instance) unicastFlow(src, dst topology.NodeID, params dcqcn.Params) (*netsim.Flow, error) {
	path := routing.ECMPPath(in.r.Net.G, src, dst, in.r.nextKey())
	if path == nil {
		return nil, fmt.Errorf("collective: no path %d->%d", src, dst)
	}
	f, err := in.r.Net.NewUnicastFlow(path, params)
	if err != nil {
		return nil, err
	}
	in.track(f, []topology.NodeID{dst})
	return f, nil
}
