package netsim

import (
	"fmt"
	"sort"

	"peel/internal/sim"
	"peel/internal/topology"
)

// Telemetry aggregates fabric-wide observability counters — the
// cluster-wide telemetry the paper assumes operators already run (§1
// footnote). All quantities are cumulative since Network creation.
type Telemetry struct {
	// TierBytes maps a link tier label ("host-tor", "tor-agg",
	// "agg-core", "leaf-spine", "host-leaf") to payload bytes serialized
	// on links of that tier (both directions).
	TierBytes map[string]int64
	// MaxQueueBytes is the fabric-wide high-water mark of any egress
	// queue.
	MaxQueueBytes int64
	// HotLink identifies the link that carried the most bytes.
	HotLink topology.LinkID
	// HotLinkBytes is the byte count on HotLink.
	HotLinkBytes int64
	// ECNMarks / PFCPauses mirror the Network counters.
	ECNMarks  uint64
	PFCPauses uint64
	// LinkDrops counts frames lost to failed links fabric-wide.
	LinkDrops uint64
	// DownLinks is the number of links currently down.
	DownLinks int
	// LinkDownTime sums accumulated outage time across all links (one
	// direction each; both directions fail together).
	LinkDownTime sim.Time
}

// tierLabel names the tier of a link by its endpoint kinds, with the
// lower tier first.
func tierLabel(a, b topology.Kind) string {
	names := []string{a.String(), b.String()}
	sort.Strings(names)
	return names[0] + "-" + names[1]
}

// Telemetry snapshots the network's counters.
func (n *Network) Telemetry() Telemetry {
	t := Telemetry{
		TierBytes: map[string]int64{},
		ECNMarks:  n.TotalECNMarks,
		PFCPauses: n.PFCPauses,
		LinkDrops: n.LinkDrops,
		HotLink:   -1,
	}
	perLink := map[topology.LinkID]int64{}
	for key, ch := range n.chans {
		l := n.G.Node(key.from)
		r := n.G.Node(key.to)
		t.TierBytes[tierLabel(l.Kind, r.Kind)] += ch.BytesSent
		if ch.maxQBytes > t.MaxQueueBytes {
			t.MaxQueueBytes = ch.maxQBytes
		}
		id := n.G.LinkBetween(key.from, key.to)
		if id >= 0 {
			perLink[id] += ch.BytesSent
		}
	}
	for i := 0; i < n.G.NumLinks(); i++ {
		id := topology.LinkID(i)
		if n.LinkDown(id) {
			t.DownLinks++
		}
		_, dt := n.LinkDownStats(id)
		t.LinkDownTime += dt
	}
	for id, b := range perLink {
		if b > t.HotLinkBytes || (b == t.HotLinkBytes && (t.HotLink < 0 || id < t.HotLink)) {
			t.HotLink, t.HotLinkBytes = id, b
		}
	}
	return t
}

// String renders the snapshot for logs and CLI notes.
func (t Telemetry) String() string {
	tiers := make([]string, 0, len(t.TierBytes))
	for k := range t.TierBytes {
		tiers = append(tiers, k)
	}
	sort.Strings(tiers)
	out := ""
	for _, k := range tiers {
		out += fmt.Sprintf("%s=%dB ", k, t.TierBytes[k])
	}
	return fmt.Sprintf("%smaxQ=%dB hotLink=%d(%dB) ecn=%d pfc=%d linkDrops=%d downLinks=%d downTime=%v",
		out, t.MaxQueueBytes, t.HotLink, t.HotLinkBytes, t.ECNMarks, t.PFCPauses,
		t.LinkDrops, t.DownLinks, t.LinkDownTime.Duration())
}

// UtilizationOf returns the average utilization of a directed channel
// over the elapsed simulated time: bytes sent ÷ (rate × time).
func (n *Network) UtilizationOf(from, to topology.NodeID) float64 {
	ch := n.Channel(from, to)
	if ch == nil || n.Engine.Now() == 0 {
		return 0
	}
	capacity := n.Cfg.LinkBps / 8 * n.Engine.Now().Seconds()
	return float64(ch.BytesSent) / capacity
}

// DebugState renders a flow's completion bookkeeping for diagnostics.
func (f *Flow) DebugState() string {
	s := fmt.Sprintf("flow%d done=%v closed=%v chunks=%d nextChunk=%d sent=%d repairs=%v\n",
		f.id, f.Done(), f.closed, len(f.chunks), f.nextChunk, len(f.sent), f.repairs)
	for r, rs := range f.recv {
		s += fmt.Sprintf("  recv %d: seqs=%d doneChunks=%d", r, len(rs.gotSeq), len(rs.doneChunk))
		for c, b := range rs.gotChunk {
			s += fmt.Sprintf(" chunk%d=%d/%d", c, b, f.chunkBytes(c))
		}
		s += "\n"
	}
	return s
}

// DebugStalledChannels lists channels holding frames without serializing,
// with their destination's PFC state (deadlock diagnostics).
func (n *Network) DebugStalledChannels() string {
	s := fmt.Sprintf("pfcPauses=%d\n", n.PFCPauses)
	for key, ch := range n.chans {
		if ch.sending || ch.head >= len(ch.queue) {
			continue
		}
		s += fmt.Sprintf("  stalled %s->%s q=%dB frames=%d dstPaused=%v dstBuf=%dB thresholds pause=%d resume=%d\n",
			n.G.Node(key.from).Name, n.G.Node(key.to).Name, ch.qBytes, len(ch.queue)-ch.head,
			n.nodes[key.to].paused, n.nodes[key.to].bufBytes,
			n.Cfg.pfcPauseThreshold(), n.Cfg.pfcResumeThreshold())
	}
	return s
}
