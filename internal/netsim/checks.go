package netsim

import (
	"peel/internal/invariant"
	"peel/internal/topology"
)

// CheckAccounting verifies the fabric's byte books against ground truth:
// each channel's qBytes must equal the sum of its queued frames' bytes,
// and each switch's bufBytes must equal the sum of its egress channels'
// qBytes. Called automatically on every fail/heal transition (where the
// accounting is rewritten wholesale) and from CheckQuiesced; it walks
// every channel, so it is not for per-frame paths.
func (n *Network) CheckAccounting(s *invariant.Suite) {
	if s == nil {
		return
	}
	perNode := make([]int64, len(n.nodes))
	for _, ch := range n.chans {
		var sum int64
		for i := ch.head; i < len(ch.queue); i++ {
			sum += ch.queue[i].bytes
		}
		s.Checkf(invariant.NetByteAccounting, sum == ch.qBytes,
			"channel %d->%d qBytes=%d but queued frames hold %d", ch.from, ch.to, ch.qBytes, sum)
		if n.G.Node(ch.from).Kind.IsSwitch() {
			perNode[ch.from] += ch.qBytes
		}
	}
	for id := range n.nodes {
		if !n.G.Node(topology.NodeID(id)).Kind.IsSwitch() {
			continue
		}
		s.Checkf(invariant.NetByteAccounting, n.nodes[id].bufBytes == perNode[id],
			"switch %d bufBytes=%d but egress queues hold %d", id, n.nodes[id].bufBytes, perNode[id])
	}
}

// CheckQuiesced verifies the fabric reached a true quiescent state after
// the engine drained: accounting is consistent, no channel is sending or
// holds frames or blocked waiters, and every allocated frame has been
// consumed (frame conservation — a leaked frame means traffic silently
// went missing, a negative count means one was consumed twice).
func (n *Network) CheckQuiesced(s *invariant.Suite) {
	if s == nil {
		return
	}
	n.CheckAccounting(s)
	for _, ch := range n.chans {
		s.Checkf(invariant.NetFrameConservation,
			!ch.sending && ch.head >= len(ch.queue) && ch.qBytes == 0 && len(ch.waiters) == 0,
			"channel %d->%d not drained at quiesce: sending=%v queued=%d qBytes=%d waiters=%d",
			ch.from, ch.to, ch.sending, len(ch.queue)-ch.head, ch.qBytes, len(ch.waiters))
	}
	s.Checkf(invariant.NetFrameConservation, n.framesLive == 0,
		"%d frames allocated but never consumed at quiesce", n.framesLive)
}
