package netsim

import (
	"testing"

	"peel/internal/invariant"
	"peel/internal/invariant/invtest"
	"peel/internal/routing"
	"peel/internal/sim"
	"peel/internal/topology"
)

// Mutation self-tests: corrupt fabric state on purpose and prove the
// corresponding checker fires.

func mutationNet(t *testing.T) (*Network, *topology.Graph) {
	t.Helper()
	g := topology.FatTree(4)
	return New(g, &sim.Engine{}, DefaultConfig()), g
}

func TestMutationDoubleRecycleFires(t *testing.T) {
	s := invtest.Capture(t, func() {
		n, _ := mutationNet(t)
		f := n.newFrame()
		n.freeFrame(f)
		n.freeFrame(f) // second recycle of the same frame
	})
	if s.Violations(invariant.NetFrameRecycle) == 0 {
		t.Fatal("no-double-recycle checker did not fire")
	}
}

func TestMutationLeakedFrameFires(t *testing.T) {
	n, _ := mutationNet(t)
	n.newFrame() // allocated, never consumed
	s := invariant.NewSuite()
	n.CheckQuiesced(s)
	if s.Violations(invariant.NetFrameConservation) == 0 {
		t.Fatal("frame-conservation checker did not fire on a leaked frame")
	}
}

func TestMutationChannelBytesFires(t *testing.T) {
	n, g := mutationNet(t)
	l := g.Link(0)
	n.Channel(l.A, l.B).qBytes += 5 // books no longer match the queue
	s := invariant.NewSuite()
	n.CheckAccounting(s)
	if s.Violations(invariant.NetByteAccounting) == 0 {
		t.Fatal("byte-accounting checker did not fire on corrupted qBytes")
	}
}

func TestMutationSwitchBufferFires(t *testing.T) {
	n, g := mutationNet(t)
	for id := 0; id < g.NumNodes(); id++ {
		if g.Node(topology.NodeID(id)).Kind.IsSwitch() {
			n.nodes[id].bufBytes += 3
			break
		}
	}
	s := invariant.NewSuite()
	n.CheckAccounting(s)
	if s.Violations(invariant.NetByteAccounting) == 0 {
		t.Fatal("byte-accounting checker did not fire on corrupted bufBytes")
	}
}

func TestMutationOverDeliveryFires(t *testing.T) {
	s := invtest.Capture(t, func() {
		n, g := mutationNet(t)
		hosts := g.Hosts()
		src, dst := hosts[0], hosts[1]
		path := routing.ECMPPath(g, src, dst, 1)
		if path == nil {
			t.Fatal("no path between mutation hosts")
		}
		f, err := n.NewUnicastFlow(path, n.Cfg.DCQCN)
		if err != nil {
			t.Fatal(err)
		}
		f.Send(0, 100)
		// Two distinct-seq frames each carrying the whole chunk: the per-seq
		// de-dup passes both, so the second pushes gotChunk past the size.
		for seq := int64(1001); seq <= 1002; seq++ {
			fr := n.newFrame()
			fr.flow, fr.chunkID, fr.bytes, fr.seq = f, 0, 100, seq
			f.receive(fr, dst)
		}
	})
	if s.Violations(invariant.NetOverDelivery) == 0 {
		t.Fatal("no-over-delivery checker did not fire on duplicate-byte delivery")
	}
}
