package netsim

import (
	"testing"

	"peel/internal/topology"
)

// TestDarkLinkDefersNotDrops covers the announced-reconfiguration channel
// state: a dark link queues frames without serializing them (no loss, no
// repair traffic), then drains the backlog when the window clears — unlike
// down, which drops.
func TestDarkLinkDefersNotDrops(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, cfg)
	hosts := r.g.Hosts()
	src, dst := hosts[0], hosts[15]
	f := r.unicast(t, src, dst)

	uplink := r.g.LinkBetween(src, r.g.EdgeSwitchOf(src))
	const M = 4 << 20
	var got int64
	f.OnChunk(func(_ topology.NodeID, _ int) { got = M })
	f.Send(0, M)

	darkAt := cfg.txTime(M) / 5
	clearAt := 3 * cfg.txTime(M)
	l := r.g.Link(uplink)
	ch := r.net.Channel(src, l.B)
	if ch == nil {
		ch = r.net.Channel(src, l.A)
	}

	var sentAtDark int64
	r.eng.At(darkAt, func() {
		r.net.SetLinkDark(uplink, true)
		if !r.net.LinkDark(uplink) {
			t.Error("LinkDark=false inside the dark window")
		}
		sentAtDark = ch.BytesSent
	})
	// Probe late in the window: the channel must have stopped serializing
	// (at most the frame already on the wire when the window opened) while
	// the sender's backlog sits queued, not dropped.
	r.eng.At(clearAt-cfg.txTime(1<<10), func() {
		if ch.BytesSent > sentAtDark+int64(cfg.FrameBytes) {
			t.Errorf("dark channel kept serializing: %d bytes after %d at window open",
				ch.BytesSent, sentAtDark)
		}
		if ch.Deferred == 0 {
			t.Error("no frames counted as deferred inside the dark window")
		}
	})
	r.eng.At(clearAt, func() { r.net.SetLinkDark(uplink, false) })
	if err := r.eng.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if got != M || !f.Done() {
		t.Fatalf("flow did not complete after the dark window cleared (got=%d done=%v)", got, f.Done())
	}
	if r.net.LinkDrops != 0 {
		t.Fatalf("dark window dropped %d frames; deferral must be lossless", r.net.LinkDrops)
	}
	if r.net.LinkDark(uplink) {
		t.Fatal("LinkDark=true after the window cleared")
	}
	// Down-link accounting stays untouched: dark is not an outage.
	downs, downTime := r.net.LinkDownStats(uplink)
	if downs != 0 || downTime != 0 {
		t.Fatalf("dark window counted as an outage: downs=%d time=%v", downs, downTime)
	}
	// Completion waited for the window: the transfer cannot beat the clear
	// time, since four fifths of the message sat deferred behind it.
	if end := r.eng.Now(); end < clearAt {
		t.Fatalf("flow finished at %v, before the dark window cleared at %v", end, clearAt)
	}
}

// TestDarkClearIsIdempotent exercises the transition guards: re-marking an
// already-dark link and re-clearing a live one are no-ops.
func TestDarkClearIsIdempotent(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, cfg)
	hosts := r.g.Hosts()
	uplink := r.g.LinkBetween(hosts[0], r.g.EdgeSwitchOf(hosts[0]))

	r.net.SetLinkDark(uplink, false) // already clear
	if r.net.LinkDark(uplink) {
		t.Fatal("clearing a live link marked it dark")
	}
	r.net.SetLinkDark(uplink, true)
	r.net.SetLinkDark(uplink, true) // already dark
	if !r.net.LinkDark(uplink) {
		t.Fatal("double dark-mark cleared the link")
	}
	r.net.SetLinkDark(uplink, false)
	if r.net.LinkDark(uplink) {
		t.Fatal("link still dark after clear")
	}
}
