package netsim

import (
	"fmt"

	"peel/internal/sim"
	"peel/internal/telemetry"
	"peel/internal/topology"
)

// telHooks caches the active telemetry sink's pre-resolved primitives for
// the per-frame fast paths, mirroring the invariant suite cache
// (overDeliveryCounter): names are resolved once per sink change, then
// every update is a lock-free atomic.
type telHooks struct {
	framesAllocated *telemetry.Counter // newFrame calls
	framesConsumed  *telemetry.Counter // freeFrame calls (host receive, drop, discard)
	framesEnqueued  *telemetry.Counter // frames accepted into a channel queue
	framesSent      *telemetry.Counter // frames fully serialized on a live wire
	framesDelivered *telemetry.Counter // frames handed to a host
	linkDrops       *telemetry.Counter // frames lost to failed links
	lossDrops       *telemetry.Counter // frames lost to the random loss rate
	darkDeferred    *telemetry.Counter // frames deferred by announced dark windows
	rec             *telemetry.Recorder
}

// tel returns the hook cache for the active sink, or nil when telemetry
// is disabled — the disabled cost is one atomic load.
func (n *Network) tel() *telHooks {
	t := telemetry.Active()
	if t == nil {
		return nil
	}
	if t != n.tsink {
		n.tsink = t
		n.tc = telHooks{
			framesAllocated: t.Counter("netsim.frames_allocated"),
			framesConsumed:  t.Counter("netsim.frames_consumed"),
			framesEnqueued:  t.Counter("netsim.frames_enqueued"),
			framesSent:      t.Counter("netsim.frames_sent"),
			framesDelivered: t.Counter("netsim.frames_delivered"),
			linkDrops:       t.Counter("netsim.link_drops"),
			lossDrops:       t.Counter("netsim.loss_drops"),
			darkDeferred:    t.Counter("fabric.dark_deferred_frames"),
			rec:             t.Recorder(),
		}
	}
	return &n.tc
}

// linkLabel names a directed channel for per-link aggregates and CSV
// rows: node names when the topology provides them, IDs otherwise.
func (n *Network) linkLabel(from, to topology.NodeID) string {
	a, b := n.G.Node(from).Name, n.G.Node(to).Name
	if a == "" || b == "" {
		return fmt.Sprintf("n%d>n%d", from, to)
	}
	return a + ">" + b
}

// PublishTelemetry folds the network's final per-channel state into the
// sink's per-link aggregates. Call once per run after the engine drains;
// channels that saw no traffic and no failures are skipped. All published
// quantities are integers, so aggregates are deterministic for any worker
// count or publication order.
func (n *Network) PublishTelemetry(t *telemetry.Sink) {
	if t == nil {
		return
	}
	now := n.Engine.Now()
	maxQ := t.Gauge("netsim.max_queue_bytes")
	for i := 0; i < n.G.NumLinks(); i++ {
		l := n.G.Link(topology.LinkID(i))
		for _, dir := range [2][2]topology.NodeID{{l.A, l.B}, {l.B, l.A}} {
			ch := n.Channel(dir[0], dir[1])
			if ch == nil {
				continue
			}
			if ch.BytesSent == 0 && ch.Drops == 0 && ch.DownCount == 0 {
				continue
			}
			downPs := ch.DownTime
			if ch.down {
				downPs += now - ch.downSince
			}
			t.ObserveLink(n.linkLabel(dir[0], dir[1]), telemetry.LinkStat{
				Bytes:     ch.BytesSent,
				Frames:    ch.FramesSent,
				Drops:     ch.Drops,
				Downs:     ch.DownCount,
				DownPs:    int64(downPs),
				ElapsedPs: int64(now),
				CapBps:    n.Cfg.LinkBps,
			})
			maxQ.SetMax(ch.maxQBytes)
		}
	}
}

// ArmTelemetrySampler schedules a periodic CSV time-series capture of
// every active channel's cumulative counters. The tick reschedules itself
// only while the engine still has other pending work, so an armed sampler
// never keeps a drained simulation alive. Sampling is opt-in per run
// (peelsim -telemetry-csv); an unarmed network schedules nothing, leaving
// event streams — and the experiment trace goldens — untouched.
func (n *Network) ArmTelemetrySampler(t *telemetry.Sink, interval sim.Time) {
	if t == nil || interval <= 0 {
		return
	}
	run := t.NextRunID()
	// Pre-compute labels once: sampling must not allocate per tick beyond
	// the rows it appends.
	type tap struct {
		ch    *channel
		label string
	}
	taps := make([]tap, 0, 2*n.G.NumLinks())
	for i := 0; i < n.G.NumLinks(); i++ {
		l := n.G.Link(topology.LinkID(i))
		for _, dir := range [2][2]topology.NodeID{{l.A, l.B}, {l.B, l.A}} {
			if ch := n.Channel(dir[0], dir[1]); ch != nil {
				taps = append(taps, tap{ch, n.linkLabel(dir[0], dir[1])})
			}
		}
	}
	var tick func()
	tick = func() {
		at := n.Engine.Now()
		for _, tp := range taps {
			ch := tp.ch
			if ch.BytesSent == 0 && ch.qBytes == 0 && ch.Drops == 0 {
				continue
			}
			t.RecordSample(telemetry.Sample{
				Run: run, At: at, Link: tp.label,
				Bytes: ch.BytesSent, Frames: ch.FramesSent,
				Drops: ch.Drops, QBytes: ch.qBytes,
			})
		}
		if n.Engine.Pending() > 0 {
			n.Engine.After(interval, tick)
		}
	}
	n.Engine.After(interval, tick)
}
