package netsim

import (
	"testing"

	"peel/internal/sim"
	"peel/internal/steiner"
	"peel/internal/topology"
)

func TestLossRecoveryUnicast(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LossRate = 0.02
	r := newRig(t, cfg)
	hosts := r.g.Hosts()
	f := r.unicast(t, hosts[0], hosts[12])
	done := false
	f.OnChunk(func(topology.NodeID, int) { done = true })
	f.Send(0, 2<<20)
	if err := r.eng.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if !done || !f.Done() {
		t.Fatal("flow did not recover from loss")
	}
	if r.net.TotalDrops == 0 {
		t.Fatal("2% loss produced no drops")
	}
	if f.Retransmissions == 0 {
		t.Fatal("no retransmissions despite drops")
	}
	if got := f.ReceivedBytes(hosts[12]); got != 2<<20 {
		t.Fatalf("receiver holds %d bytes, want full message (duplicates must not double-count)", got)
	}
}

func TestLossRecoveryMulticast(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LossRate = 0.01
	r := newRig(t, cfg)
	hosts := r.g.Hosts()
	src := hosts[0]
	dests := hosts[4:12]
	tree, err := steiner.SymmetricOptimal(r.g, src, dests)
	if err != nil {
		t.Fatal(err)
	}
	f, err := r.net.NewMulticastFlow(tree, dests, r.net.Cfg.DCQCN)
	if err != nil {
		t.Fatal(err)
	}
	got := map[topology.NodeID]bool{}
	f.OnChunk(func(recv topology.NodeID, _ int) { got[recv] = true })
	f.Send(0, 1<<20)
	if err := r.eng.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(dests) {
		t.Fatalf("only %d/%d receivers completed under loss", len(got), len(dests))
	}
	for _, d := range dests {
		if b := f.ReceivedBytes(d); b != 1<<20 {
			t.Fatalf("receiver %d holds %d bytes", d, b)
		}
	}
}

func TestLossSlowsCompletion(t *testing.T) {
	run := func(loss float64) sim.Time {
		cfg := DefaultConfig()
		cfg.LossRate = loss
		cfg.Seed = 5
		r := newRig(t, cfg)
		hosts := r.g.Hosts()
		f := r.unicast(t, hosts[0], hosts[12])
		var at sim.Time
		f.OnChunk(func(topology.NodeID, int) { at = r.eng.Now() })
		f.Send(0, 4<<20)
		if err := r.eng.Run(100_000_000); err != nil {
			t.Fatal(err)
		}
		if !f.Done() {
			t.Fatal("flow incomplete")
		}
		return at
	}
	clean := run(0)
	lossy := run(0.05)
	if lossy <= clean {
		t.Fatalf("5%% loss did not slow completion: %v vs %v", lossy, clean)
	}
}

func TestNoLossNoRetransmissions(t *testing.T) {
	r := newRig(t, DefaultConfig())
	hosts := r.g.Hosts()
	f := r.unicast(t, hosts[0], hosts[4])
	f.Send(0, 1<<20)
	if err := r.eng.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if f.Retransmissions != 0 || r.net.TotalDrops != 0 {
		t.Fatalf("loss-free run shows drops=%d retrans=%d", r.net.TotalDrops, f.Retransmissions)
	}
}

func TestClosedFlowStopsRepairing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LossRate = 0.5 // brutal loss: repairs would run forever
	r := newRig(t, cfg)
	hosts := r.g.Hosts()
	f := r.unicast(t, hosts[0], hosts[12])
	f.Send(0, 256<<10)
	r.eng.At(2*sim.Millisecond, f.Close)
	if err := r.eng.Run(30_000_000); err != nil {
		t.Fatal(err)
	}
	// The engine must drain: a closed flow's repair loop terminates.
	if r.eng.Pending() != 0 {
		t.Fatalf("%d events still pending after close", r.eng.Pending())
	}
}

func TestPFCWatchdogBreaksStuckPause(t *testing.T) {
	// Force a pause storm: minuscule shared buffers with heavy multicast
	// replication. The watchdog must force-resume so the fabric drains
	// and every flow completes — the regression test for the circular
	// buffer dependency that once deadlocked the loss experiments.
	cfg := DefaultConfig()
	cfg.BufferBytes = 32 << 10
	cfg.ECNKmaxBytes = 24 << 10
	cfg.LossRate = 0.005
	r := newRig(t, cfg)
	hosts := r.g.Hosts()
	var flows []*Flow
	for i := 0; i < 4; i++ {
		f := r.unicast(t, hosts[i], hosts[15-i])
		f.Send(0, 2<<20)
		flows = append(flows, f)
	}
	if err := r.eng.Run(400_000_000); err != nil {
		t.Fatal(err)
	}
	for _, f := range flows {
		if !f.Done() {
			t.Fatalf("flow deadlocked: %s\n%s", f.DebugState(), r.net.DebugStalledChannels())
		}
	}
}

func TestRepairRespectsBackpressure(t *testing.T) {
	// With a congested uplink the repair loop must defer, not pile frames
	// into the queue: the uplink queue stays bounded.
	cfg := DefaultConfig()
	cfg.LossRate = 0.05
	r := newRig(t, cfg)
	hosts := r.g.Hosts()
	src := hosts[0]
	var flows []*Flow
	for i := 1; i <= 3; i++ {
		f := r.unicast(t, src, hosts[i*4])
		f.Send(0, 4<<20)
		flows = append(flows, f)
	}
	if err := r.eng.Run(400_000_000); err != nil {
		t.Fatal(err)
	}
	for _, f := range flows {
		if !f.Done() {
			t.Fatal("flow incomplete under loss")
		}
	}
	tel := r.net.Telemetry()
	cap := (r.net.Cfg.HostQueueFrames + 2) * r.net.Cfg.FrameBytes
	up := r.net.Channel(src, r.g.EdgeSwitchOf(src))
	if up.maxQBytes > cap {
		t.Fatalf("uplink high-water %d exceeds NIC cap %d (telemetry %s)", up.maxQBytes, cap, tel)
	}
}
