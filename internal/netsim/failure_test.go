package netsim

import (
	"testing"

	"peel/internal/sim"
	"peel/internal/topology"
)

func TestValidateRejectsBadConfigs(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero LinkBps", func(c *Config) { c.LinkBps = 0 }},
		{"negative NVLinkBps", func(c *Config) { c.NVLinkBps = -1 }},
		{"zero FrameBytes", func(c *Config) { c.FrameBytes = 0 }},
		{"negative FrameBytes", func(c *Config) { c.FrameBytes = -4096 }},
		{"zero BufferBytes", func(c *Config) { c.BufferBytes = 0 }},
		{"negative PropDelay", func(c *Config) { c.PropDelay = -sim.Nanosecond }},
		{"negative SwitchLatency", func(c *Config) { c.SwitchLatency = -sim.Nanosecond }},
		{"negative LossRate", func(c *Config) { c.LossRate = -0.1 }},
		{"LossRate above 1", func(c *Config) { c.LossRate = 1.5 }},
		{"loss without RTO", func(c *Config) { c.LossRate = 0.01; c.RepairRTO = 0 }},
		{"negative BufferBytes", func(c *Config) { c.BufferBytes = -1 }},
		{"negative ECN Kmin", func(c *Config) { c.ECNKminBytes = -1 }},
		{"inverted ECN thresholds", func(c *Config) { c.ECNKminBytes = 10 << 10; c.ECNKmaxBytes = 5 << 10 }},
		{"negative ECNPmax", func(c *Config) { c.ECNPmax = -0.01 }},
		{"ECNPmax above 1", func(c *Config) { c.ECNPmax = 1.2 }},
		{"PFC with zero free fraction", func(c *Config) { c.PFCFreeFrac = 0 }},
		{"PFC free fraction one", func(c *Config) { c.PFCFreeFrac = 1 }},
		{"zero HostQueueFrames", func(c *Config) { c.HostQueueFrames = 0 }},
		{"negative HostQueueFrames", func(c *Config) { c.HostQueueFrames = -2 }},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the config", tc.name)
		}
	}
	// PFCFreeFrac is irrelevant while PFC is off.
	cfg := DefaultConfig()
	cfg.PFCEnabled = false
	cfg.PFCFreeFrac = 0
	if err := cfg.Validate(); err != nil {
		t.Errorf("PFC off: %v", err)
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted an invalid config")
		}
	}()
	cfg := DefaultConfig()
	cfg.FrameBytes = 0
	New(topology.LeafSpine(2, 2, 1), &sim.Engine{}, cfg)
}

// failMidFlight kills one path link of a unicast flow partway through the
// transfer and returns the rig, flow, and failed link.
func failMidFlight(t *testing.T, heal bool) (*rig, *Flow, topology.LinkID, *int64) {
	t.Helper()
	cfg := DefaultConfig()
	r := newRig(t, cfg)
	hosts := r.g.Hosts()
	src, dst := hosts[0], hosts[15] // cross-leaf: the path crosses a spine
	f := r.unicast(t, src, dst)

	// The leaf→spine link on the flow's path: fail the uplink of the
	// source's leaf. All spine uplinks of that leaf would do; take the one
	// the flow actually crosses by failing every leaf-spine uplink of the
	// source's leaf switch.
	leaf := r.g.EdgeSwitchOf(src)
	var uplinks []topology.LinkID
	for _, he := range r.g.Adj(leaf) {
		if r.g.Node(he.Peer).Kind == topology.Spine {
			uplinks = append(uplinks, he.Link)
		}
	}
	const M = 4 << 20
	var got int64
	f.OnChunk(func(_ topology.NodeID, _ int) { got = M })
	f.Send(0, M)

	// Fail at 20% of the ideal transfer time, heal (optionally) at 3×.
	failAt := cfg.txTime(M) / 5
	r.eng.At(failAt, func() {
		for _, id := range uplinks {
			r.g.FailLink(id)
		}
	})
	if heal {
		r.eng.At(3*cfg.txTime(M), func() {
			for _, id := range uplinks {
				r.g.RestoreLink(id)
			}
		})
	}
	return r, f, uplinks[0], &got
}

func TestDownLinkDropsFrames(t *testing.T) {
	r, f, link, got := failMidFlight(t, false)
	// With the path permanently dead, the flow's repair scan would retry
	// forever; a real caller (the collective watchdog) eventually closes
	// the flow — do the same so the engine drains.
	r.eng.At(sim.Second, f.Close)
	if err := r.eng.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if *got != 0 || f.Done() {
		t.Fatal("flow completed across a permanently failed path")
	}
	if r.net.LinkDrops == 0 {
		t.Fatal("no frames counted as dropped on the dead link")
	}
	if !r.net.LinkDown(link) {
		t.Fatal("LinkDown=false for a failed link")
	}
	downs, downTime := r.net.LinkDownStats(link)
	if downs != 1 || downTime <= 0 {
		t.Fatalf("LinkDownStats=(%d,%v), want one ongoing outage", downs, downTime)
	}
	tel := r.net.Telemetry()
	if tel.LinkDrops == 0 || tel.DownLinks == 0 || tel.LinkDownTime <= 0 {
		t.Fatalf("telemetry misses the outage: %+v", tel)
	}
}

func TestHealedLinkResumesAndRepairs(t *testing.T) {
	// With the link healed, the flow's selective-repeat repair scan must
	// re-deliver the dropped frames and complete the transfer.
	r, f, link, got := failMidFlight(t, true)
	if err := r.eng.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	if *got == 0 || !f.Done() {
		t.Fatalf("flow did not recover after heal (got=%d done=%v)", *got, f.Done())
	}
	if r.net.LinkDown(link) {
		t.Fatal("LinkDown=true after restore")
	}
	downs, downTime := r.net.LinkDownStats(link)
	if downs != 1 || downTime <= 0 {
		t.Fatalf("LinkDownStats=(%d,%v) after one closed outage", downs, downTime)
	}
	if r.net.LinkDrops == 0 {
		t.Fatal("outage dropped no frames despite traffic in flight")
	}
}

func TestDownLinkQueueFlushedAndWaitersWoken(t *testing.T) {
	// Two flows share the source host's uplink; killing it mid-flight must
	// flush queued frames (buffer accounting back to zero on that channel)
	// without wedging the engine on parked NIC waiters.
	cfg := DefaultConfig()
	r := newRig(t, cfg)
	hosts := r.g.Hosts()
	f1 := r.unicast(t, hosts[0], hosts[15])
	f2 := r.unicast(t, hosts[0], hosts[14])
	f1.Send(0, 1<<20)
	f2.Send(0, 1<<20)

	uplink := r.g.LinkBetween(hosts[0], r.g.EdgeSwitchOf(hosts[0]))
	r.eng.At(cfg.txTime(1<<19), func() { r.g.FailLink(uplink) })
	r.eng.At(sim.Second, func() { f1.Close(); f2.Close() })
	if err := r.eng.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	// The engine drained: no livelock, and the dead uplink counted drops
	// from both flows' remaining frames.
	if r.net.LinkDrops == 0 {
		t.Fatal("host uplink failure dropped nothing")
	}
	if f1.Done() || f2.Done() {
		t.Fatal("flow completed without a path")
	}
}
