package netsim

import (
	"fmt"

	"peel/internal/dcqcn"
	"peel/internal/invariant"
	"peel/internal/sim"
	"peel/internal/steiner"
	"peel/internal/topology"
)

// ChunkHandler observes per-receiver chunk completions. Collective
// algorithms use it to drive pipelining (forward a chunk once fully
// received) and to detect collective completion.
type ChunkHandler func(receiver topology.NodeID, chunkID int)

// Flow is one paced sender: either a unicast flow along a fixed path or a
// multicast flow over a distribution tree. Frames are injected at the
// DCQCN-controlled rate and travel through the store-and-forward fabric.
type Flow struct {
	net *Network
	id  int

	src  topology.NodeID
	path []topology.NodeID // unicast route (src … dst); nil for multicast
	tree *steiner.Tree     // multicast route; nil for unicast

	receivers []topology.NodeID
	recv      map[topology.NodeID]*recvState

	sender  *dcqcn.Sender
	onChunk ChunkHandler

	chunks    []chunkState
	nextChunk int   // first chunk not fully injected
	offset    int64 // bytes of chunks[nextChunk] already injected
	pacing    bool
	closed    bool

	// BytesInjected counts payload bytes the source has emitted; one
	// multicast injection fans out downstream without re-counting here.
	BytesInjected int64

	// Retransmissions counts repair frames sent under loss.
	Retransmissions int64

	nextSeq int64
	sent    []sentFrame // retransmission buffer (loss recovery)
	repairs bool        // a repair scan is scheduled
	repairQ []sentFrame // repairs awaiting paced injection
}

// sentFrame is the sender's retransmission record for one frame.
type sentFrame struct {
	seq        int64
	chunkID    int
	bytes      int64
	lastRepair sim.Time // last retransmission (suppresses re-repair storms)
}

type chunkState struct {
	id    int
	bytes int64
}

type recvState struct {
	gotChunk  map[int]int64 // chunkID → bytes received
	doneChunk map[int]bool
	gotSeq    map[int64]bool // de-dup under loss recovery
	lastNP    sim.Time
	hasNP     bool
}

// NewUnicastFlow creates a paced flow along the given host-to-host path
// (from routing.ECMPPath). The final path node is the single receiver.
func (n *Network) NewUnicastFlow(path []topology.NodeID, params dcqcn.Params) (*Flow, error) {
	if len(path) < 2 {
		return nil, fmt.Errorf("netsim: unicast path needs >=2 nodes")
	}
	if n.G.Node(path[0]).Kind != topology.Host || n.G.Node(path[len(path)-1]).Kind != topology.Host {
		return nil, fmt.Errorf("netsim: unicast path endpoints must be hosts")
	}
	f := &Flow{
		net:       n,
		id:        len(n.flows),
		src:       path[0],
		path:      path,
		receivers: []topology.NodeID{path[len(path)-1]},
		sender:    dcqcn.NewSender(params),
	}
	f.initRecv()
	n.flows = append(n.flows, f)
	return f, nil
}

// NewMulticastFlow creates a paced flow over tree; receivers is the subset
// of tree hosts whose delivery counts toward chunk completion (over-covered
// hosts in PEEL's coarse prefixes receive and discard — their traffic is
// modelled, their completion is not awaited).
func (n *Network) NewMulticastFlow(tree *steiner.Tree, receivers []topology.NodeID, params dcqcn.Params) (*Flow, error) {
	if len(receivers) == 0 {
		return nil, fmt.Errorf("netsim: multicast flow needs receivers")
	}
	for _, r := range receivers {
		if !tree.Contains(r) {
			return nil, fmt.Errorf("netsim: receiver %d not in tree", r)
		}
	}
	f := &Flow{
		net:       n,
		id:        len(n.flows),
		src:       tree.Source,
		tree:      tree,
		receivers: append([]topology.NodeID(nil), receivers...),
		sender:    dcqcn.NewSender(params),
	}
	f.initRecv()
	n.flows = append(n.flows, f)
	return f, nil
}

func (f *Flow) initRecv() {
	f.recv = make(map[topology.NodeID]*recvState, len(f.receivers))
	for _, r := range f.receivers {
		f.recv[r] = &recvState{gotChunk: map[int]int64{}, doneChunk: map[int]bool{}, gotSeq: map[int64]bool{}}
	}
}

// OnChunk registers the completion callback (one registration per flow).
func (f *Flow) OnChunk(h ChunkHandler) { f.onChunk = h }

// Rate exposes the current DCQCN rate (telemetry and tests).
func (f *Flow) Rate() float64 { return f.sender.Rate() }

// Sender exposes the DCQCN state for ablation accounting.
func (f *Flow) Sender() *dcqcn.Sender { return f.sender }

// Send queues a chunk of the given size for transmission. Chunks are
// injected strictly in Send order.
func (f *Flow) Send(chunkID int, bytes int64) {
	if f.closed {
		panic("netsim: Send on closed flow")
	}
	if bytes <= 0 {
		panic(fmt.Sprintf("netsim: chunk %d has %d bytes", chunkID, bytes))
	}
	f.chunks = append(f.chunks, chunkState{id: chunkID, bytes: bytes})
	f.kick()
}

// Close stops the flow after the current frame; queued-but-uninjected
// bytes are dropped. Used by PEEL's two-stage refinement when the
// controller-optimized tree takes over mid-collective (§3.3).
func (f *Flow) Close() { f.closed = true }

// Closed reports whether Close was called.
func (f *Flow) Closed() bool { return f.closed }

func (f *Flow) kick() {
	if f.pacing || f.closed || f.nextChunk >= len(f.chunks) {
		return
	}
	f.pacing = true
	f.injectNext()
}

// injectNext emits one frame and reschedules itself at the paced rate.
// Injection defers while the host uplink queue is full (NIC line-rate
// arbitration across this host's QPs).
func (f *Flow) injectNext() { f.inject(false) }

// wake is the continuation a drained uplink invokes; it may inject even
// while other flows still wait (it holds the freed slot).
func (f *Flow) wake() { f.inject(true) }

func (f *Flow) inject(fromWake bool) {
	if f.closed || (f.nextChunk >= len(f.chunks) && len(f.repairQ) == 0) {
		f.pacing = false
		if fromWake {
			// The freed NIC slot must not be swallowed by a flow that was
			// closed while waiting: pass the wake along or the remaining
			// waiters sleep forever once the queue drains.
			if up := f.uplink(); up != nil {
				up.wakeNext()
			}
		}
		return
	}
	// NIC arbitration: a newly-pacing flow joins the waiter FIFO whenever
	// it is non-empty (not only when the queue is full) — otherwise a flow
	// whose pacing timer fires just before the drain-wakeup event at the
	// same tick would steal the freed slot every round and starve the
	// waiters. A woken flow owns the freed slot and bypasses the check.
	if up := f.uplink(); up != nil {
		full := up.qBytes >= f.net.Cfg.HostQueueFrames*f.net.Cfg.FrameBytes
		if full || (!fromWake && len(up.waiters) > 0) {
			up.waiters = append(up.waiters, f.wake)
			return
		}
	}
	var fr *frame
	var size int64
	if len(f.repairQ) > 0 {
		// Repairs share the paced injection path (and hence the NIC
		// arbitration and DCQCN pacing) with first transmissions.
		sf := f.repairQ[0]
		f.repairQ = f.repairQ[1:]
		size = sf.bytes
		fr = f.net.newFrame()
		*fr = frame{flow: f, chunkID: sf.chunkID, bytes: sf.bytes, hop: 0, at: f.src, seq: sf.seq}
		f.Retransmissions++
	} else {
		cs := f.chunks[f.nextChunk]
		size = f.net.Cfg.FrameBytes
		if rem := cs.bytes - f.offset; rem < size {
			size = rem
		}
		fr = f.net.newFrame()
		*fr = frame{flow: f, chunkID: cs.id, bytes: size, hop: 0, at: f.src, seq: f.nextSeq}
		f.nextSeq++
		// Every frame is retained for selective repeat: random loss needs
		// it from the start, and a link can fail at any later moment.
		f.sent = append(f.sent, sentFrame{seq: fr.seq, chunkID: fr.chunkID, bytes: fr.bytes})
		f.BytesInjected += size
		f.offset += size
		if f.offset >= cs.bytes {
			f.nextChunk++
			f.offset = 0
		}
	}
	f.firstHop(fr)
	f.sender.Tick(f.net.Engine.Now())
	if (f.net.Cfg.LossRate > 0 || f.net.faulty) && f.nextChunk >= len(f.chunks) {
		// All original frames injected: arm the selective-repeat repair
		// loop in case losses (random or link-failure) left holes.
		f.armRepairs()
	}
	gap := sim.Time(float64(size*8) / f.sender.Rate() * 1e12)
	if gap < sim.Picosecond {
		gap = sim.Picosecond
	}
	f.net.Engine.After(gap, f.injectNext)
}

// armRepairs schedules the selective-repeat repair scan if the flow can
// still be missing frames and no scan is already pending. The network
// calls it on every link-state transition; injection calls it once the
// last original frame is out.
func (f *Flow) armRepairs() {
	if f.repairs || f.closed || f.nextChunk < len(f.chunks) || f.Done() {
		return
	}
	f.repairs = true
	f.net.Engine.After(f.net.Cfg.RepairRTO, f.repairScan)
}

// repairScan finds frames some receiver still misses and queues them for
// paced retransmission, once per RTO, until every receiver is whole — the
// selective-repeat recovery the paper inherits from RDMA (§1 fn.1).
// Receiver hole maps stand in for the protocol's ACK/NACK bookkeeping;
// duplicates are discarded by sequence number on arrival. Repairs travel
// the original path or tree and share the sender's paced injection (NIC
// arbitration included), so they neither starve nor flood the fabric.
func (f *Flow) repairScan() {
	if f.closed || f.Done() {
		// Allow re-arming: pipelined relays queue further chunks after
		// the current ones complete, and those need repair too.
		f.repairs = false
		return
	}
	// A repair already queued or in flight must be given time to land
	// before the same frame is re-queued.
	now := f.net.Engine.Now()
	cooldown := 4 * f.net.Cfg.RepairRTO
	const maxQueued = 128
	for i := range f.sent {
		if len(f.repairQ) >= maxQueued {
			break
		}
		sf := &f.sent[i]
		if now-sf.lastRepair < cooldown && sf.lastRepair > 0 {
			continue
		}
		needed := false
		for _, rs := range f.recv {
			if !rs.gotSeq[sf.seq] {
				needed = true
				break
			}
		}
		if !needed {
			continue
		}
		sf.lastRepair = now
		f.repairQ = append(f.repairQ, *sf)
	}
	if len(f.repairQ) > 0 && !f.pacing {
		f.pacing = true
		f.injectNext()
	}
	f.net.Engine.After(f.net.Cfg.RepairRTO, f.repairScan)
}

// uplink returns the source host's first-hop channel (hosts have exactly
// one live uplink toward the fabric).
func (f *Flow) uplink() *channel {
	if f.path != nil {
		return f.net.Channel(f.src, f.path[1])
	}
	kids := f.tree.Children()[f.src]
	if len(kids) == 0 {
		return nil
	}
	return f.net.Channel(f.src, kids[0])
}

// firstHop places a fresh frame on the source host's uplink(s): the
// template frame rides to the first child, copies to the rest.
func (f *Flow) firstHop(fr *frame) {
	if f.path != nil {
		f.net.send(fr, f.path[0], f.path[1])
		return
	}
	kids := f.tree.Children()[f.src]
	if len(kids) == 0 {
		f.net.freeFrame(fr)
		return
	}
	for i := 1; i < len(kids); i++ {
		f.net.send(f.cloneFrame(fr), f.src, kids[i])
	}
	f.net.send(fr, f.src, kids[0])
}

func (f *Flow) cloneFrame(fr *frame) *frame {
	cp := f.net.newFrame()
	*cp = *fr
	return cp
}

// forward routes a frame onward from a switch.
func (f *Flow) forward(fr *frame, at topology.NodeID) {
	if f.path != nil {
		fr.hop++
		// Switches are interior path nodes, so hop+1 is always in range;
		// the checks below catch route/topology inconsistencies early.
		if fr.hop+1 >= len(f.path) || f.path[fr.hop] != at {
			panic(fmt.Sprintf("netsim: unicast frame off path: at %d, hop %d of %v", at, fr.hop, f.path))
		}
		f.net.send(fr, at, f.path[fr.hop+1])
		return
	}
	kids := f.tree.Children()[at]
	if len(kids) == 0 {
		f.net.freeFrame(fr)
		return // over-covered interior with no members below; discard
	}
	// Replicate: reuse fr for the first child, copy for the rest.
	for i := 1; i < len(kids); i++ {
		f.net.send(f.cloneFrame(fr), at, kids[i])
	}
	f.net.send(fr, at, kids[0])
}

// receive consumes a frame at a host: receiver bookkeeping, chunk
// completion callbacks, and CNP generation for ECN-marked frames.
func (f *Flow) receive(fr *frame, at topology.NodeID) {
	// The host consumes the frame on every path below. Its fields are
	// copied out and the frame recycled up front, because the onChunk
	// callback may synchronously inject new frames (relay pipelining) and
	// reuse this slot.
	chunkID, bytes, seq, ecn := fr.chunkID, fr.bytes, fr.seq, fr.ecn
	f.net.freeFrame(fr)
	rs, isReceiver := f.recv[at]
	if !isReceiver {
		// Over-covered host: the NIC discards the frame without a QP, so
		// no CNP is generated either (PEEL §3.2).
		return
	}
	if ecn {
		f.noteCongestion(rs)
	}
	if rs.gotSeq[seq] {
		return // duplicate repair copy (loss-rate or link-failure repair)
	}
	rs.gotSeq[seq] = true
	rs.gotChunk[chunkID] += bytes
	// Chunk size is known from the sender's queue; completion is when the
	// receiver holds all bytes of that chunk.
	want := f.chunkBytes(chunkID)
	if s := invariant.Active(); s != nil && want > 0 {
		// Past the per-seq de-dup above, accumulated bytes can never exceed
		// the chunk size — more means duplicate delivery leaked through.
		if rs.gotChunk[chunkID] <= want {
			f.net.overDeliveryCounter(s).Pass()
		} else {
			s.Violatef(invariant.NetOverDelivery,
				"host %d chunk %d holds %d bytes of %d", at, chunkID, rs.gotChunk[chunkID], want)
		}
	}
	if want > 0 && rs.gotChunk[chunkID] >= want && !rs.doneChunk[chunkID] {
		rs.doneChunk[chunkID] = true
		if f.onChunk != nil {
			f.onChunk(at, chunkID)
		}
	}
}

func (f *Flow) chunkBytes(chunkID int) int64 {
	for i := range f.chunks {
		if f.chunks[i].id == chunkID {
			return f.chunks[i].bytes
		}
	}
	return 0
}

// noteCongestion implements the receiver-side NP coalescing: at most one
// CNP per NPInterval per (flow, receiver), delivered to the sender after
// CNPDelay. Whether the sender honors every CNP or applies PEEL's guard
// timer is the DCQCN sender's configuration.
func (f *Flow) noteCongestion(rs *recvState) {
	now := f.net.Engine.Now()
	if rs.hasNP && now-rs.lastNP < f.net.Cfg.NPInterval {
		return
	}
	rs.hasNP = true
	rs.lastNP = now
	f.net.Engine.After(f.net.Cfg.CNPDelay, func() {
		f.sender.OnCNP(f.net.Engine.Now())
	})
}

// Done reports whether every receiver has completed every queued chunk.
func (f *Flow) Done() bool {
	if f.nextChunk < len(f.chunks) {
		return false
	}
	for _, rs := range f.recv {
		if len(rs.doneChunk) < len(f.chunks) {
			return false
		}
	}
	return true
}

// ReceivedBytes returns how many payload bytes the receiver has so far
// across all chunks (PEEL+programmable-cores uses it to find the resume
// offset when the refined tree takes over).
func (f *Flow) ReceivedBytes(receiver topology.NodeID) int64 {
	rs, ok := f.recv[receiver]
	if !ok {
		return 0
	}
	var total int64
	for _, b := range rs.gotChunk {
		total += b
	}
	return total
}
