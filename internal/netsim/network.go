package netsim

import (
	"fmt"
	"math/rand"

	"peel/internal/invariant"
	"peel/internal/sim"
	"peel/internal/telemetry"
	"peel/internal/topology"
)

// Network binds a topology to the event engine and owns every directed
// channel, switch buffer, and active flow.
type Network struct {
	G      *topology.Graph
	Engine *sim.Engine
	Cfg    Config

	chans   map[chanKey]*channel
	inbound [][]*channel // channels whose destination is this node
	nodes   []nodeState

	flows  []*Flow
	ecnRNG *rand.Rand
	// framePool is the frame free list. Frame ownership is linear — a
	// frame sits in exactly one queue or one in-flight closure at a time —
	// so every consumption point (host receive, drop, discard) recycles
	// its frame here and steady-state forwarding allocates no frames.
	framePool []*frame
	// framesLive counts frames allocated but not yet recycled; at quiesce
	// it must be zero (frame-conservation invariant).
	framesLive int64
	// suite/overDelivery cache the active invariant suite's pre-resolved
	// over-delivery counter for the per-frame receive path.
	suite        *invariant.Suite
	overDelivery invariant.Counter
	// tsink/tc likewise cache the active telemetry sink's pre-resolved
	// counters (see telHooks); disabled telemetry costs one atomic load.
	tsink *telemetry.Sink
	tc    telHooks
	// faulty latches once any link transition happened at runtime: it
	// widens the selective-repeat arming condition to cover link-failure
	// drops (not just random loss) without touching failure-free runs.
	faulty bool

	// TotalECNMarks counts marked frames fabric-wide (telemetry).
	TotalECNMarks uint64
	// PFCPauses counts pause assertions (telemetry).
	PFCPauses uint64
	// TotalDrops counts frames lost to the configured loss rate.
	TotalDrops uint64
	// PFCWatchdogFires counts forced resumes of switches stuck in pause —
	// the PFC-storm watchdog production fabrics deploy against circular
	// buffer dependencies.
	PFCWatchdogFires uint64
	// LinkDrops counts frames lost to failed links: queued frames flushed
	// when a link goes down, frames serialized onto a dead wire, and frames
	// enqueued toward a dead channel. Distinct from TotalDrops (random
	// loss): link drops are bursty and correlated. The sender's
	// selective-repeat loop re-sends them once a path exists again (after a
	// heal); outages that outlive the flow need the collective-layer
	// watchdog's tree repair.
	LinkDrops uint64
}

type chanKey struct{ from, to topology.NodeID }

type nodeState struct {
	bufBytes int64 // sum of egress queue bytes (switches only)
	paused   bool  // PFC asserted toward upstream
}

// channel is one direction of a link: a FIFO egress queue at `from`
// serializing toward `to`.
type channel struct {
	net      *Network
	from, to topology.NodeID
	queue    []*frame
	head     int
	qBytes   int64
	sending  bool

	// BytesSent accumulates serialized payload bytes (link utilization /
	// aggregate-bandwidth accounting for Fig. 1-style results).
	BytesSent  int64
	FramesSent int64

	// waiters are flows blocked on NIC backpressure (host uplinks only),
	// woken round-robin as frames drain.
	waiters []func()

	// maxQBytes is the queue-depth high-water mark (telemetry).
	maxQBytes int64

	// down mirrors the underlying link's failure state at runtime: a down
	// channel drops every frame offered to it instead of queueing.
	down      bool
	downSince sim.Time
	// dark marks an announced reconfiguration window (fabric retraining):
	// unlike down, a dark channel *defers* — frames queue normally but
	// serialization will not start until the window closes. The planned /
	// unplanned distinction lives exactly here: planned reconfiguration
	// pauses the wire, an unplanned one loses everything in flight.
	dark bool
	// Deferred counts frames that arrived while the channel was dark.
	Deferred int64
	// DownCount / DownTime / Drops are per-direction failure telemetry:
	// down transitions, accumulated down duration, and frames lost on this
	// channel to link failure.
	DownCount int64
	DownTime  sim.Time
	Drops     int64
}

// frame is one simulation quantum of one flow's traffic.
type frame struct {
	flow    *Flow
	chunkID int
	bytes   int64
	ecn     bool
	hop     int // unicast: index of the node the frame is currently at, within flow.path
	at      topology.NodeID
	seq     int64 // flow-scoped sequence number (loss recovery de-dup)
	pooled  bool  // true while the frame sits on the free list
}

// overDeliveryCounter returns the NetOverDelivery slot of suite s,
// re-resolving the cached counter only when the active suite changed.
func (n *Network) overDeliveryCounter(s *invariant.Suite) invariant.Counter {
	if s != n.suite {
		n.suite = s
		n.overDelivery = s.Counter(invariant.NetOverDelivery)
	}
	return n.overDelivery
}

// newFrame returns a zeroed frame from the free list (or a fresh one).
func (n *Network) newFrame() *frame {
	n.framesLive++
	if tc := n.tel(); tc != nil {
		tc.framesAllocated.Inc()
	}
	if len(n.framePool) == 0 {
		return &frame{}
	}
	f := n.framePool[len(n.framePool)-1]
	n.framePool = n.framePool[:len(n.framePool)-1]
	*f = frame{}
	return f
}

// freeFrame recycles a consumed frame. Callers must hold the frame's only
// reference (see framePool); recycling the same frame twice would alias
// two future allocations onto one struct, so it is reported and refused.
func (n *Network) freeFrame(f *frame) {
	if f.pooled {
		invariant.Active().Violatef(invariant.NetFrameRecycle,
			"frame (flow seq=%d chunk=%d at=%d) recycled twice", f.seq, f.chunkID, f.at)
		return
	}
	f.pooled = true
	n.framesLive--
	if tc := n.tel(); tc != nil {
		tc.framesConsumed.Inc()
	}
	n.framePool = append(n.framePool, f)
}

// New builds a Network over g. Every link gets a channel pair; channels of
// links failed at construction (or failing later — New subscribes to the
// graph's failure notifications) are marked down and drop all traffic, so
// links can fail and heal *while collectives run*. The config is validated
// first: a bad config is a construction bug and panics.
func New(g *topology.Graph, eng *sim.Engine, cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := &Network{
		G:       g,
		Engine:  eng,
		Cfg:     cfg,
		chans:   make(map[chanKey]*channel, 2*g.NumLinks()),
		inbound: make([][]*channel, g.NumNodes()),
		nodes:   make([]nodeState, g.NumNodes()),
		ecnRNG:  cfg.RNG(SaltECN),
	}
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(topology.LinkID(i))
		for _, dir := range [2][2]topology.NodeID{{l.A, l.B}, {l.B, l.A}} {
			ch := &channel{net: n, from: dir[0], to: dir[1], down: l.Failed}
			n.chans[chanKey{dir[0], dir[1]}] = ch
			n.inbound[dir[1]] = append(n.inbound[dir[1]], ch)
		}
	}
	g.OnFailureChange(n.onLinkStateChange)
	return n
}

// onLinkStateChange reacts to a runtime topology transition: both
// directional channels of the link go down (flushing their queues) or come
// back up.
func (n *Network) onLinkStateChange(id topology.LinkID, failed bool) {
	n.faulty = true
	l := n.G.Link(id)
	for _, dir := range [2][2]topology.NodeID{{l.A, l.B}, {l.B, l.A}} {
		if ch := n.chans[chanKey{dir[0], dir[1]}]; ch != nil {
			if failed {
				ch.markDown()
			} else {
				ch.markUp()
			}
		}
	}
	// Fail/heal transitions rewrite queue and buffer accounting (markDown
	// flushes queues and unwinds bufBytes); re-verify the books right here,
	// where a mistake would first appear.
	if s := invariant.Active(); s != nil {
		n.CheckAccounting(s)
	}
	// A transition creates (failure) or unblocks (heal) frame holes that
	// DCQCN pacing alone never fills: kick every unfinished flow's
	// selective-repeat scan so dropped frames are re-sent once a path
	// exists again. Failure-free runs never reach this, so their event
	// streams are untouched.
	if n.Cfg.RepairRTO <= 0 {
		return
	}
	for _, f := range n.flows {
		f.armRepairs()
	}
}

// markDown transitions the channel to the failed state: queued frames are
// flushed (they were in the dead link's egress queue), buffer accounting is
// unwound (possibly releasing PFC), and NIC-blocked senders are woken so
// their flows drain instead of waiting forever. A frame mid-serialization
// finishes serializing and is dropped at finishTx.
func (ch *channel) markDown() {
	if ch.down {
		return
	}
	n := ch.net
	ch.down = true
	ch.DownCount++
	ch.downSince = n.Engine.Now()

	start := ch.head
	if ch.sending {
		start++ // the in-flight frame is finishTx's to drop
	}
	fromSwitch := n.G.Node(ch.from).Kind.IsSwitch()
	flushed := int64(len(ch.queue) - start)
	for i := start; i < len(ch.queue); i++ {
		f := ch.queue[i]
		ch.qBytes -= f.bytes
		ch.Drops++
		n.LinkDrops++
		if fromSwitch {
			n.nodes[ch.from].bufBytes -= f.bytes
		}
		ch.queue[i] = nil
		n.freeFrame(f)
	}
	ch.queue = ch.queue[:start]
	if tc := n.tel(); tc != nil {
		tc.linkDrops.Add(flushed)
		tc.rec.Record(n.Engine.Now(), telemetry.KindLinkDown, int64(ch.from), int64(ch.to), flushed)
	}
	if fromSwitch {
		ns := &n.nodes[ch.from]
		if n.Cfg.PFCEnabled && ns.paused && ns.bufBytes <= n.Cfg.pfcResumeThreshold() {
			n.resume(ch.from)
		}
	}
	for _, w := range ch.waiters {
		n.Engine.After(0, w)
	}
	ch.waiters = nil
}

// markUp transitions the channel back to service and accounts the outage.
func (ch *channel) markUp() {
	if !ch.down {
		return
	}
	ch.down = false
	ch.DownTime += ch.net.Engine.Now() - ch.downSince
	n := ch.net
	if tc := n.tel(); tc != nil {
		tc.rec.Record(n.Engine.Now(), telemetry.KindLinkUp, int64(ch.from), int64(ch.to), 0)
	}
	ch.maybeSend()
}

// SetLinkDark marks both directions of a link dark (an announced OCS
// retraining window) or clears them. Clearing drains any frames deferred
// during the window. Implements fabric.Darkener.
func (n *Network) SetLinkDark(id topology.LinkID, dark bool) {
	l := n.G.Link(id)
	for _, dir := range [2][2]topology.NodeID{{l.A, l.B}, {l.B, l.A}} {
		if ch := n.chans[chanKey{dir[0], dir[1]}]; ch != nil && ch.dark != dark {
			ch.dark = dark
			if !dark {
				ch.maybeSend()
			}
		}
	}
}

// LinkDark reports whether a link's channels are currently dark.
func (n *Network) LinkDark(id topology.LinkID) bool {
	l := n.G.Link(id)
	ch := n.Channel(l.A, l.B)
	return ch != nil && ch.dark
}

// LinkDown reports whether a link's channels are currently down.
func (n *Network) LinkDown(id topology.LinkID) bool {
	l := n.G.Link(id)
	ch := n.Channel(l.A, l.B)
	return ch != nil && ch.down
}

// LinkDownStats returns a link's failure telemetry: down transitions and
// accumulated down time (per direction; both directions transition
// together, so the A→B channel is representative). An ongoing outage counts
// up to the current simulated time.
func (n *Network) LinkDownStats(id topology.LinkID) (downs int64, downTime sim.Time) {
	l := n.G.Link(id)
	ch := n.Channel(l.A, l.B)
	if ch == nil {
		return 0, 0
	}
	downs, downTime = ch.DownCount, ch.DownTime
	if ch.down {
		downTime += n.Engine.Now() - ch.downSince
	}
	return downs, downTime
}

// Channel returns the directed channel from→to, or nil if absent.
func (n *Network) Channel(from, to topology.NodeID) *channel {
	return n.chans[chanKey{from, to}]
}

// BytesOnLink returns the payload bytes serialized on both directions of
// the given link so far.
func (n *Network) BytesOnLink(id topology.LinkID) int64 {
	l := n.G.Link(id)
	var total int64
	if ch := n.Channel(l.A, l.B); ch != nil {
		total += ch.BytesSent
	}
	if ch := n.Channel(l.B, l.A); ch != nil {
		total += ch.BytesSent
	}
	return total
}

// TotalBytes returns the payload bytes serialized fabric-wide — the
// aggregate bandwidth consumption the paper's Fig. 1 compares.
func (n *Network) TotalBytes() int64 {
	var total int64
	for _, ch := range n.chans {
		total += ch.BytesSent
	}
	return total
}

// InFlight reports whether any channel still holds or serializes frames.
func (n *Network) InFlight() bool {
	for _, ch := range n.chans {
		if ch.sending || ch.head < len(ch.queue) {
			return true
		}
	}
	return false
}

// enqueue places a frame on the channel, applying ECN marking at switch
// egress queues and PFC accounting, and starts serialization if idle.
func (ch *channel) enqueue(f *frame) {
	n := ch.net
	if ch.down {
		// Dead link: the frame vanishes. The sender keeps pacing (it has no
		// link-layer feedback, as in real RoCE fabrics); recovery is the
		// collective layer's watchdog, not this queue.
		ch.Drops++
		n.LinkDrops++
		if tc := n.tel(); tc != nil {
			tc.linkDrops.Inc()
			tc.rec.Record(n.Engine.Now(), telemetry.KindFrameDrop, int64(ch.from), int64(ch.to), 1)
		}
		n.freeFrame(f)
		return
	}
	// ECN marking decision uses the queue depth seen on arrival (DCQCN's
	// egress marking), only at switch egress ports.
	if n.G.Node(ch.from).Kind.IsSwitch() {
		q := ch.qBytes
		cfg := &n.Cfg
		if q > cfg.ECNKmaxBytes {
			f.ecn = true
		} else if q > cfg.ECNKminBytes {
			p := cfg.ECNPmax * float64(q-cfg.ECNKminBytes) / float64(cfg.ECNKmaxBytes-cfg.ECNKminBytes)
			if n.ecnRNG.Float64() < p {
				f.ecn = true
			}
		}
		if f.ecn {
			n.TotalECNMarks++
		}
	}
	ch.queue = append(ch.queue, f)
	ch.qBytes += f.bytes
	if ch.qBytes > ch.maxQBytes {
		ch.maxQBytes = ch.qBytes
	}
	if tc := n.tel(); tc != nil {
		tc.framesEnqueued.Inc()
		if tc.rec.FrameEvents() {
			tc.rec.Record(n.Engine.Now(), telemetry.KindFrameEnqueue, int64(ch.from), int64(ch.to), f.bytes)
		}
	}
	if n.G.Node(ch.from).Kind.IsSwitch() {
		ns := &n.nodes[ch.from]
		ns.bufBytes += f.bytes
		if n.Cfg.PFCEnabled && !ns.paused && ns.bufBytes > n.Cfg.pfcPauseThreshold() {
			ns.paused = true
			n.PFCPauses++
			n.armPFCWatchdog(ch.from)
		}
	}
	if ch.dark {
		ch.Deferred++
		if tc := n.tel(); tc != nil {
			tc.darkDeferred.Inc()
		}
	}
	ch.maybeSend()
}

// maybeSend begins serializing the head frame if the channel is idle and
// PFC permits: a congested switch asserts pause toward its upstream
// neighbors, so a channel stops starting new frames while its
// *destination* has pause asserted.
func (ch *channel) maybeSend() {
	if ch.down || ch.dark || ch.sending || ch.head >= len(ch.queue) {
		return
	}
	n := ch.net
	if n.Cfg.PFCEnabled && n.G.Node(ch.to).Kind.IsSwitch() && n.nodes[ch.to].paused {
		return // destination asserted PFC pause
	}
	ch.sending = true
	f := ch.queue[ch.head]
	n.Engine.After(n.Cfg.txTime(f.bytes), func() { ch.finishTx(f) })
}

// finishTx completes serialization: the frame leaves the queue, buffer
// accounting updates (possibly releasing PFC), the frame propagates, and
// the next queued frame starts.
func (ch *channel) finishTx(f *frame) {
	n := ch.net
	ch.queue[ch.head] = nil
	ch.head++
	if ch.head > 64 && ch.head*2 > len(ch.queue) {
		ch.queue = append(ch.queue[:0], ch.queue[ch.head:]...)
		ch.head = 0
	}
	ch.qBytes -= f.bytes
	ch.sending = false
	if !ch.down {
		ch.BytesSent += f.bytes
		ch.FramesSent++
		if tc := n.tel(); tc != nil {
			tc.framesSent.Inc()
			if tc.rec.FrameEvents() {
				tc.rec.Record(n.Engine.Now(), telemetry.KindFrameDequeue, int64(ch.from), int64(ch.to), f.bytes)
			}
		}
	}

	if n.G.Node(ch.from).Kind.IsSwitch() {
		ns := &n.nodes[ch.from]
		ns.bufBytes -= f.bytes
		if n.Cfg.PFCEnabled && ns.paused && ns.bufBytes <= n.Cfg.pfcResumeThreshold() {
			n.resume(ch.from)
		}
	}

	if ch.down {
		// The link died under this frame: it was serialized onto a dead
		// wire and is lost.
		ch.Drops++
		n.LinkDrops++
		if tc := n.tel(); tc != nil {
			tc.linkDrops.Inc()
			tc.rec.Record(n.Engine.Now(), telemetry.KindFrameDrop, int64(ch.from), int64(ch.to), 1)
		}
		n.freeFrame(f)
	} else {
		to := ch.to
		n.Engine.After(n.Cfg.PropDelay, func() { n.deliver(f, to) })
	}
	ch.wakeNext()
	ch.maybeSend()
}

// resume clears a switch's pause and restarts its upstream channels.
func (n *Network) resume(sw topology.NodeID) {
	n.nodes[sw].paused = false
	for _, in := range n.inbound[sw] {
		in.maybeSend()
	}
}

// armPFCWatchdog schedules a stuck-pause check. Global per-switch pause
// (a simulator simplification of per-port PFC) can form circular buffer
// dependencies under extreme backlog; real fabrics break such PFC storms
// with a watchdog that force-resumes the port, and so does this model.
func (n *Network) armPFCWatchdog(sw topology.NodeID) {
	const watchdog = 5 * sim.Millisecond
	n.Engine.After(watchdog, func() {
		if n.nodes[sw].paused {
			n.PFCWatchdogFires++
			n.resume(sw)
		}
	})
}

// wakeNext hands the channel's freed slot to the next backpressured
// sender (round-robin FIFO).
func (ch *channel) wakeNext() {
	if len(ch.waiters) == 0 {
		return
	}
	w := ch.waiters[0]
	ch.waiters = ch.waiters[1:]
	ch.net.Engine.After(0, w)
}

// deliver hands a frame to its next node: hosts consume, switches forward
// (replicating for multicast) after the forwarding latency. Under a
// configured loss rate, the frame may vanish here instead (link error);
// the sender's repair loop retransmits it.
func (n *Network) deliver(f *frame, at topology.NodeID) {
	if n.Cfg.LossRate > 0 && n.ecnRNG.Float64() < n.Cfg.LossRate {
		n.TotalDrops++
		if tc := n.tel(); tc != nil {
			tc.lossDrops.Inc()
			tc.rec.Record(n.Engine.Now(), telemetry.KindLossDrop, int64(at), 0, f.bytes)
		}
		n.freeFrame(f)
		return
	}
	f.at = at
	node := n.G.Node(at)
	if node.Kind == topology.Host {
		if tc := n.tel(); tc != nil {
			tc.framesDelivered.Inc()
		}
		f.flow.receive(f, at)
		return
	}
	n.Engine.After(n.Cfg.SwitchLatency, func() { f.flow.forward(f, at) })
}

// send puts a fresh frame on the channel from→to; it panics on a missing
// channel, which indicates a tree/path inconsistent with the topology.
func (n *Network) send(f *frame, from, to topology.NodeID) {
	ch := n.Channel(from, to)
	if ch == nil {
		panic(fmt.Sprintf("netsim: no channel %d->%d", from, to))
	}
	ch.enqueue(f)
}

// Flows returns every flow ever created on this network (telemetry).
func (n *Network) Flows() []*Flow { return n.flows }
