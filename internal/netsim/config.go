// Package netsim is a discrete-event, frame-level datacenter network
// simulator: the substrate substituting for the paper's OMNeT++ setup
// (§4). It models store-and-forward switches with per-port egress queues,
// shared switch buffers, ECN marking, PFC pause/resume, DCQCN-paced
// senders, and native multicast replication, over fabrics from
// internal/topology.
//
// Granularity: traffic moves in frames of Config.FrameBytes. Experiments
// use frames coarser than the 1500 B MTU to bound event counts; this
// rescales absolute times identically for every scheme and preserves the
// ratios and crossovers the paper's figures report (see DESIGN.md).
package netsim

import (
	"fmt"
	"math/rand"

	"peel/internal/dcqcn"
	"peel/internal/sim"
)

// Config holds the fabric-wide simulation parameters. The defaults follow
// the paper's experimental setup (§4): 100 Gb/s links, NVLink at 900 GB/s,
// 12 MB switch buffers, ECN marking between 5 kB and 200 kB at 1%
// probability, PFC stop/resume at 11% free buffer with 5-MTU hysteresis.
type Config struct {
	LinkBps       float64  // per-direction link bandwidth
	NVLinkBps     float64  // intra-host GPU fabric bandwidth (bits/s)
	PropDelay     sim.Time // per-link propagation delay
	SwitchLatency sim.Time // per-hop forwarding latency
	FrameBytes    int64    // simulation frame (coarse MTU)
	BufferBytes   int64    // shared buffer per switch
	ECNKminBytes  int64    // ECN marking lower threshold (per egress queue)
	ECNKmaxBytes  int64    // ECN marking upper threshold
	ECNPmax       float64  // marking probability at Kmax
	PFCEnabled    bool
	PFCFreeFrac   float64  // pause when free buffer fraction drops below this
	NPInterval    sim.Time // receiver-side CNP coalescing interval
	CNPDelay      sim.Time // CNP propagation delay back to the sender
	// HostQueueFrames bounds the host NIC egress queue: a flow defers
	// injection while its uplink already holds this many frames, so
	// concurrent QPs arbitrate the NIC at line rate instead of dumping
	// their messages into an unbounded queue.
	HostQueueFrames int64
	// LossRate drops each delivered frame with this probability,
	// exercising the selective-repeat recovery the paper inherits from
	// RDMA (§1 fn.1). 0 disables loss.
	LossRate float64
	// RepairRTO is the sender's repair-scan interval under loss: once
	// injection finishes, missing frames are retransmitted each RTO until
	// every receiver is whole.
	RepairRTO sim.Time
	DCQCN     dcqcn.Params
	// Seed is the single reproducibility root for a simulation: the ECN
	// coin flips, loss draws, controller jitter, and chaos schedules all
	// derive their RNGs from it via RNG(salt).
	Seed      int64
	MaxEvents uint64 // safety budget for Engine.Run (0 = unlimited)
}

// DefaultConfig returns the paper's §4 parameters with a 4 KiB simulation
// frame (tests); experiments override FrameBytes per message size.
func DefaultConfig() Config {
	return Config{
		LinkBps:         100e9,
		NVLinkBps:       900e9 * 8, // 900 GB/s
		PropDelay:       600 * sim.Nanosecond,
		SwitchLatency:   300 * sim.Nanosecond,
		FrameBytes:      4096,
		BufferBytes:     12 << 20,
		ECNKminBytes:    5 << 10,
		ECNKmaxBytes:    200 << 10,
		ECNPmax:         0.01,
		PFCEnabled:      true,
		PFCFreeFrac:     0.11,
		NPInterval:      50 * sim.Microsecond,
		CNPDelay:        4 * sim.Microsecond,
		HostQueueFrames: 8,
		LossRate:        0,
		RepairRTO:       200 * sim.Microsecond,
		DCQCN:           dcqcn.DefaultParams(),
		Seed:            1,
		MaxEvents:       0,
	}
}

// pfcPauseThreshold returns the occupancy above which a switch asserts
// pause toward its upstream neighbors.
func (c Config) pfcPauseThreshold() int64 {
	return int64(float64(c.BufferBytes) * (1 - c.PFCFreeFrac))
}

// pfcResumeThreshold applies the 5-MTU hysteresis below the pause point.
func (c Config) pfcResumeThreshold() int64 {
	return c.pfcPauseThreshold() - 5*c.FrameBytes
}

// txTime returns the serialization time of n bytes at the link rate.
func (c Config) txTime(n int64) sim.Time {
	return sim.Time(float64(n*8) / c.LinkBps * 1e12)
}

// RNG derives a deterministic per-component substream from the single
// simulation seed: distinct salts give independent streams, and a whole run
// (loss, ECN, controller jitter, chaos schedule) reproduces from Cfg.Seed
// alone. Callers should pick a fixed salt per component.
func (c Config) RNG(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(c.Seed*1_000_003 + salt))
}

// Reserved RNG salts for the standard components, so independent layers do
// not collide on a substream.
const (
	SaltECN        = 7     // netsim's ECN/loss coin flips
	SaltController = 7919  // controller setup-latency jitter
	SaltChaos      = 31337 // chaos failure schedules
	SaltWorkload   = 104729
)

// Validate rejects configurations that would silently misbehave: negative
// or >1 probabilities, zero frame or buffer sizes, inverted ECN thresholds.
// netsim.New calls it and panics on error (a bad config is a construction
// bug, not a runtime condition); callers building configs from user input
// should call it directly first.
func (c Config) Validate() error {
	switch {
	case c.LinkBps <= 0:
		return fmt.Errorf("netsim: LinkBps %v must be positive", c.LinkBps)
	case c.NVLinkBps <= 0:
		return fmt.Errorf("netsim: NVLinkBps %v must be positive", c.NVLinkBps)
	case c.FrameBytes <= 0:
		return fmt.Errorf("netsim: FrameBytes %d must be positive", c.FrameBytes)
	case c.BufferBytes <= 0:
		return fmt.Errorf("netsim: BufferBytes %d must be positive", c.BufferBytes)
	case c.PropDelay < 0:
		return fmt.Errorf("netsim: PropDelay %v must be non-negative", c.PropDelay)
	case c.SwitchLatency < 0:
		return fmt.Errorf("netsim: SwitchLatency %v must be non-negative", c.SwitchLatency)
	case c.LossRate < 0 || c.LossRate > 1:
		return fmt.Errorf("netsim: LossRate %v outside [0,1]", c.LossRate)
	case c.LossRate > 0 && c.RepairRTO <= 0:
		return fmt.Errorf("netsim: LossRate %v needs a positive RepairRTO", c.LossRate)
	case c.ECNKminBytes < 0 || c.ECNKmaxBytes <= c.ECNKminBytes:
		return fmt.Errorf("netsim: ECN thresholds Kmin=%d Kmax=%d must satisfy 0 ≤ Kmin < Kmax", c.ECNKminBytes, c.ECNKmaxBytes)
	case c.ECNPmax < 0 || c.ECNPmax > 1:
		return fmt.Errorf("netsim: ECNPmax %v outside [0,1]", c.ECNPmax)
	case c.PFCEnabled && (c.PFCFreeFrac <= 0 || c.PFCFreeFrac >= 1):
		return fmt.Errorf("netsim: PFCFreeFrac %v outside (0,1)", c.PFCFreeFrac)
	case c.HostQueueFrames <= 0:
		return fmt.Errorf("netsim: HostQueueFrames %d must be positive", c.HostQueueFrames)
	}
	return nil
}
