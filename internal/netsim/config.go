// Package netsim is a discrete-event, frame-level datacenter network
// simulator: the substrate substituting for the paper's OMNeT++ setup
// (§4). It models store-and-forward switches with per-port egress queues,
// shared switch buffers, ECN marking, PFC pause/resume, DCQCN-paced
// senders, and native multicast replication, over fabrics from
// internal/topology.
//
// Granularity: traffic moves in frames of Config.FrameBytes. Experiments
// use frames coarser than the 1500 B MTU to bound event counts; this
// rescales absolute times identically for every scheme and preserves the
// ratios and crossovers the paper's figures report (see DESIGN.md).
package netsim

import (
	"math/rand"

	"peel/internal/dcqcn"
	"peel/internal/sim"
)

// Config holds the fabric-wide simulation parameters. The defaults follow
// the paper's experimental setup (§4): 100 Gb/s links, NVLink at 900 GB/s,
// 12 MB switch buffers, ECN marking between 5 kB and 200 kB at 1%
// probability, PFC stop/resume at 11% free buffer with 5-MTU hysteresis.
type Config struct {
	LinkBps       float64  // per-direction link bandwidth
	NVLinkBps     float64  // intra-host GPU fabric bandwidth (bits/s)
	PropDelay     sim.Time // per-link propagation delay
	SwitchLatency sim.Time // per-hop forwarding latency
	FrameBytes    int64    // simulation frame (coarse MTU)
	BufferBytes   int64    // shared buffer per switch
	ECNKminBytes  int64    // ECN marking lower threshold (per egress queue)
	ECNKmaxBytes  int64    // ECN marking upper threshold
	ECNPmax       float64  // marking probability at Kmax
	PFCEnabled    bool
	PFCFreeFrac   float64  // pause when free buffer fraction drops below this
	NPInterval    sim.Time // receiver-side CNP coalescing interval
	CNPDelay      sim.Time // CNP propagation delay back to the sender
	// HostQueueFrames bounds the host NIC egress queue: a flow defers
	// injection while its uplink already holds this many frames, so
	// concurrent QPs arbitrate the NIC at line rate instead of dumping
	// their messages into an unbounded queue.
	HostQueueFrames int64
	// LossRate drops each delivered frame with this probability,
	// exercising the selective-repeat recovery the paper inherits from
	// RDMA (§1 fn.1). 0 disables loss.
	LossRate float64
	// RepairRTO is the sender's repair-scan interval under loss: once
	// injection finishes, missing frames are retransmitted each RTO until
	// every receiver is whole.
	RepairRTO sim.Time
	DCQCN     dcqcn.Params
	Seed      int64
	MaxEvents uint64 // safety budget for Engine.Run (0 = unlimited)
}

// DefaultConfig returns the paper's §4 parameters with a 4 KiB simulation
// frame (tests); experiments override FrameBytes per message size.
func DefaultConfig() Config {
	return Config{
		LinkBps:         100e9,
		NVLinkBps:       900e9 * 8, // 900 GB/s
		PropDelay:       600 * sim.Nanosecond,
		SwitchLatency:   300 * sim.Nanosecond,
		FrameBytes:      4096,
		BufferBytes:     12 << 20,
		ECNKminBytes:    5 << 10,
		ECNKmaxBytes:    200 << 10,
		ECNPmax:         0.01,
		PFCEnabled:      true,
		PFCFreeFrac:     0.11,
		NPInterval:      50 * sim.Microsecond,
		CNPDelay:        4 * sim.Microsecond,
		HostQueueFrames: 8,
		LossRate:        0,
		RepairRTO:       200 * sim.Microsecond,
		DCQCN:           dcqcn.DefaultParams(),
		Seed:            1,
		MaxEvents:       0,
	}
}

// pfcPauseThreshold returns the occupancy above which a switch asserts
// pause toward its upstream neighbors.
func (c Config) pfcPauseThreshold() int64 {
	return int64(float64(c.BufferBytes) * (1 - c.PFCFreeFrac))
}

// pfcResumeThreshold applies the 5-MTU hysteresis below the pause point.
func (c Config) pfcResumeThreshold() int64 {
	return c.pfcPauseThreshold() - 5*c.FrameBytes
}

// txTime returns the serialization time of n bytes at the link rate.
func (c Config) txTime(n int64) sim.Time {
	return sim.Time(float64(n*8) / c.LinkBps * 1e12)
}

// newRNG derives a deterministic substream for a component.
func (c Config) newRNG(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(c.Seed*1_000_003 + salt))
}
