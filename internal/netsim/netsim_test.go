package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"peel/internal/routing"
	"peel/internal/sim"
	"peel/internal/steiner"
	"peel/internal/topology"
)

// rig bundles a network over a small leaf-spine for tests.
type rig struct {
	g   *topology.Graph
	eng *sim.Engine
	net *Network
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	g := topology.LeafSpine(2, 4, 4)
	eng := &sim.Engine{}
	return &rig{g: g, eng: eng, net: New(g, eng, cfg)}
}

func (r *rig) unicast(t *testing.T, src, dst topology.NodeID) *Flow {
	t.Helper()
	path := routing.ECMPPath(r.g, src, dst, uint64(src)<<20|uint64(dst))
	if path == nil {
		t.Fatalf("no path %d->%d", src, dst)
	}
	f, err := r.net.NewUnicastFlow(path, r.net.Cfg.DCQCN)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestUnicastDeliveryTiming(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PFCEnabled = false
	r := newRig(t, cfg)
	hosts := r.g.Hosts()
	src, dst := hosts[0], hosts[1] // same leaf: host→leaf→host, 2 links, 1 switch
	f := r.unicast(t, src, dst)
	var doneAt sim.Time
	f.OnChunk(func(recv topology.NodeID, chunk int) {
		if recv != dst || chunk != 0 {
			t.Errorf("unexpected completion %d/%d", recv, chunk)
		}
		doneAt = r.eng.Now()
	})
	const M = 1 << 20 // 1 MiB
	f.Send(0, M)
	if err := r.eng.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if !f.Done() {
		t.Fatal("flow not done")
	}
	// Pipelined store-and-forward lower bound: M/BW + 1 frame on the second
	// link + 2 props + 1 switch latency.
	lower := cfg.txTime(M) + cfg.txTime(cfg.FrameBytes) + 2*cfg.PropDelay + cfg.SwitchLatency
	if doneAt < lower {
		t.Fatalf("completed at %v, below physical lower bound %v", doneAt, lower)
	}
	if doneAt > lower+lower/5 {
		t.Fatalf("completed at %v, way above lower bound %v — unexpected stall", doneAt, lower)
	}
}

func TestUnicastCrossLeafPath(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, cfg)
	hosts := r.g.Hosts()
	src, dst := hosts[0], hosts[15] // different leaves: 4 links
	f := r.unicast(t, src, dst)
	done := false
	f.OnChunk(func(topology.NodeID, int) { done = true })
	f.Send(0, 64<<10)
	if err := r.eng.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("cross-leaf chunk not delivered")
	}
	// Conservation: each of the 4 path links carried exactly the message.
	var onLinks int64
	for i := 0; i < r.g.NumLinks(); i++ {
		onLinks += r.net.BytesOnLink(topology.LinkID(i))
	}
	if onLinks != 4*(64<<10) {
		t.Fatalf("total link bytes %d, want %d", onLinks, 4*(64<<10))
	}
}

func TestMulticastDeliversToAllReceivers(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, cfg)
	hosts := r.g.Hosts()
	src := hosts[0]
	dests := []topology.NodeID{hosts[2], hosts[5], hosts[9], hosts[13]}
	tree, err := steiner.SymmetricOptimal(r.g, src, dests)
	if err != nil {
		t.Fatal(err)
	}
	f, err := r.net.NewMulticastFlow(tree, dests, r.net.Cfg.DCQCN)
	if err != nil {
		t.Fatal(err)
	}
	got := map[topology.NodeID]bool{}
	f.OnChunk(func(recv topology.NodeID, chunk int) { got[recv] = true })
	const M = 256 << 10
	f.Send(0, M)
	if err := r.eng.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(dests) {
		t.Fatalf("delivered to %d receivers, want %d", len(got), len(dests))
	}
	if !f.Done() {
		t.Fatal("flow not done")
	}
	// Every tree link carries exactly M bytes; off-tree links carry zero.
	onTree := map[topology.LinkID]bool{}
	for _, l := range tree.Links(r.g) {
		onTree[l] = true
	}
	for i := 0; i < r.g.NumLinks(); i++ {
		id := topology.LinkID(i)
		b := r.net.BytesOnLink(id)
		if onTree[id] && b != M {
			t.Fatalf("tree link %d carried %d bytes, want %d", id, b, M)
		}
		if !onTree[id] && b != 0 {
			t.Fatalf("off-tree link %d carried %d bytes", id, b)
		}
	}
}

func TestMulticastOverCoverage(t *testing.T) {
	// A tree that includes one non-receiver host (PEEL over-coverage): the
	// host's link carries bytes, but completion does not wait for it and
	// it generates no CNPs.
	cfg := DefaultConfig()
	r := newRig(t, cfg)
	hosts := r.g.Hosts()
	src := hosts[0]
	member, extra := hosts[1], hosts[2]
	tree, err := steiner.SymmetricOptimal(r.g, src, []topology.NodeID{member, extra})
	if err != nil {
		t.Fatal(err)
	}
	f, err := r.net.NewMulticastFlow(tree, []topology.NodeID{member}, r.net.Cfg.DCQCN)
	if err != nil {
		t.Fatal(err)
	}
	f.Send(0, 64<<10)
	if err := r.eng.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if !f.Done() {
		t.Fatal("flow must complete without waiting for the over-covered host")
	}
	leaf := r.g.EdgeSwitchOf(extra)
	if b := r.net.Channel(leaf, extra).BytesSent; b != 64<<10 {
		t.Fatalf("over-covered host received %d bytes, want full message", b)
	}
	if f.ReceivedBytes(extra) != 0 {
		t.Fatal("non-receiver must not be tracked")
	}
}

func TestMulticastRejectsReceiverOutsideTree(t *testing.T) {
	r := newRig(t, DefaultConfig())
	hosts := r.g.Hosts()
	tree, err := steiner.SymmetricOptimal(r.g, hosts[0], []topology.NodeID{hosts[1]})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.net.NewMulticastFlow(tree, []topology.NodeID{hosts[5]}, r.net.Cfg.DCQCN); err == nil {
		t.Fatal("receiver outside tree must be rejected")
	}
}

func TestChunkPipeliningOrder(t *testing.T) {
	r := newRig(t, DefaultConfig())
	hosts := r.g.Hosts()
	f := r.unicast(t, hosts[0], hosts[4])
	var order []int
	f.OnChunk(func(_ topology.NodeID, c int) { order = append(order, c) })
	for c := 0; c < 8; c++ {
		f.Send(c, 32<<10)
	}
	if err := r.eng.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if len(order) != 8 {
		t.Fatalf("completed %d chunks, want 8", len(order))
	}
	for i, c := range order {
		if c != i {
			t.Fatalf("chunks completed out of order: %v", order)
		}
	}
}

func TestIncastTriggersECNAndRateControl(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, cfg)
	hosts := r.g.Hosts()
	// Three senders on the same leaf blast one destination host: the
	// leaf→host egress queue must build, mark ECN, and slow the senders.
	dst := hosts[3]
	var flows []*Flow
	for _, src := range []topology.NodeID{hosts[0], hosts[1], hosts[2]} {
		f := r.unicast(t, src, dst)
		f.Send(0, 8<<20)
		flows = append(flows, f)
	}
	if err := r.eng.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if r.net.TotalECNMarks == 0 {
		t.Fatal("incast produced no ECN marks")
	}
	reacted := false
	for _, f := range flows {
		if !f.Done() {
			t.Fatal("incast flow did not finish")
		}
		if f.Sender().Reactions() > 0 {
			reacted = true
		}
	}
	if !reacted {
		t.Fatal("no DCQCN reactions under 3:1 incast")
	}
}

func TestPFCPausesWithoutDeadlock(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BufferBytes = 64 << 10 // tiny shared buffer to force pauses
	cfg.ECNKmaxBytes = 48 << 10
	r := newRig(t, cfg)
	hosts := r.g.Hosts()
	dst := hosts[3]
	var flows []*Flow
	for _, src := range []topology.NodeID{hosts[0], hosts[1], hosts[4], hosts[8]} {
		f := r.unicast(t, src, dst)
		f.Send(0, 4<<20)
		flows = append(flows, f)
	}
	if err := r.eng.Run(80_000_000); err != nil {
		t.Fatal(err)
	}
	if r.net.PFCPauses == 0 {
		t.Fatal("tiny buffer produced no PFC pauses")
	}
	for _, f := range flows {
		if !f.Done() {
			t.Fatal("flow deadlocked under PFC")
		}
	}
	if r.net.InFlight() {
		t.Fatal("frames still in flight after drain")
	}
}

func TestGuardTimerReducesReactions(t *testing.T) {
	// One multicast to many receivers through a congested fabric: the
	// guarded sender must apply far fewer rate cuts than the unguarded
	// one under the same CNP pressure.
	run := func(guard bool) (reactions, ignored uint64, cct sim.Time) {
		// Single spine: all traffic shares the leaf0→spine up-link, so
		// marks land on the multicast frames *before* replication and fan
		// out to every receiver — the CNP implosion of §4.
		g := topology.LeafSpine(1, 4, 4)
		eng := &sim.Engine{}
		cfg := DefaultConfig()
		cfg.ECNKminBytes = 2 << 10 // aggressive marking to generate CNPs
		cfg.ECNKmaxBytes = 16 << 10
		cfg.ECNPmax = 0.5
		net := New(g, eng, cfg)
		hosts := g.Hosts()
		src := hosts[0]
		dests := hosts[1:]
		tree, err := steiner.SymmetricOptimal(g, src, dests)
		if err != nil {
			t.Fatal(err)
		}
		params := cfg.DCQCN
		if guard {
			params = params.WithGuard()
		}
		f, err := net.NewMulticastFlow(tree, dests, params)
		if err != nil {
			t.Fatal(err)
		}
		// Background flows sharing the source leaf's up-link.
		for _, bg := range [][2]topology.NodeID{{hosts[1], hosts[8]}, {hosts[2], hosts[12]}} {
			path := routing.ECMPPath(g, bg[0], bg[1], uint64(bg[0]))
			bf, err := net.NewUnicastFlow(path, cfg.DCQCN)
			if err != nil {
				t.Fatal(err)
			}
			bf.Send(0, 16<<20)
		}
		f.Send(0, 16<<20)
		if err := eng.Run(200_000_000); err != nil {
			t.Fatal(err)
		}
		if !f.Done() {
			t.Fatal("multicast flow unfinished")
		}
		return f.Sender().Reactions(), f.Sender().Ignored(), eng.Now()
	}
	rNo, _, _ := run(false)
	rYes, ignored, _ := run(true)
	if rNo == 0 {
		t.Fatal("unguarded run saw no reactions; congestion model broken")
	}
	if rYes >= rNo {
		t.Fatalf("guard did not reduce reactions: %d vs %d", rYes, rNo)
	}
	if ignored == 0 {
		t.Fatal("guard suppressed no CNPs despite fan-in")
	}
}

func TestCloseStopsInjection(t *testing.T) {
	r := newRig(t, DefaultConfig())
	hosts := r.g.Hosts()
	f := r.unicast(t, hosts[0], hosts[4])
	f.Send(0, 1<<20)
	// Close shortly after start: far fewer bytes must be injected.
	r.eng.At(5*sim.Microsecond, f.Close)
	if err := r.eng.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if f.BytesInjected >= 1<<20 {
		t.Fatalf("close did not stop injection: %d bytes", f.BytesInjected)
	}
	if f.Done() {
		t.Fatal("closed flow must not report done")
	}
}

func TestSendValidation(t *testing.T) {
	r := newRig(t, DefaultConfig())
	hosts := r.g.Hosts()
	if _, err := r.net.NewUnicastFlow([]topology.NodeID{hosts[0]}, r.net.Cfg.DCQCN); err == nil {
		t.Fatal("one-node path must be rejected")
	}
	leaf := r.g.NodesOfKind(topology.Leaf)[0]
	if _, err := r.net.NewUnicastFlow([]topology.NodeID{leaf, hosts[0]}, r.net.Cfg.DCQCN); err == nil {
		t.Fatal("non-host endpoint must be rejected")
	}
	f := r.unicast(t, hosts[0], hosts[4])
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("zero-byte chunk must panic")
			}
		}()
		f.Send(0, 0)
	}()
	f.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Send after Close must panic")
			}
		}()
		f.Send(1, 10)
	}()
}

func TestTelemetrySnapshot(t *testing.T) {
	r := newRig(t, DefaultConfig())
	hosts := r.g.Hosts()
	f := r.unicast(t, hosts[0], hosts[15]) // crosses the spine tier
	f.Send(0, 256<<10)
	if err := r.eng.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	tel := r.net.Telemetry()
	if tel.TierBytes["host-leaf"] != 2*(256<<10) {
		t.Fatalf("host-leaf bytes=%d want %d", tel.TierBytes["host-leaf"], 2*(256<<10))
	}
	if tel.TierBytes["leaf-spine"] != 2*(256<<10) {
		t.Fatalf("leaf-spine bytes=%d want %d", tel.TierBytes["leaf-spine"], 2*(256<<10))
	}
	if tel.MaxQueueBytes <= 0 {
		t.Fatal("no queue high-water mark recorded")
	}
	if tel.HotLink < 0 || tel.HotLinkBytes < 256<<10 {
		t.Fatalf("hot link not identified: %+v", tel)
	}
	if tel.String() == "" {
		t.Fatal("empty telemetry string")
	}
	// Utilization of the source uplink is positive and ≤ 1.
	u := r.net.UtilizationOf(hosts[0], r.g.EdgeSwitchOf(hosts[0]))
	if u <= 0 || u > 1.0001 {
		t.Fatalf("utilization=%v", u)
	}
	if r.net.UtilizationOf(hosts[0], hosts[15]) != 0 {
		t.Fatal("nonexistent channel must report zero utilization")
	}
}

// Property: byte conservation. For any random set of loss-free unicast
// flows, the bytes serialized on all links equal the sum over flows of
// message × path length, and every receiver holds exactly its message.
func TestQuickByteConservation(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := topology.LeafSpine(3, 4, 3)
		eng := &sim.Engine{}
		net := New(g, eng, DefaultConfig())
		hosts := g.Hosts()
		n := 1 + int(nRaw)%6
		var expect int64
		type fd struct {
			flow *Flow
			dst  topology.NodeID
			msg  int64
		}
		var flows []fd
		for i := 0; i < n; i++ {
			src := hosts[rng.Intn(len(hosts))]
			dst := hosts[rng.Intn(len(hosts))]
			if src == dst {
				continue
			}
			path := routing.ECMPPath(g, src, dst, uint64(seed)+uint64(i))
			fl, err := net.NewUnicastFlow(path, net.Cfg.DCQCN)
			if err != nil {
				return false
			}
			msg := int64(1+rng.Intn(64)) << 10
			fl.Send(0, msg)
			expect += msg * int64(len(path)-1)
			flows = append(flows, fd{fl, dst, msg})
		}
		if err := eng.Run(50_000_000); err != nil {
			return false
		}
		var total int64
		for i := 0; i < g.NumLinks(); i++ {
			total += net.BytesOnLink(topology.LinkID(i))
		}
		if total != expect {
			return false
		}
		for _, x := range flows {
			if !x.flow.Done() || x.flow.ReceivedBytes(x.dst) != x.msg {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
