// Package prefix implements PEEL's hierarchical power-of-two cover sets
// (paper §3.2): the deploy-once, touch-never data plane that replaces
// per-group multicast entries with a fixed set of CIDR-style prefix rules.
//
// Every ToR in a pod gets an m = log₂(k/2)-bit identifier. An aggregation
// switch pre-installs one forwarding entry per power-of-two aligned block
// of that identifier space — 2^(m+1)−1 = k−1 entries total — and packets
// carry a single ⟨prefix value, prefix length⟩ tuple selecting one of
// them. Group membership therefore costs zero switch updates and
// O(log k) header bits.
package prefix

import (
	"fmt"
	"math/bits"
)

// Prefix is one power-of-two aligned block of the identifier space:
// all IDs whose top Len bits equal Value. Len ranges 0 (everything)
// through m (a single identifier).
type Prefix struct {
	Value uint32 // left-aligned within m bits: the block starts at Value<<(m-Len)
	Len   uint8
}

// Block returns the half-open identifier interval [lo, hi) the prefix
// covers in an m-bit space.
func (p Prefix) Block(m int) (lo, hi uint32) {
	width := uint32(1) << (m - int(p.Len))
	lo = p.Value << (m - int(p.Len))
	return lo, lo + width
}

// Size returns the number of identifiers covered in an m-bit space.
func (p Prefix) Size(m int) int { return 1 << (m - int(p.Len)) }

// Covers reports whether identifier id falls in the prefix's block.
func (p Prefix) Covers(m int, id uint32) bool {
	lo, hi := p.Block(m)
	return id >= lo && id < hi
}

// String renders the prefix in the paper's "1**/1" style for an m-bit
// space (String2 binds m via Formatter below; plain String uses len+value).
func (p Prefix) String() string { return fmt.Sprintf("%b/%d", p.Value, p.Len) }

// Format renders the prefix with trailing wildcard stars, e.g. "01*" for
// m=3, value=0b01, len=2.
func (p Prefix) Format(m int) string {
	s := make([]byte, m)
	for i := 0; i < m; i++ {
		if i < int(p.Len) {
			bit := (p.Value >> (int(p.Len) - 1 - i)) & 1
			s[i] = '0' + byte(bit)
		} else {
			s[i] = '*'
		}
	}
	if m == 0 {
		return "*"
	}
	return string(s)
}

// Space describes an identifier space of m bits (2^m identifiers), e.g.
// the ToRs of one pod in a k-ary fat-tree (m = log₂(k/2)) or the hosts
// under one ToR.
type Space struct{ M int }

// SpaceForFanout returns the identifier space for n identifiers; n must be
// a power of two (Clos tiers always are).
func SpaceForFanout(n int) (Space, error) {
	if n <= 0 || n&(n-1) != 0 {
		return Space{}, fmt.Errorf("prefix: fan-out %d is not a power of two", n)
	}
	return Space{M: bits.TrailingZeros32(uint32(n))}, nil
}

// Universe returns the number of identifiers, 2^m.
func (s Space) Universe() int { return 1 << s.M }

// NumRules returns the pre-installed rule count: 2^(m+1)−1, i.e. k−1 for a
// pod of k/2 ToRs in a k-ary fat-tree — the paper's headline linear state.
func (s Space) NumRules() int { return 2*s.Universe() - 1 }

// AllRules enumerates every pre-installed prefix, coarsest first. The
// result has exactly NumRules entries.
func (s Space) AllRules() []Prefix {
	out := make([]Prefix, 0, s.NumRules())
	for l := 0; l <= s.M; l++ {
		for v := uint32(0); v < 1<<l; v++ {
			out = append(out, Prefix{Value: v, Len: uint8(l)})
		}
	}
	return out
}

// ExactCover returns the minimal set of power-of-two aligned prefixes
// whose union is exactly the given identifier set — the "outermost
// complete sub-trees" of the paper's trie example (§3.2). IDs outside the
// space are rejected. The result is sorted by block start and the prefixes
// are pairwise disjoint.
//
// The sender emits one packet per returned prefix.
func (s Space) ExactCover(ids []uint32) ([]Prefix, error) {
	present := make([]bool, s.Universe())
	for _, id := range ids {
		if int(id) >= s.Universe() {
			return nil, fmt.Errorf("prefix: id %d outside %d-bit space", id, s.M)
		}
		present[id] = true
	}
	var out []Prefix
	var walk func(value uint32, l int) bool // returns true if subtree fully present
	walk = func(value uint32, l int) bool {
		if l == s.M {
			return present[value]
		}
		left := walk(value<<1, l+1)
		right := walk(value<<1|1, l+1)
		if left && right {
			return true
		}
		if left {
			out = append(out, Prefix{Value: value << 1, Len: uint8(l + 1)})
		}
		if right {
			out = append(out, Prefix{Value: value<<1 | 1, Len: uint8(l + 1)})
		}
		return false
	}
	if walk(0, 0) {
		out = append(out, Prefix{Value: 0, Len: 0})
	}
	sortPrefixes(s.M, out)
	return out, nil
}

// BudgetedCover returns at most maxPrefixes prefixes covering a superset
// of ids, minimizing over-coverage. It starts from the exact cover and
// repeatedly merges the pair of blocks whose common ancestor adds the
// fewest redundant identifiers — the adaptive-prefix-packing direction the
// paper's §3.4 ("resource fragmentation") sketches. maxPrefixes < 1 is an
// error. Over-covered identifiers receive and discard redundant packets.
func (s Space) BudgetedCover(ids []uint32, maxPrefixes int) ([]Prefix, error) {
	if maxPrefixes < 1 {
		return nil, fmt.Errorf("prefix: budget must be >= 1, got %d", maxPrefixes)
	}
	cover, err := s.ExactCover(ids)
	if err != nil {
		return nil, err
	}
	for len(cover) > maxPrefixes {
		// Find the merge (replacing a set of blocks with their lowest
		// common ancestor prefix) that adds the least over-coverage.
		// Candidate ancestors: every proper prefix of every cover entry.
		bestCost := -1
		var bestAnc Prefix
		for _, c := range cover {
			for l := int(c.Len) - 1; l >= 0; l-- {
				anc := Prefix{Value: c.Value >> (int(c.Len) - l), Len: uint8(l)}
				covered, absorbed := 0, 0
				for _, o := range cover {
					if ancestorOf(anc, o) {
						absorbed++
						covered += o.Size(s.M)
					}
				}
				if absorbed < 2 {
					continue // merging one block gains nothing
				}
				cost := anc.Size(s.M) - covered
				if bestCost == -1 || cost < bestCost ||
					(cost == bestCost && anc.Size(s.M) < bestAnc.Size(s.M)) {
					bestCost, bestAnc = cost, anc
				}
			}
		}
		if bestCost == -1 {
			break // single block left; cannot shrink further
		}
		next := cover[:0]
		for _, o := range cover {
			if !ancestorOf(bestAnc, o) {
				next = append(next, o)
			}
		}
		cover = append(next, bestAnc)
		sortPrefixes(s.M, cover)
	}
	return cover, nil
}

// ancestorOf reports whether a's block contains o's block (a is a shorter
// or equal prefix of o).
func ancestorOf(a, o Prefix) bool {
	if a.Len > o.Len {
		return false
	}
	return o.Value>>(o.Len-a.Len) == a.Value
}

// CoveredIDs expands a prefix list to the identifier set it reaches.
func (s Space) CoveredIDs(ps []Prefix) []uint32 {
	var out []uint32
	for _, p := range ps {
		lo, hi := p.Block(s.M)
		for id := lo; id < hi; id++ {
			out = append(out, id)
		}
	}
	return out
}

// Redundancy returns how many identifiers the prefix list covers beyond
// the requested set — the redundant-packet count PEEL's refinement stage
// (§3.3) and the fragmentation study (§3.4) care about.
func (s Space) Redundancy(ps []Prefix, ids []uint32) int {
	want := map[uint32]bool{}
	for _, id := range ids {
		want[id] = true
	}
	extra := 0
	for _, id := range s.CoveredIDs(ps) {
		if !want[id] {
			extra++
		}
	}
	return extra
}

func sortPrefixes(m int, ps []Prefix) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0; j-- {
			a, _ := ps[j-1].Block(m)
			b, _ := ps[j].Block(m)
			if b < a {
				ps[j-1], ps[j] = ps[j], ps[j-1]
			} else {
				break
			}
		}
	}
}
