package prefix

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestPaperExampleCover(t *testing.T) {
	// §3.2: 8-ary pod, ToRs 000–111, receivers {010,011,100,101,110,111}.
	// PEEL selects 1** (four ToRs) and 01* (two ToRs).
	s := Space{M: 3}
	cover, err := s.ExactCover([]uint32{0b010, 0b011, 0b100, 0b101, 0b110, 0b111})
	if err != nil {
		t.Fatal(err)
	}
	want := []Prefix{{Value: 0b01, Len: 2}, {Value: 0b1, Len: 1}}
	if !reflect.DeepEqual(cover, want) {
		t.Fatalf("cover=%v want %v", cover, want)
	}
	if got := cover[1].Format(3); got != "1**" {
		t.Errorf("Format=%q want 1**", got)
	}
	if got := cover[0].Format(3); got != "01*" {
		t.Errorf("Format=%q want 01*", got)
	}
}

func TestExactCoverEdgeCases(t *testing.T) {
	s := Space{M: 3}
	// Empty set → empty cover.
	c, err := s.ExactCover(nil)
	if err != nil || len(c) != 0 {
		t.Fatalf("empty: %v %v", c, err)
	}
	// Full set → the single /0 rule.
	all := make([]uint32, 8)
	for i := range all {
		all[i] = uint32(i)
	}
	c, err = s.ExactCover(all)
	if err != nil || len(c) != 1 || c[0].Len != 0 {
		t.Fatalf("full: %v %v", c, err)
	}
	// Single id → one /m rule.
	c, err = s.ExactCover([]uint32{5})
	if err != nil || len(c) != 1 || c[0] != (Prefix{Value: 5, Len: 3}) {
		t.Fatalf("single: %v %v", c, err)
	}
	// Out of range rejected.
	if _, err := s.ExactCover([]uint32{8}); err == nil {
		t.Fatal("expected out-of-range error")
	}
	// Duplicates tolerated.
	c, err = s.ExactCover([]uint32{1, 1, 1})
	if err != nil || len(c) != 1 {
		t.Fatalf("dups: %v %v", c, err)
	}
}

func TestExactCoverWorstCaseAlternating(t *testing.T) {
	// Alternating IDs admit no aggregation: 2^(m-1) singleton prefixes.
	s := Space{M: 4}
	var ids []uint32
	for i := uint32(0); i < 16; i += 2 {
		ids = append(ids, i)
	}
	c, err := s.ExactCover(ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 8 {
		t.Fatalf("alternating cover has %d prefixes, want 8", len(c))
	}
	for _, p := range c {
		if int(p.Len) != 4 {
			t.Fatalf("expected singleton prefixes, got %v", p)
		}
	}
}

func coverIsExact(s Space, ids []uint32, c []Prefix) bool {
	want := map[uint32]bool{}
	for _, id := range ids {
		want[id] = true
	}
	got := map[uint32]bool{}
	for _, id := range s.CoveredIDs(c) {
		if got[id] {
			return false // overlapping prefixes
		}
		got[id] = true
	}
	return reflect.DeepEqual(want, got)
}

func TestQuickExactCoverIsExactAndMinimal(t *testing.T) {
	f := func(mask uint16, mRaw uint8) bool {
		m := 1 + int(mRaw)%4 // 1..4 bits
		s := Space{M: m}
		var ids []uint32
		for i := 0; i < s.Universe(); i++ {
			if mask&(1<<i) != 0 {
				ids = append(ids, uint32(i))
			}
		}
		c, err := s.ExactCover(ids)
		if err != nil {
			return false
		}
		if !coverIsExact(s, ids, c) {
			return false
		}
		// Minimality among aligned covers: no two sibling prefixes may
		// both appear (they would merge), which characterizes the unique
		// minimal trie cover.
		seen := map[Prefix]bool{}
		for _, p := range c {
			seen[p] = true
		}
		for _, p := range c {
			if p.Len == 0 {
				continue
			}
			sib := Prefix{Value: p.Value ^ 1, Len: p.Len}
			if seen[sib] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBudgetedCover(t *testing.T) {
	s := Space{M: 3}
	ids := []uint32{0, 2, 3, 5} // exact cover: 000, 01*, 101 → 3 prefixes
	exact, err := s.ExactCover(ids)
	if err != nil || len(exact) != 3 {
		t.Fatalf("exact=%v err=%v", exact, err)
	}
	for budget := 3; budget >= 1; budget-- {
		c, err := s.BudgetedCover(ids, budget)
		if err != nil {
			t.Fatal(err)
		}
		if len(c) > budget {
			t.Fatalf("budget %d: got %d prefixes", budget, len(c))
		}
		// Must still cover all requested ids.
		covered := map[uint32]bool{}
		for _, id := range s.CoveredIDs(c) {
			covered[id] = true
		}
		for _, id := range ids {
			if !covered[id] {
				t.Fatalf("budget %d: id %d uncovered", budget, id)
			}
		}
	}
	// Budget 1 must be a single block with minimal over-coverage (here /0,
	// redundancy 4).
	c, _ := s.BudgetedCover(ids, 1)
	if len(c) != 1 {
		t.Fatalf("budget 1: %v", c)
	}
	if r := s.Redundancy(c, ids); r != 4 {
		t.Fatalf("budget-1 redundancy=%d want 4", r)
	}
	// Budget 2 should merge {000,01*} into 0** (redundancy 1), keeping 101.
	c, _ = s.BudgetedCover(ids, 2)
	if r := s.Redundancy(c, ids); r != 1 {
		t.Fatalf("budget-2 redundancy=%d want 1 (got cover %v)", r, c)
	}
	if _, err := s.BudgetedCover(ids, 0); err == nil {
		t.Fatal("budget 0 must error")
	}
}

func TestQuickBudgetedCoverInvariants(t *testing.T) {
	f := func(mask uint16, budgetRaw uint8) bool {
		s := Space{M: 4}
		var ids []uint32
		for i := 0; i < 16; i++ {
			if mask&(1<<i) != 0 {
				ids = append(ids, uint32(i))
			}
		}
		if len(ids) == 0 {
			return true
		}
		budget := 1 + int(budgetRaw)%8
		c, err := s.BudgetedCover(ids, budget)
		if err != nil || len(c) > budget {
			return false
		}
		covered := map[uint32]bool{}
		for _, id := range s.CoveredIDs(c) {
			covered[id] = true
		}
		for _, id := range ids {
			if !covered[id] {
				return false
			}
		}
		// Budgeted redundancy must never beat the exact cover's (zero).
		exact, _ := s.ExactCover(ids)
		if len(exact) <= budget {
			// With budget ≥ exact size the answer must BE the exact cover.
			return s.Redundancy(c, ids) == 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRuleCountsMatchPaper(t *testing.T) {
	// §3.2: k−1 entries per aggregation switch; 63 for k=64, 127 for k=128.
	for _, k := range []int{8, 16, 32, 64, 128} {
		s, err := SpaceForFanout(k / 2)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.NumRules(); got != k-1 {
			t.Errorf("k=%d: rules=%d want %d", k, got, k-1)
		}
	}
	// The naive comparison: >4×10⁹ for k=64.
	if n := NaiveGroupEntries(64); n < 4e9 || n > 5e9 {
		t.Errorf("naive entries for k=64 = %g, want ≈4.3e9", n)
	}
}

func TestHeaderSizesMatchPaper(t *testing.T) {
	// §3.2: header well under 8 B even for k=128.
	for _, k := range []int{8, 16, 32, 64, 128} {
		if b := HeaderBytes(k); b >= 8 {
			t.Errorf("k=%d: header %d B, paper promises <8 B", k, b)
		}
	}
	// k=128: m=6 → tuple = 6 + ceil(log2(7)) = 9 bits; two tiers = 18 bits = 3 B.
	if got := HeaderBits(128); got != 18 {
		t.Errorf("HeaderBits(128)=%d want 18", got)
	}
	if got := HeaderBytes(128); got != 3 {
		t.Errorf("HeaderBytes(128)=%d want 3", got)
	}
}

func TestRuleTableMatchesBlocks(t *testing.T) {
	s := Space{M: 3}
	rt, err := NewRuleTable(s)
	if err != nil {
		t.Fatal(err)
	}
	if rt.NumEntries() != 15 { // k=16 ⇒ k−1
		t.Fatalf("entries=%d want 15", rt.NumEntries())
	}
	ports, err := rt.MatchPorts(Prefix{Value: 0b1, Len: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ports, []int{4, 5, 6, 7}) {
		t.Fatalf("1** ports=%v", ports)
	}
	ports, err = rt.MatchPorts(Prefix{Value: 0b01, Len: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ports, []int{2, 3}) {
		t.Fatalf("01* ports=%v", ports)
	}
	if _, err := rt.Match(Prefix{Value: 9, Len: 2}); err == nil {
		t.Fatal("oversized value must error")
	}
	if _, err := rt.Match(Prefix{Value: 0, Len: 7}); err == nil {
		t.Fatal("oversized length must error")
	}
}

func TestRuleTableRejectsHugeSpaces(t *testing.T) {
	if _, err := NewRuleTable(Space{M: 7}); err == nil {
		t.Fatal("m=7 (k=256) must be rejected by the 64-bit bitmap table")
	}
}

func TestQuickRuleTableAgreesWithPrefixCovers(t *testing.T) {
	s := Space{M: 4}
	rt, err := NewRuleTable(s)
	if err != nil {
		t.Fatal(err)
	}
	f := func(vRaw uint8, lRaw uint8) bool {
		l := int(lRaw) % 5
		v := uint32(vRaw) % (1 << l)
		p := Prefix{Value: v, Len: uint8(l)}
		ports, err := rt.MatchPorts(p)
		if err != nil {
			return false
		}
		lo, hi := p.Block(s.M)
		if len(ports) != int(hi-lo) {
			return false
		}
		for i, pt := range ports {
			if uint32(pt) != lo+uint32(i) {
				return false
			}
			if !p.Covers(s.M, uint32(pt)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	c := Codec{M: 3}
	h := Header{Pod: 2, ToR: Prefix{Value: 0b1, Len: 1}, Host: Prefix{Value: 0b010, Len: 3}}
	b, err := c.Encode(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != c.EncodedLen() {
		t.Fatalf("encoded %d bytes want %d", len(b), c.EncodedLen())
	}
	got, err := c.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.ToR != h.ToR || got.Host != h.Host {
		t.Fatalf("round trip: got %+v want %+v", got, h)
	}
}

func TestCodecErrors(t *testing.T) {
	c := Codec{M: 3}
	if _, err := c.Encode(Header{ToR: Prefix{Value: 9, Len: 2}}); err == nil {
		t.Fatal("bad value must fail encode")
	}
	if _, err := c.Encode(Header{ToR: Prefix{Len: 5}}); err == nil {
		t.Fatal("bad length must fail encode")
	}
	if _, err := c.Decode([]byte{}); err == nil {
		t.Fatal("short buffer must fail decode")
	}
}

func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(mRaw, tv, tl, hv, hl uint8) bool {
		m := 1 + int(mRaw)%6
		c := Codec{M: m}
		tlen := int(tl) % (m + 1)
		hlen := int(hl) % (m + 1)
		h := Header{
			ToR:  Prefix{Value: uint32(tv) % (1 << tlen), Len: uint8(tlen)},
			Host: Prefix{Value: uint32(hv) % (1 << hlen), Len: uint8(hlen)},
		}
		b, err := c.Encode(h)
		if err != nil {
			return false
		}
		got, err := c.Decode(b)
		if err != nil {
			return false
		}
		return got.ToR == h.ToR && got.Host == h.Host
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceForFanout(t *testing.T) {
	s, err := SpaceForFanout(32)
	if err != nil || s.M != 5 {
		t.Fatalf("fanout 32: %+v %v", s, err)
	}
	for _, bad := range []int{0, -4, 3, 12} {
		if _, err := SpaceForFanout(bad); err == nil {
			t.Errorf("fanout %d must fail", bad)
		}
	}
}

func TestRedundancyRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := Space{M: 5}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(31)
		perm := rng.Perm(32)
		ids := make([]uint32, n)
		for i := 0; i < n; i++ {
			ids[i] = uint32(perm[i])
		}
		c, err := s.ExactCover(ids)
		if err != nil {
			t.Fatal(err)
		}
		if r := s.Redundancy(c, ids); r != 0 {
			t.Fatalf("exact cover has redundancy %d", r)
		}
		covered := s.CoveredIDs(c)
		sort.Slice(covered, func(i, j int) bool { return covered[i] < covered[j] })
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		if !reflect.DeepEqual(covered, ids) {
			t.Fatalf("cover mismatch: %v vs %v", covered, ids)
		}
	}
}
