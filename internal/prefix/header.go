package prefix

import (
	"fmt"
	"math/bits"
)

// Header is the per-packet PEEL tuple (§3.2): the ⟨prefix value, prefix
// length⟩ selecting one pre-installed rule at the replication tier, plus
// an optional second tuple for the next tier down (ToR→host fan-out —
// "the same principles apply to other downward segments"). Pod identifies
// the destination pod the tuple applies to; it rides in the packet's
// ordinary destination address in a real deployment and costs no extra
// header bits, so it is excluded from the size accounting.
type Header struct {
	Pod  int
	ToR  Prefix // selects the agg→ToR replication block
	Host Prefix // selects the ToR→host replication block
}

// TupleBits returns the encoded size in bits of one ⟨prefix,len⟩ tuple for
// an m-bit identifier space: m bits of value + ⌈log₂(m+1)⌉ bits of length
// (the paper's formula with m = log₂(k/2)).
func TupleBits(m int) int {
	return m + ceilLog2(m+1)
}

// HeaderBits returns the total PEEL header size in bits for a k-ary
// fat-tree carrying both the ToR-tier and host-tier tuples. Both tiers
// have m = log₂(k/2) bits in a canonical fat-tree.
func HeaderBits(k int) int {
	m := ceilLog2(k / 2)
	return 2 * TupleBits(m)
}

// HeaderBytes returns HeaderBits rounded up to whole bytes. The paper's
// claim: "well under 8 B even for k=128".
func HeaderBytes(k int) int { return (HeaderBits(k) + 7) / 8 }

func ceilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Codec encodes and decodes Header tuples for a fixed identifier space.
// Encoding is big-endian bit packing: [len | value] per tuple, ToR tuple
// first. A real NIC would place these in an RDMA extension header.
type Codec struct {
	M int // identifier bits per tier
}

// EncodedLen returns the byte length of an encoded two-tuple header.
func (c Codec) EncodedLen() int { return (2*TupleBits(c.M) + 7) / 8 }

// Encode packs h into a fresh byte slice.
func (c Codec) Encode(h Header) ([]byte, error) {
	if err := c.check(h.ToR); err != nil {
		return nil, err
	}
	if err := c.check(h.Host); err != nil {
		return nil, err
	}
	// Values are stored left-aligned within the m-bit field so Decode can
	// normalize them back with a right shift.
	var bw bitWriter
	lenBits := ceilLog2(c.M + 1)
	bw.write(uint64(h.ToR.Len), lenBits)
	bw.write(uint64(h.ToR.Value)<<(c.M-int(h.ToR.Len)), c.M)
	bw.write(uint64(h.Host.Len), lenBits)
	bw.write(uint64(h.Host.Value)<<(c.M-int(h.Host.Len)), c.M)
	return bw.bytes(), nil
}

// Decode unpacks a header previously produced by Encode. Pod is not part
// of the encoding (see Header) and is left zero.
func (c Codec) Decode(b []byte) (Header, error) {
	if len(b) < c.EncodedLen() {
		return Header{}, fmt.Errorf("prefix: header too short: %d < %d bytes", len(b), c.EncodedLen())
	}
	br := bitReader{buf: b}
	lenBits := ceilLog2(c.M + 1)
	var h Header
	h.ToR.Len = uint8(br.read(lenBits))
	h.ToR.Value = uint32(br.read(c.M))
	h.Host.Len = uint8(br.read(lenBits))
	h.Host.Value = uint32(br.read(c.M))
	if int(h.ToR.Len) > c.M || int(h.Host.Len) > c.M {
		return Header{}, fmt.Errorf("prefix: decoded length exceeds space")
	}
	// Values travel left-aligned within the m-bit field; normalize back
	// to canonical low-aligned form.
	h.ToR.Value >>= uint32(c.M) - uint32(h.ToR.Len)
	h.Host.Value >>= uint32(c.M) - uint32(h.Host.Len)
	return h, nil
}

func (c Codec) check(p Prefix) error {
	if int(p.Len) > c.M {
		return fmt.Errorf("prefix: length %d exceeds %d-bit space", p.Len, c.M)
	}
	if p.Value >= 1<<p.Len {
		return fmt.Errorf("prefix: value %d does not fit %d bits", p.Value, p.Len)
	}
	return nil
}

func (bw *bitWriter) write(v uint64, n int) {
	for i := n - 1; i >= 0; i-- {
		bit := (v >> i) & 1
		bw.cur |= byte(bit) << (7 - bw.nbits)
		bw.nbits++
		if bw.nbits == 8 {
			bw.out = append(bw.out, bw.cur)
			bw.cur, bw.nbits = 0, 0
		}
	}
}

type bitWriter struct {
	out   []byte
	cur   byte
	nbits int
}

func (bw *bitWriter) bytes() []byte {
	if bw.nbits > 0 {
		bw.out = append(bw.out, bw.cur)
		bw.cur, bw.nbits = 0, 0
	}
	return bw.out
}

type bitReader struct {
	buf []byte
	pos int
}

func (br *bitReader) read(n int) uint64 {
	var v uint64
	for i := 0; i < n; i++ {
		byteIdx, bitIdx := br.pos/8, br.pos%8
		bit := (br.buf[byteIdx] >> (7 - bitIdx)) & 1
		v = v<<1 | uint64(bit)
		br.pos++
	}
	return v
}
