package prefix

import (
	"fmt"
	"math/bits"
)

// RuleTable models the static multicast TCAM of one replication-tier
// switch (an aggregation switch for the agg→ToR tier, or a ToR for the
// ToR→host tier). It holds exactly Space.NumRules() = k−1 pre-installed
// entries, one per power-of-two block, each mapping to the bitmap of
// downstream ports in that block. The table never changes after
// construction: PEEL is deploy-once, touch-never.
type RuleTable struct {
	space Space
	// ports[ruleIndex] is the port bitmap for that rule. Ports are the
	// identifier values themselves: port i leads to downstream device i.
	ports []uint64
}

// NewRuleTable pre-installs all power-of-two rules for an m-bit space.
// Spaces wider than 64 identifiers per tier (k > 128) would need wider
// bitmaps; the fabrics in the paper top out at k=128 (m=6, 64 ports).
func NewRuleTable(s Space) (*RuleTable, error) {
	if s.M > 6 {
		return nil, fmt.Errorf("prefix: rule table supports up to 64 ports per tier, got 2^%d", s.M)
	}
	t := &RuleTable{space: s, ports: make([]uint64, s.NumRules())}
	for i, p := range s.AllRules() {
		lo, hi := p.Block(s.M)
		var bm uint64
		for id := lo; id < hi; id++ {
			bm |= 1 << id
		}
		t.ports[i] = bm
	}
	return t, nil
}

// NumEntries returns the installed entry count (k−1 for a k-ary fat-tree).
func (t *RuleTable) NumEntries() int { return len(t.ports) }

// ruleIndex maps a prefix to its position in the AllRules enumeration:
// rules of length l start at offset 2^l − 1.
func (t *RuleTable) ruleIndex(p Prefix) (int, error) {
	if int(p.Len) > t.space.M {
		return 0, fmt.Errorf("prefix: no rule for length %d in %d-bit space", p.Len, t.space.M)
	}
	if p.Value >= 1<<p.Len {
		return 0, fmt.Errorf("prefix: value %d does not fit %d bits", p.Value, p.Len)
	}
	return (1 << p.Len) - 1 + int(p.Value), nil
}

// Match returns the egress port bitmap for the rule the header tuple
// selects — the switch's single TCAM lookup.
func (t *RuleTable) Match(p Prefix) (uint64, error) {
	i, err := t.ruleIndex(p)
	if err != nil {
		return 0, err
	}
	return t.ports[i], nil
}

// MatchPorts returns the egress ports as a slice of identifiers.
func (t *RuleTable) MatchPorts(p Prefix) ([]int, error) {
	bm, err := t.Match(p)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, bits.OnesCount64(bm))
	for bm != 0 {
		i := bits.TrailingZeros64(bm)
		out = append(out, i)
		bm &^= 1 << i
	}
	return out, nil
}

// NaiveGroupEntries returns the switch-state requirement of per-group IP
// multicast for the same tier: one entry per possible receiver subset,
// 2^(k/2) per pod — the exponential blow-up PEEL eliminates (§3.2 quotes
// ≈2^32 ≈ 4×10⁹ entries for k=64 against PEEL's 63). Returned as float64
// because the count overflows int64 for k ≥ 128.
func NaiveGroupEntries(k int) float64 {
	half := k / 2
	v := 1.0
	for i := 0; i < half; i++ {
		v *= 2
	}
	return v
}
