package dcqcn

import (
	"testing"
	"testing/quick"

	"peel/internal/sim"
)

func TestStartsAtLineRate(t *testing.T) {
	s := NewSender(DefaultParams())
	if s.Rate() != 100e9 {
		t.Fatalf("rate=%v want line rate", s.Rate())
	}
	s.Tick(10 * sim.Millisecond) // no CNPs → stays at line rate
	if s.Rate() != 100e9 {
		t.Fatalf("rate drifted to %v without congestion", s.Rate())
	}
}

func TestCNPCutsRate(t *testing.T) {
	s := NewSender(DefaultParams())
	if !s.OnCNP(sim.Microsecond) {
		t.Fatal("first CNP must react")
	}
	// alpha starts at 1 → first cut halves the rate.
	if s.Rate() != 50e9 {
		t.Fatalf("rate=%v want 50e9 after first cut", s.Rate())
	}
	if s.Reactions() != 1 {
		t.Fatalf("reactions=%d", s.Reactions())
	}
}

func TestRepeatedCNPsFloorAtMinRate(t *testing.T) {
	s := NewSender(DefaultParams())
	for i := 0; i < 200; i++ {
		s.OnCNP(sim.Time(i) * sim.Millisecond)
	}
	if s.Rate() < DefaultParams().MinRateBps {
		t.Fatalf("rate %v fell below floor", s.Rate())
	}
}

func TestRecoveryReturnsTowardLineRate(t *testing.T) {
	s := NewSender(DefaultParams())
	s.OnCNP(0)
	cut := s.Rate()
	// After a long quiet period the rate must recover substantially.
	s.Tick(50 * sim.Millisecond)
	if s.Rate() <= cut {
		t.Fatalf("no recovery: %v <= %v", s.Rate(), cut)
	}
	if s.Rate() > DefaultParams().LineRateBps {
		t.Fatalf("rate %v above line rate", s.Rate())
	}
	// Eventually back at (or near) line rate thanks to hyper increase.
	s.Tick(2 * sim.Second)
	if s.Rate() < 0.99*DefaultParams().LineRateBps {
		t.Fatalf("rate %v failed to re-reach line rate", s.Rate())
	}
}

func TestFastRecoveryHalvesTowardTarget(t *testing.T) {
	p := DefaultParams()
	s := NewSender(p)
	s.OnCNP(0)
	target := s.rt
	before := s.Rate()
	s.Tick(p.IncreaseTimer) // one fast-recovery step
	want := (target + before) / 2
	if s.Rate() != want {
		t.Fatalf("rate=%v want %v", s.Rate(), want)
	}
}

func TestGuardTimerSuppressesBurst(t *testing.T) {
	p := DefaultParams().WithGuard()
	s := NewSender(p)
	// A multicast incast: 64 receivers all CNP within a few µs.
	applied := 0
	for i := 0; i < 64; i++ {
		if s.OnCNP(sim.Time(i) * sim.Microsecond) {
			applied++
		}
	}
	if applied != 2 { // t=0 and t=50µs fall in separate guard windows
		t.Fatalf("applied=%d want 2 (one per 50µs window)", applied)
	}
	if s.Ignored() != 62 {
		t.Fatalf("ignored=%d want 62", s.Ignored())
	}
	// Without the guard, all 64 react and the rate collapses.
	n := NewSender(DefaultParams())
	for i := 0; i < 64; i++ {
		n.OnCNP(sim.Time(i) * sim.Microsecond)
	}
	if n.Rate() >= s.Rate() {
		t.Fatalf("guardless rate %v should collapse below guarded %v", n.Rate(), s.Rate())
	}
}

func TestGuardWindowReopens(t *testing.T) {
	s := NewSender(DefaultParams().WithGuard())
	if !s.OnCNP(0) {
		t.Fatal("first CNP must apply")
	}
	if s.OnCNP(49 * sim.Microsecond) {
		t.Fatal("CNP inside guard window must be suppressed")
	}
	if !s.OnCNP(51 * sim.Microsecond) {
		t.Fatal("CNP after guard window must apply")
	}
}

func TestAlphaDecays(t *testing.T) {
	p := DefaultParams()
	s := NewSender(p)
	s.OnCNP(0)
	a0 := s.alpha
	s.Tick(20 * p.AlphaTimer)
	if s.alpha >= a0 {
		t.Fatalf("alpha did not decay: %v >= %v", s.alpha, a0)
	}
	// A decayed alpha makes the next cut gentler.
	r := s.Rate()
	s.OnCNP(20 * p.AlphaTimer)
	if s.Rate() < r*(1-a0/2)-1 {
		t.Fatal("cut with decayed alpha should be gentler than the first")
	}
}

// Property: the rate always stays within [MinRate, LineRate] under any
// interleaving of CNPs and ticks with increasing timestamps.
func TestQuickRateBounded(t *testing.T) {
	p := DefaultParams().WithGuard()
	f := func(steps []uint16) bool {
		s := NewSender(p)
		now := sim.Time(0)
		for _, st := range steps {
			now += sim.Time(st) * sim.Microsecond
			if st%3 == 0 {
				s.OnCNP(now)
			} else {
				s.Tick(now)
			}
			if s.Rate() < p.MinRateBps-1 || s.Rate() > p.LineRateBps+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the guard timer never allows two reactions closer than the
// guard interval.
func TestQuickGuardSpacing(t *testing.T) {
	p := DefaultParams().WithGuard()
	f := func(gaps []uint8) bool {
		s := NewSender(p)
		now := sim.Time(0)
		last := sim.Time(-1)
		for _, gp := range gaps {
			now += sim.Time(gp) * sim.Microsecond
			if s.OnCNP(now) {
				if last >= 0 && now-last < p.GuardTimer {
					return false
				}
				last = now
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
