// Package dcqcn implements the DCQCN sender rate controller (Zhu et al.,
// SIGCOMM'15) used by all schemes in the paper's evaluation (§4), plus
// PEEL's sender-side guard timer.
//
// The paper's congestion-control setup: DCQCN+PFC with ECN marking between
// 5 kB and 200 kB at 1% probability. Multicast makes a single ECN mark fan
// out into many CNPs, so PEEL replaces DCQCN's receiver-side rate limiter
// with a sender-side guard timer (one rate reaction per 50 µs); the paper
// reports this cuts p99 CCT 12× for a 64-GPU broadcast of 32 MB.
//
// The state machine here is deliberately pure — time comes in as an
// argument — so it can be driven by the simulator and property-tested in
// isolation.
package dcqcn

import "peel/internal/sim"

// Params are the DCQCN sender constants. Zero values are invalid; use
// DefaultParams as a base.
type Params struct {
	LineRateBps float64 // NIC line rate, also the max rate
	MinRateBps  float64 // floor the rate never drops below

	Gain float64 // g, the alpha EWMA gain (1/256 in the spec)

	// AlphaTimer is the interval after which, absent CNPs, alpha decays.
	AlphaTimer sim.Time
	// IncreaseTimer drives rate-recovery events.
	IncreaseTimer sim.Time
	// FastRecoverySteps is the number of recovery events spent halving
	// back toward the target rate before additive increase starts.
	FastRecoverySteps int
	// AIRateBps is the additive increase step.
	AIRateBps float64
	// HAIRateBps is the hyper additive increase step after prolonged
	// absence of congestion.
	HAIRateBps float64
	// HyperAfter is the number of additive stages before hyper increase.
	HyperAfter int

	// GuardTimer, when > 0, enables PEEL's sender-side guard: rate-cut
	// reactions are applied at most once per GuardTimer regardless of how
	// many CNPs arrive (the multicast CNP-implosion fix, §4).
	GuardTimer sim.Time
}

// DefaultParams returns the constants used throughout the evaluation:
// 100 Gb/s line rate and the DCQCN defaults from the paper's references.
func DefaultParams() Params {
	return Params{
		LineRateBps:       100e9,
		MinRateBps:        1e9,
		Gain:              1.0 / 256.0,
		AlphaTimer:        55 * sim.Microsecond,
		IncreaseTimer:     55 * sim.Microsecond,
		FastRecoverySteps: 5,
		AIRateBps:         400e6,
		HAIRateBps:        4e9,
		HyperAfter:        5,
		GuardTimer:        0,
	}
}

// WithGuard returns a copy of p with PEEL's 50 µs sender-side guard on.
func (p Params) WithGuard() Params {
	p.GuardTimer = 50 * sim.Microsecond
	return p
}

// Sender is the per-flow DCQCN rate state.
type Sender struct {
	p Params

	rc    float64 // current rate
	rt    float64 // target rate
	alpha float64

	lastCNP      sim.Time // last time a reaction was applied
	lastAlphaUpd sim.Time
	lastIncrease sim.Time
	recoverSteps int // increase events since last cut
	cnpSeen      bool
	started      bool

	reactions uint64
	ignored   uint64
}

// NewSender starts a flow at line rate with alpha = 1 (the spec's initial
// value).
func NewSender(p Params) *Sender {
	return &Sender{p: p, rc: p.LineRateBps, rt: p.LineRateBps, alpha: 1}
}

// Rate returns the current sending rate in bits/s.
func (s *Sender) Rate() float64 { return s.rc }

// Reactions returns how many rate cuts were applied; Ignored how many CNPs
// the guard timer suppressed. Used by the guard-timer ablation.
func (s *Sender) Reactions() uint64 { return s.reactions }

// Ignored returns the count of guard-suppressed CNPs.
func (s *Sender) Ignored() uint64 { return s.ignored }

// OnCNP processes a congestion notification arriving at time now.
// It returns true if a rate cut was applied, false if the guard timer
// suppressed it.
func (s *Sender) OnCNP(now sim.Time) bool {
	if s.p.GuardTimer > 0 && s.started && now-s.lastCNP < s.p.GuardTimer {
		s.ignored++
		return false
	}
	s.started = true
	s.lastCNP = now
	// Cut: Rt ← Rc, Rc ← Rc(1 − α/2), α ← (1−g)α + g.
	s.rt = s.rc
	s.rc *= 1 - s.alpha/2
	if s.rc < s.p.MinRateBps {
		s.rc = s.p.MinRateBps
	}
	s.alpha = (1-s.p.Gain)*s.alpha + s.p.Gain
	s.lastAlphaUpd = now
	s.lastIncrease = now
	s.recoverSteps = 0
	s.cnpSeen = true
	s.reactions++
	return true
}

// Tick advances the timer-driven parts of the state machine to now. The
// simulator calls it from a periodic per-flow event; calling it more often
// than the timers fire is harmless.
func (s *Sender) Tick(now sim.Time) {
	if !s.cnpSeen {
		return // still at line rate, nothing to recover
	}
	// Alpha decay while no CNPs arrive.
	for now-s.lastAlphaUpd >= s.p.AlphaTimer {
		s.lastAlphaUpd += s.p.AlphaTimer
		s.alpha *= 1 - s.p.Gain
	}
	// Rate recovery stages.
	for now-s.lastIncrease >= s.p.IncreaseTimer {
		s.lastIncrease += s.p.IncreaseTimer
		s.recoverSteps++
		switch {
		case s.recoverSteps <= s.p.FastRecoverySteps:
			// fast recovery: halve back toward target
		case s.recoverSteps <= s.p.FastRecoverySteps+s.p.HyperAfter:
			s.rt += s.p.AIRateBps
		default:
			s.rt += s.p.HAIRateBps
		}
		if s.rt > s.p.LineRateBps {
			s.rt = s.p.LineRateBps
		}
		s.rc = (s.rt + s.rc) / 2
	}
	if s.rc > s.p.LineRateBps {
		s.rc = s.p.LineRateBps
	}
}
