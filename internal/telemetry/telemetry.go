// Package telemetry is the deep-observability layer: sampled counters,
// gauges, fixed-layout histograms, per-link traffic aggregates, a bounded
// flight recorder of structured trace events, and exporters (JSON
// run-report, CSV time series, summary table).
//
// The design follows internal/invariant's always-on pattern: a single
// globally enabled Sink reached via Active(), so a hook point in a hot
// path costs exactly one atomic load when telemetry is disabled — the
// disabled path allocates nothing and is benchmarked at 0 allocs/op.
// Armed, every primitive updates lock-free atomics; only registration
// (first use of a name) and the flight recorder take a mutex.
//
// The package sits below the simulation stack (it imports only
// internal/sim, internal/invariant, and the standard library), so netsim,
// steiner, collective, controller, and chaos all report into it without
// import cycles.
// internal/metrics' summary helpers (Samples, Summary, Series, Table)
// were folded into this package; metrics re-exports them for
// compatibility.
package telemetry

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count. All methods are safe on a
// nil *Counter (they no-op), so hook code can cache the result of
// Sink.Counter unconditionally.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds d (d must be non-negative; counters never decrease).
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge tracks a last-written value and its high-water mark.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set records v and raises the high-water mark if needed.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.raise(v)
}

// SetMax raises only the high-water mark (for merging per-run maxima).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	g.raise(v)
}

func (g *Gauge) raise(v int64) {
	for {
		cur := g.max.Load()
		if v <= cur || g.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the last value written.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the high-water mark.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// LayoutKind selects a histogram bucket layout family.
type LayoutKind uint8

const (
	// LayoutLog2 buckets by bit length: bucket 0 holds values ≤ 0,
	// bucket i (1 ≤ i ≤ 64) holds values in [2^(i-1), 2^i − 1]. Suits
	// durations in picoseconds and byte counts spanning many decades.
	LayoutLog2 LayoutKind = iota
	// LayoutLinear buckets the range [Min, Min+Width·N) into N equal
	// bins, clamping values outside. Suits bounded small integers
	// (fan-out degrees, tree depths).
	LayoutLinear
)

// Layout is a histogram's fixed bucket layout. Histograms with the same
// name must be requested with identical layouts; a mismatch panics (it is
// a wiring bug, not a runtime condition).
type Layout struct {
	Kind    LayoutKind
	Min     int64 // linear only: lower bound of bucket 0
	Width   int64 // linear only: bucket width
	Buckets int   // linear only: bucket count
}

// Log2Layout returns the 65-bucket power-of-two layout.
func Log2Layout() Layout { return Layout{Kind: LayoutLog2} }

// LinearLayout returns an n-bucket fixed-width layout starting at min.
func LinearLayout(min, width int64, n int) Layout {
	if width <= 0 || n <= 0 {
		panic(fmt.Sprintf("telemetry: invalid linear layout width=%d n=%d", width, n))
	}
	return Layout{Kind: LayoutLinear, Min: min, Width: width, Buckets: n}
}

func (l Layout) buckets() int {
	if l.Kind == LayoutLog2 {
		return 65
	}
	return l.Buckets
}

// UpperBound returns the inclusive upper bound of bucket i (the last
// bucket of a linear layout absorbs everything above the range).
func (l Layout) UpperBound(i int) int64 {
	if l.Kind == LayoutLog2 {
		if i <= 0 {
			return 0
		}
		if i >= 64 {
			return int64(^uint64(0) >> 1) // MaxInt64
		}
		return int64(1)<<uint(i) - 1
	}
	if i >= l.Buckets-1 {
		return int64(^uint64(0) >> 1)
	}
	return l.Min + l.Width*int64(i+1) - 1
}

// bucketOf maps a value to its bucket index.
func (l Layout) bucketOf(v int64) int {
	if l.Kind == LayoutLog2 {
		if v <= 0 {
			return 0
		}
		return bits.Len64(uint64(v))
	}
	if v < l.Min {
		return 0
	}
	i := int((v - l.Min) / l.Width)
	if i >= l.Buckets {
		i = l.Buckets - 1
	}
	return i
}

// Histogram accumulates observations into a fixed bucket layout, plus
// exact count and sum. Observation is lock-free.
type Histogram struct {
	layout  Layout
	count   atomic.Int64
	sum     atomic.Int64
	buckets []atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[h.layout.bucketOf(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the exact sum of observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Layout returns the bucket layout.
func (h *Histogram) Layout() Layout {
	if h == nil {
		return Layout{}
	}
	return h.layout
}

// Bucket returns bucket i's count.
func (h *Histogram) Bucket(i int) uint64 {
	if h == nil || i < 0 || i >= len(h.buckets) {
		return 0
	}
	return h.buckets[i].Load()
}

// Quantile returns the inclusive upper bound of the bucket holding the
// q-quantile observation (0 < q ≤ 1), an upper estimate of the true
// quantile within one bucket's resolution. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := range h.buckets {
		cum += int64(h.buckets[i].Load())
		if cum >= rank {
			return h.layout.UpperBound(i)
		}
	}
	return h.layout.UpperBound(len(h.buckets) - 1)
}

// LinkStat is one publication of a directed channel's cumulative traffic
// state: netsim publishes one per channel at the end of each run, and the
// sink aggregates them by link label across runs (all-integer, so totals
// are deterministic for any worker count or accumulation order).
type LinkStat struct {
	Bytes     int64   // payload bytes serialized
	Frames    int64   // frames serialized
	Drops     int64   // frames lost to link failure on this channel
	Downs     int64   // down transitions
	DownPs    int64   // accumulated outage (picoseconds)
	ElapsedPs int64   // simulated run length (picoseconds)
	Runs      int64   // publications folded into this stat
	CapBps    float64 // link rate, for utilization at export time
}

// Utilization returns bytes ÷ (rate × elapsed) — the mean utilization
// across the aggregated runs.
func (l LinkStat) Utilization() float64 {
	if l.CapBps <= 0 || l.ElapsedPs <= 0 {
		return 0
	}
	return float64(l.Bytes*8) / (l.CapBps * (float64(l.ElapsedPs) / 1e12))
}

// Sink is one telemetry session: a registry of named primitives, per-link
// aggregates, an optional time-series buffer, and the flight recorder.
// Registration (first use of a name) takes the mutex; hook points cache
// the returned pointer and update lock-free afterwards.
type Sink struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	links    map[string]*LinkStat

	rec    *Recorder
	series series

	runID   atomic.Int64
	aborted atomic.Pointer[string]
}

// NewSink returns a sink whose flight recorder keeps the last
// traceEvents events (≤ 0 picks the 4096-event default).
func NewSink(traceEvents int) *Sink {
	if traceEvents <= 0 {
		traceEvents = 4096
	}
	return &Sink{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		links:    map[string]*LinkStat{},
		rec:      NewRecorder(traceEvents),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil on a nil sink, and every Counter method is nil-safe, so callers can
// resolve and cache unconditionally.
func (s *Sink) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.counters[name]
	if c == nil {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (s *Sink) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.gauges[name]
	if g == nil {
		g = &Gauge{}
		s.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// layout on first use. Re-requesting a name with a different layout is a
// wiring bug and panics.
func (s *Sink) Histogram(name string, layout Layout) *Histogram {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.hists[name]
	if h == nil {
		h = &Histogram{layout: layout, buckets: make([]atomic.Uint64, layout.buckets())}
		s.hists[name] = h
	} else if h.layout != layout {
		panic(fmt.Sprintf("telemetry: histogram %q requested with conflicting layouts %+v vs %+v",
			name, h.layout, layout))
	}
	return h
}

// ObserveLink folds one channel publication into the label's aggregate.
func (s *Sink) ObserveLink(label string, st LinkStat) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	agg := s.links[label]
	if agg == nil {
		agg = &LinkStat{}
		s.links[label] = agg
	}
	agg.Bytes += st.Bytes
	agg.Frames += st.Frames
	agg.Drops += st.Drops
	agg.Downs += st.Downs
	agg.DownPs += st.DownPs
	agg.ElapsedPs += st.ElapsedPs
	agg.Runs++
	if st.CapBps > agg.CapBps {
		agg.CapBps = st.CapBps
	}
}

// Recorder returns the sink's flight recorder (nil for a nil sink; every
// Recorder method is nil-safe).
func (s *Sink) Recorder() *Recorder {
	if s == nil {
		return nil
	}
	return s.rec
}

// NextRunID hands out run identifiers for time-series labeling.
func (s *Sink) NextRunID() int64 {
	if s == nil {
		return 0
	}
	return s.runID.Add(1)
}

// NoteAbort marks the session aborted (watchdog abandonment, budget
// exhaustion) with the first reason recorded, and drops an abort event
// into the flight recorder. Harnesses check Aborted() to decide whether
// to dump the trace.
func (s *Sink) NoteAbort(reason string) {
	if s == nil {
		return
	}
	s.aborted.CompareAndSwap(nil, &reason)
	s.rec.Record(0, KindAbort, 0, 0, 0)
}

// Aborted reports whether NoteAbort was called, with the first reason.
func (s *Sink) Aborted() (string, bool) {
	if s == nil {
		return "", false
	}
	if p := s.aborted.Load(); p != nil {
		return *p, true
	}
	return "", false
}

// sortedNames returns the keys of m in sorted order.
func sortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// active is the globally enabled sink; nil means telemetry is off and a
// hook point costs one atomic load.
var active atomic.Pointer[Sink]

// Enable installs s as the global sink (nil disables telemetry) and
// returns a restore function reinstating the previous one. As with
// invariant.Enable, callers must not swap sinks concurrently with
// simulation work on other goroutines.
func Enable(s *Sink) (restore func()) {
	prev := active.Swap(s)
	return func() { active.Store(prev) }
}

// Active returns the globally enabled sink, or nil when telemetry is off.
func Active() *Sink {
	return active.Load()
}
