package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"peel/internal/sim"
)

// SchemaVersion identifies the run-report JSON schema. Bump on any
// field addition, removal, or meaning change; consumers (CI's
// telemetry-smoke golden diff, internal/perfstats) key on it.
const SchemaVersion = 1

// RunReport is the JSON run-report: every named primitive's final state,
// the per-link traffic aggregates, and the flight-recorder census. Field
// order is fixed by the struct and every slice is sorted by name, so the
// encoding is byte-stable for a given simulation — counters, histograms,
// and link aggregates are all integer-accumulated, making the report
// identical for any worker count.
type RunReport struct {
	Schema     int               `json:"schema"`
	Label      string            `json:"label,omitempty"`
	Aborted    string            `json:"aborted,omitempty"`
	Counters   []CounterReport   `json:"counters"`
	Gauges     []GaugeReport     `json:"gauges"`
	Histograms []HistogramReport `json:"histograms"`
	Links      []LinkReport      `json:"links"`
	Trace      TraceReport       `json:"trace"`
}

// CounterReport is one counter's final value.
type CounterReport struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeReport is one gauge's last value and high-water mark.
type GaugeReport struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
	Max   int64  `json:"max"`
}

// BucketReport is one non-empty histogram bucket: the inclusive upper
// bound and its count.
type BucketReport struct {
	LE    int64  `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramReport is one histogram's census with approximate tail
// quantiles (upper bucket bounds).
type HistogramReport struct {
	Name    string         `json:"name"`
	Count   int64          `json:"count"`
	Sum     int64          `json:"sum"`
	P50     int64          `json:"p50"`
	P99     int64          `json:"p99"`
	Buckets []BucketReport `json:"buckets"`
}

// LinkReport is one directed channel's aggregate across every published
// run: traffic, failure history, and mean utilization.
type LinkReport struct {
	Link        string  `json:"link"`
	Runs        int64   `json:"runs"`
	Bytes       int64   `json:"bytes"`
	Frames      int64   `json:"frames"`
	Drops       int64   `json:"drops"`
	Downs       int64   `json:"downs"`
	DownPs      int64   `json:"down_ps"`
	Utilization float64 `json:"utilization"`
}

// TraceReport is the flight recorder census: how much history the ring
// saw and still retains.
type TraceReport struct {
	Recorded uint64 `json:"recorded"`
	Retained int    `json:"retained"`
}

// Report snapshots the sink into an exportable run-report.
func (s *Sink) Report(label string) RunReport {
	r := RunReport{Schema: SchemaVersion, Label: label,
		Counters: []CounterReport{}, Gauges: []GaugeReport{},
		Histograms: []HistogramReport{}, Links: []LinkReport{}}
	if s == nil {
		return r
	}
	if reason, ok := s.Aborted(); ok {
		r.Aborted = reason
	}
	s.mu.Lock()
	counters, gauges, hists := s.counters, s.gauges, s.hists
	links := s.links
	s.mu.Unlock()
	for _, name := range sortedNames(counters) {
		r.Counters = append(r.Counters, CounterReport{Name: name, Value: counters[name].Value()})
	}
	for _, name := range sortedNames(gauges) {
		g := gauges[name]
		r.Gauges = append(r.Gauges, GaugeReport{Name: name, Value: g.Value(), Max: g.Max()})
	}
	for _, name := range sortedNames(hists) {
		h := hists[name]
		hr := HistogramReport{Name: name, Count: h.Count(), Sum: h.Sum(),
			P50: h.Quantile(0.50), P99: h.Quantile(0.99), Buckets: []BucketReport{}}
		for i := 0; i < h.layout.buckets(); i++ {
			if c := h.Bucket(i); c > 0 {
				hr.Buckets = append(hr.Buckets, BucketReport{LE: h.layout.UpperBound(i), Count: c})
			}
		}
		r.Histograms = append(r.Histograms, hr)
	}
	for _, name := range sortedNames(links) {
		st := links[name]
		r.Links = append(r.Links, LinkReport{Link: name, Runs: st.Runs, Bytes: st.Bytes,
			Frames: st.Frames, Drops: st.Drops, Downs: st.Downs, DownPs: st.DownPs,
			Utilization: st.Utilization()})
	}
	r.Trace = TraceReport{Recorded: s.rec.Total(), Retained: s.rec.Len()}
	return r
}

// WriteJSON writes the report indented with a trailing newline — the
// checked-in golden format.
func (r RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// SummaryTable renders the report as an aligned human-readable digest:
// the table peelsim appends to experiment output when telemetry is armed.
func (r RunReport) SummaryTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== telemetry summary (schema %d) ==\n", r.Schema)
	if r.Aborted != "" {
		fmt.Fprintf(&b, "ABORTED: %s\n", r.Aborted)
	}
	for _, c := range r.Counters {
		fmt.Fprintf(&b, "  %-34s %d\n", c.Name, c.Value)
	}
	for _, g := range r.Gauges {
		fmt.Fprintf(&b, "  %-34s last=%d max=%d\n", g.Name, g.Value, g.Max)
	}
	for _, h := range r.Histograms {
		mean := int64(0)
		if h.Count > 0 {
			mean = h.Sum / h.Count
		}
		fmt.Fprintf(&b, "  %-34s n=%d mean=%d p50≤%d p99≤%d\n", h.Name, h.Count, mean, h.P50, h.P99)
	}
	if n := len(r.Links); n > 0 {
		hot := r.Links[0]
		for _, l := range r.Links[1:] {
			if l.Bytes > hot.Bytes {
				hot = l
			}
		}
		fmt.Fprintf(&b, "  links: %d observed, hottest %s (%d B, util %.3f)\n",
			n, hot.Link, hot.Bytes, hot.Utilization)
	}
	fmt.Fprintf(&b, "  trace: %d events recorded, last %d retained\n", r.Trace.Recorded, r.Trace.Retained)
	return b.String()
}

// Sample is one CSV time-series row: a periodic snapshot of one directed
// channel's cumulative counters during one run.
type Sample struct {
	Run    int64    // sink-assigned run ID
	At     sim.Time // simulated capture time
	Link   string   // directed channel label
	Bytes  int64    // cumulative payload bytes serialized
	Frames int64    // cumulative frames serialized
	Drops  int64    // cumulative link-failure drops
	QBytes int64    // instantaneous queue depth
}

// series buffers time-series samples under the sink mutex. Sampling is
// opt-in (netsim's sampler records only when armed), so the buffer's
// growth never taxes a run that didn't ask for it.
type series struct {
	mu   sync.Mutex
	rows []Sample
}

// RecordSample appends one time-series row.
func (s *Sink) RecordSample(row Sample) {
	if s == nil {
		return
	}
	s.series.mu.Lock()
	s.series.rows = append(s.series.rows, row)
	s.series.mu.Unlock()
}

// Samples returns the buffered rows sorted by (run, time, link).
func (s *Sink) Samples() []Sample {
	if s == nil {
		return nil
	}
	s.series.mu.Lock()
	out := make([]Sample, len(s.series.rows))
	copy(out, s.series.rows)
	s.series.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Run != b.Run {
			return a.Run < b.Run
		}
		if a.At != b.At {
			return a.At < b.At
		}
		return a.Link < b.Link
	})
	return out
}

// WriteCSV writes the buffered time series as CSV with a header row.
func (s *Sink) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "run,t_ps,link,bytes,frames,drops,queue_bytes\n"); err != nil {
		return err
	}
	for _, r := range s.Samples() {
		if _, err := fmt.Fprintf(w, "%d,%d,%s,%d,%d,%d,%d\n",
			r.Run, int64(r.At), r.Link, r.Bytes, r.Frames, r.Drops, r.QBytes); err != nil {
			return err
		}
	}
	return nil
}
