package telemetry

import "testing"

// BenchmarkDisabledHook measures the cost of a hook point with telemetry
// off — the price every hot path pays unconditionally. CI's bench-smoke
// greps this (and the armed benchmarks below) for "0 allocs/op".
func BenchmarkDisabledHook(b *testing.B) {
	restore := Enable(nil)
	defer restore()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if ts := Active(); ts != nil {
			ts.Counter("never").Inc()
		}
	}
}

func BenchmarkArmedCounterInc(b *testing.B) {
	s := NewSink(64)
	restore := Enable(s)
	defer restore()
	c := s.Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkArmedHistogramObserve(b *testing.B) {
	s := NewSink(64)
	restore := Enable(s)
	defer restore()
	h := s.Histogram("bench", Log2Layout())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkRecorderRecord(b *testing.B) {
	r := NewRecorder(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(0, KindChaosEvent, int64(i), 0, 0)
	}
}

// BenchmarkRecorderGatedFrameEvent measures a frame-event record with the
// per-frame gate off — the common armed configuration, where per-frame
// hooks must cost only the atomic gate check.
func BenchmarkRecorderGatedFrameEvent(b *testing.B) {
	r := NewRecorder(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(0, KindFrameEnqueue, int64(i), 0, 0)
	}
}
