package telemetry

// The statistics the paper reports — CCT samples with mean and tail
// percentiles, and figure series/tables — folded in from
// internal/metrics so the repository has one metrics API. The metrics
// package re-exports these names for compatibility.

import (
	"fmt"
	"math"
	"sort"

	"peel/internal/sim"
)

// Samples accumulates CCT observations.
type Samples struct {
	vals   []float64
	sorted bool
}

// Add records one observation (seconds).
func (s *Samples) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = false
}

// AddTime records one simulated duration.
func (s *Samples) AddTime(t sim.Time) { s.Add(t.Seconds()) }

// N returns the sample count.
func (s *Samples) N() int { return len(s.vals) }

// Mean returns the arithmetic mean, or NaN when empty.
func (s *Samples) Mean() float64 {
	if len(s.vals) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Percentile returns the p-th percentile (0 < p ≤ 100) using the
// nearest-rank method, or NaN when empty.
func (s *Samples) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return math.NaN()
	}
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
	if p <= 0 {
		return s.vals[0]
	}
	rank := int(math.Ceil(p / 100 * float64(len(s.vals))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s.vals) {
		rank = len(s.vals)
	}
	return s.vals[rank-1]
}

// P99 is the tail metric the paper reports alongside the mean.
func (s *Samples) P99() float64 { return s.Percentile(99) }

// Max returns the largest observation.
func (s *Samples) Max() float64 { return s.Percentile(100) }

// Min returns the smallest observation.
func (s *Samples) Min() float64 {
	if len(s.vals) == 0 {
		return math.NaN()
	}
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
	return s.vals[0]
}

// StdDev returns the population standard deviation.
func (s *Samples) StdDev() float64 {
	if len(s.vals) == 0 {
		return math.NaN()
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.vals {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(s.vals)))
}

// Summary is a reporting-ready digest of a sample set.
type Summary struct {
	N         int
	Mean, P50 float64
	P99, Max  float64
}

// Summarize digests the samples.
func (s *Samples) Summarize() Summary {
	return Summary{N: s.N(), Mean: s.Mean(), P50: s.Percentile(50), P99: s.P99(), Max: s.Max()}
}

func (sm Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6fs p50=%.6fs p99=%.6fs max=%.6fs", sm.N, sm.Mean, sm.P50, sm.P99, sm.Max)
}

// Series is one curve of a figure: X values with per-scheme Y values.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Table renders aligned rows for a set of series sharing X (a figure's
// data, printable by cmd/peelsim).
func Table(xLabel string, xs []float64, series []Series) string {
	out := fmt.Sprintf("%-14s", xLabel)
	for _, s := range series {
		out += fmt.Sprintf("%16s", s.Label)
	}
	out += "\n"
	for i, x := range xs {
		out += fmt.Sprintf("%-14.4g", x)
		for _, s := range series {
			if i < len(s.Y) {
				out += fmt.Sprintf("%16.6g", s.Y[i])
			} else {
				out += fmt.Sprintf("%16s", "-")
			}
		}
		out += "\n"
	}
	return out
}
