package telemetry

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenSink builds a fully deterministic sink exercising every report
// section: counters, gauges, both histogram layouts, link aggregates, and
// a flight-recorder ring small enough to have evicted history.
func goldenSink() *Sink {
	s := NewSink(4)
	s.Counter("netsim.frames_allocated").Add(1024)
	s.Counter("netsim.frames_consumed").Add(1024)
	s.Counter("collective.repairs").Inc()
	s.Counter("collective.stripe.repairs").Inc()
	s.Counter("collective.striped.collectives").Inc()
	s.Counter("collective.striped.stripes").Add(4)
	s.Counter("steiner.disjoint.sets").Inc()
	s.Counter("steiner.disjoint.trees").Add(4)
	s.Counter("steiner.disjoint.links_claimed").Add(12)
	trees := s.Histogram("collective.striped.trees_built", LinearLayout(0, 1, 9))
	trees.Observe(4)
	g := s.Gauge("netsim.max_queue_bytes")
	g.Set(512)
	g.SetMax(4096)
	h := s.Histogram("collective.cct_ps", Log2Layout())
	for _, v := range []int64{1_000_000, 2_000_000, 3_000_000} {
		h.Observe(v)
	}
	fan := s.Histogram("steiner.fanout", LinearLayout(0, 1, 65))
	for _, v := range []int64{2, 4, 4, 16} {
		fan.Observe(v)
	}
	s.ObserveLink("tor0>agg0", LinkStat{Bytes: 32 << 20, Frames: 128, Drops: 2,
		Downs: 1, DownPs: 1_000_000, ElapsedPs: 1_000_000_000_000, CapBps: 100e9})
	s.ObserveLink("h0>tor0", LinkStat{Bytes: 8 << 20, Frames: 32,
		ElapsedPs: 1_000_000_000_000, Runs: 0, CapBps: 100e9})
	for i := 0; i < 6; i++ {
		s.Recorder().Record(0, KindChaosEvent, int64(i), 0, 0)
	}
	return s
}

// TestRunReportGolden pins the JSON run-report byte-for-byte: field order,
// indentation, sorted names, non-empty-bucket elision, and the schema
// stamp. After an intentional schema change, bump SchemaVersion and
// regenerate with
//
//	PEEL_UPDATE_GOLDEN=1 go test -run TestRunReportGolden ./internal/telemetry
func TestRunReportGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenSink().Report("golden").WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()
	goldenPath := filepath.Join("testdata", "runreport_golden.json")
	if os.Getenv("PEEL_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden run-report updated (%d bytes)", len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with PEEL_UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("run-report drifted from golden.\nIf intentional, bump SchemaVersion if the schema changed and regenerate with PEEL_UPDATE_GOLDEN=1.\ngot:\n%s\nwant:\n%s", got, want)
	}
	// The golden must carry the current schema stamp — catching a version
	// bump without regeneration, or a regeneration without a bump.
	var decoded struct {
		Schema int `json:"schema"`
	}
	if err := json.Unmarshal(want, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Schema != SchemaVersion {
		t.Fatalf("golden schema = %d, package SchemaVersion = %d", decoded.Schema, SchemaVersion)
	}
}

// TestRunReportDeterministic rebuilds the same sink state with reversed
// registration order and asserts byte-identical JSON — the property that
// makes the report diffable across worker counts.
func TestRunReportDeterministic(t *testing.T) {
	forward := goldenSink()
	reversed := NewSink(4)
	for i := 5; i >= 0; i-- {
		reversed.Recorder().Record(0, KindChaosEvent, int64(5-i), 0, 0)
	}
	reversed.ObserveLink("h0>tor0", LinkStat{Bytes: 8 << 20, Frames: 32,
		ElapsedPs: 1_000_000_000_000, CapBps: 100e9})
	reversed.ObserveLink("tor0>agg0", LinkStat{Bytes: 32 << 20, Frames: 128, Drops: 2,
		Downs: 1, DownPs: 1_000_000, ElapsedPs: 1_000_000_000_000, CapBps: 100e9})
	fan := reversed.Histogram("steiner.fanout", LinearLayout(0, 1, 65))
	for _, v := range []int64{16, 4, 4, 2} {
		fan.Observe(v)
	}
	h := reversed.Histogram("collective.cct_ps", Log2Layout())
	for _, v := range []int64{3_000_000, 2_000_000, 1_000_000} {
		h.Observe(v)
	}
	g := reversed.Gauge("netsim.max_queue_bytes")
	g.SetMax(4096)
	g.Set(512)
	trees := reversed.Histogram("collective.striped.trees_built", LinearLayout(0, 1, 9))
	trees.Observe(4)
	reversed.Counter("steiner.disjoint.links_claimed").Add(12)
	reversed.Counter("steiner.disjoint.trees").Add(4)
	reversed.Counter("steiner.disjoint.sets").Inc()
	reversed.Counter("collective.striped.stripes").Add(4)
	reversed.Counter("collective.striped.collectives").Inc()
	reversed.Counter("collective.stripe.repairs").Inc()
	reversed.Counter("collective.repairs").Inc()
	reversed.Counter("netsim.frames_consumed").Add(1024)
	reversed.Counter("netsim.frames_allocated").Add(1024)

	var a, b bytes.Buffer
	if err := forward.Report("golden").WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := reversed.Report("golden").WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("report depends on registration order:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestRunReportAborted(t *testing.T) {
	s := NewSink(0)
	s.NoteAbort("watchdog gave up")
	r := s.Report("x")
	if r.Aborted != "watchdog gave up" || r.Label != "x" {
		t.Fatalf("report = %+v", r)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"aborted": "watchdog gave up"`) {
		t.Fatalf("aborted reason missing from JSON:\n%s", buf.String())
	}
	if got := r.SummaryTable(); !strings.Contains(got, "ABORTED: watchdog gave up") {
		t.Fatalf("aborted reason missing from summary:\n%s", got)
	}
}

func TestSummaryTable(t *testing.T) {
	out := goldenSink().Report("golden").SummaryTable()
	for _, want := range []string{
		"== telemetry summary (schema 1) ==",
		"netsim.frames_allocated",
		"netsim.max_queue_bytes",
		"collective.cct_ps",
		"links: 2 observed, hottest tor0>agg0",
		"trace: 6 events recorded, last 4 retained",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "ABORTED") {
		t.Errorf("non-aborted summary claims abort:\n%s", out)
	}
}

func TestWriteCSVSortsRows(t *testing.T) {
	s := NewSink(0)
	// Recorded deliberately out of (run, time, link) order.
	s.RecordSample(Sample{Run: 2, At: 100, Link: "b>c", Bytes: 5, Frames: 1})
	s.RecordSample(Sample{Run: 1, At: 200, Link: "a>b", Bytes: 4, Frames: 1, QBytes: 7})
	s.RecordSample(Sample{Run: 1, At: 100, Link: "b>a", Bytes: 3, Frames: 1, Drops: 1})
	s.RecordSample(Sample{Run: 1, At: 100, Link: "a>b", Bytes: 2, Frames: 1})
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "run,t_ps,link,bytes,frames,drops,queue_bytes\n" +
		"1,100,a>b,2,1,0,0\n" +
		"1,100,b>a,3,1,1,0\n" +
		"1,200,a>b,4,1,0,7\n" +
		"2,100,b>c,5,1,0,0\n"
	if got := buf.String(); got != want {
		t.Fatalf("csv:\n%s\nwant:\n%s", got, want)
	}
}

func TestNextRunID(t *testing.T) {
	s := NewSink(0)
	if a, b := s.NextRunID(), s.NextRunID(); a != 1 || b != 2 {
		t.Fatalf("run IDs = %d,%d, want 1,2", a, b)
	}
}
