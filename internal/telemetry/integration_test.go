package telemetry_test

import (
	"math/rand"
	"testing"

	"peel/internal/chaos"
	"peel/internal/collective"
	"peel/internal/controller"
	"peel/internal/core"
	"peel/internal/invariant"
	"peel/internal/netsim"
	"peel/internal/sim"
	"peel/internal/telemetry"
	"peel/internal/topology"
	"peel/internal/workload"
)

// The integration scenario mirrors experiments.ChaosStudy's per-collective
// harness: a 64-GPU broadcast of 32 MB on a k=4 fat-tree with the
// collective watchdog at 100 µs. Instead of a random link fraction, the
// chaos schedule surgically fails one switch-to-switch link *on the
// multicast tree* at 30% of the clean CCT, healing far after completion —
// so the watchdog must detect the stall and the repair must re-peel around
// the failure, deterministically, every run.
const (
	chaosMsg      = int64(32) << 20
	chaosSeed     = int64(1)
	chaosMaxEv    = uint64(120_000_000)
	chaosWatchdog = 100 * sim.Microsecond
)

func chaosConfig(seed int64) netsim.Config {
	cfg := netsim.DefaultConfig()
	f := chaosMsg / 128 // Defaults().FramesPerMessage, within the [4 KiB, 4 MiB] clamp
	cfg.FrameBytes = f
	cfg.ECNKminBytes = 10 * f / 3
	cfg.ECNKmaxBytes = 133 * f
	cfg.BufferBytes = 8000 * f
	cfg.Seed = seed
	return cfg
}

// runChaosCollective simulates one PEEL broadcast on a fresh fabric with
// an optional chaos schedule armed, publishing network telemetry at the
// end exactly like experiments.runChaosOne.
func runChaosCollective(t *testing.T, c *workload.Collective, cfg netsim.Config, sched *chaos.Schedule) (collective.Report, *netsim.Network) {
	t.Helper()
	g := topology.FatTree(4)
	eng := &sim.Engine{}
	net := netsim.New(g, eng, cfg)
	planner, err := core.NewPlanner(g)
	if err != nil {
		t.Fatal(err)
	}
	cl := workload.NewCluster(g, 8)
	runner := collective.NewRunner(net, cl, planner, controller.New(cfg.RNG(netsim.SaltController)))
	runner.Watchdog = chaosWatchdog

	var rep collective.Report
	done := false
	eng.At(0, func() {
		if err := runner.StartReport(c, collective.PEEL, func(r collective.Report) { rep, done = r, true }); err != nil {
			t.Errorf("start: %v", err)
		}
	})
	if err := chaos.NewInjector(g, eng).Arm(sched); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(chaosMaxEv); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("collective did not complete")
	}
	net.CheckQuiesced(invariant.Active())
	net.PublishTelemetry(telemetry.Active())
	return rep, net
}

// treeSwitchLink rebuilds the collective's failure-free multicast tree and
// returns its first (lowest child node ID) switch-to-switch edge — a link
// the broadcast provably depends on.
func treeSwitchLink(t *testing.T, c *workload.Collective) topology.LinkID {
	t.Helper()
	g := topology.FatTree(4)
	tree, err := core.BuildTree(g, c.Source(), c.Receivers())
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < g.NumNodes(); id++ {
		n := topology.NodeID(id)
		p := tree.Parent[n]
		if p == topology.None || n == tree.Source {
			continue
		}
		if g.Node(n).Kind.IsSwitch() && g.Node(p).Kind.IsSwitch() {
			return g.LinkBetween(p, n)
		}
	}
	t.Fatal("multicast tree has no switch-switch edge")
	return -1
}

// TestChaosTraceAndConservation runs the seeded chaos scenario with a
// private sink armed and asserts the tentpole's end-to-end promises:
//
//   - the flight recorder holds the failure story in causal order —
//     link-down before repair-detect before repair-install before
//     repair-complete, by both sequence number and simulated time;
//   - the telemetry frame counters balance exactly (every allocated frame
//     consumed), the differential twin of internal/invariant's
//     frame-conservation checker, which TestMain keeps enabled throughout;
//   - the netsim.link_drops counter equals the networks' own LinkDrops
//     bookkeeping summed across runs (hook-level vs. network-level count);
//   - the repair latency breakdown (detect/install/resume) is populated.
func TestChaosTraceAndConservation(t *testing.T) {
	sink := telemetry.NewSink(16384)
	restore := telemetry.Enable(sink)
	defer restore()

	g := topology.FatTree(4)
	cl := workload.NewCluster(g, 8)
	rng := rand.New(rand.NewSource(chaosSeed))
	cols, err := cl.Generate(1, 0.1, 100e9, workload.Spec{GPUs: 64, Bytes: chaosMsg}, rng)
	if err != nil {
		t.Fatal(err)
	}
	c := cols[0]
	cfg := chaosConfig(chaosSeed)

	// Clean pass sizes the failure time, exactly like ChaosStudy.
	clean, cleanNet := runChaosCollective(t, c, cfg, nil)
	if clean.Recovery.Stalls != 0 {
		t.Fatalf("clean run stalled: %+v", clean.Recovery)
	}
	failAt := clean.CCT * 3 / 10
	link := treeSwitchLink(t, c)
	sched := (&chaos.Schedule{}).FailLinkAt(failAt, link).HealLinkAt(failAt+sim.Second, link)

	rep, repNet := runChaosCollective(t, c, cfg, sched)
	if rep.Recovery.Stalls == 0 {
		t.Fatalf("failing tree link %d did not stall the collective: %+v", link, rep.Recovery)
	}
	if rep.Recovery.Repairs == 0 {
		t.Fatalf("stall was not repaired: %+v", rep.Recovery)
	}
	if rep.Recovery.Abandoned != 0 {
		t.Fatalf("receivers abandoned: %+v", rep.Recovery)
	}
	if rep.CCT <= clean.CCT {
		t.Errorf("repaired CCT %v not above clean CCT %v", rep.CCT.Duration(), clean.CCT.Duration())
	}

	// Causal order of the repair story in the flight recorder.
	first := map[telemetry.Kind]telemetry.Event{}
	for _, e := range sink.Recorder().Dump() {
		if _, ok := first[e.Kind]; !ok {
			first[e.Kind] = e
		}
	}
	order := []telemetry.Kind{telemetry.KindLinkDown, telemetry.KindRepairDetect,
		telemetry.KindRepairInstall, telemetry.KindRepairComplete}
	var prev telemetry.Event
	for i, k := range order {
		e, ok := first[k]
		if !ok {
			t.Fatalf("trace has no %v event (retained %d of %d)", k,
				sink.Recorder().Len(), sink.Recorder().Total())
		}
		if i > 0 {
			if e.Seq < prev.Seq {
				t.Errorf("%v (seq %d) recorded before %v (seq %d)", e.Kind, e.Seq, prev.Kind, prev.Seq)
			}
			if e.At < prev.At {
				t.Errorf("%v at %v precedes %v at %v", e.Kind, e.At.Duration(), prev.Kind, prev.At.Duration())
			}
		}
		prev = e
	}
	if _, ok := first[telemetry.KindLinkUp]; !ok {
		t.Error("trace has no link-up event despite the scheduled heal")
	}
	if got := sink.Counter("chaos.events").Value(); got != 2 {
		t.Errorf("chaos.events = %d, want 2 (one fail, one heal)", got)
	}

	// Frame conservation, differentially: the hook-level allocation and
	// consumption counters must balance once both engines drained. The
	// invariant suite (enabled by TestMain) checks the same property from
	// the network's internal bookkeeping.
	alloc := sink.Counter("netsim.frames_allocated").Value()
	consumed := sink.Counter("netsim.frames_consumed").Value()
	if alloc == 0 {
		t.Fatal("no frames observed")
	}
	if alloc != consumed {
		t.Errorf("frame conservation broken: allocated %d, consumed %d", alloc, consumed)
	}

	// Hook-level drop counter vs. the networks' own counters.
	wantDrops := int64(cleanNet.LinkDrops) + int64(repNet.LinkDrops)
	if wantDrops == 0 {
		t.Error("collective stalled but the networks counted no link drops")
	}
	if got := sink.Counter("netsim.link_drops").Value(); got != wantDrops {
		t.Errorf("netsim.link_drops = %d, networks counted %d", got, wantDrops)
	}

	// The repair latency breakdown must be populated end to end.
	for _, name := range []string{"collective.repair.detect_ps",
		"collective.repair.install_ps", "collective.repair.resume_ps"} {
		if got := sink.Histogram(name, telemetry.Log2Layout()).Count(); got == 0 {
			t.Errorf("%s has no observations", name)
		}
	}
	if got := sink.Counter("collective.stalls").Value(); got != int64(rep.Recovery.Stalls) {
		t.Errorf("collective.stalls = %d, report says %d", got, rep.Recovery.Stalls)
	}
	if got := sink.Counter("collective.repairs").Value(); got != int64(rep.Recovery.Repairs) {
		t.Errorf("collective.repairs = %d, report says %d", got, rep.Recovery.Repairs)
	}

	// Report export sanity over the real run.
	r := sink.Report("chaos-integration")
	if r.Trace.Recorded == 0 || len(r.Links) == 0 || len(r.Counters) == 0 {
		t.Errorf("run report unexpectedly empty: trace=%d links=%d counters=%d",
			r.Trace.Recorded, len(r.Links), len(r.Counters))
	}
	if r.Aborted != "" {
		t.Errorf("run reported aborted: %s", r.Aborted)
	}
}
